file(REMOVE_RECURSE
  "CMakeFiles/bench_src_output_rate.dir/bench_src_output_rate.cpp.o"
  "CMakeFiles/bench_src_output_rate.dir/bench_src_output_rate.cpp.o.d"
  "bench_src_output_rate"
  "bench_src_output_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_src_output_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
