# Empty dependencies file for bench_src_output_rate.
# This may be replaced when dependencies are built.
