# Empty compiler generated dependencies file for bench_fig6_sinc_stage.
# This may be replaced when dependencies are built.
