file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_sinc_stage.dir/bench_fig6_sinc_stage.cpp.o"
  "CMakeFiles/bench_fig6_sinc_stage.dir/bench_fig6_sinc_stage.cpp.o.d"
  "bench_fig6_sinc_stage"
  "bench_fig6_sinc_stage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_sinc_stage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
