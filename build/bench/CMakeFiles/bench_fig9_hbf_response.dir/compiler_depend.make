# Empty compiler generated dependencies file for bench_fig9_hbf_response.
# This may be replaced when dependencies are built.
