file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_ct_loopfilter.dir/bench_fig2_ct_loopfilter.cpp.o"
  "CMakeFiles/bench_fig2_ct_loopfilter.dir/bench_fig2_ct_loopfilter.cpp.o.d"
  "bench_fig2_ct_loopfilter"
  "bench_fig2_ct_loopfilter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_ct_loopfilter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
