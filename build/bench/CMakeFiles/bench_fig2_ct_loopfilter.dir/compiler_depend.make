# Empty compiler generated dependencies file for bench_fig2_ct_loopfilter.
# This may be replaced when dependencies are built.
