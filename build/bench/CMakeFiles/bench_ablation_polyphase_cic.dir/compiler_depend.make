# Empty compiler generated dependencies file for bench_ablation_polyphase_cic.
# This may be replaced when dependencies are built.
