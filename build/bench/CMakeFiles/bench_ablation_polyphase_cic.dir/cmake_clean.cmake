file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_polyphase_cic.dir/bench_ablation_polyphase_cic.cpp.o"
  "CMakeFiles/bench_ablation_polyphase_cic.dir/bench_ablation_polyphase_cic.cpp.o.d"
  "bench_ablation_polyphase_cic"
  "bench_ablation_polyphase_cic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_polyphase_cic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
