file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_sinc_response.dir/bench_fig8_sinc_response.cpp.o"
  "CMakeFiles/bench_fig8_sinc_response.dir/bench_fig8_sinc_response.cpp.o.d"
  "bench_fig8_sinc_response"
  "bench_fig8_sinc_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_sinc_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
