# Empty dependencies file for bench_fig8_sinc_response.
# This may be replaced when dependencies are built.
