# Empty compiler generated dependencies file for bench_baseline_singlestage.
# This may be replaced when dependencies are built.
