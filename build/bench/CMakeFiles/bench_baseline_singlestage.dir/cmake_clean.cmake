file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_singlestage.dir/bench_baseline_singlestage.cpp.o"
  "CMakeFiles/bench_baseline_singlestage.dir/bench_baseline_singlestage.cpp.o.d"
  "bench_baseline_singlestage"
  "bench_baseline_singlestage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_singlestage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
