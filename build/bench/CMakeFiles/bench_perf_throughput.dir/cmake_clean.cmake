file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_throughput.dir/bench_perf_throughput.cpp.o"
  "CMakeFiles/bench_perf_throughput.dir/bench_perf_throughput.cpp.o.d"
  "bench_perf_throughput"
  "bench_perf_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
