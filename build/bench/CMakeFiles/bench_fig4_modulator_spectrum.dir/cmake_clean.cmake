file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_modulator_spectrum.dir/bench_fig4_modulator_spectrum.cpp.o"
  "CMakeFiles/bench_fig4_modulator_spectrum.dir/bench_fig4_modulator_spectrum.cpp.o.d"
  "bench_fig4_modulator_spectrum"
  "bench_fig4_modulator_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_modulator_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
