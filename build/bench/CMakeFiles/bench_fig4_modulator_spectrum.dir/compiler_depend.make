# Empty compiler generated dependencies file for bench_fig4_modulator_spectrum.
# This may be replaced when dependencies are built.
