
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_power.cpp" "bench/CMakeFiles/bench_table2_power.dir/bench_table2_power.cpp.o" "gcc" "bench/CMakeFiles/bench_table2_power.dir/bench_table2_power.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dsadc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/dsadc_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/dsadc_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/decimator/CMakeFiles/dsadc_decimator.dir/DependInfo.cmake"
  "/root/repo/build/src/filterdesign/CMakeFiles/dsadc_filterdesign.dir/DependInfo.cmake"
  "/root/repo/build/src/modulator/CMakeFiles/dsadc_modulator.dir/DependInfo.cmake"
  "/root/repo/build/src/fixedpoint/CMakeFiles/dsadc_fixedpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/dsadc_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
