# Empty compiler generated dependencies file for bench_ablation_sharpened.
# This may be replaced when dependencies are built.
