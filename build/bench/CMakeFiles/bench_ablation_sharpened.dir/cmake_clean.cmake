file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sharpened.dir/bench_ablation_sharpened.cpp.o"
  "CMakeFiles/bench_ablation_sharpened.dir/bench_ablation_sharpened.cpp.o.d"
  "bench_ablation_sharpened"
  "bench_ablation_sharpened.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sharpened.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
