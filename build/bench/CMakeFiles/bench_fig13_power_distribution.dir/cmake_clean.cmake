file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_power_distribution.dir/bench_fig13_power_distribution.cpp.o"
  "CMakeFiles/bench_fig13_power_distribution.dir/bench_fig13_power_distribution.cpp.o.d"
  "bench_fig13_power_distribution"
  "bench_fig13_power_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_power_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
