file(REMOVE_RECURSE
  "CMakeFiles/bench_e2e_snr.dir/bench_e2e_snr.cpp.o"
  "CMakeFiles/bench_e2e_snr.dir/bench_e2e_snr.cpp.o.d"
  "bench_e2e_snr"
  "bench_e2e_snr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2e_snr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
