# Empty compiler generated dependencies file for bench_ablation_retiming.
# This may be replaced when dependencies are built.
