file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_retiming.dir/bench_ablation_retiming.cpp.o"
  "CMakeFiles/bench_ablation_retiming.dir/bench_ablation_retiming.cpp.o.d"
  "bench_ablation_retiming"
  "bench_ablation_retiming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_retiming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
