# Empty compiler generated dependencies file for bench_fig11_cascade_response.
# This may be replaced when dependencies are built.
