file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_cascade_response.dir/bench_fig11_cascade_response.cpp.o"
  "CMakeFiles/bench_fig11_cascade_response.dir/bench_fig11_cascade_response.cpp.o.d"
  "bench_fig11_cascade_response"
  "bench_fig11_cascade_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_cascade_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
