file(REMOVE_RECURSE
  "CMakeFiles/bench_noise_budget.dir/bench_noise_budget.cpp.o"
  "CMakeFiles/bench_noise_budget.dir/bench_noise_budget.cpp.o.d"
  "bench_noise_budget"
  "bench_noise_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_noise_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
