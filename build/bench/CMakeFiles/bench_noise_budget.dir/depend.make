# Empty dependencies file for bench_noise_budget.
# This may be replaced when dependencies are built.
