# Empty dependencies file for bench_ablation_csd.
# This may be replaced when dependencies are built.
