file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_csd.dir/bench_ablation_csd.cpp.o"
  "CMakeFiles/bench_ablation_csd.dir/bench_ablation_csd.cpp.o.d"
  "bench_ablation_csd"
  "bench_ablation_csd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_csd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
