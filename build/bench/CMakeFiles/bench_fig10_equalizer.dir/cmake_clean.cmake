file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_equalizer.dir/bench_fig10_equalizer.cpp.o"
  "CMakeFiles/bench_fig10_equalizer.dir/bench_fig10_equalizer.cpp.o.d"
  "bench_fig10_equalizer"
  "bench_fig10_equalizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_equalizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
