# Empty compiler generated dependencies file for bench_fig10_equalizer.
# This may be replaced when dependencies are built.
