# Empty compiler generated dependencies file for sdr_multistandard.
# This may be replaced when dependencies are built.
