file(REMOVE_RECURSE
  "CMakeFiles/sdr_multistandard.dir/sdr_multistandard.cpp.o"
  "CMakeFiles/sdr_multistandard.dir/sdr_multistandard.cpp.o.d"
  "sdr_multistandard"
  "sdr_multistandard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdr_multistandard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
