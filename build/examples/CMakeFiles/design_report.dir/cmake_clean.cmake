file(REMOVE_RECURSE
  "CMakeFiles/design_report.dir/design_report.cpp.o"
  "CMakeFiles/design_report.dir/design_report.cpp.o.d"
  "design_report"
  "design_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
