# Empty dependencies file for transmit_path.
# This may be replaced when dependencies are built.
