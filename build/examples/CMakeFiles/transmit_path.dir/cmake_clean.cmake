file(REMOVE_RECURSE
  "CMakeFiles/transmit_path.dir/transmit_path.cpp.o"
  "CMakeFiles/transmit_path.dir/transmit_path.cpp.o.d"
  "transmit_path"
  "transmit_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transmit_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
