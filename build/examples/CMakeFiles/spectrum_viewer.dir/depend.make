# Empty dependencies file for spectrum_viewer.
# This may be replaced when dependencies are built.
