file(REMOVE_RECURSE
  "CMakeFiles/spectrum_viewer.dir/spectrum_viewer.cpp.o"
  "CMakeFiles/spectrum_viewer.dir/spectrum_viewer.cpp.o.d"
  "spectrum_viewer"
  "spectrum_viewer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectrum_viewer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
