file(REMOVE_RECURSE
  "CMakeFiles/halfband_explorer.dir/halfband_explorer.cpp.o"
  "CMakeFiles/halfband_explorer.dir/halfband_explorer.cpp.o.d"
  "halfband_explorer"
  "halfband_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halfband_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
