# Empty compiler generated dependencies file for halfband_explorer.
# This may be replaced when dependencies are built.
