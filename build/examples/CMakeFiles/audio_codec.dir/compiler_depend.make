# Empty compiler generated dependencies file for audio_codec.
# This may be replaced when dependencies are built.
