file(REMOVE_RECURSE
  "CMakeFiles/audio_codec.dir/audio_codec.cpp.o"
  "CMakeFiles/audio_codec.dir/audio_codec.cpp.o.d"
  "audio_codec"
  "audio_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audio_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
