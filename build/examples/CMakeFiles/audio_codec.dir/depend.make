# Empty dependencies file for audio_codec.
# This may be replaced when dependencies are built.
