file(REMOVE_RECURSE
  "CMakeFiles/test_remez.dir/test_remez.cpp.o"
  "CMakeFiles/test_remez.dir/test_remez.cpp.o.d"
  "test_remez"
  "test_remez.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_remez.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
