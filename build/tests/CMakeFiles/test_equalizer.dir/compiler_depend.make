# Empty compiler generated dependencies file for test_equalizer.
# This may be replaced when dependencies are built.
