file(REMOVE_RECURSE
  "CMakeFiles/test_equalizer.dir/test_equalizer.cpp.o"
  "CMakeFiles/test_equalizer.dir/test_equalizer.cpp.o.d"
  "test_equalizer"
  "test_equalizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_equalizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
