file(REMOVE_RECURSE
  "CMakeFiles/test_vparse.dir/test_vparse.cpp.o"
  "CMakeFiles/test_vparse.dir/test_vparse.cpp.o.d"
  "test_vparse"
  "test_vparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
