# Empty compiler generated dependencies file for test_vparse.
# This may be replaced when dependencies are built.
