# Empty compiler generated dependencies file for test_cic_impl.
# This may be replaced when dependencies are built.
