file(REMOVE_RECURSE
  "CMakeFiles/test_cic_impl.dir/test_cic_impl.cpp.o"
  "CMakeFiles/test_cic_impl.dir/test_cic_impl.cpp.o.d"
  "test_cic_impl"
  "test_cic_impl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cic_impl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
