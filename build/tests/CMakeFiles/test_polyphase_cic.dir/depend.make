# Empty dependencies file for test_polyphase_cic.
# This may be replaced when dependencies are built.
