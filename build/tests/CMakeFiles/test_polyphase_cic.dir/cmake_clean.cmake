file(REMOVE_RECURSE
  "CMakeFiles/test_polyphase_cic.dir/test_polyphase_cic.cpp.o"
  "CMakeFiles/test_polyphase_cic.dir/test_polyphase_cic.cpp.o.d"
  "test_polyphase_cic"
  "test_polyphase_cic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_polyphase_cic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
