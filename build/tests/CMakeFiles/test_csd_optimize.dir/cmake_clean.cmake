file(REMOVE_RECURSE
  "CMakeFiles/test_csd_optimize.dir/test_csd_optimize.cpp.o"
  "CMakeFiles/test_csd_optimize.dir/test_csd_optimize.cpp.o.d"
  "test_csd_optimize"
  "test_csd_optimize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csd_optimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
