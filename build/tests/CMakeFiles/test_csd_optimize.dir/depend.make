# Empty dependencies file for test_csd_optimize.
# This may be replaced when dependencies are built.
