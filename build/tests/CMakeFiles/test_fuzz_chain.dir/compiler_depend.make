# Empty compiler generated dependencies file for test_fuzz_chain.
# This may be replaced when dependencies are built.
