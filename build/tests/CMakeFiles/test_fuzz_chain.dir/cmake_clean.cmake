file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_chain.dir/test_fuzz_chain.cpp.o"
  "CMakeFiles/test_fuzz_chain.dir/test_fuzz_chain.cpp.o.d"
  "test_fuzz_chain"
  "test_fuzz_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
