file(REMOVE_RECURSE
  "CMakeFiles/test_window_fir.dir/test_window_fir.cpp.o"
  "CMakeFiles/test_window_fir.dir/test_window_fir.cpp.o.d"
  "test_window_fir"
  "test_window_fir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_window_fir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
