# Empty compiler generated dependencies file for test_window_fir.
# This may be replaced when dependencies are built.
