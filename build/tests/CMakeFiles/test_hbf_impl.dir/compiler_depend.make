# Empty compiler generated dependencies file for test_hbf_impl.
# This may be replaced when dependencies are built.
