file(REMOVE_RECURSE
  "CMakeFiles/test_hbf_impl.dir/test_hbf_impl.cpp.o"
  "CMakeFiles/test_hbf_impl.dir/test_hbf_impl.cpp.o.d"
  "test_hbf_impl"
  "test_hbf_impl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hbf_impl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
