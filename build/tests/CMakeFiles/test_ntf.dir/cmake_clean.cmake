file(REMOVE_RECURSE
  "CMakeFiles/test_ntf.dir/test_ntf.cpp.o"
  "CMakeFiles/test_ntf.dir/test_ntf.cpp.o.d"
  "test_ntf"
  "test_ntf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ntf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
