# Empty compiler generated dependencies file for test_ntf.
# This may be replaced when dependencies are built.
