file(REMOVE_RECURSE
  "CMakeFiles/test_csd.dir/test_csd.cpp.o"
  "CMakeFiles/test_csd.dir/test_csd.cpp.o.d"
  "test_csd"
  "test_csd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
