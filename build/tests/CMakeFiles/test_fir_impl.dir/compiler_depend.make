# Empty compiler generated dependencies file for test_fir_impl.
# This may be replaced when dependencies are built.
