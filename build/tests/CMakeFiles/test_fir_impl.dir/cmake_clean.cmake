file(REMOVE_RECURSE
  "CMakeFiles/test_fir_impl.dir/test_fir_impl.cpp.o"
  "CMakeFiles/test_fir_impl.dir/test_fir_impl.cpp.o.d"
  "test_fir_impl"
  "test_fir_impl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fir_impl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
