# Empty compiler generated dependencies file for test_saramaki.
# This may be replaced when dependencies are built.
