file(REMOVE_RECURSE
  "CMakeFiles/test_saramaki.dir/test_saramaki.cpp.o"
  "CMakeFiles/test_saramaki.dir/test_saramaki.cpp.o.d"
  "test_saramaki"
  "test_saramaki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_saramaki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
