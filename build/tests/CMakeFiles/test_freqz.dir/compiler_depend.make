# Empty compiler generated dependencies file for test_freqz.
# This may be replaced when dependencies are built.
