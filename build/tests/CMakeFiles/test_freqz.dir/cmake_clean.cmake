file(REMOVE_RECURSE
  "CMakeFiles/test_freqz.dir/test_freqz.cpp.o"
  "CMakeFiles/test_freqz.dir/test_freqz.cpp.o.d"
  "test_freqz"
  "test_freqz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_freqz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
