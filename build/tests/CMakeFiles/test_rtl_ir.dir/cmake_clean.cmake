file(REMOVE_RECURSE
  "CMakeFiles/test_rtl_ir.dir/test_rtl_ir.cpp.o"
  "CMakeFiles/test_rtl_ir.dir/test_rtl_ir.cpp.o.d"
  "test_rtl_ir"
  "test_rtl_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtl_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
