# Empty compiler generated dependencies file for test_rtl_ir.
# This may be replaced when dependencies are built.
