file(REMOVE_RECURSE
  "CMakeFiles/test_realize.dir/test_realize.cpp.o"
  "CMakeFiles/test_realize.dir/test_realize.cpp.o.d"
  "test_realize"
  "test_realize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_realize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
