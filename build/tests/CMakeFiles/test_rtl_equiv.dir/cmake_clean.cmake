file(REMOVE_RECURSE
  "CMakeFiles/test_rtl_equiv.dir/test_rtl_equiv.cpp.o"
  "CMakeFiles/test_rtl_equiv.dir/test_rtl_equiv.cpp.o.d"
  "test_rtl_equiv"
  "test_rtl_equiv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtl_equiv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
