# Empty compiler generated dependencies file for test_rtl_equiv.
# This may be replaced when dependencies are built.
