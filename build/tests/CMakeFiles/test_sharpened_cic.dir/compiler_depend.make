# Empty compiler generated dependencies file for test_sharpened_cic.
# This may be replaced when dependencies are built.
