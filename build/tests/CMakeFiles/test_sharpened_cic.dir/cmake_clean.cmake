file(REMOVE_RECURSE
  "CMakeFiles/test_sharpened_cic.dir/test_sharpened_cic.cpp.o"
  "CMakeFiles/test_sharpened_cic.dir/test_sharpened_cic.cpp.o.d"
  "test_sharpened_cic"
  "test_sharpened_cic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sharpened_cic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
