# Empty dependencies file for test_halfband.
# This may be replaced when dependencies are built.
