file(REMOVE_RECURSE
  "CMakeFiles/test_halfband.dir/test_halfband.cpp.o"
  "CMakeFiles/test_halfband.dir/test_halfband.cpp.o.d"
  "test_halfband"
  "test_halfband.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_halfband.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
