file(REMOVE_RECURSE
  "CMakeFiles/test_cic_design.dir/test_cic_design.cpp.o"
  "CMakeFiles/test_cic_design.dir/test_cic_design.cpp.o.d"
  "test_cic_design"
  "test_cic_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cic_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
