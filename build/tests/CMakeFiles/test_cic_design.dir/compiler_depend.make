# Empty compiler generated dependencies file for test_cic_design.
# This may be replaced when dependencies are built.
