file(REMOVE_RECURSE
  "CMakeFiles/test_noise_budget.dir/test_noise_budget.cpp.o"
  "CMakeFiles/test_noise_budget.dir/test_noise_budget.cpp.o.d"
  "test_noise_budget"
  "test_noise_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noise_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
