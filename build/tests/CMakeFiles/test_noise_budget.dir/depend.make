# Empty dependencies file for test_noise_budget.
# This may be replaced when dependencies are built.
