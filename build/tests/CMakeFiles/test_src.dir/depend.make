# Empty dependencies file for test_src.
# This may be replaced when dependencies are built.
