file(REMOVE_RECURSE
  "CMakeFiles/test_src.dir/test_src.cpp.o"
  "CMakeFiles/test_src.dir/test_src.cpp.o.d"
  "test_src"
  "test_src.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_src.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
