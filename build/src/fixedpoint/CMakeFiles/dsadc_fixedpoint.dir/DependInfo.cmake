
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fixedpoint/csd.cpp" "src/fixedpoint/CMakeFiles/dsadc_fixedpoint.dir/csd.cpp.o" "gcc" "src/fixedpoint/CMakeFiles/dsadc_fixedpoint.dir/csd.cpp.o.d"
  "/root/repo/src/fixedpoint/csd_optimize.cpp" "src/fixedpoint/CMakeFiles/dsadc_fixedpoint.dir/csd_optimize.cpp.o" "gcc" "src/fixedpoint/CMakeFiles/dsadc_fixedpoint.dir/csd_optimize.cpp.o.d"
  "/root/repo/src/fixedpoint/fixed.cpp" "src/fixedpoint/CMakeFiles/dsadc_fixedpoint.dir/fixed.cpp.o" "gcc" "src/fixedpoint/CMakeFiles/dsadc_fixedpoint.dir/fixed.cpp.o.d"
  "/root/repo/src/fixedpoint/quantize.cpp" "src/fixedpoint/CMakeFiles/dsadc_fixedpoint.dir/quantize.cpp.o" "gcc" "src/fixedpoint/CMakeFiles/dsadc_fixedpoint.dir/quantize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/dsadc_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
