file(REMOVE_RECURSE
  "libdsadc_fixedpoint.a"
)
