file(REMOVE_RECURSE
  "CMakeFiles/dsadc_fixedpoint.dir/csd.cpp.o"
  "CMakeFiles/dsadc_fixedpoint.dir/csd.cpp.o.d"
  "CMakeFiles/dsadc_fixedpoint.dir/csd_optimize.cpp.o"
  "CMakeFiles/dsadc_fixedpoint.dir/csd_optimize.cpp.o.d"
  "CMakeFiles/dsadc_fixedpoint.dir/fixed.cpp.o"
  "CMakeFiles/dsadc_fixedpoint.dir/fixed.cpp.o.d"
  "CMakeFiles/dsadc_fixedpoint.dir/quantize.cpp.o"
  "CMakeFiles/dsadc_fixedpoint.dir/quantize.cpp.o.d"
  "libdsadc_fixedpoint.a"
  "libdsadc_fixedpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsadc_fixedpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
