# Empty dependencies file for dsadc_fixedpoint.
# This may be replaced when dependencies are built.
