file(REMOVE_RECURSE
  "CMakeFiles/dsadc_rtl.dir/builders.cpp.o"
  "CMakeFiles/dsadc_rtl.dir/builders.cpp.o.d"
  "CMakeFiles/dsadc_rtl.dir/ir.cpp.o"
  "CMakeFiles/dsadc_rtl.dir/ir.cpp.o.d"
  "CMakeFiles/dsadc_rtl.dir/sim.cpp.o"
  "CMakeFiles/dsadc_rtl.dir/sim.cpp.o.d"
  "CMakeFiles/dsadc_rtl.dir/verilog.cpp.o"
  "CMakeFiles/dsadc_rtl.dir/verilog.cpp.o.d"
  "CMakeFiles/dsadc_rtl.dir/vparse.cpp.o"
  "CMakeFiles/dsadc_rtl.dir/vparse.cpp.o.d"
  "libdsadc_rtl.a"
  "libdsadc_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsadc_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
