# Empty compiler generated dependencies file for dsadc_rtl.
# This may be replaced when dependencies are built.
