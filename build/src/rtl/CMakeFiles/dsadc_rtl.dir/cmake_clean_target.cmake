file(REMOVE_RECURSE
  "libdsadc_rtl.a"
)
