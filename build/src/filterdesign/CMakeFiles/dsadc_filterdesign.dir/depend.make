# Empty dependencies file for dsadc_filterdesign.
# This may be replaced when dependencies are built.
