file(REMOVE_RECURSE
  "CMakeFiles/dsadc_filterdesign.dir/cic.cpp.o"
  "CMakeFiles/dsadc_filterdesign.dir/cic.cpp.o.d"
  "CMakeFiles/dsadc_filterdesign.dir/equalizer.cpp.o"
  "CMakeFiles/dsadc_filterdesign.dir/equalizer.cpp.o.d"
  "CMakeFiles/dsadc_filterdesign.dir/halfband.cpp.o"
  "CMakeFiles/dsadc_filterdesign.dir/halfband.cpp.o.d"
  "CMakeFiles/dsadc_filterdesign.dir/remez.cpp.o"
  "CMakeFiles/dsadc_filterdesign.dir/remez.cpp.o.d"
  "CMakeFiles/dsadc_filterdesign.dir/saramaki.cpp.o"
  "CMakeFiles/dsadc_filterdesign.dir/saramaki.cpp.o.d"
  "CMakeFiles/dsadc_filterdesign.dir/sharpened_cic.cpp.o"
  "CMakeFiles/dsadc_filterdesign.dir/sharpened_cic.cpp.o.d"
  "CMakeFiles/dsadc_filterdesign.dir/window_fir.cpp.o"
  "CMakeFiles/dsadc_filterdesign.dir/window_fir.cpp.o.d"
  "libdsadc_filterdesign.a"
  "libdsadc_filterdesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsadc_filterdesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
