file(REMOVE_RECURSE
  "libdsadc_filterdesign.a"
)
