
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/filterdesign/cic.cpp" "src/filterdesign/CMakeFiles/dsadc_filterdesign.dir/cic.cpp.o" "gcc" "src/filterdesign/CMakeFiles/dsadc_filterdesign.dir/cic.cpp.o.d"
  "/root/repo/src/filterdesign/equalizer.cpp" "src/filterdesign/CMakeFiles/dsadc_filterdesign.dir/equalizer.cpp.o" "gcc" "src/filterdesign/CMakeFiles/dsadc_filterdesign.dir/equalizer.cpp.o.d"
  "/root/repo/src/filterdesign/halfband.cpp" "src/filterdesign/CMakeFiles/dsadc_filterdesign.dir/halfband.cpp.o" "gcc" "src/filterdesign/CMakeFiles/dsadc_filterdesign.dir/halfband.cpp.o.d"
  "/root/repo/src/filterdesign/remez.cpp" "src/filterdesign/CMakeFiles/dsadc_filterdesign.dir/remez.cpp.o" "gcc" "src/filterdesign/CMakeFiles/dsadc_filterdesign.dir/remez.cpp.o.d"
  "/root/repo/src/filterdesign/saramaki.cpp" "src/filterdesign/CMakeFiles/dsadc_filterdesign.dir/saramaki.cpp.o" "gcc" "src/filterdesign/CMakeFiles/dsadc_filterdesign.dir/saramaki.cpp.o.d"
  "/root/repo/src/filterdesign/sharpened_cic.cpp" "src/filterdesign/CMakeFiles/dsadc_filterdesign.dir/sharpened_cic.cpp.o" "gcc" "src/filterdesign/CMakeFiles/dsadc_filterdesign.dir/sharpened_cic.cpp.o.d"
  "/root/repo/src/filterdesign/window_fir.cpp" "src/filterdesign/CMakeFiles/dsadc_filterdesign.dir/window_fir.cpp.o" "gcc" "src/filterdesign/CMakeFiles/dsadc_filterdesign.dir/window_fir.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/dsadc_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/fixedpoint/CMakeFiles/dsadc_fixedpoint.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
