file(REMOVE_RECURSE
  "libdsadc_decimator.a"
)
