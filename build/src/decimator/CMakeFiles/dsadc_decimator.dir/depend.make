# Empty dependencies file for dsadc_decimator.
# This may be replaced when dependencies are built.
