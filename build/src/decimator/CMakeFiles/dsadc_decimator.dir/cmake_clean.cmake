file(REMOVE_RECURSE
  "CMakeFiles/dsadc_decimator.dir/chain.cpp.o"
  "CMakeFiles/dsadc_decimator.dir/chain.cpp.o.d"
  "CMakeFiles/dsadc_decimator.dir/cic.cpp.o"
  "CMakeFiles/dsadc_decimator.dir/cic.cpp.o.d"
  "CMakeFiles/dsadc_decimator.dir/fir.cpp.o"
  "CMakeFiles/dsadc_decimator.dir/fir.cpp.o.d"
  "CMakeFiles/dsadc_decimator.dir/hbf.cpp.o"
  "CMakeFiles/dsadc_decimator.dir/hbf.cpp.o.d"
  "CMakeFiles/dsadc_decimator.dir/interpolate.cpp.o"
  "CMakeFiles/dsadc_decimator.dir/interpolate.cpp.o.d"
  "CMakeFiles/dsadc_decimator.dir/polyphase_cic.cpp.o"
  "CMakeFiles/dsadc_decimator.dir/polyphase_cic.cpp.o.d"
  "CMakeFiles/dsadc_decimator.dir/scaler.cpp.o"
  "CMakeFiles/dsadc_decimator.dir/scaler.cpp.o.d"
  "CMakeFiles/dsadc_decimator.dir/src.cpp.o"
  "CMakeFiles/dsadc_decimator.dir/src.cpp.o.d"
  "libdsadc_decimator.a"
  "libdsadc_decimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsadc_decimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
