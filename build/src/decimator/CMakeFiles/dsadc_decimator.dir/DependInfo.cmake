
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/decimator/chain.cpp" "src/decimator/CMakeFiles/dsadc_decimator.dir/chain.cpp.o" "gcc" "src/decimator/CMakeFiles/dsadc_decimator.dir/chain.cpp.o.d"
  "/root/repo/src/decimator/cic.cpp" "src/decimator/CMakeFiles/dsadc_decimator.dir/cic.cpp.o" "gcc" "src/decimator/CMakeFiles/dsadc_decimator.dir/cic.cpp.o.d"
  "/root/repo/src/decimator/fir.cpp" "src/decimator/CMakeFiles/dsadc_decimator.dir/fir.cpp.o" "gcc" "src/decimator/CMakeFiles/dsadc_decimator.dir/fir.cpp.o.d"
  "/root/repo/src/decimator/hbf.cpp" "src/decimator/CMakeFiles/dsadc_decimator.dir/hbf.cpp.o" "gcc" "src/decimator/CMakeFiles/dsadc_decimator.dir/hbf.cpp.o.d"
  "/root/repo/src/decimator/interpolate.cpp" "src/decimator/CMakeFiles/dsadc_decimator.dir/interpolate.cpp.o" "gcc" "src/decimator/CMakeFiles/dsadc_decimator.dir/interpolate.cpp.o.d"
  "/root/repo/src/decimator/polyphase_cic.cpp" "src/decimator/CMakeFiles/dsadc_decimator.dir/polyphase_cic.cpp.o" "gcc" "src/decimator/CMakeFiles/dsadc_decimator.dir/polyphase_cic.cpp.o.d"
  "/root/repo/src/decimator/scaler.cpp" "src/decimator/CMakeFiles/dsadc_decimator.dir/scaler.cpp.o" "gcc" "src/decimator/CMakeFiles/dsadc_decimator.dir/scaler.cpp.o.d"
  "/root/repo/src/decimator/src.cpp" "src/decimator/CMakeFiles/dsadc_decimator.dir/src.cpp.o" "gcc" "src/decimator/CMakeFiles/dsadc_decimator.dir/src.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/dsadc_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/fixedpoint/CMakeFiles/dsadc_fixedpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/filterdesign/CMakeFiles/dsadc_filterdesign.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
