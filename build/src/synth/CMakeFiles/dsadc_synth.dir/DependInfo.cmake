
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/celllib.cpp" "src/synth/CMakeFiles/dsadc_synth.dir/celllib.cpp.o" "gcc" "src/synth/CMakeFiles/dsadc_synth.dir/celllib.cpp.o.d"
  "/root/repo/src/synth/estimate.cpp" "src/synth/CMakeFiles/dsadc_synth.dir/estimate.cpp.o" "gcc" "src/synth/CMakeFiles/dsadc_synth.dir/estimate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl/CMakeFiles/dsadc_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/decimator/CMakeFiles/dsadc_decimator.dir/DependInfo.cmake"
  "/root/repo/build/src/filterdesign/CMakeFiles/dsadc_filterdesign.dir/DependInfo.cmake"
  "/root/repo/build/src/fixedpoint/CMakeFiles/dsadc_fixedpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/dsadc_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
