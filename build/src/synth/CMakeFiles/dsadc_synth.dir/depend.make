# Empty dependencies file for dsadc_synth.
# This may be replaced when dependencies are built.
