src/synth/CMakeFiles/dsadc_synth.dir/celllib.cpp.o: \
 /root/repo/src/synth/celllib.cpp /usr/include/stdc-predef.h \
 /root/repo/src/synth/../../src/synth/celllib.h
