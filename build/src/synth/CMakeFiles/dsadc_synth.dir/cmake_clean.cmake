file(REMOVE_RECURSE
  "CMakeFiles/dsadc_synth.dir/celllib.cpp.o"
  "CMakeFiles/dsadc_synth.dir/celllib.cpp.o.d"
  "CMakeFiles/dsadc_synth.dir/estimate.cpp.o"
  "CMakeFiles/dsadc_synth.dir/estimate.cpp.o.d"
  "libdsadc_synth.a"
  "libdsadc_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsadc_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
