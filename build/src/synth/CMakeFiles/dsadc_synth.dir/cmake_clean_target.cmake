file(REMOVE_RECURSE
  "libdsadc_synth.a"
)
