file(REMOVE_RECURSE
  "CMakeFiles/dsadc_dsp.dir/chebyshev.cpp.o"
  "CMakeFiles/dsadc_dsp.dir/chebyshev.cpp.o.d"
  "CMakeFiles/dsadc_dsp.dir/fft.cpp.o"
  "CMakeFiles/dsadc_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/dsadc_dsp.dir/freqz.cpp.o"
  "CMakeFiles/dsadc_dsp.dir/freqz.cpp.o.d"
  "CMakeFiles/dsadc_dsp.dir/linalg.cpp.o"
  "CMakeFiles/dsadc_dsp.dir/linalg.cpp.o.d"
  "CMakeFiles/dsadc_dsp.dir/polynomial.cpp.o"
  "CMakeFiles/dsadc_dsp.dir/polynomial.cpp.o.d"
  "CMakeFiles/dsadc_dsp.dir/spectrum.cpp.o"
  "CMakeFiles/dsadc_dsp.dir/spectrum.cpp.o.d"
  "CMakeFiles/dsadc_dsp.dir/window.cpp.o"
  "CMakeFiles/dsadc_dsp.dir/window.cpp.o.d"
  "libdsadc_dsp.a"
  "libdsadc_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsadc_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
