# Empty compiler generated dependencies file for dsadc_dsp.
# This may be replaced when dependencies are built.
