file(REMOVE_RECURSE
  "libdsadc_dsp.a"
)
