
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/chebyshev.cpp" "src/dsp/CMakeFiles/dsadc_dsp.dir/chebyshev.cpp.o" "gcc" "src/dsp/CMakeFiles/dsadc_dsp.dir/chebyshev.cpp.o.d"
  "/root/repo/src/dsp/fft.cpp" "src/dsp/CMakeFiles/dsadc_dsp.dir/fft.cpp.o" "gcc" "src/dsp/CMakeFiles/dsadc_dsp.dir/fft.cpp.o.d"
  "/root/repo/src/dsp/freqz.cpp" "src/dsp/CMakeFiles/dsadc_dsp.dir/freqz.cpp.o" "gcc" "src/dsp/CMakeFiles/dsadc_dsp.dir/freqz.cpp.o.d"
  "/root/repo/src/dsp/linalg.cpp" "src/dsp/CMakeFiles/dsadc_dsp.dir/linalg.cpp.o" "gcc" "src/dsp/CMakeFiles/dsadc_dsp.dir/linalg.cpp.o.d"
  "/root/repo/src/dsp/polynomial.cpp" "src/dsp/CMakeFiles/dsadc_dsp.dir/polynomial.cpp.o" "gcc" "src/dsp/CMakeFiles/dsadc_dsp.dir/polynomial.cpp.o.d"
  "/root/repo/src/dsp/spectrum.cpp" "src/dsp/CMakeFiles/dsadc_dsp.dir/spectrum.cpp.o" "gcc" "src/dsp/CMakeFiles/dsadc_dsp.dir/spectrum.cpp.o.d"
  "/root/repo/src/dsp/window.cpp" "src/dsp/CMakeFiles/dsadc_dsp.dir/window.cpp.o" "gcc" "src/dsp/CMakeFiles/dsadc_dsp.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
