
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/modulator/ct.cpp" "src/modulator/CMakeFiles/dsadc_modulator.dir/ct.cpp.o" "gcc" "src/modulator/CMakeFiles/dsadc_modulator.dir/ct.cpp.o.d"
  "/root/repo/src/modulator/dsm.cpp" "src/modulator/CMakeFiles/dsadc_modulator.dir/dsm.cpp.o" "gcc" "src/modulator/CMakeFiles/dsadc_modulator.dir/dsm.cpp.o.d"
  "/root/repo/src/modulator/ntf.cpp" "src/modulator/CMakeFiles/dsadc_modulator.dir/ntf.cpp.o" "gcc" "src/modulator/CMakeFiles/dsadc_modulator.dir/ntf.cpp.o.d"
  "/root/repo/src/modulator/realize.cpp" "src/modulator/CMakeFiles/dsadc_modulator.dir/realize.cpp.o" "gcc" "src/modulator/CMakeFiles/dsadc_modulator.dir/realize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/dsadc_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
