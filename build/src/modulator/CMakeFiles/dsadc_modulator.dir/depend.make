# Empty dependencies file for dsadc_modulator.
# This may be replaced when dependencies are built.
