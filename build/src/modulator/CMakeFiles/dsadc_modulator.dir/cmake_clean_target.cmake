file(REMOVE_RECURSE
  "libdsadc_modulator.a"
)
