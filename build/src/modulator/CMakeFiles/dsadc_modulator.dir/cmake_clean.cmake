file(REMOVE_RECURSE
  "CMakeFiles/dsadc_modulator.dir/ct.cpp.o"
  "CMakeFiles/dsadc_modulator.dir/ct.cpp.o.d"
  "CMakeFiles/dsadc_modulator.dir/dsm.cpp.o"
  "CMakeFiles/dsadc_modulator.dir/dsm.cpp.o.d"
  "CMakeFiles/dsadc_modulator.dir/ntf.cpp.o"
  "CMakeFiles/dsadc_modulator.dir/ntf.cpp.o.d"
  "CMakeFiles/dsadc_modulator.dir/realize.cpp.o"
  "CMakeFiles/dsadc_modulator.dir/realize.cpp.o.d"
  "libdsadc_modulator.a"
  "libdsadc_modulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsadc_modulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
