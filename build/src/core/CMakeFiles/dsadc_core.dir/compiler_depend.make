# Empty compiler generated dependencies file for dsadc_core.
# This may be replaced when dependencies are built.
