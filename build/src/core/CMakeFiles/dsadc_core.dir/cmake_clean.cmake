file(REMOVE_RECURSE
  "CMakeFiles/dsadc_core.dir/adc.cpp.o"
  "CMakeFiles/dsadc_core.dir/adc.cpp.o.d"
  "CMakeFiles/dsadc_core.dir/flow.cpp.o"
  "CMakeFiles/dsadc_core.dir/flow.cpp.o.d"
  "CMakeFiles/dsadc_core.dir/noise_budget.cpp.o"
  "CMakeFiles/dsadc_core.dir/noise_budget.cpp.o.d"
  "CMakeFiles/dsadc_core.dir/response.cpp.o"
  "CMakeFiles/dsadc_core.dir/response.cpp.o.d"
  "libdsadc_core.a"
  "libdsadc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsadc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
