file(REMOVE_RECURSE
  "libdsadc_core.a"
)
