// Compare two bench-telemetry records (or directories of them) and gate
// on regressions.
//
//   bench_diff BASELINE CURRENT [--tolerance FRAC] [--gate PATTERN]...
//              [--quiet]
//
// BASELINE and CURRENT are either BENCH_<name>.json files written by
// obs::BenchReport or directories scanned for such files (matched by file
// name). Every numeric metric present on both sides is reported with its
// relative delta; metrics whose name matches a --gate substring (all
// shared metrics when no --gate is given) fail the run when they regress
// by more than --tolerance (default 0.20, i.e. 20%).
//
// Regression direction is inferred from the metric name: names containing
// a lower-is-better keyword (ms, seconds, power, error, area, adders,
// registers, macs) regress upward, everything else (throughput, speedup,
// snr, ...) regresses downward. A current-side record with ok=false fails
// regardless of metrics.
//
// Exit codes: 0 no regression, 1 regression or current-side failure,
// 2 usage / IO error.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/verify/json.h"

namespace {

namespace fs = std::filesystem;
using dsadc::verify::Json;
using dsadc::verify::json_parse;

Json load_json(const fs::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return json_parse(buf.str());
}

/// File name -> parsed record, for a file or a directory of BENCH_*.json.
std::map<std::string, Json> load_records(const std::string& arg) {
  std::map<std::string, Json> out;
  const fs::path path(arg);
  if (fs::is_directory(path)) {
    for (const auto& entry : fs::directory_iterator(path)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) == 0 &&
          entry.path().extension() == ".json") {
        out[name] = load_json(entry.path());
      }
    }
  } else {
    out[path.filename().string()] = load_json(path);
  }
  return out;
}

bool lower_is_better(const std::string& metric) {
  // "_ms"/"_s" only as a suffix ("items_per_second" must stay
  // higher-is-better); the rest anywhere in the name.
  static const char* const kSuffixes[] = {"_ms", "_us", "_ns"};
  for (const char* sfx : kSuffixes) {
    const std::size_t n = std::strlen(sfx);
    if (metric.size() >= n && metric.compare(metric.size() - n, n, sfx) == 0) {
      return true;
    }
  }
  static const char* const kKeywords[] = {"power",  "error",     "area",
                                          "adders", "macs",      "registers",
                                          "latency", "wall"};
  for (const char* kw : kKeywords) {
    if (metric.find(kw) != std::string::npos) return true;
  }
  return false;
}

bool gated(const std::string& metric, const std::vector<std::string>& gates) {
  if (gates.empty()) return true;
  for (const std::string& g : gates) {
    if (metric.find(g) != std::string::npos) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  std::vector<std::string> gates;
  double tolerance = 0.20;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_diff: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--tolerance") {
      tolerance = std::atof(next());
    } else if (arg == "--gate") {
      gates.emplace_back(next());
    } else if (arg == "--quiet" || arg == "-q") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: bench_diff BASELINE CURRENT [--tolerance FRAC]\n"
          "                  [--gate PATTERN]... [--quiet]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "bench_diff: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    std::fprintf(stderr, "bench_diff: need BASELINE and CURRENT\n");
    return 2;
  }

  try {
    const auto baseline = load_records(positional[0]);
    const auto current = load_records(positional[1]);

    bool regressed = false;
    std::size_t compared_files = 0;
    for (const auto& [file, base] : baseline) {
      const auto it = current.find(file);
      if (it == current.end()) {
        if (!quiet) std::printf("%s: missing on current side (skipped)\n",
                                file.c_str());
        continue;
      }
      const Json& cur = it->second;
      ++compared_files;

      if (cur.contains("ok") && !cur.at("ok").as_bool()) {
        std::printf("%s: current run reports ok=false\n", file.c_str());
        regressed = true;
      }
      if (!base.contains("metrics") || !cur.contains("metrics")) continue;
      const Json& bm = base.at("metrics");
      const Json& cm = cur.at("metrics");

      for (const std::string& key : bm.keys()) {
        if (!cm.contains(key)) continue;
        if (bm.at(key).type() != Json::Type::kNumber ||
            cm.at(key).type() != Json::Type::kNumber) {
          continue;
        }
        const double b = bm.at(key).as_double();
        const double c = cm.at(key).as_double();
        const double delta = b != 0.0 ? (c - b) / std::abs(b)
                             : (c == 0.0 ? 0.0 : INFINITY);
        const bool lower = lower_is_better(key);
        const bool gate = gated(key, gates);
        const bool bad =
            gate && (lower ? delta > tolerance : delta < -tolerance);
        regressed = regressed || bad;
        if (!quiet || bad) {
          std::printf("%s %s: %.6g -> %.6g (%+.1f%%)%s%s\n", file.c_str(),
                      key.c_str(), b, c, 100.0 * delta,
                      gate ? "" : " [ungated]",
                      bad ? "  REGRESSION" : "");
        }
      }
    }

    if (compared_files == 0) {
      std::fprintf(stderr, "bench_diff: no records to compare\n");
      return 2;
    }
    if (!quiet) {
      std::printf("bench_diff: %zu record(s), tolerance %.0f%%: %s\n",
                  compared_files, 100.0 * tolerance,
                  regressed ? "REGRESSION" : "ok");
    }
    return regressed ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_diff: %s\n", e.what());
    return 2;
  }
}
