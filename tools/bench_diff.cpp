// Compare two bench-telemetry records (or directories of them) and gate
// on regressions.
//
//   bench_diff BASELINE CURRENT [--tolerance FRAC] [--gate PATTERN]...
//              [--quiet]
//
// BASELINE and CURRENT are either BENCH_<name>.json files written by
// obs::BenchReport or directories scanned for such files (matched by file
// name). Every numeric metric present on both sides is reported with its
// relative delta; metrics whose name matches a --gate substring (all
// shared metrics when no --gate is given) fail the run when they regress
// by more than --tolerance (default 0.20, i.e. 20%).
//
// Regression direction is inferred from the metric name: names containing
// a lower-is-better keyword (ms, seconds, power, error, area, adders,
// registers, macs) regress upward, everything else (throughput, speedup,
// snr, ...) regresses downward. A current-side record with ok=false fails
// regardless of metrics.
//
// After the per-metric lines, a ranked summary lists the worst gated
// regressions and the best improvements (--top N, default 5) so a long
// diff leads with what matters.
//
// Exit codes, in precedence order:
//   1  out-of-tolerance regression or current-side ok=false
//   2  usage / IO error (unreadable record, nothing to compare)
//   3  a gated metric or record present in the baseline is missing on the
//      current side (so a silently-dropped benchmark cannot pass CI)
//   0  no regression, nothing missing
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/verify/json.h"

namespace {

namespace fs = std::filesystem;
using dsadc::verify::Json;
using dsadc::verify::json_parse;

Json load_json(const fs::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return json_parse(buf.str());
}

/// File name -> parsed record, for a file or a directory of BENCH_*.json.
std::map<std::string, Json> load_records(const std::string& arg) {
  std::map<std::string, Json> out;
  const fs::path path(arg);
  if (fs::is_directory(path)) {
    for (const auto& entry : fs::directory_iterator(path)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) == 0 &&
          entry.path().extension() == ".json") {
        out[name] = load_json(entry.path());
      }
    }
  } else {
    out[path.filename().string()] = load_json(path);
  }
  return out;
}

bool lower_is_better(const std::string& metric) {
  // "_ms"/"_s" only as a suffix ("items_per_second" must stay
  // higher-is-better); the rest anywhere in the name.
  static const char* const kSuffixes[] = {"_ms", "_us", "_ns"};
  for (const char* sfx : kSuffixes) {
    const std::size_t n = std::strlen(sfx);
    if (metric.size() >= n && metric.compare(metric.size() - n, n, sfx) == 0) {
      return true;
    }
  }
  static const char* const kKeywords[] = {"power",  "error",     "area",
                                          "adders", "macs",      "registers",
                                          "latency", "wall"};
  for (const char* kw : kKeywords) {
    if (metric.find(kw) != std::string::npos) return true;
  }
  return false;
}

bool gated(const std::string& metric, const std::vector<std::string>& gates) {
  if (gates.empty()) return true;
  for (const std::string& g : gates) {
    if (metric.find(g) != std::string::npos) return true;
  }
  return false;
}

/// One compared metric, kept for the ranked summary.
struct Delta {
  std::string file;
  std::string key;
  double base = 0.0;
  double cur = 0.0;
  double delta = 0.0;  ///< signed relative change
  bool lower = false;  ///< lower-is-better metric
  bool gate = false;
  bool bad = false;

  /// Adverse magnitude: positive when the metric moved in the regressing
  /// direction, regardless of which direction that is.
  double adverse() const { return lower ? delta : -delta; }
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  std::vector<std::string> gates;
  double tolerance = 0.20;
  std::size_t top = 5;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_diff: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--tolerance") {
      tolerance = std::atof(next());
    } else if (arg == "--top") {
      top = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--gate") {
      gates.emplace_back(next());
    } else if (arg == "--quiet" || arg == "-q") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: bench_diff BASELINE CURRENT [--tolerance FRAC]\n"
          "                  [--gate PATTERN]... [--top N] [--quiet]\n"
          "exit: 0 ok, 1 regression, 2 usage/IO, 3 gated metric missing\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "bench_diff: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    std::fprintf(stderr, "bench_diff: need BASELINE and CURRENT\n");
    return 2;
  }

  try {
    const auto baseline = load_records(positional[0]);
    const auto current = load_records(positional[1]);

    bool regressed = false;
    bool missing = false;
    std::vector<Delta> deltas;
    std::size_t compared_files = 0;
    for (const auto& [file, base] : baseline) {
      const auto it = current.find(file);
      if (it == current.end()) {
        std::printf("%s: missing on current side\n", file.c_str());
        missing = true;
        continue;
      }
      const Json& cur = it->second;
      ++compared_files;

      if (cur.contains("ok") && !cur.at("ok").as_bool()) {
        std::printf("%s: current run reports ok=false\n", file.c_str());
        regressed = true;
      }
      if (!base.contains("metrics") || !cur.contains("metrics")) continue;
      const Json& bm = base.at("metrics");
      const Json& cm = cur.at("metrics");

      for (const std::string& key : bm.keys()) {
        if (bm.at(key).type() != Json::Type::kNumber) continue;
        if (!cm.contains(key) ||
            cm.at(key).type() != Json::Type::kNumber) {
          if (gated(key, gates)) {
            std::printf("%s %s: gated metric missing on current side\n",
                        file.c_str(), key.c_str());
            missing = true;
          } else if (!quiet) {
            std::printf("%s %s: missing on current side (ungated)\n",
                        file.c_str(), key.c_str());
          }
          continue;
        }
        Delta d;
        d.file = file;
        d.key = key;
        d.base = bm.at(key).as_double();
        d.cur = cm.at(key).as_double();
        d.delta = d.base != 0.0 ? (d.cur - d.base) / std::abs(d.base)
                                : (d.cur == 0.0 ? 0.0 : INFINITY);
        d.lower = lower_is_better(key);
        d.gate = gated(key, gates);
        d.bad = d.gate && d.adverse() > tolerance;
        regressed = regressed || d.bad;
        if (!quiet || d.bad) {
          std::printf("%s %s: %.6g -> %.6g (%+.1f%%)%s%s\n", d.file.c_str(),
                      d.key.c_str(), d.base, d.cur, 100.0 * d.delta,
                      d.gate ? "" : " [ungated]",
                      d.bad ? "  REGRESSION" : "");
        }
        deltas.push_back(std::move(d));
      }
    }

    // Ranked summary: worst gated regressions first, then the best
    // improvements, both by adverse/favourable magnitude.
    if (top > 0 && !deltas.empty()) {
      std::vector<const Delta*> worst;
      std::vector<const Delta*> bestv;
      for (const Delta& d : deltas) {
        if (!std::isfinite(d.delta) || d.delta == 0.0) {
          if (d.adverse() > 0.0 && d.gate) worst.push_back(&d);
          continue;
        }
        (d.adverse() > 0.0 ? (d.gate ? worst : bestv) : bestv)
            .push_back(&d);
      }
      // bestv picked up ungated adverse moves above; keep only genuine
      // improvements there.
      bestv.erase(std::remove_if(bestv.begin(), bestv.end(),
                                 [](const Delta* d) {
                                   return d->adverse() >= 0.0;
                                 }),
                  bestv.end());
      const auto by_adverse = [](const Delta* a, const Delta* b) {
        return a->adverse() > b->adverse();
      };
      std::sort(worst.begin(), worst.end(), by_adverse);
      std::sort(bestv.begin(), bestv.end(),
                [](const Delta* a, const Delta* b) {
                  return a->adverse() < b->adverse();
                });
      if (!worst.empty()) {
        std::printf("\nworst regressions (gated):\n");
        for (std::size_t i = 0; i < worst.size() && i < top; ++i) {
          const Delta& d = *worst[i];
          std::printf("  %2zu. %s %s %+.1f%% (%.6g -> %.6g)%s\n", i + 1,
                      d.file.c_str(), d.key.c_str(), 100.0 * d.delta, d.base,
                      d.cur, d.bad ? "  OVER TOLERANCE" : "");
        }
      }
      if (!bestv.empty() && !quiet) {
        std::printf("\nbest improvements:\n");
        for (std::size_t i = 0; i < bestv.size() && i < top; ++i) {
          const Delta& d = *bestv[i];
          std::printf("  %2zu. %s %s %+.1f%% (%.6g -> %.6g)\n", i + 1,
                      d.file.c_str(), d.key.c_str(), 100.0 * d.delta, d.base,
                      d.cur);
        }
      }
    }

    if (compared_files == 0) {
      std::fprintf(stderr, "bench_diff: no records to compare\n");
      return 2;
    }
    if (!quiet) {
      std::printf("\nbench_diff: %zu record(s), tolerance %.0f%%: %s%s\n",
                  compared_files, 100.0 * tolerance,
                  regressed ? "REGRESSION" : "ok",
                  missing ? " (missing gated data)" : "");
    }
    if (regressed) return 1;
    if (missing) return 3;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_diff: %s\n", e.what());
    return 2;
  }
}
