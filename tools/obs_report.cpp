// obs_report: aggregate observability artifacts into one JSON document.
//
// Collects every BENCH_<name>.json telemetry record in a directory, an
// optional Chrome trace dump, and a fresh instrumented run of the paper's
// decimation chain (per-stage signal statistics plus the fixed-point
// event counters), and emits a single report:
//
//   obs_report [--bench-dir DIR] [--trace FILE] [-o OUT]
//
// DIR defaults to $DSADC_BENCH_OUT, falling back to the current directory.
// With no -o the report goes to stdout.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/decimator/chain.h"
#include "src/modulator/dsm.h"
#include "src/modulator/ntf.h"
#include "src/modulator/realize.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/verify/json.h"

namespace fs = std::filesystem;
using namespace dsadc;

namespace {

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path.string());
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// All BENCH_*.json records in `dir`, keyed by bench name; malformed files
/// are reported as {"parse_error": ...} entries rather than dropped.
verify::Json collect_bench_records(const fs::path& dir, int* count) {
  verify::Json out = verify::Json::object();
  *count = 0;
  if (!fs::is_directory(dir)) return out;
  std::vector<fs::path> files;
  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (e.is_regular_file() && name.rfind("BENCH_", 0) == 0 &&
        name.size() > 11 && name.substr(name.size() - 5) == ".json") {
      files.push_back(e.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& p : files) {
    const std::string name = p.filename().string();
    const std::string key = name.substr(6, name.size() - 11);
    try {
      out[key] = verify::json_parse(read_file(p));
      ++*count;
    } catch (const std::exception& e) {
      verify::Json err = verify::Json::object();
      err["parse_error"] = e.what();
      out[key] = err;
    }
  }
  return out;
}

/// Run the paper chain (5 MHz tone at MSA) with instrumentation on and
/// dump per-stage statistics plus the fixed-point event counters.
verify::Json chain_metrics_dump() {
  obs::set_enabled(true);
  auto& reg = obs::Registry::instance();
  reg.reset_all();

  const mod::CiffCoeffs coeffs =
      mod::realize_ciff(mod::synthesize_ntf(5, 16.0, 3.0, true));
  mod::CiffModulator modulator(coeffs, 4);
  const std::vector<double> u =
      mod::coherent_sine(1 << 14, 5e6, 640e6, 0.81, nullptr);
  const std::vector<std::int32_t> codes = modulator.run(u).codes;

  decim::DecimationChain chain(decim::paper_chain_config());
  std::vector<decim::StageProbe> probes;
  chain.process(codes, &probes);

  verify::Json j = verify::Json::object();
  j["stimulus"] = "5 MHz coherent tone at MSA (0.81), 16384 codes";
  verify::Json stages = verify::Json::array();
  for (const auto& p : probes) {
    verify::Json s = verify::Json::object();
    s["name"] = p.name;
    s["rate_hz"] = p.rate_hz;
    s["width_bits"] = p.width_bits;
    s["samples"] = p.samples.size();
    s["min_raw"] = p.stats.min_raw;
    s["max_raw"] = p.stats.max_raw;
    s["rms_raw"] = p.stats.rms_raw;
    s["peak_headroom_bits"] = p.stats.peak_headroom_bits;
    stages.push_back(std::move(s));
  }
  j["stages"] = std::move(stages);
  j["saturate_events"] =
      static_cast<std::int64_t>(reg.counter_total("fx.saturate."));
  j["wrap_events"] = static_cast<std::int64_t>(reg.counter_total("fx.wrap."));
  j["round_events"] = static_cast<std::int64_t>(reg.counter_total("fx.round."));
  j["registry"] = verify::json_parse(reg.to_json());
  return j;
}

/// Per-tenant service table from a registry dump (Registry::to_json):
/// service.accepted.ch<id> / service.shed.ch<id> counters plus the
/// service.throughput_sps.ch<id> gauge, one row per channel, with an
/// all-tenants totals row.
verify::Json tenant_table(const verify::Json& registry) {
  struct Tenant {
    double accepted = 0.0;
    double shed = 0.0;
    double throughput_sps = 0.0;
  };
  std::map<long, Tenant> tenants;
  const auto channel_of = [](const std::string& key,
                             const std::string& prefix) -> long {
    if (key.rfind(prefix, 0) != 0) return -1;
    const std::string id = key.substr(prefix.size());
    if (id.empty() ||
        id.find_first_not_of("0123456789") != std::string::npos) {
      return -1;
    }
    return std::strtol(id.c_str(), nullptr, 10);
  };
  if (registry.contains("counters")) {
    const verify::Json& counters = registry.at("counters");
    for (const std::string& key : counters.keys()) {
      long ch = channel_of(key, "service.accepted.ch");
      if (ch >= 0) tenants[ch].accepted = counters.at(key).as_double();
      ch = channel_of(key, "service.shed.ch");
      if (ch >= 0) tenants[ch].shed = counters.at(key).as_double();
    }
  }
  if (registry.contains("gauges")) {
    const verify::Json& gauges = registry.at("gauges");
    for (const std::string& key : gauges.keys()) {
      const long ch = channel_of(key, "service.throughput_sps.ch");
      if (ch >= 0) tenants[ch].throughput_sps = gauges.at(key).as_double();
    }
  }

  verify::Json rows = verify::Json::array();
  Tenant total;
  for (const auto& [ch, t] : tenants) {
    verify::Json row = verify::Json::object();
    row["channel"] = static_cast<std::int64_t>(ch);
    row["accepted"] = t.accepted;
    row["shed"] = t.shed;
    const double offered = t.accepted + t.shed;
    row["shed_fraction"] = offered > 0.0 ? t.shed / offered : 0.0;
    row["throughput_sps"] = t.throughput_sps;
    rows.push_back(std::move(row));
    total.accepted += t.accepted;
    total.shed += t.shed;
    total.throughput_sps += t.throughput_sps;
  }
  verify::Json out = verify::Json::object();
  out["tenant_count"] = static_cast<std::int64_t>(tenants.size());
  out["rows"] = std::move(rows);
  verify::Json tot = verify::Json::object();
  tot["accepted"] = total.accepted;
  tot["shed"] = total.shed;
  const double offered = total.accepted + total.shed;
  tot["shed_fraction"] = offered > 0.0 ? total.shed / offered : 0.0;
  tot["throughput_sps"] = total.throughput_sps;
  out["total"] = std::move(tot);
  return out;
}

/// Human-readable rendering of tenant_table() on stderr, so a CI log
/// shows the per-tenant picture without parsing the JSON report.
void print_tenant_table(const verify::Json& table) {
  std::fprintf(stderr, "%8s %12s %10s %8s %16s\n", "channel", "accepted",
               "shed", "shed%", "throughput_sps");
  const verify::Json& rows = table.at("rows");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const verify::Json& r = rows.at(i);
    std::fprintf(stderr, "%8lld %12.0f %10.0f %7.2f%% %16.0f\n",
                 static_cast<long long>(r.at("channel").as_double()),
                 r.at("accepted").as_double(), r.at("shed").as_double(),
                 100.0 * r.at("shed_fraction").as_double(),
                 r.at("throughput_sps").as_double());
  }
  const verify::Json& tot = table.at("total");
  std::fprintf(stderr, "%8s %12.0f %10.0f %7.2f%% %16.0f\n", "total",
               tot.at("accepted").as_double(), tot.at("shed").as_double(),
               100.0 * tot.at("shed_fraction").as_double(),
               tot.at("throughput_sps").as_double());
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--bench-dir DIR] [--trace FILE] [--registry FILE] "
      "[-o OUT]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string bench_dir;
  std::string trace_file;
  std::string registry_file;
  std::string out_file;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--bench-dir" && i + 1 < argc) {
      bench_dir = argv[++i];
    } else if (a == "--trace" && i + 1 < argc) {
      trace_file = argv[++i];
    } else if (a == "--registry" && i + 1 < argc) {
      registry_file = argv[++i];
    } else if (a == "-o" && i + 1 < argc) {
      out_file = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }
  if (bench_dir.empty()) {
    const char* env = std::getenv("DSADC_BENCH_OUT");
    bench_dir = (env != nullptr && env[0] != '\0') ? env : ".";
  }

  try {
    verify::Json report = verify::Json::object();
    report["tool"] = "obs_report";
    report["bench_dir"] = bench_dir;

    int n_bench = 0;
    report["benches"] = collect_bench_records(bench_dir, &n_bench);
    report["bench_count"] = n_bench;

    if (!trace_file.empty()) {
      const verify::Json trace = verify::json_parse(read_file(trace_file));
      verify::Json t = verify::Json::object();
      t["file"] = trace_file;
      t["event_count"] = trace.at("traceEvents").size();
      report["trace"] = std::move(t);
    }

    if (!registry_file.empty()) {
      const verify::Json registry =
          verify::json_parse(read_file(registry_file));
      verify::Json tenants = tenant_table(registry);
      tenants["file"] = registry_file;
      print_tenant_table(tenants);
      report["tenants"] = std::move(tenants);
    }

    report["chain"] = chain_metrics_dump();

    const std::string text = report.dump(2) + "\n";
    if (out_file.empty()) {
      std::fputs(text.c_str(), stdout);
    } else {
      std::ofstream out(out_file, std::ios::binary);
      if (!out) throw std::runtime_error("cannot write " + out_file);
      out << text;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "obs_report: %s\n", e.what());
    return 1;
  }
  return 0;
}
