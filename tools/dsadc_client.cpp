// dsadc_client: load generator / soak driver for the decimation service.
//
// Streams modulator stimulus over many channels and connections, verifies
// every returned sample against the scalar DecimationChain reference, and
// prints a throughput/loss report. Exits nonzero on any sample loss (block
// policy), accounting imbalance (shed policy), or protocol error.
//
//   dsadc_client --serve [options]          in-process server (default)
//   dsadc_client --unix /path/to.sock ...   against an external server
//   dsadc_client --tcp 127.0.0.1:7150 ...
//
// Options:
//   --channels N      total channels                   (default 64)
//   --connections N   client connections (alias --conns)  (default 4)
//   --blocks N        DATA frames per channel          (default 16)
//   --frames N        modulator codes per DATA frame   (default 512)
//   --preset P        chain config preset id           (default 0)
//   --policy P        block | shed (with --serve)      (default block)
//   --stimulus S      stimulus class name              (default modulator)
//   --lockstep        open channels with the LOCKSTEP flag, wait for every
//                     OPEN ack, then stream blocks barrier-paced across the
//                     sender threads so the server's batch groups stay
//                     runnable (exercises the SoA fast path)
#include <barrier>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/decimator/chain.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/service/client.h"
#include "src/service/net.h"
#include "src/service/server.h"
#include "src/service/wire.h"
#include "src/verify/stimulus.h"

namespace {

using namespace dsadc;
using namespace std::chrono_literals;

struct Args {
  std::string unix_path;
  std::string tcp_host;
  std::uint16_t tcp_port = 0;
  bool serve = false;
  std::size_t channels = 64;
  std::size_t conns = 4;
  std::size_t blocks = 16;
  std::size_t frames = 512;
  std::uint32_t preset = 0;
  std::string policy = "block";
  std::string stimulus = "modulator";
  bool lockstep = false;
  std::string registry_out;  ///< dump the metrics registry JSON here
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--serve | --unix PATH | --tcp HOST:PORT]\n"
               "  [--channels N] [--connections N] [--blocks N] [--frames N]\n"
               "  [--preset P] [--policy block|shed] [--stimulus NAME]\n"
               "  [--lockstep] [--registry-out FILE]\n",
               argv0);
}

bool parse_args(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "dsadc_client: %s needs a value\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--serve") {
      a->serve = true;
    } else if (arg == "--unix") {
      const char* v = next("--unix");
      if (!v) return false;
      a->unix_path = v;
    } else if (arg == "--tcp") {
      const char* v = next("--tcp");
      if (!v) return false;
      const std::string hp = v;
      const auto colon = hp.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "dsadc_client: --tcp wants HOST:PORT\n");
        return false;
      }
      a->tcp_host = hp.substr(0, colon);
      a->tcp_port =
          static_cast<std::uint16_t>(std::atoi(hp.c_str() + colon + 1));
    } else if (arg == "--channels") {
      const char* v = next("--channels");
      if (!v) return false;
      a->channels = std::strtoul(v, nullptr, 10);
    } else if (arg == "--conns" || arg == "--connections") {
      const char* v = next(arg.c_str());
      if (!v) return false;
      a->conns = std::strtoul(v, nullptr, 10);
    } else if (arg == "--lockstep") {
      a->lockstep = true;
    } else if (arg == "--blocks") {
      const char* v = next("--blocks");
      if (!v) return false;
      a->blocks = std::strtoul(v, nullptr, 10);
    } else if (arg == "--frames") {
      const char* v = next("--frames");
      if (!v) return false;
      a->frames = std::strtoul(v, nullptr, 10);
    } else if (arg == "--preset") {
      const char* v = next("--preset");
      if (!v) return false;
      a->preset = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--policy") {
      const char* v = next("--policy");
      if (!v) return false;
      a->policy = v;
    } else if (arg == "--stimulus") {
      const char* v = next("--stimulus");
      if (!v) return false;
      a->stimulus = v;
    } else if (arg == "--registry-out") {
      const char* v = next("--registry-out");
      if (!v) return false;
      a->registry_out = v;
    } else {
      usage(argv[0]);
      return false;
    }
  }
  if (!a->serve && a->unix_path.empty() && a->tcp_host.empty()) {
    a->serve = true;  // default: self-contained run
  }
  if (a->channels == 0 || a->conns == 0 || a->channels < a->conns ||
      a->blocks == 0 || a->frames == 0 || a->frames % 16 != 0) {
    std::fprintf(stderr,
                 "dsadc_client: need channels >= conns >= 1, blocks >= 1, "
                 "frames a positive multiple of 16\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, &args)) return 2;

  obs::set_enabled(true);

  // One stimulus vector shared by every channel: a single scalar reference
  // covers all of them, which is what makes loss detection bit-exact.
  std::mt19937_64 rng(12345);
  verify::StimulusClass cls;
  try {
    cls = verify::stimulus_from_name(args.stimulus);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dsadc_client: %s\n", e.what());
    return 2;
  }
  const auto raw =
      verify::make_stimulus(cls, args.frames, fx::Format{4, 0}, rng);
  std::vector<std::int32_t> codes(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    codes[i] = static_cast<std::int32_t>(raw[i]);
  }

  const auto cfg = service::preset_config(args.preset);
  if (!cfg) {
    std::fprintf(stderr, "dsadc_client: unknown preset %u\n", args.preset);
    return 2;
  }
  decim::DecimationChain chain(*cfg);
  std::vector<std::int64_t> ref;
  for (std::size_t b = 0; b < args.blocks; ++b) {
    const auto out = chain.process(codes);
    ref.insert(ref.end(), out.begin(), out.end());
  }
  const std::size_t per_block = ref.size() / args.blocks;

  std::unique_ptr<service::Server> server;
  if (args.serve) {
    service::ServerOptions o = service::options_from_env();
    o.unix_path = service::net::unique_socket_path("loadgen");
    if (args.policy == "shed") {
      o.policy = runtime::SessionRuntime::Overload::kShed;
    } else if (args.policy != "block") {
      std::fprintf(stderr, "dsadc_client: --policy block|shed\n");
      return 2;
    }
    server = std::make_unique<service::Server>(o);
    server->start();
    args.unix_path = server->unix_path();
  }

  std::vector<std::unique_ptr<service::Client>> clients;
  try {
    for (std::size_t c = 0; c < args.conns; ++c) {
      clients.push_back(args.unix_path.empty()
                            ? service::Client::connect_tcp(args.tcp_host,
                                                           args.tcp_port)
                            : service::Client::connect_unix(args.unix_path));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dsadc_client: %s\n", e.what());
    return 2;
  }

  const std::size_t per_conn = args.channels / args.conns;
  const std::size_t channels = per_conn * args.conns;  // even striping
  const auto t0 = std::chrono::steady_clock::now();

  std::vector<std::thread> senders;
  std::barrier pace(static_cast<std::ptrdiff_t>(args.conns));
  for (std::size_t c = 0; c < args.conns; ++c) {
    senders.emplace_back([&, c] {
      auto& client = *clients[c];
      for (std::size_t k = 0; k < per_conn; ++k) {
        const auto ch = static_cast<std::uint32_t>(c * per_conn + k);
        client.open(ch, args.preset, args.lockstep);
      }
      if (args.lockstep) {
        // All OPENs acked before any DATA flows: the server's lockstep
        // groups seal at full width only once the whole cohort is open.
        for (std::size_t k = 0; k < per_conn; ++k) {
          const auto ch = static_cast<std::uint32_t>(c * per_conn + k);
          client.wait_ack_count(ch, 1, 30s);
        }
        pace.arrive_and_wait();
      }
      for (std::size_t b = 0; b < args.blocks; ++b) {
        if (args.lockstep) pace.arrive_and_wait();
        for (std::size_t k = 0; k < per_conn; ++k) {
          const auto ch = static_cast<std::uint32_t>(c * per_conn + k);
          client.send_data(ch, codes);
        }
      }
    });
  }
  for (auto& t : senders) t.join();

  // Wait until every DATA frame has resolved: samples or a SHED notice.
  bool ok = true;
  std::size_t total_sheds = 0, exact = 0;
  const auto deadline = std::chrono::steady_clock::now() + 120s;
  for (std::size_t c = 0; c < args.conns && ok; ++c) {
    for (std::size_t k = 0; k < per_conn; ++k) {
      const auto ch = static_cast<std::uint32_t>(c * per_conn + k);
      for (;;) {
        const std::size_t blocks_in =
            clients[c]->sample_count(ch) / per_block;
        if (blocks_in + clients[c]->shed_count(ch) >= args.blocks) break;
        if (std::chrono::steady_clock::now() >= deadline ||
            clients[c]->disconnected()) {
          std::fprintf(stderr,
                       "dsadc_client: channel %u stalled at %zu blocks + "
                       "%zu sheds of %zu\n",
                       ch, blocks_in, clients[c]->shed_count(ch),
                       args.blocks);
          ok = false;
          break;
        }
        std::this_thread::sleep_for(1ms);
      }
      if (!ok) break;
      total_sheds += clients[c]->shed_count(ch);
      if (clients[c]->shed_count(ch) == 0 &&
          clients[c]->samples(ch) == ref) {
        ++exact;
      } else if (clients[c]->sample_count(ch) % per_block != 0) {
        std::fprintf(stderr, "dsadc_client: channel %u partial block\n", ch);
        ok = false;
      }
    }
    if (!clients[c]->errors().empty()) {
      for (const auto& [ch, code] : clients[c]->errors()) {
        std::fprintf(stderr, "dsadc_client: channel %u error %s\n", ch,
                     service::error_code_name(code));
      }
      ok = false;
    }
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - t0;

  const std::size_t sent = channels * args.blocks;
  const double input_sps =
      static_cast<double>((sent - total_sheds) * args.frames) /
      (wall.count() > 0 ? wall.count() : 1e-9);
  std::printf("channels:        %zu over %zu connection(s)\n", channels,
              args.conns);
  std::printf("frames sent:     %zu x %zu codes (%s)\n", sent, args.frames,
              args.stimulus.c_str());
  std::printf("frames shed:     %zu\n", total_sheds);
  std::printf("bit-exact chans: %zu / %zu\n", exact, channels);
  std::printf("wall time:       %.3f s\n", wall.count());
  std::printf("throughput:      %.2f Mcodes/s aggregate\n", input_sps / 1e6);

  if (args.policy == "block" && (total_sheds != 0 || exact != channels)) {
    std::fprintf(stderr,
                 "dsadc_client: LOSS under block policy (%zu sheds, "
                 "%zu/%zu exact)\n",
                 total_sheds, exact, channels);
    ok = false;
  }

  clients.clear();
  if (server) server->stop();

  if (!args.registry_out.empty()) {
    // The per-tenant service.* metrics live in this process when serving
    // in-process; obs_report --registry renders them as a tenant table.
    const std::string json = obs::Registry::instance().to_json(2) + "\n";
    std::FILE* f = std::fopen(args.registry_out.c_str(), "wb");
    if (f == nullptr ||
        std::fwrite(json.data(), 1, json.size(), f) != json.size()) {
      std::fprintf(stderr, "dsadc_client: cannot write %s\n",
                   args.registry_out.c_str());
      ok = false;
    }
    if (f != nullptr) std::fclose(f);
  }

  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
