// dsadc_query: query engine CLI for binary columnar trace stores
// (src/obs/store). Typical flow: run any workload with
// DSADC_STORE_OUT=<dir>, then slice the store by time / channel / stage /
// category, aggregate durations or values, or export to Chrome JSON:
//
//   dsadc_query DIR --summary
//   dsadc_query DIR --cat txn --channel 3 --limit 20
//   dsadc_query DIR --cat stage --name stage.halfband --agg stats --by stage
//   dsadc_query DIR --since 1000 --until 250000 --cat service --count
//   dsadc_query DIR --cat txn --export-chrome trace.json
//
// --expect-min N makes the process exit nonzero when fewer than N events
// match, so CI smoke jobs can assert instrumentation actually fired.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/obs/store/query.h"

using namespace dsadc::obs::store;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s STORE_DIR [filters] [action]\n"
      "filters:\n"
      "  --cat LIST        categories: flow,fx,stage,service,runtime,txn\n"
      "  --channel N       channel id\n"
      "  --stage N         stage index\n"
      "  --txn N           transaction id\n"
      "  --name SUBSTR     event-name substring\n"
      "  --since US        min timestamp (us since store epoch)\n"
      "  --until US        max timestamp\n"
      "  --min-dur US      minimum duration\n"
      "actions (default: list matches):\n"
      "  --limit N         list at most N events (default 50, 0 = all)\n"
      "  --count           print only the match count\n"
      "  --agg KIND        aggregate: count | sum | p50 | p99 | stats\n"
      "  --field F         aggregation field: dur (default) | value\n"
      "  --by KEY          group by: name (default) | channel | stage |\n"
      "                    category | tid | none\n"
      "  --summary         per-category totals and time ranges\n"
      "  --strings         dump the interned string table\n"
      "  --export-chrome F write matches as Chrome trace JSON\n"
      "  --expect-min N    exit 1 when fewer than N events match\n",
      argv0);
  return 2;
}

bool parse_i64(const char* s, std::int64_t* out) {
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_categories(const std::string& list, std::vector<Category>* out) {
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::string tok =
        list.substr(pos, comma == std::string::npos ? comma : comma - pos);
    Category c;
    if (!category_from_name(tok, &c)) return false;
    out->push_back(c);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return !out->empty();
}

void print_summary(const StoreReader& reader) {
  std::printf("%-8s %12s %14s %14s  %s\n", "category", "events", "min_ts_us",
              "max_ts_us", "index");
  for (std::size_t i = 0; i < kCategoryCount; ++i) {
    const auto c = static_cast<Category>(i);
    if (!reader.has_category(c)) continue;
    const auto [lo, hi] = reader.time_range(c);
    std::printf("%-8s %12" PRIu64 " %14" PRId64 " %14" PRId64 "  %s\n",
                category_name(c), reader.total_events(c), lo, hi,
                reader.recovered(c) ? "recovered" : "footer");
  }
  std::printf("strings: %zu interned names\n", reader.strings().size());
}

void print_event(const StoreReader& reader, const Event& e) {
  std::string loc;
  if (e.channel != kNoChannel) loc += " ch" + std::to_string(e.channel);
  if (e.stage != kNoStage) loc += " stage" + std::to_string(e.stage);
  if (e.txn != 0) loc += " txn" + std::to_string(e.txn);
  if (e.aux != 0) loc += " aux" + std::to_string(e.aux);
  std::printf("%12" PRId64 " %8" PRId64 " %-8s %-24s value=%" PRId64
              "%s tid%u\n",
              e.ts_us, e.dur_us, category_name(e.category),
              reader.name(e.name).c_str(), e.value, loc.c_str(), e.tid);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string dir = argv[1];

  Query q;
  std::size_t limit = 50;
  bool count_only = false;
  bool summary = false;
  bool dump_strings = false;
  std::string agg;
  AggField field = AggField::kDur;
  GroupKey group = GroupKey::kName;
  std::string chrome_out;
  std::int64_t expect_min = -1;

  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    const bool has_arg = i + 1 < argc;
    std::int64_t n = 0;
    if (a == "--cat" && has_arg) {
      if (!parse_categories(argv[++i], &q.categories)) {
        std::fprintf(stderr, "dsadc_query: bad category list\n");
        return 2;
      }
    } else if (a == "--channel" && has_arg && parse_i64(argv[++i], &n)) {
      q.has_channel = true;
      q.channel = static_cast<std::uint32_t>(n);
    } else if (a == "--stage" && has_arg && parse_i64(argv[++i], &n)) {
      q.has_stage = true;
      q.stage = static_cast<std::uint32_t>(n);
    } else if (a == "--txn" && has_arg && parse_i64(argv[++i], &n)) {
      q.has_txn = true;
      q.txn = static_cast<std::uint64_t>(n);
    } else if (a == "--name" && has_arg) {
      q.name_substr = argv[++i];
    } else if (a == "--since" && has_arg && parse_i64(argv[++i], &n)) {
      q.ts_min = n;
    } else if (a == "--until" && has_arg && parse_i64(argv[++i], &n)) {
      q.ts_max = n;
    } else if (a == "--min-dur" && has_arg && parse_i64(argv[++i], &n)) {
      q.min_dur_us = n;
    } else if (a == "--limit" && has_arg && parse_i64(argv[++i], &n)) {
      limit = static_cast<std::size_t>(n);
    } else if (a == "--count") {
      count_only = true;
    } else if (a == "--agg" && has_arg) {
      agg = argv[++i];
    } else if (a == "--field" && has_arg) {
      const std::string f = argv[++i];
      if (f == "dur") {
        field = AggField::kDur;
      } else if (f == "value") {
        field = AggField::kValue;
      } else {
        return usage(argv[0]);
      }
    } else if (a == "--by" && has_arg) {
      const std::string k = argv[++i];
      if (k == "name") group = GroupKey::kName;
      else if (k == "channel") group = GroupKey::kChannel;
      else if (k == "stage") group = GroupKey::kStage;
      else if (k == "category") group = GroupKey::kCategory;
      else if (k == "tid") group = GroupKey::kTid;
      else if (k == "none") group = GroupKey::kNone;
      else return usage(argv[0]);
    } else if (a == "--summary") {
      summary = true;
    } else if (a == "--strings") {
      dump_strings = true;
    } else if (a == "--export-chrome" && has_arg) {
      chrome_out = argv[++i];
    } else if (a == "--expect-min" && has_arg && parse_i64(argv[++i], &n)) {
      expect_min = n;
    } else {
      return usage(argv[0]);
    }
  }

  const StoreReader reader(dir);
  if (!reader.ok()) {
    std::fprintf(stderr, "dsadc_query: %s\n", reader.error().c_str());
    return 1;
  }

  if (summary) print_summary(reader);
  if (dump_strings) {
    const auto& strings = reader.strings();
    for (std::size_t i = 0; i < strings.size(); ++i) {
      std::printf("%4zu %s\n", i, strings[i].c_str());
    }
  }

  std::uint64_t matched = 0;
  if (!agg.empty()) {
    const std::vector<AggRow> rows = aggregate(reader, q, field, group);
    const char* fname = field == AggField::kDur ? "dur_us" : "value";
    for (const AggRow& r : rows) matched += r.count;
    if (agg == "count") {
      for (const AggRow& r : rows) {
        std::printf("%-28s %12" PRIu64 "\n", r.key.c_str(), r.count);
      }
    } else if (agg == "sum") {
      for (const AggRow& r : rows) {
        std::printf("%-28s %12" PRIu64 "  sum(%s)=%.0f\n", r.key.c_str(),
                    r.count, fname, r.sum);
      }
    } else if (agg == "p50" || agg == "p99") {
      for (const AggRow& r : rows) {
        std::printf("%-28s %12" PRIu64 "  %s(%s)=%.1f\n", r.key.c_str(),
                    r.count, agg.c_str(), fname,
                    agg == "p50" ? r.p50 : r.p99);
      }
    } else if (agg == "stats") {
      std::printf("%-28s %12s %12s %10s %10s %10s\n", "key", "count",
                  (std::string("mean_") + fname).c_str(), "p50", "p99", "max");
      for (const AggRow& r : rows) {
        std::printf("%-28s %12" PRIu64 " %12.1f %10.1f %10.1f %10.1f\n",
                    r.key.c_str(), r.count, r.mean, r.p50, r.p99, r.max);
      }
    } else {
      return usage(argv[0]);
    }
  } else if (!chrome_out.empty()) {
    matched = run_query(reader, q, nullptr);
    if (!export_chrome(reader, q, chrome_out)) {
      std::fprintf(stderr, "dsadc_query: cannot write %s\n",
                   chrome_out.c_str());
      return 1;
    }
    std::printf("wrote %" PRIu64 " events to %s\n", matched,
                chrome_out.c_str());
  } else if (count_only) {
    matched = run_query(reader, q, nullptr);
    std::printf("%" PRIu64 "\n", matched);
  } else if (!summary && !dump_strings) {
    std::vector<Event> events;
    matched = run_query(reader, q, &events, limit);
    for (const Event& e : events) print_event(reader, e);
    if (limit != 0 && events.size() == limit) {
      // The scan stops at the limit; recount so --expect-min still sees
      // the full total.
      matched = run_query(reader, q, nullptr);
      std::printf("... (%" PRIu64 " total matches, showing %zu)\n", matched,
                  events.size());
    } else {
      std::printf("%" PRIu64 " matches\n", matched);
    }
  } else {
    matched = run_query(reader, q, nullptr);
  }

  if (expect_min >= 0 &&
      matched < static_cast<std::uint64_t>(expect_min)) {
    std::fprintf(stderr,
                 "dsadc_query: expected at least %" PRId64
                 " matches, got %" PRIu64 "\n",
                 expect_min, matched);
    return 1;
  }
  return 0;
}
