// Replay a differential-harness repro file.
//
//   repro_runner <repro.json> [more.json ...]
//
// Loads each self-contained case (config + stimulus) written by the
// property suite's shrinker, re-runs the three-way comparison, and prints
// the verdict. Exit code 0 when every case now PASSES, 1 when any still
// FAILS (i.e. the bug is still live), 2 on usage/parse errors.
#include <cstdio>
#include <exception>

#include "src/verify/repro.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <repro.json> [more.json ...]\n", argv[0]);
    return 2;
  }
  int still_failing = 0;
  for (int i = 1; i < argc; ++i) {
    try {
      const auto c = dsadc::verify::load_repro(argv[i]);
      const auto outcome = dsadc::verify::replay(c);
      if (outcome.ok) {
        std::printf("PASS %s  (%s; max ref error %.3g within bound %.3g)\n",
                    argv[i], dsadc::verify::describe_case(c).c_str(),
                    outcome.max_ref_error, outcome.error_bound);
      } else {
        ++still_failing;
        std::printf("FAIL %s  (%s)\n     leg: %s\n     %s\n", argv[i],
                    dsadc::verify::describe_case(c).c_str(),
                    outcome.leg.c_str(), outcome.detail.c_str());
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ERROR %s: %s\n", argv[i], e.what());
      return 2;
    }
  }
  return still_failing > 0 ? 1 : 0;
}
