// Lint the paper's decimation-filter netlists.
//
//   lint_rtl [--json FILE] [--baseline FILE] [--suppress PATTERN]...
//            [--module NAME] [--quiet] [--sim-crosscheck]
//
// Elaborates the full paper chain (Sinc4/Sinc4/Sinc6, Saramaki halfband,
// CSD scaler, FIR equalizer) plus every per-stage module, runs the static
// analyzer (src/analyze) on each, and additionally cross-checks the
// analyzer's *proven* minimum CIC register widths against both the
// filterdesign Bmax formula (K*log2(M) + Bin - 1) and the widths the
// builders actually synthesized.
//
// --sim-crosscheck additionally runs every linted module through both
// simulation engines (interpreted reference and the compiled phase-
// scheduled engine) on a deterministic stimulus and demands bit-identical
// output streams and activity counters -- the dynamic counterpart of the
// static width proofs, and CI's engine-equivalence gate.
//
// Exit codes:
//   0  no unsuppressed error-severity findings, cross-check consistent,
//      no baseline regression
//   1  error findings, cross-check mismatch, engine divergence, or a
//      previously-clean module (per --baseline) gained an error
//   2  usage / IO error
#include <cmath>
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analyze/lint.h"
#include "src/analyze/report.h"
#include "src/decimator/chain.h"
#include "src/rtl/builders.h"
#include "src/rtl/compiled_sim.h"
#include "src/rtl/sim.h"
#include "src/verify/json.h"

namespace {

using dsadc::analyze::lint_module;
using dsadc::analyze::LintOptions;
using dsadc::analyze::ModuleReport;
using dsadc::analyze::proven_min_register_width;
using dsadc::verify::Json;

struct CicCheck {
  std::string module;
  int proven = 0;       ///< analyzer: max required width over state nodes
  int formula = 0;      ///< design::CicSpec::register_width()
  int synthesized = 0;  ///< widest state node the builder emitted
  bool ok = false;
};

int max_state_width(const dsadc::rtl::Module& m) {
  int w = 0;
  for (const auto& node : m.nodes()) {
    if (node.kind == dsadc::rtl::OpKind::kReg ||
        node.kind == dsadc::rtl::OpKind::kDecimate) {
      w = std::max(w, node.width);
    }
  }
  return w;
}

struct SimCheck {
  std::string module;
  bool ok = false;
  std::string detail;  ///< first divergence, empty when ok
};

/// Run `m` through the interpreted and compiled engines on a deterministic
/// full-range stimulus; outputs, tick counts, and activity counters must
/// all be bit-identical.
SimCheck sim_crosscheck_module(const dsadc::rtl::Module& m,
                               dsadc::rtl::NodeId in, const std::string& name) {
  SimCheck check;
  check.module = name;

  const auto& node = m.nodes()[static_cast<std::size_t>(in)];
  // xorshift64 stimulus masked to the input width: deterministic, full
  // bit coverage, independent of library RNG implementations.
  std::uint64_t s = 0x9e3779b97f4a7c15ull;
  std::vector<std::int64_t> stim(512);
  for (auto& v : stim) {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    const int shift = 64 - node.width;
    v = static_cast<std::int64_t>(s << shift) >> shift;
  }

  dsadc::rtl::Simulator interp(m);
  const auto ref = interp.run({{in, stim}});
  dsadc::rtl::CompiledSimulator compiled(m);
  const auto got = compiled.run({{in, stim}}, {.activity = true});

  std::ostringstream os;
  if (got.outputs != ref.outputs) {
    os << "output streams diverge";
  } else if (got.activity.base_ticks != ref.activity.base_ticks) {
    os << "base_ticks " << got.activity.base_ticks << " vs "
       << ref.activity.base_ticks;
  } else if (got.activity.updates != ref.activity.updates) {
    os << "per-node update counts diverge";
  } else if (got.activity.bit_toggles != ref.activity.bit_toggles) {
    os << "per-node toggle counts diverge";
  }
  check.detail = os.str();
  check.ok = check.detail.empty();
  return check;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string baseline_path;
  std::string only_module;
  bool quiet = false;
  bool sim_crosscheck = false;
  LintOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "lint_rtl: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--json") {
      json_path = next();
    } else if (arg == "--baseline") {
      baseline_path = next();
    } else if (arg == "--suppress") {
      options.suppress.emplace_back(next());
    } else if (arg == "--module") {
      only_module = next();
    } else if (arg == "--quiet" || arg == "-q") {
      quiet = true;
    } else if (arg == "--sim-crosscheck") {
      sim_crosscheck = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: lint_rtl [--json FILE] [--baseline FILE]\n"
          "                [--suppress PATTERN]... [--module NAME] "
          "[--quiet] [--sim-crosscheck]\n");
      return 0;
    } else {
      std::fprintf(stderr, "lint_rtl: unknown flag '%s'\n", arg.c_str());
      return 2;
    }
  }

  try {
    const auto config = dsadc::decim::paper_chain_config();
    const auto chain = dsadc::rtl::build_chain(config);

    std::vector<const dsadc::rtl::Module*> modules;
    std::vector<dsadc::rtl::NodeId> input_of;
    std::vector<ModuleReport> reports;
    // Chain stage index behind each report (the full chain gets
    // chain.stages.size()); keeps the CIC cross-check aligned when
    // --module filters the list.
    std::vector<std::size_t> stage_of;
    for (std::size_t s = 0; s < chain.stages.size(); ++s) {
      // Stage names are unique ("sinc4_1", "sinc4_2", ...); module names
      // are not (both Sinc4 stages elaborate the same module).
      const std::string& name = s < chain.stage_names.size()
                                    ? chain.stage_names[s]
                                    : chain.stages[s].module.name();
      if (!only_module.empty() && name != only_module) continue;
      LintOptions stage_options = options;
      stage_options.module_name = name;
      modules.push_back(&chain.stages[s].module);
      input_of.push_back(chain.stages[s].in);
      reports.push_back(lint_module(chain.stages[s].module, stage_options));
      stage_of.push_back(s);
    }
    if (only_module.empty() || chain.full.name() == only_module) {
      modules.push_back(&chain.full);
      input_of.push_back(chain.in);
      reports.push_back(lint_module(chain.full, options));
      stage_of.push_back(chain.stages.size());
    }
    if (reports.empty()) {
      std::fprintf(stderr, "lint_rtl: no module named '%s'\n",
                   only_module.c_str());
      return 2;
    }

    // Cross-check: for each Sinc stage the analyzer's proven minimum safe
    // register width must equal both the Hogenauer formula and what the
    // builder synthesized. A three-way match means the width proofs, the
    // design equations, and the netlist agree.
    bool cross_check_ok = true;
    std::vector<CicCheck> checks;
    for (std::size_t r = 0; r < reports.size(); ++r) {
      const std::size_t s = stage_of[r];
      if (s >= config.cic_stages.size()) continue;  // not a CIC stage
      const auto& spec = config.cic_stages[s];
      CicCheck check;
      check.module = reports[r].module;
      check.proven = proven_min_register_width(*modules[r], reports[r].range);
      check.formula = spec.register_width();
      check.synthesized = max_state_width(*modules[r]);
      check.ok = check.proven == check.formula &&
                 check.formula == check.synthesized;
      cross_check_ok = cross_check_ok && check.ok;
      checks.push_back(check);
    }

    // Engine-equivalence gate: interpreted vs compiled simulator on every
    // linted module.
    bool sim_check_ok = true;
    std::vector<SimCheck> sim_checks;
    if (sim_crosscheck) {
      for (std::size_t r = 0; r < reports.size(); ++r) {
        sim_checks.push_back(
            sim_crosscheck_module(*modules[r], input_of[r], reports[r].module));
        sim_check_ok = sim_check_ok && sim_checks.back().ok;
      }
    }

    Json doc = dsadc::analyze::json_report(reports);
    Json jchecks = Json::array();
    for (const CicCheck& c : checks) {
      Json jc = Json::object();
      jc["module"] = Json{c.module};
      jc["proven_width"] = Json{c.proven};
      jc["formula_width"] = Json{c.formula};
      jc["synthesized_width"] = Json{c.synthesized};
      jc["ok"] = Json{c.ok};
      jchecks.push_back(std::move(jc));
    }
    doc["cic_width_check"] = std::move(jchecks);
    if (sim_crosscheck) {
      Json jsims = Json::array();
      for (const SimCheck& c : sim_checks) {
        Json jc = Json::object();
        jc["module"] = Json{c.module};
        jc["ok"] = Json{c.ok};
        if (!c.ok) jc["detail"] = Json{c.detail};
        jsims.push_back(std::move(jc));
      }
      doc["sim_crosscheck"] = std::move(jsims);
    }

    // Baseline gate: any module that was error-free in the baseline report
    // must stay error-free.
    std::vector<std::string> regressions;
    if (!baseline_path.empty()) {
      std::ifstream in(baseline_path);
      if (!in) {
        std::fprintf(stderr, "lint_rtl: cannot read baseline %s\n",
                     baseline_path.c_str());
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      const Json base = dsadc::verify::json_parse(buf.str());
      const Json& base_modules = base.at("modules");
      for (std::size_t i = 0; i < base_modules.size(); ++i) {
        const Json& bm = base_modules.at(i);
        if (bm.at("errors").as_int() != 0) continue;  // was already dirty
        const std::string name = bm.at("module").as_string();
        for (const ModuleReport& r : reports) {
          if (r.module == name && r.errors > 0) regressions.push_back(name);
        }
      }
    }

    if (!json_path.empty()) {
      std::ofstream out(json_path);
      if (!out) {
        std::fprintf(stderr, "lint_rtl: cannot write %s\n", json_path.c_str());
        return 2;
      }
      out << doc.dump(2) << "\n";
    }

    if (!quiet) {
      std::fputs(dsadc::analyze::text_report(reports).c_str(), stdout);
      for (const CicCheck& c : checks) {
        std::printf("cic-width %s: proven %d, formula %d, synthesized %d  %s\n",
                    c.module.c_str(), c.proven, c.formula, c.synthesized,
                    c.ok ? "OK" : "MISMATCH");
      }
      for (const SimCheck& c : sim_checks) {
        std::printf("sim-crosscheck %s: %s%s%s\n", c.module.c_str(),
                    c.ok ? "OK" : "DIVERGED", c.ok ? "" : " -- ",
                    c.detail.c_str());
      }
      for (const std::string& name : regressions) {
        std::printf("baseline regression: module '%s' was clean, now has "
                    "errors\n",
                    name.c_str());
      }
    }

    const bool failed = dsadc::analyze::has_errors(reports) ||
                        !cross_check_ok || !sim_check_ok ||
                        !regressions.empty();
    return failed ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lint_rtl: %s\n", e.what());
    return 2;
  }
}
