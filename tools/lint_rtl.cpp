// Lint the paper's decimation-filter netlists.
//
//   lint_rtl [--json FILE] [--baseline FILE] [--suppress PATTERN]...
//            [--module NAME] [--quiet] [--sim-crosscheck]
//            [--require-codegen]
//            [--optimize] [--proof-dump FILE]
//            [--opt-baseline FILE] [--write-opt-baseline FILE]
//
// Elaborates the full paper chain (Sinc4/Sinc4/Sinc6, Saramaki halfband,
// CSD scaler, FIR equalizer) plus every per-stage module, runs the static
// analyzer (src/analyze) on each, and additionally cross-checks the
// analyzer's *proven* minimum CIC register widths against both the
// filterdesign Bmax formula (K*log2(M) + Bin - 1) and the widths the
// builders actually synthesized.
//
// --sim-crosscheck additionally runs every linted module through all
// simulation engines (interpreted reference, compiled op tape, and --
// when a toolchain is available -- the JIT codegen kernel) on a
// deterministic stimulus and demands bit-identical output streams and
// activity counters -- the dynamic counterpart of the static width
// proofs, and CI's engine-equivalence gate. --require-codegen turns a
// tape fallback into a failure so the codegen CI lane cannot silently
// lose its subject.
//
// --optimize runs the proof-carrying netlist optimizer (src/analyze/opt)
// on every linted module, re-checks each proof bundle with the independent
// checker, and (under --sim-crosscheck) differentially validates the
// optimized module against the original on both engines, activity
// counters included. --proof-dump writes every proof record as JSON.
// --opt-baseline gates the optimization report against a committed
// baseline: compiled-tape ops, register bits and adder counts of the
// optimized modules must not regress. --write-opt-baseline refreshes it.
//
// Exit codes:
//   0  no unsuppressed error-severity findings, cross-check consistent,
//      no baseline regression
//   1  error findings, cross-check mismatch, engine divergence, a
//      previously-clean module (per --baseline) gained an error, a proof
//      failed to check, or the optimization report regressed
//   2  usage / IO error
#include <cmath>
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analyze/lint.h"
#include "src/analyze/opt/equiv.h"
#include "src/analyze/opt/opt.h"
#include "src/analyze/opt/proof.h"
#include "src/analyze/report.h"
#include "src/decimator/chain.h"
#include "src/rtl/builders.h"
#include "src/rtl/compiled_sim.h"
#include "src/rtl/sim.h"
#include "src/verify/json.h"

namespace {

using dsadc::analyze::lint_module;
using dsadc::analyze::LintOptions;
using dsadc::analyze::ModuleReport;
using dsadc::analyze::proven_min_register_width;
using dsadc::verify::Json;

struct CicCheck {
  std::string module;
  int proven = 0;       ///< analyzer: max required width over state nodes
  int formula = 0;      ///< design::CicSpec::register_width()
  int synthesized = 0;  ///< widest state node the builder emitted
  bool ok = false;
};

int max_state_width(const dsadc::rtl::Module& m) {
  int w = 0;
  for (const auto& node : m.nodes()) {
    if (node.kind == dsadc::rtl::OpKind::kReg ||
        node.kind == dsadc::rtl::OpKind::kDecimate) {
      w = std::max(w, node.width);
    }
  }
  return w;
}

struct SimCheck {
  std::string module;
  bool ok = false;
  std::string engines;  ///< engines exercised, e.g. "interp/tape/codegen"
  std::string detail;   ///< first divergence, empty when ok
};

/// xorshift64 stimulus masked to the input width: deterministic, full
/// bit coverage, independent of library RNG implementations.
std::vector<std::int64_t> make_stimulus(int width, std::size_t samples) {
  std::uint64_t s = 0x9e3779b97f4a7c15ull;
  std::vector<std::int64_t> stim(samples);
  for (auto& v : stim) {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    const int shift = 64 - width;
    v = static_cast<std::int64_t>(s << shift) >> shift;
  }
  return stim;
}

/// Compare one engine's run against the interpreter reference; empty
/// string when bit-identical (outputs, tick counts, activity counters).
std::string diff_runs(const dsadc::rtl::SimResult& ref,
                      const dsadc::rtl::SimResult& got,
                      const char* engine) {
  std::ostringstream os;
  if (got.outputs != ref.outputs) {
    os << engine << ": output streams diverge";
  } else if (got.activity.base_ticks != ref.activity.base_ticks) {
    os << engine << ": base_ticks " << got.activity.base_ticks << " vs "
       << ref.activity.base_ticks;
  } else if (got.activity.updates != ref.activity.updates) {
    os << engine << ": per-node update counts diverge";
  } else if (got.activity.bit_toggles != ref.activity.bit_toggles) {
    os << engine << ": per-node toggle counts diverge";
  }
  return os.str();
}

/// Run `m` through every simulation engine on a deterministic full-range
/// stimulus; outputs, tick counts, and activity counters must all be
/// bit-identical to the interpreter. The tape engine is always checked;
/// the codegen engine joins the comparison when it can be built (and is
/// mandatory under --require-codegen, so a CI lane that expects the JIT
/// cannot silently fall back to the tape).
SimCheck sim_crosscheck_module(const dsadc::rtl::Module& m,
                               dsadc::rtl::NodeId in, const std::string& name,
                               bool require_codegen) {
  using Codegen = dsadc::rtl::CompiledSimOptions::Codegen;
  SimCheck check;
  check.module = name;
  check.engines = "interp/tape";

  const auto& node = m.nodes()[static_cast<std::size_t>(in)];
  const std::vector<std::int64_t> stim = make_stimulus(node.width, 512);

  dsadc::rtl::Simulator interp(m);
  const auto ref = interp.run({{in, stim}});

  dsadc::rtl::CompiledSimulator tape(m, {.codegen = Codegen::kOff});
  check.detail =
      diff_runs(ref, tape.run({{in, stim}}, {.activity = true}), "tape");

  if (check.detail.empty()) {
    dsadc::rtl::CompiledSimulator cg(m, {.codegen = Codegen::kOn});
    if (cg.engine() == dsadc::rtl::SimEngine::kCodegen) {
      check.engines += "/codegen";
      check.detail =
          diff_runs(ref, cg.run({{in, stim}}, {.activity = true}), "codegen");
    } else if (require_codegen) {
      check.detail = "codegen engine unavailable: " + cg.engine_detail();
    }
  }
  check.ok = check.detail.empty();
  return check;
}

/// Per-module optimization report: proof-checker verdict, differential
/// equivalence verdict, and the hardware-cost metrics the opt baseline
/// gates on.
struct OptCheck {
  std::string module;
  bool proofs_ok = false;
  bool equiv_ok = true;   ///< trivially true unless equiv_ran
  bool equiv_ran = false;
  std::size_t proofs = 0;
  std::size_t nodes = 0;
  std::size_t nodes_opt = 0;
  std::size_t tape_ops = 0;      ///< compiled-sim scheduled ops / period
  std::size_t tape_ops_opt = 0;
  std::size_t register_bits = 0;
  std::size_t register_bits_opt = 0;
  std::size_t adders = 0;
  std::size_t adders_opt = 0;
  std::string detail;  ///< first failure, empty when clean
  std::vector<dsadc::analyze::opt::RewriteProof> proof_records;
};

OptCheck run_opt_check(const dsadc::rtl::Module& m, dsadc::rtl::NodeId in,
                       const std::string& name, bool with_equiv) {
  OptCheck check;
  check.module = name;

  auto opt = dsadc::analyze::opt::optimize(m);
  const auto verdict = dsadc::analyze::opt::check_proofs(m, opt.proofs);
  check.proofs_ok = verdict.ok;
  if (!verdict.ok && !verdict.errors.empty()) check.detail = verdict.errors[0];
  check.proofs = opt.proofs.size();
  check.nodes = m.size();
  check.nodes_opt = opt.module.size();
  check.tape_ops =
      dsadc::rtl::CompiledSimulator(m).scheduled_ops_per_period();
  check.tape_ops_opt =
      dsadc::rtl::CompiledSimulator(opt.module).scheduled_ops_per_period();
  check.register_bits = m.register_bits();
  check.register_bits_opt = opt.module.register_bits();
  check.adders = m.adder_count();
  check.adders_opt = opt.module.adder_count();

  if (with_equiv) {
    check.equiv_ran = true;
    const auto& node = m.nodes()[static_cast<std::size_t>(in)];
    const std::vector<std::int64_t> stim = make_stimulus(node.width, 512);
    const auto equiv = dsadc::analyze::opt::check_optimized_equivalence(
        m, opt, {{in, stim}});
    check.equiv_ok = equiv.ok;
    if (!equiv.ok && check.detail.empty() && !equiv.errors.empty()) {
      check.detail = equiv.errors[0];
    }
  }
  check.proof_records = std::move(opt.proofs);
  return check;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string baseline_path;
  std::string only_module;
  std::string proof_dump_path;
  std::string opt_baseline_path;
  std::string write_opt_baseline_path;
  bool quiet = false;
  bool sim_crosscheck = false;
  bool require_codegen = false;
  bool optimize_modules = false;
  LintOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "lint_rtl: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--json") {
      json_path = next();
    } else if (arg == "--baseline") {
      baseline_path = next();
    } else if (arg == "--suppress") {
      options.suppress.emplace_back(next());
    } else if (arg == "--module") {
      only_module = next();
    } else if (arg == "--quiet" || arg == "-q") {
      quiet = true;
    } else if (arg == "--sim-crosscheck") {
      sim_crosscheck = true;
    } else if (arg == "--require-codegen") {
      require_codegen = true;
    } else if (arg == "--optimize") {
      optimize_modules = true;
    } else if (arg == "--proof-dump") {
      proof_dump_path = next();
      optimize_modules = true;
    } else if (arg == "--opt-baseline") {
      opt_baseline_path = next();
      optimize_modules = true;
    } else if (arg == "--write-opt-baseline") {
      write_opt_baseline_path = next();
      optimize_modules = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: lint_rtl [--json FILE] [--baseline FILE]\n"
          "                [--suppress PATTERN]... [--module NAME] "
          "[--quiet] [--sim-crosscheck] [--require-codegen]\n"
          "                [--optimize] [--proof-dump FILE]\n"
          "                [--opt-baseline FILE] [--write-opt-baseline "
          "FILE]\n");
      return 0;
    } else {
      std::fprintf(stderr, "lint_rtl: unknown flag '%s'\n", arg.c_str());
      return 2;
    }
  }

  try {
    const auto config = dsadc::decim::paper_chain_config();
    const auto chain = dsadc::rtl::build_chain(config);

    std::vector<const dsadc::rtl::Module*> modules;
    std::vector<dsadc::rtl::NodeId> input_of;
    std::vector<ModuleReport> reports;
    // Chain stage index behind each report (the full chain gets
    // chain.stages.size()); keeps the CIC cross-check aligned when
    // --module filters the list.
    std::vector<std::size_t> stage_of;
    for (std::size_t s = 0; s < chain.stages.size(); ++s) {
      // Stage names are unique ("sinc4_1", "sinc4_2", ...); module names
      // are not (both Sinc4 stages elaborate the same module).
      const std::string& name = s < chain.stage_names.size()
                                    ? chain.stage_names[s]
                                    : chain.stages[s].module.name();
      if (!only_module.empty() && name != only_module) continue;
      LintOptions stage_options = options;
      stage_options.module_name = name;
      modules.push_back(&chain.stages[s].module);
      input_of.push_back(chain.stages[s].in);
      reports.push_back(lint_module(chain.stages[s].module, stage_options));
      stage_of.push_back(s);
    }
    if (only_module.empty() || chain.full.name() == only_module) {
      modules.push_back(&chain.full);
      input_of.push_back(chain.in);
      reports.push_back(lint_module(chain.full, options));
      stage_of.push_back(chain.stages.size());
    }
    if (reports.empty()) {
      std::fprintf(stderr, "lint_rtl: no module named '%s'\n",
                   only_module.c_str());
      return 2;
    }

    // Cross-check: for each Sinc stage the analyzer's proven minimum safe
    // register width must equal both the Hogenauer formula and what the
    // builder synthesized. A three-way match means the width proofs, the
    // design equations, and the netlist agree.
    bool cross_check_ok = true;
    std::vector<CicCheck> checks;
    for (std::size_t r = 0; r < reports.size(); ++r) {
      const std::size_t s = stage_of[r];
      if (s >= config.cic_stages.size()) continue;  // not a CIC stage
      const auto& spec = config.cic_stages[s];
      CicCheck check;
      check.module = reports[r].module;
      check.proven = proven_min_register_width(*modules[r], reports[r].range);
      check.formula = spec.register_width();
      check.synthesized = max_state_width(*modules[r]);
      check.ok = check.proven == check.formula &&
                 check.formula == check.synthesized;
      cross_check_ok = cross_check_ok && check.ok;
      checks.push_back(check);
    }

    // Engine-equivalence gate: interpreted vs compiled simulator on every
    // linted module.
    bool sim_check_ok = true;
    std::vector<SimCheck> sim_checks;
    if (sim_crosscheck) {
      for (std::size_t r = 0; r < reports.size(); ++r) {
        sim_checks.push_back(
            sim_crosscheck_module(*modules[r], input_of[r], reports[r].module,
                                  require_codegen));
        sim_check_ok = sim_check_ok && sim_checks.back().ok;
      }
    }

    // Optimization gate: every rewrite bundle must pass the independent
    // proof checker; with --sim-crosscheck the optimized module must also
    // be differentially equivalent to the original on both engines.
    bool opt_check_ok = true;
    std::vector<OptCheck> opt_checks;
    if (optimize_modules) {
      for (std::size_t r = 0; r < reports.size(); ++r) {
        opt_checks.push_back(run_opt_check(*modules[r], input_of[r],
                                           reports[r].module, sim_crosscheck));
        const OptCheck& c = opt_checks.back();
        opt_check_ok = opt_check_ok && c.proofs_ok && c.equiv_ok;
      }
    }

    Json doc = dsadc::analyze::json_report(reports);
    Json jchecks = Json::array();
    for (const CicCheck& c : checks) {
      Json jc = Json::object();
      jc["module"] = Json{c.module};
      jc["proven_width"] = Json{c.proven};
      jc["formula_width"] = Json{c.formula};
      jc["synthesized_width"] = Json{c.synthesized};
      jc["ok"] = Json{c.ok};
      jchecks.push_back(std::move(jc));
    }
    doc["cic_width_check"] = std::move(jchecks);
    if (sim_crosscheck) {
      Json jsims = Json::array();
      for (const SimCheck& c : sim_checks) {
        Json jc = Json::object();
        jc["module"] = Json{c.module};
        jc["ok"] = Json{c.ok};
        jc["engines"] = Json{c.engines};
        if (!c.ok) jc["detail"] = Json{c.detail};
        jsims.push_back(std::move(jc));
      }
      doc["sim_crosscheck"] = std::move(jsims);
    }
    if (optimize_modules) {
      Json jopts = Json::array();
      for (const OptCheck& c : opt_checks) {
        Json jc = Json::object();
        jc["module"] = Json{c.module};
        jc["proofs_ok"] = Json{c.proofs_ok};
        if (c.equiv_ran) jc["equiv_ok"] = Json{c.equiv_ok};
        jc["proofs"] = Json{static_cast<std::int64_t>(c.proofs)};
        jc["nodes"] = Json{static_cast<std::int64_t>(c.nodes)};
        jc["nodes_opt"] = Json{static_cast<std::int64_t>(c.nodes_opt)};
        jc["tape_ops"] = Json{static_cast<std::int64_t>(c.tape_ops)};
        jc["tape_ops_opt"] = Json{static_cast<std::int64_t>(c.tape_ops_opt)};
        jc["register_bits"] = Json{static_cast<std::int64_t>(c.register_bits)};
        jc["register_bits_opt"] =
            Json{static_cast<std::int64_t>(c.register_bits_opt)};
        jc["adders"] = Json{static_cast<std::int64_t>(c.adders)};
        jc["adders_opt"] = Json{static_cast<std::int64_t>(c.adders_opt)};
        if (!c.detail.empty()) jc["detail"] = Json{c.detail};
        jopts.push_back(std::move(jc));
      }
      doc["optimize"] = std::move(jopts);
    }

    // Opt-report baseline: the hardware-cost metrics of the optimized
    // modules must not regress against the committed numbers.
    std::vector<std::string> opt_regressions;
    if (!opt_baseline_path.empty()) {
      std::ifstream in(opt_baseline_path);
      if (!in) {
        std::fprintf(stderr, "lint_rtl: cannot read opt baseline %s\n",
                     opt_baseline_path.c_str());
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      const Json base = dsadc::verify::json_parse(buf.str());
      const Json& base_modules = base.at("modules");
      for (std::size_t i = 0; i < base_modules.size(); ++i) {
        const Json& bm = base_modules.at(i);
        const std::string name = bm.at("module").as_string();
        for (const OptCheck& c : opt_checks) {
          if (c.module != name) continue;
          const auto gate = [&](const char* key, std::size_t current) {
            if (static_cast<std::int64_t>(current) > bm.at(key).as_int()) {
              opt_regressions.push_back(name + ": " + key + " " +
                                        std::to_string(current) + " > " +
                                        std::to_string(bm.at(key).as_int()));
            }
          };
          gate("tape_ops_opt", c.tape_ops_opt);
          gate("register_bits_opt", c.register_bits_opt);
          gate("adders_opt", c.adders_opt);
          gate("nodes_opt", c.nodes_opt);
        }
      }
    }
    if (!write_opt_baseline_path.empty()) {
      Json base = Json::object();
      Json jmods = Json::array();
      for (const OptCheck& c : opt_checks) {
        Json jm = Json::object();
        jm["module"] = Json{c.module};
        jm["tape_ops_opt"] = Json{static_cast<std::int64_t>(c.tape_ops_opt)};
        jm["register_bits_opt"] =
            Json{static_cast<std::int64_t>(c.register_bits_opt)};
        jm["adders_opt"] = Json{static_cast<std::int64_t>(c.adders_opt)};
        jm["nodes_opt"] = Json{static_cast<std::int64_t>(c.nodes_opt)};
        jmods.push_back(std::move(jm));
      }
      base["modules"] = std::move(jmods);
      std::ofstream out(write_opt_baseline_path);
      if (!out) {
        std::fprintf(stderr, "lint_rtl: cannot write %s\n",
                     write_opt_baseline_path.c_str());
        return 2;
      }
      out << base.dump(2) << "\n";
    }
    if (!proof_dump_path.empty()) {
      std::ofstream out(proof_dump_path);
      if (!out) {
        std::fprintf(stderr, "lint_rtl: cannot write %s\n",
                     proof_dump_path.c_str());
        return 2;
      }
      out << "{\n  \"modules\": [";
      for (std::size_t i = 0; i < opt_checks.size(); ++i) {
        if (i != 0) out << ",";
        out << "\n  {\"module\": \"" << opt_checks[i].module
            << "\",\n   \"proofs\": "
            << dsadc::analyze::opt::proofs_to_json(
                   opt_checks[i].proof_records)
            << "  }";
      }
      out << "\n  ]\n}\n";
    }

    // Baseline gate: any module that was error-free in the baseline report
    // must stay error-free.
    std::vector<std::string> regressions;
    if (!baseline_path.empty()) {
      std::ifstream in(baseline_path);
      if (!in) {
        std::fprintf(stderr, "lint_rtl: cannot read baseline %s\n",
                     baseline_path.c_str());
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      const Json base = dsadc::verify::json_parse(buf.str());
      const Json& base_modules = base.at("modules");
      for (std::size_t i = 0; i < base_modules.size(); ++i) {
        const Json& bm = base_modules.at(i);
        if (bm.at("errors").as_int() != 0) continue;  // was already dirty
        const std::string name = bm.at("module").as_string();
        for (const ModuleReport& r : reports) {
          if (r.module == name && r.errors > 0) regressions.push_back(name);
        }
      }
    }

    if (!json_path.empty()) {
      std::ofstream out(json_path);
      if (!out) {
        std::fprintf(stderr, "lint_rtl: cannot write %s\n", json_path.c_str());
        return 2;
      }
      out << doc.dump(2) << "\n";
    }

    if (!quiet) {
      std::fputs(dsadc::analyze::text_report(reports).c_str(), stdout);
      for (const CicCheck& c : checks) {
        std::printf("cic-width %s: proven %d, formula %d, synthesized %d  %s\n",
                    c.module.c_str(), c.proven, c.formula, c.synthesized,
                    c.ok ? "OK" : "MISMATCH");
      }
      for (const SimCheck& c : sim_checks) {
        std::printf("sim-crosscheck %s (%s): %s%s%s\n", c.module.c_str(),
                    c.engines.c_str(), c.ok ? "OK" : "FAILED",
                    c.ok ? "" : " -- ", c.detail.c_str());
      }
      for (const OptCheck& c : opt_checks) {
        std::printf(
            "optimize %s: %zu proofs %s%s, nodes %zu -> %zu, tape ops "
            "%zu -> %zu, reg bits %zu -> %zu, adders %zu -> %zu%s%s\n",
            c.module.c_str(), c.proofs,
            c.proofs_ok ? "CHECKED" : "REJECTED",
            !c.equiv_ran ? "" : (c.equiv_ok ? ", equiv OK" : ", equiv FAILED"),
            c.nodes, c.nodes_opt, c.tape_ops, c.tape_ops_opt, c.register_bits,
            c.register_bits_opt, c.adders, c.adders_opt,
            c.detail.empty() ? "" : " -- ", c.detail.c_str());
      }
      for (const std::string& msg : opt_regressions) {
        std::printf("opt-baseline regression: %s\n", msg.c_str());
      }
      for (const std::string& name : regressions) {
        std::printf("baseline regression: module '%s' was clean, now has "
                    "errors\n",
                    name.c_str());
      }
    }

    const bool failed = dsadc::analyze::has_errors(reports) ||
                        !cross_check_ok || !sim_check_ok || !opt_check_ok ||
                        !regressions.empty() || !opt_regressions.empty();
    return failed ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lint_rtl: %s\n", e.what());
    return 2;
  }
}
