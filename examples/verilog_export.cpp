// Export the generated RTL to disk: one Verilog file per stage, the full
// chain, and a replay testbench - the HDL-Coder step of the flow.
//
//   $ ./verilog_export [output_dir]    (default: ./rtl_out)
#include <cstdio>

#include <filesystem>
#include <fstream>

#include "src/core/flow.h"
#include "src/rtl/builders.h"

using namespace dsadc;

int main(int argc, char** argv) {
  const std::filesystem::path dir = argc > 1 ? argv[1] : "rtl_out";
  std::filesystem::create_directories(dir);

  const auto r = core::DesignFlow::design(mod::paper_modulator_spec(),
                                          mod::paper_decimator_spec());
  const auto art = core::DesignFlow::generate_rtl(r);

  std::size_t total_bytes = 0;
  const auto write_file = [&](const std::string& name,
                              const std::string& text) {
    const auto path = dir / name;
    std::ofstream os(path);
    os << text;
    total_bytes += text.size();
    printf("  wrote %-34s %7zu bytes\n", path.string().c_str(), text.size());
  };

  printf("Exporting generated RTL to %s/\n", dir.string().c_str());
  for (const auto& [name, text] : art.verilog) {
    write_file(name + ".v", text);
  }
  write_file("decimation_chain.v", art.full_chain_verilog);
  write_file("decimation_chain_tb.v", art.testbench);

  // Netlist statistics, the numbers a synthesis engineer checks first.
  const auto built = rtl::build_chain(r.chain, r.options.rtl_options);
  printf("\nNetlist statistics:\n");
  printf("  %-12s %8s %8s %10s\n", "stage", "adders", "regs", "reg bits");
  for (std::size_t i = 0; i < built.stages.size(); ++i) {
    const auto& mod = built.stages[i].module;
    printf("  %-12s %8zu %8zu %10zu\n", built.stage_names[i].c_str(),
           mod.adder_count(), mod.register_count(), mod.register_bits());
  }
  printf("  %-12s %8zu %8zu %10zu\n", "full chain",
         built.full.adder_count(), built.full.register_count(),
         built.full.register_bits());
  printf("\n%zu bytes of Verilog total. The testbench replays\n", total_bytes);
  printf("stimulus.txt through the chain and logs response.txt - the same\n");
  printf("check the cycle-accurate IR simulator performs natively (see\n");
  printf("tests/test_rtl_equiv.cpp for the bit-exactness proof).\n");
  return 0;
}
