// Audio-codec decimator - the classic application the paper's Section I
// recalls (and its reference [3]): a high-resolution, low-rate audio
// delta-sigma ADC, designed with the very same flow.
//
// Spec: 24 kHz audio band, OSR 64, 4th-order modulator with a 3-bit
// quantizer at 6.144 MHz, 16-bit-class output at 96 kS/s.
#include <cstdio>

#include "src/core/flow.h"

using namespace dsadc;

int main() {
  mod::ModulatorSpec m;
  m.order = 4;
  m.osr = 64.0;
  m.obg = 2.0;
  m.sample_rate_hz = 6.144e6;
  m.bandwidth_hz = 24e3;
  m.quantizer_bits = 3;
  m.msa = 0.80;

  mod::DecimatorSpec d;
  d.input_bits = 3;
  d.passband_edge_hz = 20e3;
  // Audio codecs only need alias protection of the audio band: content
  // below 76 kHz (= 96 kHz - 20 kHz) folds outside 0-20 kHz, so the
  // halfband transition can be generous (this is the classic relaxed
  // audio-decimator spec of the paper's reference [3]).
  d.stopband_edge_hz = 76e3;
  d.output_rate_hz = 96e3;
  d.passband_ripple_db = 0.5;
  d.stopband_atten_db = 90.0;
  d.target_snr_db = 96.0;  // 16-bit class

  core::FlowOptions opt;
  opt.hbf_atten_target_db = 95.0;
  printf("Audio-codec decimator: %.0f kHz band, OSR %.0f, fs %.3f MHz\n\n",
         m.bandwidth_hz / 1e3, m.osr, m.sample_rate_hz / 1e6);

  const auto r = core::DesignFlow::design(m, d, opt);
  printf("%s\n", core::flow_report(r).c_str());

  const auto v = core::DesignFlow::verify(r, 5e3, 1 << 17);
  printf("Verification (5 kHz tone at MSA):\n");
  printf("  SNR at the 14-bit output:   %.1f dB\n", v.snr_db);
  printf("  SNR of the filtering alone: %.1f dB (%.1f bits)\n",
         v.snr_unquantized_db, (v.snr_unquantized_db - 1.76) / 6.02);

  const auto prof = core::DesignFlow::synthesize(r, 5e3, 1 << 14);
  printf("\nPower at 6.144 MHz input (activity-based):\n");
  for (const auto& e : prof.stages) {
    printf("  %-12s %10.1f uW\n", e.name.c_str(), e.dynamic_power_w * 1e6);
  }
  printf("  %-12s %10.1f uW dynamic, %.1f uW leakage\n", "total",
         prof.total_dynamic_w * 1e6, prof.total_leakage_w * 1e6);
  printf("\n(compare the paper's reference [3]: a ~100 uW audio decimator -\n");
  printf("at these clock rates the same architecture lands in the same\n");
  printf("power class.)\n");
  return 0;
}
