// Saramaki halfband design-space explorer: sweep (n1, n2) structures and
// CSD budgets, print the attenuation/adder-cost frontier the designHBF
// search walks (Section V).
#include <cstdio>

#include <vector>

#include "src/filterdesign/saramaki.h"

using namespace dsadc;

int main(int argc, char** argv) {
  const double fp = argc > 1 ? std::atof(argv[1]) : 0.2125;
  printf("Saramaki halfband design space at fp = %.4f\n\n", fp);
  printf("%4s %4s %7s %12s %10s %12s\n", "n1", "n2", "order", "atten (dB)",
         "adders", "ripple (dB)");
  struct Best {
    double atten = 0.0;
    std::size_t adders = 0;
    std::size_t n1 = 0, n2 = 0;
  };
  std::vector<Best> frontier;
  for (std::size_t n1 = 2; n1 <= 4; ++n1) {
    for (std::size_t n2 = 4; n2 <= 9; ++n2) {
      const auto h = design::design_saramaki_hbf(n1, n2, fp, 24, 0);
      printf("%4zu %4zu %7zu %12.1f %10zu %12.5f\n", n1, n2, h.order(),
             h.stopband_atten_db, h.adder_count, h.passband_ripple_db);
      frontier.push_back({h.stopband_atten_db, h.adder_count, n1, n2});
    }
  }

  printf("\nCheapest structure meeting common targets:\n");
  for (double target : {60.0, 80.0, 90.0, 100.0}) {
    const Best* best = nullptr;
    for (const auto& b : frontier) {
      if (b.atten >= target && (best == nullptr || b.adders < best->adders)) {
        best = &b;
      }
    }
    if (best != nullptr) {
      printf("  >= %5.1f dB: (n1=%zu, n2=%zu), %zu adders\n", target,
             best->n1, best->n2, best->adders);
    } else {
      printf("  >= %5.1f dB: not reachable in this sweep\n", target);
    }
  }
  printf("\nThe paper's pick for > 90 dB at fp = 0.2125 is (3, 6): order\n");
  printf("110, ~124 adders. Compare with the automatic search:\n");
  const auto autod = design::design_saramaki_hbf_auto(fp, 90.0, 24);
  printf("  auto: (n1=%zu, n2=%zu), %.1f dB, %zu adders\n", autod.n1,
         autod.n2, autod.stopband_atten_db, autod.adder_count);
  return 0;
}
