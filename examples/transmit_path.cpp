// Transmit path: the interpolation dual of the receive chain, reusing the
// same designed halfband and Sinc stages - the TX half of the
// reconfigurable SDR platform the paper motivates.
#include <cstdio>

#include <cmath>
#include <numbers>

#include "src/decimator/interpolate.h"
#include "src/dsp/spectrum.h"

using namespace dsadc;

int main() {
  const auto cfg = decim::paper_chain_config();
  decim::InterpolationChain tx(cfg);
  printf("Transmit chain: 40 MS/s baseband -> HBF(x2) -> Sinc6(x2) ->\n");
  printf("Sinc4(x2) -> Sinc4(x2) -> %zu MS/s DAC samples (%d-bit path)\n\n",
         static_cast<std::size_t>(40 * tx.total_interpolation()),
         tx.dac_format().width);

  // A two-tone baseband burst.
  const std::size_t n = 1 << 13;
  std::vector<std::int64_t> in(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    in[i] = static_cast<std::int64_t>(
        8192.0 * (0.45 * std::sin(2.0 * std::numbers::pi * 3.0 / 40.0 * t) +
                  0.35 * std::sin(2.0 * std::numbers::pi * 7.0 / 40.0 * t)));
  }
  const auto out = tx.process(in);
  printf("in %zu samples -> out %zu samples\n", n, out.size());

  std::vector<double> outd;
  for (std::size_t i = 4096; i < out.size(); ++i) {
    outd.push_back(static_cast<double>(out[i]));
  }
  outd.resize(outd.size() / 2 * 2);
  const auto p = dsp::periodogram(outd, 640e6);
  printf("\n%14s %14s\n", "band (MHz)", "power (dB rel)");
  const double ref = dsp::band_power(p, 2.5e6, 7.5e6);
  for (double f0 : {0.0, 10.0, 30.0, 35.0, 50.0, 70.0, 75.0, 110.0, 150.0}) {
    const double pw = dsp::band_power(p, f0 * 1e6 + 1e5, (f0 + 5.0) * 1e6);
    printf("%6.0f-%-7.0f %14.1f\n", f0, f0 + 5.0,
           10.0 * std::log10(pw / ref));
  }
  printf("\nThe 33-40 MHz image band sits under the halfband stopband; the\n");
  printf("images around 80k MHz fall into the Sinc notches - the same\n");
  printf("filters, run backwards, protect the transmit spectrum.\n");
  return 0;
}
