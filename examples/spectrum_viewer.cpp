// ASCII spectrum viewer: the modulator's shaped noise and the decimated
// output, rendered in the terminal - a quick visual check of Figs. 4/11
// without leaving the console.
//
//   $ ./spectrum_viewer [tone_mhz]    (default 5 MHz)
#include <cstdio>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "src/decimator/chain.h"
#include "src/dsp/spectrum.h"
#include "src/modulator/dsm.h"
#include "src/modulator/ntf.h"
#include "src/modulator/realize.h"

using namespace dsadc;

namespace {

void draw(const std::vector<double>& bins_db, double fmax_mhz,
          const char* title, double floor_db) {
  const int rows = 16;
  const int cols = static_cast<int>(bins_db.size());
  printf("\n%s\n", title);
  for (int r = 0; r < rows; ++r) {
    const double level = -floor_db * (1.0 - static_cast<double>(r) / rows);
    std::string line(static_cast<std::size_t>(cols), ' ');
    for (int c = 0; c < cols; ++c) {
      if (bins_db[static_cast<std::size_t>(c)] >= level) line[static_cast<std::size_t>(c)] = '#';
    }
    printf("%7.0f |%s|\n", level, line.c_str());
  }
  printf("        +");
  for (int c = 0; c < cols; ++c) printf("-");
  printf("+\n         0%*s%.0f MHz\n", cols - 8, "", fmax_mhz);
}

std::vector<double> binned_db(const dsp::Periodogram& p, int cols) {
  std::vector<double> out(static_cast<std::size_t>(cols), -400.0);
  const std::size_t per = p.power.size() / static_cast<std::size_t>(cols);
  for (int c = 0; c < cols; ++c) {
    double acc = 0.0;
    for (std::size_t k = 0; k < per; ++k) {
      acc += p.power[static_cast<std::size_t>(c) * per + k];
    }
    out[static_cast<std::size_t>(c)] = dsp::power_db(acc / p.enbw_bins);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const double tone_mhz = argc > 1 ? std::atof(argv[1]) : 5.0;
  const auto ntf = mod::synthesize_ntf(5, 16.0, 3.0, true);
  const auto coeffs = mod::realize_ciff(ntf);
  mod::CiffModulator m(coeffs, 4);
  double factual = 0.0;
  const auto u =
      mod::coherent_sine(1 << 16, tone_mhz * 1e6, 640e6, 0.81, &factual);
  const auto dsm = m.run(u);
  printf("tone: %.3f MHz at MSA; modulator %s\n", factual / 1e6,
         dsm.stable ? "stable" : "UNSTABLE");

  const auto p_mod = dsp::periodogram(dsm.levels, 640e6);
  draw(binned_db(p_mod, 100), 320.0,
       "Modulator output PSD (Fig. 4 view, 0-320 MHz):", 110.0);

  decim::DecimationChain chain(decim::paper_chain_config());
  const auto out = chain.process_to_real(dsm.codes);
  std::vector<double> steady(out.begin() + 512, out.end());
  const auto p_out = dsp::periodogram(steady, 40e6);
  draw(binned_db(p_out, 100), 20.0,
       "Decimated 14-bit output PSD (0-20 MHz):", 110.0);

  const auto snr = dsp::measure_tone_snr(steady, 40e6, 20e6,
                                         dsp::WindowKind::kKaiser, 8, 8, 22.0);
  printf("\noutput SNR: %.1f dB (%.1f bits)\n", snr.snr_db, snr.enob_bits);
  return 0;
}
