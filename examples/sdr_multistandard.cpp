// SDR reconfigurability - the motivation the paper's introduction gives:
// one design flow retargeted to several wireless standards, producing a
// verified decimation filter and hardware estimate for each.
#include <cstdio>

#include <string>
#include <vector>

#include "src/core/flow.h"

using namespace dsadc;

namespace {

struct Standard {
  std::string name;
  mod::ModulatorSpec m;
  mod::DecimatorSpec d;
};

std::vector<Standard> standards() {
  std::vector<Standard> out;
  {
    Standard s;
    s.name = "LTE-20 (paper)";
    s.m = mod::paper_modulator_spec();
    s.d = mod::paper_decimator_spec();
    out.push_back(s);
  }
  {
    Standard s;  // W-CDMA-like: 5 MHz channel, higher OSR, lower order.
    s.name = "W-CDMA 5 MHz";
    s.m.order = 4;
    s.m.osr = 32.0;
    s.m.obg = 2.5;
    s.m.sample_rate_hz = 320e6;
    s.m.bandwidth_hz = 5e6;
    s.m.quantizer_bits = 4;
    s.m.msa = 0.85;
    s.d.input_bits = 4;
    s.d.passband_edge_hz = 5e6;
    s.d.stopband_edge_hz = 5.75e6;
    s.d.output_rate_hz = 10e6;
    s.d.stopband_atten_db = 85.0;
    s.d.target_snr_db = 90.0;
    out.push_back(s);
  }
  {
    Standard s;  // 802.16x-like: 10 MHz channel at OSR 16.
    s.name = "WiMAX 10 MHz";
    s.m.order = 5;
    s.m.osr = 16.0;
    s.m.obg = 3.0;
    s.m.sample_rate_hz = 320e6;
    s.m.bandwidth_hz = 10e6;
    s.m.quantizer_bits = 4;
    s.m.msa = 0.81;
    s.d.input_bits = 4;
    s.d.passband_edge_hz = 10e6;
    s.d.stopband_edge_hz = 11.5e6;
    s.d.output_rate_hz = 20e6;
    s.d.stopband_atten_db = 85.0;
    s.d.target_snr_db = 86.0;
    out.push_back(s);
  }
  return out;
}

}  // namespace

int main() {
  printf("One flow, several standards (the paper's SDR motivation):\n\n");
  printf("%-16s %6s %6s %9s %10s %10s %9s %9s %8s\n", "standard", "order",
         "OSR", "fs (MHz)", "ripple dB", "stop dB", "SNR14 dB", "SNRw dB",
         "dyn mW");
  for (const auto& s : standards()) {
    const auto r = core::DesignFlow::design(s.m, s.d);
    const auto v = core::DesignFlow::verify(
        r, 0.25 * s.m.bandwidth_hz, 1 << 15);
    const auto prof = core::DesignFlow::synthesize(
        r, 0.25 * s.m.bandwidth_hz, 1 << 13);
    printf("%-16s %6d %6.0f %9.0f %10.2f %10.1f %9.1f %9.1f %8.2f\n",
           s.name.c_str(), s.m.order, s.m.osr, s.m.sample_rate_hz / 1e6,
           r.passband_ripple_db, r.alias_protection_db, v.snr_db,
           v.snr_unquantized_db, prof.total_dynamic_w * 1e3);
  }
  printf("\nEach row is a complete redesign: new NTF, new Sinc orders, a\n");
  printf("fresh Saramaki halfband, scaler and equalizer - then verified\n");
  printf("bit-true and re-synthesized. This is what 'rapid prototyping of\n");
  printf("decimation filters for reconfigurable delta-sigma ADCs' buys.\n");
  return 0;
}
