// Quickstart: design, verify and synthesize the paper's decimation filter
// in one call each - the full "rapid design and synthesis flow".
//
//   $ ./quickstart
//
// Walks the Table-I specification through all six flow steps and prints
// what a designer would want to see at each one.
#include <cstdio>

#include "src/core/flow.h"

using namespace dsadc;

int main() {
  // 1. The specification (Table I of the paper).
  const mod::ModulatorSpec mspec = mod::paper_modulator_spec();
  const mod::DecimatorSpec dspec = mod::paper_decimator_spec();
  printf("Designing a decimation filter for a %d-th order, OSR %.0f,\n"
         "%d-bit delta-sigma modulator at %.0f MHz (%.0f MHz band)...\n\n",
         mspec.order, mspec.osr, mspec.quantizer_bits,
         mspec.sample_rate_hz / 1e6, mspec.bandwidth_hz / 1e6);

  // 2. Design: NTF -> CIFF -> Sinc cascade -> Saramaki HBF -> scaler ->
  //    equalizer, with response-based spec checks.
  const core::FlowResult r = core::DesignFlow::design(mspec, dspec);
  printf("%s\n", core::flow_report(r).c_str());

  // 3. Verify: simulate the modulator + bit-true chain at the MSA.
  const core::VerificationResult v = core::DesignFlow::verify(r);
  printf("Verification (5 MHz tone at MSA):\n");
  printf("  SNR at the 14-bit output: %.1f dB (%.1f bits)\n", v.snr_db,
         v.enob_bits);
  printf("  SNR of the filtering alone: %.1f dB (target %.0f dB: %s)\n\n",
         v.snr_unquantized_db, dspec.target_snr_db, v.snr_ok ? "OK" : "FAIL");

  // 4. Generate RTL.
  const core::RtlArtifacts rtl_out = core::DesignFlow::generate_rtl(r);
  printf("Generated Verilog: %zu stage modules + full chain (%zu chars) +\n"
         "testbench. Use examples/verilog_export to write them to disk.\n\n",
         rtl_out.verilog.size(), rtl_out.full_chain_verilog.size());

  // 5. Synthesize: 45 nm cell mapping + activity-driven power.
  const synth::PowerProfile prof = core::DesignFlow::synthesize(r);
  printf("Synthesis estimate (45 nm, 1.1 V, 5 MHz MSA tone):\n");
  printf("  %-12s %12s %12s %12s\n", "stage", "dyn (mW)", "leak (uW)",
         "area (mm2)");
  for (const auto& e : prof.stages) {
    printf("  %-12s %12.3f %12.1f %12.4f\n", e.name.c_str(),
           e.dynamic_power_w * 1e3, e.leakage_power_w * 1e6, e.area_mm2);
  }
  printf("  %-12s %12.3f %12.1f %12.4f\n", "total",
         prof.total_dynamic_w * 1e3, prof.total_leakage_w * 1e6,
         prof.total_area_mm2);
  printf("\nDone. (paper: 8.04 mW dynamic, 771 uW leakage, 0.12 mm^2)\n");
  return 0;
}
