// Generate a complete markdown design report for a flow run: the artifact
// a designer would attach to a tape-out review.
//
//   $ ./design_report [output.md]     (default: design_report.md)
#include <cstdio>

#include <fstream>
#include <sstream>

#include "src/core/flow.h"
#include "src/core/noise_budget.h"
#include "src/core/response.h"

using namespace dsadc;

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "design_report.md";
  const auto r = core::DesignFlow::design(mod::paper_modulator_spec(),
                                          mod::paper_decimator_spec());
  const auto v = core::DesignFlow::verify(r);
  const auto prof = core::DesignFlow::synthesize(r);
  const double amp = r.msa * 7.0 * r.chain.scale;
  const auto budget = core::compute_noise_budget(
      r.chain, r.modulator_spec, r.predicted_sqnr_db, amp);

  std::ostringstream md;
  md << "# Decimation filter design report\n\n";
  md << "## Specification\n\n";
  md << "* modulator: order " << r.modulator_spec.order << ", OSR "
     << r.modulator_spec.osr << ", OBG " << r.modulator_spec.obg << ", fs "
     << r.modulator_spec.sample_rate_hz / 1e6 << " MHz, "
     << r.modulator_spec.quantizer_bits << "-bit quantizer\n";
  md << "* band " << r.modulator_spec.bandwidth_hz / 1e6
     << " MHz, target SNR " << r.decimator_spec.target_snr_db << " dB\n\n";
  md << "## Designed chain\n\n```\n" << core::flow_report(r) << "```\n\n";
  md << "## Verification\n\n";
  md << "| check | value | status |\n|---|---|---|\n";
  md << "| passband ripple | " << r.passband_ripple_db << " dB | "
     << (r.ripple_ok ? "OK" : "FAIL") << " |\n";
  md << "| stopband attenuation | " << r.alias_protection_db << " dB | "
     << (r.attenuation_ok ? "OK" : "FAIL") << " |\n";
  md << "| SNR at 14-bit output | " << v.snr_db << " dB | measured |\n";
  md << "| SNR of the filtering | " << v.snr_unquantized_db << " dB | "
     << (v.snr_ok ? "OK" : "FAIL") << " |\n\n";
  md << "## Noise budget\n\n```\n" << core::noise_budget_report(budget)
     << "```\n\n";
  md << "## Synthesis estimate (45 nm, 1.1 V)\n\n";
  md << "| stage | dynamic (mW) | leakage (uW) | area (mm2) |\n";
  md << "|---|---|---|---|\n";
  char row[160];
  for (const auto& e : prof.stages) {
    std::snprintf(row, sizeof(row), "| %s | %.3f | %.1f | %.4f |\n",
                  e.name.c_str(), e.dynamic_power_w * 1e3,
                  e.leakage_power_w * 1e6, e.area_mm2);
    md << row;
  }
  std::snprintf(row, sizeof(row), "| **total** | %.3f | %.1f | %.4f |\n",
                prof.total_dynamic_w * 1e3, prof.total_leakage_w * 1e6,
                prof.total_area_mm2);
  md << row;

  std::ofstream os(path);
  os << md.str();
  printf("wrote %s (%zu bytes)\n", path, md.str().size());
  printf("\n%s", core::flow_report(r).c_str());
  return 0;
}
