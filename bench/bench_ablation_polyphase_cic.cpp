// Ablation: Hogenauer vs non-recursive polyphase Sinc stages (the
// implementation choice Section IV references via [6], [7]).
//
// The Hogenauer form uses 2K adders with K of them at the fast input
// rate; the polyphase form uses more adders but all at the output rate
// and with short (non-growing) word lengths. Which wins depends on the
// stage's position in the chain - exactly the trade this bench quantifies
// with the activity-based power model.
#include <cstdio>

#include "src/decimator/cic.h"
#include "src/decimator/polyphase_cic.h"
#include "src/modulator/dsm.h"
#include "src/modulator/ntf.h"
#include "src/modulator/realize.h"
#include "src/synth/celllib.h"
#include "src/obs/bench_telemetry.h"

using namespace dsadc;

namespace {

/// First-order power estimate from structure counts (adders/registers x
/// rate x width), consistent with the cell model's constants.
double structural_power_w(std::size_t adders, std::size_t regs, int width,
                          double rate_hz, const synth::CellLibrary& lib) {
  const double adder_e = static_cast<double>(adders) * width * 0.5 *
                         lib.fa_energy_j;  // ~0.5 toggles/bit/op
  const double reg_e = static_cast<double>(regs) * width *
                       (lib.ff_clk_energy_j + 0.5 * lib.ff_data_energy_j);
  return (adder_e + reg_e) * rate_hz * lib.overhead_factor;
}

}  // namespace

int main() {
  dsadc::obs::BenchReport report("ablation_polyphase_cic");
  printf("=================================================================\n");
  printf(" Ablation - Hogenauer vs polyphase (non-recursive) Sinc stages\n");
  printf("=================================================================\n");
  const auto lib = synth::default_45nm();
  const design::CicSpec specs[] = {{4, 2, 4}, {4, 2, 8}, {6, 2, 12}};
  const double rates[] = {640e6, 320e6, 160e6};

  printf("%-10s | %26s | %26s\n", "", "Hogenauer", "polyphase FIR");
  printf("%-10s | %8s %8s %8s | %8s %8s %8s\n", "stage", "adders", "regs",
         "est mW", "adders", "regs", "est mW");
  for (int i = 0; i < 3; ++i) {
    const auto& s = specs[i];
    decim::CicDecimator hog(s);
    decim::PolyphaseCicDecimator poly(s);
    // Hogenauer: K integrator adders+regs at the input rate, K comb
    // adders+regs at the output rate, at the grown register width.
    const int w = s.register_width();
    const double hog_mw =
        (structural_power_w(static_cast<std::size_t>(s.order),
                            static_cast<std::size_t>(s.order), w, rates[i],
                            lib) +
         structural_power_w(static_cast<std::size_t>(s.order),
                            static_cast<std::size_t>(s.order) + 1, w,
                            rates[i] / 2.0, lib)) *
        1e3;
    // Polyphase: all arithmetic at the output rate, input-width registers,
    // output width only at the final sum.
    const double poly_mw =
        structural_power_w(poly.adder_count(), poly.register_count(),
                           (s.input_bits + w) / 2, rates[i] / 2.0, lib) *
        1e3;
    printf("%-10s | %8zu %8zu %8.3f | %8zu %8zu %8.3f\n",
           i == 2 ? "Sinc6" : "Sinc4", static_cast<std::size_t>(2 * s.order),
           static_cast<std::size_t>(2 * s.order + 1), hog_mw,
           poly.adder_count(), poly.register_count(), poly_mw);

    // Sanity: the two forms are bit-identical (also proven in tests).
    std::vector<std::int64_t> in(256);
    for (std::size_t k = 0; k < in.size(); ++k) {
      in[k] = static_cast<std::int64_t>((k * 37 + 11) %
                                        (1u << (s.input_bits - 1))) -
              (1 << (s.input_bits - 2));
    }
    const auto a = hog.process(in);
    const auto b = poly.process(in);
    for (std::size_t k = 0; k < a.size(); ++k) {
      if (a[k] != b[k]) {
        printf("  MISMATCH at %zu!\n", k);
        return report.finish(false);
      }
    }
  }
  printf("\nReading: at M = 2 the polyphase form wins on the fast first\n");
  printf("stage (all arithmetic at half rate) and the Hogenauer form stays\n");
  printf("competitive deeper in the chain where its simplicity (2K adders,\n");
  printf("no coefficient scaling) dominates - the trade [7] discusses.\n");
  return report.finish(true);
}
