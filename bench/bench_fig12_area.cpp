// Fig. 12 reproduction: synthesized layout area (paper: 0.12 mm^2 in
// 45 nm). We report the standard-cell area of the mapped netlist per
// stage; placement/routing overhead is folded into the cell model.
#include <cstdio>

#include "src/core/flow.h"
#include "src/rtl/builders.h"
#include "src/synth/estimate.h"
#include "src/obs/bench_telemetry.h"

using namespace dsadc;

int main() {
  dsadc::obs::BenchReport report("fig12_area");
  printf("========================================================\n");
  printf(" Fig. 12 - Synthesized area of the decimation filter\n");
  printf("========================================================\n");
  const auto r = core::DesignFlow::design(mod::paper_modulator_spec(),
                                          mod::paper_decimator_spec());
  const auto built = rtl::build_chain(r.chain, r.options.rtl_options);
  const auto lib = synth::default_45nm();

  printf("%-12s %10s %10s %12s %12s\n", "stage", "adders", "regs",
         "reg bits", "area (mm^2)");
  double total = 0.0;
  for (std::size_t i = 0; i < built.stages.size(); ++i) {
    const auto& mod = built.stages[i].module;
    const auto est = synth::estimate_area(mod, lib);
    printf("%-12s %10zu %10zu %12zu %12.4f\n", built.stage_names[i].c_str(),
           mod.adder_count(), mod.register_count(), mod.register_bits(),
           est.area_mm2);
    total += est.area_mm2;
  }
  printf("%-12s %35s %12.4f\n", "total", "", total);
  printf("\npaper: 0.12 mm^2 after automatic place and route (45 nm).\n");
  printf("same order of magnitude; absolute cell constants differ from the\n");
  printf("authors' proprietary library (see DESIGN.md substitutions).\n");
  return report.finish((total > 0.01 && total < 1.0));
}
