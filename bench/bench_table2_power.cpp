// Table II reproduction: per-stage dynamic and leakage power under the
// paper's stimulus (sinusoidal tone at the MSA, 5 MHz), VDD = 1.1 V.
#include <cstdio>

#include "src/core/flow.h"
#include "src/obs/bench_telemetry.h"

using namespace dsadc;

int main() {
  dsadc::obs::BenchReport report("table2_power");
  printf("===============================================================\n");
  printf(" Table II - Power profile of the decimation filter (VDD 1.1 V)\n");
  printf("===============================================================\n");
  printf("stimulus: 5 MHz tone at MSA amplitude, activity-driven estimate\n\n");
  const auto r = core::DesignFlow::design(mod::paper_modulator_spec(),
                                          mod::paper_decimator_spec());
  const auto prof = core::DesignFlow::synthesize(r, 5e6, 1 << 14);

  struct PaperRow {
    const char* name;
    double dyn_mw;
    double leak_uw;
  };
  const PaperRow paper[] = {{"Sinc4 one", 2.36, 19.41},
                            {"Sinc4 two", 1.13, 22.34},
                            {"Sinc6", 1.16, 47.26},
                            {"Halfband", 1.28, 152.44},
                            {"Scaling", 0.38, 11.13},
                            {"Equalizer", 1.73, 537.88}};
  printf("%-12s | %21s | %21s\n", "", "dynamic power (mW)", "leakage (uW)");
  printf("%-12s | %10s %10s | %10s %10s\n", "stage", "paper", "this", "paper",
         "this");
  printf("-------------+-----------------------+----------------------\n");
  double tot_dyn = 0.0, tot_leak = 0.0;
  for (std::size_t i = 0; i < prof.stages.size(); ++i) {
    const auto& e = prof.stages[i];
    printf("%-12s | %10.2f %10.2f | %10.1f %10.1f\n", paper[i].name,
           paper[i].dyn_mw, e.dynamic_power_w * 1e3, paper[i].leak_uw,
           e.leakage_power_w * 1e6);
    tot_dyn += paper[i].dyn_mw;
    tot_leak += paper[i].leak_uw;
  }
  printf("-------------+-----------------------+----------------------\n");
  printf("%-12s | %10.2f %10.2f | %10.1f %10.1f\n", "Total", tot_dyn,
         prof.total_dynamic_w * 1e3, tot_leak, prof.total_leakage_w * 1e6);
  report.set("total_dynamic_mw", prof.total_dynamic_w * 1e3);
  report.set("total_leakage_uw", prof.total_leakage_w * 1e6);
  printf("\nShape checks (what the substitution preserves):\n");
  const auto& s = prof.stages;
  const bool sinc1_max =
      s[0].dynamic_power_w >= s[1].dynamic_power_w &&
      s[0].dynamic_power_w >= s[2].dynamic_power_w &&
      s[0].dynamic_power_w >= s[3].dynamic_power_w &&
      s[0].dynamic_power_w >= s[5].dynamic_power_w;
  const bool scaler_min = s[4].dynamic_power_w <= 0.3 * s[0].dynamic_power_w;
  const bool leak_coeff = (s[3].leakage_power_w + s[5].leakage_power_w) >
                          0.5 * prof.total_leakage_w;
  printf("  640 MHz Sinc stage dominates dynamic power: %s\n",
         sinc1_max ? "OK" : "FAIL");
  printf("  scaling stage is the smallest consumer:     %s\n",
         scaler_min ? "OK" : "FAIL");
  printf("  HBF + equalizer dominate leakage:           %s\n",
         leak_coeff ? "OK" : "FAIL");
  return report.finish((sinc1_max && scaler_min && leak_coeff));
}
