// Baseline comparison behind Section III: "The multistage architecture
// allows most of the filter hardware to operate at a lower clock
// frequency, and have lower hardware complexity when compared to a single
// stage decimator." We build that single-stage decimator and compare.
#include <cstdio>

#include <cmath>

#include "src/decimator/chain.h"
#include "src/filterdesign/window_fir.h"
#include "src/fixedpoint/csd.h"
#include "src/rtl/builders.h"
#include "src/obs/bench_telemetry.h"

using namespace dsadc;

int main() {
  dsadc::obs::BenchReport report("baseline_singlestage");
  printf("================================================================\n");
  printf(" Baseline - single-stage decimator vs the paper's multistage\n");
  printf("================================================================\n");

  // Single stage: one FIR at 640 MHz doing /16 with the Table-I band plan.
  const auto base =
      design::design_single_stage_baseline(640e6, 40e6, 20e6, 23e6, 85.0);
  // Multistage: the paper chain.
  const auto cfg = decim::paper_chain_config();
  const auto built = rtl::build_chain(cfg);

  std::size_t multi_adders = 0;
  std::size_t multi_regbits = 0;
  for (const auto& st : built.stages) {
    multi_adders += st.module.adder_count();
    multi_regbits += st.module.register_bits();
  }

  // Adder operations per input sample (all word-level ops at their rates):
  const double multi_adds = (4.0 + 4.0 / 2.0) +              // Sinc4 #1
                            (4.0 / 2.0 + 4.0 / 4.0) +        // Sinc4 #2
                            (6.0 / 4.0 + 6.0 / 8.0) +        // Sinc6
                            (33.0 + 1.0 + 33.0) / 16.0;      // HBF+scl+EQ
  // Coefficient multiplications per input sample: the CIC stages have
  // NONE ("preclude the use of a digital multiplier"); only the halfband
  // and equalizer multiply, at 1/16 of the input rate.
  const double multi_macs = (33.0 + 33.0 + 1.0) / 16.0;

  printf("%-34s %18s %18s\n", "", "single stage", "multistage (paper)");
  printf("%-34s %18zu %18s\n", "FIR length", base.taps.size(), "111 + 65");
  printf("%-34s %18.1f %18.1f\n", "coeff multiplies / input sample",
         base.mac_rate_per_sample, multi_macs);
  printf("%-34s %18.1f %18.1f\n", "adder ops / input sample",
         base.mac_rate_per_sample, multi_adds);
  printf("%-34s %18zu %18zu\n", "CSD adders (word level)", base.adders,
         multi_adders);
  printf("%-34s %18s %18zu\n", "register bits", "~2 per tap", multi_regbits);
  printf("%-34s %18s %18s\n", "fastest arithmetic clock", "640 MHz",
         "640 MHz (8-bit only)");
  printf("\ncoefficient-multiply advantage of the multistage chain: %.1fx\n",
         base.mac_rate_per_sample / multi_macs);
  printf("\nThe single-stage filter needs %zu taps because the 20-23 MHz\n",
         base.taps.size());
  printf("transition is only %.2f%% of the 640 MHz rate; the chain defers\n",
         100.0 * 3.0 / 640.0);
  printf("the sharp transition to the 80 MHz halfband where it is 16x\n");
  printf("wider - Section III's architectural argument, quantified.\n");
  return report.finish(base.mac_rate_per_sample > 4.0 * multi_macs);
}
