// Table I reproduction: modulator performance and decimator requirements,
// paper values vs. this implementation's design + measurement.
#include <cstdio>

#include "src/core/flow.h"
#include "src/core/response.h"
#include "src/obs/bench_telemetry.h"

using namespace dsadc;

int main() {
  dsadc::obs::BenchReport report("table1_spec");
  printf("==============================================================\n");
  printf(" Table I - Modulator performance and decimator requirements\n");
  printf("==============================================================\n");
  const auto mspec = mod::paper_modulator_spec();
  const auto dspec = mod::paper_decimator_spec();
  const auto r = core::DesignFlow::design(mspec, dspec);
  const auto v = core::DesignFlow::verify(r, 5e6, 1 << 16);

  printf("%-28s %15s %15s\n", "quantity", "paper", "this work");
  printf("--- modulator -------------------------------------------------\n");
  printf("%-28s %15d %15d\n", "order", 5, r.modulator_spec.order);
  printf("%-28s %15.1f %15.2f\n", "OBG (Hinf)", 3.0, r.ntf.infinity_norm());
  printf("%-28s %12.0f MHz %12.0f MHz\n", "bandwidth", 20.0,
         r.modulator_spec.bandwidth_hz / 1e6);
  printf("%-28s %12.0f MHz %12.0f MHz\n", "sampling rate", 640.0,
         r.modulator_spec.sample_rate_hz / 1e6);
  printf("%-28s %15.0f %15.0f\n", "OSR", 16.0, r.modulator_spec.osr);
  printf("%-28s %15.2f %15.2f\n", "MSA", 0.81, r.msa);
  printf("%-28s %12.0f dB  %11.1f dB\n", "SQNR (predicted, at MSA)", 102.0,
         r.predicted_sqnr_db);
  printf("--- decimation filter ------------------------------------------\n");
  printf("%-28s %15d %15d\n", "input bits", 4, r.chain.input_format.width);
  printf("%-28s %12s dB  %11.2f dB\n", "passband ripple", "< 1",
         r.passband_ripple_db);
  printf("%-28s %15s %15s\n", "passband transition", "20-23 MHz", "20-23 MHz");
  printf("%-28s %12s dB  %11.1f dB\n", "stopband attenuation", "> 85",
         r.alias_protection_db);
  printf("%-28s %12.0f MHz %12.1f MHz\n", "output rate", 40.0,
         40.0);
  printf("%-28s %12.0f dB  %11.1f dB\n", "SNR at 14-bit output", 86.0,
         v.snr_db);
  printf("%-28s %15s %11.1f dB\n", "SNR of filtering (wide out)", "(n/a)",
         v.snr_unquantized_db);
  report.set("passband_ripple_db", r.passband_ripple_db);
  report.set("alias_protection_db", r.alias_protection_db);
  report.set("snr_14bit_db", v.snr_db);
  report.set("snr_wide_db", v.snr_unquantized_db);
  report.set("msa", r.msa);
  printf("\nchecks: ripple %s, stopband %s, SNR %s\n",
         r.ripple_ok ? "OK" : "FAIL", r.attenuation_ok ? "OK" : "FAIL",
         v.snr_ok ? "OK" : "FAIL");
  printf("\n%s", core::flow_report(r).c_str());
  return report.finish((r.ripple_ok && r.attenuation_ok && v.snr_ok));
}
