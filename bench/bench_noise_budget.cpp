// The word-length reasoning of Section V, made executable: analytical
// quantization-noise budget of every rounding point vs the bit-true
// measurement.
#include <cstdio>

#include "src/core/flow.h"
#include "src/core/noise_budget.h"
#include "src/obs/bench_telemetry.h"

using namespace dsadc;

int main() {
  dsadc::obs::BenchReport report("noise_budget");
  printf("==============================================================\n");
  printf(" Noise budget - analytical word-length analysis vs measurement\n");
  printf("==============================================================\n");
  const auto r = core::DesignFlow::design(mod::paper_modulator_spec(),
                                          mod::paper_decimator_spec());
  const double amp = r.msa * 7.0 * r.chain.scale;
  const auto budget = core::compute_noise_budget(
      r.chain, r.modulator_spec, r.predicted_sqnr_db, amp);
  printf("%s\n", core::noise_budget_report(budget).c_str());

  const auto v = core::DesignFlow::verify(r, 5e6, 1 << 16);
  printf("bit-true measurement: %.1f dB at the 14-bit output\n", v.snr_db);
  printf("prediction error: %.1f dB\n", budget.predicted_snr_db - v.snr_db);

  printf("\nWord-length sweep of the final output format:\n");
  printf("%12s %16s\n", "output bits", "predicted SNR");
  for (int bits = 12; bits <= 18; ++bits) {
    auto cfg = r.chain;
    cfg.output_format = fx::Format{bits, bits - 1};
    cfg.scaler_out_format = fx::Format{bits + 4, bits + 1};
    const auto wb = core::compute_noise_budget(cfg, r.modulator_spec,
                                               r.predicted_sqnr_db, amp);
    printf("%12d %13.1f dB%s\n", bits, wb.predicted_snr_db,
           bits == 14 ? "   <- the paper's choice" : "");
  }
  printf("\n(14 bits is where the output rounding stops being negligible\n");
  printf("against the modulator floor - exactly the paper's '14-bit\n");
  printf("resolution' operating point.)\n");
  return report.finish(true);
}
