// Ablation: CSD digit budget vs. attenuation/adder cost for the halfband
// (the optimization knob behind the paper's "24-bit coefficients, 124
// adders" choice), plus CSD-vs-binary multiplier cost for the equalizer.
#include <cstdio>

#include <bit>
#include <cmath>

#include "src/decimator/chain.h"
#include "src/filterdesign/saramaki.h"
#include "src/fixedpoint/csd.h"
#include "src/fixedpoint/csd_optimize.h"
#include "src/filterdesign/remez.h"
#include "src/obs/bench_telemetry.h"

using namespace dsadc;

int main() {
  dsadc::obs::BenchReport report("ablation_csd");
  printf("=============================================================\n");
  printf(" Ablation - CSD coefficient encoding vs hardware cost\n");
  printf("=============================================================\n");
  printf("Halfband (n1=3, n2=6, fp=0.2125):\n");
  printf("%14s %14s %12s\n", "digit budget", "atten (dB)", "adders");
  for (std::size_t digits : {2, 3, 4, 5, 6, 0}) {
    const auto h = design::design_saramaki_hbf(3, 6, 0.2125, 24, digits);
    if (digits == 0) {
      printf("%14s %14.1f %12zu\n", "full (24b)", h.stopband_atten_db,
             h.adder_count);
    } else {
      printf("%14zu %14.1f %12zu\n", digits, h.stopband_atten_db,
             h.adder_count);
    }
  }

  printf("\nEqualizer coefficients: CSD vs plain binary adder cost\n");
  const auto cfg = decim::paper_chain_config();
  std::size_t csd_adders = 0, binary_adders = 0;
  for (double t : cfg.equalizer_taps) {
    const auto c = fx::csd_encode(t, 14);
    csd_adders += c.adder_cost();
    const auto raw = static_cast<std::uint64_t>(
        std::llabs(std::llround(t * 16384.0)));
    const int ones = std::popcount(raw);
    binary_adders += ones > 1 ? static_cast<std::size_t>(ones - 1) : 0u;
  }
  printf("%20s %12zu\n", "CSD shift-adds:", csd_adders);
  printf("%20s %12zu\n", "binary shift-adds:", binary_adders);
  printf("%20s %11.1f%%\n", "CSD saving:",
         100.0 * (1.0 - static_cast<double>(csd_adders) /
                            static_cast<double>(binary_adders)));
  printf("\nMinimum-adder CSD allocation on a 63-tap lowpass (auto search):\n");
  const auto proto = design::remez_lowpass(63, 0.10, 0.16, 1.0, 20.0).taps;
  printf("%14s %14s %12s\n", "target (dB)", "atten (dB)", "digits");
  for (double target : {40.0, 50.0, 60.0}) {
    const auto opt = fx::optimize_csd_taps(proto, 0.16, target, 20);
    printf("%14.0f %14.1f %12zu\n", target, opt.stopband_atten_db,
           opt.digits);
  }
  std::size_t full_digits = 0;
  for (const auto& c : fx::csd_encode_taps(proto, 20)) {
    full_digits += c.nonzero_count();
  }
  printf("%14s %14s %12zu\n", "full 20b", "", full_digits);

  printf("\n(Section V: CSD minimizes nonzero digits, cutting the adder\n");
  printf("count of every constant multiplier - the paper's key power\n");
  printf("lever in the halfband and equalizer.)\n");
  return report.finish(csd_adders < binary_adders);
}
