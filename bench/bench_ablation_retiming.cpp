// Ablation: retiming/pipelining (Section IV) - glitch-power effect on the
// Sinc accumulators, and the pipeline register's role at rate boundaries.
#include <cstdio>

#include "src/core/flow.h"
#include "src/modulator/dsm.h"
#include "src/rtl/builders.h"
#include "src/rtl/sim.h"
#include "src/synth/estimate.h"
#include "src/obs/bench_telemetry.h"

using namespace dsadc;

int main() {
  dsadc::obs::BenchReport report("ablation_retiming");
  printf("==============================================================\n");
  printf(" Ablation - retiming vs glitch power in the decimation chain\n");
  printf("==============================================================\n");
  const auto r = core::DesignFlow::design(mod::paper_modulator_spec(),
                                          mod::paper_decimator_spec());
  const auto ntf = mod::synthesize_ntf(5, 16.0, 3.0, true);
  const auto coeffs = mod::realize_ciff(ntf);
  mod::CiffModulator m(coeffs, 4);
  const auto u = mod::coherent_sine(1 << 13, 5e6, 640e6, 0.81, nullptr);
  const auto codes = m.run(u).codes;
  const auto lib = synth::default_45nm();

  rtl::BuildOptions retimed;
  retimed.retimed = true;
  rtl::BuildOptions unretimed;
  unretimed.retimed = false;

  const auto p_ret = synth::profile_chain(r.chain, codes, 640e6, lib, retimed);
  const auto p_unret =
      synth::profile_chain(r.chain, codes, 640e6, lib, unretimed);

  printf("%-12s %16s %16s %10s\n", "stage", "retimed (mW)", "unretimed (mW)",
         "saving");
  for (std::size_t i = 0; i < p_ret.stages.size(); ++i) {
    const double a = p_ret.stages[i].dynamic_power_w * 1e3;
    const double b = p_unret.stages[i].dynamic_power_w * 1e3;
    printf("%-12s %16.3f %16.3f %9.1f%%\n", p_ret.stages[i].name.c_str(), a,
           b, 100.0 * (1.0 - a / b));
  }
  printf("%-12s %16.3f %16.3f %9.1f%%\n", "total",
         p_ret.total_dynamic_w * 1e3, p_unret.total_dynamic_w * 1e3,
         100.0 * (1.0 - p_ret.total_dynamic_w / p_unret.total_dynamic_w));
  printf("\n(Section IV: 'the accumulators are implemented using retiming\n");
  printf("... reduces the glitching power'. The cost model charges the\n");
  printf("published ~2.2x glitch-activity factor to combinational adder\n");
  printf("chains that lack the retiming registers.)\n");
  return report.finish(p_ret.total_dynamic_w < p_unret.total_dynamic_w);
}
