// Ablation: plain Sinc^K vs sharpened comb (3H^2 - 2H^3) for the first
// decimation stage - the alternative comb schemes of reference [7].
#include <cstdio>

#include "src/filterdesign/cic.h"
#include "src/filterdesign/sharpened_cic.h"
#include "src/obs/bench_telemetry.h"

using namespace dsadc;

int main() {
  dsadc::obs::BenchReport report("ablation_sharpened");
  printf("==============================================================\n");
  printf(" Ablation - plain vs sharpened comb for the /2 Sinc stages\n");
  printf("==============================================================\n");
  const double fb[] = {20e6 / 640e6, 20e6 / 320e6, 20e6 / 160e6};
  const design::CicSpec stages[] = {{4, 2, 4}, {4, 2, 8}, {6, 2, 12}};

  printf("%-10s | %22s | %22s\n", "", "plain Sinc^K", "sharpened 3H^2-2H^3");
  printf("%-10s | %10s %11s | %10s %11s\n", "stage", "droop", "alias rej",
         "droop", "alias rej");
  for (int i = 0; i < 3; ++i) {
    printf("%-10s | %8.2f dB %8.1f dB | %8.3f dB %8.1f dB\n",
           i == 2 ? "Sinc6" : "Sinc4",
           design::cic_droop_db(stages[i], fb[i]),
           design::cic_alias_rejection_db(stages[i], fb[i]),
           design::sharpened_cic_droop_db(stages[i], fb[i]),
           design::sharpened_cic_alias_rejection_db(stages[i], fb[i]));
  }

  printf("\ncost view (first stage, M = 2):\n");
  const auto plain_len = 4 * (2 - 1) + 1;
  const auto sharp = design::sharpened_cic_taps(4, 2);
  printf("  plain Sinc4 impulse length: %d taps (Hogenauer: 8 adders)\n",
         plain_len);
  printf("  sharpened impulse length:   %zu taps (polyphase FIR with\n",
         sharp.size());
  printf("  integer taps; ~3x the arithmetic of the plain comb)\n");
  printf("\nReading: sharpening buys near-zero droop and ~2.5x the alias\n");
  printf("rejection per stage at ~3x the adder cost. The paper's chain\n");
  printf("keeps plain combs and spends the savings on the equalizer\n");
  printf("instead; this bench quantifies the road not taken [7].\n");
  return report.finish(true);
}
