// Fig. 8 reproduction: frequency responses of the individual Sinc filter
// stages and the cascaded response (0-320 MHz at the 640 MHz input rate).
#include <cstdio>

#include <cmath>

#include "src/dsp/freqz.h"
#include "src/filterdesign/cic.h"
#include "src/obs/bench_telemetry.h"

using namespace dsadc;

int main() {
  dsadc::obs::BenchReport report("fig8_sinc_response");
  printf("==========================================================\n");
  printf(" Fig. 8 - Sinc stage responses and cascade (dB, 0-320 MHz)\n");
  printf("==========================================================\n");
  const auto stages = design::paper_sinc_cascade();
  printf("%10s %12s %12s %12s %12s\n", "f (MHz)", "1st Sinc4", "2nd Sinc4",
         "Sinc6", "cascade");
  double worst_alias = 1e300;
  for (double fmhz = 0.0; fmhz <= 320.0; fmhz += 4.0) {
    const double f = fmhz * 1e6 / 640e6;
    const double m1 = design::cic_magnitude(stages[0], f);
    const double m2 = design::cic_magnitude(stages[1], 2.0 * f);
    const double m3 = design::cic_magnitude(stages[2], 4.0 * f);
    const double casc = m1 * m2 * m3;
    printf("%10.0f %12.1f %12.1f %12.1f %12.1f\n", fmhz,
           20.0 * std::log10(std::max(m1, 1e-10)),
           20.0 * std::log10(std::max(m2, 1e-10)),
           20.0 * std::log10(std::max(m3, 1e-10)),
           20.0 * std::log10(std::max(casc, 1e-10)));
  }
  // Worst-case attenuation in the +-20 MHz alias bands around 80k MHz.
  for (int image = 1; image <= 4; ++image) {
    for (double off = -20.0; off <= 20.0; off += 0.25) {
      const double fmhz = 80.0 * image + off;
      if (fmhz <= 0.0 || fmhz >= 320.0) continue;
      const double f = fmhz * 1e6 / 640e6;
      const double casc = design::cic_magnitude(stages[0], f) *
                          design::cic_magnitude(stages[1], 2.0 * f) *
                          design::cic_magnitude(stages[2], 4.0 * f);
      worst_alias = std::min(worst_alias, -20.0 * std::log10(casc));
    }
  }
  printf("\nworst attenuation across the +-20 MHz alias bands: %.1f dB\n",
         worst_alias);
  printf("paper: 'over 100 dB attenuation in the alias bands' (read near\n");
  printf("the notch centers; the band-edge slots are shallower - the known\n");
  printf("Sinc edge-leakage tradeoff, see DESIGN.md).\n");
  return report.finish(true);
}
