// Fig. 13 reproduction: distribution of dynamic power across the
// decimation filter stages (the paper's pie chart).
#include <cstdio>

#include <string>

#include "src/core/flow.h"
#include "src/obs/bench_telemetry.h"

using namespace dsadc;

int main() {
  dsadc::obs::BenchReport report("fig13_power_distribution");
  printf("==========================================================\n");
  printf(" Fig. 13 - Dynamic power distribution across the stages\n");
  printf("==========================================================\n");
  const auto r = core::DesignFlow::design(mod::paper_modulator_spec(),
                                          mod::paper_decimator_spec());
  const auto prof = core::DesignFlow::synthesize(r, 5e6, 1 << 14);

  const double paper_pct[] = {29.4, 14.1, 14.4, 15.9, 4.7, 21.5};
  printf("%-12s %12s %12s   %s\n", "stage", "paper (%)", "this (%)", "");
  for (std::size_t i = 0; i < prof.stages.size(); ++i) {
    const double pct =
        100.0 * prof.stages[i].dynamic_power_w / prof.total_dynamic_w;
    std::string bar(static_cast<std::size_t>(pct / 1.5), '#');
    printf("%-12s %12.1f %12.1f   %s\n", prof.stages[i].name.c_str(),
           paper_pct[i], pct, bar.c_str());
  }
  printf("\ntotal dynamic power: %.2f mW (paper: 8.04 mW)\n",
         prof.total_dynamic_w * 1e3);
  printf("paper's qualitative finding preserved: the 640 MHz first Sinc\n");
  printf("stage and the coefficient-heavy filters dominate; the halfband\n");
  printf("stays mid-pack thanks to the polyphase tapped-cascade + CSD.\n");
  return report.finish(true);
}
