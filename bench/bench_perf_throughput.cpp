// Runtime performance of the simulation substrate (google-benchmark):
// modulator, bit-true chain, design steps and the RTL simulator.
#include <benchmark/benchmark.h>

#include "src/core/flow.h"
#include "src/obs/bench_telemetry.h"
#include "src/decimator/chain.h"
#include "src/modulator/dsm.h"
#include "src/modulator/ntf.h"
#include "src/modulator/realize.h"
#include "src/rtl/builders.h"
#include "src/rtl/sim.h"

namespace {

using namespace dsadc;

const mod::CiffCoeffs& paper_coeffs() {
  static const mod::CiffCoeffs c =
      mod::realize_ciff(mod::synthesize_ntf(5, 16.0, 3.0, true));
  return c;
}

const std::vector<std::int32_t>& paper_codes() {
  static const std::vector<std::int32_t> codes = [] {
    mod::CiffModulator m(paper_coeffs(), 4);
    const auto u = mod::coherent_sine(1 << 15, 5e6, 640e6, 0.81, nullptr);
    return m.run(u).codes;
  }();
  return codes;
}

void BM_ModulatorSim(benchmark::State& state) {
  const auto u = mod::coherent_sine(static_cast<std::size_t>(state.range(0)),
                                    5e6, 640e6, 0.81, nullptr);
  mod::CiffModulator m(paper_coeffs(), 4);
  for (auto _ : state) {
    m.reset();
    benchmark::DoNotOptimize(m.run(u));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ModulatorSim)->Arg(1 << 12)->Arg(1 << 15);

void BM_DecimationChain(benchmark::State& state) {
  decim::DecimationChain chain(decim::paper_chain_config());
  const auto& codes = paper_codes();
  for (auto _ : state) {
    chain.reset();
    benchmark::DoNotOptimize(chain.process(codes));
  }
  state.SetItemsProcessed(state.iterations() * codes.size());
}
BENCHMARK(BM_DecimationChain);

void BM_HbfDesign(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        design::design_saramaki_hbf(3, 6, 0.2125, 24, 0));
  }
}
BENCHMARK(BM_HbfDesign);

void BM_NtfSynthesis(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(mod::synthesize_ntf(5, 16.0, 3.0, true));
  }
}
BENCHMARK(BM_NtfSynthesis);

void BM_FullDesignFlow(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::DesignFlow::design(
        mod::paper_modulator_spec(), mod::paper_decimator_spec()));
  }
}
BENCHMARK(BM_FullDesignFlow)->Unit(benchmark::kMillisecond);

void BM_RtlSimCic(benchmark::State& state) {
  const auto stage = rtl::build_cic(design::CicSpec{4, 2, 4});
  std::vector<std::int64_t> in(paper_codes().begin(), paper_codes().end());
  for (auto _ : state) {
    rtl::Simulator sim(stage.module);
    benchmark::DoNotOptimize(sim.run({{stage.in, in}}));
  }
  state.SetItemsProcessed(state.iterations() * in.size());
}
BENCHMARK(BM_RtlSimCic);

/// Console reporter that additionally copies each run's timing and
/// items/s into the telemetry record (BENCH_perf_throughput.json).
class TelemetryReporter : public benchmark::ConsoleReporter {
 public:
  explicit TelemetryReporter(obs::BenchReport* report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration) continue;
      if (run.error_occurred) {
        ok_ = false;
        continue;
      }
      const std::string name = run.benchmark_name();
      const double per_iter_s =
          run.iterations > 0
              ? run.real_accumulated_time / static_cast<double>(run.iterations)
              : run.real_accumulated_time;
      report_->set(name + ".real_s_per_iter", per_iter_s);
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        report_->set(name + ".items_per_second", it->second.value);
      }
    }
  }

  bool ok() const { return ok_; }

 private:
  obs::BenchReport* report_;
  bool ok_ = true;
};

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReport report("perf_throughput");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return report.finish(false);
  }
  TelemetryReporter reporter(&report);
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks(&reporter);
  report.set("benchmarks_run", static_cast<double>(ran));
  return report.finish(ran > 0 && reporter.ok());
}
