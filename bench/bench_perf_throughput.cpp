// Runtime performance of the simulation substrate (google-benchmark):
// modulator, bit-true chain, design steps and the RTL simulator.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory_resource>

#include "src/analyze/opt/opt.h"
#include "src/core/flow.h"
#include "src/obs/bench_telemetry.h"
#include "src/decimator/chain.h"
#include "src/modulator/dsm.h"
#include "src/modulator/ntf.h"
#include "src/modulator/realize.h"
#include "src/rtl/builders.h"
#include "src/rtl/compiled_sim.h"
#include "src/rtl/sim.h"
#include "src/runtime/multichannel.h"
#include "src/runtime/pipeline.h"

namespace {

using namespace dsadc;

const mod::CiffCoeffs& paper_coeffs() {
  static const mod::CiffCoeffs c =
      mod::realize_ciff(mod::synthesize_ntf(5, 16.0, 3.0, true));
  return c;
}

const std::vector<std::int32_t>& paper_codes() {
  static const std::vector<std::int32_t> codes = [] {
    mod::CiffModulator m(paper_coeffs(), 4);
    const auto u = mod::coherent_sine(1 << 15, 5e6, 640e6, 0.81, nullptr);
    return m.run(u).codes;
  }();
  return codes;
}

void BM_ModulatorSim(benchmark::State& state) {
  const auto u = mod::coherent_sine(static_cast<std::size_t>(state.range(0)),
                                    5e6, 640e6, 0.81, nullptr);
  mod::CiffModulator m(paper_coeffs(), 4);
  for (auto _ : state) {
    m.reset();
    benchmark::DoNotOptimize(m.run(u));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ModulatorSim)->Arg(1 << 12)->Arg(1 << 15);

void BM_DecimationChain(benchmark::State& state) {
  decim::DecimationChain chain(decim::paper_chain_config());
  const auto& codes = paper_codes();
  for (auto _ : state) {
    chain.reset();
    benchmark::DoNotOptimize(chain.process(codes));
  }
  state.SetItemsProcessed(state.iterations() * codes.size());
}
BENCHMARK(BM_DecimationChain);

// Sample-at-a-time reference for the chain: the same stages driven through
// push() one sample at a time. The ratio of BM_DecimationChain to this is
// decim_chain_batched_speedup -- the win from the batched block kernels,
// measured in the same run on the same machine.
void BM_DecimationChainPush(benchmark::State& state) {
  const auto cfg = decim::paper_chain_config();
  decim::CicCascade cic(cfg.cic_stages);
  decim::SaramakiHbfDecimator hbf(cfg.hbf, cfg.hbf_in_format,
                                  cfg.hbf_out_format, cfg.hbf_coeff_frac_bits);
  decim::ScalingStage scaler(cfg.scale, cfg.hbf_out_format,
                             cfg.scaler_out_format, /*frac_bits=*/14,
                             /*max_digits=*/8);
  decim::FirDecimator eq(
      decim::FixedTaps::from_real(cfg.equalizer_taps, cfg.equalizer_frac_bits),
      /*decimation=*/1, cfg.scaler_out_format, cfg.output_format);
  const int gain_log2 = static_cast<int>(std::lround(
      std::log2(static_cast<double>(cic.total_dc_gain()))));
  static const fx::EventCounters& ec = fx::event_counters("chain_hbf_in");
  const auto& codes = paper_codes();
  for (auto _ : state) {
    cic.reset();
    hbf.reset();
    eq.reset();
    std::vector<std::int64_t> out;
    out.reserve(codes.size() / 16 + 1);
    for (const std::int32_t code : codes) {
      std::int64_t v = code;
      bool have = true;
      for (auto& stage : cic.stages()) {
        std::int64_t next = 0;
        if (!stage.push(v, next)) {
          have = false;
          break;
        }
        v = next;
      }
      if (!have) continue;
      v = fx::requantize(v, gain_log2, cfg.hbf_in_format,
                         fx::Rounding::kRoundNearest, fx::Overflow::kSaturate,
                         &ec);
      std::int64_t h = 0;
      if (!hbf.push(v, h)) continue;
      std::int64_t e = 0;
      if (eq.push(scaler.push(h), e)) out.push_back(e);
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * codes.size());
}
BENCHMARK(BM_DecimationChainPush);

// --- Multi-channel runtime: SoA lockstep vs N serial chain runs ---------
//
// Both legs are forced to one worker (DSADC_RUNTIME_THREADS=1), so the
// runtime_soa_*_speedup ratios measure only the SoA kernel win (lockstep
// lanes, inlined requantize, no per-stage bookkeeping) and stay
// machine-independent: CI gates them via bench_diff regardless of the
// runner's core count.

const std::vector<std::vector<std::int32_t>>& channel_codes(
    std::size_t channels) {
  static std::map<std::size_t, std::vector<std::vector<std::int32_t>>> cache;
  auto& blocks = cache[channels];
  if (blocks.empty()) {
    const auto& codes = paper_codes();
    const std::vector<std::int32_t> block(codes.begin(),
                                          codes.begin() + (1 << 13));
    blocks.assign(channels, block);
  }
  return blocks;
}

void BM_MultiChannelSerial(benchmark::State& state) {
  const auto channels = static_cast<std::size_t>(state.range(0));
  const auto& blocks = channel_codes(channels);
  std::vector<decim::DecimationChain> chains;
  for (std::size_t c = 0; c < channels; ++c) {
    chains.emplace_back(decim::paper_chain_config());
  }
  for (auto _ : state) {
    for (std::size_t c = 0; c < channels; ++c) {
      chains[c].reset();
      benchmark::DoNotOptimize(chains[c].process(blocks[c]));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(channels * (1 << 13)));
}
BENCHMARK(BM_MultiChannelSerial)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_MultiChannelSoA(benchmark::State& state) {
  ::setenv("DSADC_RUNTIME_THREADS", "1", 1);
  const auto channels = static_cast<std::size_t>(state.range(0));
  const auto& blocks = channel_codes(channels);
  runtime::MultiChannelRuntime rt(decim::paper_chain_config(), channels);
  std::vector<std::vector<std::int64_t>> out;
  for (auto _ : state) {
    rt.reset();
    rt.process_into(blocks, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(channels * (1 << 13)));
}
BENCHMARK(BM_MultiChannelSoA)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// Pipelined stage executor vs the serial block chain, same stimulus. On a
// single hardware core the pipeline can only lose (queue traffic buys no
// parallelism), so the recorded pipeline_vs_serial ratio has a lenient
// floor; on multicore runners it exceeds 1 and bench_diff only gates
// regressions.
void BM_PipelinedChain(benchmark::State& state) {
  ::setenv("DSADC_RUNTIME_THREADS", "4", 1);
  runtime::PipelinedChain pipe(decim::paper_chain_config(),
                               /*block_frames=*/4096);
  const auto& codes = paper_codes();
  for (auto _ : state) {
    pipe.reset();
    benchmark::DoNotOptimize(pipe.process(codes));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(codes.size()));
}
BENCHMARK(BM_PipelinedChain)->UseRealTime();

void BM_HbfDesign(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        design::design_saramaki_hbf(3, 6, 0.2125, 24, 0));
  }
}
BENCHMARK(BM_HbfDesign);

void BM_NtfSynthesis(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(mod::synthesize_ntf(5, 16.0, 3.0, true));
  }
}
BENCHMARK(BM_NtfSynthesis);

void BM_FullDesignFlow(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::DesignFlow::design(
        mod::paper_modulator_spec(), mod::paper_decimator_spec()));
  }
}
BENCHMARK(BM_FullDesignFlow)->Unit(benchmark::kMillisecond);

void BM_RtlSimCic(benchmark::State& state) {
  const auto stage = rtl::build_cic(design::CicSpec{4, 2, 4});
  std::vector<std::int64_t> in(paper_codes().begin(), paper_codes().end());
  for (auto _ : state) {
    rtl::Simulator sim(stage.module);
    benchmark::DoNotOptimize(sim.run({{stage.in, in}}));
  }
  state.SetItemsProcessed(state.iterations() * in.size());
}
BENCHMARK(BM_RtlSimCic);

void BM_RtlSimCicCompiled(benchmark::State& state) {
  const auto stage = rtl::build_cic(design::CicSpec{4, 2, 4});
  std::vector<std::int64_t> in(paper_codes().begin(), paper_codes().end());
  rtl::CompiledSimulator sim(stage.module);  // elaborate once, like hardware
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run({{stage.in, in}}));
  }
  state.SetItemsProcessed(state.iterations() * in.size());
}
BENCHMARK(BM_RtlSimCicCompiled);

// Interpreted vs compiled on the flattened paper chain, same stimulus in
// the same process: the ratio of their items/s is the engine speedup
// recorded as rtl_chain_compiled_speedup (machine-independent, gated in
// CI via bench_diff).
void BM_RtlSimChainInterp(benchmark::State& state) {
  const auto chain = rtl::build_chain(decim::paper_chain_config());
  std::vector<std::int64_t> in(paper_codes().begin(),
                               paper_codes().begin() + (1 << 13));
  for (auto _ : state) {
    rtl::Simulator sim(chain.full);
    benchmark::DoNotOptimize(sim.run({{chain.in, in}}));
  }
  state.SetItemsProcessed(state.iterations() * in.size());
}
BENCHMARK(BM_RtlSimChainInterp);

void BM_RtlSimChainCompiled(benchmark::State& state) {
  const auto chain = rtl::build_chain(decim::paper_chain_config());
  std::vector<std::int64_t> in(paper_codes().begin(),
                               paper_codes().begin() + (1 << 13));
  rtl::CompiledSimulator sim(chain.full);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run({{chain.in, in}}));
  }
  state.SetItemsProcessed(state.iterations() * in.size());
}
BENCHMARK(BM_RtlSimChainCompiled);

// Compiled engine with activity accounting on, for the power-estimation
// path (toggle counts identical to the interpreted engine's).
void BM_RtlSimChainCompiledActivity(benchmark::State& state) {
  const auto chain = rtl::build_chain(decim::paper_chain_config());
  std::vector<std::int64_t> in(paper_codes().begin(),
                               paper_codes().begin() + (1 << 13));
  rtl::CompiledSimulator sim(chain.full);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run({{chain.in, in}}, {.activity = true}));
  }
  state.SetItemsProcessed(state.iterations() * in.size());
}
BENCHMARK(BM_RtlSimChainCompiledActivity);

// JIT codegen engine on the same chain and stimulus: the tape is emitted
// as straight-line C++, compiled, and dlopen'd. Construction cost (or a
// cache hit) is paid outside the timed loop; the ratio to the tape
// engine is rtl_codegen_speedup. Skipped (not failed) when no toolchain
// is available -- record_speedup then silently omits the ratio.
void BM_RtlSimChainCodegen(benchmark::State& state) {
  const auto chain = rtl::build_chain(decim::paper_chain_config());
  std::vector<std::int64_t> in(paper_codes().begin(),
                               paper_codes().begin() + (1 << 13));
  rtl::CompiledSimOptions opts;
  opts.codegen = rtl::CompiledSimOptions::Codegen::kOn;
  rtl::CompiledSimulator sim(chain.full, opts);
  if (sim.engine() != rtl::SimEngine::kCodegen) {
    state.SkipWithError(("codegen unavailable: " + sim.engine_detail()).c_str());
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run({{chain.in, in}}));
  }
  state.SetItemsProcessed(state.iterations() * in.size());
}
BENCHMARK(BM_RtlSimChainCodegen);

// Codegen engine with activity accounting (the second emitted entry
// point): toggle counts identical to the interpreter's, at codegen speed.
void BM_RtlSimChainCodegenActivity(benchmark::State& state) {
  const auto chain = rtl::build_chain(decim::paper_chain_config());
  std::vector<std::int64_t> in(paper_codes().begin(),
                               paper_codes().begin() + (1 << 13));
  rtl::CompiledSimOptions opts;
  opts.codegen = rtl::CompiledSimOptions::Codegen::kOn;
  rtl::CompiledSimulator sim(chain.full, opts);
  if (sim.engine() != rtl::SimEngine::kCodegen) {
    state.SkipWithError(("codegen unavailable: " + sim.engine_detail()).c_str());
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run({{chain.in, in}}, {.activity = true}));
  }
  state.SetItemsProcessed(state.iterations() * in.size());
}
BENCHMARK(BM_RtlSimChainCodegenActivity);

// Compiled engine on the proof-carrying optimizer's output: same stimulus
// and engine as BM_RtlSimChainCompiled, but the tape is built from the
// optimized netlist (dead nodes gone, constants folded, widths shrunk).
// The ratio to the unoptimized compiled run is rtl_opt_compiled_speedup.
void BM_RtlSimChainCompiledOpt(benchmark::State& state) {
  const auto chain = rtl::build_chain(decim::paper_chain_config());
  const analyze::opt::OptResult opt = analyze::opt::optimize(chain.full);
  std::vector<std::int64_t> in(paper_codes().begin(),
                               paper_codes().begin() + (1 << 13));
  rtl::CompiledSimulator sim(opt.module);
  const rtl::NodeId in_id =
      opt.node_map[static_cast<std::size_t>(chain.in)];
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run({{in_id, in}}));
  }
  state.SetItemsProcessed(state.iterations() * in.size());
}
BENCHMARK(BM_RtlSimChainCompiledOpt);

// --- Elaboration cost: default heap vs pmr arena -----------------------
//
// Building the full paper chain allocates thousands of pmr vector nodes
// plus name strings; the arena leg reuses one monotonic buffer per
// iteration. The recorded elaborate_arena_ratio (arena/heap items ratio)
// is informational -- allocator throughput is machine-dependent, so the
// name deliberately avoids the CI-gated "speedup" suffix.
void BM_ElaborateChain(benchmark::State& state) {
  const auto cfg = decim::paper_chain_config();
  for (auto _ : state) {
    const rtl::BuiltChain chain = rtl::build_chain(cfg);
    benchmark::DoNotOptimize(chain.full.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ElaborateChain);

void BM_ElaborateChainArena(benchmark::State& state) {
  const auto cfg = decim::paper_chain_config();
  for (auto _ : state) {
    std::pmr::monotonic_buffer_resource arena(1 << 20);
    const rtl::BuiltChain chain = rtl::build_chain(cfg, {.arena = &arena});
    benchmark::DoNotOptimize(chain.full.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ElaborateChainArena);

/// Console reporter that additionally copies each run's timing and
/// items/s into the telemetry record (BENCH_perf_throughput.json).
class TelemetryReporter : public benchmark::ConsoleReporter {
 public:
  explicit TelemetryReporter(obs::BenchReport* report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration) continue;
      if (run.error_occurred) {
        ok_ = false;
        continue;
      }
      const std::string name = run.benchmark_name();
      const double per_iter_s =
          run.iterations > 0
              ? run.real_accumulated_time / static_cast<double>(run.iterations)
              : run.real_accumulated_time;
      report_->set(name + ".real_s_per_iter", per_iter_s);
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        report_->set(name + ".items_per_second", it->second.value);
        items_per_second_[name] = it->second.value;
      }
    }
  }

  bool ok() const { return ok_; }
  /// items/s by benchmark name, for cross-benchmark ratios.
  const std::map<std::string, double>& items_per_second() const {
    return items_per_second_;
  }

 private:
  obs::BenchReport* report_;
  std::map<std::string, double> items_per_second_;
  bool ok_ = true;
};

/// Record `num/den` as `key` and require it to clear `floor`; silently
/// skipped when either benchmark did not run (e.g. --benchmark_filter).
bool record_speedup(obs::BenchReport& report, const TelemetryReporter& r,
                    const char* key, const char* num, const char* den,
                    double floor) {
  const auto& ips = r.items_per_second();
  const auto n = ips.find(num);
  const auto d = ips.find(den);
  if (n == ips.end() || d == ips.end() || d->second <= 0.0) return true;
  const double speedup = n->second / d->second;
  report.set(key, speedup);
  if (speedup < floor) {
    std::fprintf(stderr, "bench_perf_throughput: %s = %.2fx below floor %.2fx\n",
                 key, speedup, floor);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReport report("perf_throughput");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return report.finish(false);
  }
  TelemetryReporter reporter(&report);
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks(&reporter);
  report.set("benchmarks_run", static_cast<double>(ran));

  // Machine-independent engine/kernel speedups, both legs measured in this
  // run. The floors are the acceptance bars; bench_diff gates the recorded
  // ratios against bench/baseline in CI.
  bool ok = ran > 0 && reporter.ok();
  ok &= record_speedup(report, reporter, "rtl_chain_compiled_speedup",
                       "BM_RtlSimChainCompiled", "BM_RtlSimChainInterp", 5.0);
  ok &= record_speedup(report, reporter, "rtl_cic_compiled_speedup",
                       "BM_RtlSimCicCompiled", "BM_RtlSimCic", 1.0);
  // JIT codegen over the tape interpreter (measured ~15x on the paper
  // chain; the floor leaves headroom for slower machines). Silently
  // omitted when the codegen benchmark skipped (no toolchain).
  ok &= record_speedup(report, reporter, "rtl_codegen_speedup",
                       "BM_RtlSimChainCodegen", "BM_RtlSimChainCompiled",
                       5.0);
  // Activity accounting keeps most of the tape engine's throughput: the
  // ratio is < 1 by construction (extra XOR/popcount per update), and the
  // floor guards against the accounting path regressing to the pre-SWAR
  // per-bit loop (which measured ~0.4x).
  ok &= record_speedup(report, reporter, "rtl_compiled_activity_speedup",
                       "BM_RtlSimChainCompiledActivity",
                       "BM_RtlSimChainCompiled", 0.45);
  ok &= record_speedup(report, reporter, "decim_chain_batched_speedup",
                       "BM_DecimationChain", "BM_DecimationChainPush", 1.5);
  // Channels-scaling: SoA lockstep runtime vs N serial chain runs, both
  // single-worker (see the benchmark comments). The 16-channel ratio is
  // the acceptance bar for the runtime; 4 and 64 document the scaling
  // curve ends.
  ok &= record_speedup(report, reporter, "runtime_soa_4ch_speedup",
                       "BM_MultiChannelSoA/4", "BM_MultiChannelSerial/4", 1.5);
  ok &= record_speedup(report, reporter, "runtime_soa_16ch_speedup",
                       "BM_MultiChannelSoA/16", "BM_MultiChannelSerial/16",
                       3.0);
  // 64 channels is where the SoA layout pays most; measured 4.5x on the
  // scalar tier and 7.3x with AVX-512, so 3.5 is safe on any x86 tier
  // while still catching a real kernel regression.
  ok &= record_speedup(report, reporter, "runtime_soa_64ch_speedup",
                       "BM_MultiChannelSoA/64", "BM_MultiChannelSerial/64",
                       3.5);
  ok &= record_speedup(report, reporter, "runtime_pipeline_vs_serial",
                       "BM_PipelinedChain/real_time", "BM_DecimationChain",
                       0.3);
  // The optimized tape must never be slower than the unoptimized one; the
  // floor is lenient (0.98) because the win is modest -- the tape is
  // already const-hoisted -- and timer noise on small deltas is real.
  ok &= record_speedup(report, reporter, "rtl_opt_compiled_speedup",
                       "BM_RtlSimChainCompiledOpt", "BM_RtlSimChainCompiled",
                       0.98);
  ok &= record_speedup(report, reporter, "elaborate_arena_ratio",
                       "BM_ElaborateChainArena", "BM_ElaborateChain", 0.5);

  // Deterministic structural metrics: scheduled tape ops per period on the
  // paper chain, before and after the proof-carrying optimizer. Unlike the
  // timing ratios these are exact and machine-independent; the optimized
  // tape being strictly shorter is a hard acceptance bar, and the ratio is
  // gated in CI (bench_diff --gate speedup) like the engine speedups.
  {
    const auto chain = rtl::build_chain(decim::paper_chain_config());
    const analyze::opt::OptResult opt = analyze::opt::optimize(chain.full);
    const std::size_t unopt_ops =
        rtl::CompiledSimulator(chain.full).scheduled_ops_per_period();
    const std::size_t opt_ops =
        rtl::CompiledSimulator(opt.module).scheduled_ops_per_period();
    report.set("rtl_tape_ops", static_cast<double>(unopt_ops));
    report.set("rtl_opt_tape_ops", static_cast<double>(opt_ops));
    if (opt_ops < unopt_ops && opt_ops > 0) {
      report.set("rtl_opt_tape_speedup",
                 static_cast<double>(unopt_ops) / static_cast<double>(opt_ops));
    } else {
      std::fprintf(stderr,
                   "bench_perf_throughput: optimized tape (%zu ops) not "
                   "shorter than unoptimized (%zu ops)\n",
                   opt_ops, unopt_ops);
      ok = false;
    }
  }
  return report.finish(ok);
}
