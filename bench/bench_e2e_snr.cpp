// End-to-end check of the headline claim: a 14-bit / 86 dB SNR ADC output
// after decimation, measured through the full bit-true chain.
#include <algorithm>
#include <cstdio>

#include "src/core/flow.h"
#include "src/obs/bench_telemetry.h"

using namespace dsadc;

int main() {
  dsadc::obs::BenchReport report("e2e_snr");
  printf("=========================================================\n");
  printf(" End-to-end SNR: modulator -> bit-true decimation chain\n");
  printf("=========================================================\n");
  const auto r = core::DesignFlow::design(mod::paper_modulator_spec(),
                                          mod::paper_decimator_spec());

  printf("%12s %14s %14s %12s\n", "tone (MHz)", "SNR@14b (dB)",
         "SNR wide (dB)", "ENOB (bits)");
  bool all_ok = true;
  double min_snr_db = 1e9, min_wide_db = 1e9;
  for (double f : {1e6, 5e6, 9e6, 15e6, 19e6}) {
    const auto v = core::DesignFlow::verify(r, f, 1 << 16);
    printf("%12.2f %14.1f %14.1f %12.1f\n", v.tone_freq_hz / 1e6, v.snr_db,
           v.snr_unquantized_db, v.enob_bits);
    all_ok = all_ok && v.snr_ok;
    min_snr_db = std::min(min_snr_db, v.snr_db);
    min_wide_db = std::min(min_wide_db, v.snr_unquantized_db);
  }
  report.set("min_snr_14bit_db", min_snr_db);
  report.set("min_snr_wide_db", min_wide_db);
  printf("\npaper target: 86 dB / 14 bits. The 14-bit output format caps a\n");
  printf("0.95-FS tone at ~85 dB arithmetically; the wide-output column\n");
  printf("shows the filtering itself preserves > 86 dB everywhere in band\n");
  printf("(band-edge tones pick up the residual alias noise from the\n");
  printf("halfband transition, as in the paper's architecture).\n");
  return report.finish(all_ok);
}
