// Fig. 7 / Fig. 9 reproduction: the Saramaki halfband filter - structure
// statistics and frequency response at the 80 MHz stage rate.
#include <cstdio>

#include <cmath>

#include "src/dsp/freqz.h"
#include "src/filterdesign/saramaki.h"
#include "src/obs/bench_telemetry.h"

using namespace dsadc;

int main() {
  dsadc::obs::BenchReport report("fig9_hbf_response");
  printf("==========================================================\n");
  printf(" Fig. 7/9 - Saramaki halfband filter (n1=3, n2=6, 24b CSD)\n");
  printf("==========================================================\n");
  const auto h = design::design_saramaki_hbf(3, 6, 0.2125, 24, 0);
  printf("structure: %zu F2 subfilter instances, %zu outer taps\n",
         2 * h.n1 - 1, h.n1);
  printf("order: %zu (paper: 110)\n", h.order());
  printf("adders: %zu (paper: 124, no true multipliers)\n", h.adder_count);
  printf("stopband attenuation: %.1f dB (paper: > 90 dB)\n",
         h.stopband_atten_db);
  printf("passband ripple: %.4f dB\n", h.passband_ripple_db);
  printf("\ncoefficients (CSD, 24 fractional bits):\n");
  for (std::size_t i = 0; i < h.f1.size(); ++i) {
    printf("  f1(%zu) = %+.8f  [%zu digits: %s]\n", i + 1,
           h.f1_csd[i].to_double(), h.f1_csd[i].nonzero_count(),
           h.f1_csd[i].to_string().c_str());
  }
  for (std::size_t j = 0; j < h.f2.size(); ++j) {
    printf("  f2(%zu) = %+.8f  [%zu digits]\n", j + 1,
           h.f2_csd[j].to_double(), h.f2_csd[j].nonzero_count());
  }

  printf("\n%10s %14s   (80 MHz stage rate)\n", "f (MHz)", "|H| (dB)");
  for (double fmhz = 0.0; fmhz <= 40.0; fmhz += 0.5) {
    const double mag =
        std::abs(dsp::fir_response_at(h.taps, fmhz * 1e6 / 80e6));
    printf("%10.1f %14.1f\n", fmhz, 20.0 * std::log10(std::max(mag, 1e-9)));
  }
  printf("\nalias-band rejection (23-40 MHz): %.1f dB "
         "(paper reads > 90 dB off Fig. 9)\n",
         dsp::min_attenuation_db(h.taps, 23e6 / 80e6, 0.5));
  return report.finish(h.stopband_atten_db >= 90.0);
}
