// Section III extension: the sample-rate converter after the decimation
// chain - retiming the 40 MS/s ADC output to common receiver rates.
#include <cstdio>

#include "src/decimator/chain.h"
#include "src/decimator/src.h"
#include "src/dsp/spectrum.h"
#include "src/modulator/dsm.h"
#include "src/modulator/ntf.h"
#include "src/modulator/realize.h"
#include "src/obs/bench_telemetry.h"

using namespace dsadc;

int main() {
  dsadc::obs::BenchReport report("src_output_rate");
  printf("==============================================================\n");
  printf(" Sample-rate converter after the chain (Section III, ref [13])\n");
  printf("==============================================================\n");
  const auto ntf = mod::synthesize_ntf(5, 16.0, 3.0, true);
  const auto coeffs = mod::realize_ciff(ntf);
  mod::CiffModulator m(coeffs, 4);
  const auto u = mod::coherent_sine(1 << 16, 2e6, 640e6, 0.81, nullptr);
  const auto dsm = m.run(u);
  decim::DecimationChain chain(decim::paper_chain_config());
  const auto adc = chain.process_to_real(dsm.codes);
  std::vector<double> steady(adc.begin() + 512, adc.end());

  const auto base = dsp::measure_tone_snr(steady, 40e6, 20e6,
                                          dsp::WindowKind::kKaiser, 8, 8, 22.0);
  printf("chain output @ 40.00 MS/s: tone %.3f MHz, SNR %.1f dB\n",
         base.signal_freq_hz / 1e6, base.snr_db);

  printf("\n%14s %10s %14s %10s\n", "target rate", "samples", "tone (MHz)",
         "SNR (dB)");
  for (double rate : {30.72e6, 38.4e6, 32.0e6, 50.0e6}) {
    auto y = decim::resample(steady, 40e6, rate);
    y.erase(y.begin(), y.begin() + 64);
    y.resize(y.size() / 2 * 2);
    const auto snr = dsp::measure_tone_snr(
        y, rate, std::min(rate / 2.0 * 0.95, 20e6),
        dsp::WindowKind::kKaiser, 16, 8, 22.0);
    printf("%11.2f MS/s %10zu %14.3f %10.1f\n", rate / 1e6, y.size(),
           snr.signal_freq_hz / 1e6, snr.snr_db);
  }
  printf("\n(cubic Farrow interpolation: distortion rises toward the band\n");
  printf("edge; for full-band fidelity an SRC is preceded by a 2x\n");
  printf("interpolator, exactly why the paper keeps it outside the\n");
  printf("decimation chain proper.)\n");
  return report.finish(true);
}
