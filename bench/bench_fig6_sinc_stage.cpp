// Fig. 6 / Eq. (1)-(2) reproduction: the multirate Hogenauer Sinc stage -
// register widths, wraparound correctness, and stage responses.
#include <cstdio>

#include <random>

#include "src/decimator/cic.h"
#include "src/filterdesign/cic.h"
#include "src/obs/bench_telemetry.h"

using namespace dsadc;

int main() {
  dsadc::obs::BenchReport report("fig6_sinc_stage");
  printf("=========================================================\n");
  printf(" Fig. 6 / Eq. 2 - Hogenauer Sinc stages of the paper chain\n");
  printf("=========================================================\n");
  printf("%-10s %6s %6s %8s %10s %12s %14s\n", "stage", "K", "M", "Bin",
         "width", "DC gain", "alias rej (dB)");
  const double fb[] = {20e6 / 640e6, 20e6 / 320e6, 20e6 / 160e6};
  const char* names[] = {"Sinc4 #1", "Sinc4 #2", "Sinc6"};
  const auto stages = design::paper_sinc_cascade();
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const auto& s = stages[i];
    printf("%-10s %6d %6d %8d %10d %12.0f %14.1f\n", names[i], s.order,
           s.decimation, s.input_bits, s.register_width(), s.dc_gain(),
           design::cic_alias_rejection_db(s, fb[i]));
  }
  printf("(paper word lengths: 4, 8, 12 input bits per stage)\n");

  // Wraparound correctness demonstration: drive the Sinc6 stage with a
  // full-scale square wave; internal accumulators overflow constantly yet
  // the decimated output equals the exact convolution.
  printf("\nWraparound-correctness check (Sinc6, full-scale square wave):\n");
  decim::CicDecimator cic(stages[2]);
  std::vector<std::int64_t> in(512);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = (i / 7 % 2) ? 2047 : -2048;
  const auto out = cic.process(in);
  // Reference convolution in doubles.
  std::vector<double> h{1.0};
  for (int k = 0; k < 6; ++k) {
    std::vector<double> next(h.size() + 1, 0.0);
    for (std::size_t j = 0; j < h.size(); ++j) {
      next[j] += h[j];
      next[j + 1] += h[j];
    }
    h = next;
  }
  bool exact = true;
  std::size_t idx = 0;
  for (std::size_t n_in = 1; n_in < in.size(); n_in += 2, ++idx) {
    double acc = 0.0;
    for (std::size_t k = 0; k < h.size() && k <= n_in; ++k) {
      acc += h[k] * static_cast<double>(in[n_in - k]);
    }
    if (out[idx] != static_cast<std::int64_t>(acc)) exact = false;
  }
  printf("  bit-exact against full-precision convolution: %s\n",
         exact ? "YES" : "NO");

  printf("\nMinimum K for 80 dB alias rejection at each stage (design rule):\n");
  for (std::size_t i = 0; i < 3; ++i) {
    printf("  stage %zu (fb = %.4f): K >= %d (paper uses %d)\n", i + 1, fb[i],
           design::cic_min_order(2, fb[i], 80.0), stages[i].order);
  }
  return report.finish(exact);
}
