// Fig. 11 reproduction: cascaded decimation filter response with the
// quantized (CSD) coefficients, including the passband inset.
#include <cstdio>

#include <cmath>

#include "src/core/response.h"
#include "src/decimator/chain.h"
#include "src/obs/bench_telemetry.h"

using namespace dsadc;

int main() {
  dsadc::obs::BenchReport report("fig11_cascade_response");
  printf("==============================================================\n");
  printf(" Fig. 11 - Cascaded decimation filter response (quantized)\n");
  printf("==============================================================\n");
  const auto cfg = decim::paper_chain_config();

  printf("%10s %14s   (640 MHz input rate, normalized to DC)\n", "f (MHz)",
         "|H| (dB)");
  const double dc = core::composite_magnitude(cfg, 0.0);
  for (double fmhz = 0.0; fmhz <= 320.0; fmhz += 2.0) {
    const double mag = core::composite_magnitude(cfg, fmhz * 1e6) / dc;
    printf("%10.0f %14.1f\n", fmhz,
           20.0 * std::log10(std::max(mag, 1e-12)));
  }

  printf("\npassband inset (0-20 MHz):\n%10s %14s\n", "f (MHz)", "|H| (dB)");
  for (double fmhz = 1.0; fmhz <= 20.0; fmhz += 1.0) {
    const double mag = core::composite_magnitude(cfg, fmhz * 1e6) / dc;
    printf("%10.1f %14.3f\n", fmhz, 20.0 * std::log10(mag));
  }

  const double ripple = core::composite_passband_ripple_db(cfg, 1e6, 20e6);
  const double stop = core::composite_stopband_atten_db(cfg, 23e6);
  const double strict = core::composite_alias_protection_db(cfg, 17e6, 1024);
  report.set("passband_ripple_db", ripple);
  report.set("stopband_atten_db", stop);
  report.set("alias_protection_db", strict);
  printf("\nTable-I checks on the quantized cascade:\n");
  printf("  passband ripple (1-20 MHz):        %6.2f dB  (spec < 1 dB)\n",
         ripple);
  printf("  stopband attenuation (23-57 MHz):  %6.1f dB  (spec > 85 dB)\n",
         stop);
  printf("  strict all-image alias protection: %6.1f dB  (edge-leakage "
         "limited)\n",
         strict);
  return report.finish((stop >= 85.0));
}
