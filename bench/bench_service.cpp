// Service throughput bench: sustained multi-tenant load through a live
// in-process server (unix-domain socket, block policy), verified bit-exact
// against the scalar chain and recorded as BENCH_service.json telemetry:
//
//   service_64ch_mcodes_per_s        aggregate admitted input rate, 64 ch
//   service_256ch_mcodes_per_s       per-session scalar path, 256 channels
//   service_batch_256ch_mcodes_per_s same load with lockstep OPENs -- the
//                                    SoA batch fast path (ChainBank rounds)
//   service_batch_speedup            batch / scalar at 256 channels; CI
//                                    gates this ratio (machine-independent)
//   service_frame_p50_ms, service_frame_p99_ms
//                                    wire-to-wire DATA->DATA_OUT latency,
//                                    sender-stamped and measured at the
//                                    client receiver; each frame also logs
//                                    a frame.rtt transaction in the trace
//                                    store when one is open
//   service_zero_loss                1.0 when every channel was bit-exact
#include <algorithm>
#include <barrier>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/decimator/chain.h"
#include "src/obs/bench_telemetry.h"
#include "src/obs/obs.h"
#include "src/obs/store/store.h"
#include "src/obs/store/tracker.h"
#include "src/service/client.h"
#include "src/service/net.h"
#include "src/service/server.h"
#include "src/service/wire.h"
#include "src/verify/stimulus.h"

namespace {

using namespace dsadc;
using Clock = std::chrono::steady_clock;

struct RunResult {
  double mcodes_per_s = 0.0;
  bool exact = false;
};

/// One load run. With `lockstep` the channels OPEN with the LOCKSTEP flag,
/// every ack is awaited, and the senders stream barrier-paced so the
/// server's batch groups stay runnable. When `latency_ms` is non-null,
/// every DATA frame is timestamped at send and its DATA_OUT stamped at the
/// client receiver (wire-to-wire, both socket hops plus the chain work);
/// each sample is also recorded as a frame.rtt transaction when the trace
/// store is open.
RunResult run_load(std::size_t channels, std::size_t conns,
                   std::size_t blocks, std::size_t frames, bool lockstep,
                   std::vector<double>* latency_ms = nullptr) {
  std::mt19937_64 rng(777);
  const auto raw = verify::make_stimulus(verify::StimulusClass::kModulator,
                                         frames, fx::Format{4, 0}, rng);
  std::vector<std::int32_t> codes(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    codes[i] = static_cast<std::int32_t>(raw[i]);
  }
  decim::DecimationChain chain(*service::preset_config(0));
  std::vector<std::int64_t> ref;
  for (std::size_t b = 0; b < blocks; ++b) {
    const auto out = chain.process(codes);
    ref.insert(ref.end(), out.begin(), out.end());
  }

  service::ServerOptions opts;
  opts.unix_path = service::net::unique_socket_path("bench");
  service::Server server(opts);
  server.start();

  // Per-connection send stamps for the latency run: (channel<<32|seq) ->
  // send time. Senders write, the client receiver thread consumes.
  struct Stamps {
    std::mutex mu;
    std::unordered_map<std::uint64_t, Clock::time_point> sent;
  };
  std::vector<Stamps> stamps(conns);
  std::mutex lat_mu;

  std::vector<std::unique_ptr<service::Client>> clients;
  for (std::size_t c = 0; c < conns; ++c) {
    clients.push_back(service::Client::connect_unix(server.unix_path()));
    if (latency_ms != nullptr) {
      auto* st = &stamps[c];
      clients.back()->set_frame_hook(
          [st, latency_ms, &lat_mu](service::FrameType type,
                                    std::uint32_t ch, std::uint32_t seq,
                                    std::size_t) {
            if (type != service::FrameType::kDataOut) return;
            const auto t1 = Clock::now();
            Clock::time_point t0;
            {
              std::lock_guard<std::mutex> lock(st->mu);
              const auto it =
                  st->sent.find((static_cast<std::uint64_t>(ch) << 32) | seq);
              if (it == st->sent.end()) return;
              t0 = it->second;
              st->sent.erase(it);
            }
            const std::chrono::duration<double, std::milli> dt = t1 - t0;
            {
              std::lock_guard<std::mutex> lock(lat_mu);
              latency_ms->push_back(dt.count());
            }
            if (obs::store::enabled()) {
              static const std::uint32_t rtt_id =
                  obs::store::intern("frame.rtt");
              obs::store::TxnScope txn(rtt_id, ch);
              txn.set_value(static_cast<std::int64_t>(dt.count() * 1000.0));
            }
          });
    }
  }
  const std::size_t per_conn = channels / conns;
  const auto t0 = Clock::now();
  std::vector<std::thread> senders;
  std::barrier pace(static_cast<std::ptrdiff_t>(conns));
  for (std::size_t c = 0; c < conns; ++c) {
    senders.emplace_back([&, c] {
      auto& client = *clients[c];
      for (std::size_t k = 0; k < per_conn; ++k) {
        client.open(static_cast<std::uint32_t>(c * per_conn + k), 0,
                    lockstep);
      }
      if (lockstep) {
        // The cohort must be fully open before any group can seal at full
        // width; barrier-paced blocks keep the groups runnable.
        for (std::size_t k = 0; k < per_conn; ++k) {
          client.wait_ack_count(static_cast<std::uint32_t>(c * per_conn + k),
                                1, std::chrono::milliseconds(30000));
        }
        pace.arrive_and_wait();
      }
      for (std::size_t b = 0; b < blocks; ++b) {
        if (lockstep) pace.arrive_and_wait();
        for (std::size_t k = 0; k < per_conn; ++k) {
          const auto ch = static_cast<std::uint32_t>(c * per_conn + k);
          if (latency_ms != nullptr) {
            std::lock_guard<std::mutex> lock(stamps[c].mu);
            stamps[c].sent[(static_cast<std::uint64_t>(ch) << 32) |
                           static_cast<std::uint32_t>(b)] = Clock::now();
          }
          client.send_data(ch, codes);
        }
      }
    });
  }
  for (auto& t : senders) t.join();

  RunResult r;
  r.exact = true;
  for (std::size_t c = 0; c < conns; ++c) {
    for (std::size_t k = 0; k < per_conn; ++k) {
      const auto ch = static_cast<std::uint32_t>(c * per_conn + k);
      if (!clients[c]->wait_sample_count(ch, ref.size(),
                                         std::chrono::milliseconds(120000)) ||
          clients[c]->samples(ch) != ref) {
        r.exact = false;
      }
    }
  }
  const std::chrono::duration<double> wall = Clock::now() - t0;
  clients.clear();
  server.stop();

  r.mcodes_per_s = static_cast<double>(channels * blocks * frames) /
                   (wall.count() > 0 ? wall.count() : 1e-9) / 1e6;
  return r;
}

/// Best throughput over `reps` runs. A single run's number swings with
/// scheduler noise on shared runners; the peak is stable enough for the
/// store-overhead gate in CI to compare at a tight tolerance.
RunResult run_load_best(std::size_t channels, std::size_t conns,
                        std::size_t blocks, std::size_t frames,
                        bool lockstep, int reps) {
  RunResult best;
  best.exact = true;
  for (int i = 0; i < reps; ++i) {
    const RunResult r = run_load(channels, conns, blocks, frames, lockstep);
    best.exact = best.exact && r.exact;
    if (r.mcodes_per_s > best.mcodes_per_s) {
      best.mcodes_per_s = r.mcodes_per_s;
    }
  }
  return best;
}

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(v.size()));
  return v[std::min(idx, v.size() - 1)];
}

}  // namespace

int main() {
  obs::BenchReport report("service");
  obs::set_enabled(false);  // measure the data path, not the counters

  std::printf("decimation service sustained throughput (block policy)\n");
  std::printf("%8s  %8s  %8s  %12s  %6s\n", "channels", "conns", "mode",
              "Mcodes/s", "exact");

  const auto r64 = run_load_best(64, 4, 16, 512, false, 3);
  std::printf("%8d  %8d  %8s  %12.2f  %6s\n", 64, 4, "scalar",
              r64.mcodes_per_s, r64.exact ? "yes" : "NO");
  const auto r256 = run_load_best(256, 8, 2, 8192, false, 3);
  std::printf("%8d  %8d  %8s  %12.2f  %6s\n", 256, 8, "scalar",
              r256.mcodes_per_s, r256.exact ? "yes" : "NO");
  const auto b256 = run_load_best(256, 8, 2, 8192, true, 3);
  std::printf("%8d  %8d  %8s  %12.2f  %6s\n", 256, 8, "batch",
              b256.mcodes_per_s, b256.exact ? "yes" : "NO");
  const double speedup =
      r256.mcodes_per_s > 0 ? b256.mcodes_per_s / r256.mcodes_per_s : 0.0;
  std::printf("batch speedup (256ch): %.2fx\n", speedup);

  // Wire-to-wire frame latency under a lighter lockstep load (the
  // throughput runs above saturate the queues, which would measure queue
  // depth, not the serving path).
  std::vector<double> latency_ms;
  const auto rlat = run_load(64, 4, 8, 512, true, &latency_ms);
  const double p50 = percentile(latency_ms, 0.50);
  const double p99 = percentile(latency_ms, 0.99);
  std::printf("frame latency (64ch lockstep): p50 %.3f ms  p99 %.3f ms over "
              "%zu frames\n",
              p50, p99, latency_ms.size());

  const bool ok = r64.exact && r256.exact && b256.exact && rlat.exact;
  report.set("service_64ch_mcodes_per_s", r64.mcodes_per_s);
  report.set("service_256ch_mcodes_per_s", r256.mcodes_per_s);
  report.set("service_batch_256ch_mcodes_per_s", b256.mcodes_per_s);
  report.set("service_batch_speedup", speedup);
  report.set("service_frame_p50_ms", p50);
  report.set("service_frame_p99_ms", p99);
  report.set("service_zero_loss", ok);
  return report.finish(ok);
}
