// Service throughput bench: sustained multi-tenant load through a live
// in-process server (unix-domain socket, block policy), verified bit-exact
// against the scalar chain and recorded as BENCH_service.json telemetry:
//
//   service_64ch_mcodes_per_s   aggregate admitted input rate, 64 channels
//   service_256ch_mcodes_per_s  the soak-scale point (256 channels)
//   service_zero_loss           1.0 when every channel was bit-exact
#include <chrono>
#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/decimator/chain.h"
#include "src/obs/bench_telemetry.h"
#include "src/obs/obs.h"
#include "src/service/client.h"
#include "src/service/net.h"
#include "src/service/server.h"
#include "src/service/wire.h"
#include "src/verify/stimulus.h"

namespace {

using namespace dsadc;

struct RunResult {
  double mcodes_per_s = 0.0;
  bool exact = false;
};

RunResult run_load(std::size_t channels, std::size_t conns,
                   std::size_t blocks, std::size_t frames) {
  std::mt19937_64 rng(777);
  const auto raw = verify::make_stimulus(verify::StimulusClass::kModulator,
                                         frames, fx::Format{4, 0}, rng);
  std::vector<std::int32_t> codes(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    codes[i] = static_cast<std::int32_t>(raw[i]);
  }
  decim::DecimationChain chain(*service::preset_config(0));
  std::vector<std::int64_t> ref;
  for (std::size_t b = 0; b < blocks; ++b) {
    const auto out = chain.process(codes);
    ref.insert(ref.end(), out.begin(), out.end());
  }

  service::ServerOptions opts;
  opts.unix_path = service::net::unique_socket_path("bench");
  service::Server server(opts);
  server.start();

  std::vector<std::unique_ptr<service::Client>> clients;
  for (std::size_t c = 0; c < conns; ++c) {
    clients.push_back(service::Client::connect_unix(server.unix_path()));
  }
  const std::size_t per_conn = channels / conns;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> senders;
  for (std::size_t c = 0; c < conns; ++c) {
    senders.emplace_back([&, c] {
      auto& client = *clients[c];
      for (std::size_t k = 0; k < per_conn; ++k) {
        client.open(static_cast<std::uint32_t>(c * per_conn + k), 0);
      }
      for (std::size_t b = 0; b < blocks; ++b) {
        for (std::size_t k = 0; k < per_conn; ++k) {
          client.send_data(static_cast<std::uint32_t>(c * per_conn + k),
                           codes);
        }
      }
    });
  }
  for (auto& t : senders) t.join();

  RunResult r;
  r.exact = true;
  for (std::size_t c = 0; c < conns; ++c) {
    for (std::size_t k = 0; k < per_conn; ++k) {
      const auto ch = static_cast<std::uint32_t>(c * per_conn + k);
      if (!clients[c]->wait_sample_count(ch, ref.size(),
                                         std::chrono::milliseconds(120000)) ||
          clients[c]->samples(ch) != ref) {
        r.exact = false;
      }
    }
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - t0;
  clients.clear();
  server.stop();

  r.mcodes_per_s = static_cast<double>(channels * blocks * frames) /
                   (wall.count() > 0 ? wall.count() : 1e-9) / 1e6;
  return r;
}

/// Best throughput over `reps` runs. A single run's number swings with
/// scheduler noise on shared runners; the peak is stable enough for the
/// store-overhead gate in CI to compare at a tight tolerance.
RunResult run_load_best(std::size_t channels, std::size_t conns,
                        std::size_t blocks, std::size_t frames, int reps) {
  RunResult best;
  best.exact = true;
  for (int i = 0; i < reps; ++i) {
    const RunResult r = run_load(channels, conns, blocks, frames);
    best.exact = best.exact && r.exact;
    if (r.mcodes_per_s > best.mcodes_per_s) {
      best.mcodes_per_s = r.mcodes_per_s;
    }
  }
  return best;
}

}  // namespace

int main() {
  obs::BenchReport report("service");
  obs::set_enabled(false);  // measure the data path, not the counters

  std::printf("decimation service sustained throughput (block policy)\n");
  std::printf("%8s  %8s  %12s  %6s\n", "channels", "conns", "Mcodes/s",
              "exact");

  const auto r64 = run_load_best(64, 4, 16, 512, 3);
  std::printf("%8d  %8d  %12.2f  %6s\n", 64, 4, r64.mcodes_per_s,
              r64.exact ? "yes" : "NO");
  const auto r256 = run_load_best(256, 8, 8, 512, 3);
  std::printf("%8d  %8d  %12.2f  %6s\n", 256, 8, r256.mcodes_per_s,
              r256.exact ? "yes" : "NO");

  report.set("service_64ch_mcodes_per_s", r64.mcodes_per_s);
  report.set("service_256ch_mcodes_per_s", r256.mcodes_per_s);
  report.set("service_zero_loss", r64.exact && r256.exact);
  return report.finish(r64.exact && r256.exact);
}
