// Figs. 2-3 reproduction: the 5th-order CT feed-forward loop filter -
// coefficients k1..k5 / resonator couplings (the Active-RC resistor
// ratios), impulse-invariance quality, and the CT simulation's SQNR
// (the paper's 102 dB figure comes from this CT configuration).
#include <cstdio>

#include <cmath>

#include "src/dsp/spectrum.h"
#include "src/modulator/ct.h"
#include "src/modulator/ntf.h"
#include "src/obs/bench_telemetry.h"

using namespace dsadc;

int main() {
  dsadc::obs::BenchReport report("fig2_ct_loopfilter");
  printf("=============================================================\n");
  printf(" Figs. 2-3 - CT CIFF loop filter (Active-RC coefficient view)\n");
  printf("=============================================================\n");
  const auto ntf = mod::synthesize_ntf(5, 16.0, 3.0, true);
  const auto dt = mod::realize_ciff(ntf);
  const auto ct = mod::map_ciff_to_ct(dt);

  printf("feed-forward gains (k_i = Rf/Rii, integrators at fs):\n");
  printf("  k0 = %.5f (direct input feed-in)\n", ct.k0);
  for (std::size_t i = 0; i < ct.k.size(); ++i) {
    printf("  k%zu = %.5f   (DT a%zu = %.5f)\n", i + 1, ct.k[i], i + 1,
           dt.a[i]);
  }
  printf("resonator couplings (NTF in-band zeros):\n");
  for (std::size_t j = 0; j < ct.g_ct.size(); ++j) {
    printf("  g%zu = %.6f  -> notch at %.2f MHz\n", j + 1, ct.g_ct[j],
           std::sqrt(ct.g_ct[j]) / (2.0 * M_PI) * 640.0);
  }

  const auto want = mod::ciff_loop_impulse_response(dt, 24);
  const auto got = mod::ct_loop_pulse_response(ct, 24);
  double err = 0.0;
  for (std::size_t n = 0; n < want.size(); ++n) {
    err = std::max(err, std::abs(want[n] - got[n]));
  }
  printf("\nimpulse-invariance fit error (24 samples): %.2e\n", err);

  // Dynamic-range scaling (the Active-RC swing budget of Fig. 3).
  const auto scaling = mod::scale_ciff_states(dt, 4, 0.81, 0.9);
  printf("\nintegrator swings at MSA (scaleABCD step, target 0.9):\n");
  printf("  %-8s %12s %12s\n", "state", "raw", "scaled");
  for (std::size_t i = 0; i < scaling.swings_before.size(); ++i) {
    printf("  x%-7zu %12.3f %12.3f\n", i + 1, scaling.swings_before[i],
           scaling.swings_after[i]);
  }

  mod::CtCiffModulator m(ct, 4);
  const auto u = mod::coherent_sine(1 << 16, 5e6, 640e6, 0.81, nullptr);
  const auto out = m.run(u);
  const auto snr = dsp::measure_tone_snr(out.levels, 640e6, 20e6,
                                         dsp::WindowKind::kKaiser, 8, 8, 22.0);
  printf("CT modulator simulation (RK4, NRZ DAC): stable=%s, SQNR %.1f dB\n",
         out.stable ? "yes" : "NO", snr.snr_db);
  printf("paper: 102 dB for this configuration.\n");
  return report.finish((out.stable && snr.snr_db > 100.0));
}
