// Fig. 10 reproduction: uncompensated droop, equalizer response, and the
// compensated passband (paper: residual ripple < 0.5 dB).
#include <cstdio>

#include <cmath>

#include "src/core/response.h"
#include "src/decimator/chain.h"
#include "src/dsp/freqz.h"
#include "src/fixedpoint/quantize.h"
#include "src/obs/bench_telemetry.h"

using namespace dsadc;

int main() {
  dsadc::obs::BenchReport report("fig10_equalizer");
  printf("===========================================================\n");
  printf(" Fig. 10 - Droop, equalizer and compensated response (dB)\n");
  printf("===========================================================\n");
  const auto cfg = decim::paper_chain_config();
  const auto eq_taps = fx::quantize_taps(cfg.equalizer_taps, 14);
  printf("equalizer: %zu symmetric taps at the 40 MHz output rate "
         "(paper: 64th order)\n\n",
         cfg.equalizer_taps.size());
  printf("%10s %14s %14s %14s\n", "f (MHz)", "uncompensated", "equalizer",
         "compensated");
  double lo = 1e300, hi = -1e300;
  for (double fmhz = 0.25; fmhz <= 20.0; fmhz += 0.25) {
    const double droop = core::pre_equalizer_magnitude(cfg, fmhz * 1e6);
    const double eq =
        std::abs(dsp::fir_response_at(eq_taps, fmhz * 1e6 / 40e6));
    const double comp = droop * eq;
    printf("%10.2f %14.2f %14.2f %14.3f\n", fmhz, 20.0 * std::log10(droop),
           20.0 * std::log10(eq), 20.0 * std::log10(comp));
    lo = std::min(lo, 20.0 * std::log10(comp));
    hi = std::max(hi, 20.0 * std::log10(comp));
  }
  printf("\ncompensated passband ripple over 0.25-20 MHz: %.2f dB "
         "peak-to-peak\n",
         hi - lo);
  printf("paper: < 0.5 dB with a sinc-only target; compensating the full\n");
  printf("sinc + halfband droop to the Nyquist edge with the same 65 taps\n");
  printf("costs about 1 dB (Table I allows < 1 dB; the design flow grows\n");
  printf("the equalizer automatically when asked to do better).\n");
  return report.finish(true);
}
