// Fig. 4 reproduction: simulated output spectrum of the 5th-order CT
// delta-sigma modulator (DT equivalent), with the SQNR the paper reads
// off the plot (102 dB, 16.7 bits).
#include <cstdio>

#include <algorithm>
#include <cmath>

#include "src/dsp/spectrum.h"
#include "src/modulator/dsm.h"
#include "src/modulator/ntf.h"
#include "src/modulator/realize.h"
#include "src/obs/bench_telemetry.h"

using namespace dsadc;

int main() {
  dsadc::obs::BenchReport report("fig4_modulator_spectrum");
  printf("=====================================================\n");
  printf(" Fig. 4 - Modulator output spectrum (5 MHz tone, MSA)\n");
  printf("=====================================================\n");
  const auto ntf = mod::synthesize_ntf(5, 16.0, 3.0, true);
  const auto coeffs = mod::realize_ciff(ntf);
  mod::CiffModulator m(coeffs, 4);
  const std::size_t n = 1 << 17;
  double ftone = 0.0;
  const auto u = mod::coherent_sine(n, 5e6, 640e6, 0.81, &ftone);
  const auto out = m.run(u);
  printf("stimulus: %.3f MHz at amplitude %.2f (MSA), %zu samples\n",
         ftone / 1e6, 0.81, n);
  printf("modulator stable: %s, max state %.2f\n",
         out.stable ? "yes" : "NO", out.max_state);

  const auto p = dsp::periodogram(out.levels, 640e6);
  // Log-binned spectrum, like the paper's log-frequency plot.
  printf("\n%12s %12s\n", "freq (MHz)", "PSD (dBFS/bin-avg)");
  double f0 = 3e5;
  while (f0 < 320e6) {
    const double f1 = f0 * 1.45;
    const double pw = dsp::band_power(p, f0, std::min(f1, 319e6));
    const std::size_t bins =
        p.bin_of_freq(std::min(f1, 319e6)) - p.bin_of_freq(f0) + 1;
    printf("%12.2f %12.1f\n", std::sqrt(f0 * f1) / 1e6,
           dsp::power_db(pw / static_cast<double>(bins)));
    f0 = f1;
  }

  const auto snr = dsp::measure_tone_snr(out.levels, 640e6, 20e6,
                                         dsp::WindowKind::kKaiser, 8, 8, 22.0);
  printf("\nSQNR over 0-20 MHz: %.1f dB (%.1f bits)\n", snr.snr_db,
         snr.enob_bits);
  printf("paper: 102 dB (16.7 bits) for the CT design; the DT equivalent\n");
  printf("with the same order/OSR/OBG synthesizes slightly deeper zeros.\n");
  return report.finish(snr.snr_db > 95.0);
}
