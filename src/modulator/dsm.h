// Bit-true delta-sigma modulator simulation.
//
// Two simulators are provided:
//  * `CiffModulator` - the structural simulation of the paper's 5th-order
//    feed-forward loop (discrete-time equivalent of the Active-RC filter of
//    Fig. 3) with a multibit mid-rise quantizer.
//  * `simulate_error_feedback` - an NTF-exact behavioural simulator for
//    arbitrary NTFs; useful for cross-checking the structural one.
// Both emit the integer quantizer codes the decimation filter consumes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/modulator/ntf.h"
#include "src/modulator/realize.h"
#include "src/modulator/spec.h"

namespace dsadc::mod {

/// Mid-tread multibit quantizer: 2^bits - 1 levels spanning [-1, +1]
/// symmetrically (code c in [-(2^(bits-1)-1), 2^(bits-1)-1], level =
/// c / (2^(bits-1)-1)). Mid-tread keeps the idle output at exactly zero,
/// which preserves full scaling headroom in the decimator.
class Quantizer {
 public:
  explicit Quantizer(int bits);

  int bits() const { return bits_; }
  double step() const { return step_; }

  /// Quantize a real value; returns the signed integer code.
  std::int32_t code_of(double y) const;
  /// Reconstruction level for a code.
  double level_of(std::int32_t code) const;

 private:
  int bits_;
  std::int32_t cmin_, cmax_;
  double step_;  ///< distance between adjacent levels
};

/// Result of a modulator run.
struct DsmOutput {
  std::vector<std::int32_t> codes;  ///< quantizer codes (decimator input)
  std::vector<double> levels;       ///< same, as reconstruction levels
  bool stable = true;               ///< no state exceeded the blow-up bound
  double max_state = 0.0;           ///< largest |x_i| observed
  double max_quantizer_input = 0.0;
};

/// Structural CIFF modulator simulation.
class CiffModulator {
 public:
  CiffModulator(CiffCoeffs coeffs, int quantizer_bits);

  /// Run on an input sequence (values in fractions of full scale).
  /// `blowup_bound` declares instability when any state magnitude passes it.
  DsmOutput run(std::span<const double> u, double blowup_bound = 25.0);

  /// Reset internal states to zero.
  void reset();

  const CiffCoeffs& coeffs() const { return coeffs_; }
  const Quantizer& quantizer() const { return quantizer_; }

 private:
  CiffCoeffs coeffs_;
  Quantizer quantizer_;
  std::vector<double> state_;
};

/// NTF-exact behavioural simulation: v = Q(u - (NTF-1) * e), which yields
/// V(z) = U(z) + NTF(z) E(z) exactly for the linearized model.
DsmOutput simulate_error_feedback(const Ntf& ntf, std::span<const double> u,
                                  int quantizer_bits);

/// Generate a coherently-sampled sine: frequency snapped to an integer
/// number of cycles over `n` samples, closest to `freq_hz` at `fs_hz`.
std::vector<double> coherent_sine(std::size_t n, double freq_hz, double fs_hz,
                                  double amplitude, double* actual_freq_hz = nullptr);

/// Binary-search the maximum stable amplitude of a CIFF modulator using a
/// low-frequency test tone (`test_freq_fraction` of the band edge).
double find_msa(const CiffCoeffs& coeffs, int quantizer_bits, double osr,
                std::size_t run_length = 1 << 14, double tolerance = 0.005);

}  // namespace dsadc::mod
