// Noise-transfer-function synthesis for delta-sigma modulators.
//
// Equivalent of the Delta-Sigma Toolbox's `synthesizeNTF`: place NTF zeros
// at the in-band positions that minimize integrated in-band noise (the
// Legendre-polynomial roots scaled into the signal band), and choose
// maximally-flat (Butterworth) high-pass poles whose radius is tuned by
// bisection so the out-of-band gain ||NTF||_inf equals the requested OBG.
#pragma once

#include <complex>
#include <vector>

#include "src/modulator/spec.h"

namespace dsadc::mod {

/// A z-domain NTF given by unit-circle zeros and in-disc poles. Both the
/// numerator and denominator are monic in z^-1 so NTF(z -> inf) = 1
/// (realizability).
struct Ntf {
  std::vector<std::complex<double>> zeros;
  std::vector<std::complex<double>> poles;

  /// Numerator / denominator polynomials in ascending powers of z^-1.
  std::vector<double> numerator() const;
  std::vector<double> denominator() const;

  /// |NTF(e^{j 2 pi f})| for f in cycles/sample.
  double magnitude_at(double f) const;
  std::complex<double> response_at(double f) const;

  /// max |NTF| over the unit circle (sampled + golden-section refined).
  double infinity_norm() const;

  /// In-band noise power gain: (2/ 1) * integral_0^{fb} |NTF|^2 df with
  /// fb = 0.5/osr (one-sided, in cycles/sample).
  double inband_noise_power_gain(double osr, std::size_t grid = 4096) const;
};

/// Roots of the Legendre polynomial P_n on [-1, 1] (Newton iteration).
/// These are the optimal relative NTF zero positions (Schreier, Table 4.1
/// of "Understanding Delta-Sigma Data Converters").
std::vector<double> legendre_roots(int n);

/// Synthesize an NTF of the given order for the given OSR and out-of-band
/// gain. `optimize_zeros` spreads zeros across the band (Legendre
/// positions); otherwise all zeros sit at DC.
Ntf synthesize_ntf(int order, double osr, double obg,
                   bool optimize_zeros = true);

/// Predicted peak SQNR in dB for a multibit modulator with this NTF:
/// signal amplitude `amp` (fraction of full scale) against quantization
/// noise with step 2/(2^bits - 1) shaped by the NTF and integrated in band.
double predict_sqnr_db(const Ntf& ntf, double osr, int quantizer_bits,
                       double amp);

}  // namespace dsadc::mod
