#include "src/modulator/dsm.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "src/dsp/polynomial.h"

namespace dsadc::mod {

Quantizer::Quantizer(int bits) : bits_(bits) {
  if (bits < 2 || bits > 16) {
    throw std::invalid_argument("Quantizer: bits must be in [2, 16]");
  }
  cmax_ = (std::int32_t{1} << (bits - 1)) - 1;
  cmin_ = -cmax_;
  step_ = 1.0 / static_cast<double>(cmax_);
}

std::int32_t Quantizer::code_of(double y) const {
  // Mid-tread: level = c * step, thresholds halfway between levels.
  const double scaled = std::nearbyint(y / step_);
  if (scaled < static_cast<double>(cmin_)) return cmin_;
  if (scaled > static_cast<double>(cmax_)) return cmax_;
  return static_cast<std::int32_t>(scaled);
}

double Quantizer::level_of(std::int32_t code) const {
  return static_cast<double>(code) * step_;
}

CiffModulator::CiffModulator(CiffCoeffs coeffs, int quantizer_bits)
    : coeffs_(std::move(coeffs)),
      quantizer_(quantizer_bits),
      state_(static_cast<std::size_t>(coeffs_.order()), 0.0) {}

void CiffModulator::reset() { std::fill(state_.begin(), state_.end(), 0.0); }

DsmOutput CiffModulator::run(std::span<const double> u, double blowup_bound) {
  const int n = coeffs_.order();
  const CiffStateSpace ss = ciff_state_space(coeffs_);
  DsmOutput out;
  out.codes.reserve(u.size());
  out.levels.reserve(u.size());
  std::vector<double> next(n, 0.0);
  for (double uk : u) {
    // Quantizer input from current states + direct feed-in.
    double y = coeffs_.b0 * uk;
    for (int i = 0; i < n; ++i) y += coeffs_.a[i] * state_[i];
    const std::int32_t code = quantizer_.code_of(y);
    const double v = quantizer_.level_of(code);
    out.codes.push_back(code);
    out.levels.push_back(v);
    out.max_quantizer_input = std::max(out.max_quantizer_input, std::abs(y));

    // State update x' = A x + B (u - v).
    const double drive = uk - v;
    for (int i = 0; i < n; ++i) {
      double acc = ss.b[i] * drive;
      for (int j = 0; j < n; ++j) acc += ss.a[i][j] * state_[j];
      next[i] = acc;
      out.max_state = std::max(out.max_state, std::abs(acc));
    }
    state_.swap(next);
    if (out.max_state > blowup_bound) {
      out.stable = false;
      break;
    }
  }
  return out;
}

DsmOutput simulate_error_feedback(const Ntf& ntf, std::span<const double> u,
                                  int quantizer_bits) {
  const Quantizer q(quantizer_bits);
  // h = impulse response of (NTF - 1); h[0] == 0 because NTF(inf) = 1.
  const std::vector<double> num = ntf.numerator();
  const std::vector<double> den = ntf.denominator();
  std::vector<double> diff(std::max(num.size(), den.size()), 0.0);
  for (std::size_t i = 0; i < num.size(); ++i) diff[i] += num[i];
  for (std::size_t i = 0; i < den.size(); ++i) diff[i] -= den[i];
  // (NTF - 1) = (N - D)/D: poles inside the unit circle, so a truncated
  // impulse response converges; 256 taps is far below double precision
  // error for OBG ~ 3 pole radii.
  const std::vector<double> h = dsp::rational_impulse_response(diff, den, 256);

  DsmOutput out;
  out.codes.reserve(u.size());
  out.levels.reserve(u.size());
  std::vector<double> e_hist(h.size(), 0.0);  // circular buffer of errors
  std::size_t pos = 0;
  for (double uk : u) {
    double shaped = 0.0;
    for (std::size_t k = 1; k < h.size(); ++k) {
      if (h[k] == 0.0) continue;
      shaped += h[k] * e_hist[(pos + h.size() - k) % h.size()];
    }
    const double y = uk + shaped;
    const std::int32_t code = q.code_of(y);
    const double v = q.level_of(code);
    out.codes.push_back(code);
    out.levels.push_back(v);
    out.max_quantizer_input = std::max(out.max_quantizer_input, std::abs(y));
    e_hist[pos] = v - y;  // quantization error
    pos = (pos + 1) % h.size();
  }
  return out;
}

std::vector<double> coherent_sine(std::size_t n, double freq_hz, double fs_hz,
                                  double amplitude, double* actual_freq_hz) {
  // Snap to an odd number of cycles for coherent sampling.
  double cycles = std::nearbyint(freq_hz / fs_hz * static_cast<double>(n));
  if (cycles < 1.0) cycles = 1.0;
  if (std::fmod(cycles, 2.0) == 0.0) cycles += 1.0;
  const double f = cycles / static_cast<double>(n);
  if (actual_freq_hz != nullptr) *actual_freq_hz = f * fs_hz;
  std::vector<double> x(n);
  for (std::size_t k = 0; k < n; ++k) {
    x[k] = amplitude * std::sin(2.0 * std::numbers::pi * f * static_cast<double>(k));
  }
  return x;
}

double find_msa(const CiffCoeffs& coeffs, int quantizer_bits, double osr,
                std::size_t run_length, double tolerance) {
  const double f_test = 0.25 / osr;  // half the band edge, in cycles/sample
  const auto stable_at = [&](double amp) {
    CiffModulator m(coeffs, quantizer_bits);
    std::vector<double> u(run_length);
    for (std::size_t k = 0; k < run_length; ++k) {
      u[k] = amp * std::sin(2.0 * std::numbers::pi * f_test * static_cast<double>(k));
    }
    const DsmOutput out = m.run(u);
    return out.stable;
  };
  double lo = 0.0, hi = 1.0;
  if (!stable_at(0.1)) return 0.0;  // modulator itself unstable
  lo = 0.1;
  while (hi - lo > tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (stable_at(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace dsadc::mod
