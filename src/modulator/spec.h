// Modulator and decimator specifications (Table I of the paper).
#pragma once

#include <cstdint>

namespace dsadc::mod {

/// Delta-sigma modulator specification.
struct ModulatorSpec {
  int order = 5;               ///< loop-filter order
  double osr = 16.0;           ///< oversampling ratio
  double obg = 3.0;            ///< out-of-band NTF gain (Hinf)
  double sample_rate_hz = 640e6;
  double bandwidth_hz = 20e6;
  int quantizer_bits = 4;      ///< internal quantizer resolution
  double msa = 0.81;           ///< maximum stable amplitude (fraction of FS)

  double nyquist_rate_hz() const { return 2.0 * bandwidth_hz; }
};

/// Decimation filter requirement set (right column of Table I).
struct DecimatorSpec {
  int input_bits = 4;
  double passband_ripple_db = 1.0;      ///< < 1 dB
  double passband_edge_hz = 20e6;
  double stopband_edge_hz = 23e6;       ///< transition 20-23 MHz
  double stopband_atten_db = 85.0;      ///< > 85 dB
  double output_rate_hz = 40e6;
  double target_snr_db = 86.0;          ///< 14 bits
};

/// The paper's wideband wireless target (Table I), the default everywhere.
inline ModulatorSpec paper_modulator_spec() { return ModulatorSpec{}; }
inline DecimatorSpec paper_decimator_spec() { return DecimatorSpec{}; }

}  // namespace dsadc::mod
