// CIFF (cascade-of-integrators, feed-forward) realization of an NTF.
//
// The paper's modulator (Fig. 2/3) is a 5th-order feed-forward loop filter
// with two resonators creating in-band NTF zeros. This module computes the
// feed-forward gains a_i and resonator feedbacks g_j that realize a given
// NTF with delaying integrators, the discrete-time equivalent of the
// Active-RC loop filter (equivalent of the toolbox `realizeNTF` for the
// 'CIFF' structure).
#pragma once

#include <vector>

#include "src/modulator/ntf.h"

namespace dsadc::mod {

/// CIFF coefficient set.
///
/// State update (order n, delaying integrators x_i):
///   x_1' = x_1 + (u - v) - [g_0 * x_2 if resonator starts at x_1]
///   x_i' = x_i + x_{i-1} - [g_j * x_{i+1} if x_i starts resonator j]
///   y    = sum_i a_i * x_i + b0 * u
///   v    = Q(y)
/// For odd order the first integrator is plain (DC zero) and resonators
/// cover (x2,x3), (x4,x5), ...; for even order they cover (x1,x2), ...
struct CiffCoeffs {
  std::vector<double> a;  ///< feed-forward gains, size = order
  std::vector<double> g;  ///< resonator feedbacks, size = floor(order/2)
  /// Inter-stage gains (the independent 1/(R_i C_i) products of the
  /// Active-RC chain in Fig. 3): c[0] drives the first integrator from
  /// (u - v), c[i] couples x_{i-1} into x_i. Empty = all ones (the
  /// normalized realization); dynamic-range scaling populates them.
  std::vector<double> c;
  double b0 = 1.0;        ///< direct input feed-in (1.0 -> STF = 1)

  int order() const { return static_cast<int>(a.size()); }
  double stage_gain(int i) const {
    return c.empty() ? 1.0 : c[static_cast<std::size_t>(i)];
  }
  /// Index of the state at which resonator j's feedback is applied.
  int resonator_head(int j) const { return (order() % 2 == 1) ? 1 + 2 * j : 2 * j; }
};

/// State-space matrices of the CIFF loop filter: x' = A x + B d where d is
/// the (u - v) drive at the first integrator. Each resonator is a delaying
/// integrator (head) followed by a NON-delaying integrator (tail); this
/// places the resonator poles exactly on the unit circle at angle
/// arccos(1 - g/2). With two delaying integrators the poles would sit at
/// radius sqrt(1+g) and the loop would be unstable.
struct CiffStateSpace {
  std::vector<std::vector<double>> a;  ///< order x order
  std::vector<double> b;               ///< order
};

CiffStateSpace ciff_state_space(int order, const std::vector<double>& g);
CiffStateSpace ciff_state_space(const CiffCoeffs& coeffs);

/// Fit CIFF coefficients to `ntf` by matching the open-loop impulse
/// response P(z) = 1/NTF - 1 over `match_length` samples (least squares;
/// exact when resonator poles coincide with the NTF zeros, which they do
/// by construction).
CiffCoeffs realize_ciff(const Ntf& ntf, std::size_t match_length = 64);

/// Impulse response (length n) of the realized loop filter P from the
/// quantizer-feedback input to y; used to validate the realization.
std::vector<double> ciff_loop_impulse_response(const CiffCoeffs& c,
                                               std::size_t n);

/// Reconstruct the NTF magnitude at frequency f (cycles/sample) implied by
/// the realized coefficients: |1 / (1 + P(e^{j2 pi f}))|.
double ciff_ntf_magnitude(const CiffCoeffs& c, double f,
                          std::size_t ir_length = 512);

/// Dynamic-range scaling (the toolbox's `scaleABCD` step): simulate the
/// loop at `amplitude` and rescale every state so its observed swing is
/// `target_swing` (e.g. 0.9 of the Active-RC supply-limited range of
/// Fig. 3). Returns the per-state scale factors applied; the NTF is
/// invariant under this diagonal similarity transform.
struct CiffScaling {
  CiffCoeffs coeffs;                 ///< rescaled realization
  std::vector<double> state_gains;   ///< k_i applied to state i
  std::vector<double> swings_before; ///< observed max |x_i| pre-scaling
  std::vector<double> swings_after;  ///< observed max |x_i| post-scaling
};

CiffScaling scale_ciff_states(const CiffCoeffs& c, int quantizer_bits,
                              double amplitude, double target_swing = 0.9,
                              std::size_t run_length = 1 << 14);

}  // namespace dsadc::mod
