// Continuous-time CIFF loop-filter mapping (Figs. 2-3 of the paper).
//
// The paper's modulator is a CT Active-RC feed-forward filter with
// coefficients k0..k5 (= Rf/R00 .. Rf/R55) and two resonators. This module
// maps the discrete-time CIFF realization onto that CT structure by
// numerical impulse invariance: the CT loop filter's NRZ-DAC pulse
// response, sampled at the clock, is fitted to the DT loop's impulse
// response, so the CT modulator realizes the same NTF at the sampling
// instants. A Runge-Kutta simulator validates the mapping end to end.
#pragma once

#include <vector>

#include "src/modulator/dsm.h"
#include "src/modulator/realize.h"

namespace dsadc::mod {

/// CT CIFF coefficients, normalized to integrators of unity-gain frequency
/// fs (i.e. dx/dt = fs * input). In the Active-RC view of Fig. 3,
/// k[i] = Rf/Rii picks the feed-forward summing resistors and
/// g_ct[j] = Rii/Rgj^... sets the resonator cross-coupling.
struct CtCiffCoeffs {
  std::vector<double> k;     ///< feed-forward gains, size = order
  std::vector<double> g_ct;  ///< resonator cross-couplings, floor(order/2)
  double k0 = 1.0;           ///< direct input feed-in (STF flattening)

  int order() const { return static_cast<int>(k.size()); }
};

/// Map a DT CIFF realization to CT coefficients by sampled-pulse-response
/// matching against an NRZ feedback DAC. `substeps` is the Runge-Kutta
/// resolution per clock period; `match_length` the number of samples
/// fitted.
CtCiffCoeffs map_ciff_to_ct(const CiffCoeffs& dt, int substeps = 32,
                            std::size_t match_length = 48);

/// Sampled NRZ pulse response of the CT loop filter (the response at y to
/// a one-period DAC pulse), length n. Used by the mapping and by tests.
std::vector<double> ct_loop_pulse_response(const CtCiffCoeffs& ct,
                                           std::size_t n, int substeps = 32);

/// Continuous-time CIFF modulator simulation: Runge-Kutta integration of
/// the Active-RC states between clock edges, mid-tread quantizer sampled
/// at the clock, NRZ feedback DAC (the paper's configuration).
class CtCiffModulator {
 public:
  CtCiffModulator(CtCiffCoeffs coeffs, int quantizer_bits, int substeps = 32);

  /// Run on input samples (one per clock; the CT input is held NRZ-style).
  DsmOutput run(std::span<const double> u, double blowup_bound = 25.0);

  void reset();

  const CtCiffCoeffs& coeffs() const { return coeffs_; }

 private:
  /// State derivative of the CT loop filter (normalized time: one clock
  /// period = 1).
  void derivative(const std::vector<double>& x, double drive,
                  std::vector<double>& dx) const;

  CtCiffCoeffs coeffs_;
  Quantizer quantizer_;
  int substeps_;
  std::vector<double> state_;
};

}  // namespace dsadc::mod
