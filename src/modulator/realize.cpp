#include "src/modulator/realize.h"

#include "src/modulator/dsm.h"

#include <algorithm>
#include <cmath>
#include <complex>
#include <numbers>
#include <stdexcept>

#include "src/dsp/freqz.h"
#include "src/dsp/linalg.h"
#include "src/dsp/polynomial.h"

namespace dsadc::mod {
namespace {

/// Simulate the CIFF state chain driven at the x1 input by an impulse and
/// record each state's trajectory. `g` resonator feedbacks applied; the
/// a-coefficients play no role in the state dynamics.
std::vector<std::vector<double>> state_impulse_responses(
    int order, const std::vector<double>& g, std::size_t n) {
  const CiffStateSpace ss = ciff_state_space(order, g);
  std::vector<std::vector<double>> resp(order, std::vector<double>(n, 0.0));
  std::vector<double> x(order, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    for (int i = 0; i < order; ++i) resp[i][k] = x[i];
    const double drive = (k == 0) ? 1.0 : 0.0;
    std::vector<double> nx(order, 0.0);
    for (int i = 0; i < order; ++i) {
      double acc = ss.b[i] * drive;
      for (int j = 0; j < order; ++j) acc += ss.a[i][j] * x[j];
      nx[i] = acc;
    }
    x = std::move(nx);
  }
  return resp;
}

}  // namespace

CiffStateSpace ciff_state_space(int order, const std::vector<double>& g) {
  CiffCoeffs c;
  c.a.assign(static_cast<std::size_t>(order), 0.0);
  c.g = g;
  return ciff_state_space(c);
}

CiffStateSpace ciff_state_space(const CiffCoeffs& coeffs) {
  const int order = coeffs.order();
  const auto& g = coeffs.g;
  const bool odd = (order % 2) == 1;
  CiffStateSpace ss;
  ss.a.assign(order, std::vector<double>(order, 0.0));
  ss.b.assign(order, 0.0);
  // Delaying integrators along the chain with per-stage gains:
  // x_i' = x_i + c_i * (previous output).
  for (int i = 0; i < order; ++i) ss.a[i][i] = 1.0;
  for (int i = 1; i < order; ++i) ss.a[i][i - 1] = coeffs.stage_gain(i);
  ss.b[0] = coeffs.stage_gain(0);
  // Resonators: head h (delaying) gets -g * x_tail; tail (non-delaying)
  // integrates the *updated* head with its own stage gain:
  // x_t' = x_t + c_t * x_h'.
  for (int j = 0; j < order / 2; ++j) {
    const int h = odd ? 1 + 2 * j : 2 * j;
    const int t = h + 1;
    const double ct = coeffs.stage_gain(t);
    ss.a[h][t] -= g[j];
    for (int cc = 0; cc < order; ++cc) ss.a[t][cc] = 0.0;
    ss.a[t][t] = 1.0 - ct * g[j];
    ss.a[t][h] = ct;
    if (h > 0) {
      ss.a[t][h - 1] = ct * coeffs.stage_gain(h);
    } else {
      ss.b[t] = ct * coeffs.stage_gain(h);  // even order: driven directly
    }
  }
  return ss;
}

CiffScaling scale_ciff_states(const CiffCoeffs& c, int quantizer_bits,
                              double amplitude, double target_swing,
                              std::size_t run_length) {
  const int n = c.order();
  const auto measure = [&](const CiffCoeffs& coeffs) {
    const CiffStateSpace ss = ciff_state_space(coeffs);
    // Inline quantized simulation with per-state swing tracking (the
    // modulator class only reports the overall maximum).
    std::vector<double> x(static_cast<std::size_t>(n), 0.0);
    std::vector<double> swing(static_cast<std::size_t>(n), 0.0);
    std::vector<double> nx(static_cast<std::size_t>(n), 0.0);
    const double two_pi_f = 2.0 * std::numbers::pi * 0.25 / 16.0;
    const Quantizer q(quantizer_bits);
    for (std::size_t k = 0; k < run_length; ++k) {
      const double uk = amplitude * std::sin(two_pi_f * static_cast<double>(k));
      double y = coeffs.b0 * uk;
      for (int i = 0; i < n; ++i) y += coeffs.a[static_cast<std::size_t>(i)] * x[static_cast<std::size_t>(i)];
      const double v = q.level_of(q.code_of(y));
      const double drive = uk - v;
      for (int i = 0; i < n; ++i) {
        double acc = ss.b[static_cast<std::size_t>(i)] * drive;
        for (int j = 0; j < n; ++j) acc += ss.a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] * x[static_cast<std::size_t>(j)];
        nx[static_cast<std::size_t>(i)] = acc;
        swing[static_cast<std::size_t>(i)] =
            std::max(swing[static_cast<std::size_t>(i)], std::abs(acc));
      }
      x.swap(nx);
    }
    return swing;
  };

  CiffScaling out;
  out.swings_before = measure(c);

  // Diagonal transform xhat_i = k_i x_i with k_i = target / swing_i.
  std::vector<double> k(static_cast<std::size_t>(n), 1.0);
  for (int i = 0; i < n; ++i) {
    const double s = out.swings_before[static_cast<std::size_t>(i)];
    k[static_cast<std::size_t>(i)] = s > 0.0 ? target_swing / s : 1.0;
  }
  out.state_gains = k;
  CiffCoeffs scaled = c;
  if (scaled.c.empty()) scaled.c.assign(static_cast<std::size_t>(n), 1.0);
  scaled.c[0] = c.stage_gain(0) * k[0];
  for (int i = 1; i < n; ++i) {
    scaled.c[static_cast<std::size_t>(i)] =
        c.stage_gain(i) * k[static_cast<std::size_t>(i)] /
        k[static_cast<std::size_t>(i - 1)];
  }
  const bool odd = (n % 2) == 1;
  for (int j = 0; j < n / 2; ++j) {
    const int h = odd ? 1 + 2 * j : 2 * j;
    const int t = h + 1;
    scaled.g[static_cast<std::size_t>(j)] =
        c.g[static_cast<std::size_t>(j)] * k[static_cast<std::size_t>(h)] /
        k[static_cast<std::size_t>(t)];
  }
  for (int i = 0; i < n; ++i) {
    scaled.a[static_cast<std::size_t>(i)] =
        c.a[static_cast<std::size_t>(i)] / k[static_cast<std::size_t>(i)];
  }
  out.coeffs = scaled;
  out.swings_after = measure(scaled);
  return out;
}

CiffCoeffs realize_ciff(const Ntf& ntf, std::size_t match_length) {
  const int order = static_cast<int>(ntf.zeros.size());
  if (order < 1) throw std::invalid_argument("realize_ciff: empty NTF");
  if (ntf.poles.size() != ntf.zeros.size()) {
    throw std::invalid_argument("realize_ciff: NTF must have equal pole/zero counts");
  }
  CiffCoeffs c;
  c.a.assign(order, 0.0);
  c.g.assign(order / 2, 0.0);
  c.b0 = 1.0;

  // Resonator feedbacks from the NTF zero angles: a delaying-integrator
  // pair with feedback g has characteristic z^2 - (2-g) z + 1, i.e. unit-
  // circle poles at angle theta with g = 2 - 2 cos(theta).
  std::vector<double> angles;
  for (const auto& z : ntf.zeros) {
    const double th = std::abs(std::arg(z));
    if (th > 1e-12) angles.push_back(th);
  }
  std::sort(angles.begin(), angles.end());
  // Each conjugate pair contributes the angle twice.
  const int nres = order / 2;
  for (int j = 0; j < nres; ++j) {
    const double th = angles.at(static_cast<std::size_t>(2 * j));
    c.g[j] = 2.0 - 2.0 * std::cos(th);
  }

  // Desired open-loop impulse response: P(z) = 1/NTF - 1 = (D - N)/N.
  const std::vector<double> num_n = ntf.numerator();
  const std::vector<double> num_d = ntf.denominator();
  std::vector<double> p_num(std::max(num_n.size(), num_d.size()), 0.0);
  for (std::size_t i = 0; i < num_d.size(); ++i) p_num[i] += num_d[i];
  for (std::size_t i = 0; i < num_n.size(); ++i) p_num[i] -= num_n[i];
  const std::vector<double> p_ir =
      dsp::rational_impulse_response(p_num, num_n, match_length);

  // Basis: state responses to the x1-input impulse. y = sum a_i x_i, so
  // P's impulse response is sum_i a_i * resp_i. Solve least squares.
  const auto basis = state_impulse_responses(order, c.g, match_length);
  dsp::Matrix m(match_length, order);
  std::vector<double> rhs(match_length);
  for (std::size_t k = 0; k < match_length; ++k) {
    for (int i = 0; i < order; ++i) m.at(k, i) = basis[i][k];
    rhs[k] = p_ir[k];
  }
  c.a = dsp::solve_least_squares(m, rhs);
  return c;
}

std::vector<double> ciff_loop_impulse_response(const CiffCoeffs& c,
                                               std::size_t n) {
  // Basis trajectories under the coefficients' own state space (per-stage
  // gains included, so scaled realizations evaluate correctly).
  const CiffStateSpace ss = ciff_state_space(c);
  std::vector<std::vector<double>> basis(
      static_cast<std::size_t>(c.order()), std::vector<double>(n, 0.0));
  {
    std::vector<double> x(static_cast<std::size_t>(c.order()), 0.0);
    std::vector<double> nx(x.size(), 0.0);
    for (std::size_t k = 0; k < n; ++k) {
      for (int i = 0; i < c.order(); ++i) basis[static_cast<std::size_t>(i)][k] = x[static_cast<std::size_t>(i)];
      const double drive = (k == 0) ? 1.0 : 0.0;
      for (int i = 0; i < c.order(); ++i) {
        double acc = ss.b[static_cast<std::size_t>(i)] * drive;
        for (int j = 0; j < c.order(); ++j) {
          acc += ss.a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] * x[static_cast<std::size_t>(j)];
        }
        nx[static_cast<std::size_t>(i)] = acc;
      }
      x.swap(nx);
    }
  }
  std::vector<double> out(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    for (int i = 0; i < c.order(); ++i) out[k] += c.a[i] * basis[i][k];
  }
  return out;
}

double ciff_ntf_magnitude(const CiffCoeffs& c, double f, std::size_t) {
  // Exact evaluation from the state-space form x' = A x + B d, y = a^T x:
  // P(z) = a^T (zI - A)^{-1} B. P has unit-circle poles (integrators), so a
  // truncated-impulse-response evaluation would not converge.
  const int n = c.order();
  const CiffStateSpace ss = ciff_state_space(c);
  const double w = 2.0 * std::numbers::pi * f;
  const std::complex<double> z(std::cos(w), std::sin(w));
  // Solve (zI - A) x = B by complex Gaussian elimination.
  std::vector<std::vector<std::complex<double>>> m(
      n, std::vector<std::complex<double>>(n));
  std::vector<std::complex<double>> rhs(n, {0.0, 0.0});
  for (int r = 0; r < n; ++r) rhs[r] = ss.b[r];
  for (int r = 0; r < n; ++r) {
    for (int cidx = 0; cidx < n; ++cidx) {
      m[r][cidx] =
          (r == cidx ? z : std::complex<double>{0.0, 0.0}) - ss.a[r][cidx];
    }
  }
  for (int col = 0; col < n; ++col) {
    int piv = col;
    for (int r = col + 1; r < n; ++r) {
      if (std::abs(m[r][col]) > std::abs(m[piv][col])) piv = r;
    }
    std::swap(m[piv], m[col]);
    std::swap(rhs[piv], rhs[col]);
    for (int r = col + 1; r < n; ++r) {
      const std::complex<double> factor = m[r][col] / m[col][col];
      for (int cc = col; cc < n; ++cc) m[r][cc] -= factor * m[col][cc];
      rhs[r] -= factor * rhs[col];
    }
  }
  std::vector<std::complex<double>> x(n);
  for (int i = n - 1; i >= 0; --i) {
    std::complex<double> acc = rhs[i];
    for (int cc = i + 1; cc < n; ++cc) acc -= m[i][cc] * x[cc];
    x[i] = acc / m[i][i];
  }
  std::complex<double> p(0.0, 0.0);
  for (int i = 0; i < n; ++i) p += c.a[i] * x[i];
  return std::abs(1.0 / (1.0 + p));
}

}  // namespace dsadc::mod
