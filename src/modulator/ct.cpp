#include "src/modulator/ct.h"

#include <cmath>
#include <stdexcept>

#include "src/dsp/linalg.h"

namespace dsadc::mod {
namespace {

/// CT CIFF state derivative in normalized time (one clock period = 1).
/// Mirrors the DT chain: first integrator driven, resonator tails.
void ct_derivative(int order, const std::vector<double>& g,
                   const std::vector<double>& x, double drive,
                   std::vector<double>& dx) {
  const bool odd = (order % 2) == 1;
  dx.assign(static_cast<std::size_t>(order), 0.0);
  dx[0] = drive;
  for (int i = 1; i < order; ++i) dx[i] = x[static_cast<std::size_t>(i - 1)];
  for (int j = 0; j < order / 2; ++j) {
    const int head = odd ? 1 + 2 * j : 2 * j;
    dx[static_cast<std::size_t>(head)] -=
        g[static_cast<std::size_t>(j)] * x[static_cast<std::size_t>(head + 1)];
  }
}

/// One RK4 step of size h with constant drive.
void rk4_step(int order, const std::vector<double>& g, std::vector<double>& x,
              double drive, double h) {
  static thread_local std::vector<double> k1, k2, k3, k4, tmp;
  ct_derivative(order, g, x, drive, k1);
  tmp.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) tmp[i] = x[i] + 0.5 * h * k1[i];
  ct_derivative(order, g, tmp, drive, k2);
  for (std::size_t i = 0; i < x.size(); ++i) tmp[i] = x[i] + 0.5 * h * k2[i];
  ct_derivative(order, g, tmp, drive, k3);
  for (std::size_t i = 0; i < x.size(); ++i) tmp[i] = x[i] + h * k3[i];
  ct_derivative(order, g, tmp, drive, k4);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
  }
}

/// Sampled state trajectories under a one-period NRZ drive pulse.
std::vector<std::vector<double>> ct_state_pulse_responses(
    int order, const std::vector<double>& g, std::size_t n, int substeps) {
  std::vector<std::vector<double>> resp(
      static_cast<std::size_t>(order), std::vector<double>(n, 0.0));
  std::vector<double> x(static_cast<std::size_t>(order), 0.0);
  const double h = 1.0 / static_cast<double>(substeps);
  for (std::size_t sample = 0; sample < n; ++sample) {
    for (int i = 0; i < order; ++i) {
      resp[static_cast<std::size_t>(i)][sample] = x[static_cast<std::size_t>(i)];
    }
    const double drive = (sample == 0) ? 1.0 : 0.0;
    for (int s = 0; s < substeps; ++s) rk4_step(order, g, x, drive, h);
  }
  return resp;
}

}  // namespace

CtCiffCoeffs map_ciff_to_ct(const CiffCoeffs& dt, int substeps,
                            std::size_t match_length) {
  const int order = dt.order();
  CtCiffCoeffs ct;
  ct.k.assign(static_cast<std::size_t>(order), 0.0);
  ct.g_ct.assign(dt.g.size(), 0.0);
  ct.k0 = dt.b0;

  // Resonators: the CT pair oscillates at sqrt(g_ct) rad per clock, so the
  // sampled poles sit at e^{+-j sqrt(g_ct)}; the DT design wants angle
  // theta with g_dt = 2 - 2 cos(theta)  =>  g_ct = theta^2.
  for (std::size_t j = 0; j < dt.g.size(); ++j) {
    const double theta = std::acos(1.0 - dt.g[j] / 2.0);
    ct.g_ct[j] = theta * theta;
  }

  // Feed-forward gains: fit the sampled CT pulse response to the DT loop
  // impulse response (numerical impulse invariance for an NRZ DAC). The
  // pole sets coincide by construction, so the fit is essentially exact.
  const std::vector<double> target =
      ciff_loop_impulse_response(dt, match_length);
  const auto basis =
      ct_state_pulse_responses(order, ct.g_ct, match_length, substeps);
  dsp::Matrix m(match_length, static_cast<std::size_t>(order));
  std::vector<double> rhs(match_length);
  for (std::size_t nIdx = 0; nIdx < match_length; ++nIdx) {
    for (int i = 0; i < order; ++i) {
      m.at(nIdx, static_cast<std::size_t>(i)) =
          basis[static_cast<std::size_t>(i)][nIdx];
    }
    rhs[nIdx] = target[nIdx];
  }
  ct.k = dsp::solve_least_squares(m, rhs);
  return ct;
}

std::vector<double> ct_loop_pulse_response(const CtCiffCoeffs& ct,
                                           std::size_t n, int substeps) {
  const auto basis =
      ct_state_pulse_responses(ct.order(), ct.g_ct, n, substeps);
  std::vector<double> out(n, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    for (int i = 0; i < ct.order(); ++i) {
      out[s] += ct.k[static_cast<std::size_t>(i)] *
                basis[static_cast<std::size_t>(i)][s];
    }
  }
  return out;
}

CtCiffModulator::CtCiffModulator(CtCiffCoeffs coeffs, int quantizer_bits,
                                 int substeps)
    : coeffs_(std::move(coeffs)),
      quantizer_(quantizer_bits),
      substeps_(substeps),
      state_(static_cast<std::size_t>(coeffs_.order()), 0.0) {
  if (substeps < 4) {
    throw std::invalid_argument("CtCiffModulator: substeps must be >= 4");
  }
}

void CtCiffModulator::reset() {
  std::fill(state_.begin(), state_.end(), 0.0);
}

void CtCiffModulator::derivative(const std::vector<double>& x, double drive,
                                 std::vector<double>& dx) const {
  ct_derivative(coeffs_.order(), coeffs_.g_ct, x, drive, dx);
}

DsmOutput CtCiffModulator::run(std::span<const double> u,
                               double blowup_bound) {
  DsmOutput out;
  out.codes.reserve(u.size());
  out.levels.reserve(u.size());
  const double h = 1.0 / static_cast<double>(substeps_);
  for (double uk : u) {
    // Sample the quantizer at the clock edge.
    double y = coeffs_.k0 * uk;
    for (int i = 0; i < coeffs_.order(); ++i) {
      y += coeffs_.k[static_cast<std::size_t>(i)] *
           state_[static_cast<std::size_t>(i)];
    }
    const std::int32_t code = quantizer_.code_of(y);
    const double v = quantizer_.level_of(code);
    out.codes.push_back(code);
    out.levels.push_back(v);
    out.max_quantizer_input = std::max(out.max_quantizer_input, std::abs(y));

    // Integrate over one period with the NRZ-held drive u - v.
    const double drive = uk - v;
    for (int s = 0; s < substeps_; ++s) {
      rk4_step(coeffs_.order(), coeffs_.g_ct, state_, drive, h);
    }
    for (double xs : state_) {
      out.max_state = std::max(out.max_state, std::abs(xs));
    }
    if (out.max_state > blowup_bound) {
      out.stable = false;
      break;
    }
  }
  return out;
}

}  // namespace dsadc::mod
