#include "src/modulator/ntf.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "src/dsp/polynomial.h"
#include "src/obs/trace.h"

namespace dsadc::mod {
namespace {

constexpr double kPi = std::numbers::pi;

/// Evaluate Legendre polynomial P_n and derivative at x.
std::pair<double, double> legendre_eval(int n, double x) {
  double p0 = 1.0, p1 = x;
  if (n == 0) return {1.0, 0.0};
  for (int k = 2; k <= n; ++k) {
    const double p2 = ((2.0 * k - 1.0) * x * p1 - (k - 1.0) * p0) / k;
    p0 = p1;
    p1 = p2;
  }
  const double dp = n * (x * p1 - p0) / (x * x - 1.0);
  return {p1, dp};
}

}  // namespace

std::vector<double> legendre_roots(int n) {
  std::vector<double> roots(n);
  for (int i = 0; i < n; ++i) {
    // Chebyshev-node initial guess, then Newton.
    double x = std::cos(kPi * (i + 0.75) / (n + 0.5));
    for (int it = 0; it < 100; ++it) {
      const auto [p, dp] = legendre_eval(n, x);
      const double dx = p / dp;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    roots[i] = x;
  }
  // Sort ascending and symmetrize numerically.
  std::sort(roots.begin(), roots.end());
  for (int i = 0; i < n / 2; ++i) {
    const double m = 0.5 * (roots[n - 1 - i] - roots[i]);
    roots[i] = -m;
    roots[n - 1 - i] = m;
  }
  if (n % 2 == 1) roots[n / 2] = 0.0;
  return roots;
}

std::vector<double> Ntf::numerator() const {
  return dsp::poly_from_roots_zinv(zeros);
}

std::vector<double> Ntf::denominator() const {
  return dsp::poly_from_roots_zinv(poles);
}

std::complex<double> Ntf::response_at(double f) const {
  const double w = 2.0 * kPi * f;
  const std::complex<double> zinv(std::cos(w), -std::sin(w));
  std::complex<double> num(1.0, 0.0), den(1.0, 0.0);
  for (const auto& z : zeros) num *= (1.0 - z * zinv);
  for (const auto& p : poles) den *= (1.0 - p * zinv);
  return num / den;
}

double Ntf::magnitude_at(double f) const { return std::abs(response_at(f)); }

double Ntf::infinity_norm() const {
  // Coarse sample, then local golden-section refinement around the peak.
  const std::size_t n = 8192;
  double best = 0.0, best_f = 0.0;
  for (std::size_t k = 0; k <= n; ++k) {
    const double f = 0.5 * static_cast<double>(k) / static_cast<double>(n);
    const double m = magnitude_at(f);
    if (m > best) {
      best = m;
      best_f = f;
    }
  }
  double a = std::max(0.0, best_f - 0.5 / n);
  double b = std::min(0.5, best_f + 0.5 / n);
  const double gr = (std::sqrt(5.0) - 1.0) / 2.0;
  double c = b - gr * (b - a), d = a + gr * (b - a);
  for (int it = 0; it < 60; ++it) {
    if (magnitude_at(c) > magnitude_at(d)) {
      b = d;
    } else {
      a = c;
    }
    c = b - gr * (b - a);
    d = a + gr * (b - a);
  }
  return std::max(best, magnitude_at(0.5 * (a + b)));
}

double Ntf::inband_noise_power_gain(double osr, std::size_t grid) const {
  const double fb = 0.5 / osr;
  // Trapezoidal integral of |NTF|^2 over [0, fb], normalized by Nyquist
  // band 0.5 (white quantization noise density assumption).
  double acc = 0.0;
  for (std::size_t k = 0; k <= grid; ++k) {
    const double f = fb * static_cast<double>(k) / static_cast<double>(grid);
    const double m = magnitude_at(f);
    const double w = (k == 0 || k == grid) ? 0.5 : 1.0;
    acc += w * m * m;
  }
  acc *= fb / static_cast<double>(grid);
  return acc / 0.5;
}

Ntf synthesize_ntf(int order, double osr, double obg, bool optimize_zeros) {
  DSADC_TRACE_SPAN("synthesize_ntf", "design");
  if (order < 1 || order > 8) {
    throw std::invalid_argument("synthesize_ntf: order must be in [1, 8]");
  }
  if (obg <= 1.0) {
    throw std::invalid_argument("synthesize_ntf: OBG must exceed 1");
  }
  Ntf ntf;
  // --- Zeros: unit circle, at Legendre-root positions scaled to the band.
  const double band_edge_w = kPi / osr;  // band edge in rad/sample
  ntf.zeros.reserve(order);
  if (optimize_zeros) {
    for (double x : legendre_roots(order)) {
      const double w = x * band_edge_w;
      ntf.zeros.emplace_back(std::cos(w), std::sin(w));
    }
  } else {
    for (int i = 0; i < order; ++i) ntf.zeros.emplace_back(1.0, 0.0);
  }
  // --- Poles: discrete Butterworth high-pass via bilinear transform,
  // cutoff tuned by bisection on the analog cutoff frequency so that
  // ||NTF||_inf == obg. Higher cutoff -> poles further from z = 1 ->
  // flatter denominator near Nyquist -> larger out-of-band gain.
  const auto poles_for = [order](double wc) {
    std::vector<std::complex<double>> poles;
    poles.reserve(order);
    for (int k = 0; k < order; ++k) {
      // Analog low-pass Butterworth poles on the left half plane.
      const double theta = kPi * (2.0 * k + 1.0) / (2.0 * order) + kPi / 2.0;
      const std::complex<double> s_lp(std::cos(theta), std::sin(theta));
      // LP -> HP: s_hp = wc / s_lp.
      const std::complex<double> s = wc / s_lp;
      // Bilinear transform with T = 2 (prewarp-free; wc is a search knob).
      const std::complex<double> z = (1.0 + s) / (1.0 - s);
      poles.push_back(z);
    }
    return poles;
  };

  const auto gain_at = [&](double wc) {
    Ntf t = ntf;
    t.poles = poles_for(wc);
    return t.infinity_norm();
  };
  // Hinf(wc) is U-shaped: for tiny wc the pole cluster at z ~ 1 is not
  // cancelled by the spread zeros and the in-band gain explodes; past the
  // minimum, Hinf grows monotonically with wc (poles retreat toward the
  // origin). Locate the minimum by coarse log-scan, then bisect on the
  // increasing branch.
  double wc_min = 0.1;
  double g_min = gain_at(wc_min);
  for (double wc = 0.01; wc < 0.95; wc *= 1.25) {
    const double g = gain_at(wc);
    if (g < g_min) {
      g_min = g;
      wc_min = wc;
    }
  }
  if (g_min >= obg) {
    throw std::runtime_error(
        "synthesize_ntf: requested OBG below the minimum achievable for "
        "this order/OSR");
  }
  double lo = wc_min, hi = 0.999;
  if (gain_at(hi) < obg) {
    throw std::runtime_error("synthesize_ntf: requested OBG too large");
  }
  for (int it = 0; it < 80; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (gain_at(mid) < obg) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  ntf.poles = poles_for(0.5 * (lo + hi));
  return ntf;
}

double predict_sqnr_db(const Ntf& ntf, double osr, int quantizer_bits,
                       double amp) {
  // Mid-tread quantizer with 2^bits - 1 levels: step = 2 / (2^bits - 2).
  const double delta = 2.0 / (std::pow(2.0, quantizer_bits) - 2.0);
  const double noise_total = delta * delta / 12.0;
  const double inband = noise_total * ntf.inband_noise_power_gain(osr);
  const double psig = amp * amp / 2.0;
  return 10.0 * std::log10(psig / inband);
}

}  // namespace dsadc::mod
