// Canonical Signed Digit (CSD) coefficient encoding.
//
// CSD represents a binary number with digits in {-1, 0, +1} such that no
// two adjacent digits are nonzero; it is the minimal-nonzero-digit signed
// representation. Each nonzero digit of a filter coefficient costs one
// adder/subtractor in the shift-add multiplier network, so total nonzero
// count is the hardware cost metric the paper minimizes (Section V-VI).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dsadc::fx {

/// One signed digit: value * 2^position (position may be negative for
/// fractional weights).
struct CsdDigit {
  int sign = 0;      ///< +1 or -1
  int position = 0;  ///< power of two
};

/// A CSD-encoded number.
struct Csd {
  std::vector<CsdDigit> digits;  ///< ordered most-significant first

  double to_double() const;
  std::size_t nonzero_count() const { return digits.size(); }
  /// Adders needed to multiply by this constant (nonzero digits - 1; a
  /// single-digit constant is just a shift). Zero costs no hardware.
  std::size_t adder_cost() const;
  /// Human-readable form, e.g. "+2^-1 -2^-4 +2^-7".
  std::string to_string() const;
};

/// Encode integer `n` into CSD.
Csd csd_encode_int(std::int64_t n);

/// Encode a real coefficient with `frac_bits` fractional bits: the value is
/// first rounded to the nearest multiple of 2^-frac_bits, then CSD-recoded.
Csd csd_encode(double value, int frac_bits);

/// Encode a real coefficient using at most `max_digits` nonzero digits
/// (greedy best-approximation, equivalent to the Delta-Sigma toolbox
/// `bquantize`). Positions are confined to >= -frac_bits.
Csd csd_encode_limited(double value, int frac_bits, std::size_t max_digits);

/// Round-trip check helper: max |csd(v) - v| over a coefficient vector.
double csd_quantization_error(std::span<const double> coeffs, int frac_bits);

/// Encode a whole tap vector; convenience for filter stages.
std::vector<Csd> csd_encode_taps(std::span<const double> taps, int frac_bits);

/// Total adder cost of a CSD-encoded tap vector (the number the paper
/// quotes as "124 adders" for the halfband filter).
std::size_t total_adder_cost(std::span<const Csd> taps);

/// Verify the canonical property: no two adjacent nonzero digits.
bool is_canonical(const Csd& c);

}  // namespace dsadc::fx
