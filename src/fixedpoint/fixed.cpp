#include "src/fixedpoint/fixed.h"

#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "src/obs/store/tracker.h"

namespace dsadc::fx {
namespace {

void check_format(const Format& fmt) {
  if (fmt.width < 1 || fmt.width > 62) {
    throw std::invalid_argument("Format: width must be in [1, 62]");
  }
}

}  // namespace

const EventCounters& event_counters(const std::string& site) {
  // Structs are heap-allocated once per site and never freed, so the
  // references cached in call-site statics stay valid through teardown.
  static std::mutex* mu = new std::mutex();
  static auto* sites = new std::map<std::string, std::unique_ptr<EventCounters>>();
  std::lock_guard<std::mutex> lock(*mu);
  auto& slot = (*sites)[site];
  if (!slot) {
    auto& reg = obs::Registry::instance();
    slot = std::make_unique<EventCounters>(
        EventCounters{&reg.counter("fx.saturate." + site),
                      &reg.counter("fx.wrap." + site),
                      &reg.counter("fx.round." + site),
                      obs::store::intern("fx.saturate." + site),
                      obs::store::intern("fx.wrap." + site),
                      obs::store::intern("fx.round." + site)});
  }
  return *slot;
}

double Format::lsb() const { return std::ldexp(1.0, -frac); }

std::string Format::to_string() const {
  std::ostringstream os;
  os << "Q" << (width - frac - 1) << "." << frac << " (" << width << "b)";
  return os.str();
}

std::int64_t wrap_to(std::int64_t raw, const Format& fmt) {
  check_format(fmt);
  const std::uint64_t mask = (fmt.width >= 64)
                                 ? ~std::uint64_t{0}
                                 : ((std::uint64_t{1} << fmt.width) - 1);
  std::uint64_t u = static_cast<std::uint64_t>(raw) & mask;
  // Sign-extend.
  const std::uint64_t sign_bit = std::uint64_t{1} << (fmt.width - 1);
  if (u & sign_bit) u |= ~mask;
  return static_cast<std::int64_t>(u);
}

std::int64_t saturate_to(std::int64_t raw, const Format& fmt) {
  check_format(fmt);
  if (raw > fmt.raw_max()) return fmt.raw_max();
  if (raw < fmt.raw_min()) return fmt.raw_min();
  return raw;
}

std::int64_t requantize(std::int64_t raw, int src_frac, const Format& fmt,
                        Rounding rounding, Overflow overflow,
                        const EventCounters* site) {
  check_format(fmt);
  const bool count = site != nullptr && obs::enabled();
  std::int64_t v = raw;
  const int shift = src_frac - fmt.frac;
  if (shift > 0) {
    if (count) {
      const std::uint64_t dropped =
          shift >= 63 ? static_cast<std::uint64_t>(v != 0)
                      : static_cast<std::uint64_t>(v) &
                            ((std::uint64_t{1} << shift) - 1);
      if (dropped != 0) {
        site->round->add();
        obs::store::note_fx(site->round_id,
                            static_cast<std::int64_t>(dropped));
      }
    }
    if (shift >= 63) {
      v = 0;
    } else if (rounding == Rounding::kRoundNearest) {
      const std::int64_t half = std::int64_t{1} << (shift - 1);
      v = (v + half) >> shift;
    } else {
      v >>= shift;  // arithmetic shift: truncation toward -inf
    }
  } else if (shift < 0) {
    if (-shift >= 63) {
      throw std::invalid_argument("requantize: shift too large");
    }
    v <<= -shift;
  }
  const std::int64_t r =
      overflow == Overflow::kWrap ? wrap_to(v, fmt) : saturate_to(v, fmt);
  if (count && r != v) {
    (overflow == Overflow::kWrap ? site->wrap : site->saturate)->add();
    obs::store::note_fx(
        overflow == Overflow::kWrap ? site->wrap_id : site->saturate_id, v);
  }
  return r;
}

std::int64_t from_double(double v, const Format& fmt, Overflow overflow) {
  check_format(fmt);
  const double scaled = v * std::ldexp(1.0, fmt.frac);
  const double rounded = std::nearbyint(scaled);
  if (rounded > 9.1e18 || rounded < -9.1e18) {
    return overflow == Overflow::kWrap ? 0 : (rounded > 0 ? fmt.raw_max() : fmt.raw_min());
  }
  const auto raw = static_cast<std::int64_t>(rounded);
  return overflow == Overflow::kWrap ? wrap_to(raw, fmt) : saturate_to(raw, fmt);
}

double to_double(std::int64_t raw, const Format& fmt) {
  return static_cast<double>(raw) * std::ldexp(1.0, -fmt.frac);
}

std::vector<double> quantize_vector(std::span<const double> v,
                                    const Format& fmt) {
  std::vector<double> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = to_double(from_double(v[i], fmt), fmt);
  }
  return out;
}

Format add_format(const Format& a, const Format& b) {
  const int frac = std::max(a.frac, b.frac);
  const int ints = std::max(a.integer_bits(), b.integer_bits()) + 1;
  return Format{ints + frac, frac};
}

Value operator+(const Value& a, const Value& b) {
  const Format fmt = add_format(a.fmt_, b.fmt_);
  const std::int64_t ar = a.raw_ << (fmt.frac - a.fmt_.frac);
  const std::int64_t br = b.raw_ << (fmt.frac - b.fmt_.frac);
  return Value(ar + br, fmt);
}

Value operator-(const Value& a, const Value& b) {
  const Format fmt = add_format(a.fmt_, b.fmt_);
  const std::int64_t ar = a.raw_ << (fmt.frac - a.fmt_.frac);
  const std::int64_t br = b.raw_ << (fmt.frac - b.fmt_.frac);
  return Value(ar - br, fmt);
}

Value operator*(const Value& a, const Value& b) {
  const Format fmt{a.fmt_.width + b.fmt_.width, a.fmt_.frac + b.fmt_.frac};
  if (fmt.width > 62) {
    throw std::invalid_argument("Value::operator*: product exceeds 62 bits");
  }
  return Value(a.raw_ * b.raw_, fmt);
}

Value Value::asr(int n) const { return Value(raw_ >> n, fmt_); }

Value Value::cast(const Format& fmt, Rounding r, Overflow o) const {
  return Value(requantize(raw_, fmt_.frac, fmt, r, o), fmt);
}

}  // namespace dsadc::fx
