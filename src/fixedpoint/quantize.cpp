#include "src/fixedpoint/quantize.h"

#include <cmath>

#include "src/dsp/freqz.h"

namespace dsadc::fx {

std::vector<double> quantize_taps(std::span<const double> taps, int frac_bits) {
  std::vector<double> out(taps.size());
  const double scale = std::ldexp(1.0, frac_bits);
  for (std::size_t i = 0; i < taps.size(); ++i) {
    out[i] = std::nearbyint(taps[i] * scale) / scale;
  }
  return out;
}

WordLengthResult min_coefficient_bits(std::span<const double> taps,
                                      double fstop, double target_atten_db,
                                      int min_bits, int max_bits) {
  WordLengthResult best;
  for (int bits = min_bits; bits <= max_bits; ++bits) {
    std::vector<double> q = quantize_taps(taps, bits);
    const double atten = dsp::min_attenuation_db(q, fstop, 0.5);
    best.frac_bits = bits;
    best.achieved_atten_db = atten;
    best.taps = std::move(q);
    if (atten >= target_atten_db) {
      best.met = true;
      return best;
    }
  }
  best.met = false;
  return best;
}

}  // namespace dsadc::fx
