#include "src/fixedpoint/csd_optimize.h"

#include <cmath>
#include <complex>
#include <numbers>
#include <stdexcept>

#include "src/obs/trace.h"

namespace dsadc::fx {
namespace {

constexpr double kPi = std::numbers::pi;

struct DigitRef {
  std::size_t group;
  std::size_t digit;
};

bool taps_symmetric(std::span<const double> taps) {
  for (std::size_t i = 0; i < taps.size() / 2; ++i) {
    if (std::abs(taps[i] - taps[taps.size() - 1 - i]) > 1e-12) return false;
  }
  return true;
}

}  // namespace

OptimizedCsdTaps optimize_csd_taps(std::span<const double> taps, double fstop,
                                   double target_atten_db, int frac_bits,
                                   std::size_t grid) {
  DSADC_TRACE_SPAN("optimize_csd_taps", "design");
  if (taps.empty()) throw std::invalid_argument("optimize_csd_taps: no taps");
  if (!(fstop > 0.0 && fstop < 0.5)) {
    throw std::invalid_argument("optimize_csd_taps: fstop out of range");
  }
  OptimizedCsdTaps out;
  out.taps.reserve(taps.size());
  for (double t : taps) out.taps.push_back(csd_encode(t, frac_bits));

  // Symmetric (linear-phase) inputs are optimized pairwise so symmetry -
  // and with it the exact linear phase - survives every removal.
  const bool symmetric = taps_symmetric(taps);
  std::vector<std::vector<std::size_t>> groups;
  if (symmetric) {
    for (std::size_t i = 0; i < taps.size() / 2; ++i) {
      groups.push_back({i, taps.size() - 1 - i});
    }
    if (taps.size() % 2 == 1) groups.push_back({taps.size() / 2});
  } else {
    for (std::size_t i = 0; i < taps.size(); ++i) groups.push_back({i});
  }

  // Stopband response on a dense grid, maintained incrementally.
  std::vector<std::complex<double>> h(grid, {0.0, 0.0});
  std::vector<std::vector<std::complex<double>>> basis;  // per tap
  basis.resize(taps.size());
  for (std::size_t k = 0; k < taps.size(); ++k) {
    basis[k].resize(grid);
    for (std::size_t gi = 0; gi < grid; ++gi) {
      const double f =
          fstop + (0.5 - fstop) * static_cast<double>(gi) / static_cast<double>(grid - 1);
      const double w = 2.0 * kPi * f * static_cast<double>(k);
      basis[k][gi] = {std::cos(w), -std::sin(w)};
    }
  }
  // Group basis: sum of member bases (a digit removal hits all members).
  std::vector<std::vector<std::complex<double>>> gbasis(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    gbasis[g].assign(grid, {0.0, 0.0});
    for (std::size_t m : groups[g]) {
      for (std::size_t gi = 0; gi < grid; ++gi) gbasis[g][gi] += basis[m][gi];
    }
  }
  double dc = 0.0;
  for (std::size_t k = 0; k < taps.size(); ++k) {
    const double v = out.taps[k].to_double();
    dc += v;
    for (std::size_t gi = 0; gi < grid; ++gi) h[gi] += v * basis[k][gi];
  }
  if (std::abs(dc) < 1e-12) {
    throw std::invalid_argument("optimize_csd_taps: zero DC gain");
  }
  const double limit =
      std::abs(dc) * std::pow(10.0, -target_atten_db / 20.0);

  const auto peak_after_removal = [&](std::size_t group, std::size_t digit) {
    const std::size_t rep = groups[group][0];
    const auto& d = out.taps[rep].digits[digit];
    const double delta = -static_cast<double>(d.sign) * std::ldexp(1.0, d.position);
    double peak = 0.0;
    for (std::size_t gi = 0; gi < grid; ++gi) {
      peak = std::max(peak, std::abs(h[gi] + delta * gbasis[group][gi]));
      if (peak >= limit) break;  // early out: this removal is too costly
    }
    return peak;
  };

  // Greedy loop: drop the (group) digit with the lowest resulting peak.
  for (;;) {
    double best_peak = limit;
    DigitRef best{0, 0};
    bool found = false;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      const std::size_t rep = groups[g][0];
      for (std::size_t d = 0; d < out.taps[rep].digits.size(); ++d) {
        const double peak = peak_after_removal(g, d);
        if (peak < best_peak) {
          best_peak = peak;
          best = {g, d};
          found = true;
        }
      }
    }
    if (!found) break;
    // Apply the removal to every member of the group.
    const std::size_t rep = groups[best.group][0];
    const auto dd = out.taps[rep].digits[best.digit];
    const double delta = -static_cast<double>(dd.sign) * std::ldexp(1.0, dd.position);
    for (std::size_t gi = 0; gi < grid; ++gi) {
      h[gi] += delta * gbasis[best.group][gi];
    }
    for (std::size_t m : groups[best.group]) {
      out.taps[m].digits.erase(out.taps[m].digits.begin() +
                               static_cast<std::ptrdiff_t>(best.digit));
    }
  }

  // Final metrics.
  out.values.resize(taps.size());
  double dc2 = 0.0;
  for (std::size_t k = 0; k < taps.size(); ++k) {
    out.values[k] = out.taps[k].to_double();
    dc2 += out.values[k];
    out.digits += out.taps[k].nonzero_count();
    out.adders += out.taps[k].adder_cost();
  }
  double peak = 0.0;
  for (std::size_t gi = 0; gi < grid; ++gi) peak = std::max(peak, std::abs(h[gi]));
  out.stopband_atten_db =
      20.0 * std::log10(std::abs(dc2) / std::max(peak, 1e-300));
  return out;
}

}  // namespace dsadc::fx
