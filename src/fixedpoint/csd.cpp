#include "src/fixedpoint/csd.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace dsadc::fx {

double Csd::to_double() const {
  double acc = 0.0;
  for (const auto& d : digits) {
    acc += static_cast<double>(d.sign) * std::ldexp(1.0, d.position);
  }
  return acc;
}

std::size_t Csd::adder_cost() const {
  return digits.size() <= 1 ? 0 : digits.size() - 1;
}

std::string Csd::to_string() const {
  if (digits.empty()) return "0";
  std::ostringstream os;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i) os << ' ';
    os << (digits[i].sign > 0 ? '+' : '-') << "2^" << digits[i].position;
  }
  return os.str();
}

Csd csd_encode_int(std::int64_t n) {
  Csd out;
  int pos = 0;
  while (n != 0) {
    if (n & 1) {
      // d = 2 - (n mod 4): +1 for ...01, -1 for ...11 (so the carry creates
      // a run-free representation).
      const int d = 2 - static_cast<int>(((n % 4) + 4) % 4);
      out.digits.push_back({d, pos});
      n -= d;
    }
    n >>= 1;
    ++pos;
  }
  std::reverse(out.digits.begin(), out.digits.end());
  return out;
}

Csd csd_encode(double value, int frac_bits) {
  if (frac_bits < 0 || frac_bits > 60) {
    throw std::invalid_argument("csd_encode: frac_bits out of range");
  }
  const double scaled = std::nearbyint(value * std::ldexp(1.0, frac_bits));
  if (std::abs(scaled) > 4.0e18) {
    throw std::invalid_argument("csd_encode: value too large");
  }
  Csd c = csd_encode_int(static_cast<std::int64_t>(scaled));
  for (auto& d : c.digits) d.position -= frac_bits;
  return c;
}

Csd csd_encode_limited(double value, int frac_bits, std::size_t max_digits) {
  Csd out;
  double residual = value;
  const double lsb = std::ldexp(1.0, -frac_bits);
  for (std::size_t k = 0; k < max_digits; ++k) {
    if (std::abs(residual) < lsb / 2.0) break;
    // Greedy: pick the power of two closest to the residual.
    const int pos = static_cast<int>(std::floor(std::log2(std::abs(residual)) + 0.5));
    if (pos < -frac_bits) break;
    const int sign = residual >= 0.0 ? 1 : -1;
    out.digits.push_back({sign, pos});
    residual -= static_cast<double>(sign) * std::ldexp(1.0, pos);
  }
  std::sort(out.digits.begin(), out.digits.end(),
            [](const CsdDigit& a, const CsdDigit& b) { return a.position > b.position; });
  return out;
}

double csd_quantization_error(std::span<const double> coeffs, int frac_bits) {
  double worst = 0.0;
  for (double c : coeffs) {
    worst = std::max(worst, std::abs(csd_encode(c, frac_bits).to_double() - c));
  }
  return worst;
}

std::vector<Csd> csd_encode_taps(std::span<const double> taps, int frac_bits) {
  std::vector<Csd> out;
  out.reserve(taps.size());
  for (double t : taps) out.push_back(csd_encode(t, frac_bits));
  return out;
}

std::size_t total_adder_cost(std::span<const Csd> taps) {
  std::size_t total = 0;
  for (const auto& c : taps) total += c.adder_cost();
  return total;
}

bool is_canonical(const Csd& c) {
  for (std::size_t i = 1; i < c.digits.size(); ++i) {
    if (std::abs(c.digits[i - 1].position - c.digits[i].position) < 2) {
      return false;
    }
  }
  return true;
}

}  // namespace dsadc::fx
