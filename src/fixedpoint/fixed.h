// Two's-complement fixed-point arithmetic.
//
// Every datapath in the decimation filter (CIC accumulators, HBF adder
// network, scaler, equalizer) is modeled bit-true with these types. Values
// are carried as raw int64 integers tagged with a format; the CIC stages
// rely on the *wraparound* behaviour of two's complement (Hogenauer's
// structure is only correct with modular arithmetic), while FIR stages use
// saturation to model the paper's overflow-protected adders.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace dsadc::fx {

enum class Overflow : std::uint8_t {
  kWrap,      ///< modular two's-complement wraparound (CIC datapath)
  kSaturate,  ///< clamp to representable range (FIR datapaths)
};

enum class Rounding : std::uint8_t {
  kTruncate,      ///< drop LSBs (floor in two's complement)
  kRoundNearest,  ///< round half up toward +inf
};

/// A signed fixed-point format: `width` total bits including the sign bit,
/// `frac` of them fractional. Range is [-2^(width-1), 2^(width-1)-1] in raw
/// integer units; real value = raw * 2^-frac.
struct Format {
  int width = 16;
  int frac = 0;

  int integer_bits() const { return width - frac; }  // includes sign bit
  std::int64_t raw_min() const { return -(std::int64_t{1} << (width - 1)); }
  std::int64_t raw_max() const { return (std::int64_t{1} << (width - 1)) - 1; }
  double lsb() const;
  std::string to_string() const;  // e.g. "Q3.12 (16b)"

  bool operator==(const Format&) const = default;
};

/// Wrap a raw integer into `fmt`'s range (two's-complement modular).
std::int64_t wrap_to(std::int64_t raw, const Format& fmt);

/// Saturate a raw integer into `fmt`'s range.
std::int64_t saturate_to(std::int64_t raw, const Format& fmt);

/// Per-call-site fixed-point event counters, registered in the obs
/// metrics registry as fx.saturate.<site> / fx.wrap.<site> /
/// fx.round.<site>. Datapath call sites cache the lookup in a
/// function-local static and pass the struct into requantize, which
/// counts:
///   saturate -- the overflow policy clamped the value,
///   wrap     -- modular reduction changed the value (kWrap only),
///   round    -- dropped LSBs were non-zero (the result is inexact).
/// Counting is skipped entirely while obs::enabled() is false.
struct EventCounters {
  obs::Counter* saturate = nullptr;
  obs::Counter* wrap = nullptr;
  obs::Counter* round = nullptr;
  /// Interned trace-store name ids for the same three events, so the hot
  /// path can emit per-transaction store events without string traffic
  /// (obs/store/tracker.h).
  std::uint32_t saturate_id = 0;
  std::uint32_t wrap_id = 0;
  std::uint32_t round_id = 0;
};

/// Find-or-register the counters for a call-site tag (e.g. "hbf_out").
/// The reference stays valid for the process lifetime.
const EventCounters& event_counters(const std::string& site);

/// Reduce `raw` (interpreted with `src_frac` fractional bits) to `fmt`,
/// applying rounding on dropped LSBs and the overflow policy on the result.
/// When `site` is non-null, saturation/wrap/rounding events are counted
/// against it (see EventCounters).
std::int64_t requantize(std::int64_t raw, int src_frac, const Format& fmt,
                        Rounding rounding, Overflow overflow,
                        const EventCounters* site = nullptr);

/// Convert a real number into raw units of `fmt` (round-to-nearest, then
/// overflow policy).
std::int64_t from_double(double v, const Format& fmt,
                         Overflow overflow = Overflow::kSaturate);

/// Interpret raw units of `fmt` as a real number.
double to_double(std::int64_t raw, const Format& fmt);

/// Quantize a real vector to `fmt` and back to double (coefficient
/// quantization used by the design flow before CSD encoding).
std::vector<double> quantize_vector(std::span<const double> v,
                                    const Format& fmt);

/// A value bundled with its format; convenience for tests and examples.
class Value {
 public:
  Value() = default;
  Value(std::int64_t raw, Format fmt) : raw_(wrap_to(raw, fmt)), fmt_(fmt) {}
  static Value from_real(double v, Format fmt) {
    return Value(from_double(v, fmt), fmt);
  }

  std::int64_t raw() const { return raw_; }
  const Format& format() const { return fmt_; }
  double real() const { return to_double(raw_, fmt_); }

  /// Add with wraparound in the wider of the two formats.
  friend Value operator+(const Value& a, const Value& b);
  friend Value operator-(const Value& a, const Value& b);
  /// Full-precision multiply: result width = wa + wb, frac = fa + fb.
  friend Value operator*(const Value& a, const Value& b);

  /// Arithmetic shift corresponding to multiply by 2^-n (format preserved,
  /// truncating).
  Value asr(int n) const;

  Value cast(const Format& fmt, Rounding r = Rounding::kTruncate,
             Overflow o = Overflow::kWrap) const;

 private:
  std::int64_t raw_ = 0;
  Format fmt_{};
};

/// Align two formats for addition: result has max integer bits + 1 carry
/// bit and max fractional bits.
Format add_format(const Format& a, const Format& b);

}  // namespace dsadc::fx
