// Coefficient word-length selection.
//
// The paper picks 24-bit halfband coefficients so aliased quantization
// noise sits 60 dB below the signal noise floor (Section V). This module
// automates that choice: search the smallest coefficient word length whose
// quantized filter still meets a stopband-attenuation target.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "src/fixedpoint/fixed.h"

namespace dsadc::fx {

/// Result of a word-length search.
struct WordLengthResult {
  int frac_bits = 0;               ///< chosen fractional bits
  double achieved_atten_db = 0.0;  ///< stopband attenuation at that choice
  std::vector<double> taps;        ///< quantized taps
  bool met = false;                ///< whether the target was achievable
};

/// Find the smallest `frac_bits` in [min_bits, max_bits] such that the
/// quantized taps achieve at least `target_atten_db` of stopband
/// attenuation over [fstop, 0.5] (cycles/sample).
WordLengthResult min_coefficient_bits(std::span<const double> taps,
                                      double fstop, double target_atten_db,
                                      int min_bits = 8, int max_bits = 32);

/// Quantize taps to `frac_bits` fractional bits (round-to-nearest).
std::vector<double> quantize_taps(std::span<const double> taps, int frac_bits);

}  // namespace dsadc::fx
