// Minimum-adder CSD allocation for FIR coefficient sets.
//
// The paper's halfband search trades CSD digits against stopband
// attenuation by hand-tuned budgets; this optimizer automates the same
// trade for any linear-phase FIR: start from the full-precision CSD
// encoding and greedily drop the digit whose removal hurts the stopband
// least, until the attenuation target would be violated. Response updates
// are incremental, so the search is fast even for long filters.
#pragma once

#include <span>
#include <vector>

#include "src/fixedpoint/csd.h"

namespace dsadc::fx {

struct OptimizedCsdTaps {
  std::vector<Csd> taps;
  std::vector<double> values;     ///< realized coefficient values
  std::size_t adders = 0;         ///< total CSD shift-add adders
  std::size_t digits = 0;         ///< total nonzero digits
  double stopband_atten_db = 0.0; ///< achieved over [fstop, 0.5]
};

/// Greedy digit-dropping search: keep the attenuation over [fstop, 0.5]
/// (relative to the DC gain) at or above `target_atten_db` while removing
/// as many CSD digits as possible. `frac_bits` sets the starting
/// precision. `grid` controls the stopband evaluation density.
OptimizedCsdTaps optimize_csd_taps(std::span<const double> taps, double fstop,
                                   double target_atten_db, int frac_bits = 20,
                                   std::size_t grid = 1024);

}  // namespace dsadc::fx
