#include "src/core/flow.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "src/core/response.h"
#include "src/dsp/freqz.h"
#include "src/dsp/spectrum.h"
#include "src/filterdesign/cic.h"
#include "src/filterdesign/equalizer.h"
#include "src/obs/trace.h"
#include "src/rtl/verilog.h"

namespace dsadc::core {
namespace {

bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

FlowResult DesignFlow::design(const mod::ModulatorSpec& mspec,
                              const mod::DecimatorSpec& dspec,
                              const FlowOptions& options) {
  DSADC_TRACE_SPAN("design_flow", "flow");
  FlowResult r;
  r.modulator_spec = mspec;
  r.decimator_spec = dspec;
  r.options = options;

  // --- Step 1: modulator model.
  r.ntf = mod::synthesize_ntf(mspec.order, mspec.osr, mspec.obg, true);
  {
    DSADC_TRACE_SPAN("realize_and_msa", "design");
    r.ciff = mod::realize_ciff(r.ntf);
    r.msa = options.measure_msa
                ? mod::find_msa(r.ciff, mspec.quantizer_bits, mspec.osr)
                : mspec.msa;
  }
  r.predicted_sqnr_db =
      mod::predict_sqnr_db(r.ntf, mspec.osr, mspec.quantizer_bits, r.msa);

  // --- Step 2: decimation structure. OSR = 2^n: (n-1) Sinc /2 stages, one
  // halfband /2 stage.
  const auto osr = static_cast<std::size_t>(mspec.osr);
  if (!is_pow2(osr) || osr < 4) {
    throw std::invalid_argument(
        "DesignFlow: OSR must be a power of two >= 4 for the /2-stage "
        "architecture");
  }
  std::size_t n_cic = 0;
  for (std::size_t v = osr / 2; v > 1; v /= 2) ++n_cic;

  std::vector<int> orders = options.cic_orders;
  if (orders.empty()) {
    // Paper heuristic: L-1 for the early stages (later stages re-filter
    // their alias bands), L+1 for the last Sinc stage, which faces the
    // full L-th-order shaped noise at the lowest rate.
    orders.assign(n_cic, mspec.order - 1);
    orders.back() = mspec.order + 1;
  }
  if (orders.size() != n_cic) {
    throw std::invalid_argument("DesignFlow: cic_orders size mismatch");
  }

  decim::ChainConfig cfg;
  cfg.input_rate_hz = mspec.sample_rate_hz;
  const int code_max = (1 << (mspec.quantizer_bits - 1)) - 1;
  cfg.input_format = fx::Format{mspec.quantizer_bits, 0};
  int bits = mspec.quantizer_bits;
  int gain_log2 = 0;
  for (std::size_t i = 0; i < n_cic; ++i) {
    design::CicSpec s{orders[i], 2, bits};
    cfg.cic_stages.push_back(s);
    bits = s.register_width();
    gain_log2 += s.order;
  }
  // HBF input: relabel the CIC gain as fractional weight (lossless).
  cfg.hbf_in_format = fx::Format{bits, gain_log2};
  cfg.hbf_out_format = cfg.hbf_in_format;
  cfg.hbf_coeff_frac_bits = options.hbf_coeff_frac_bits;

  // --- Step 3: halfband design. Its stopband edge must sit at the spec's
  // stopband edge referred to the HBF rate (2x output rate).
  const double hbf_rate = 2.0 * dspec.output_rate_hz;
  const double fstop_hb = dspec.stopband_edge_hz / hbf_rate;
  const double fp = 0.5 - fstop_hb;
  if (!(fp > 0.0 && fp < 0.25)) {
    throw std::invalid_argument("DesignFlow: stopband edge incompatible with "
                                "a halfband final stage");
  }
  cfg.hbf = (options.hbf_n1 != 0 && options.hbf_n2 != 0)
                ? design::design_saramaki_hbf(options.hbf_n1, options.hbf_n2,
                                              fp, options.hbf_coeff_frac_bits)
                : design::design_saramaki_hbf_auto(
                      fp, options.hbf_atten_target_db,
                      options.hbf_coeff_frac_bits);

  // --- Scaler: map (MSA * code_max + noise margin) to just under +-1.
  cfg.scale = 0.98 / (r.msa * static_cast<double>(code_max) + 0.5);

  // --- Equalizer: invert the composite pre-equalizer droop.
  const auto cic_stages = cfg.cic_stages;
  const auto hbf_taps = cfg.hbf.taps;
  const double total_ratio = static_cast<double>(osr);
  const auto droop = [cic_stages, hbf_taps, total_ratio](double f) {
    double mag = 1.0;
    double ratio = total_ratio;
    for (const auto& s : cic_stages) {
      mag *= design::cic_magnitude(s, f / ratio);
      ratio /= s.decimation;
    }
    mag *= std::abs(dsp::fir_response_at(hbf_taps, f / ratio));
    return mag;
  };
  // The flow grows the equalizer if the requested length cannot meet the
  // ripple spec (full-droop compensation up to the output Nyquist edge is
  // a steep target: the HBF alone is -6 dB at exactly fout/2).
  DSADC_TRACE_SPAN("equalizer_design", "design");
  std::size_t eq_taps = options.equalizer_taps;
  for (;;) {
    const design::EqualizerResult eq =
        design::design_droop_equalizer(eq_taps, droop, 0.4999);
    cfg.equalizer_taps = eq.taps;
    r.chain = cfg;
    r.passband_ripple_db = composite_passband_ripple_db(
        cfg, 0.05 * dspec.passband_edge_hz, dspec.passband_edge_hz);
    r.ripple_ok = r.passband_ripple_db <= dspec.passband_ripple_db;
    if (r.ripple_ok || !options.adapt_equalizer || eq_taps >= 161) break;
    eq_taps += 16;
  }

  // --- Step 4: stopband check over the primary image band.
  r.alias_protection_db =
      composite_stopband_atten_db(cfg, dspec.stopband_edge_hz);
  r.attenuation_ok = r.alias_protection_db >= dspec.stopband_atten_db;
  return r;
}

VerificationResult DesignFlow::verify(const FlowResult& result,
                                      double tone_freq_hz,
                                      std::size_t run_length) {
  DSADC_TRACE_SPAN("flow_verify", "flow");
  VerificationResult v;
  const auto& mspec = result.modulator_spec;
  double factual = tone_freq_hz;
  const std::vector<double> u =
      mod::coherent_sine(run_length, tone_freq_hz, mspec.sample_rate_hz,
                         result.msa, &factual);
  v.tone_freq_hz = factual;
  mod::CiffModulator modulator(result.ciff, mspec.quantizer_bits);
  const mod::DsmOutput dsm = modulator.run(u);
  if (!dsm.stable) {
    throw std::runtime_error("DesignFlow::verify: modulator unstable at MSA");
  }

  const auto measure = [&](const decim::ChainConfig& cfg) {
    decim::DecimationChain chain(cfg);
    const std::vector<std::int64_t> raw = chain.process(dsm.codes);
    std::vector<double> x;
    x.reserve(raw.size());
    for (std::size_t i = 512; i < raw.size(); ++i) {
      x.push_back(fx::to_double(raw[i], cfg.output_format));
    }
    return dsp::measure_tone_snr(x, chain.output_rate_hz(),
                                 result.decimator_spec.passband_edge_hz,
                                 dsp::WindowKind::kKaiser, 8, 8, 22.0);
  };

  const dsp::SnrResult quantized = measure(result.chain);
  v.snr_db = quantized.snr_db;
  v.enob_bits = quantized.enob_bits;

  decim::ChainConfig wide = result.chain;
  wide.output_format = fx::Format{20, 18};
  wide.scaler_out_format = fx::Format{22, 19};
  v.snr_unquantized_db = measure(wide).snr_db;
  v.snr_ok = v.snr_unquantized_db >= result.decimator_spec.target_snr_db;
  return v;
}

RtlArtifacts DesignFlow::generate_rtl(const FlowResult& result) {
  DSADC_TRACE_SPAN("rtl_elaborate", "flow");
  RtlArtifacts art;
  const rtl::BuiltChain built =
      rtl::build_chain(result.chain, result.options.rtl_options);
  for (std::size_t i = 0; i < built.stages.size(); ++i) {
    art.verilog[built.stage_names[i]] =
        rtl::emit_verilog(built.stages[i].module);
  }
  art.full_chain_verilog = rtl::emit_verilog(built.full);
  art.testbench = rtl::emit_testbench(built.full);
  return art;
}

synth::PowerProfile DesignFlow::synthesize(const FlowResult& result,
                                           double tone_freq_hz,
                                           std::size_t run_length,
                                           const synth::CellLibrary& lib) {
  DSADC_TRACE_SPAN("synthesize", "flow");
  const auto& mspec = result.modulator_spec;
  const std::vector<double> u = mod::coherent_sine(
      run_length, tone_freq_hz, mspec.sample_rate_hz, result.msa, nullptr);
  mod::CiffModulator modulator(result.ciff, mspec.quantizer_bits);
  const mod::DsmOutput dsm = modulator.run(u);
  return synth::profile_chain(result.chain, dsm.codes, mspec.sample_rate_hz,
                              lib, result.options.rtl_options);
}

std::string flow_report(const FlowResult& r) {
  std::ostringstream os;
  os << "=== Decimation filter design flow report ===\n";
  os << "Modulator: order " << r.modulator_spec.order << ", OSR "
     << r.modulator_spec.osr << ", OBG " << r.modulator_spec.obg << ", fs "
     << r.modulator_spec.sample_rate_hz / 1e6 << " MHz, "
     << r.modulator_spec.quantizer_bits << "-bit quantizer\n";
  os << "  NTF Hinf: " << r.ntf.infinity_norm() << ", predicted SQNR at MSA: "
     << r.predicted_sqnr_db << " dB, MSA: " << r.msa << "\n";
  os << "Chain: ";
  for (const auto& s : r.chain.cic_stages) {
    os << "Sinc" << s.order << "(/2) -> ";
  }
  os << "HBF(n1=" << r.chain.hbf.n1 << ", n2=" << r.chain.hbf.n2
     << ", order " << r.chain.hbf.order() << ", "
     << r.chain.hbf.stopband_atten_db << " dB, " << r.chain.hbf.adder_count
     << " adders) -> scale(" << r.chain.scale << ") -> EQ("
     << r.chain.equalizer_taps.size() << " taps)\n";
  os << "Checks: passband ripple " << r.passband_ripple_db << " dB ("
     << (r.ripple_ok ? "OK" : "FAIL") << "), alias protection "
     << r.alias_protection_db << " dB ("
     << (r.attenuation_ok ? "OK" : "FAIL") << ")\n";
  return os.str();
}

}  // namespace dsadc::core
