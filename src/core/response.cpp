#include "src/core/response.h"

#include <cmath>

#include "src/dsp/freqz.h"
#include "src/filterdesign/cic.h"
#include "src/fixedpoint/quantize.h"

namespace dsadc::core {
namespace {

/// Quantized equalizer taps (as the hardware implements them).
std::vector<double> quantized_eq_taps(const decim::ChainConfig& cfg) {
  return fx::quantize_taps(cfg.equalizer_taps, cfg.equalizer_frac_bits);
}

}  // namespace

std::vector<double> composite_impulse_response(const decim::ChainConfig& cfg) {
  // CIC cascade at the input rate (normalized 1/M^K per stage).
  std::vector<double> h = design::cic_cascade_response(cfg.cic_stages);
  std::size_t rate = 1;
  for (const auto& s : cfg.cic_stages) rate *= static_cast<std::size_t>(s.decimation);
  // HBF referred to the input rate.
  h = dsp::convolve(h, dsp::upsample_taps(cfg.hbf.taps, rate));
  rate *= 2;
  // Scaler (pure gain, CSD-quantized as in hardware).
  const double s = fx::csd_encode_limited(cfg.scale, 14, 8).to_double();
  for (auto& v : h) v *= s;
  // Equalizer referred to the input rate.
  h = dsp::convolve(h, dsp::upsample_taps(quantized_eq_taps(cfg), rate));
  return h;
}

double composite_magnitude(const decim::ChainConfig& cfg, double freq_hz) {
  const double f = freq_hz / cfg.input_rate_hz;
  // cic_magnitude takes the frequency normalized to that stage's input
  // rate, which is f times the decimation accumulated before the stage.
  double mag = 1.0;
  double rate = 1.0;
  for (const auto& st : cfg.cic_stages) {
    mag *= design::cic_magnitude(st, f * rate);
    rate *= st.decimation;
  }
  mag *= std::abs(dsp::fir_response_at(cfg.hbf.taps, f * rate));
  rate *= 2.0;
  mag *= fx::csd_encode_limited(cfg.scale, 14, 8).to_double();
  mag *= std::abs(dsp::fir_response_at(quantized_eq_taps(cfg), f * rate));
  return mag;
}

double pre_equalizer_magnitude(const decim::ChainConfig& cfg, double freq_hz) {
  const double f = freq_hz / cfg.input_rate_hz;
  double mag = 1.0;
  double rate = 1.0;
  for (const auto& st : cfg.cic_stages) {
    mag *= design::cic_magnitude(st, f * rate);
    rate *= st.decimation;
  }
  mag *= std::abs(dsp::fir_response_at(cfg.hbf.taps, f * rate));
  return mag;
}

double composite_stopband_atten_db(const decim::ChainConfig& cfg,
                                   double fstop_hz, std::size_t grid) {
  decim::DecimationChain chain(cfg);
  const double fout = chain.output_rate_hz();
  const double dc = composite_magnitude(cfg, 0.0);
  const double f1 = 2.0 * fout - fstop_hz;
  double worst = 1e300;
  for (std::size_t k = 0; k <= grid; ++k) {
    const double f =
        fstop_hz + (f1 - fstop_hz) * static_cast<double>(k) / static_cast<double>(grid);
    const double att = -20.0 * std::log10(composite_magnitude(cfg, f) / dc);
    worst = std::min(worst, att);
  }
  return worst;
}

double composite_alias_protection_db(const decim::ChainConfig& cfg,
                                     double protect_hz, std::size_t grid) {
  decim::DecimationChain chain(cfg);
  const double fout = chain.output_rate_hz();
  const double dc = composite_magnitude(cfg, 0.0);
  double worst = 1e300;
  // All alias images: m * fout +- f for f in (0, protect_hz].
  const int mmax = static_cast<int>(cfg.input_rate_hz / 2.0 / fout);
  for (int mI = 1; mI <= mmax; ++mI) {
    for (std::size_t k = 0; k <= grid; ++k) {
      const double f =
          protect_hz * static_cast<double>(k) / static_cast<double>(grid);
      for (double image : {mI * fout - f, mI * fout + f}) {
        if (image <= 0.0 || image >= cfg.input_rate_hz / 2.0) continue;
        const double att =
            -20.0 * std::log10(composite_magnitude(cfg, image) / dc);
        worst = std::min(worst, att);
      }
    }
  }
  return worst;
}

double composite_passband_ripple_db(const decim::ChainConfig& cfg,
                                    double f0_hz, double f1_hz,
                                    std::size_t grid) {
  double lo = 1e300, hi = -1e300;
  for (std::size_t k = 0; k <= grid; ++k) {
    const double f =
        f0_hz + (f1_hz - f0_hz) * static_cast<double>(k) / static_cast<double>(grid);
    const double db = 20.0 * std::log10(composite_magnitude(cfg, f));
    lo = std::min(lo, db);
    hi = std::max(hi, db);
  }
  return hi - lo;
}

}  // namespace dsadc::core
