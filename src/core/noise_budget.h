// Analytical quantization-noise budget of the decimation chain.
//
// Section V justifies the 24-bit halfband coefficients by requiring the
// aliased/requantization noise to stay "60 dB below the signal noise
// floor". This module makes that reasoning executable: every rounding
// point in the chain contributes q^2/12 of noise power, shaped by the
// transfer function from that point to the output; the budget table lists
// each contribution and the predicted output SNR, which the bit-true
// simulation then confirms.
#pragma once

#include <string>
#include <vector>

#include "src/decimator/chain.h"
#include "src/modulator/spec.h"

namespace dsadc::core {

/// One rounding point's contribution.
struct NoiseContribution {
  std::string where;          ///< e.g. "HBF block requantization"
  double lsb = 0.0;           ///< quantization step at that point (output-referred)
  double rate_hz = 0.0;       ///< rate at which the rounding fires
  double power = 0.0;         ///< in-band noise power at the output (FS^2)
  double power_dbfs = 0.0;    ///< 10 log10(power)
};

struct NoiseBudget {
  std::vector<NoiseContribution> contributions;
  double modulator_inband_power = 0.0;  ///< shaped quantization noise (output-referred)
  double total_power = 0.0;             ///< all contributions + modulator
  /// Predicted output SNR for a tone at `signal_amplitude_fs` of full scale.
  double predicted_snr_db = 0.0;
  double signal_amplitude_fs = 0.0;
};

/// Build the budget for a chain configuration. `modulator_sqnr_db` is the
/// modulator's in-band SQNR at the operating amplitude (from
/// predict_sqnr_db or simulation); the final output format supplies the
/// last rounding.
NoiseBudget compute_noise_budget(const decim::ChainConfig& cfg,
                                 const mod::ModulatorSpec& mspec,
                                 double modulator_sqnr_db,
                                 double signal_amplitude_fs = 0.9);

/// Render the budget as a table.
std::string noise_budget_report(const NoiseBudget& budget);

}  // namespace dsadc::core
