#include "src/core/noise_budget.h"

#include <cmath>
#include <sstream>

namespace dsadc::core {
namespace {

double db10(double p) { return p > 0.0 ? 10.0 * std::log10(p) : -400.0; }

}  // namespace

NoiseBudget compute_noise_budget(const decim::ChainConfig& cfg,
                                 const mod::ModulatorSpec& mspec,
                                 double modulator_sqnr_db,
                                 double signal_amplitude_fs) {
  NoiseBudget b;
  b.signal_amplitude_fs = signal_amplitude_fs;
  const double bw = mspec.bandwidth_hz;
  const double fs = cfg.input_rate_hz;
  const double scale = cfg.scale;  // code units -> full scale
  const double psig = signal_amplitude_fs * signal_amplitude_fs / 2.0;

  const auto add = [&](const std::string& where, double lsb_out, double rate,
                       double count) {
    // Rounding noise q^2/12 per operation; white over the local Nyquist,
    // only the fraction folding into [0, bw] matters at the output.
    const double band_fraction = std::min(1.0, bw / (rate / 2.0));
    NoiseContribution c;
    c.where = where;
    c.lsb = lsb_out;
    c.rate_hz = rate;
    c.power = count * lsb_out * lsb_out / 12.0 * band_fraction;
    c.power_dbfs = db10(c.power);
    b.contributions.push_back(c);
  };

  // --- CIC-gain relabel into the halfband input format. Lossless when the
  // format keeps all fractional bits (shift <= 0).
  int gain_log2 = 0;
  for (const auto& s : cfg.cic_stages) {
    gain_log2 += s.order * static_cast<int>(std::log2(s.decimation));
  }
  double rate = fs;
  for (const auto& s : cfg.cic_stages) rate /= s.decimation;
  if (gain_log2 > cfg.hbf_in_format.frac) {
    add("CIC-gain relabel", std::ldexp(scale, -cfg.hbf_in_format.frac), rate,
        1.0);
  } else {
    add("CIC-gain relabel (lossless)", 0.0, rate, 0.0);
  }

  // --- Halfband internals (per output sample, at the output rate).
  const int guard = 6;
  const dsadc::fx::Format internal{cfg.hbf_in_format.width + 4 + guard,
                                   cfg.hbf_in_format.frac + guard};
  const dsadc::fx::Format prod{cfg.hbf_in_format.width + 7 + guard,
                               cfg.hbf_in_format.frac + guard + 2};
  const double n_products =
      static_cast<double>((2 * cfg.hbf.n1 - 1) * cfg.hbf.n2 + cfg.hbf.n1 + 1);
  const double n_blocks = static_cast<double>(2 * cfg.hbf.n1 - 1);
  add("HBF product truncation", std::ldexp(scale, -prod.frac), rate / 2.0,
      n_products);
  add("HBF block requantization", std::ldexp(scale, -internal.frac),
      rate / 2.0, n_blocks);
  add("HBF output rounding", std::ldexp(scale, -cfg.hbf_out_format.frac),
      rate / 2.0, 1.0);

  // --- Scaler and equalizer output roundings (already in FS units).
  add("scaler output rounding", std::ldexp(1.0, -cfg.scaler_out_format.frac),
      rate / 2.0, 1.0);
  add("final output rounding", std::ldexp(1.0, -cfg.output_format.frac),
      rate / 2.0, 1.0);

  // --- Modulator's shaped quantization noise, output-referred.
  b.modulator_inband_power = psig * std::pow(10.0, -modulator_sqnr_db / 10.0);

  b.total_power = b.modulator_inband_power;
  for (const auto& c : b.contributions) b.total_power += c.power;
  b.predicted_snr_db = db10(psig / b.total_power);
  return b;
}

std::string noise_budget_report(const NoiseBudget& b) {
  std::ostringstream os;
  os << "Quantization-noise budget (output-referred, dBFS in-band power):\n";
  char line[160];
  for (const auto& c : b.contributions) {
    std::snprintf(line, sizeof(line), "  %-32s @ %7.1f MHz : %8.1f dBFS\n",
                  c.where.c_str(), c.rate_hz / 1e6, c.power_dbfs);
    os << line;
  }
  std::snprintf(line, sizeof(line), "  %-32s %13s : %8.1f dBFS\n",
                "modulator shaped noise", "",
                10.0 * std::log10(b.modulator_inband_power));
  os << line;
  std::snprintf(line, sizeof(line),
                "  total noise %8.1f dBFS -> predicted SNR %.1f dB at "
                "%.2f FS\n",
                10.0 * std::log10(b.total_power), b.predicted_snr_db,
                b.signal_amplitude_fs);
  os << line;
  return os.str();
}

}  // namespace dsadc::core
