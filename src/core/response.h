// Composite frequency-response utilities for an assembled chain.
//
// Figures 8-11 of the paper are all views of these responses: the Sinc
// cascade, the halfband, the equalizer, and the full composite referred to
// the modulator input rate.
#pragma once

#include <vector>

#include "src/decimator/chain.h"

namespace dsadc::core {

/// Composite impulse response of the whole chain referred to the input
/// rate (stage taps upsampled by their accumulated decimation and
/// convolved), including the scaler gain. Uses the *quantized* (CSD)
/// coefficients, i.e. this is the response of Fig. 11.
std::vector<double> composite_impulse_response(const decim::ChainConfig& cfg);

/// Magnitude of the composite response at absolute frequency `freq_hz`.
double composite_magnitude(const decim::ChainConfig& cfg, double freq_hz);

/// Droop of the pre-equalizer part (Sinc cascade + HBF) referred to the
/// equalizer rate; this is the "uncompensated response" curve of Fig. 10.
double pre_equalizer_magnitude(const decim::ChainConfig& cfg, double freq_hz);

/// Minimum attenuation (dB relative to DC) over the primary stopband
/// [fstop_hz, 2*output_rate - fstop_hz]; this is the Table-I ">85 dB
/// stopband" check, covering everything that folds across the first
/// output-rate image. Deeper images sit under the Sinc notches except for
/// narrow band-edge leakage slots; use
/// composite_alias_protection_db for the strict all-images metric.
double composite_stopband_atten_db(const decim::ChainConfig& cfg,
                                   double fstop_hz,
                                   std::size_t grid = 4096);

/// Worst-case attenuation of the composite response (dB relative to DC)
/// over ALL frequencies at the input rate that alias into [0, protect_hz]
/// after decimation to the output rate. For a Sinc-based chain this is
/// limited by the band-edge leakage slots at m*fout +- protect_hz (the
/// known edge-of-band SNR tradeoff of Sinc cascades).
double composite_alias_protection_db(const decim::ChainConfig& cfg,
                                     double protect_hz,
                                     std::size_t grid = 4096);

/// Passband ripple (dB) of the composite response over [f0_hz, f1_hz].
double composite_passband_ripple_db(const decim::ChainConfig& cfg,
                                    double f0_hz, double f1_hz,
                                    std::size_t grid = 2048);

}  // namespace dsadc::core
