// The rapid design-and-synthesis flow - the paper's primary contribution.
//
// One call takes the ADC specification (Table I) through every step the
// paper performs with MATLAB + HDL Coder + Synopsys/Cadence:
//
//   1. modulator model      - NTF synthesis, CIFF realization, MSA
//   2. stage design         - Sinc orders, Saramaki HBF, scaler, equalizer
//   3. fixed-point assembly - the bit-true DecimationChain
//   4. verification         - spec checks on responses + simulated SNR
//   5. RTL generation       - hardware IR + Verilog per stage and full chain
//   6. synthesis estimate   - 45 nm cell mapping, area, activity power
//
// The flow is fully parameterized so the same code retargets other
// standards (the SDR reconfigurability motivation of the paper): see
// examples/multistandard.cpp.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/decimator/chain.h"
#include "src/modulator/dsm.h"
#include "src/modulator/ntf.h"
#include "src/modulator/realize.h"
#include "src/modulator/spec.h"
#include "src/rtl/builders.h"
#include "src/synth/estimate.h"

namespace dsadc::core {

/// Knobs beyond the Table-I specification.
struct FlowOptions {
  /// Explicit Sinc orders per stage; empty = heuristic (L-1 for all but the
  /// last decimate-by-2 stage, L+1 for the last, L = modulator order) which
  /// reproduces the paper's 4/4/6 choice for a 5th-order modulator.
  std::vector<int> cic_orders;
  std::size_t equalizer_taps = 65;  ///< the paper's 64th-order FIR
  /// Grow the equalizer in steps of 16 taps until the ripple spec is met
  /// (the flow's value-add over a fixed-order pick; disable to reproduce
  /// the paper's fixed 64th order exactly).
  bool adapt_equalizer = true;
  int hbf_coeff_frac_bits = 24;     ///< the paper's optimum word length
  std::size_t hbf_n1 = 0;           ///< 0 = automatic structure search
  std::size_t hbf_n2 = 0;
  double hbf_atten_target_db = 90.0;
  bool measure_msa = false;  ///< re-measure MSA by simulation (slower)
  rtl::BuildOptions rtl_options;
};

/// Outcome of one flow run.
struct FlowResult {
  mod::ModulatorSpec modulator_spec;
  mod::DecimatorSpec decimator_spec;
  FlowOptions options;

  mod::Ntf ntf;
  mod::CiffCoeffs ciff;
  double predicted_sqnr_db = 0.0;
  double msa = 0.0;

  decim::ChainConfig chain;

  /// Design-time spec checks (response-based, fast).
  double passband_ripple_db = 0.0;
  double alias_protection_db = 0.0;
  bool ripple_ok = false;
  bool attenuation_ok = false;
};

/// Verification by simulation (slower; drives the bit-true chain with the
/// modulator model at the MSA, like the paper's VCS runs).
struct VerificationResult {
  double snr_db = 0.0;            ///< at the 14-bit output
  double enob_bits = 0.0;
  double snr_unquantized_db = 0.0;  ///< with a wide output format
  bool snr_ok = false;            ///< snr_unquantized >= target
  double tone_freq_hz = 0.0;
};

/// Generated RTL artifacts.
struct RtlArtifacts {
  std::map<std::string, std::string> verilog;  ///< name -> source
  std::string full_chain_verilog;
  std::string testbench;
};

class DesignFlow {
 public:
  /// Steps 1-4 of the flow: everything that does not need long simulation.
  static FlowResult design(const mod::ModulatorSpec& mspec,
                           const mod::DecimatorSpec& dspec,
                           const FlowOptions& options = {});

  /// Step 4b: simulate the modulator + bit-true chain and measure SNR.
  static VerificationResult verify(const FlowResult& result,
                                   double tone_freq_hz = 5e6,
                                   std::size_t run_length = 1 << 17);

  /// Step 5: lower to IR and emit Verilog.
  static RtlArtifacts generate_rtl(const FlowResult& result);

  /// Step 6: per-stage synthesis estimate under the paper's stimulus
  /// (a tone at the MSA amplitude).
  static synth::PowerProfile synthesize(const FlowResult& result,
                                        double tone_freq_hz = 5e6,
                                        std::size_t run_length = 1 << 15,
                                        const synth::CellLibrary& lib =
                                            synth::default_45nm());
};

/// Render a one-page text report of a flow run (used by the quickstart
/// example and the benches).
std::string flow_report(const FlowResult& result);

}  // namespace dsadc::core
