// The complete delta-sigma ADC of Fig. 1: analog-equivalent input in,
// 14-bit words at the Nyquist rate out - the object a downstream user
// instantiates when they just want "the ADC" rather than the flow.
#pragma once

#include <span>
#include <vector>

#include "src/core/flow.h"
#include "src/decimator/chain.h"
#include "src/modulator/dsm.h"

namespace dsadc::core {

class DeltaSigmaAdc {
 public:
  /// Build from a completed flow run (design() output).
  explicit DeltaSigmaAdc(const FlowResult& flow);

  /// Convenience: design the paper's Table-I ADC and build it.
  static DeltaSigmaAdc paper_instance();

  /// Convert a block of input samples (fractions of full scale, one per
  /// modulator clock at `input_rate_hz`). Returns the decimated output
  /// words as real values in [-1, 1); raw words via `last_raw()`.
  std::vector<double> convert(std::span<const double> analog_in);

  /// Raw output words of the last convert() call (output_format).
  const std::vector<std::int64_t>& last_raw() const { return last_raw_; }
  /// Whether the modulator stayed stable during the last conversion.
  bool last_conversion_stable() const { return stable_; }

  void reset();

  double input_rate_hz() const;
  double output_rate_hz() const;
  int output_bits() const;
  /// End-to-end latency in output samples (group delay of the chain).
  double latency_output_samples() const;

 private:
  mod::CiffCoeffs coeffs_;
  int quantizer_bits_;
  decim::ChainConfig chain_cfg_;
  mod::CiffModulator modulator_;
  decim::DecimationChain chain_;
  std::vector<std::int64_t> last_raw_;
  bool stable_ = true;
};

}  // namespace dsadc::core
