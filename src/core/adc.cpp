#include "src/core/adc.h"

namespace dsadc::core {

DeltaSigmaAdc::DeltaSigmaAdc(const FlowResult& flow)
    : coeffs_(flow.ciff),
      quantizer_bits_(flow.modulator_spec.quantizer_bits),
      chain_cfg_(flow.chain),
      modulator_(coeffs_, quantizer_bits_),
      chain_(chain_cfg_) {}

DeltaSigmaAdc DeltaSigmaAdc::paper_instance() {
  const FlowResult flow = DesignFlow::design(mod::paper_modulator_spec(),
                                             mod::paper_decimator_spec());
  return DeltaSigmaAdc(flow);
}

void DeltaSigmaAdc::reset() {
  modulator_.reset();
  chain_.reset();
  last_raw_.clear();
  stable_ = true;
}

std::vector<double> DeltaSigmaAdc::convert(std::span<const double> analog_in) {
  const mod::DsmOutput dsm = modulator_.run(analog_in);
  stable_ = dsm.stable;
  last_raw_ = chain_.process(dsm.codes);
  std::vector<double> out;
  out.reserve(last_raw_.size());
  for (std::int64_t v : last_raw_) {
    out.push_back(fx::to_double(v, chain_cfg_.output_format));
  }
  return out;
}

double DeltaSigmaAdc::input_rate_hz() const {
  return chain_cfg_.input_rate_hz;
}

double DeltaSigmaAdc::output_rate_hz() const {
  return chain_cfg_.input_rate_hz /
         static_cast<double>(chain_.total_decimation());
}

int DeltaSigmaAdc::output_bits() const {
  return chain_cfg_.output_format.width;
}

double DeltaSigmaAdc::latency_output_samples() const {
  return static_cast<double>(chain_.group_delay_input_samples()) /
         static_cast<double>(chain_.total_decimation());
}

}  // namespace dsadc::core
