// Pipelined stage executor for the single-channel decimation chain.
//
// The chain's seven stages (three Sinc stages, the CIC-gain
// renormalization, the halfband, the scaler, the equalizer) are split
// across W workers -- each worker owns a contiguous run of stages -- and
// neighbouring workers are connected by fixed-capacity lock-free SPSC
// rings (spsc.h) carrying sample blocks. Every stage's block kernel is
// split-invariant (state is carried across block boundaries), and blocks
// traverse each ring strictly FIFO, so the pipeline computes the exact
// per-sample arithmetic of DecimationChain::process for any worker count
// and any block size: outputs AND fx event-counter totals match bit for
// bit. W = 1 degenerates to an inline serial loop (no threads).
//
// Queue depths are observed into `runtime.queue_depth.q<i>` histograms on
// every push while observability is enabled, giving a live picture of
// which stage is the bottleneck.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/decimator/chain.h"
#include "src/decimator/soa.h"

namespace dsadc::runtime {

class PipelinedChain {
 public:
  /// `block_frames` is the number of input-rate samples per pipeline
  /// block; `queue_capacity` the SPSC ring depth (blocks) between
  /// workers. Worker count comes from DSADC_RUNTIME_THREADS (clamped to
  /// the stage count).
  explicit PipelinedChain(const decim::ChainConfig& config,
                          std::size_t block_frames = 4096,
                          std::size_t queue_capacity = 8);
  ~PipelinedChain();

  PipelinedChain(const PipelinedChain&) = delete;
  PipelinedChain& operator=(const PipelinedChain&) = delete;

  /// Process a block of modulator codes; bit-identical (outputs and fx
  /// counters) to DecimationChain::process over the same codes.
  std::vector<std::int64_t> process(std::span<const std::int32_t> codes);

  void reset();

  std::size_t stage_count() const;
  std::size_t block_frames() const { return block_frames_; }

  /// One chain stage: transforms a sample block in place (possibly
  /// changing its length), carrying streaming state between blocks.
  /// Exactly one worker runs a given stage, sequentially, so stages need
  /// no internal synchronization.
  struct Stage {
    virtual ~Stage() = default;
    virtual void run(std::vector<std::int64_t>& block) = 0;
    virtual void reset() = 0;
  };

 private:
  void run_pipeline(std::size_t workers,
                    std::vector<std::vector<std::int64_t>>& blocks,
                    std::vector<std::int64_t>& out);

  std::size_t block_frames_;
  std::size_t queue_capacity_;
  std::vector<std::unique_ptr<Stage>> stages_;
};

}  // namespace dsadc::runtime
