// Fixed-capacity lock-free ring buffers: single-producer/single-consumer
// (SpscRing) and multi-producer/multi-consumer (MpmcRing).
//
// The pipelined stage executor (pipeline.h) connects one worker per stage
// group with SPSC rings. The protocol is the classic two-index SPSC
// queue: the producer owns `tail_`, the consumer owns `head_`, and each
// side reads the other's index with acquire ordering so the slot contents
// published before the index update are visible. Capacity is fixed at
// construction (rounded up to a power of two).
//
// The `close()` flag is a two-way end-of-stream/cancellation handshake:
//
//  * producer-side close means "no further elements": a consumer blocked
//    in pop() drains every element pushed before the close (including a
//    final partial block) and then returns false, never deadlocking;
//  * consumer-side close means "stop producing": a producer blocked in
//    push() on a full ring observes the flag and returns false instead
//    of spinning forever on a peer that will never drain it.
//
// The service admission path (src/service) uses MpmcRing: bounded
// Vyukov-style per-slot-sequence queue, where any number of connection
// readers push work items and pool workers pop them. A single producer's
// pushes are dequeued in push order (tickets are taken in order), which
// is what preserves per-channel frame ordering end to end.
//
// Determinism note: a ring delivers elements in exactly the order they
// were pushed, so any chain of SPSC-connected sequential workers computes
// the same function as running the stages serially, independent of timing.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

namespace dsadc::runtime {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    buf_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Moves from `v` on success; false when full or closed.
  bool try_push(T& v) {
    if (closed_.load(std::memory_order_acquire)) return false;
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) > mask_) return false;
    buf_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer side, blocking (spin + yield until space). Returns false --
  /// without delivering `v` -- once the ring is closed, so a producer can
  /// never deadlock against a consumer that has stopped draining.
  bool push(T v) {
    while (!try_push(v)) {
      if (closed_.load(std::memory_order_acquire)) return false;
      std::this_thread::yield();
    }
    return true;
  }

  /// Consumer side. False when currently empty.
  bool try_pop(T& v) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    v = std::move(buf_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side, blocking; false only at end-of-stream (closed and
  /// drained).
  bool pop(T& v) {
    for (;;) {
      if (try_pop(v)) return true;
      if (closed_.load(std::memory_order_acquire)) {
        // Re-check: the producer may have pushed between the failed
        // try_pop and the close-flag read. Seeing closed==true (acquire)
        // orders every push made before close() before this re-check, so
        // the final partial block cannot be dropped.
        if (try_pop(v)) return true;
        return false;
      }
      std::this_thread::yield();
    }
  }

  /// Either side: end-of-stream (producer) or cancellation (consumer).
  void close() { closed_.store(true, std::memory_order_release); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Approximate occupancy (exact when read by either endpoint thread
  /// between its own operations).
  std::size_t size() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail - head;
  }

  std::size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<T> buf_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  ///< consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< producer cursor
  alignas(64) std::atomic<bool> closed_{false};
};

/// Bounded multi-producer/multi-consumer ring (Vyukov per-slot sequence
/// numbers). Each slot carries a sequence counter: `seq == pos` means the
/// slot is free for the producer holding ticket `pos`, `seq == pos + 1`
/// means it holds that ticket's element for the consumer. Producers and
/// consumers claim tickets with a CAS on their cursor, so the queue is
/// lock-free and elements leave in ticket (i.e. global FIFO) order.
///
/// Close semantics mirror SpscRing: after close(), pushes fail, blocking
/// pop() drains the remaining elements and then returns false.
///
/// Minimum capacity is 2: with a single slot the producer's "free"
/// condition (seq == ticket) and the consumer's "occupied" condition
/// coincide, letting a second push overwrite an unconsumed element and
/// livelocking the consumer. Requested capacities round up.
template <typename T>
class MpmcRing {
 public:
  explicit MpmcRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    cells_ = std::vector<Cell>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
    mask_ = cap - 1;
  }

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  /// Moves from `v` on success; false when full or closed.
  bool try_push(T& v) {
    if (closed_.load(std::memory_order_acquire)) return false;
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    Cell* cell = nullptr;
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq) -
                       static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->val = std::move(v);
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Blocking push; false (element undelivered) once the ring is closed.
  bool push(T v) {
    while (!try_push(v)) {
      if (closed_.load(std::memory_order_acquire)) return false;
      std::this_thread::yield();
    }
    return true;
  }

  bool try_pop(T& v) {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    Cell* cell = nullptr;
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq) -
                       static_cast<std::intptr_t>(pos + 1);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    v = std::move(cell->val);
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  /// Blocking pop; false only at end-of-stream (closed and drained).
  bool pop(T& v) {
    for (;;) {
      if (try_pop(v)) return true;
      if (closed_.load(std::memory_order_acquire)) {
        if (try_pop(v)) return true;
        return false;
      }
      std::this_thread::yield();
    }
  }

  void close() { closed_.store(true, std::memory_order_release); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Approximate occupancy; stale under concurrent traffic.
  std::size_t size() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? tail - head : 0;
  }

  std::size_t capacity() const { return mask_ + 1; }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T val{};
  };

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::atomic<bool> closed_{false};
};

}  // namespace dsadc::runtime
