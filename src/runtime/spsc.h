// Fixed-capacity lock-free single-producer/single-consumer ring buffer.
//
// The pipelined stage executor (pipeline.h) connects one worker per stage
// group with these rings. The protocol is the classic two-index SPSC
// queue: the producer owns `tail_`, the consumer owns `head_`, and each
// side reads the other's index with acquire ordering so the slot contents
// published before the index update are visible. Capacity is fixed at
// construction (rounded up to a power of two); a `close()` flag lets the
// producer signal end-of-stream without a sentinel element.
//
// Determinism note: a ring delivers elements in exactly the order they
// were pushed, so any chain of SPSC-connected sequential workers computes
// the same function as running the stages serially, independent of timing.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

namespace dsadc::runtime {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    buf_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Moves from `v` on success; false when full.
  bool try_push(T& v) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) > mask_) return false;
    buf_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer side, blocking (spin + yield until space).
  void push(T v) {
    while (!try_push(v)) std::this_thread::yield();
  }

  /// Consumer side. False when currently empty.
  bool try_pop(T& v) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    v = std::move(buf_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side, blocking; false only at end-of-stream (closed and
  /// drained).
  bool pop(T& v) {
    for (;;) {
      if (try_pop(v)) return true;
      if (closed_.load(std::memory_order_acquire)) {
        // Re-check: the producer may have pushed between the failed
        // try_pop and the close-flag read.
        if (try_pop(v)) return true;
        return false;
      }
      std::this_thread::yield();
    }
  }

  /// Producer side: no further pushes will happen.
  void close() { closed_.store(true, std::memory_order_release); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Approximate occupancy (exact when read by either endpoint thread
  /// between its own operations).
  std::size_t size() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail - head;
  }

  std::size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<T> buf_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  ///< consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< producer cursor
  alignas(64) std::atomic<bool> closed_{false};
};

}  // namespace dsadc::runtime
