// Multi-channel lockstep streaming runtime (SoA batch execution).
//
// Runs N independent copies of the paper's decimation chain over a
// channel-interleaved structure-of-arrays layout: channels are packed
// into fixed-width groups (kGroupWidth lanes), each group is carried as
// frames of `width` int64 lanes (element index = frame * width + lane),
// and every chain stage runs its bank kernel (CicDecimatorBank,
// SaramakiHbfBank, FirDecimatorBank, ...) over the whole group. The
// per-lane arithmetic sequence is exactly DecimationChain::process, so
// each channel's output stream -- and the fx.<event>.<site> saturation /
// round counter totals -- are bit-identical to running N scalar chains.
//
// Groups are independent, so they can be claimed by a small worker pool
// (DSADC_RUNTIME_THREADS); the group width is a compile-time constant and
// results are deposited per-channel, so the output is deterministic and
// identical for every worker count. See docs/PERF.md ("Multi-channel
// runtime") for the layout and the determinism argument.
#pragma once

#include <cstdint>
#include <vector>

#include "src/decimator/chain.h"
#include "src/decimator/soa.h"

namespace dsadc::obs {
class Counter;
class Gauge;
}  // namespace dsadc::obs

namespace dsadc::runtime {

/// Fixed SoA group width. Independent of thread count (so results never
/// depend on DSADC_RUNTIME_THREADS; per-lane results are independent of
/// the grouping itself, the width only moves performance). 32 int64
/// lanes fill AVX-512 vectors four times over, amortize the per-frame
/// scalar bookkeeping of the HBF/CIC kernels, and still leave multiple
/// groups for the worker pool at 64+ channels.
inline constexpr std::size_t kGroupWidth = 32;

/// Worker count for the runtime: DSADC_RUNTIME_THREADS when set (clamped
/// to >= 1), else the hardware concurrency.
std::size_t configured_threads();

/// An N-lane lockstep DecimationChain over channel-interleaved frames:
/// the bank form of every chain stage plus the CIC-gain renormalization
/// between the Sinc cascade and the halfband. Lane c is bit-identical to
/// a dedicated DecimationChain fed the same codes.
class ChainBank {
 public:
  ChainBank(const decim::ChainConfig& config, std::size_t lanes);

  /// `data` holds modulator codes as channel-interleaved frames on entry
  /// (size a multiple of `lanes`) and output-format samples on return.
  void process_inplace(std::vector<std::int64_t>& data);

  void reset();

  /// Copy lane `lane`'s streaming state into a scalar chain constructed
  /// from the same config, so `dst` continues that lane's sample stream --
  /// and its fx event attribution -- bit-exactly from the next block on.
  /// The batch serving mode uses this to dissolve a lockstep group back to
  /// per-session scalar chains (stragglers, reconfigure, drain, close).
  void export_lane(std::size_t lane, decim::DecimationChain& dst) const;

  std::size_t lanes() const { return lanes_; }

 private:
  std::size_t lanes_;
  std::vector<decim::CicDecimatorBank> cic_;
  decim::soa::Requant renorm_;  ///< CIC gain shift into the HBF format
  decim::SaramakiHbfBank hbf_;
  decim::ScalingStage scaler_;
  decim::FirDecimatorBank equalizer_;
};

/// The streaming runtime: N channels, grouped into SoA banks, executed
/// by an optional worker pool. Also publishes per-channel throughput
/// gauges (`runtime.throughput_sps.ch<i>`) and sample counters
/// (`runtime.samples.ch<i>`) while observability is enabled.
class MultiChannelRuntime {
 public:
  MultiChannelRuntime(const decim::ChainConfig& config, std::size_t channels);

  /// `codes[c]` is channel c's modulator-code block; all blocks must have
  /// equal length (a streaming tick). Returns per-channel output samples.
  /// Deterministic: the result is independent of the worker count.
  std::vector<std::vector<std::int64_t>> process(
      const std::vector<std::vector<std::int32_t>>& codes);

  /// Same, writing into caller-owned vectors (resized to `channels()`).
  /// Reusing `out` across streaming ticks makes the steady state
  /// allocation-free once capacities have grown to the block size.
  void process_into(const std::vector<std::vector<std::int32_t>>& codes,
                    std::vector<std::vector<std::int64_t>>& out);

  void reset();

  std::size_t channels() const { return channels_; }
  std::size_t groups() const { return groups_.size(); }

 private:
  struct Group {
    std::size_t first = 0;  ///< first channel index
    std::size_t width = 0;  ///< lanes in this group (<= kGroupWidth)
    ChainBank bank;
    std::vector<std::int64_t> buf;  ///< interleave scratch
    std::vector<const std::int32_t*> rows;  ///< transpose input pointers
    /// Per-lane instrument handles, resolved once on first publish so the
    /// steady state never rebuilds metric-name strings (Registry handles
    /// are process-lifetime stable).
    std::vector<obs::Counter*> sample_counters;
    std::vector<obs::Gauge*> throughput_gauges;

    Group(const decim::ChainConfig& config, std::size_t first_,
          std::size_t width_)
        : first(first_), width(width_), bank(config, width_) {}
  };

  std::size_t channels_;
  std::vector<Group> groups_;
};

}  // namespace dsadc::runtime
