// Sharded session runtime: the per-channel lifecycle layer under the
// decimation service (src/service).
//
// The SoA MultiChannelRuntime runs a fixed set of lockstep channels; a
// service instead sees thousands of independent sessions that open,
// stream DATA blocks of arbitrary length, reconfigure, drain and close
// at their own pace. SessionRuntime provides that lifecycle: sessions
// are keyed by an opaque 64-bit id, each owns a streaming
// decim::DecimationChain (state carries across DATA jobs exactly like
// consecutive process() calls on a scalar chain, so served output is
// bit-identical to one-shot processing of the concatenated stream), and
// sessions are sharded by `id % shards` into admission queues.
//
// Each shard is a bounded MpmcRing of jobs (spsc.h) plus an atomic
// `busy` claim flag. Any number of submitters push; a small worker pool
// (DSADC_RUNTIME_THREADS / Options::workers) scans the shards, claims a
// non-empty one with an atomic exchange, drains it in FIFO order, and
// releases the claim. Exactly one worker executes a shard at a time, so
// per-session job order -- and therefore every output sample -- is
// independent of the worker count; only scheduling varies.
//
// Overload policy (Options::policy):
//  * kBlock: submit() blocks until the shard queue has room -- the
//    backpressure propagates to the connection reader and from there to
//    the client socket;
//  * kShed: a kData job whose shard queue is full is refused (submit()
//    returns false) and the caller accounts the shed. Lifecycle jobs
//    (open/reconfigure/drain/close) always block: losing them would
//    corrupt the session state machine.
//
// Batch serving (the service fast path): sessions that OPEN with
// SessionJob::lockstep and share a config object form per-shard
// BatchGroups. Once a group seals (first DATA frame), equal-length DATA
// blocks present at every lane are interleaved into one SoA buffer and
// run through a ChainBank -- the multichannel bank kernels
// (scalar/AVX2/AVX-512 dispatched) -- then deinterleaved back to
// per-session results. Lane arithmetic is bit-identical to the scalar
// chain, including fx saturate/round counter totals, so the fast path is
// invisible except in throughput. Stragglers (deep uneven backlogs),
// unequal block lengths, the linger timer, or any lifecycle op dissolve
// the group: ChainBank::export_lane lands each lane's streaming state in
// the session's scalar chain and queued blocks replay scalar, preserving
// per-session FIFO order.
//
// While observability is enabled the runtime publishes the
// `service.inflight` gauge (admitted jobs not yet completed).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <semaphore>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/decimator/chain.h"
#include "src/runtime/spsc.h"

namespace dsadc::runtime {

class ChainBank;  // SoA bank backing a lockstep batch group

enum class SessionOp : std::uint8_t {
  kOpen,
  kReconfigure,
  kData,
  kDrain,
  kClose,
};

enum class SessionStatus : std::uint8_t {
  kOk,
  kNotOpen,      ///< data/drain/close/reconfigure on an unknown session
  kAlreadyOpen,  ///< open on an existing session
  kError,        ///< job execution threw (bad config, ...)
};

struct SessionResult {
  std::uint64_t session = 0;
  SessionOp op = SessionOp::kData;
  SessionStatus status = SessionStatus::kOk;
  /// Decimated output samples (kData; kDrain returns the flush tail).
  std::vector<std::int64_t> samples;
};

/// One unit of admitted work. `done` (optional) runs on the worker thread
/// that executed the job, after the chain work completed.
struct SessionJob {
  std::uint64_t session = 0;
  SessionOp op = SessionOp::kData;
  /// Chain configuration for kOpen/kReconfigure (shared so presets are
  /// designed once, not per session). Batch grouping keys on the POINTER:
  /// sessions batch together only when they share one config object.
  std::shared_ptr<const decim::ChainConfig> config;
  std::vector<std::int32_t> codes;  ///< kData payload
  /// kOpen only: volunteer this session for lockstep batch serving. Its
  /// DATA blocks may then be coalesced with co-sharded lockstep sessions
  /// of the same config into one SoA ChainBank round (bit-exact either
  /// way, including fx counter totals; purely a throughput hint).
  bool lockstep = false;
  std::function<void(SessionResult)> done;
};

class SessionRuntime {
 public:
  enum class Overload : std::uint8_t { kBlock, kShed };

  struct Options {
    std::size_t shards = 16;
    std::size_t workers = 0;  ///< 0 -> configured_threads()
    std::size_t queue_capacity = 64;  ///< jobs per shard ring
    Overload policy = Overload::kBlock;
    /// Batch serving: a lockstep group whose backlog has been blocked on a
    /// starved lane for this long is dissolved back to scalar chains (the
    /// cohort is evidently not lockstep in practice). 0 disables the
    /// timer-based dissolve (lifecycle/straggler dissolves still apply).
    std::int64_t batch_linger_us = 20000;
    /// Straggler bound: when the deepest lane backlog of a non-runnable
    /// group reaches this many blocks, the group dissolves immediately
    /// instead of waiting out the linger timer.
    std::size_t batch_max_lane_backlog = 8;
  };

  explicit SessionRuntime(Options opts);
  ~SessionRuntime();

  SessionRuntime(const SessionRuntime&) = delete;
  SessionRuntime& operator=(const SessionRuntime&) = delete;

  /// Admit a job. Returns false only when the job was NOT admitted: a
  /// kData job refused under the kShed policy, or any job after stop().
  /// Under kBlock the call blocks until the shard queue has room.
  bool submit(SessionJob job);

  /// Finish every admitted job, then join the workers. Idempotent; the
  /// destructor calls it. Submitters must be quiesced first (the service
  /// joins its connection readers before stopping the runtime): a
  /// submit() that races stop() may be refused or left unexecuted.
  void stop();

  /// Shard index a session id maps to (stable for the runtime lifetime).
  std::size_t shard_of(std::uint64_t session) const {
    return static_cast<std::size_t>(session % shards_.size());
  }

  /// Jobs admitted but not yet completed.
  std::size_t inflight() const {
    return pending_.load(std::memory_order_relaxed);
  }

  std::size_t shards() const { return shards_.size(); }
  std::size_t workers() const { return threads_.size(); }
  Overload policy() const { return opts_.policy; }

  /// Number of zero samples a drain feeds through a chain: the chain's
  /// group delay rounded up to a whole number of output samples.
  static std::size_t drain_pad_frames(const decim::DecimationChain& chain);

 private:
  struct BatchGroup;

  struct Session {
    std::unique_ptr<decim::DecimationChain> chain;
    /// Trace-store transaction id of the kOpen that created the session;
    /// later jobs link their transactions to it as parent, so a whole
    /// session reads as one tree in the store.
    std::uint64_t open_txn = 0;
    /// Lockstep batch membership. While grouped, `chain` is null -- the
    /// session's streaming state lives in lane `lane` of the group's
    /// ChainBank and is exported back into a fresh chain on dissolve.
    BatchGroup* group = nullptr;
    std::size_t lane = 0;
    /// The config this session was opened/reconfigured with (grouping key
    /// and the blueprint for the dissolve-time scalar chain).
    std::shared_ptr<const decim::ChainConfig> config;
  };

  /// A lockstep cohort on one shard: sessions that opened with the
  /// lockstep flag and one shared config object. Joins happen between the
  /// cohort's OPENs and its first DATA frame (the group then "seals" at
  /// its current width); after that, equal-length DATA blocks present at
  /// every lane are interleaved and run as one ChainBank round. Any
  /// lifecycle event, unequal block lengths, a deep straggler backlog, or
  /// the linger timer dissolves the group: every lane's bank state is
  /// exported into a fresh scalar chain and queued jobs replay scalar --
  /// bit-exactly, since bank lanes and scalar chains are bit-identical.
  struct BatchGroup {
    BatchGroup();
    ~BatchGroup();  // out of line: ChainBank is incomplete here

    std::shared_ptr<const decim::ChainConfig> config;
    std::vector<std::uint64_t> members;  ///< session id per lane
    /// Per-lane FIFO of admitted-but-unprocessed kData jobs.
    std::vector<std::deque<SessionJob>> backlog;
    std::unique_ptr<ChainBank> bank;  ///< created when the group seals
    bool sealed = false;
    std::size_t queued = 0;  ///< total backlog entries across lanes
    /// steady_clock us when the backlog last became blocked (some lane
    /// waiting on a starved peer); 0 while empty or runnable.
    std::int64_t blocked_since_us = 0;
    std::vector<std::int64_t> buf;  ///< interleave scratch
  };

  struct Shard {
    explicit Shard(std::size_t cap) : ring(cap) {}
    MpmcRing<SessionJob> ring;
    /// Claim flag: exactly one worker drains a shard at a time, which is
    /// what serializes session state access without a per-session lock.
    alignas(64) std::atomic<bool> busy{false};
    /// Session table; touched only by the worker holding `busy`.
    std::unordered_map<std::uint64_t, Session> sessions;
    /// Lockstep groups; touched only by the worker holding `busy`.
    std::vector<std::unique_ptr<BatchGroup>> groups;
    /// Earliest BatchGroup::blocked_since_us across `groups` (0: none).
    /// Written under the claim, read by idle workers deciding whether a
    /// quiet shard needs a linger-timer visit.
    std::atomic<std::int64_t> batch_blocked_us{0};
  };

  void worker_loop();
  /// Runs one job against its shard's session table and invokes `done`.
  void run_job(Shard& shard, SessionJob& job);
  void publish_inflight() const;

  // --- batch serving (all run under the shard claim) ---
  /// Joins a freshly opened lockstep session to a compatible unsealed
  /// group (same config object, width < kGroupWidth), creating one if
  /// needed.
  void join_group(Shard& shard, Session& s, std::uint64_t session_id);
  /// Runs every currently runnable round (all lanes holding equal-length
  /// front blocks), then applies the straggler bound. May dissolve `g`.
  void pump_group(Shard& shard, BatchGroup& g);
  void run_batch_round(Shard& shard, BatchGroup& g, std::size_t frames);
  /// Exports every lane's bank state into a fresh scalar chain, replays
  /// the backlog through run_job (scalar path), and deletes the group.
  void dissolve_group(Shard& shard, BatchGroup& g);
  /// Dissolves groups whose blocked backlog outlived batch_linger_us.
  void flush_stale_groups(Shard& shard, std::int64_t now_us);
  void refresh_batch_blocked(Shard& shard);

  Options opts_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> threads_;
  std::counting_semaphore<> sem_{0};
  std::atomic<std::size_t> pending_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> stopped_{false};
};

}  // namespace dsadc::runtime
