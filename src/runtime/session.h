// Sharded session runtime: the per-channel lifecycle layer under the
// decimation service (src/service).
//
// The SoA MultiChannelRuntime runs a fixed set of lockstep channels; a
// service instead sees thousands of independent sessions that open,
// stream DATA blocks of arbitrary length, reconfigure, drain and close
// at their own pace. SessionRuntime provides that lifecycle: sessions
// are keyed by an opaque 64-bit id, each owns a streaming
// decim::DecimationChain (state carries across DATA jobs exactly like
// consecutive process() calls on a scalar chain, so served output is
// bit-identical to one-shot processing of the concatenated stream), and
// sessions are sharded by `id % shards` into admission queues.
//
// Each shard is a bounded MpmcRing of jobs (spsc.h) plus an atomic
// `busy` claim flag. Any number of submitters push; a small worker pool
// (DSADC_RUNTIME_THREADS / Options::workers) scans the shards, claims a
// non-empty one with an atomic exchange, drains it in FIFO order, and
// releases the claim. Exactly one worker executes a shard at a time, so
// per-session job order -- and therefore every output sample -- is
// independent of the worker count; only scheduling varies.
//
// Overload policy (Options::policy):
//  * kBlock: submit() blocks until the shard queue has room -- the
//    backpressure propagates to the connection reader and from there to
//    the client socket;
//  * kShed: a kData job whose shard queue is full is refused (submit()
//    returns false) and the caller accounts the shed. Lifecycle jobs
//    (open/reconfigure/drain/close) always block: losing them would
//    corrupt the session state machine.
//
// While observability is enabled the runtime publishes the
// `service.inflight` gauge (admitted jobs not yet completed).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <semaphore>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/decimator/chain.h"
#include "src/runtime/spsc.h"

namespace dsadc::runtime {

enum class SessionOp : std::uint8_t {
  kOpen,
  kReconfigure,
  kData,
  kDrain,
  kClose,
};

enum class SessionStatus : std::uint8_t {
  kOk,
  kNotOpen,      ///< data/drain/close/reconfigure on an unknown session
  kAlreadyOpen,  ///< open on an existing session
  kError,        ///< job execution threw (bad config, ...)
};

struct SessionResult {
  std::uint64_t session = 0;
  SessionOp op = SessionOp::kData;
  SessionStatus status = SessionStatus::kOk;
  /// Decimated output samples (kData; kDrain returns the flush tail).
  std::vector<std::int64_t> samples;
};

/// One unit of admitted work. `done` (optional) runs on the worker thread
/// that executed the job, after the chain work completed.
struct SessionJob {
  std::uint64_t session = 0;
  SessionOp op = SessionOp::kData;
  /// Chain configuration for kOpen/kReconfigure (shared so presets are
  /// designed once, not per session).
  std::shared_ptr<const decim::ChainConfig> config;
  std::vector<std::int32_t> codes;  ///< kData payload
  std::function<void(SessionResult)> done;
};

class SessionRuntime {
 public:
  enum class Overload : std::uint8_t { kBlock, kShed };

  struct Options {
    std::size_t shards = 16;
    std::size_t workers = 0;  ///< 0 -> configured_threads()
    std::size_t queue_capacity = 64;  ///< jobs per shard ring
    Overload policy = Overload::kBlock;
  };

  explicit SessionRuntime(Options opts);
  ~SessionRuntime();

  SessionRuntime(const SessionRuntime&) = delete;
  SessionRuntime& operator=(const SessionRuntime&) = delete;

  /// Admit a job. Returns false only when the job was NOT admitted: a
  /// kData job refused under the kShed policy, or any job after stop().
  /// Under kBlock the call blocks until the shard queue has room.
  bool submit(SessionJob job);

  /// Finish every admitted job, then join the workers. Idempotent; the
  /// destructor calls it. Submitters must be quiesced first (the service
  /// joins its connection readers before stopping the runtime): a
  /// submit() that races stop() may be refused or left unexecuted.
  void stop();

  /// Shard index a session id maps to (stable for the runtime lifetime).
  std::size_t shard_of(std::uint64_t session) const {
    return static_cast<std::size_t>(session % shards_.size());
  }

  /// Jobs admitted but not yet completed.
  std::size_t inflight() const {
    return pending_.load(std::memory_order_relaxed);
  }

  std::size_t shards() const { return shards_.size(); }
  std::size_t workers() const { return threads_.size(); }
  Overload policy() const { return opts_.policy; }

  /// Number of zero samples a drain feeds through a chain: the chain's
  /// group delay rounded up to a whole number of output samples.
  static std::size_t drain_pad_frames(const decim::DecimationChain& chain);

 private:
  struct Session {
    std::unique_ptr<decim::DecimationChain> chain;
    /// Trace-store transaction id of the kOpen that created the session;
    /// later jobs link their transactions to it as parent, so a whole
    /// session reads as one tree in the store.
    std::uint64_t open_txn = 0;
  };

  struct Shard {
    explicit Shard(std::size_t cap) : ring(cap) {}
    MpmcRing<SessionJob> ring;
    /// Claim flag: exactly one worker drains a shard at a time, which is
    /// what serializes session state access without a per-session lock.
    alignas(64) std::atomic<bool> busy{false};
    /// Session table; touched only by the worker holding `busy`.
    std::unordered_map<std::uint64_t, Session> sessions;
  };

  void worker_loop();
  /// Runs one job against its shard's session table and invokes `done`.
  void run_job(Shard& shard, SessionJob& job);
  void publish_inflight() const;

  Options opts_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> threads_;
  std::counting_semaphore<> sem_{0};
  std::atomic<std::size_t> pending_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> stopped_{false};
};

}  // namespace dsadc::runtime
