#include "src/runtime/multichannel.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "src/decimator/simd.h"
#include "src/obs/metrics.h"

namespace dsadc::runtime {
namespace {

// log2 of the CIC cascade DC gain (same rule as DecimationChain: the
// cascade gain must be a power of two so renormalization is a pure shift).
int cic_cascade_gain_log2(const std::vector<design::CicSpec>& stages) {
  double g = 0.0;
  for (const auto& s : stages) {
    g += s.order * std::log2(static_cast<double>(s.decimation));
  }
  const int gi = static_cast<int>(std::lround(g));
  if (std::abs(g - gi) > 1e-9) {
    throw std::invalid_argument(
        "ChainBank: CIC gain must be a power of two for shift "
        "normalization");
  }
  return gi;
}

}  // namespace

std::size_t configured_threads() {
  if (const char* env = std::getenv("DSADC_RUNTIME_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n >= 1) return static_cast<std::size_t>(n);
    return 1;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ChainBank::ChainBank(const decim::ChainConfig& config, std::size_t lanes)
    : lanes_(lanes),
      renorm_(cic_cascade_gain_log2(config.cic_stages), config.hbf_in_format,
              fx::Rounding::kRoundNearest,
              fx::event_counters("chain_hbf_in")),
      hbf_(config.hbf, lanes, config.hbf_in_format, config.hbf_out_format,
           config.hbf_coeff_frac_bits),
      scaler_(config.scale, config.hbf_out_format, config.scaler_out_format,
              /*frac_bits=*/14, /*max_digits=*/8),
      equalizer_(decim::FixedTaps::from_real(config.equalizer_taps,
                                             config.equalizer_frac_bits),
                 /*decimation=*/1, lanes, config.scaler_out_format,
                 config.output_format) {
  cic_.reserve(config.cic_stages.size());
  for (const auto& spec : config.cic_stages) {
    cic_.emplace_back(spec, lanes);
  }
}

void ChainBank::reset() {
  for (auto& c : cic_) c.reset();
  hbf_.reset();
  equalizer_.reset();
}

void ChainBank::process_inplace(std::vector<std::int64_t>& data) {
  // Same stage sequence as DecimationChain::process, in bank form.
  for (auto& c : cic_) c.process_inplace(data);

  decim::soa::RequantTally tally;
  decim::simd::kernels().requant_rows(data.data(), data.size(), renorm_,
                                      tally);
  tally.flush(renorm_);

  hbf_.process_inplace(data);
  scaler_.process_inplace(data);
  equalizer_.process_inplace(data);
}

void ChainBank::export_lane(std::size_t lane,
                            decim::DecimationChain& dst) const {
  if (lane >= lanes_) {
    throw std::invalid_argument("ChainBank: export lane out of range");
  }
  // Stage-by-stage state transplant (scaler and renorm are stateless).
  // DecimationChain befriends ChainBank precisely for this: the bank IS the
  // SoA form of the chain, so the per-stage exports land on the matching
  // scalar stages and the chain continues the lane bit-exactly.
  auto& stages = dst.cic_.stages();
  if (stages.size() != cic_.size()) {
    throw std::invalid_argument("ChainBank: export config mismatch");
  }
  for (std::size_t i = 0; i < cic_.size(); ++i) {
    cic_[i].export_lane(lane, stages[i]);
  }
  hbf_.export_lane(lane, dst.hbf_);
  equalizer_.export_lane(lane, dst.equalizer_);
}

MultiChannelRuntime::MultiChannelRuntime(const decim::ChainConfig& config,
                                         std::size_t channels)
    : channels_(channels) {
  if (channels_ == 0) {
    throw std::invalid_argument("MultiChannelRuntime: channels >= 1");
  }
  groups_.reserve((channels_ + kGroupWidth - 1) / kGroupWidth);
  for (std::size_t first = 0; first < channels_; first += kGroupWidth) {
    const std::size_t width = std::min(kGroupWidth, channels_ - first);
    groups_.emplace_back(config, first, width);
  }
}

void MultiChannelRuntime::reset() {
  for (auto& g : groups_) g.bank.reset();
}

std::vector<std::vector<std::int64_t>> MultiChannelRuntime::process(
    const std::vector<std::vector<std::int32_t>>& codes) {
  std::vector<std::vector<std::int64_t>> out;
  process_into(codes, out);
  return out;
}

void MultiChannelRuntime::process_into(
    const std::vector<std::vector<std::int32_t>>& codes,
    std::vector<std::vector<std::int64_t>>& out) {
  if (codes.size() != channels_) {
    throw std::invalid_argument(
        "MultiChannelRuntime: one code block per channel expected");
  }
  const std::size_t frames = codes.empty() ? 0 : codes[0].size();
  for (const auto& c : codes) {
    if (c.size() != frames) {
      throw std::invalid_argument(
          "MultiChannelRuntime: all channel blocks must have equal length");
    }
  }

  out.resize(channels_);
  const bool obs_on = obs::enabled();

  const auto run_group = [&](Group& g) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::size_t w = g.width;
    // Hoisting the per-lane base pointers turns the interleave into flat
    // pointer walks (no vector-of-vectors indirection per element).
    g.rows.resize(w);
    for (std::size_t lane = 0; lane < w; ++lane) {
      g.rows[lane] = codes[g.first + lane].data();
    }
    g.buf.resize(frames * w);
    std::int64_t* const buf = g.buf.data();
    const std::int32_t* const* const rows = g.rows.data();
    for (std::size_t f = 0; f < frames; ++f) {
      for (std::size_t lane = 0; lane < w; ++lane) {
        buf[f * w + lane] = rows[lane][f];
      }
    }
    g.bank.process_inplace(g.buf);
    const std::size_t out_frames = g.buf.size() / w;
    for (std::size_t lane = 0; lane < w; ++lane) {
      auto& dst = out[g.first + lane];
      dst.resize(out_frames);
      std::int64_t* const d = dst.data();
      const std::int64_t* const src = g.buf.data() + lane;
      for (std::size_t f = 0; f < out_frames; ++f) d[f] = src[f * w];
    }
    if (obs_on) {
      const std::chrono::duration<double> dt =
          std::chrono::steady_clock::now() - t0;
      const double sps =
          dt.count() > 0.0 ? static_cast<double>(frames) / dt.count() : 0.0;
      if (g.sample_counters.empty()) {
        auto& reg = obs::Registry::instance();
        g.sample_counters.reserve(w);
        g.throughput_gauges.reserve(w);
        for (std::size_t lane = 0; lane < w; ++lane) {
          const std::string ch = std::to_string(g.first + lane);
          g.sample_counters.push_back(&reg.counter("runtime.samples.ch" + ch));
          g.throughput_gauges.push_back(
              &reg.gauge("runtime.throughput_sps.ch" + ch));
        }
      }
      for (std::size_t lane = 0; lane < w; ++lane) {
        g.sample_counters[lane]->add(frames);
        g.throughput_gauges[lane]->set(sps);
      }
    }
  };

  const std::size_t workers =
      std::min(configured_threads(), groups_.size());
  if (workers <= 1) {
    for (auto& g : groups_) run_group(g);
    return;
  }

  // Atomic-claim worker pool over the (independent) groups. Group width
  // is fixed, so partitioning -- and therefore every lane's arithmetic --
  // is identical for every worker count; only scheduling varies.
  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mu;
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= groups_.size()) return;
      try {
        run_group(groups_[i]);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) pool.emplace_back(worker);
  worker();
  for (auto& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace dsadc::runtime
