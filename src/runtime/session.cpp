#include "src/runtime/session.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <limits>
#include <stdexcept>

#include "src/obs/metrics.h"
#include "src/obs/store/tracker.h"
#include "src/runtime/multichannel.h"

namespace dsadc::runtime {
namespace {

std::int64_t steady_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Shared fallback config for jobs submitted without one, so null-config
/// lockstep sessions still share a grouping key.
const std::shared_ptr<const decim::ChainConfig>& default_config() {
  static const auto cfg = std::make_shared<const decim::ChainConfig>(
      decim::paper_chain_config());
  return cfg;
}

/// Interned trace-store transaction name per SessionOp (indexed by the
/// enum's underlying value).
std::uint32_t op_name_id(SessionOp op) {
  static const std::uint32_t ids[] = {
      obs::store::intern("session.open"),
      obs::store::intern("session.reconfigure"),
      obs::store::intern("session.data"),
      obs::store::intern("session.drain"),
      obs::store::intern("session.close"),
  };
  return ids[static_cast<std::size_t>(op)];
}

/// The service packs (conn_id << 32) | channel into the session id; the
/// low word is what reads as "channel" in the store.
std::uint32_t session_channel(std::uint64_t session) {
  return static_cast<std::uint32_t>(session & 0xffffffffu);
}

}  // namespace

SessionRuntime::BatchGroup::BatchGroup() = default;
SessionRuntime::BatchGroup::~BatchGroup() = default;

SessionRuntime::SessionRuntime(Options opts) : opts_(opts) {
  if (opts_.shards == 0) {
    throw std::invalid_argument("SessionRuntime: shards >= 1");
  }
  if (opts_.queue_capacity == 0) {
    throw std::invalid_argument("SessionRuntime: queue_capacity >= 1");
  }
  if (opts_.workers == 0) opts_.workers = configured_threads();
  shards_.reserve(opts_.shards);
  for (std::size_t i = 0; i < opts_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(opts_.queue_capacity));
  }
  threads_.reserve(opts_.workers);
  for (std::size_t i = 0; i < opts_.workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

SessionRuntime::~SessionRuntime() { stop(); }

void SessionRuntime::publish_inflight() const {
  if (!obs::enabled()) return;
  obs::Registry::instance().gauge("service.inflight").set(
      static_cast<double>(pending_.load(std::memory_order_relaxed)));
}

bool SessionRuntime::submit(SessionJob job) {
  if (stop_.load(std::memory_order_acquire)) return false;
  const std::size_t shard_idx = shard_of(job.session);
  Shard& sh = *shards_[shard_idx];
  const bool store_on = obs::store::enabled();
  const std::uint32_t channel =
      store_on ? session_channel(job.session) : obs::store::kNoChannel;
  const std::uint64_t payload = job.codes.size();
  pending_.fetch_add(1, std::memory_order_relaxed);
  bool admitted = false;
  if (opts_.policy == Overload::kShed && job.op == SessionOp::kData) {
    admitted = sh.ring.try_push(job);
    if (!admitted && store_on) {
      static const std::uint32_t shed_id = obs::store::intern("ring.shed");
      obs::store::Event e;
      e.category = obs::store::Category::kRuntime;
      e.name = shed_id;
      e.channel = channel;
      e.value = static_cast<std::int64_t>(shard_idx);
      e.aux = payload;
      obs::store::emit(e);
    }
  } else if (store_on && !sh.ring.try_push(job)) {
    // Full ring under the blocking policy: record how long backpressure
    // held this submitter.
    const std::int64_t t0 = obs::store::now_us();
    admitted = sh.ring.push(std::move(job));
    static const std::uint32_t stall_id = obs::store::intern("ring.stall");
    obs::store::Event e;
    e.category = obs::store::Category::kRuntime;
    e.name = stall_id;
    e.ts_us = t0;
    e.dur_us = obs::store::now_us() - t0;
    e.channel = channel;
    e.value = static_cast<std::int64_t>(shard_idx);
    e.aux = payload;
    obs::store::emit(e);
  } else if (!store_on) {
    admitted = sh.ring.push(std::move(job));
  } else {
    admitted = true;  // store_on and the try_push above took the job
  }
  if (!admitted) {
    pending_.fetch_sub(1, std::memory_order_relaxed);
    publish_inflight();
    return false;
  }
  publish_inflight();
  sem_.release();
  return true;
}

void SessionRuntime::run_job(Shard& shard, SessionJob& job) {
  SessionResult r;
  r.session = job.session;
  r.op = job.op;
  // One store transaction per job: every event the chain emits while the
  // job runs (stage boundaries, fx hits) inherits this id and channel.
  obs::store::TxnScope txn(op_name_id(job.op), session_channel(job.session));
  try {
    auto it = shard.sessions.find(job.session);
    switch (job.op) {
      case SessionOp::kOpen: {
        if (it != shard.sessions.end()) {
          r.status = SessionStatus::kAlreadyOpen;
          break;
        }
        Session s;
        s.config = job.config ? job.config : default_config();
        // The chain is built even for lockstep sessions: it validates the
        // config up front and becomes the dissolve target (export_lane
        // overwrites every piece of streaming state, so the zero-state
        // chain parked here is always a correct landing pad).
        s.chain = std::make_unique<decim::DecimationChain>(*s.config);
        s.open_txn = txn.id();
        auto [sit, inserted] =
            shard.sessions.emplace(job.session, std::move(s));
        if (job.lockstep) join_group(shard, sit->second, job.session);
        break;
      }
      case SessionOp::kReconfigure: {
        if (it == shard.sessions.end()) {
          r.status = SessionStatus::kNotOpen;
          break;
        }
        txn.set_parent(it->second.open_txn);
        // A grouped session leaving the lockstep cohort dissolves the
        // whole group (the bank has no per-lane removal); its queued
        // blocks replay scalar BEFORE the reconfigure, preserving FIFO
        // order per session.
        if (it->second.group) dissolve_group(shard, *it->second.group);
        // Reconfiguration swaps in a freshly built chain: filter state
        // never carries across a format/coefficient change.
        it->second.config =
            job.config ? job.config : default_config();
        it->second.chain =
            std::make_unique<decim::DecimationChain>(*it->second.config);
        break;
      }
      case SessionOp::kData: {
        if (it == shard.sessions.end()) {
          r.status = SessionStatus::kNotOpen;
          break;
        }
        txn.set_parent(it->second.open_txn);
        if (it->second.group) {
          // Batch fast path: the block queues on the session's lane and
          // `done` fires when a full-width round (or a dissolve replay)
          // produces its samples.
          BatchGroup& g = *it->second.group;
          if (!g.sealed) {
            g.bank = std::make_unique<ChainBank>(*g.config,
                                                 g.members.size());
            g.sealed = true;
          }
          txn.set_value(static_cast<std::int64_t>(job.codes.size()));
          g.backlog[it->second.lane].push_back(std::move(job));
          ++g.queued;
          pump_group(shard, g);
          return;  // deferred: done ran (or will run) via round/replay
        }
        r.samples = it->second.chain->process(job.codes);
        txn.set_value(static_cast<std::int64_t>(r.samples.size()));
        break;
      }
      case SessionOp::kDrain: {
        if (it == shard.sessions.end()) {
          r.status = SessionStatus::kNotOpen;
          break;
        }
        txn.set_parent(it->second.open_txn);
        if (it->second.group) dissolve_group(shard, *it->second.group);
        const std::vector<std::int32_t> zeros(
            drain_pad_frames(*it->second.chain), 0);
        r.samples = it->second.chain->process(zeros);
        txn.set_value(static_cast<std::int64_t>(r.samples.size()));
        break;
      }
      case SessionOp::kClose: {
        if (it == shard.sessions.end()) {
          r.status = SessionStatus::kNotOpen;
          break;
        }
        txn.set_parent(it->second.open_txn);
        if (it->second.group) dissolve_group(shard, *it->second.group);
        shard.sessions.erase(job.session);
        break;
      }
    }
  } catch (...) {
    r.status = SessionStatus::kError;
    r.samples.clear();
  }
  if (job.done) job.done(std::move(r));
}

void SessionRuntime::join_group(Shard& shard, Session& s,
                                std::uint64_t session_id) {
  BatchGroup* g = nullptr;
  for (auto& up : shard.groups) {
    if (!up->sealed && up->config == s.config &&
        up->members.size() < kGroupWidth) {
      g = up.get();
      break;
    }
  }
  if (!g) {
    shard.groups.push_back(std::make_unique<BatchGroup>());
    g = shard.groups.back().get();
    g->config = s.config;
  }
  s.group = g;
  s.lane = g->members.size();
  g->members.push_back(session_id);
  g->backlog.emplace_back();
}

void SessionRuntime::pump_group(Shard& shard, BatchGroup& g) {
  while (g.sealed && g.queued > 0) {
    std::size_t frames = std::numeric_limits<std::size_t>::max();
    std::size_t deepest = 0;
    bool starved = false;   // some lane has no queued block
    bool mismatch = false;  // front blocks disagree on length
    for (const auto& lane : g.backlog) {
      deepest = std::max(deepest, lane.size());
      if (lane.empty()) {
        starved = true;
        continue;
      }
      const std::size_t len = lane.front().codes.size();
      if (frames == std::numeric_limits<std::size_t>::max()) {
        frames = len;
      } else if (len != frames) {
        mismatch = true;
      }
    }
    if (!starved && !mismatch) {
      run_batch_round(shard, g, frames);
      continue;
    }
    // Unequal lengths can never become runnable by waiting; a starved
    // lane might, unless a peer's backlog already shows the cohort has
    // lost lockstep.
    if (mismatch || (opts_.batch_max_lane_backlog != 0 &&
                     deepest >= opts_.batch_max_lane_backlog)) {
      dissolve_group(shard, g);
      return;
    }
    break;
  }
  if (g.queued == 0) {
    g.blocked_since_us = 0;
  } else if (g.blocked_since_us == 0) {
    g.blocked_since_us = steady_us();
  }
  refresh_batch_blocked(shard);
}

void SessionRuntime::run_batch_round(Shard& shard, BatchGroup& g,
                                     std::size_t frames) {
  static const std::uint32_t round_name = obs::store::intern("session.batch");
  obs::store::TxnScope round_txn(round_name);
  const std::size_t width = g.members.size();
  round_txn.set_value(static_cast<std::int64_t>(frames * width));

  // The round runs in chunks sized so the interleaved buffer stays
  // cache-resident across the bank's stages (the bank carries state
  // between calls, so any chunking of the same stream is bit-exact).
  // Within a chunk both copies run frame-major: the bulk stream stays
  // sequential (one cache line per 8 slots) while the other side fans
  // across `width` lane streams -- lane-major order would touch a fresh
  // line on every store once the chunk outgrows L1.
  constexpr std::size_t kRoundChunkFrames = 1024;
  std::array<const std::int32_t*, kGroupWidth> codes{};
  for (std::size_t lane = 0; lane < width; ++lane) {
    codes[lane] = g.backlog[lane].front().codes.data();
  }
  std::vector<std::vector<std::int64_t>> outs(width);
  for (std::size_t base = 0; base < frames; base += kRoundChunkFrames) {
    const std::size_t chunk = std::min(kRoundChunkFrames, frames - base);
    g.buf.resize(chunk * width);
    std::int64_t* const buf = g.buf.data();
    for (std::size_t f = 0; f < chunk; ++f) {
      for (std::size_t lane = 0; lane < width; ++lane) {
        buf[f * width + lane] = codes[lane][base + f];
      }
    }
    g.bank->process_inplace(g.buf);
    const std::size_t chunk_out = g.buf.size() / width;
    std::array<std::int64_t*, kGroupWidth> dst{};
    for (std::size_t lane = 0; lane < width; ++lane) {
      const std::size_t off = outs[lane].size();
      outs[lane].resize(off + chunk_out);
      dst[lane] = outs[lane].data() + off;
    }
    const std::int64_t* const src = g.buf.data();
    for (std::size_t f = 0; f < chunk_out; ++f) {
      for (std::size_t lane = 0; lane < width; ++lane) {
        dst[lane][f] = src[f * width + lane];
      }
    }
  }
  const std::size_t out_frames = outs.empty() ? 0 : outs[0].size();

  // Deliver per lane, in lane order (deterministic for any worker count:
  // the round itself runs under the shard claim).
  for (std::size_t lane = 0; lane < width; ++lane) {
    SessionJob job = std::move(g.backlog[lane].front());
    g.backlog[lane].pop_front();
    --g.queued;
    SessionResult r;
    r.session = job.session;
    r.op = SessionOp::kData;
    obs::store::TxnScope txn(op_name_id(SessionOp::kData),
                             session_channel(job.session));
    // Keep the session tree intact: per-lane delivery parents to the
    // session's open txn (the round txn records the batch itself).
    auto sit = shard.sessions.find(job.session);
    if (sit != shard.sessions.end()) txn.set_parent(sit->second.open_txn);
    r.samples = std::move(outs[lane]);
    txn.set_value(static_cast<std::int64_t>(out_frames));
    if (job.done) job.done(std::move(r));
  }
  g.blocked_since_us = 0;  // the round is progress; re-arm the timer fresh
}

void SessionRuntime::dissolve_group(Shard& shard, BatchGroup& g) {
  // 1. Land every lane's bank state in its session's scalar chain. The
  // chain parked at open (or rebuilt since) is overwritten wholesale by
  // export_lane, so the lane's stream continues bit-exactly.
  for (std::size_t lane = 0; lane < g.members.size(); ++lane) {
    auto it = shard.sessions.find(g.members[lane]);
    if (it == shard.sessions.end()) continue;
    if (g.sealed) g.bank->export_lane(lane, *it->second.chain);
    it->second.group = nullptr;
  }
  // 2. Detach the backlog, delete the group (replayed jobs must see
  // ungrouped sessions and a groups list without `g`), then replay every
  // queued block through the scalar path in per-lane FIFO order.
  std::vector<std::deque<SessionJob>> backlog;
  backlog.swap(g.backlog);
  for (auto itg = shard.groups.begin(); itg != shard.groups.end(); ++itg) {
    if (itg->get() == &g) {
      shard.groups.erase(itg);
      break;
    }
  }
  for (auto& lane : backlog) {
    while (!lane.empty()) {
      SessionJob job = std::move(lane.front());
      lane.pop_front();
      run_job(shard, job);
    }
  }
  refresh_batch_blocked(shard);
}

void SessionRuntime::flush_stale_groups(Shard& shard, std::int64_t now_us) {
  if (opts_.batch_linger_us <= 0) return;
  std::vector<BatchGroup*> stale;
  for (auto& up : shard.groups) {
    if (up->blocked_since_us != 0 &&
        now_us - up->blocked_since_us >= opts_.batch_linger_us) {
      stale.push_back(up.get());
    }
  }
  for (BatchGroup* g : stale) dissolve_group(shard, *g);
}

void SessionRuntime::refresh_batch_blocked(Shard& shard) {
  std::int64_t min_blocked = 0;
  for (const auto& up : shard.groups) {
    if (up->blocked_since_us != 0 &&
        (min_blocked == 0 || up->blocked_since_us < min_blocked)) {
      min_blocked = up->blocked_since_us;
    }
  }
  shard.batch_blocked_us.store(min_blocked, std::memory_order_relaxed);
}

std::size_t SessionRuntime::drain_pad_frames(
    const decim::DecimationChain& chain) {
  const std::size_t gd = chain.group_delay_input_samples();
  const std::size_t m = chain.total_decimation();
  return ((gd + m - 1) / m) * m;
}

void SessionRuntime::worker_loop() {
  using namespace std::chrono_literals;
  for (;;) {
    // The semaphore is a wake hint, not an exact item count: a worker
    // draining a shard may take items whose credits other workers consume
    // as spurious wake-ups. The timed acquire bounds any lost-wakeup
    // window, so no admitted job can be stranded.
    (void)sem_.try_acquire_for(1ms);
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      sem_.release();  // cascade: wake a peer so it can exit too
      return;
    }
    const std::int64_t now =
        opts_.batch_linger_us > 0 ? steady_us() : 0;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      Shard& sh = *shards_[i];
      // A quiet shard still needs a visit when a lockstep group's backlog
      // has been blocked past the linger budget (no new submission will
      // come along to pump it).
      bool stale = false;
      if (opts_.batch_linger_us > 0) {
        const std::int64_t b =
            sh.batch_blocked_us.load(std::memory_order_relaxed);
        stale = b != 0 && now - b >= opts_.batch_linger_us;
      }
      if (sh.ring.size() == 0 && !stale) continue;
      if (sh.busy.exchange(true, std::memory_order_acquire)) continue;
      SessionJob job;
      while (sh.ring.try_pop(job)) {
        run_job(sh, job);
        job = SessionJob{};  // release payload before the next pop
        pending_.fetch_sub(1, std::memory_order_release);
        publish_inflight();
      }
      if (stale) flush_stale_groups(sh, now);
      sh.busy.store(false, std::memory_order_release);
      // Stranded-item guard: an item pushed while we were finishing the
      // drain may have had its credit consumed by a worker that found the
      // shard busy; re-arm the semaphore so someone comes back.
      if (sh.ring.size() != 0) sem_.release();
    }
  }
}

void SessionRuntime::stop() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) return;
  stop_.store(true, std::memory_order_release);
  sem_.release(static_cast<std::ptrdiff_t>(threads_.size()) + 1);
  for (auto& t : threads_) t.join();
  // Workers drained every admitted job; blocks still queued in lockstep
  // groups flush here (single-threaded now), so every done callback has
  // fired by the time stop() returns.
  for (auto& sh : shards_) {
    while (!sh->groups.empty()) dissolve_group(*sh, *sh->groups.back());
  }
  for (auto& sh : shards_) sh->ring.close();
}

}  // namespace dsadc::runtime
