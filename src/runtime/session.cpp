#include "src/runtime/session.h"

#include <chrono>
#include <stdexcept>

#include "src/obs/metrics.h"
#include "src/obs/store/tracker.h"
#include "src/runtime/multichannel.h"

namespace dsadc::runtime {
namespace {

/// Interned trace-store transaction name per SessionOp (indexed by the
/// enum's underlying value).
std::uint32_t op_name_id(SessionOp op) {
  static const std::uint32_t ids[] = {
      obs::store::intern("session.open"),
      obs::store::intern("session.reconfigure"),
      obs::store::intern("session.data"),
      obs::store::intern("session.drain"),
      obs::store::intern("session.close"),
  };
  return ids[static_cast<std::size_t>(op)];
}

/// The service packs (conn_id << 32) | channel into the session id; the
/// low word is what reads as "channel" in the store.
std::uint32_t session_channel(std::uint64_t session) {
  return static_cast<std::uint32_t>(session & 0xffffffffu);
}

}  // namespace

SessionRuntime::SessionRuntime(Options opts) : opts_(opts) {
  if (opts_.shards == 0) {
    throw std::invalid_argument("SessionRuntime: shards >= 1");
  }
  if (opts_.queue_capacity == 0) {
    throw std::invalid_argument("SessionRuntime: queue_capacity >= 1");
  }
  if (opts_.workers == 0) opts_.workers = configured_threads();
  shards_.reserve(opts_.shards);
  for (std::size_t i = 0; i < opts_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(opts_.queue_capacity));
  }
  threads_.reserve(opts_.workers);
  for (std::size_t i = 0; i < opts_.workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

SessionRuntime::~SessionRuntime() { stop(); }

void SessionRuntime::publish_inflight() const {
  if (!obs::enabled()) return;
  obs::Registry::instance().gauge("service.inflight").set(
      static_cast<double>(pending_.load(std::memory_order_relaxed)));
}

bool SessionRuntime::submit(SessionJob job) {
  if (stop_.load(std::memory_order_acquire)) return false;
  const std::size_t shard_idx = shard_of(job.session);
  Shard& sh = *shards_[shard_idx];
  const bool store_on = obs::store::enabled();
  const std::uint32_t channel =
      store_on ? session_channel(job.session) : obs::store::kNoChannel;
  const std::uint64_t payload = job.codes.size();
  pending_.fetch_add(1, std::memory_order_relaxed);
  bool admitted = false;
  if (opts_.policy == Overload::kShed && job.op == SessionOp::kData) {
    admitted = sh.ring.try_push(job);
    if (!admitted && store_on) {
      static const std::uint32_t shed_id = obs::store::intern("ring.shed");
      obs::store::Event e;
      e.category = obs::store::Category::kRuntime;
      e.name = shed_id;
      e.channel = channel;
      e.value = static_cast<std::int64_t>(shard_idx);
      e.aux = payload;
      obs::store::emit(e);
    }
  } else if (store_on && !sh.ring.try_push(job)) {
    // Full ring under the blocking policy: record how long backpressure
    // held this submitter.
    const std::int64_t t0 = obs::store::now_us();
    admitted = sh.ring.push(std::move(job));
    static const std::uint32_t stall_id = obs::store::intern("ring.stall");
    obs::store::Event e;
    e.category = obs::store::Category::kRuntime;
    e.name = stall_id;
    e.ts_us = t0;
    e.dur_us = obs::store::now_us() - t0;
    e.channel = channel;
    e.value = static_cast<std::int64_t>(shard_idx);
    e.aux = payload;
    obs::store::emit(e);
  } else if (!store_on) {
    admitted = sh.ring.push(std::move(job));
  } else {
    admitted = true;  // store_on and the try_push above took the job
  }
  if (!admitted) {
    pending_.fetch_sub(1, std::memory_order_relaxed);
    publish_inflight();
    return false;
  }
  publish_inflight();
  sem_.release();
  return true;
}

void SessionRuntime::run_job(Shard& shard, SessionJob& job) {
  SessionResult r;
  r.session = job.session;
  r.op = job.op;
  // One store transaction per job: every event the chain emits while the
  // job runs (stage boundaries, fx hits) inherits this id and channel.
  obs::store::TxnScope txn(op_name_id(job.op), session_channel(job.session));
  try {
    auto it = shard.sessions.find(job.session);
    switch (job.op) {
      case SessionOp::kOpen: {
        if (it != shard.sessions.end()) {
          r.status = SessionStatus::kAlreadyOpen;
          break;
        }
        Session s;
        s.chain = std::make_unique<decim::DecimationChain>(
            job.config ? *job.config : decim::paper_chain_config());
        s.open_txn = txn.id();
        shard.sessions.emplace(job.session, std::move(s));
        break;
      }
      case SessionOp::kReconfigure: {
        if (it == shard.sessions.end()) {
          r.status = SessionStatus::kNotOpen;
          break;
        }
        txn.set_parent(it->second.open_txn);
        // Reconfiguration swaps in a freshly built chain: filter state
        // never carries across a format/coefficient change.
        it->second.chain = std::make_unique<decim::DecimationChain>(
            job.config ? *job.config : decim::paper_chain_config());
        break;
      }
      case SessionOp::kData: {
        if (it == shard.sessions.end()) {
          r.status = SessionStatus::kNotOpen;
          break;
        }
        txn.set_parent(it->second.open_txn);
        r.samples = it->second.chain->process(job.codes);
        txn.set_value(static_cast<std::int64_t>(r.samples.size()));
        break;
      }
      case SessionOp::kDrain: {
        if (it == shard.sessions.end()) {
          r.status = SessionStatus::kNotOpen;
          break;
        }
        txn.set_parent(it->second.open_txn);
        const std::vector<std::int32_t> zeros(
            drain_pad_frames(*it->second.chain), 0);
        r.samples = it->second.chain->process(zeros);
        txn.set_value(static_cast<std::int64_t>(r.samples.size()));
        break;
      }
      case SessionOp::kClose: {
        if (it == shard.sessions.end()) {
          r.status = SessionStatus::kNotOpen;
          break;
        }
        txn.set_parent(it->second.open_txn);
        shard.sessions.erase(it);
        break;
      }
    }
  } catch (...) {
    r.status = SessionStatus::kError;
    r.samples.clear();
  }
  if (job.done) job.done(std::move(r));
}

std::size_t SessionRuntime::drain_pad_frames(
    const decim::DecimationChain& chain) {
  const std::size_t gd = chain.group_delay_input_samples();
  const std::size_t m = chain.total_decimation();
  return ((gd + m - 1) / m) * m;
}

void SessionRuntime::worker_loop() {
  using namespace std::chrono_literals;
  for (;;) {
    // The semaphore is a wake hint, not an exact item count: a worker
    // draining a shard may take items whose credits other workers consume
    // as spurious wake-ups. The timed acquire bounds any lost-wakeup
    // window, so no admitted job can be stranded.
    (void)sem_.try_acquire_for(1ms);
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      sem_.release();  // cascade: wake a peer so it can exit too
      return;
    }
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      Shard& sh = *shards_[i];
      if (sh.ring.size() == 0) continue;
      if (sh.busy.exchange(true, std::memory_order_acquire)) continue;
      SessionJob job;
      while (sh.ring.try_pop(job)) {
        run_job(sh, job);
        job = SessionJob{};  // release payload before the next pop
        pending_.fetch_sub(1, std::memory_order_release);
        publish_inflight();
      }
      sh.busy.store(false, std::memory_order_release);
      // Stranded-item guard: an item pushed while we were finishing the
      // drain may have had its credit consumed by a worker that found the
      // shard busy; re-arm the semaphore so someone comes back.
      if (sh.ring.size() != 0) sem_.release();
    }
  }
}

void SessionRuntime::stop() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) return;
  stop_.store(true, std::memory_order_release);
  sem_.release(static_cast<std::ptrdiff_t>(threads_.size()) + 1);
  for (auto& t : threads_) t.join();
  for (auto& sh : shards_) sh->ring.close();
}

}  // namespace dsadc::runtime
