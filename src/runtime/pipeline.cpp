#include "src/runtime/pipeline.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "src/obs/metrics.h"
#include "src/runtime/multichannel.h"
#include "src/runtime/spsc.h"

namespace dsadc::runtime {
namespace {

using Block = std::vector<std::int64_t>;

int chain_gain_log2(const std::vector<design::CicSpec>& stages) {
  double g = 0.0;
  for (const auto& s : stages) {
    g += s.order * std::log2(static_cast<double>(s.decimation));
  }
  const int gi = static_cast<int>(std::lround(g));
  if (std::abs(g - gi) > 1e-9) {
    throw std::invalid_argument(
        "PipelinedChain: CIC gain must be a power of two");
  }
  return gi;
}

const std::vector<double>& queue_depth_bounds() {
  static const std::vector<double> bounds{0, 1, 2, 4, 8, 16, 32};
  return bounds;
}

}  // namespace

struct CicStage final : PipelinedChain::Stage {
  decim::CicDecimator d;
  explicit CicStage(const design::CicSpec& spec) : d(spec) {}
  void run(Block& block) override { d.process_inplace(block); }
  void reset() override { d.reset(); }
};

struct RenormStage final : PipelinedChain::Stage {
  decim::soa::Requant rq;
  explicit RenormStage(const decim::ChainConfig& config)
      : rq(chain_gain_log2(config.cic_stages), config.hbf_in_format,
           fx::Rounding::kRoundNearest, fx::event_counters("chain_hbf_in")) {}
  void run(Block& block) override {
    decim::soa::RequantTally tally;
    for (auto& v : block) v = decim::soa::requantize(v, rq, tally);
    tally.flush(rq);
  }
  void reset() override {}
};

struct HbfStage final : PipelinedChain::Stage {
  decim::SaramakiHbfDecimator h;
  Block tmp;
  explicit HbfStage(const decim::ChainConfig& config)
      : h(config.hbf, config.hbf_in_format, config.hbf_out_format,
          config.hbf_coeff_frac_bits) {}
  void run(Block& block) override {
    h.process_into(block, tmp);
    block.swap(tmp);
  }
  void reset() override { h.reset(); }
};

struct ScalerStage final : PipelinedChain::Stage {
  decim::ScalingStage s;
  explicit ScalerStage(const decim::ChainConfig& config)
      : s(config.scale, config.hbf_out_format, config.scaler_out_format,
          /*frac_bits=*/14, /*max_digits=*/8) {}
  void run(Block& block) override { s.process_inplace(block); }
  void reset() override {}  // stateless
};

struct EqualizerStage final : PipelinedChain::Stage {
  decim::FirDecimator f;
  Block tmp;
  explicit EqualizerStage(const decim::ChainConfig& config)
      : f(decim::FixedTaps::from_real(config.equalizer_taps,
                                      config.equalizer_frac_bits),
          /*decimation=*/1, config.scaler_out_format, config.output_format) {}
  void run(Block& block) override {
    f.process_into(block, tmp);
    block.swap(tmp);
  }
  void reset() override { f.reset(); }
};

PipelinedChain::PipelinedChain(const decim::ChainConfig& config,
                               std::size_t block_frames,
                               std::size_t queue_capacity)
    : block_frames_(block_frames), queue_capacity_(queue_capacity) {
  if (block_frames_ == 0) {
    throw std::invalid_argument("PipelinedChain: block_frames >= 1");
  }
  if (queue_capacity_ == 0) {
    throw std::invalid_argument("PipelinedChain: queue_capacity >= 1");
  }
  for (const auto& spec : config.cic_stages) {
    stages_.push_back(std::make_unique<CicStage>(spec));
  }
  stages_.push_back(std::make_unique<RenormStage>(config));
  stages_.push_back(std::make_unique<HbfStage>(config));
  stages_.push_back(std::make_unique<ScalerStage>(config));
  stages_.push_back(std::make_unique<EqualizerStage>(config));
}

PipelinedChain::~PipelinedChain() = default;

std::size_t PipelinedChain::stage_count() const { return stages_.size(); }

void PipelinedChain::reset() {
  for (auto& s : stages_) s->reset();
}

std::vector<std::int64_t> PipelinedChain::process(
    std::span<const std::int32_t> codes) {
  // Chop the input into fixed-size blocks; the last one may be short.
  std::vector<Block> blocks;
  blocks.reserve(codes.size() / block_frames_ + 1);
  for (std::size_t off = 0; off < codes.size(); off += block_frames_) {
    const std::size_t n = std::min(block_frames_, codes.size() - off);
    blocks.emplace_back(codes.begin() + static_cast<std::ptrdiff_t>(off),
                        codes.begin() + static_cast<std::ptrdiff_t>(off + n));
  }

  std::vector<std::int64_t> out;
  out.reserve(codes.size() / 16 + 8);

  const std::size_t workers =
      std::min(configured_threads(), stages_.size());
  if (workers <= 1 || blocks.size() <= 1) {
    // Serial degenerate case: same stage sequence, inline.
    for (auto& b : blocks) {
      for (auto& s : stages_) s->run(b);
      out.insert(out.end(), b.begin(), b.end());
    }
    return out;
  }
  run_pipeline(workers, blocks, out);
  return out;
}

void PipelinedChain::run_pipeline(
    std::size_t workers, std::vector<std::vector<std::int64_t>>& blocks,
    std::vector<std::int64_t>& out) {
  // Worker w consumes ring[w], runs its contiguous stage run, produces
  // into ring[w + 1]. The calling thread is both the producer of ring[0]
  // and the consumer of ring[workers]; during the feed phase it drains
  // the output ring opportunistically, so fixed-capacity rings can never
  // deadlock the loop.
  const std::size_t n_rings = workers + 1;
  std::vector<std::unique_ptr<SpscRing<Block>>> rings;
  rings.reserve(n_rings);
  for (std::size_t i = 0; i < n_rings; ++i) {
    rings.push_back(std::make_unique<SpscRing<Block>>(queue_capacity_));
  }

  const bool obs_on = obs::enabled();
  std::vector<obs::Histogram*> depth(n_rings, nullptr);
  if (obs_on) {
    auto& reg = obs::Registry::instance();
    for (std::size_t i = 0; i < n_rings; ++i) {
      depth[i] = &reg.histogram("runtime.queue_depth.q" + std::to_string(i),
                                queue_depth_bounds());
    }
  }
  const auto push_observed = [&](std::size_t ring, Block& b) {
    rings[ring]->push(std::move(b));
    if (depth[ring] != nullptr) {
      depth[ring]->observe(static_cast<double>(rings[ring]->size()));
    }
  };

  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;

  const auto worker_fn = [&](std::size_t w) {
    const std::size_t s_begin = w * stages_.size() / workers;
    const std::size_t s_end = (w + 1) * stages_.size() / workers;
    Block b;
    while (rings[w]->pop(b)) {
      if (failed.load(std::memory_order_relaxed)) continue;  // drain only
      try {
        for (std::size_t s = s_begin; s < s_end; ++s) stages_[s]->run(b);
        push_observed(w + 1, b);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!error) error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
      }
    }
    rings[w + 1]->close();
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker_fn, w);

  // Feed phase: interleave pushes with opportunistic output drains.
  SpscRing<Block>& in_ring = *rings[0];
  SpscRing<Block>& out_ring = *rings[workers];
  std::size_t pushed = 0;
  Block got;
  while (pushed < blocks.size() && !failed.load(std::memory_order_relaxed)) {
    if (in_ring.try_push(blocks[pushed])) {
      ++pushed;
      if (depth[0] != nullptr) {
        depth[0]->observe(static_cast<double>(in_ring.size()));
      }
      continue;
    }
    if (out_ring.try_pop(got)) {
      out.insert(out.end(), got.begin(), got.end());
      continue;
    }
    std::this_thread::yield();
  }
  in_ring.close();

  // Drain phase: pop() returns false only once the last worker closed
  // the output ring and it is empty.
  while (out_ring.pop(got)) {
    out.insert(out.end(), got.begin(), got.end());
  }
  for (auto& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace dsadc::runtime
