// Replay interpreter for the emitted Verilog subset.
//
// The flow's last untested hop is the Verilog *text* itself: the IR
// simulator proves the netlist, but a bug in the emitter would go unseen
// until a real simulator ran the files. This module closes the loop
// in-repo: it parses the exact subset `emit_verilog` produces (signed
// wires/regs, assigns with + - unary- <<< >>> and the saturation ternary,
// posedge always blocks on divided clocks) and simulates it cycle by
// cycle, so tests can assert emitted-text == IR-simulation bit-for-bit -
// the role the paper's auto-generated VCS testbenches play.
#pragma once

#include <cstdint>
#include <memory>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace dsadc::rtl {

/// A parsed-and-executable Verilog module.
class VerilogModule {
 public:
  /// Parse the module source; throws std::runtime_error with a line
  /// number on anything outside the emitted subset.
  static VerilogModule parse(const std::string& source);

  const std::string& name() const { return name_; }
  std::vector<std::string> input_ports() const;
  std::vector<std::string> output_ports() const;
  /// Clock divider of each clk_divN port found.
  std::vector<int> clock_dividers() const;

  /// Simulate: feed one stream per (non-clock) input; each stream sample
  /// is consumed on the corresponding divided-clock edge of the input's
  /// driving domain (the base clock for this emitter). Returns the output
  /// port streams, sampled at each base tick.
  std::map<std::string, std::vector<std::int64_t>> run(
      const std::map<std::string, std::span<const std::int64_t>>& inputs,
      std::size_t base_ticks);

  struct Expr;  // opaque AST node (defined in vparse.cpp)

 private:

  struct Signal {
    int width = 1;
    bool is_reg = false;
    int clock_div = 0;            // for regs: the driving clock divider
    int expr_index = -1;          // assign RHS (wires) or NBA RHS (regs)
    bool is_input = false;
    bool is_output = false;
  };

  std::string name_;
  std::map<std::string, Signal> signals_;
  std::vector<std::string> order_;  ///< declaration order (evaluation order)
  std::vector<std::shared_ptr<Expr>> exprs_;

  friend struct VerilogParserImpl;
};

}  // namespace dsadc::rtl
