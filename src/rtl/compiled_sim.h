// Compiled multi-rate simulator for the hardware IR.
//
// The interpreted Simulator (sim.h) walks every node at every base tick
// and gates slow clock domains with a per-node modulo test -- faithful,
// but it pays for the paper's multi-rate structure instead of exploiting
// it. This engine performs an elaboration pass once per netlist:
//
//   * the clock-domain period P = lcm over nodes of clock_div is computed
//     (the same fold src/analyze/range.cpp uses for transfer analysis)
//     and one flat schedule of active tape entries is precomputed per
//     phase, so a base tick touches only the nodes whose domain fires on
//     that phase;
//   * the Node graph is flattened into a struct-of-arrays "op tape":
//     operand NodeIds are pre-resolved to dense value-array slots (with a
//     pinned zero slot standing in for kInvalidNode), two's-complement
//     wrap widths are pre-converted to shift counts, constants are
//     pre-evaluated, and input streams are pre-bound to cursors instead
//     of per-tick map lookups;
//   * constants are hoisted off the tape entirely: a kConst node commits
//     the same value on every active tick, so both run modes commit each
//     constant once on the first tick (after that tick's register
//     captures, exactly where the interpreter's first commit lands) and
//     walk constant-free per-phase tapes from then on;
//   * switching-activity accounting (per-node Hamming toggles, the
//     PrimeTime-PX stimulus substitute) is an opt-in run mode. Update
//     counts need no tape walk at all -- a node in domain d updates
//     exactly ceil(ticks / d) times -- so they are filled analytically,
//     and the activity tape only adds one popcount accumulate per op over
//     the pure-dataflow path.
//
// On top of the tape interpreter sits an optional JIT codegen engine
// (codegen.h): the per-phase tapes are emitted as straight-line C++ once
// per netlist, compiled with the system compiler, cached by content hash
// and dlopen'd. Construction falls back to the tape engine whenever
// codegen is off, no compiler is available, or the emitter refuses the
// netlist; engine() / engine_detail() report what happened. Both engines
// are bit-identical to Simulator::run on every netlist -- outputs always,
// and the Activity counters whenever activity mode is on. The interpreted
// simulator stays as the reference model; tests/test_compiled_sim.cpp,
// tests/test_codegen.cpp and the lint_rtl --sim-crosscheck gate hold the
// engines together.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/rtl/ir.h"
#include "src/rtl/sim.h"

namespace dsadc::rtl {

class CompiledSimulator;

namespace codegen {
class CompiledKernel;
struct EmitResult;
/// Befriended accessor for the emitter (defined in codegen.cpp); keeps the
/// tape internals out of the public surface.
struct EmitAccess;
/// Render the elaborated tape as a self-contained C++ translation unit.
EmitResult emit_source(const CompiledSimulator& sim);
}  // namespace codegen

/// Run-time knobs for a compiled run.
struct CompiledRunOptions {
  /// Record per-node toggle/update counts (exact match with the
  /// interpreted simulator). Off by default: the pure-dataflow path skips
  /// all accounting and leaves SimResult::activity counters zeroed.
  bool activity = false;
};

/// Which backend a CompiledSimulator ended up with.
enum class SimEngine {
  kTape,     ///< flat-tape switch-dispatch interpreter (always available)
  kCodegen,  ///< dlopen'd straight-line C++ kernel (codegen.h)
};

/// Construction-time knobs.
struct CompiledSimOptions {
  enum class Codegen {
    kAuto,  ///< follow DSADC_CODEGEN (off unless the env says on)
    kOff,   ///< tape engine only
    kOn,    ///< request codegen (DSADC_CODEGEN=off still vetoes; any
            ///< toolchain failure falls back to the tape engine)
  };
  Codegen codegen = Codegen::kAuto;
};

class CompiledSimulator {
 public:
  /// Elaborates the module into phase schedules and the op tape, then
  /// (when requested) builds the codegen kernel. The module must stay
  /// alive no longer than needed for construction; the compiled form is
  /// self-contained afterwards.
  explicit CompiledSimulator(const Module& module,
                             const CompiledSimOptions& options = {});

  /// Drive the module exactly like Simulator::run: as many base ticks as
  /// the input streams allow, one sample consumed per domain tick of each
  /// bound kInput node. Thread-safe: run() keeps all mutable state on the
  /// call stack, so one compiled netlist can serve many threads.
  SimResult run(const std::map<NodeId, std::span<const std::int64_t>>& inputs,
                const CompiledRunOptions& options = {}) const;

  /// Clock-domain period: lcm over nodes of clock_div.
  int period() const { return period_; }
  /// Active tape entries per period, summed over phases; constants are
  /// hoisted off the tape (both run modes). The interpreted simulator's
  /// equivalent cost is nodes * period.
  std::size_t scheduled_ops_per_period() const;

  /// Selected backend; kTape unless codegen was requested and the whole
  /// emit/compile/load pipeline succeeded.
  SimEngine engine() const { return engine_; }
  /// Why the engine is what it is: the fallback reason for kTape after a
  /// codegen attempt, empty for a plain tape construction.
  const std::string& engine_detail() const { return engine_detail_; }
  /// kCodegen only: the kernel came straight out of the content-hash
  /// cache (no compiler run).
  bool codegen_cache_hit() const { return codegen_cache_hit_; }
  /// kCodegen only: path of the cached shared object (tests corrupt it to
  /// exercise eviction).
  const std::string& codegen_so_path() const { return codegen_so_path_; }

 private:
  friend struct codegen::EmitAccess;

  /// One op on the tape, pre-resolved for the phase loops. Kept flat and
  /// index-based so the per-phase lists walk contiguous memory.
  struct Op {
    OpKind kind = OpKind::kConst;
    std::uint8_t shift = 0;      ///< kShl/kShr amount
    std::uint8_t wrap_shift = 0; ///< 64 - width, for two's-complement wrap
    std::uint8_t width = 1;      ///< node width (activity masks)
    std::int32_t dst = 0;        ///< value-array slot (node id + 1)
    std::int32_t a = 0;          ///< operand slot (0 = constant zero)
    std::int32_t b = 0;          ///< second operand slot
    /// kInput/kOutput/kRequant/kReg/kDecimate/kConst: side-table index;
    /// kMux: select operand's value slot.
    std::int32_t aux = -1;
  };

  /// Register/decimate capture: next_state[state] = value[src] at the
  /// start of every tick the node's domain fires on.
  struct Capture {
    std::int32_t state = 0;  ///< index into next_state array
    std::int32_t src = 0;    ///< value-array slot
  };

  /// Requantizer parameters (kRequant nodes only).
  struct RequantParams {
    int src_frac = 0;
    fx::Format fmt{1, 0};
    fx::Rounding rounding = fx::Rounding::kTruncate;
    fx::Overflow overflow = fx::Overflow::kWrap;
  };

  struct Phase {
    std::vector<Capture> captures;
    std::vector<Op> ops;  ///< constant-free tape, creation order
  };

  template <bool kActivity>
  void tick_loop(std::uint64_t ticks, std::vector<std::int64_t>& value,
                 std::vector<std::int64_t>& next_state,
                 std::vector<std::span<const std::int64_t>>& in_streams,
                 std::vector<std::size_t>& in_cursor,
                 std::vector<std::vector<std::int64_t>>& out_streams,
                 Activity* activity) const;

  /// Commit every constant's value slot, counting the first-commit toggle
  /// when `activity` is non-null. Runs once, on the first tick, after that
  /// tick's captures (the interpreter's registers see the pre-commit zeros
  /// at t = 0).
  void commit_consts(std::vector<std::int64_t>& value,
                     Activity* activity) const;

  /// Analytic update counts: a node in domain d is active on
  /// ceil(ticks / d) of the first `ticks` base ticks.
  void fill_updates(std::uint64_t ticks, Activity* activity) const;

  SimResult run_codegen(
      const std::map<NodeId, std::span<const std::int64_t>>& inputs,
      const CompiledRunOptions& options) const;

  std::size_t node_count_ = 0;
  int period_ = 1;
  std::vector<Phase> phases_;
  std::vector<RequantParams> requants_;
  std::vector<std::int64_t> const_values_;
  std::vector<std::int32_t> const_slots_;   ///< value slot per const
  std::vector<std::uint8_t> const_widths_;  ///< width per const (toggles)
  std::vector<NodeId> input_nodes_;         ///< aux -> kInput node id
  std::vector<int> input_clock_div_;
  std::vector<std::string> input_names_;
  std::vector<NodeId> output_nodes_;        ///< aux -> kOutput node id
  std::vector<int> output_clock_div_;
  std::vector<int> node_clock_div_;         ///< per node (analytic updates)
  std::size_t state_count_ = 0;             ///< kReg/kDecimate slots

  // Codegen backend state (kTape constructions leave all of it empty).
  std::shared_ptr<codegen::CompiledKernel> kernel_;
  SimEngine engine_ = SimEngine::kTape;
  std::string engine_detail_;
  std::string codegen_so_path_;
  bool codegen_cache_hit_ = false;
};

}  // namespace dsadc::rtl
