// Compiled multi-rate simulator for the hardware IR.
//
// The interpreted Simulator (sim.h) walks every node at every base tick
// and gates slow clock domains with a per-node modulo test -- faithful,
// but it pays for the paper's multi-rate structure instead of exploiting
// it. This engine performs an elaboration pass once per netlist:
//
//   * the clock-domain period P = lcm over nodes of clock_div is computed
//     (the same fold src/analyze/range.cpp uses for transfer analysis)
//     and one flat schedule of active tape entries is precomputed per
//     phase, so a base tick touches only the nodes whose domain fires on
//     that phase;
//   * the Node graph is flattened into a struct-of-arrays "op tape":
//     operand NodeIds are pre-resolved to dense value-array slots (with a
//     pinned zero slot standing in for kInvalidNode), two's-complement
//     wrap widths are pre-converted to shift counts, constants are
//     pre-evaluated, and input streams are pre-bound to cursors instead
//     of per-tick map lookups;
//   * switching-activity accounting (per-node Hamming toggles, the
//     PrimeTime-PX stimulus substitute) is an opt-in run mode, so the
//     default path is pure dataflow with no popcount in the hot loop;
//   * constants are hoisted off the default tape: kConst nodes commit the
//     same value on every active tick, so the pure-dataflow path preloads
//     their value slots once and walks a shorter per-phase tape without
//     them. Activity mode keeps the full tape (constant commits are
//     observable in the update counters).
//
// The result is bit-identical to Simulator::run on every netlist --
// outputs always, and the Activity counters whenever activity mode is
// on. The interpreted simulator stays as the reference model;
// tests/test_compiled_sim.cpp and the lint_rtl --sim-crosscheck gate
// hold the two engines together.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "src/rtl/ir.h"
#include "src/rtl/sim.h"

namespace dsadc::rtl {

/// Run-time knobs for a compiled run.
struct CompiledRunOptions {
  /// Record per-node toggle/update counts (exact match with the
  /// interpreted simulator). Off by default: the pure-dataflow path skips
  /// all accounting and leaves SimResult::activity counters zeroed.
  bool activity = false;
};

class CompiledSimulator {
 public:
  /// Elaborates the module into phase schedules and the op tape. The
  /// module must stay alive no longer than needed for construction; the
  /// compiled form is self-contained afterwards.
  explicit CompiledSimulator(const Module& module);

  /// Drive the module exactly like Simulator::run: as many base ticks as
  /// the input streams allow, one sample consumed per domain tick of each
  /// bound kInput node. Thread-safe: run() keeps all mutable state on the
  /// call stack, so one compiled netlist can serve many threads.
  SimResult run(const std::map<NodeId, std::span<const std::int64_t>>& inputs,
                const CompiledRunOptions& options = {}) const;

  /// Clock-domain period: lcm over nodes of clock_div.
  int period() const { return period_; }
  /// Active tape entries per period on the default (pure-dataflow) path,
  /// summed over phases; constants are hoisted off this tape. The
  /// interpreted simulator's equivalent cost is nodes * period.
  std::size_t scheduled_ops_per_period() const;
  /// Tape entries per period in activity mode (full tape, constants in).
  std::size_t scheduled_ops_per_period_activity() const;

 private:
  /// One op on the tape, pre-resolved for the phase loops. Kept flat and
  /// index-based so the per-phase lists walk contiguous memory.
  struct Op {
    OpKind kind = OpKind::kConst;
    std::uint8_t shift = 0;      ///< kShl/kShr amount
    std::uint8_t wrap_shift = 0; ///< 64 - width, for two's-complement wrap
    std::uint8_t width = 1;      ///< node width (activity masks)
    std::int32_t dst = 0;        ///< value-array slot (node id + 1)
    std::int32_t a = 0;          ///< operand slot (0 = constant zero)
    std::int32_t b = 0;          ///< second operand slot
    /// kInput/kOutput/kRequant/kReg/kDecimate/kConst: side-table index;
    /// kMux: select operand's value slot.
    std::int32_t aux = -1;
  };

  /// Register/decimate capture: next_state[state] = value[src] at the
  /// start of every tick the node's domain fires on.
  struct Capture {
    std::int32_t state = 0;  ///< index into next_state array
    std::int32_t src = 0;    ///< value-array slot
  };

  /// Requantizer parameters (kRequant nodes only).
  struct RequantParams {
    int src_frac = 0;
    fx::Format fmt{1, 0};
    fx::Rounding rounding = fx::Rounding::kTruncate;
    fx::Overflow overflow = fx::Overflow::kWrap;
  };

  struct Phase {
    std::vector<Capture> captures;
    std::vector<Op> ops;       ///< full tape (activity mode), creation order
    std::vector<Op> fast_ops;  ///< default tape: ops minus hoisted consts
  };

  template <bool kActivity>
  void tick_loop(std::uint64_t ticks, std::vector<std::int64_t>& value,
                 std::vector<std::int64_t>& next_state,
                 std::vector<std::span<const std::int64_t>>& in_streams,
                 std::vector<std::size_t>& in_cursor,
                 std::vector<std::vector<std::int64_t>>& out_streams,
                 Activity* activity) const;

  std::size_t node_count_ = 0;
  int period_ = 1;
  std::vector<Phase> phases_;
  std::vector<RequantParams> requants_;
  std::vector<std::int64_t> const_values_;
  std::vector<std::int32_t> const_slots_;  ///< value slot per const (preload)
  std::vector<NodeId> input_nodes_;        ///< aux -> kInput node id
  std::vector<int> input_clock_div_;
  std::vector<std::string> input_names_;
  std::vector<NodeId> output_nodes_;       ///< aux -> kOutput node id
  std::vector<int> output_clock_div_;
  std::size_t state_count_ = 0;            ///< kReg/kDecimate slots
};

}  // namespace dsadc::rtl
