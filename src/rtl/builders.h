// Lowering of each decimation-filter stage into the hardware IR.
//
// This is the HDL-Coder substitute of the flow: the same designed
// coefficients that drive the behavioral models are lowered to adder/
// register netlists (CSD shift-add multipliers, symmetric pre-adders,
// Hogenauer integrator/comb sections), which are then simulated
// bit-exactly, emitted as Verilog, and synthesized by the cost model.
#pragma once

#include <memory_resource>
#include <string>
#include <utility>
#include <vector>

#include "src/decimator/chain.h"
#include "src/filterdesign/cic.h"
#include "src/filterdesign/saramaki.h"
#include "src/fixedpoint/csd.h"
#include "src/rtl/ir.h"

namespace dsadc::rtl {

/// Hardware options honoured by the builders (Section IV techniques).
struct BuildOptions {
  bool pipelined = true;  ///< pipeline register at each rate boundary
  /// Retiming flag: annotation only - it does not change the arithmetic
  /// (retiming is function-preserving); the synthesis model applies a
  /// glitch-activity penalty to non-retimed combinational adders.
  bool retimed = true;
  /// Arena for the elaborated netlists (nullptr: default heap). Must
  /// outlive every module built from it; a monotonic_buffer_resource makes
  /// elaborating many generated chains allocation-cheap (see
  /// bench_perf_throughput's elaborate benchmarks).
  std::pmr::memory_resource* arena = nullptr;
};

/// Result of building one stage: the module plus its port ids. The module
/// is constructed directly on the requested arena (modules are only ever
/// move-constructed afterwards, which preserves the allocator; move
/// *assignment* across unequal pmr allocators would silently copy nodes
/// back onto the destination resource).
struct BuiltStage {
  explicit BuiltStage(std::string name = "(unnamed)",
                      std::pmr::memory_resource* arena = nullptr)
      : module(std::move(name), arena) {}
  Module module;
  NodeId in = kInvalidNode;
  NodeId out = kInvalidNode;
  BuildOptions options;
};

/// Hogenauer Sinc^K decimator. `clock_div` is the divider of the stage's
/// input clock from the chain base clock.
BuiltStage build_cic(const design::CicSpec& spec, int clock_div = 1,
                     BuildOptions options = {});

/// Saramaki tapped-cascade halfband decimator, bit-compatible with
/// decim::SaramakiHbfDecimator (same formats and rounding points).
BuiltStage build_saramaki_hbf(const design::SaramakiHbf& design,
                              fx::Format in_fmt, fx::Format out_fmt,
                              int coeff_frac_bits, int guard_frac_bits,
                              int clock_div, BuildOptions options = {});

/// CSD Horner scaling stage, bit-compatible with decim::ScalingStage.
BuiltStage build_scaler(const fx::Csd& csd, int csd_frac_bits,
                        fx::Format in_fmt, fx::Format out_fmt, int clock_div,
                        BuildOptions options = {});

/// Symmetric-FIR stage (the equalizer), bit-compatible with
/// decim::FirDecimator at decimation 1: symmetric pre-adders + CSD
/// multipliers + adder tree.
BuiltStage build_symmetric_fir(const std::vector<double>& taps,
                               int coeff_frac_bits, fx::Format in_fmt,
                               fx::Format out_fmt, int clock_div,
                               BuildOptions options = {});

/// The full chain as one module (input: 4-bit codes at the base clock;
/// output: 14-bit samples at base/16), plus per-stage modules for the
/// per-stage power table.
struct BuiltChain {
  explicit BuiltChain(std::pmr::memory_resource* arena = nullptr)
      : full("decimation_chain", arena) {}
  Module full;
  NodeId in = kInvalidNode;
  NodeId out = kInvalidNode;
  std::vector<BuiltStage> stages;       ///< one module per stage
  std::vector<std::string> stage_names;
};

BuiltChain build_chain(const decim::ChainConfig& config,
                       BuildOptions options = {});

}  // namespace dsadc::rtl
