#include "src/rtl/compiled_sim.h"

#include <bit>
#include <numeric>
#include <stdexcept>

#include "src/obs/trace.h"
#include "src/rtl/codegen.h"

namespace dsadc::rtl {
namespace {

// Clock periods are products of the chain's decimation factors (16 for the
// paper chain); the cap only guards against pathological hand-built
// netlists whose schedule tables would not fit in memory.
constexpr int kMaxPeriod = 1 << 20;

inline std::uint64_t hamming(std::int64_t a, std::int64_t b, int width) {
  const std::uint64_t mask =
      width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
  std::uint64_t x =
      (static_cast<std::uint64_t>(a) ^ static_cast<std::uint64_t>(b)) & mask;
#if defined(__POPCNT__)
  return static_cast<std::uint64_t>(std::popcount(x));
#else
  // SWAR popcount: without -mpopcnt, std::popcount lowers to a libgcc call
  // whose register clobbers dominate the activity loop. Twelve inline ops
  // beat the call by ~3x on the paper-chain activity benchmark.
  x -= (x >> 1) & 0x5555555555555555ull;
  x = (x & 0x3333333333333333ull) + ((x >> 2) & 0x3333333333333333ull);
  x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0full;
  return (x * 0x0101010101010101ull) >> 56;
#endif
}

/// Two's-complement wrap to width via a pre-computed shift pair; matches
/// fx::wrap_to bit-for-bit for widths in [1, 62].
inline std::int64_t wrap_shift(std::int64_t v, int shift) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(v) << shift) >>
         shift;
}

}  // namespace

CompiledSimulator::CompiledSimulator(const Module& module,
                                     const CompiledSimOptions& options) {
  const auto& nodes = module.nodes();
  node_count_ = nodes.size();

  period_ = 1;
  node_clock_div_.reserve(node_count_);
  for (const Node& node : nodes) {
    if (node.clock_div < 1) {
      throw std::invalid_argument("CompiledSimulator: clock_div must be >= 1");
    }
    node_clock_div_.push_back(node.clock_div);
    period_ = static_cast<int>(
        std::lcm<std::int64_t>(period_, node.clock_div));
    if (period_ > kMaxPeriod) {
      throw std::invalid_argument(
          "CompiledSimulator: clock-domain period exceeds the schedule cap");
    }
  }

  // Build the op tape, one entry per node, operands resolved to value
  // slots (slot 0 pinned to zero for kInvalidNode).
  std::vector<Op> tape(node_count_);
  std::vector<std::int32_t> state_slot(node_count_, -1);
  for (std::size_t i = 0; i < node_count_; ++i) {
    const Node& node = nodes[i];
    Op& op = tape[i];
    op.kind = node.kind;
    op.dst = static_cast<std::int32_t>(i) + 1;
    op.a = node.a == kInvalidNode ? 0 : node.a + 1;
    op.b = node.b == kInvalidNode ? 0 : node.b + 1;
    op.width = static_cast<std::uint8_t>(node.width);
    op.wrap_shift = static_cast<std::uint8_t>(64 - node.width);
    switch (node.kind) {
      case OpKind::kInput:
        op.aux = static_cast<std::int32_t>(input_nodes_.size());
        input_nodes_.push_back(static_cast<NodeId>(i));
        input_clock_div_.push_back(node.clock_div);
        input_names_.push_back(node.name);
        break;
      case OpKind::kConst:
        op.aux = static_cast<std::int32_t>(const_values_.size());
        const_values_.push_back(node.value);
        const_slots_.push_back(op.dst);
        const_widths_.push_back(op.width);
        break;
      case OpKind::kMux:
        op.aux = node.c == kInvalidNode ? 0 : node.c + 1;
        break;
      case OpKind::kShl:
      case OpKind::kShr:
        op.shift = static_cast<std::uint8_t>(node.amount);
        break;
      case OpKind::kReg:
      case OpKind::kDecimate:
        op.aux = static_cast<std::int32_t>(state_count_);
        state_slot[i] = op.aux;
        ++state_count_;
        break;
      case OpKind::kRequant:
        op.aux = static_cast<std::int32_t>(requants_.size());
        requants_.push_back(
            {node.src_frac, node.fmt, node.rounding, node.overflow});
        break;
      case OpKind::kOutput:
        op.aux = static_cast<std::int32_t>(output_nodes_.size());
        output_nodes_.push_back(static_cast<NodeId>(i));
        output_clock_div_.push_back(node.clock_div);
        break;
      default:
        break;
    }
  }

  // Per-phase schedules: a node is active on phase p iff p is a multiple
  // of its clock_div (clock_div divides the period, so t % clock_div == 0
  // depends only on t mod period). Creation order within a phase matches
  // the interpreted simulator's propagation order exactly. Constants live
  // off-tape: they commit once on the first tick (commit_consts) and their
  // update counts are analytic like everyone else's.
  phases_.assign(static_cast<std::size_t>(period_), {});
  for (std::size_t i = 0; i < node_count_; ++i) {
    const Node& node = nodes[i];
    for (int p = 0; p < period_; p += node.clock_div) {
      Phase& phase = phases_[static_cast<std::size_t>(p)];
      if (node.kind == OpKind::kReg || node.kind == OpKind::kDecimate) {
        phase.captures.push_back({state_slot[i], tape[i].a});
      }
      if (node.kind != OpKind::kConst) phase.ops.push_back(tape[i]);
    }
  }

  // Codegen backend: resolve the requested mode against the environment
  // kill switch, then run emit -> compile -> load with tape fallback.
  using Codegen = CompiledSimOptions::Codegen;
  bool want = false;
  switch (options.codegen) {
    case Codegen::kOff:
      want = false;
      break;
    case Codegen::kOn:
      want = !codegen::disabled_by_env();
      if (!want) engine_detail_ = "codegen disabled by DSADC_CODEGEN=off";
      break;
    case Codegen::kAuto:
      want = codegen::enabled_by_env() && !codegen::disabled_by_env();
      break;
  }
  if (want) {
    const codegen::EmitResult emitted = codegen::emit_source(*this);
    if (!emitted.error.empty()) {
      engine_detail_ = "codegen refused: " + emitted.error;
    } else {
      codegen::BuildResult built = codegen::build_kernel(emitted.source);
      if (built.kernel) {
        kernel_ = std::move(built.kernel);
        engine_ = SimEngine::kCodegen;
        codegen_cache_hit_ = built.cache_hit;
        codegen_so_path_ = std::move(built.so_path);
        engine_detail_ = built.cache_hit ? "codegen cache hit"
                         : built.evicted ? "codegen rebuilt (cache evicted)"
                                         : "codegen compiled";
      } else {
        engine_detail_ = "codegen unavailable: " + built.detail;
      }
    }
  }
}

std::size_t CompiledSimulator::scheduled_ops_per_period() const {
  std::size_t n = 0;
  for (const Phase& p : phases_) n += p.ops.size();
  return n;
}

void CompiledSimulator::commit_consts(std::vector<std::int64_t>& value,
                                      Activity* activity) const {
  for (std::size_t i = 0; i < const_slots_.size(); ++i) {
    const auto slot = static_cast<std::size_t>(const_slots_[i]);
    if (activity != nullptr) {
      activity->bit_toggles[slot - 1] +=
          hamming(value[slot], const_values_[i], const_widths_[i]);
    }
    value[slot] = const_values_[i];
  }
}

void CompiledSimulator::fill_updates(std::uint64_t ticks,
                                     Activity* activity) const {
  for (std::size_t i = 0; i < node_count_; ++i) {
    const auto div = static_cast<std::uint64_t>(node_clock_div_[i]);
    activity->updates[i] = (ticks + div - 1) / div;
  }
}

template <bool kActivity>
void CompiledSimulator::tick_loop(
    std::uint64_t ticks, std::vector<std::int64_t>& value,
    std::vector<std::int64_t>& next_state,
    std::vector<std::span<const std::int64_t>>& in_streams,
    std::vector<std::size_t>& in_cursor,
    std::vector<std::vector<std::int64_t>>& out_streams,
    Activity* activity) const {
  int phase_idx = 0;
  for (std::uint64_t t = 0; t < ticks; ++t) {
    const Phase& phase = phases_[static_cast<std::size_t>(phase_idx)];
    if (++phase_idx == period_) phase_idx = 0;

    // Registers and rate boundaries in active domains capture their
    // operand values from the end of the previous tick.
    for (const Capture& cap : phase.captures) {
      next_state[static_cast<std::size_t>(cap.state)] =
          value[static_cast<std::size_t>(cap.src)];
    }

    // Constants commit exactly once, on the first tick, after that tick's
    // captures: the interpreter's registers read the pre-commit zeros at
    // t = 0, and every later capture sees the committed values.
    if (t == 0) commit_consts(value, kActivity ? activity : nullptr);

    // Propagate active nodes in creation (topological) order. Activity
    // mode adds only the per-op toggle popcount; update counts are filled
    // analytically by run().
    for (const Op& op : phase.ops) {
      std::int64_t out;
      switch (op.kind) {
        case OpKind::kInput:
          out = wrap_shift(
              in_streams[static_cast<std::size_t>(op.aux)]
                        [in_cursor[static_cast<std::size_t>(op.aux)]++],
              op.wrap_shift);
          break;
        case OpKind::kReg:
        case OpKind::kDecimate:
          out = next_state[static_cast<std::size_t>(op.aux)];
          break;
        case OpKind::kAdd:
          out = wrap_shift(value[static_cast<std::size_t>(op.a)] +
                               value[static_cast<std::size_t>(op.b)],
                           op.wrap_shift);
          break;
        case OpKind::kSub:
          out = wrap_shift(value[static_cast<std::size_t>(op.a)] -
                               value[static_cast<std::size_t>(op.b)],
                           op.wrap_shift);
          break;
        case OpKind::kNeg:
          out = wrap_shift(-value[static_cast<std::size_t>(op.a)],
                           op.wrap_shift);
          break;
        case OpKind::kShl:
          out = value[static_cast<std::size_t>(op.a)] << op.shift;
          break;
        case OpKind::kShr:
          out = value[static_cast<std::size_t>(op.a)] >> op.shift;
          break;
        case OpKind::kMux:
          out = wrap_shift(value[static_cast<std::size_t>(op.aux)] != 0
                               ? value[static_cast<std::size_t>(op.a)]
                               : value[static_cast<std::size_t>(op.b)],
                           op.wrap_shift);
          break;
        case OpKind::kRequant: {
          const RequantParams& rq = requants_[static_cast<std::size_t>(op.aux)];
          out = fx::requantize(value[static_cast<std::size_t>(op.a)],
                               rq.src_frac, rq.fmt, rq.rounding, rq.overflow);
          break;
        }
        case OpKind::kOutput:
          out = value[static_cast<std::size_t>(op.a)];
          out_streams[static_cast<std::size_t>(op.aux)].push_back(out);
          break;
        default:
          out = 0;
          break;
      }
      if constexpr (kActivity) {
        activity->bit_toggles[static_cast<std::size_t>(op.dst - 1)] +=
            hamming(value[static_cast<std::size_t>(op.dst)], out, op.width);
      }
      value[static_cast<std::size_t>(op.dst)] = out;
    }
  }
}

SimResult CompiledSimulator::run(
    const std::map<NodeId, std::span<const std::int64_t>>& inputs,
    const CompiledRunOptions& options) const {
  if (kernel_) return run_codegen(inputs, options);
  DSADC_TRACE_SPAN("rtl_sim_compiled", "rtl");

  // Bind streams to input cursors and derive the run length; the checks
  // mirror the interpreted simulator so either engine rejects the same
  // stimulus the same way.
  std::vector<std::span<const std::int64_t>> in_streams(input_nodes_.size());
  std::vector<bool> bound(input_nodes_.size(), false);
  std::uint64_t ticks = ~std::uint64_t{0};
  for (const auto& [id, stream] : inputs) {
    std::size_t slot = input_nodes_.size();
    for (std::size_t i = 0; i < input_nodes_.size(); ++i) {
      if (input_nodes_[i] == id) slot = i;
    }
    if (slot == input_nodes_.size()) {
      throw std::invalid_argument("Simulator: stream bound to non-input node");
    }
    in_streams[slot] = stream;
    bound[slot] = true;
    ticks = std::min<std::uint64_t>(
        ticks,
        stream.size() * static_cast<std::uint64_t>(input_clock_div_[slot]));
  }
  if (ticks == ~std::uint64_t{0}) {
    throw std::invalid_argument("Simulator: no input streams");
  }
  for (std::size_t i = 0; i < input_nodes_.size(); ++i) {
    if (ticks > 0 && !bound[i]) {
      throw std::invalid_argument("Simulator: unbound input " +
                                  input_names_[i]);
    }
  }

  SimResult result;
  result.activity.bit_toggles.assign(node_count_, 0);
  result.activity.updates.assign(node_count_, 0);
  result.activity.base_ticks = ticks;

  // Slot 0 is the pinned zero (kInvalidNode operands read it).
  std::vector<std::int64_t> value(node_count_ + 1, 0);
  std::vector<std::int64_t> next_state(state_count_, 0);
  std::vector<std::size_t> in_cursor(input_nodes_.size(), 0);
  std::vector<std::vector<std::int64_t>> out_streams(output_nodes_.size());
  for (std::size_t i = 0; i < output_nodes_.size(); ++i) {
    out_streams[i].reserve(
        static_cast<std::size_t>(
            ticks / static_cast<std::uint64_t>(output_clock_div_[i])) +
        1);
  }

  if (options.activity) {
    if (ticks > 0) fill_updates(ticks, &result.activity);
    tick_loop<true>(ticks, value, next_state, in_streams, in_cursor,
                    out_streams, &result.activity);
  } else {
    tick_loop<false>(ticks, value, next_state, in_streams, in_cursor,
                     out_streams, nullptr);
  }

  for (std::size_t i = 0; i < output_nodes_.size(); ++i) {
    result.outputs[output_nodes_[i]] = std::move(out_streams[i]);
  }
  return result;
}

SimResult CompiledSimulator::run_codegen(
    const std::map<NodeId, std::span<const std::int64_t>>& inputs,
    const CompiledRunOptions& options) const {
  DSADC_TRACE_SPAN("rtl_sim_codegen", "rtl");

  // Identical binding and validation to the tape path.
  std::vector<const std::int64_t*> in_ptrs(input_nodes_.size(), nullptr);
  std::vector<bool> bound(input_nodes_.size(), false);
  std::uint64_t ticks = ~std::uint64_t{0};
  for (const auto& [id, stream] : inputs) {
    std::size_t slot = input_nodes_.size();
    for (std::size_t i = 0; i < input_nodes_.size(); ++i) {
      if (input_nodes_[i] == id) slot = i;
    }
    if (slot == input_nodes_.size()) {
      throw std::invalid_argument("Simulator: stream bound to non-input node");
    }
    in_ptrs[slot] = stream.data();
    bound[slot] = true;
    ticks = std::min<std::uint64_t>(
        ticks,
        stream.size() * static_cast<std::uint64_t>(input_clock_div_[slot]));
  }
  if (ticks == ~std::uint64_t{0}) {
    throw std::invalid_argument("Simulator: no input streams");
  }
  for (std::size_t i = 0; i < input_nodes_.size(); ++i) {
    if (ticks > 0 && !bound[i]) {
      throw std::invalid_argument("Simulator: unbound input " +
                                  input_names_[i]);
    }
  }

  SimResult result;
  result.activity.bit_toggles.assign(node_count_, 0);
  result.activity.updates.assign(node_count_, 0);
  result.activity.base_ticks = ticks;

  // The kernel produces exactly ceil(ticks / clock_div) samples per
  // output stream into pre-sized buffers (no push_back in the hot loop).
  std::vector<std::vector<std::int64_t>> out_streams(output_nodes_.size());
  std::vector<std::int64_t*> out_ptrs(output_nodes_.size(), nullptr);
  for (std::size_t i = 0; i < output_nodes_.size(); ++i) {
    const auto div = static_cast<std::uint64_t>(output_clock_div_[i]);
    out_streams[i].resize(
        ticks == 0 ? 0 : static_cast<std::size_t>((ticks + div - 1) / div));
    out_ptrs[i] = out_streams[i].data();
  }

  if (options.activity) {
    if (ticks > 0) fill_updates(ticks, &result.activity);
    kernel_->run_activity()(ticks, in_ptrs.data(), out_ptrs.data(),
                            result.activity.bit_toggles.data());
  } else {
    kernel_->run()(ticks, in_ptrs.data(), out_ptrs.data());
  }

  for (std::size_t i = 0; i < output_nodes_.size(); ++i) {
    result.outputs[output_nodes_[i]] = std::move(out_streams[i]);
  }
  return result;
}

}  // namespace dsadc::rtl
