#include "src/rtl/compiled_sim.h"

#include <bit>
#include <numeric>
#include <stdexcept>

#include "src/obs/trace.h"

namespace dsadc::rtl {
namespace {

// Clock periods are products of the chain's decimation factors (16 for the
// paper chain); the cap only guards against pathological hand-built
// netlists whose schedule tables would not fit in memory.
constexpr int kMaxPeriod = 1 << 20;

std::uint64_t hamming(std::int64_t a, std::int64_t b, int width) {
  const std::uint64_t mask =
      width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
  return static_cast<std::uint64_t>(
      std::popcount((static_cast<std::uint64_t>(a) ^
                     static_cast<std::uint64_t>(b)) &
                    mask));
}

/// Two's-complement wrap to width via a pre-computed shift pair; matches
/// fx::wrap_to bit-for-bit for widths in [1, 62].
inline std::int64_t wrap_shift(std::int64_t v, int shift) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(v) << shift) >>
         shift;
}

}  // namespace

CompiledSimulator::CompiledSimulator(const Module& module) {
  const auto& nodes = module.nodes();
  node_count_ = nodes.size();

  period_ = 1;
  for (const Node& node : nodes) {
    if (node.clock_div < 1) {
      throw std::invalid_argument("CompiledSimulator: clock_div must be >= 1");
    }
    period_ = static_cast<int>(
        std::lcm<std::int64_t>(period_, node.clock_div));
    if (period_ > kMaxPeriod) {
      throw std::invalid_argument(
          "CompiledSimulator: clock-domain period exceeds the schedule cap");
    }
  }

  // Build the op tape, one entry per node, operands resolved to value
  // slots (slot 0 pinned to zero for kInvalidNode).
  std::vector<Op> tape(node_count_);
  std::vector<std::int32_t> state_slot(node_count_, -1);
  for (std::size_t i = 0; i < node_count_; ++i) {
    const Node& node = nodes[i];
    Op& op = tape[i];
    op.kind = node.kind;
    op.dst = static_cast<std::int32_t>(i) + 1;
    op.a = node.a == kInvalidNode ? 0 : node.a + 1;
    op.b = node.b == kInvalidNode ? 0 : node.b + 1;
    op.width = static_cast<std::uint8_t>(node.width);
    op.wrap_shift = static_cast<std::uint8_t>(64 - node.width);
    switch (node.kind) {
      case OpKind::kInput:
        op.aux = static_cast<std::int32_t>(input_nodes_.size());
        input_nodes_.push_back(static_cast<NodeId>(i));
        input_clock_div_.push_back(node.clock_div);
        input_names_.push_back(node.name);
        break;
      case OpKind::kConst:
        op.aux = static_cast<std::int32_t>(const_values_.size());
        const_values_.push_back(node.value);
        const_slots_.push_back(op.dst);
        break;
      case OpKind::kMux:
        op.aux = node.c == kInvalidNode ? 0 : node.c + 1;
        break;
      case OpKind::kShl:
      case OpKind::kShr:
        op.shift = static_cast<std::uint8_t>(node.amount);
        break;
      case OpKind::kReg:
      case OpKind::kDecimate:
        op.aux = static_cast<std::int32_t>(state_count_);
        state_slot[i] = op.aux;
        ++state_count_;
        break;
      case OpKind::kRequant:
        op.aux = static_cast<std::int32_t>(requants_.size());
        requants_.push_back(
            {node.src_frac, node.fmt, node.rounding, node.overflow});
        break;
      case OpKind::kOutput:
        op.aux = static_cast<std::int32_t>(output_nodes_.size());
        output_nodes_.push_back(static_cast<NodeId>(i));
        output_clock_div_.push_back(node.clock_div);
        break;
      default:
        break;
    }
  }

  // Per-phase schedules: a node is active on phase p iff p is a multiple
  // of its clock_div (clock_div divides the period, so t % clock_div == 0
  // depends only on t mod period). Creation order within a phase matches
  // the interpreted simulator's propagation order exactly.
  phases_.assign(static_cast<std::size_t>(period_), {});
  for (std::size_t i = 0; i < node_count_; ++i) {
    const Node& node = nodes[i];
    for (int p = 0; p < period_; p += node.clock_div) {
      Phase& phase = phases_[static_cast<std::size_t>(p)];
      if (node.kind == OpKind::kReg || node.kind == OpKind::kDecimate) {
        phase.captures.push_back({state_slot[i], tape[i].a});
      }
      phase.ops.push_back(tape[i]);
      // Constants never change after the preload, so the pure-dataflow
      // tape drops them entirely.
      if (node.kind != OpKind::kConst) phase.fast_ops.push_back(tape[i]);
    }
  }
}

std::size_t CompiledSimulator::scheduled_ops_per_period() const {
  std::size_t n = 0;
  for (const Phase& p : phases_) n += p.fast_ops.size();
  return n;
}

std::size_t CompiledSimulator::scheduled_ops_per_period_activity() const {
  std::size_t n = 0;
  for (const Phase& p : phases_) n += p.ops.size();
  return n;
}

template <bool kActivity>
void CompiledSimulator::tick_loop(
    std::uint64_t ticks, std::vector<std::int64_t>& value,
    std::vector<std::int64_t>& next_state,
    std::vector<std::span<const std::int64_t>>& in_streams,
    std::vector<std::size_t>& in_cursor,
    std::vector<std::vector<std::int64_t>>& out_streams,
    Activity* activity) const {
  int phase_idx = 0;
  for (std::uint64_t t = 0; t < ticks; ++t) {
    const Phase& phase = phases_[static_cast<std::size_t>(phase_idx)];
    if (++phase_idx == period_) phase_idx = 0;

    // Registers and rate boundaries in active domains capture their
    // operand values from the end of the previous tick.
    for (const Capture& cap : phase.captures) {
      next_state[static_cast<std::size_t>(cap.state)] =
          value[static_cast<std::size_t>(cap.src)];
    }

    // Propagate active nodes in creation (topological) order. The
    // activity path walks the full tape (constant commits count as
    // updates); the default path walks the const-hoisted tape.
    const std::vector<Op>& ops = kActivity ? phase.ops : phase.fast_ops;
    for (const Op& op : ops) {
      std::int64_t out;
      switch (op.kind) {
        case OpKind::kInput:
          out = wrap_shift(
              in_streams[static_cast<std::size_t>(op.aux)]
                        [in_cursor[static_cast<std::size_t>(op.aux)]++],
              op.wrap_shift);
          break;
        case OpKind::kConst:
          out = const_values_[static_cast<std::size_t>(op.aux)];
          break;
        case OpKind::kReg:
        case OpKind::kDecimate:
          out = next_state[static_cast<std::size_t>(op.aux)];
          break;
        case OpKind::kAdd:
          out = wrap_shift(value[static_cast<std::size_t>(op.a)] +
                               value[static_cast<std::size_t>(op.b)],
                           op.wrap_shift);
          break;
        case OpKind::kSub:
          out = wrap_shift(value[static_cast<std::size_t>(op.a)] -
                               value[static_cast<std::size_t>(op.b)],
                           op.wrap_shift);
          break;
        case OpKind::kNeg:
          out = wrap_shift(-value[static_cast<std::size_t>(op.a)],
                           op.wrap_shift);
          break;
        case OpKind::kShl:
          out = value[static_cast<std::size_t>(op.a)] << op.shift;
          break;
        case OpKind::kShr:
          out = value[static_cast<std::size_t>(op.a)] >> op.shift;
          break;
        case OpKind::kMux:
          out = wrap_shift(value[static_cast<std::size_t>(op.aux)] != 0
                               ? value[static_cast<std::size_t>(op.a)]
                               : value[static_cast<std::size_t>(op.b)],
                           op.wrap_shift);
          break;
        case OpKind::kRequant: {
          const RequantParams& rq = requants_[static_cast<std::size_t>(op.aux)];
          out = fx::requantize(value[static_cast<std::size_t>(op.a)],
                               rq.src_frac, rq.fmt, rq.rounding, rq.overflow);
          break;
        }
        case OpKind::kOutput:
          out = value[static_cast<std::size_t>(op.a)];
          out_streams[static_cast<std::size_t>(op.aux)].push_back(out);
          break;
        default:
          out = 0;
          break;
      }
      if constexpr (kActivity) {
        const auto node = static_cast<std::size_t>(op.dst - 1);
        activity->updates[node]++;
        activity->bit_toggles[node] +=
            hamming(value[static_cast<std::size_t>(op.dst)], out, op.width);
      }
      value[static_cast<std::size_t>(op.dst)] = out;
    }
  }
}

SimResult CompiledSimulator::run(
    const std::map<NodeId, std::span<const std::int64_t>>& inputs,
    const CompiledRunOptions& options) const {
  DSADC_TRACE_SPAN("rtl_sim_compiled", "rtl");

  // Bind streams to input cursors and derive the run length; the checks
  // mirror the interpreted simulator so either engine rejects the same
  // stimulus the same way.
  std::vector<std::span<const std::int64_t>> in_streams(input_nodes_.size());
  std::vector<bool> bound(input_nodes_.size(), false);
  std::uint64_t ticks = ~std::uint64_t{0};
  for (const auto& [id, stream] : inputs) {
    std::size_t slot = input_nodes_.size();
    for (std::size_t i = 0; i < input_nodes_.size(); ++i) {
      if (input_nodes_[i] == id) slot = i;
    }
    if (slot == input_nodes_.size()) {
      throw std::invalid_argument("Simulator: stream bound to non-input node");
    }
    in_streams[slot] = stream;
    bound[slot] = true;
    ticks = std::min<std::uint64_t>(
        ticks,
        stream.size() * static_cast<std::uint64_t>(input_clock_div_[slot]));
  }
  if (ticks == ~std::uint64_t{0}) {
    throw std::invalid_argument("Simulator: no input streams");
  }
  for (std::size_t i = 0; i < input_nodes_.size(); ++i) {
    if (ticks > 0 && !bound[i]) {
      throw std::invalid_argument("Simulator: unbound input " +
                                  input_names_[i]);
    }
  }

  SimResult result;
  result.activity.bit_toggles.assign(node_count_, 0);
  result.activity.updates.assign(node_count_, 0);
  result.activity.base_ticks = ticks;

  // Slot 0 is the pinned zero (kInvalidNode operands read it).
  std::vector<std::int64_t> value(node_count_ + 1, 0);
  std::vector<std::int64_t> next_state(state_count_, 0);
  std::vector<std::size_t> in_cursor(input_nodes_.size(), 0);
  std::vector<std::vector<std::int64_t>> out_streams(output_nodes_.size());
  for (std::size_t i = 0; i < output_nodes_.size(); ++i) {
    out_streams[i].reserve(
        static_cast<std::size_t>(
            ticks / static_cast<std::uint64_t>(output_clock_div_[i])) +
        1);
  }

  if (options.activity) {
    tick_loop<true>(ticks, value, next_state, in_streams, in_cursor,
                    out_streams, &result.activity);
  } else {
    // Constants are hoisted off the default tape: preload their slots so
    // users read the committed value from tick 0 on (identical to the
    // full tape, which would commit them on the first phase anyway).
    for (std::size_t i = 0; i < const_slots_.size(); ++i) {
      value[static_cast<std::size_t>(const_slots_[i])] = const_values_[i];
    }
    tick_loop<false>(ticks, value, next_state, in_streams, in_cursor,
                     out_streams, nullptr);
  }

  for (std::size_t i = 0; i < output_nodes_.size(); ++i) {
    result.outputs[output_nodes_[i]] = std::move(out_streams[i]);
  }
  return result;
}

}  // namespace dsadc::rtl
