// Hardware intermediate representation for the decimation filter datapath.
//
// The design flow lowers each filter stage into a netlist of adders,
// subtractors, shifters, registers and requantizers. The same IR drives
// three consumers:
//   * the cycle-accurate simulator (sim.h) - bit-exact against the
//     behavioral models, with per-node toggle counting;
//   * the Verilog emitter (verilog.h) - the HDL Coder substitute;
//   * the synthesis model (src/synth) - cell mapping, area and power.
//
// Multi-rate design: every node belongs to a clock domain identified by
// its divide ratio from the base clock. Domain crossings happen only
// through kDecimate nodes (sample every Nth base tick), mirroring the
// paper's fs -> fs/2 -> ... chain.
//
// Allocation: the node array is std::pmr-backed. By default modules
// allocate from the global heap; passing a memory_resource (e.g. a
// std::pmr::monotonic_buffer_resource) arena-allocates the netlist, which
// makes elaborating and optimizing many generated chains cheap. Moves keep
// the source's resource; copies fall back to the default resource (so a
// copied module never dangles into someone else's arena). Node name
// strings still use the global heap (Node is not allocator-aware).
#pragma once

#include <array>
#include <cstdint>
#include <memory_resource>
#include <string>
#include <vector>

#include "src/fixedpoint/csd.h"
#include "src/fixedpoint/fixed.h"

namespace dsadc::rtl {

using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

enum class OpKind : std::uint8_t {
  kInput,     ///< module input port
  kConst,     ///< constant value
  kAdd,       ///< a + b, wrapped to `width`
  kSub,       ///< a - b, wrapped to `width`
  kNeg,       ///< -a, wrapped to `width`
  kShl,       ///< a << amount (arithmetic value scaling)
  kShr,       ///< a >> amount (arithmetic shift right)
  kMux,       ///< c != 0 ? a : b, wrapped to `width`
  kReg,       ///< register in the node's clock domain
  kDecimate,  ///< rate boundary: latches every `amount`-th domain tick
  kRequant,   ///< fixed-point requantize (see fields below)
  kOutput,    ///< module output port
};

/// Number of OpKind values (dense-table sizing, e.g. NetlistIndex).
inline constexpr int kNumOpKinds = 12;

/// One IR node. Fixed small POD-ish struct keeps the netlist compact.
struct Node {
  OpKind kind = OpKind::kConst;
  NodeId a = kInvalidNode;  ///< first operand (kMux: then-arm)
  NodeId b = kInvalidNode;  ///< second operand (kAdd/kSub; kMux: else-arm)
  NodeId c = kInvalidNode;  ///< third operand (kMux: select)
  int width = 1;            ///< output width in bits (two's complement)
  int amount = 0;           ///< shift amount / decimation factor
  std::int64_t value = 0;   ///< constant value
  int clock_div = 1;        ///< clock divider from base clock
  // kRequant parameters.
  int src_frac = 0;
  fx::Format fmt{1, 0};
  fx::Rounding rounding = fx::Rounding::kTruncate;
  fx::Overflow overflow = fx::Overflow::kWrap;
  std::string name;  ///< port name (inputs/outputs) or debug label
};

/// Operand slots of a node in fixed {a, b, c} order; kInvalidNode marks an
/// unused slot. Analyzer loops iterate this instead of hand-listing slots.
inline std::array<NodeId, 3> operands(const Node& n) { return {n.a, n.b, n.c}; }

/// A hardware module: a DAG of nodes (registers break cycles).
class Module {
 public:
  /// `mem` backs the node array; nullptr means the default resource. The
  /// resource must outlive the module (and any module moved from it).
  explicit Module(std::string name, std::pmr::memory_resource* mem = nullptr)
      : name_(std::move(name)),
        nodes_(mem != nullptr ? mem : std::pmr::get_default_resource()) {}

  const std::string& name() const { return name_; }
  const std::pmr::vector<Node>& nodes() const { return nodes_; }
  Node& node(NodeId id) { return nodes_[static_cast<std::size_t>(id)]; }
  const Node& node(NodeId id) const { return nodes_[static_cast<std::size_t>(id)]; }
  std::size_t size() const { return nodes_.size(); }

  NodeId input(const std::string& name, int width, int clock_div = 1);
  NodeId constant(std::int64_t value, int width, int clock_div = 1);
  NodeId add(NodeId a, NodeId b, int width);
  NodeId sub(NodeId a, NodeId b, int width);
  NodeId neg(NodeId a, int width);
  NodeId shl(NodeId a, int amount);
  NodeId shr(NodeId a, int amount);
  /// 2:1 select: sel != 0 picks `t`, otherwise `f`; wrapped to `width`.
  NodeId mux(NodeId sel, NodeId t, NodeId f, int width);
  /// Register in the same clock domain as its source.
  NodeId reg(NodeId a);
  /// Register with its input connected later (feedback loops, e.g. the CIC
  /// accumulator). Registers read their operand's previous-cycle value, so
  /// back edges through them keep the netlist evaluable in creation order.
  NodeId reg_placeholder(int width, int clock_div);
  void connect_reg(NodeId reg_id, NodeId src);
  /// Rate boundary into a slower domain (`factor` x slower than src).
  NodeId decimate(NodeId a, int factor);
  NodeId requant(NodeId a, int src_frac, fx::Format fmt, fx::Rounding r,
                 fx::Overflow o);
  NodeId output(const std::string& name, NodeId a);

  /// Append a pre-built node verbatim. This is the rebuild path of netlist
  /// transforms (src/analyze/opt): only the width invariant is checked;
  /// structural soundness is the caller's job (the lint verifies it).
  NodeId append(Node n) { return push(std::move(n)); }

  /// Multiply `a` by a CSD constant using shift-adds; `width` bounds every
  /// intermediate. Returns a node whose value carries `frac_shift` extra
  /// fractional bits (the caller requantizes). Zero-digit constants yield
  /// a zero constant node.
  NodeId csd_multiply(NodeId a, const fx::Csd& csd, int frac_bits, int width);

  /// Chain of `n` registers.
  NodeId delay(NodeId a, int n);

  /// All node ids of a given kind (inputs/outputs enumeration). Linear
  /// scan; analyzer hot paths use analyze::NetlistIndex instead.
  std::vector<NodeId> nodes_of_kind(OpKind kind) const;

  /// Count of adder/subtractor nodes (the paper's hardware-cost metric).
  std::size_t adder_count() const;
  std::size_t register_count() const;
  /// Total register bits (area proxy).
  std::size_t register_bits() const;

 private:
  NodeId push(Node n);
  std::string name_;
  std::pmr::vector<Node> nodes_;
};

}  // namespace dsadc::rtl
