#include "src/rtl/vparse.h"

#include <cctype>
#include <memory>
#include <stdexcept>

#include "src/fixedpoint/fixed.h"

namespace dsadc::rtl {

// ---------------------------------------------------------------- AST ----

struct VerilogModule::Expr {
  enum class Kind {
    kConst,
    kSignal,
    kAdd,
    kSub,
    kNeg,
    kShl,
    kShr,
    kGreater,
    kLess,
    kTernary,
  };
  Kind kind = Kind::kConst;
  std::int64_t value = 0;
  std::string signal;
  std::shared_ptr<Expr> a, b, c;
};

namespace {

using Expr = VerilogModule::Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// Minimal tokenizer for the emitted expression subset.
class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  std::string peek() {
    if (cached_.empty()) cached_ = next_token();
    return cached_;
  }
  std::string next() {
    std::string t = peek();
    cached_.clear();
    return t;
  }
  bool done() { return peek().empty(); }

 private:
  std::string next_token() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= text_.size()) return "";
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      return text_.substr(start, pos_ - start);
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      return text_.substr(start, pos_ - start);
    }
    // Multi-char operators.
    for (const char* op : {"<<<", ">>>", "<=", ">=", "=="}) {
      const std::size_t len = std::string(op).size();
      if (text_.compare(pos_, len, op) == 0) {
        pos_ += len;
        return op;
      }
    }
    ++pos_;
    return std::string(1, c);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string cached_;
};

class ExprParser {
 public:
  explicit ExprParser(const std::string& text) : lex_(text) {}

  ExprPtr parse() {
    ExprPtr e = ternary();
    if (!lex_.done()) {
      throw std::runtime_error("verilog replay: trailing tokens in expr");
    }
    return e;
  }

 private:
  ExprPtr ternary() {
    ExprPtr cond = comparison();
    if (lex_.peek() == "?") {
      lex_.next();
      ExprPtr then_e = ternary();
      if (lex_.next() != ":") {
        throw std::runtime_error("verilog replay: expected ':' in ternary");
      }
      ExprPtr else_e = ternary();
      auto e = std::make_shared<Expr>();
      e->kind = Expr::Kind::kTernary;
      e->a = cond;
      e->b = then_e;
      e->c = else_e;
      return e;
    }
    return cond;
  }

  ExprPtr comparison() {
    ExprPtr lhs = additive();
    const std::string op = lex_.peek();
    if (op == ">" || op == "<") {
      lex_.next();
      ExprPtr rhs = additive();
      auto e = std::make_shared<Expr>();
      e->kind = op == ">" ? Expr::Kind::kGreater : Expr::Kind::kLess;
      e->a = lhs;
      e->b = rhs;
      return e;
    }
    return lhs;
  }

  ExprPtr additive() {
    ExprPtr lhs = shift();
    for (;;) {
      const std::string op = lex_.peek();
      if (op != "+" && op != "-") return lhs;
      lex_.next();
      ExprPtr rhs = shift();
      auto e = std::make_shared<Expr>();
      e->kind = op == "+" ? Expr::Kind::kAdd : Expr::Kind::kSub;
      e->a = lhs;
      e->b = rhs;
      lhs = e;
    }
  }

  ExprPtr shift() {
    ExprPtr lhs = unary();
    for (;;) {
      const std::string op = lex_.peek();
      if (op != "<<<" && op != ">>>") return lhs;
      lex_.next();
      ExprPtr rhs = unary();
      auto e = std::make_shared<Expr>();
      e->kind = op == "<<<" ? Expr::Kind::kShl : Expr::Kind::kShr;
      e->a = lhs;
      e->b = rhs;
      lhs = e;
    }
  }

  ExprPtr unary() {
    if (lex_.peek() == "-") {
      lex_.next();
      auto e = std::make_shared<Expr>();
      // Negative literal or negation.
      ExprPtr inner = unary();
      if (inner->kind == Expr::Kind::kConst) {
        inner->value = -inner->value;
        return inner;
      }
      e->kind = Expr::Kind::kNeg;
      e->a = inner;
      return e;
    }
    return primary();
  }

  ExprPtr primary() {
    const std::string t = lex_.next();
    if (t.empty()) throw std::runtime_error("verilog replay: unexpected end");
    if (t == "(") {
      ExprPtr e = ternary();
      if (lex_.next() != ")") {
        throw std::runtime_error("verilog replay: expected ')'");
      }
      return e;
    }
    auto e = std::make_shared<Expr>();
    if (std::isdigit(static_cast<unsigned char>(t[0]))) {
      e->kind = Expr::Kind::kConst;
      e->value = std::stoll(t);
      return e;
    }
    e->kind = Expr::Kind::kSignal;
    e->signal = t;
    return e;
  }

  Lexer lex_;
};

std::string trim(const std::string& s) {
  std::size_t a = s.find_first_not_of(" \t\r\n");
  std::size_t b = s.find_last_not_of(" \t\r\n");
  if (a == std::string::npos) return "";
  return s.substr(a, b - a + 1);
}

bool starts_with(const std::string& s, const std::string& p) {
  return s.compare(0, p.size(), p) == 0;
}

/// Parse "[msb:0]" -> width.
int parse_width(const std::string& line, std::size_t& pos) {
  const std::size_t lb = line.find('[', pos);
  const std::size_t colon = line.find(':', lb);
  const std::size_t rb = line.find(']', colon);
  if (lb == std::string::npos || colon == std::string::npos ||
      rb == std::string::npos) {
    throw std::runtime_error("verilog replay: missing [msb:0] range");
  }
  const int msb = std::stoi(line.substr(lb + 1, colon - lb - 1));
  pos = rb + 1;
  return msb + 1;
}

std::string parse_ident(const std::string& line, std::size_t& pos) {
  while (pos < line.size() && std::isspace(static_cast<unsigned char>(line[pos]))) {
    ++pos;
  }
  std::size_t start = pos;
  while (pos < line.size() && (std::isalnum(static_cast<unsigned char>(line[pos])) ||
                               line[pos] == '_')) {
    ++pos;
  }
  return line.substr(start, pos - start);
}

}  // namespace

// ------------------------------------------------------------- parsing ----

struct VerilogParserImpl {
  static VerilogModule parse(const std::string& source) {
    VerilogModule m;
    std::vector<std::string> lines;
    {
      std::size_t start = 0;
      while (start <= source.size()) {
        std::size_t end = source.find('\n', start);
        if (end == std::string::npos) end = source.size();
        lines.push_back(source.substr(start, end - start));
        start = end + 1;
      }
    }
    const auto add_expr = [&m](ExprPtr e) {
      m.exprs_.push_back(std::move(e));
      return static_cast<int>(m.exprs_.size() - 1);
    };

    bool in_ports = false;
    for (std::size_t li = 0; li < lines.size(); ++li) {
      std::string line = trim(lines[li]);
      if (line.empty() || starts_with(line, "//")) continue;
      if (starts_with(line, "module ")) {
        std::size_t pos = 7;
        m.name_ = parse_ident(line, pos);
        in_ports = true;
        continue;
      }
      if (in_ports) {
        if (line == ");") {
          in_ports = false;
          continue;
        }
        // Port declarations.
        const bool is_in = starts_with(line, "input");
        const bool is_out = starts_with(line, "output");
        if (!is_in && !is_out) {
          throw std::runtime_error("verilog replay: unexpected port line: " + line);
        }
        VerilogModule::Signal s;
        s.is_input = is_in;
        s.is_output = is_out;
        std::size_t pos = line.find("wire") + 4;
        std::string ident;
        if (line.find('[') != std::string::npos) {
          s.width = parse_width(line, pos);
          ident = parse_ident(line, pos);
        } else {
          s.width = 1;  // clock port
          ident = parse_ident(line, pos);
        }
        m.signals_[ident] = s;
        m.order_.push_back(ident);
        continue;
      }
      if (line == "endmodule") break;

      if (starts_with(line, "reg ")) {
        // reg  signed [W-1:0] name = 0;
        std::size_t pos = 3;
        VerilogModule::Signal s;
        s.is_reg = true;
        const std::size_t sp = line.find("signed");
        pos = sp + 6;
        s.width = parse_width(line, pos);
        const std::string ident = parse_ident(line, pos);
        m.signals_[ident] = s;
        m.order_.push_back(ident);
        continue;
      }
      if (starts_with(line, "wire ")) {
        // wire signed [W-1:0] name;    or    ... name = EXPR;
        std::size_t pos = 4;
        VerilogModule::Signal s;
        const std::size_t sp = line.find("signed");
        pos = sp + 6;
        s.width = parse_width(line, pos);
        const std::string ident = parse_ident(line, pos);
        const std::size_t eq = line.find('=', pos);
        if (eq != std::string::npos) {
          std::string rhs = trim(line.substr(eq + 1));
          if (!rhs.empty() && rhs.back() == ';') rhs.pop_back();
          s.expr_index = add_expr(ExprParser(rhs).parse());
        }
        m.signals_[ident] = s;
        m.order_.push_back(ident);
        continue;
      }
      if (starts_with(line, "assign ")) {
        std::size_t pos = 7;
        const std::string ident = parse_ident(line, pos);
        const std::size_t eq = line.find('=', pos);
        std::string rhs = trim(line.substr(eq + 1));
        if (!rhs.empty() && rhs.back() == ';') rhs.pop_back();
        auto it = m.signals_.find(ident);
        if (it == m.signals_.end()) {
          throw std::runtime_error("verilog replay: assign to unknown " + ident);
        }
        it->second.expr_index = add_expr(ExprParser(rhs).parse());
        // Evaluation must follow assign order (the emitter's topological
        // op order), not declaration order: re-append at the assign site.
        m.order_.push_back(ident);
        continue;
      }
      if (starts_with(line, "always @(posedge clk_div")) {
        // always @(posedge clk_divN) nX <= nY;
        std::size_t pos = std::string("always @(posedge clk_div").size();
        std::size_t end = line.find(')', pos);
        const int div = std::stoi(line.substr(pos, end - pos));
        pos = end + 1;
        const std::string dst = parse_ident(line, pos);
        const std::size_t arrow = line.find("<=", pos);
        std::string rhs = trim(line.substr(arrow + 2));
        if (!rhs.empty() && rhs.back() == ';') rhs.pop_back();
        auto it = m.signals_.find(dst);
        if (it == m.signals_.end() || !it->second.is_reg) {
          throw std::runtime_error("verilog replay: NBA to non-reg " + dst);
        }
        it->second.clock_div = div;
        it->second.expr_index = add_expr(ExprParser(rhs).parse());
        continue;
      }
      throw std::runtime_error("verilog replay: unsupported line: " + line);
    }
    return m;
  }
};

VerilogModule VerilogModule::parse(const std::string& source) {
  return VerilogParserImpl::parse(source);
}

std::vector<std::string> VerilogModule::input_ports() const {
  std::vector<std::string> out;
  for (const auto& name : order_) {
    const auto& s = signals_.at(name);
    if (s.is_input && name.rfind("clk_div", 0) != 0) out.push_back(name);
  }
  return out;
}

std::vector<std::string> VerilogModule::output_ports() const {
  std::vector<std::string> out;
  for (const auto& [name, s] : signals_) {
    if (s.is_output) out.push_back(name);
  }
  return out;
}

std::vector<int> VerilogModule::clock_dividers() const {
  std::vector<int> out;
  for (const auto& [name, s] : signals_) {
    if (s.is_input && name.rfind("clk_div", 0) == 0) {
      out.push_back(std::stoi(name.substr(7)));
    }
  }
  return out;
}

// ---------------------------------------------------------- simulation ----

namespace {

std::int64_t eval(const Expr& e,
                  const std::map<std::string, std::int64_t>& values) {
  switch (e.kind) {
    case Expr::Kind::kConst:
      return e.value;
    case Expr::Kind::kSignal: {
      auto it = values.find(e.signal);
      if (it == values.end()) {
        throw std::runtime_error("verilog replay: unknown signal " + e.signal);
      }
      return it->second;
    }
    case Expr::Kind::kAdd:
      return eval(*e.a, values) + eval(*e.b, values);
    case Expr::Kind::kSub:
      return eval(*e.a, values) - eval(*e.b, values);
    case Expr::Kind::kNeg:
      return -eval(*e.a, values);
    case Expr::Kind::kShl:
      return eval(*e.a, values) << eval(*e.b, values);
    case Expr::Kind::kShr:
      return eval(*e.a, values) >> eval(*e.b, values);
    case Expr::Kind::kGreater:
      return eval(*e.a, values) > eval(*e.b, values) ? 1 : 0;
    case Expr::Kind::kLess:
      return eval(*e.a, values) < eval(*e.b, values) ? 1 : 0;
    case Expr::Kind::kTernary:
      return eval(*e.a, values) != 0 ? eval(*e.b, values)
                                     : eval(*e.c, values);
  }
  return 0;
}

}  // namespace

std::map<std::string, std::vector<std::int64_t>> VerilogModule::run(
    const std::map<std::string, std::span<const std::int64_t>>& inputs,
    std::size_t base_ticks) {
  std::map<std::string, std::int64_t> values;
  for (const auto& [name, s] : signals_) values[name] = 0;

  std::map<std::string, std::vector<std::int64_t>> outputs;
  for (const auto& name : output_ports()) outputs[name] = {};

  std::map<std::string, std::int64_t> reg_next;
  for (std::size_t t = 0; t < base_ticks; ++t) {
    // Non-blocking captures for regs whose clock fires this tick.
    reg_next.clear();
    for (const auto& [name, s] : signals_) {
      if (!s.is_reg || s.clock_div == 0) continue;
      if (t % static_cast<std::size_t>(s.clock_div) != 0) continue;
      if (s.expr_index < 0) continue;
      reg_next[name] = fx::wrap_to(
          eval(*exprs_[static_cast<std::size_t>(s.expr_index)], values),
          fx::Format{s.width, 0});
    }
    for (const auto& [name, v] : reg_next) values[name] = v;

    // Inputs: one sample per base tick (zero once the stream runs out).
    for (const auto& [name, stream] : inputs) {
      auto it = signals_.find(name);
      if (it == signals_.end()) {
        throw std::runtime_error("verilog replay: no input port " + name);
      }
      const std::int64_t raw = t < stream.size() ? stream[t] : 0;
      values[name] = fx::wrap_to(raw, fx::Format{it->second.width, 0});
    }

    // Combinational propagation in declaration order.
    for (const auto& name : order_) {
      const auto& s = signals_.at(name);
      if (s.is_reg || s.is_input) continue;
      if (s.expr_index < 0) continue;
      values[name] = fx::wrap_to(
          eval(*exprs_[static_cast<std::size_t>(s.expr_index)], values),
          fx::Format{s.width, 0});
    }
    for (auto& [name, vec] : outputs) vec.push_back(values[name]);
  }
  return outputs;
}

}  // namespace dsadc::rtl
