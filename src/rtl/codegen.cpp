// See codegen.h. Two halves: emit_source() renders a CompiledSimulator's
// elaborated tape into a self-contained C++ translation unit, and
// build_kernel() drives compile/cache/dlopen with graceful failure.
#include "src/rtl/codegen.h"

#include <dlfcn.h>
#include <fcntl.h>
#include <spawn.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/rtl/compiled_sim.h"

extern char** environ;

namespace dsadc::rtl::codegen {
namespace {

namespace fs = std::filesystem;

// Bumped whenever the emitted-source contract or compile flags change, so
// stale cache entries from older schema versions never load.
constexpr const char* kSchemaTag = "dsadc-codegen-v1";

// -mpopcnt keeps the activity variant's per-op __builtin_popcountll as one
// instruction instead of a libgcc call that clobbers the register-resident
// value slots (every x86-64 since Nehalem has POPCNT; other arches lower
// the builtin natively without a flag).
const char* const kCompileFlags[] = {"-std=c++17", "-O2", "-fPIC", "-shared",
#if defined(__x86_64__) || defined(__i386__)
                                     "-mpopcnt",
#endif
};

// Guard rail for hand-built pathological netlists: straight-line emission
// is linear in ops-per-period, and beyond this cap compile times stop
// being a sane one-time cost. The paper chain sits near 1.6k.
constexpr std::size_t kMaxEmittedStatements = 200000;

bool env_is(const char* name, std::initializer_list<const char*> values) {
  const char* v = std::getenv(name);
  if (v == nullptr) return false;
  for (const char* want : values) {
    if (std::strcmp(v, want) == 0) return true;
  }
  return false;
}

std::string path_lookup(const std::string& name) {
  if (name.find('/') != std::string::npos) {
    return ::access(name.c_str(), X_OK) == 0 ? name : std::string();
  }
  const char* path = std::getenv("PATH");
  if (path == nullptr) return {};
  std::istringstream dirs(path);
  std::string dir;
  while (std::getline(dirs, dir, ':')) {
    if (dir.empty()) continue;
    const std::string cand = dir + "/" + name;
    if (::access(cand.c_str(), X_OK) == 0) return cand;
  }
  return {};
}

/// DSADC_CODEGEN_CXX wins (even when bogus: a missing override simulates a
/// compiler-less host); otherwise the usual suspects on PATH.
std::string find_compiler(std::string* error) {
  if (const char* env = std::getenv("DSADC_CODEGEN_CXX")) {
    const std::string resolved = path_lookup(env);
    if (resolved.empty()) {
      *error = std::string("DSADC_CODEGEN_CXX is not an executable: ") + env;
    }
    return resolved;
  }
  for (const char* cand : {"c++", "g++", "clang++"}) {
    const std::string resolved = path_lookup(cand);
    if (!resolved.empty()) return resolved;
  }
  *error = "no C++ compiler found on PATH";
  return {};
}

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string unique_suffix() {
  static std::atomic<std::uint64_t> counter{0};
  return std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

bool write_atomic(const std::string& path, const std::string& content,
                  std::string* error) {
  const std::string tmp = path + ".tmp." + unique_suffix();
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << content;
    if (!out) {
      *error = "cannot write " + tmp;
      ::unlink(tmp.c_str());
      return false;
    }
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    *error = "cannot rename " + tmp + " -> " + path;
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

std::string first_log_line(const std::string& log_path) {
  std::ifstream in(log_path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) return line.substr(0, 200);
  }
  return {};
}

bool run_compiler(const std::string& cxx, const std::string& src,
                  const std::string& out, std::string* error) {
  const std::string log = out + ".log";
  posix_spawn_file_actions_t fa;
  posix_spawn_file_actions_init(&fa);
  posix_spawn_file_actions_addopen(&fa, 1, log.c_str(),
                                   O_WRONLY | O_CREAT | O_TRUNC, 0644);
  posix_spawn_file_actions_adddup2(&fa, 1, 2);

  std::vector<std::string> args;
  args.push_back(cxx);
  for (const char* f : kCompileFlags) args.emplace_back(f);
  args.emplace_back("-o");
  args.push_back(out);
  args.push_back(src);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  pid_t pid = 0;
  const int rc =
      ::posix_spawn(&pid, cxx.c_str(), &fa, nullptr, argv.data(), environ);
  posix_spawn_file_actions_destroy(&fa);
  if (rc != 0) {
    *error = "cannot spawn " + cxx + ": " + std::strerror(rc);
    ::unlink(log.c_str());
    return false;
  }
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::string diag = first_log_line(log);
    *error = "compiler failed" + (diag.empty() ? "" : ": " + diag);
    ::unlink(log.c_str());
    return false;
  }
  ::unlink(log.c_str());
  return true;
}

std::shared_ptr<CompiledKernel> load_kernel(const std::string& so_path,
                                            std::string* error) {
  void* handle = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    const char* err = ::dlerror();
    *error = err != nullptr ? err : "dlopen failed";
    return nullptr;
  }
  auto run = reinterpret_cast<CompiledKernel::RunFn>(
      ::dlsym(handle, "dsadc_cg_run"));
  auto run_activity = reinterpret_cast<CompiledKernel::RunActivityFn>(
      ::dlsym(handle, "dsadc_cg_run_activity"));
  if (run == nullptr || run_activity == nullptr) {
    *error = "entry points missing from " + so_path;
    ::dlclose(handle);
    return nullptr;
  }
  return std::make_shared<CompiledKernel>(handle, run, run_activity);
}

}  // namespace

CompiledKernel::~CompiledKernel() {
  if (handle_ != nullptr) ::dlclose(handle_);
}

bool enabled_by_env() { return env_is("DSADC_CODEGEN", {"on", "1", "true"}); }

bool disabled_by_env() {
  return env_is("DSADC_CODEGEN", {"off", "0", "false"});
}

std::string cache_dir() {
  if (const char* env = std::getenv("DSADC_CODEGEN_CACHE_DIR")) return env;
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr && *tmp != '\0' ? tmp : "/tmp") +
         "/dsadc-codegen";
}

BuildResult build_kernel(const std::string& source) {
  BuildResult res;
  std::string error;
  const std::string cxx = find_compiler(&error);
  if (cxx.empty()) {
    res.detail = error;
    return res;
  }

  const std::string dir = cache_dir();
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    res.detail = "cannot create cache dir " + dir + ": " + ec.message();
    return res;
  }

  // Content hash over schema + compiler identity + flags + source: any
  // change to the emitted code or the toolchain yields a fresh object.
  std::uint64_t h = fnv1a(0xcbf29ce484222325ull, kSchemaTag);
  h = fnv1a(h, cxx);
  for (const char* f : kCompileFlags) h = fnv1a(h, f);
  h = fnv1a(h, source);
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(h));
  const std::string base = dir + "/cg_" + hex;
  res.so_path = base + ".so";

  // Cache probe; a cached object that fails to load (truncated write,
  // schema from a dead toolchain, deliberate corruption in tests) is
  // evicted and rebuilt once.
  if (::access(res.so_path.c_str(), R_OK) == 0) {
    if (auto kernel = load_kernel(res.so_path, &error)) {
      res.kernel = std::move(kernel);
      res.cache_hit = true;
      return res;
    }
    ::unlink(res.so_path.c_str());
    res.evicted = true;
  }

  const std::string cpp = base + ".cpp";
  if (!write_atomic(cpp, source, &error)) {
    res.detail = error;
    return res;
  }
  const std::string tmp_so = base + ".so.tmp." + unique_suffix();
  if (!run_compiler(cxx, cpp, tmp_so, &error)) {
    res.detail = error;
    ::unlink(tmp_so.c_str());
    return res;
  }
  if (::rename(tmp_so.c_str(), res.so_path.c_str()) != 0) {
    res.detail = "cannot rename " + tmp_so + " -> " + res.so_path;
    ::unlink(tmp_so.c_str());
    return res;
  }
  if (auto kernel = load_kernel(res.so_path, &error)) {
    res.kernel = std::move(kernel);
    return res;
  }
  res.detail = "freshly built kernel failed to load: " + error;
  return res;
}

// ---------------------------------------------------------------------------
// Emitter. The generated unit keeps every value slot and state slot in a
// local variable (the compiler register-allocates the hot ones and spills
// the rest to the stack frame -- no indexed loads through the tape), every
// wrap shift and requantizer constant folded to a literal, and the whole
// period laid out as straight-line code: tick 0 runs phase 0 plus the
// one-time constant commits, then an unrolled-period loop covers phases
// 1..P-1, 0, 1, ... with one tick-count guard per phase.
// ---------------------------------------------------------------------------

/// The one befriended window into CompiledSimulator's elaborated tape.
struct EmitAccess {
  using Op = CompiledSimulator::Op;
  using Phase = CompiledSimulator::Phase;
  using RequantParams = CompiledSimulator::RequantParams;
  static const std::vector<Phase>& phases(const CompiledSimulator& s) {
    return s.phases_;
  }
  static const std::vector<RequantParams>& requants(
      const CompiledSimulator& s) {
    return s.requants_;
  }
  static const std::vector<std::int64_t>& const_values(
      const CompiledSimulator& s) {
    return s.const_values_;
  }
  static const std::vector<std::int32_t>& const_slots(
      const CompiledSimulator& s) {
    return s.const_slots_;
  }
  static const std::vector<std::uint8_t>& const_widths(
      const CompiledSimulator& s) {
    return s.const_widths_;
  }
  static std::size_t input_count(const CompiledSimulator& s) {
    return s.input_nodes_.size();
  }
  static std::size_t output_count(const CompiledSimulator& s) {
    return s.output_nodes_.size();
  }
  static std::size_t node_count(const CompiledSimulator& s) {
    return s.node_count_;
  }
  static std::size_t state_count(const CompiledSimulator& s) {
    return s.state_count_;
  }
  static int period(const CompiledSimulator& s) { return s.period_; }
};

namespace {

std::uint64_t width_mask(int width) {
  return width >= 64 ? ~std::uint64_t{0}
                     : ((std::uint64_t{1} << width) - 1);
}

class Emitter {
 public:
  explicit Emitter(const CompiledSimulator& sim) : sim_(sim) {}

  EmitResult emit() {
    EmitResult out;
    const std::string refusal = refuse_reason();
    if (!refusal.empty()) {
      out.error = refusal;
      return out;
    }
    preamble();
    entry(/*activity=*/false);
    entry(/*activity=*/true);
    out.source = os_.str();
    return out;
  }

 private:
  using Op = EmitAccess::Op;
  using Phase = EmitAccess::Phase;

  std::string refuse_reason() const {
    std::size_t statements = EmitAccess::const_slots(sim_).size();
    for (const Phase& phase : EmitAccess::phases(sim_)) {
      statements += phase.captures.size() + phase.ops.size();
    }
    if (statements > kMaxEmittedStatements) {
      return "tape too large for straight-line emission (" +
             std::to_string(statements) + " statements/period)";
    }
    // Requant sites whose scalar semantics throw at run time (or whose
    // format check_format rejects) stay on the tape engine so the throw
    // still happens.
    for (const auto& rq : EmitAccess::requants(sim_)) {
      if (rq.fmt.width < 1 || rq.fmt.width > 62) {
        return "requant format width outside [1, 62]";
      }
      const int shift = rq.src_frac - rq.fmt.frac;
      if (shift < 0 && -shift >= 63) {
        return "requant up-shift would throw at run time";
      }
    }
    return {};
  }

  void preamble() {
    os_ << "// Generated by dsadc::rtl::codegen (" << kSchemaTag
        << ") -- do not edit.\n"
           "#include <cstdint>\n"
           "typedef std::int64_t i64;\n"
           "typedef std::uint64_t u64;\n"
           "static inline i64 w(i64 v, int s) {\n"
           "  return (i64)((u64)v << s) >> s;\n"
           "}\n"
           "static inline u64 pc(i64 a, i64 b, u64 m) {\n"
           "  return (u64)__builtin_popcountll(((u64)a ^ (u64)b) & m);\n"
           "}\n";
  }

  void entry(bool activity) {
    os_ << "\nextern \"C\" void "
        << (activity ? "dsadc_cg_run_activity" : "dsadc_cg_run")
        << "(u64 ticks, const i64* const* in, i64* const* out"
        << (activity ? ", u64* tg" : "") << ") {\n"
        << "  if (ticks == 0) return;\n";
    // Stream pointers and local cursors, one pair per input/output.
    for (std::size_t i = 0; i < EmitAccess::input_count(sim_); ++i) {
      os_ << "  const i64* const ip" << i << " = in[" << i << "]; u64 ic" << i
          << " = 0; (void)ip" << i << "; (void)ic" << i << ";\n";
    }
    for (std::size_t i = 0; i < EmitAccess::output_count(sim_); ++i) {
      os_ << "  i64* const op" << i << " = out[" << i << "]; u64 oc" << i
          << " = 0; (void)op" << i << "; (void)oc" << i << ";\n";
    }
    // Value slots (v0 is the pinned zero) and register/decimate state.
    os_ << "  const i64 v0 = 0; (void)v0;\n";
    declare_locals("v", EmitAccess::node_count(sim_), /*base=*/1);
    declare_locals("s", EmitAccess::state_count(sim_), /*base=*/0);

    // Tick 0: phase 0 captures first (they read the initial zeros), then
    // the one-time constant commits, then phase 0's ops.
    os_ << "  // tick 0 (phase 0 + constant commits)\n  {\n";
    const auto& phases = EmitAccess::phases(sim_);
    const auto& const_slots = EmitAccess::const_slots(sim_);
    const auto& const_values = EmitAccess::const_values(sim_);
    const auto& const_widths = EmitAccess::const_widths(sim_);
    emit_captures(phases[0]);
    for (std::size_t i = 0; i < const_slots.size(); ++i) {
      const auto slot = static_cast<std::size_t>(const_slots[i]);
      if (activity) {
        os_ << "    tg[" << (slot - 1) << "] += pc(v" << slot << ", "
            << lit(const_values[i]) << ", " << mask_lit(const_widths[i])
            << ");\n";
      }
      os_ << "    v" << slot << " = " << lit(const_values[i]) << ";\n";
    }
    for (const Op& op : phases[0].ops) emit_op(op, activity);
    os_ << "  }\n";

    // Steady state: phases 1..P-1 then 0, straight-line, one guard each.
    os_ << "  u64 t = 1;\n  for (;;) {\n";
    const int period = EmitAccess::period(sim_);
    for (int k = 1; k <= period; ++k) {
      const int p = k % period;
      os_ << "    if (t == ticks) break;\n";
      os_ << "    { // phase " << p << "\n";
      emit_captures(phases[static_cast<std::size_t>(p)]);
      for (const Op& op : phases[static_cast<std::size_t>(p)].ops) {
        emit_op(op, activity);
      }
      os_ << "    }\n    ++t;\n";
    }
    os_ << "  }\n}\n";
  }

  void declare_locals(const char* prefix, std::size_t count,
                      std::size_t base) {
    for (std::size_t i = 0; i < count; ++i) {
      if (i % 16 == 0) os_ << (i == 0 ? "  i64 " : ";\n  i64 ");
      else os_ << ", ";
      os_ << prefix << (base + i) << " = 0";
    }
    if (count > 0) os_ << ";\n";
    for (std::size_t i = 0; i < count; ++i) {
      if (i % 16 == 0) os_ << (i == 0 ? "  (void)" : "; (void)");
      else os_ << "; (void)";
      os_ << prefix << (base + i);
    }
    if (count > 0) os_ << ";\n";
  }

  void emit_captures(const Phase& phase) {
    for (const auto& cap : phase.captures) {
      os_ << "    s" << cap.state << " = v" << cap.src << ";\n";
    }
  }

  static std::string lit(std::int64_t v) {
    // INT64_MIN has no negatable literal form; every IR constant fits in
    // 62 bits, but stay safe anyway.
    if (v == std::numeric_limits<std::int64_t>::min()) {
      return "(-9223372036854775807LL - 1)";
    }
    return std::to_string(v) + "LL";
  }

  static std::string mask_lit(int width) {
    std::ostringstream m;
    m << "0x" << std::hex << width_mask(width) << "ULL";
    return m.str();
  }

  /// The pure value expression for ops that are a single expression; the
  /// multi-statement kinds (kRequant, kOutput) are handled in emit_op.
  std::string expr(const Op& op) const {
    const std::string a = "v" + std::to_string(op.a);
    const std::string b = "v" + std::to_string(op.b);
    const std::string ws = std::to_string(static_cast<int>(op.wrap_shift));
    switch (op.kind) {
      case OpKind::kInput:
        return "w(ip" + std::to_string(op.aux) + "[ic" +
               std::to_string(op.aux) + "++], " + ws + ")";
      case OpKind::kReg:
      case OpKind::kDecimate:
        return "s" + std::to_string(op.aux);
      case OpKind::kAdd:
        return "w(" + a + " + " + b + ", " + ws + ")";
      case OpKind::kSub:
        return "w(" + a + " - " + b + ", " + ws + ")";
      case OpKind::kNeg:
        return "w(-" + a + ", " + ws + ")";
      case OpKind::kShl:
        // Same bit pattern as the tape's signed shift, expressed on u64 so
        // the generated unit is UB-free regardless of sanitizer flags.
        return "(i64)((u64)" + a + " << " +
               std::to_string(static_cast<int>(op.shift)) + ")";
      case OpKind::kShr:
        return a + " >> " + std::to_string(static_cast<int>(op.shift));
      case OpKind::kMux:
        return "w(v" + std::to_string(op.aux) + " != 0 ? " + a + " : " + b +
               ", " + ws + ")";
      default:
        return "0";
    }
  }

  void emit_op(const Op& op, bool activity) {
    const std::string dst = "v" + std::to_string(op.dst);
    const std::string toggle =
        "tg[" + std::to_string(op.dst - 1) + "] += pc(" + dst + ", ";
    if (op.kind == OpKind::kRequant) {
      const auto& rq =
          EmitAccess::requants(sim_)[static_cast<std::size_t>(op.aux)];
      const int shift = rq.src_frac - rq.fmt.frac;
      os_ << "    { i64 q = v" << op.a << ";\n";
      if (shift >= 63) {
        os_ << "      q = 0;\n";
      } else if (shift > 0) {
        if (rq.rounding == fx::Rounding::kRoundNearest) {
          os_ << "      q = (q + " << lit(std::int64_t{1} << (shift - 1))
              << ") >> " << shift << ";\n";
        } else {
          os_ << "      q >>= " << shift << ";\n";
        }
      } else if (shift < 0) {
        os_ << "      q = (i64)((u64)q << " << -shift << ");\n";
      }
      if (rq.overflow == fx::Overflow::kWrap) {
        os_ << "      q = w(q, " << (64 - rq.fmt.width) << ");\n";
      } else {
        os_ << "      q = q < " << lit(rq.fmt.raw_min()) << " ? "
            << lit(rq.fmt.raw_min()) << " : (q > " << lit(rq.fmt.raw_max())
            << " ? " << lit(rq.fmt.raw_max()) << " : q);\n";
      }
      if (activity) {
        os_ << "      " << toggle << "q, " << mask_lit(op.width) << ");\n";
      }
      os_ << "      " << dst << " = q; }\n";
      return;
    }
    if (op.kind == OpKind::kOutput) {
      if (activity) {
        os_ << "    " << toggle << "v" << op.a << ", " << mask_lit(op.width)
            << ");\n";
      }
      os_ << "    " << dst << " = v" << op.a << "; op" << op.aux << "[oc"
          << op.aux << "++] = " << dst << ";\n";
      return;
    }
    if (activity) {
      os_ << "    { const i64 n = " << expr(op) << "; " << toggle << "n, "
          << mask_lit(op.width) << "); " << dst << " = n; }\n";
    } else {
      os_ << "    " << dst << " = " << expr(op) << ";\n";
    }
  }

  const CompiledSimulator& sim_;
  std::ostringstream os_;
};

}  // namespace

EmitResult emit_source(const CompiledSimulator& sim) {
  return Emitter(sim).emit();
}

}  // namespace dsadc::rtl::codegen
