#include "src/rtl/sim.h"

#include <bit>
#include <stdexcept>

#include "src/obs/trace.h"

namespace dsadc::rtl {
namespace {

std::uint64_t hamming(std::int64_t a, std::int64_t b, int width) {
  const std::uint64_t mask =
      width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
  std::uint64_t x =
      (static_cast<std::uint64_t>(a) ^ static_cast<std::uint64_t>(b)) & mask;
#if defined(__POPCNT__)
  return static_cast<std::uint64_t>(std::popcount(x));
#else
  // SWAR popcount; see compiled_sim.cpp for why the libgcc fallback of
  // std::popcount is avoided here.
  x -= (x >> 1) & 0x5555555555555555ull;
  x = (x & 0x3333333333333333ull) + ((x >> 2) & 0x3333333333333333ull);
  x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0full;
  return (x * 0x0101010101010101ull) >> 56;
#endif
}

}  // namespace

Simulator::Simulator(const Module& module) : module_(module) {}

SimResult Simulator::run(
    const std::map<NodeId, std::span<const std::int64_t>>& inputs) {
  DSADC_TRACE_SPAN("rtl_sim", "rtl");
  const auto& nodes = module_.nodes();
  const std::size_t n = nodes.size();

  // Determine run length: min over inputs of samples * clock_div.
  std::uint64_t ticks = ~std::uint64_t{0};
  for (const auto& [id, stream] : inputs) {
    const auto& node = module_.node(id);
    if (node.kind != OpKind::kInput) {
      throw std::invalid_argument("Simulator: stream bound to non-input node");
    }
    ticks = std::min<std::uint64_t>(
        ticks, stream.size() * static_cast<std::uint64_t>(node.clock_div));
  }
  if (ticks == ~std::uint64_t{0}) {
    throw std::invalid_argument("Simulator: no input streams");
  }

  SimResult result;
  result.activity.bit_toggles.assign(n, 0);
  result.activity.updates.assign(n, 0);
  result.activity.base_ticks = ticks;

  // Resolve the input map to a dense per-node stream table once, so the
  // tick loop never touches the std::map. Unbound inputs keep the lazy
  // failure semantics: they only throw if a tick would actually read them.
  std::vector<const std::int64_t*> bound_stream(n, nullptr);
  for (const auto& [id, stream] : inputs) {
    bound_stream[static_cast<std::size_t>(id)] = stream.data();
  }

  std::vector<std::int64_t> value(n, 0);
  std::vector<std::int64_t> next_reg(n, 0);

  for (std::uint64_t t = 0; t < ticks; ++t) {
    // Phase 1: registers and decimators in active domains capture their
    // operand values from the end of the previous tick.
    for (std::size_t i = 0; i < n; ++i) {
      const Node& node = nodes[i];
      if (node.kind != OpKind::kReg && node.kind != OpKind::kDecimate) continue;
      if (t % static_cast<std::uint64_t>(node.clock_div) != 0) continue;
      const std::int64_t captured =
          node.a == kInvalidNode ? 0 : value[static_cast<std::size_t>(node.a)];
      next_reg[i] = captured;
    }
    // Phase 2: propagate in creation (topological) order.
    for (std::size_t i = 0; i < n; ++i) {
      const Node& node = nodes[i];
      const bool active = t % static_cast<std::uint64_t>(node.clock_div) == 0;
      std::int64_t out = value[i];
      switch (node.kind) {
        case OpKind::kInput:
          if (active) {
            const std::int64_t* stream = bound_stream[i];
            if (stream == nullptr) {
              throw std::invalid_argument("Simulator: unbound input " + node.name);
            }
            out = stream[t / static_cast<std::uint64_t>(node.clock_div)];
            out = fx::wrap_to(out, fx::Format{node.width, 0});
          }
          break;
        case OpKind::kConst:
          out = node.value;
          break;
        case OpKind::kReg:
        case OpKind::kDecimate:
          if (active) out = next_reg[i];
          break;
        case OpKind::kAdd:
          if (active) {
            out = fx::wrap_to(value[static_cast<std::size_t>(node.a)] +
                                  value[static_cast<std::size_t>(node.b)],
                              fx::Format{node.width, 0});
          }
          break;
        case OpKind::kSub:
          if (active) {
            out = fx::wrap_to(value[static_cast<std::size_t>(node.a)] -
                                  value[static_cast<std::size_t>(node.b)],
                              fx::Format{node.width, 0});
          }
          break;
        case OpKind::kNeg:
          if (active) {
            out = fx::wrap_to(-value[static_cast<std::size_t>(node.a)],
                              fx::Format{node.width, 0});
          }
          break;
        case OpKind::kShl:
          if (active) out = value[static_cast<std::size_t>(node.a)] << node.amount;
          break;
        case OpKind::kShr:
          if (active) out = value[static_cast<std::size_t>(node.a)] >> node.amount;
          break;
        case OpKind::kMux:
          if (active) {
            out = fx::wrap_to(value[static_cast<std::size_t>(node.c)] != 0
                                  ? value[static_cast<std::size_t>(node.a)]
                                  : value[static_cast<std::size_t>(node.b)],
                              fx::Format{node.width, 0});
          }
          break;
        case OpKind::kRequant:
          if (active) {
            out = fx::requantize(value[static_cast<std::size_t>(node.a)],
                                 node.src_frac, node.fmt, node.rounding,
                                 node.overflow);
          }
          break;
        case OpKind::kOutput:
          if (active) out = value[static_cast<std::size_t>(node.a)];
          break;
      }
      if (active) {
        result.activity.updates[i]++;
        result.activity.bit_toggles[i] += hamming(value[i], out, node.width);
        value[i] = out;
        if (node.kind == OpKind::kOutput) {
          result.outputs[static_cast<NodeId>(i)].push_back(out);
        }
      }
    }
  }
  return result;
}

}  // namespace dsadc::rtl
