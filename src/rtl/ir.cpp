#include "src/rtl/ir.h"

#include <stdexcept>

namespace dsadc::rtl {

NodeId Module::push(Node n) {
  if (n.width < 1 || n.width > 62) {
    throw std::invalid_argument("Module: node width must be in [1, 62]");
  }
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Module::input(const std::string& name, int width, int clock_div) {
  Node n;
  n.kind = OpKind::kInput;
  n.width = width;
  n.clock_div = clock_div;
  n.name = name;
  return push(n);
}

NodeId Module::constant(std::int64_t value, int width, int clock_div) {
  Node n;
  n.kind = OpKind::kConst;
  n.width = width;
  n.value = value;
  n.clock_div = clock_div;
  return push(n);
}

NodeId Module::add(NodeId a, NodeId b, int width) {
  Node n;
  n.kind = OpKind::kAdd;
  n.a = a;
  n.b = b;
  n.width = width;
  n.clock_div = node(a).clock_div;
  if (node(a).clock_div != node(b).clock_div) {
    throw std::invalid_argument("Module::add: clock domain mismatch");
  }
  return push(n);
}

NodeId Module::sub(NodeId a, NodeId b, int width) {
  Node n;
  n.kind = OpKind::kSub;
  n.a = a;
  n.b = b;
  n.width = width;
  n.clock_div = node(a).clock_div;
  if (node(a).clock_div != node(b).clock_div) {
    throw std::invalid_argument("Module::sub: clock domain mismatch");
  }
  return push(n);
}

NodeId Module::neg(NodeId a, int width) {
  Node n;
  n.kind = OpKind::kNeg;
  n.a = a;
  n.width = width;
  n.clock_div = node(a).clock_div;
  return push(n);
}

NodeId Module::shl(NodeId a, int amount) {
  Node n;
  n.kind = OpKind::kShl;
  n.a = a;
  n.amount = amount;
  n.width = std::min(62, node(a).width + amount);
  n.clock_div = node(a).clock_div;
  return push(n);
}

NodeId Module::shr(NodeId a, int amount) {
  Node n;
  n.kind = OpKind::kShr;
  n.a = a;
  n.amount = amount;
  n.width = node(a).width;
  n.clock_div = node(a).clock_div;
  return push(n);
}

NodeId Module::mux(NodeId sel, NodeId t, NodeId f, int width) {
  Node n;
  n.kind = OpKind::kMux;
  n.a = t;
  n.b = f;
  n.c = sel;
  n.width = width;
  n.clock_div = node(t).clock_div;
  if (node(t).clock_div != node(f).clock_div ||
      node(sel).clock_div != node(t).clock_div) {
    throw std::invalid_argument("Module::mux: clock domain mismatch");
  }
  return push(n);
}

NodeId Module::reg(NodeId a) {
  Node n;
  n.kind = OpKind::kReg;
  n.a = a;
  n.width = node(a).width;
  n.clock_div = node(a).clock_div;
  return push(n);
}

NodeId Module::reg_placeholder(int width, int clock_div) {
  Node n;
  n.kind = OpKind::kReg;
  n.width = width;
  n.clock_div = clock_div;
  return push(n);
}

void Module::connect_reg(NodeId reg_id, NodeId src) {
  Node& r = node(reg_id);
  if (r.kind != OpKind::kReg) {
    throw std::invalid_argument("connect_reg: target is not a register");
  }
  if (node(src).clock_div != r.clock_div) {
    throw std::invalid_argument("connect_reg: clock domain mismatch");
  }
  r.a = src;
}

NodeId Module::decimate(NodeId a, int factor) {
  if (factor < 2) throw std::invalid_argument("Module::decimate: factor >= 2");
  Node n;
  n.kind = OpKind::kDecimate;
  n.a = a;
  n.amount = factor;
  n.width = node(a).width;
  n.clock_div = node(a).clock_div * factor;
  return push(n);
}

NodeId Module::requant(NodeId a, int src_frac, fx::Format fmt, fx::Rounding r,
                       fx::Overflow o) {
  Node n;
  n.kind = OpKind::kRequant;
  n.a = a;
  n.width = fmt.width;
  n.src_frac = src_frac;
  n.fmt = fmt;
  n.rounding = r;
  n.overflow = o;
  n.clock_div = node(a).clock_div;
  return push(n);
}

NodeId Module::output(const std::string& name, NodeId a) {
  Node n;
  n.kind = OpKind::kOutput;
  n.a = a;
  n.width = node(a).width;
  n.clock_div = node(a).clock_div;
  n.name = name;
  return push(n);
}

NodeId Module::csd_multiply(NodeId a, const fx::Csd& csd, int frac_bits,
                            int width) {
  if (csd.digits.empty()) {
    return constant(0, width, node(a).clock_div);
  }
  // Accumulate shift-add terms most-significant first (Horner-like order;
  // each digit contributes a shifted copy of `a`).
  NodeId acc = kInvalidNode;
  for (const auto& d : csd.digits) {
    const int shift = d.position + frac_bits;
    if (shift < 0) {
      throw std::invalid_argument("csd_multiply: digit below frac precision");
    }
    NodeId term = shift > 0 ? shl(a, shift) : a;
    if (d.sign < 0) term = neg(term, width);
    acc = (acc == kInvalidNode) ? term : add(acc, term, width);
  }
  return acc;
}

NodeId Module::delay(NodeId a, int n) {
  NodeId cur = a;
  for (int i = 0; i < n; ++i) cur = reg(cur);
  return cur;
}

std::vector<NodeId> Module::nodes_of_kind(OpKind kind) const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == kind) out.push_back(static_cast<NodeId>(i));
  }
  return out;
}

std::size_t Module::adder_count() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) {
    if (node.kind == OpKind::kAdd || node.kind == OpKind::kSub ||
        node.kind == OpKind::kNeg) {
      ++n;  // a negation costs an adder cell (invert + carry-in)
    }
  }
  return n;
}

std::size_t Module::register_count() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) {
    if (node.kind == OpKind::kReg || node.kind == OpKind::kDecimate) ++n;
  }
  return n;
}

std::size_t Module::register_bits() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) {
    if (node.kind == OpKind::kReg || node.kind == OpKind::kDecimate) {
      n += static_cast<std::size_t>(node.width);
    }
  }
  return n;
}

}  // namespace dsadc::rtl
