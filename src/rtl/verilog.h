// Verilog-2001 emitter for the hardware IR (the HDL Coder substitute).
//
// Each IR module becomes one synthesizable Verilog module. Multi-rate
// design uses one clock port per clock domain (clk_div1, clk_div2, ...);
// the integration environment must drive them as phase-aligned divided
// clocks, exactly like the divided-clock tree the paper's chain uses.
#pragma once

#include <string>

#include "src/rtl/ir.h"

namespace dsadc::rtl {

/// Emit the module as Verilog source text.
std::string emit_verilog(const Module& module);

/// Emit a simple self-checking testbench skeleton that instantiates the
/// module, drives the divided clocks, and replays a stimulus file
/// (one sample per line) into the first input while logging outputs.
std::string emit_testbench(const Module& module);

}  // namespace dsadc::rtl
