// Cycle-accurate simulator for the hardware IR.
//
// Plays the role of the paper's Synopsys VCS testbench runs: the generated
// netlist is exercised with the same stimulus as the behavioral model and
// must produce bit-identical outputs. The simulator also records per-node
// switching activity (bit toggles), which feeds the PrimeTime-PX-style
// power estimation in src/synth.
//
// This interpreted walk of the netlist is the *reference* engine: it
// visits every node on every base tick. The phase-scheduled compiled
// engine in compiled_sim.h produces bit-identical results (outputs and
// activity) while only touching nodes whose clock domain fires -- prefer
// it on hot paths and keep this one for differential cross-checks.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "src/rtl/ir.h"

namespace dsadc::rtl {

/// Per-node activity statistics from a simulation run.
struct Activity {
  std::vector<std::uint64_t> bit_toggles;  ///< per node, Hamming toggles
  std::vector<std::uint64_t> updates;      ///< per node, evaluation count
  std::uint64_t base_ticks = 0;
};

/// Simulation result: output streams plus activity.
struct SimResult {
  /// Output samples per output node, one entry per domain tick.
  std::map<NodeId, std::vector<std::int64_t>> outputs;
  Activity activity;
};

class Simulator {
 public:
  explicit Simulator(const Module& module);

  /// Drive the module for as many base ticks as the (single-domain-rate)
  /// input streams allow. `inputs` maps each kInput node to its sample
  /// stream (consumed one sample per domain tick of that input).
  SimResult run(const std::map<NodeId, std::span<const std::int64_t>>& inputs);

 private:
  const Module& module_;
};

}  // namespace dsadc::rtl
