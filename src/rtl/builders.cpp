#include "src/rtl/builders.h"

#include <cmath>
#include <stdexcept>

namespace dsadc::rtl {
namespace {

/// Append a Hogenauer CIC stage; returns the decimated output node.
NodeId append_cic(Module& m, NodeId in, const design::CicSpec& spec,
                  int clock_div) {
  const int w = spec.register_width();
  // Integrator cascade: sum_k = sum_{k-1} + reg_k (reg_k captures sum_k).
  NodeId cur = in;
  for (int k = 0; k < spec.order; ++k) {
    const NodeId state = m.reg_placeholder(w, clock_div);
    const NodeId sum = m.add(cur, state, w);
    m.connect_reg(state, sum);
    cur = sum;
  }
  // Rate boundary (the pipeline register of Fig. 6).
  NodeId v = m.decimate(cur, spec.decimation);
  // Comb (differentiator) cascade at the decimated rate.
  for (int k = 0; k < spec.order; ++k) {
    const NodeId d = m.reg(v);
    v = m.sub(v, d, w);
  }
  return v;
}

/// Append the tapped-cascade halfband in its polyphase form (Fig. 7):
/// the even-phase stream drives the G2 subfilter cascade at the *output*
/// rate; the odd-phase stream is the 0.5 delay path. Bit-compatible with
/// decim::SaramakiHbfDecimator.
NodeId append_hbf(Module& m, NodeId in, const design::SaramakiHbf& design,
                  fx::Format in_fmt, fx::Format out_fmt, int coeff_frac,
                  int guard_frac, int clock_div) {
  const std::size_t n1 = design.n1;
  const std::size_t n2 = design.n2;
  const std::size_t d2 = 2 * n2 - 1;
  const std::size_t big_d = (2 * n1 - 1) * d2;
  const fx::Format internal{in_fmt.width + 4 + guard_frac,
                            in_fmt.frac + guard_frac};
  // Post-multiplier (product) format: the datapath drops product LSBs
  // right after each CSD multiplier, keeping the adder tree narrow
  // (must match decim::SaramakiHbfDecimator's prod_fmt_).
  const fx::Format prod{in_fmt.width + 7 + guard_frac,
                        in_fmt.frac + guard_frac + 2};
  const int wi = internal.width;
  const int wmul = std::min(62, wi + 1 + coeff_frac + 4);
  const int wtree = prod.width + 4;
  (void)clock_div;

  // Promote input into the internal guard format.
  const NodeId x = m.requant(in, in_fmt.frac, internal, fx::Rounding::kTruncate,
                             fx::Overflow::kSaturate);

  // Polyphase split: the two phase streams at half the clock. The extra
  // register in front of the second decimator makes it capture the
  // complementary phase.
  const NodeId xe = m.decimate(x, 2);
  const NodeId xo = m.decimate(m.reg(x), 2);

  // 0.5 path: the complementary phase must trail the cascade stream by D
  // input samples. The reg+decimate path already contributes two base
  // ticks relative to xe, so (D - 1)/2 half-rate registers remain.
  const NodeId xd = m.delay(xo, static_cast<int>((big_d - 1) / 2));

  // G2 cascade at the output rate.
  std::vector<NodeId> odd_outputs;
  NodeId cur = xe;
  for (std::size_t blk = 0; blk < 2 * n1 - 1; ++blk) {
    // Delay line of length 2*n2 (2*n2 - 1 registers).
    std::vector<NodeId> line(2 * n2);
    line[0] = cur;
    for (std::size_t i = 1; i < 2 * n2; ++i) line[i] = m.reg(line[i - 1]);
    // Symmetric pre-adds + CSD multiplies (requantized to the product
    // format) + narrow tree sum.
    NodeId acc = kInvalidNode;
    for (std::size_t j = 1; j <= n2; ++j) {
      const std::size_t k_near = n2 - j;
      const std::size_t k_far = n2 + j - 1;
      const NodeId pre = m.add(line[k_near], line[k_far], wi + 1);
      NodeId p = m.csd_multiply(pre, design.f2_csd[j - 1], coeff_frac, wmul);
      p = m.requant(p, internal.frac + coeff_frac, prod,
                    fx::Rounding::kTruncate, fx::Overflow::kSaturate);
      acc = (acc == kInvalidNode) ? p : m.add(acc, p, wtree);
    }
    cur = m.requant(acc, prod.frac, internal, fx::Rounding::kRoundNearest,
                    fx::Overflow::kSaturate);
    if (blk % 2 == 0) odd_outputs.push_back(cur);
  }

  // Branch alignment delays (output-rate samples).
  std::vector<NodeId> aligned(n1);
  for (std::size_t i = 1; i < n1; ++i) {
    aligned[i - 1] = m.delay(odd_outputs[i - 1],
                             static_cast<int>((big_d - (2 * i - 1) * d2) / 2));
  }
  aligned[n1 - 1] = odd_outputs[n1 - 1];

  // Output sum: 0.5 * delayed odd phase + outer taps (power basis), all
  // requantized to the product format before the final narrow sum.
  NodeId sum = m.requant(m.shl(xd, coeff_frac - 1), internal.frac + coeff_frac,
                         prod, fx::Rounding::kTruncate, fx::Overflow::kSaturate);
  for (std::size_t i = 0; i < n1; ++i) {
    NodeId p = m.csd_multiply(aligned[i], design.f1_csd[i], coeff_frac, wmul);
    p = m.requant(p, internal.frac + coeff_frac, prod, fx::Rounding::kTruncate,
                  fx::Overflow::kSaturate);
    sum = m.add(sum, p, wtree);
  }
  return m.requant(sum, prod.frac, out_fmt, fx::Rounding::kRoundNearest,
                   fx::Overflow::kSaturate);
}

NodeId append_scaler(Module& m, NodeId in, const fx::Csd& csd,
                     int csd_frac_bits, fx::Format in_fmt, fx::Format out_fmt) {
  const int wfull = std::min(62, in_fmt.width + csd_frac_bits + 4);
  const NodeId prod = m.csd_multiply(in, csd, csd_frac_bits, wfull);
  return m.requant(prod, in_fmt.frac + csd_frac_bits, out_fmt,
                   fx::Rounding::kRoundNearest, fx::Overflow::kSaturate);
}

NodeId append_symmetric_fir(Module& m, NodeId in,
                            const std::vector<double>& taps, int coeff_frac,
                            fx::Format in_fmt, fx::Format out_fmt) {
  const std::size_t n = taps.size();
  if (n < 3) throw std::invalid_argument("append_symmetric_fir: too few taps");
  const int wi = in_fmt.width;
  // Accumulator headroom must cover the total tap mass: |acc| <=
  // 2^wi * sum|t_k| for the quantized integer taps t_k. The floor of 7
  // keeps the historical width for small-tap filters (equalizers), while
  // large integer taps (sharpened-CIC kernels) get what they need.
  double sum_abs = 0.0;
  for (double t : taps) sum_abs += std::abs(t);
  const int growth =
      1 + static_cast<int>(std::ceil(std::log2(std::max(2.0, sum_abs))));
  const int wfull = std::min(62, wi + 1 + coeff_frac + std::max(growth, 7));

  // Delay line x[n-k], k = 0..n-1.
  std::vector<NodeId> line(n);
  line[0] = in;
  for (std::size_t i = 1; i < n; ++i) line[i] = m.reg(line[i - 1]);

  NodeId acc = kInvalidNode;
  const auto add_term = [&](NodeId term) {
    acc = (acc == kInvalidNode) ? term : m.add(acc, term, wfull);
  };
  for (std::size_t k = 0; k < n / 2; ++k) {
    const fx::Csd c = fx::csd_encode(taps[k], coeff_frac);
    if (c.digits.empty()) continue;
    const NodeId pre = m.add(line[k], line[n - 1 - k], wi + 1);
    add_term(m.csd_multiply(pre, c, coeff_frac, wfull));
  }
  if (n % 2 == 1) {
    const fx::Csd c = fx::csd_encode(taps[n / 2], coeff_frac);
    if (!c.digits.empty()) add_term(m.csd_multiply(line[n / 2], c, coeff_frac, wfull));
  }
  if (acc == kInvalidNode) acc = m.constant(0, wfull, m.node(in).clock_div);
  return m.requant(acc, in_fmt.frac + coeff_frac, out_fmt,
                   fx::Rounding::kRoundNearest, fx::Overflow::kSaturate);
}

}  // namespace

BuiltStage build_cic(const design::CicSpec& spec, int clock_div,
                     BuildOptions options) {
  BuiltStage s("sinc" + std::to_string(spec.order) + "_decim" +
                   std::to_string(spec.decimation),
               options.arena);
  s.options = options;
  s.in = s.module.input("in", spec.input_bits, clock_div);
  const NodeId y = append_cic(s.module, s.in, spec, clock_div);
  s.out = s.module.output("out", y);
  return s;
}

BuiltStage build_saramaki_hbf(const design::SaramakiHbf& design,
                              fx::Format in_fmt, fx::Format out_fmt,
                              int coeff_frac_bits, int guard_frac_bits,
                              int clock_div, BuildOptions options) {
  BuiltStage s("saramaki_hbf", options.arena);
  s.options = options;
  s.in = s.module.input("in", in_fmt.width, clock_div);
  const NodeId y = append_hbf(s.module, s.in, design, in_fmt, out_fmt,
                              coeff_frac_bits, guard_frac_bits, clock_div);
  s.out = s.module.output("out", y);
  return s;
}

BuiltStage build_scaler(const fx::Csd& csd, int csd_frac_bits,
                        fx::Format in_fmt, fx::Format out_fmt, int clock_div,
                        BuildOptions options) {
  BuiltStage s("scaler", options.arena);
  s.options = options;
  s.in = s.module.input("in", in_fmt.width, clock_div);
  const NodeId y =
      append_scaler(s.module, s.in, csd, csd_frac_bits, in_fmt, out_fmt);
  s.out = s.module.output("out", y);
  return s;
}

BuiltStage build_symmetric_fir(const std::vector<double>& taps,
                               int coeff_frac_bits, fx::Format in_fmt,
                               fx::Format out_fmt, int clock_div,
                               BuildOptions options) {
  BuiltStage s("equalizer_fir", options.arena);
  s.options = options;
  s.in = s.module.input("in", in_fmt.width, clock_div);
  const NodeId y = append_symmetric_fir(s.module, s.in, taps, coeff_frac_bits,
                                        in_fmt, out_fmt);
  s.out = s.module.output("out", y);
  return s;
}

BuiltChain build_chain(const decim::ChainConfig& config, BuildOptions options) {
  BuiltChain chain(options.arena);
  chain.in = chain.full.input("codes", config.input_format.width, 1);

  // --- CIC cascade.
  NodeId cur = chain.in;
  int div = 1;
  int gain_log2 = 0;
  for (std::size_t i = 0; i < config.cic_stages.size(); ++i) {
    const auto& spec = config.cic_stages[i];
    cur = append_cic(chain.full, cur, spec, div);
    div *= spec.decimation;
    gain_log2 += spec.order * static_cast<int>(std::log2(spec.decimation));
    chain.stages.push_back(build_cic(spec, div / spec.decimation, options));
    chain.stage_names.push_back("sinc" + std::to_string(spec.order) + "_" +
                                std::to_string(i + 1));
  }

  // --- Relabel CIC gain as fractional weight, into the HBF input format.
  cur = chain.full.requant(cur, gain_log2, config.hbf_in_format,
                           fx::Rounding::kRoundNearest, fx::Overflow::kSaturate);

  // --- Halfband.
  cur = append_hbf(chain.full, cur, config.hbf, config.hbf_in_format,
                   config.hbf_out_format, config.hbf_coeff_frac_bits,
                   /*guard_frac=*/6, div);
  chain.stages.push_back(build_saramaki_hbf(config.hbf, config.hbf_in_format,
                                            config.hbf_out_format,
                                            config.hbf_coeff_frac_bits, 6, div,
                                            options));
  chain.stage_names.push_back("halfband");
  div *= 2;

  // --- Scaler.
  const fx::Csd scale_csd = fx::csd_encode_limited(config.scale, 14, 8);
  cur = append_scaler(chain.full, cur, scale_csd, 14, config.hbf_out_format,
                      config.scaler_out_format);
  chain.stages.push_back(build_scaler(scale_csd, 14, config.hbf_out_format,
                                      config.scaler_out_format, div, options));
  chain.stage_names.push_back("scaler");

  // --- Equalizer.
  cur = append_symmetric_fir(chain.full, cur, config.equalizer_taps,
                             config.equalizer_frac_bits,
                             config.scaler_out_format, config.output_format);
  chain.stages.push_back(build_symmetric_fir(
      config.equalizer_taps, config.equalizer_frac_bits,
      config.scaler_out_format, config.output_format, div, options));
  chain.stage_names.push_back("equalizer");

  chain.out = chain.full.output("data_out", cur);
  return chain;
}

}  // namespace dsadc::rtl
