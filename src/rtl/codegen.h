// JIT codegen backend for the compiled RTL simulator.
//
// The tape engine in compiled_sim.cpp dispatches every op through a
// switch; on the paper chain that costs ~7 cycles per op, most of it
// dispatch and operand indirection. This backend emits the per-phase op
// tape as straight-line C++ once per netlist -- every op inlined, every
// operand slot a local variable, wrap shifts and requantizer constants
// folded into literals -- compiles it with the system C++ compiler into a
// shared object, and `dlopen`s the result. Elaboration splits in two:
//
//   * emit_source() (declared in compiled_sim.h, defined here as a friend
//     of CompiledSimulator) renders the elaborated tape into a
//     self-contained translation unit with two extern "C" entry points,
//     `dsadc_cg_run` (pure dataflow) and `dsadc_cg_run_activity` (per-node
//     Hamming-toggle accounting), mirroring the tape engine's two modes;
//   * build_kernel() drives the toolchain: content-hash cache lookup
//     (FNV-1a over compiler identity + source) under
//     DSADC_CODEGEN_CACHE_DIR, an atomic write-compile-rename on miss,
//     eviction + one recompile when a cached .so fails to load, and
//     dlopen/dlsym of the entry points.
//
// Every failure mode -- no compiler on PATH, compile error, cache dir not
// writable, unloadable object, netlist shapes the emitter refuses
// (runtime-throwing requant shifts, oversized tapes) -- degrades to the
// tape interpreter; CompiledSimulator records the reason in
// engine_detail(). Environment knobs:
//
//   DSADC_CODEGEN           on/1 enables codegen for kAuto constructions;
//                           off/0 force-disables it even for kOn.
//   DSADC_CODEGEN_CACHE_DIR cache directory (default $TMPDIR/dsadc-codegen).
//   DSADC_CODEGEN_CXX       compiler override; a bogus path simulates a
//                           compiler-less host (tests use /nonexistent).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace dsadc::rtl::codegen {

/// A loaded kernel: the dlopen handle plus the resolved entry points. The
/// generated functions own no state; all buffers are caller-provided, so
/// one kernel can serve any number of concurrent run() calls.
class CompiledKernel {
 public:
  /// Pure-dataflow entry point. `in` holds one pointer per kInput node
  /// (aux order), `out` one pointer per kOutput node; the kernel consumes
  /// and produces exactly ceil(ticks / clock_div) samples per stream.
  using RunFn = void (*)(std::uint64_t ticks,
                         const std::int64_t* const* in,
                         std::int64_t* const* out);
  /// Activity entry point: same contract plus per-node Hamming toggle
  /// accumulation into `toggles` (node-id indexed, caller-zeroed). Update
  /// counts are analytic (ceil(ticks / clock_div) per node) and filled by
  /// the driver, not the kernel.
  using RunActivityFn = void (*)(std::uint64_t ticks,
                                 const std::int64_t* const* in,
                                 std::int64_t* const* out,
                                 std::uint64_t* toggles);

  CompiledKernel(void* handle, RunFn run_fn, RunActivityFn run_activity_fn)
      : handle_(handle), run_(run_fn), run_activity_(run_activity_fn) {}
  ~CompiledKernel();
  CompiledKernel(const CompiledKernel&) = delete;
  CompiledKernel& operator=(const CompiledKernel&) = delete;

  RunFn run() const { return run_; }
  RunActivityFn run_activity() const { return run_activity_; }

 private:
  void* handle_ = nullptr;
  RunFn run_ = nullptr;
  RunActivityFn run_activity_ = nullptr;
};

/// emit_source() output: exactly one of `source` (emittable netlist) or
/// `error` (emitter refusal; the caller stays on the tape engine, which
/// reproduces the scalar semantics including any runtime throw).
struct EmitResult {
  std::string source;
  std::string error;
};

/// build_kernel() output. `kernel` is null on any failure, with the reason
/// in `detail`; on success `so_path` names the cache object and
/// `cache_hit`/`evicted` describe how it was obtained.
struct BuildResult {
  std::shared_ptr<CompiledKernel> kernel;
  bool cache_hit = false;
  bool evicted = false;  ///< a stale/corrupt cached .so was replaced
  std::string detail;
  std::string so_path;
};

/// DSADC_CODEGEN says "on"/"1"/"true" (enables kAuto constructions).
bool enabled_by_env();
/// DSADC_CODEGEN says "off"/"0"/"false" (global kill switch, beats kOn).
bool disabled_by_env();

/// Resolved cache directory (env override or $TMPDIR/dsadc-codegen).
std::string cache_dir();

/// Compile `source` (or fetch it from the content-hash cache) and load the
/// entry points. Thread-safe: concurrent builds of the same source race
/// benignly on an atomic rename.
BuildResult build_kernel(const std::string& source);

}  // namespace dsadc::rtl::codegen
