// RAII trace spans with Chrome trace-event JSON export.
//
// A Span measures the wall time of a scope and records a complete ("ph":
// "X") trace event when tracing is on. The buffer serializes to the Chrome
// trace-event format, so a dump loads directly in chrome://tracing or
// https://ui.perfetto.dev.
//
// Tracing is off by default. It turns on when DSADC_TRACE_OUT=<path> is
// set in the environment (the buffer is then auto-written to <path> at
// process exit) or programmatically via set_trace_enabled(true). When off,
// a Span costs one branch and no clock reads.
#pragma once

#include <cstdint>
#include <string>

#include "src/obs/obs.h"

namespace dsadc::obs {

/// True when span timings are being recorded. Follows enabled(): tracing
/// never records while observability as a whole is disabled.
bool trace_enabled();
void set_trace_enabled(bool on);

/// Microseconds since the process trace epoch (first use).
std::int64_t trace_now_us();

/// Append one complete event (used by Span; public for custom phases).
void trace_record(std::string name, const char* category,
                  std::int64_t start_us, std::int64_t dur_us);

/// Allocation-free overload for names with static storage duration
/// (string literals): the pointer is kept, not copied.
void trace_record(const char* name, const char* category,
                  std::int64_t start_us, std::int64_t dur_us);

/// Cap on buffered events. Defaults to DSADC_TRACE_MAX_EVENTS from the
/// environment, else 1M; records past the cap are counted, not stored,
/// so a long soak cannot grow the buffer without bound.
void set_trace_max_events(std::size_t cap);
std::size_t trace_max_events();

/// Events dropped at the cap since the last clear_trace().
std::size_t trace_dropped_count();

/// Serialize the buffer: {"traceEvents": [...], "displayTimeUnit": "ms"}.
std::string trace_json();

/// Write trace_json() to `path`; returns false on I/O failure.
bool write_trace(const std::string& path);

/// Drop all recorded events (tests).
void clear_trace();

/// Number of buffered events.
std::size_t trace_event_count();

class Span {
 public:
  explicit Span(std::string name, const char* category = "flow");
  /// Literal-name overload: hot-path spans pay no string allocation on
  /// construction or record.
  explicit Span(const char* name, const char* category = "flow");
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin();

  std::string name_;
  const char* name_lit_ = nullptr;  ///< set by the literal overload
  const char* category_;
  std::int64_t start_us_ = -1;  ///< -1: nothing records at exit
  bool trace_on_ = false;       ///< tracing (vs only the store) at entry
};

}  // namespace dsadc::obs

#ifdef DSADC_OBS_COMPILED_OFF
#define DSADC_TRACE_SPAN(name, category) \
  do {                                   \
  } while (0)
#else
#define DSADC_TRACE_SPAN_CAT2(a, b) a##b
#define DSADC_TRACE_SPAN_CAT(a, b) DSADC_TRACE_SPAN_CAT2(a, b)
/// Declares a scope-lifetime span object (not an expression statement).
#define DSADC_TRACE_SPAN(name, category)                   \
  ::dsadc::obs::Span DSADC_TRACE_SPAN_CAT(dsadc_span_,     \
                                          __LINE__)(name, category)
#endif
