#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace dsadc::obs {

#ifndef DSADC_OBS_COMPILED_OFF
namespace detail {

std::atomic<int> g_enabled{-1};

bool init_enabled() {
  const char* v = std::getenv("DSADC_OBS_DISABLE");
  const bool on = !(v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0);
  int expected = -1;
  g_enabled.compare_exchange_strong(expected, on ? 1 : 0,
                                    std::memory_order_relaxed);
  return g_enabled.load(std::memory_order_relaxed) != 0;
}

}  // namespace detail
#endif

std::uint64_t Gauge::encode(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double Gauge::decode(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bounds must be sorted ascending");
  }
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Double-precision sum via CAS on the bit pattern (atomic<double>
  // fetch_add is not universally lock-free; this always is on x86-64).
  std::uint64_t old = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    double cur;
    std::memcpy(&cur, &old, sizeof(cur));
    const double next = cur + v;
    std::uint64_t next_bits;
    std::memcpy(&next_bits, &next, sizeof(next_bits));
    if (sum_bits_.compare_exchange_weak(old, next_bits,
                                        std::memory_order_relaxed)) {
      break;
    }
  }
}

double Histogram::sum() const {
  const std::uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  return buckets_.at(i).load(std::memory_order_relaxed);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

Registry& Registry::instance() {
  // Leaked on purpose: instrumented destructors and atexit hooks may still
  // touch the registry during static teardown.
  static Registry* r = new Registry();
  return *r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

std::uint64_t Registry::counter_total(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    total += it->second->value();
  }
  return total;
}

void Registry::reset_all() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string number_to_json(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // JSON has no inf/nan literals; clamp to null.
  if (std::strstr(buf, "inf") != nullptr || std::strstr(buf, "nan") != nullptr) {
    return "null";
  }
  return buf;
}

}  // namespace

std::string Registry::to_json(int indent) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string nl = indent > 0 ? "\n" : "";
  const std::string pad(indent > 0 ? static_cast<std::size_t>(indent) : 0, ' ');
  std::string out = "{" + nl;

  out += pad;
  out += "\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ", ";
    first = false;
    append_json_string(out, name);
    out += ": " + std::to_string(c->value());
  }
  out += "}," + nl;

  out += pad;
  out += "\"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ", ";
    first = false;
    append_json_string(out, name);
    out += ": " + number_to_json(g->value());
  }
  out += "}," + nl;

  out += pad;
  out += "\"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ", ";
    first = false;
    append_json_string(out, name);
    out += ": {\"count\": " + std::to_string(h->count());
    out += ", \"sum\": " + number_to_json(h->sum());
    out += ", \"bounds\": [";
    for (std::size_t i = 0; i < h->bounds().size(); ++i) {
      if (i) out += ", ";
      out += number_to_json(h->bounds()[i]);
    }
    out += "], \"buckets\": [";
    for (std::size_t i = 0; i <= h->bounds().size(); ++i) {
      if (i) out += ", ";
      out += std::to_string(h->bucket_count(i));
    }
    out += "]}";
  }
  out += "}" + nl + "}";
  return out;
}

}  // namespace dsadc::obs
