#include "src/obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "src/obs/store/store.h"

namespace dsadc::obs {
namespace {

struct TraceEvent {
  std::string name;          ///< empty when name_lit is set
  const char* name_lit;      ///< static-storage name, or nullptr
  const char* category;
  std::int64_t start_us;
  std::int64_t dur_us;
  std::uint64_t tid;
};

std::size_t default_max_events() {
  if (const char* v = std::getenv("DSADC_TRACE_MAX_EVENTS")) {
    const long long n = std::strtoll(v, nullptr, 10);
    if (n >= 1) return static_cast<std::size_t>(n);
  }
  return std::size_t{1} << 20;
}

struct TraceState {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::size_t max_events = default_max_events();
  std::size_t dropped = 0;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
};

TraceState& state() {
  static TraceState* s = new TraceState();
  return *s;
}

/// -1 undecided, 0 off, 1 on.
std::atomic<int> g_trace_enabled{-1};

void dump_at_exit() {
  const char* path = std::getenv("DSADC_TRACE_OUT");
  if (path != nullptr && path[0] != '\0') write_trace(path);
}

bool init_trace_enabled() {
  const char* path = std::getenv("DSADC_TRACE_OUT");
  const bool on = path != nullptr && path[0] != '\0';
  int expected = -1;
  if (g_trace_enabled.compare_exchange_strong(expected, on ? 1 : 0,
                                              std::memory_order_relaxed) &&
      on) {
    std::atexit(dump_at_exit);
  }
  return g_trace_enabled.load(std::memory_order_relaxed) != 0;
}

std::uint64_t this_thread_id() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffffff;
}

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
      continue;
    }
    out += c;
  }
}

}  // namespace

bool trace_enabled() {
  if (!enabled()) return false;
  const int s = g_trace_enabled.load(std::memory_order_relaxed);
  if (s >= 0) return s != 0;
  return init_trace_enabled();
}

void set_trace_enabled(bool on) {
  g_trace_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::int64_t trace_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - state().epoch)
      .count();
}

void trace_record(std::string name, const char* category,
                  std::int64_t start_us, std::int64_t dur_us) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.events.size() >= s.max_events) {
    ++s.dropped;
    return;
  }
  s.events.push_back(
      {std::move(name), nullptr, category, start_us, dur_us,
       this_thread_id()});
}

void trace_record(const char* name, const char* category,
                  std::int64_t start_us, std::int64_t dur_us) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.events.size() >= s.max_events) {
    ++s.dropped;
    return;
  }
  s.events.push_back(
      {std::string(), name, category, start_us, dur_us, this_thread_id()});
}

void set_trace_max_events(std::size_t cap) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.max_events = cap;
}

std::size_t trace_max_events() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.max_events;
}

std::size_t trace_dropped_count() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.dropped;
}

std::string trace_json() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    const TraceEvent& e = s.events[i];
    if (i) out += ",";
    out += "\n  {\"name\": \"";
    append_escaped(out, e.name_lit != nullptr ? std::string_view(e.name_lit)
                                              : std::string_view(e.name));
    out += "\", \"cat\": \"";
    append_escaped(out, e.category);
    out += "\", \"ph\": \"X\", \"pid\": 1, \"tid\": ";
    out += std::to_string(e.tid);
    out += ", \"ts\": ";
    out += std::to_string(e.start_us);
    out += ", \"dur\": ";
    out += std::to_string(e.dur_us);
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

bool write_trace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = trace_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

void clear_trace() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.events.clear();
  s.dropped = 0;
}

std::size_t trace_event_count() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.events.size();
}

Span::Span(std::string name, const char* category)
    : name_(std::move(name)), category_(category) {
  begin();
}

Span::Span(const char* name, const char* category)
    : name_lit_(name), category_(category) {
  begin();
}

void Span::begin() {
  trace_on_ = trace_enabled();
  if (trace_on_ || store::enabled()) start_us_ = trace_now_us();
}

Span::~Span() {
  if (start_us_ < 0) return;
  const std::int64_t dur = trace_now_us() - start_us_;
  if (store::enabled()) {
    store::Event e;
    e.category = store::Category::kFlow;
    e.name = store::intern(name_lit_ != nullptr ? std::string_view(name_lit_)
                                                : std::string_view(name_));
    // ts 0 means "stamp now" to emit(); clamp the epoch-adjacent case.
    e.ts_us = start_us_ > 0 ? start_us_ : 1;
    e.dur_us = dur;
    store::emit(e);
  }
  if (!trace_on_) return;
  // A span that outlives a set_trace_enabled(false) still records: the
  // matching begin was already committed to the timeline.
  if (name_lit_ != nullptr) {
    trace_record(name_lit_, category_, start_us_, dur);
  } else {
    trace_record(std::move(name_), category_, start_us_, dur);
  }
}

}  // namespace dsadc::obs
