// Structured leveled logger.
//
// Records are (level, component, message); the default sink writes
// "[level] component: message" lines to stderr. The threshold comes from
// DSADC_LOG_LEVEL (trace|debug|info|warn|error|off) and defaults to warn,
// so debug instrumentation -- e.g. the remez iteration log -- is silent
// unless asked for. Tests install a capturing sink via set_log_sink.
//
// With -DDSADC_OBS_COMPILED_OFF the DSADC_LOG_* macros compile away;
// message arguments are not even evaluated.
#pragma once

#include <functional>
#include <string>

#include "src/obs/obs.h"

namespace dsadc::obs {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

const char* log_level_name(LogLevel level);
/// Parse a level name; unknown names fall back to kWarn.
LogLevel log_level_from_name(const std::string& name);

LogLevel log_level();
void set_log_level(LogLevel level);

using LogSink =
    std::function<void(LogLevel, const char* component, const std::string&)>;
/// Replace the output sink; an empty function restores the stderr default.
void set_log_sink(LogSink sink);

/// True when a record at `level` would reach the sink. Use to gate
/// expensive message construction.
bool log_enabled(LogLevel level);

void log(LogLevel level, const char* component, const std::string& message);

/// printf-formatted convenience entry point.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 3, 4)))
#endif
void logf(LogLevel level, const char* component, const char* fmt, ...);

}  // namespace dsadc::obs

#ifdef DSADC_OBS_COMPILED_OFF
#define DSADC_LOG(level, component, ...) \
  do {                                   \
  } while (0)
#else
#define DSADC_LOG(level, component, ...)                     \
  do {                                                       \
    if (::dsadc::obs::log_enabled(level)) {                  \
      ::dsadc::obs::logf(level, component, __VA_ARGS__);     \
    }                                                        \
  } while (0)
#endif

#define DSADC_LOG_DEBUG(component, ...) \
  DSADC_LOG(::dsadc::obs::LogLevel::kDebug, component, __VA_ARGS__)
#define DSADC_LOG_INFO(component, ...) \
  DSADC_LOG(::dsadc::obs::LogLevel::kInfo, component, __VA_ARGS__)
#define DSADC_LOG_WARN(component, ...) \
  DSADC_LOG(::dsadc::obs::LogLevel::kWarn, component, __VA_ARGS__)
#define DSADC_LOG_ERROR(component, ...) \
  DSADC_LOG(::dsadc::obs::LogLevel::kError, component, __VA_ARGS__)
