// Machine-readable bench telemetry.
//
// Every bench binary constructs a BenchReport at startup, sets its key
// figures of merit while printing its human-readable tables, and returns
// `report.finish(ok)` from main. finish() writes BENCH_<name>.json next to
// the text output -- into $DSADC_BENCH_OUT when set (so CI and local runs
// do not collide), else the current directory -- giving the perf history
// a machine-readable record per run:
//
//   {"bench": "e2e_snr", "ok": true, "wall_ms": 812.4,
//    "metrics": {"snr_db_5mhz": 84.5, ...}}
#pragma once

#include <chrono>
#include <map>
#include <string>

namespace dsadc::obs {

class BenchReport {
 public:
  /// `name` without the bench_ prefix; the record lands in
  /// output_dir() + "/BENCH_" + name + ".json".
  explicit BenchReport(std::string name);

  /// Destructor writes a record with ok=false if finish() was never
  /// reached (a crash mid-bench still leaves evidence behind).
  ~BenchReport();

  void set(const std::string& key, double value);
  void set(const std::string& key, const std::string& value);
  /// Keeps string literals away from the bool overload.
  void set(const std::string& key, const char* value);
  void set(const std::string& key, bool value);
  /// Convenience for the headline perf figure.
  void set_throughput(double samples_per_second);

  /// Write the JSON record (once) and map ok to a process exit code.
  int finish(bool ok);

  /// $DSADC_BENCH_OUT or ".".
  static std::string output_dir();
  std::string output_path() const;

 private:
  void write(bool ok);

  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::map<std::string, std::string> fields_;  ///< key -> JSON-encoded value
  bool written_ = false;
};

}  // namespace dsadc::obs
