#include "src/obs/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace dsadc::obs {
namespace {

struct LogState {
  std::mutex mu;
  LogSink sink;  ///< empty => stderr default
};

LogState& log_state() {
  static LogState* s = new LogState();
  return *s;
}

/// -1 undecided (read DSADC_LOG_LEVEL on first use), else a LogLevel.
std::atomic<int> g_level{-1};

int init_level() {
  const char* v = std::getenv("DSADC_LOG_LEVEL");
  const LogLevel parsed =
      v != nullptr ? log_level_from_name(v) : LogLevel::kWarn;
  int expected = -1;
  g_level.compare_exchange_strong(expected, static_cast<int>(parsed),
                                  std::memory_order_relaxed);
  return g_level.load(std::memory_order_relaxed);
}

void stderr_sink(LogLevel level, const char* component,
                 const std::string& message) {
  std::fprintf(stderr, "[%s] %s: %s\n", log_level_name(level), component,
               message.c_str());
}

}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "unknown";
}

LogLevel log_level_from_name(const std::string& name) {
  for (int i = 0; i <= static_cast<int>(LogLevel::kOff); ++i) {
    const auto level = static_cast<LogLevel>(i);
    if (name == log_level_name(level)) return level;
  }
  return LogLevel::kWarn;
}

LogLevel log_level() {
  int s = g_level.load(std::memory_order_relaxed);
  if (s < 0) s = init_level();
  return static_cast<LogLevel>(s);
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void set_log_sink(LogSink sink) {
  LogState& s = log_state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.sink = std::move(sink);
}

bool log_enabled(LogLevel level) {
  if (!enabled()) return false;
  return level >= log_level() && level != LogLevel::kOff;
}

void log(LogLevel level, const char* component, const std::string& message) {
  if (!log_enabled(level)) return;
  LogState& s = log_state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.sink) {
    s.sink(level, component, message);
  } else {
    stderr_sink(level, component, message);
  }
}

void logf(LogLevel level, const char* component, const char* fmt, ...) {
  if (!log_enabled(level)) return;
  char buf[1024];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  log(level, component, buf);
}

}  // namespace dsadc::obs
