// Column-file writer for the trace store (drainer-thread side).
//
// StoreWriter owns the store directory's files. It is single-threaded by
// contract: only the background drainer (store.cpp) calls append() /
// flush_strings() / finalize(), so it needs no locking. Events
// accumulate per category until a block of kBlockEvents is full, then
// the block's columns are serialized contiguously and written with one
// fwrite; finalize() flushes partial blocks and writes the footers.
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/obs/store/format.h"

namespace dsadc::obs::store {

class StoreWriter {
 public:
  /// Creates `dir` (and parents) if missing; ok() reports success.
  explicit StoreWriter(std::string dir);
  /// Closes files without footers (finalize() writes them); a store torn
  /// down this way exercises the reader's recovery scan.
  ~StoreWriter();

  StoreWriter(const StoreWriter&) = delete;
  StoreWriter& operator=(const StoreWriter&) = delete;

  bool ok() const { return ok_; }
  const std::string& dir() const { return dir_; }

  /// Stage a batch of events into their category files, flushing every
  /// completed block.
  void append(const std::vector<Event>& batch);

  /// Rewrite strings.dsst when the interner grew since the last write.
  void flush_strings(const std::vector<std::string>& strings);

  /// Flush partial blocks, write the string table and per-file footers,
  /// and close every file. Idempotent.
  void finalize(const std::vector<std::string>& strings);

  std::uint64_t events_written() const { return events_written_; }

 private:
  struct CatState {
    std::FILE* f = nullptr;
    std::vector<Event> staged;
    std::vector<BlockIndexEntry> blocks;
    std::uint64_t total = 0;
    std::int64_t min_ts = 0;
    std::int64_t max_ts = 0;
  };

  bool open_file(CatState& cat, Category c);
  void flush_block(CatState& cat, Category c);
  void write_footer(CatState& cat);

  std::string dir_;
  bool ok_ = false;
  bool finalized_ = false;
  std::uint64_t events_written_ = 0;
  std::size_t strings_written_ = 0;
  std::array<CatState, kCategoryCount> cats_;
  std::vector<std::uint8_t> scratch_;  ///< block serialization buffer
};

}  // namespace dsadc::obs::store
