// On-disk layout of the binary columnar trace store.
//
// A store is a directory. Each event category lives in its own column
// file `events_<category>.dsst`, and interned event names live in
// `strings.dsst`. Numbers are native-endian (the store is a same-machine
// diagnostic artifact, like a core dump, not an interchange format).
//
// Column file layout:
//
//   header   [u32 kFileMagic][u32 kFormatVersion][u32 category][u32 0]
//   blocks   repeated: [u32 kBlockMagic][u32 count]
//              [i64 ts_us    x count]   event start, us since store epoch
//              [i64 dur_us   x count]
//              [u64 txn      x count]   owning transaction id (0 = none)
//              [i64 value    x count]   category-specific payload
//              [u64 aux      x count]   secondary payload (txn: parent id)
//              [u32 name     x count]   interned name id (strings.dsst)
//              [u32 channel  x count]   kNoChannel when not channel-bound
//              [u32 stage    x count]   kNoStage when not stage-bound
//              [u32 tid      x count]   writer-thread ordinal
//   footer   [u32 kFooterMagic][u32 block_count]
//              per block: [u64 offset][u64 count][i64 min_ts][i64 max_ts]
//            [u64 total_events][i64 min_ts][i64 max_ts]
//            [u64 footer_offset][u32 kFooterEndMagic]
//
// The footer is written once, at finalize. A reader that finds no valid
// footer (the writing process crashed or is still running) recovers by
// scanning blocks from the header forward, dropping a trailing partial
// block -- every fully flushed block stays readable.
//
// strings.dsst:
//
//   [u32 kStringsMagic][u32 kFormatVersion][u32 count][u32 0]
//   repeated count times: [u32 len][len bytes]
//
// The string table is rewritten whole on each drain cycle that interned
// new names, so a crashed run still resolves almost every name; a reader
// tolerates a truncated tail and falls back to "#<id>" for unresolved ids.
#pragma once

#include <cstdint>
#include <string>

namespace dsadc::obs::store {

inline constexpr std::uint32_t kFileMagic = 0x54535344;     // "DSST"
inline constexpr std::uint32_t kStringsMagic = 0x73535344;  // "DSSs"
inline constexpr std::uint32_t kBlockMagic = 0x4b4c4253;    // "SBLK"
inline constexpr std::uint32_t kFooterMagic = 0x54465344;   // "DSFT"
inline constexpr std::uint32_t kFooterEndMagic = 0x444e4546;  // "FEND"
inline constexpr std::uint32_t kFormatVersion = 1;

/// Sentinels for events not bound to a channel / stage.
inline constexpr std::uint32_t kNoChannel = 0xffffffff;
inline constexpr std::uint32_t kNoStage = 0xffffffff;

/// Events per column block (flush granularity of the background drainer).
inline constexpr std::size_t kBlockEvents = 4096;

enum class Category : std::uint32_t {
  kFlow = 0,     ///< design-flow / coarse phase spans (from obs::Span)
  kFx = 1,       ///< fixed-point saturate/wrap/round hits
  kStage = 2,    ///< per-block decimator stage boundary records
  kService = 3,  ///< frame admissions, sheds, connection events
  kRuntime = 4,  ///< session-runtime ring stalls / shed decisions
  kTxn = 5,      ///< transaction rows (value = user value, aux = parent id)
};
inline constexpr std::size_t kCategoryCount = 6;

inline const char* category_name(Category c) {
  switch (c) {
    case Category::kFlow: return "flow";
    case Category::kFx: return "fx";
    case Category::kStage: return "stage";
    case Category::kService: return "service";
    case Category::kRuntime: return "runtime";
    case Category::kTxn: return "txn";
  }
  return "unknown";
}

inline bool category_from_name(const std::string& name, Category* out) {
  for (std::size_t i = 0; i < kCategoryCount; ++i) {
    const auto c = static_cast<Category>(i);
    if (name == category_name(c)) {
      *out = c;
      return true;
    }
  }
  return false;
}

/// One trace event. In memory the category routes the event to its column
/// file; on disk the file implies the category, so it is not a column.
struct Event {
  std::int64_t ts_us = 0;   ///< start, us since the store epoch (0 = stamp
                            ///< with now_us() at emit)
  std::int64_t dur_us = 0;
  std::uint64_t txn = 0;    ///< owning transaction (0 = ambient/none)
  std::int64_t value = 0;   ///< category-specific payload
  std::uint64_t aux = 0;    ///< secondary payload; parent id for kTxn rows
  std::uint32_t name = 0;   ///< interned name id
  std::uint32_t channel = kNoChannel;
  std::uint32_t stage = kNoStage;
  std::uint32_t tid = 0;    ///< writer-thread ordinal (assigned at emit)
  Category category = Category::kFlow;
};

/// Footer entry describing one flushed block.
struct BlockIndexEntry {
  std::uint64_t offset = 0;  ///< file offset of the block magic
  std::uint64_t count = 0;
  std::int64_t min_ts = 0;
  std::int64_t max_ts = 0;
};

/// Bytes one event occupies inside a block (5 x 8-byte + 4 x 4-byte
/// columns).
inline constexpr std::size_t kEventDiskBytes = 5 * 8 + 4 * 4;

inline std::string category_file_name(Category c) {
  return std::string("events_") + category_name(c) + ".dsst";
}
inline constexpr const char* kStringsFileName = "strings.dsst";

}  // namespace dsadc::obs::store
