// Read side of the columnar trace store: mmap + footer index + scan.
//
// A StoreReader maps every present category file of a store directory
// read-only and exposes a visitor-style scan. Time-range scans prune at
// block granularity via the footer's per-block [min_ts, max_ts] before
// touching event bytes, so a narrow window over a long soak trace only
// decodes the blocks that can match.
//
// The reader is deliberately tolerant of torn stores (crashed writer):
// when a file's trailer or footer is missing or damaged, it rebuilds the
// block index by walking block headers from the front and keeps every
// block that is fully present (recovered() reports this per category).
// A missing strings table degrades names to "#<id>" instead of failing.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/store/format.h"

namespace dsadc::obs::store {

class StoreReader {
 public:
  /// Maps every category file found under `dir`. ok() is true when the
  /// directory exists and at least one category file parsed.
  explicit StoreReader(const std::string& dir);
  ~StoreReader();

  StoreReader(const StoreReader&) = delete;
  StoreReader& operator=(const StoreReader&) = delete;

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  bool has_category(Category c) const;
  /// Events in the category (0 when absent).
  std::uint64_t total_events(Category c) const;
  /// True when the category's footer was missing/damaged and the block
  /// index was rebuilt by scanning.
  bool recovered(Category c) const;
  /// [min_ts, max_ts] over the category's events; {0, -1} when empty.
  std::pair<std::int64_t, std::int64_t> time_range(Category c) const;

  const std::vector<std::string>& strings() const { return strings_; }
  /// Resolve an interned id; unknown ids render as "#<id>".
  std::string name(std::uint32_t id) const;

  /// Decode every event of `c` with ts_us in [ts_min, ts_max] (block
  /// pruning first, exact filter second) in file order.
  void visit(Category c, std::int64_t ts_min, std::int64_t ts_max,
             const std::function<void(const Event&)>& fn) const;
  /// Full-range scan.
  void visit(Category c, const std::function<void(const Event&)>& fn) const;

 private:
  struct Mapped {
    const std::uint8_t* data = nullptr;
    std::size_t size = 0;
    std::vector<BlockIndexEntry> blocks;
    std::uint64_t total = 0;
    std::int64_t min_ts = 0;
    std::int64_t max_ts = -1;
    bool present = false;
    bool recovered = false;
  };

  bool map_category(const std::string& dir, Category c);
  void load_strings(const std::string& dir);
  void index_from_footer(Mapped& m);
  void index_by_scan(Mapped& m);
  void decode_block(const Mapped& m, const BlockIndexEntry& b,
                    std::int64_t ts_min, std::int64_t ts_max,
                    const std::function<void(const Event&)>& fn,
                    Category c) const;

  bool ok_ = false;
  std::string error_;
  std::vector<std::string> strings_;
  std::array<Mapped, kCategoryCount> cats_;
};

}  // namespace dsadc::obs::store
