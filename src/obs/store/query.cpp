#include "src/obs/store/query.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

namespace dsadc::obs::store {
namespace {

/// Precomputed per-query match state (name substring resolved to an id
/// set once instead of a string search per event).
struct Matcher {
  const Query* q;
  std::unordered_set<std::uint32_t> name_ids;  ///< used when filter_names
  bool filter_names = false;

  Matcher(const StoreReader& reader, const Query& query) : q(&query) {
    if (q->name_substr.empty()) return;
    filter_names = true;
    const auto& strings = reader.strings();
    for (std::uint32_t id = 0; id < strings.size(); ++id) {
      if (strings[id].find(q->name_substr) != std::string::npos) {
        name_ids.insert(id);
      }
    }
  }

  bool matches(const Event& e) const {
    if (q->has_channel && e.channel != q->channel) return false;
    if (q->has_stage && e.stage != q->stage) return false;
    if (q->has_txn && e.txn != q->txn) return false;
    if (e.dur_us < q->min_dur_us) return false;
    if (filter_names && name_ids.count(e.name) == 0) return false;
    return true;
  }
};

std::vector<Category> query_categories(const StoreReader& reader,
                                       const Query& q) {
  if (!q.categories.empty()) return q.categories;
  std::vector<Category> cats;
  for (std::size_t i = 0; i < kCategoryCount; ++i) {
    const auto c = static_cast<Category>(i);
    if (reader.has_category(c)) cats.push_back(c);
  }
  return cats;
}

struct StopScan {};  ///< thrown to abort a visit once `limit` is reached

template <typename Fn>
void for_each_match(const StoreReader& reader, const Query& q, Fn&& fn) {
  const Matcher m(reader, q);
  try {
    for (const Category c : query_categories(reader, q)) {
      reader.visit(c, q.ts_min, q.ts_max, [&](const Event& e) {
        if (m.matches(e)) fn(e);
      });
    }
  } catch (const StopScan&) {
  }
}

double percentile(std::vector<double>& samples, double p) {
  if (samples.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(samples.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(idx),
                   samples.end());
  return samples[idx];
}

std::string group_label(const StoreReader& reader, GroupKey group,
                        const Event& e) {
  switch (group) {
    case GroupKey::kNone:
      return "all";
    case GroupKey::kName:
      return reader.name(e.name);
    case GroupKey::kChannel:
      return e.channel == kNoChannel ? "ch-" : "ch" + std::to_string(e.channel);
    case GroupKey::kStage:
      return e.stage == kNoStage ? "stage-" : "stage" + std::to_string(e.stage);
    case GroupKey::kCategory:
      return category_name(e.category);
    case GroupKey::kTid:
      return "tid" + std::to_string(e.tid);
  }
  return "all";
}

void json_escape(std::string& out, const std::string& s) {
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
}

}  // namespace

std::uint64_t run_query(const StoreReader& reader, const Query& q,
                        std::vector<Event>* out, std::size_t limit) {
  std::uint64_t matched = 0;
  for_each_match(reader, q, [&](const Event& e) {
    ++matched;
    if (out != nullptr) out->push_back(e);
    if (limit != 0 && matched >= limit) throw StopScan{};
  });
  return matched;
}

std::vector<AggRow> aggregate(const StoreReader& reader, const Query& q,
                              AggField field, GroupKey group) {
  struct Bucket {
    std::uint64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
    std::vector<double> samples;
  };
  std::unordered_map<std::string, Bucket> buckets;
  for_each_match(reader, q, [&](const Event& e) {
    const double v = field == AggField::kDur
                         ? static_cast<double>(e.dur_us)
                         : static_cast<double>(e.value);
    Bucket& b = buckets[group_label(reader, group, e)];
    if (b.count == 0 || v > b.max) b.max = v;
    ++b.count;
    b.sum += v;
    b.samples.push_back(v);
  });
  std::vector<AggRow> rows;
  rows.reserve(buckets.size());
  for (auto& [key, b] : buckets) {
    AggRow row;
    row.key = key;
    row.count = b.count;
    row.sum = b.sum;
    row.mean = b.sum / static_cast<double>(b.count);
    row.p50 = percentile(b.samples, 0.50);
    row.p99 = percentile(b.samples, 0.99);
    row.max = b.max;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const AggRow& a, const AggRow& b) {
    return a.count != b.count ? a.count > b.count : a.key < b.key;
  });
  return rows;
}

bool export_chrome(const StoreReader& reader, const Query& q,
                   const std::string& path) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for_each_match(reader, q, [&](const Event& e) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    json_escape(out, reader.name(e.name));
    out += "\",\"cat\":\"";
    out += category_name(e.category);
    if (e.dur_us > 0) {
      out += "\",\"ph\":\"X\",\"ts\":" + std::to_string(e.ts_us) +
             ",\"dur\":" + std::to_string(e.dur_us);
    } else {
      out += "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" + std::to_string(e.ts_us);
    }
    out += ",\"pid\":1,\"tid\":" + std::to_string(e.tid);
    out += ",\"args\":{";
    bool farg = true;
    const auto arg = [&](const char* k, const std::string& v) {
      if (!farg) out += ',';
      farg = false;
      out += '"';
      out += k;
      out += "\":";
      out += v;
    };
    if (e.channel != kNoChannel) arg("channel", std::to_string(e.channel));
    if (e.stage != kNoStage) arg("stage", std::to_string(e.stage));
    if (e.txn != 0) arg("txn", std::to_string(e.txn));
    if (e.aux != 0) arg("parent", std::to_string(e.aux));
    arg("value", std::to_string(e.value));
    out += "}}";
  });
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(out.data(), 1, out.size(), f);
  return std::fclose(f) == 0 && n == out.size();
}

}  // namespace dsadc::obs::store
