#include "src/obs/store/tracker.h"

#ifndef DSADC_OBS_COMPILED_OFF

namespace dsadc::obs::store {
namespace {

thread_local TxnContext* t_current = nullptr;

std::uint32_t fx_suppressed_name() {
  static const std::uint32_t id = intern("fx.suppressed");
  return id;
}

}  // namespace

const TxnContext* current_txn() { return t_current; }

void note_fx(std::uint32_t name_id, std::int64_t value) {
  if (!enabled()) return;
  TxnContext* ctx = t_current;
  if (ctx == nullptr) return;  // registry counters still track the total
  if (ctx->fx_budget == 0) {
    ++ctx->fx_suppressed;
    return;
  }
  --ctx->fx_budget;
  Event e;
  e.category = Category::kFx;
  e.name = name_id;
  e.value = value;
  emit(e);
}

TxnScope::TxnScope(std::uint32_t name_id, std::uint32_t channel,
                   std::uint32_t stage) {
  if (!enabled()) return;
  active_ = true;
  name_ = name_id;
  start_us_ = now_us();
  ctx_.id = next_txn_id();
  ctx_.channel = channel;
  ctx_.stage = stage;
  ctx_.fx_budget = kFxEventBudget;
  ctx_.parent = t_current;
  if (ctx_.parent != nullptr) {
    parent_id_ = ctx_.parent->id;
    if (ctx_.channel == kNoChannel) ctx_.channel = ctx_.parent->channel;
  }
  t_current = &ctx_;
}

TxnScope::~TxnScope() {
  if (!active_) return;
  t_current = ctx_.parent;
  if (ctx_.fx_suppressed != 0) {
    Event sup;
    sup.category = Category::kFx;
    sup.name = fx_suppressed_name();
    sup.txn = ctx_.id;
    sup.channel = ctx_.channel;
    sup.value = static_cast<std::int64_t>(ctx_.fx_suppressed);
    emit(sup);
  }
  Event row;
  row.category = Category::kTxn;
  row.name = name_;
  row.ts_us = start_us_;
  row.dur_us = now_us() - start_us_;
  row.txn = ctx_.id;
  row.channel = ctx_.channel;
  row.stage = ctx_.stage;
  row.value = value_;
  row.aux = parent_id_;
  emit(row);
}

}  // namespace dsadc::obs::store

#endif  // DSADC_OBS_COMPILED_OFF
