// Transaction tracker: correlates low-level store events into
// parent/child transactions.
//
// A TxnScope marks "one unit of tracked work" on the current thread --
// the service uses it per session job, so a transaction reads as
// "block B of channel C through the chain". While a scope is active,
// every event emitted on the thread (stage boundary records, fixed-point
// saturate/round hits, ...) inherits its transaction id and channel, and
// nested scopes link to their parent automatically. At scope exit one
// kTxn row is written: ts/dur span the scope, value carries the
// caller-set payload (e.g. codes in the block), aux the parent id.
//
// Fixed-point hits can be per-sample under overload, so note_fx()
// records at most kFxEventBudget raw hits per transaction; the overflow
// is tallied and emitted as one fx.suppressed event at scope exit, so
// the total is never lost while the trace volume stays bounded. Outside
// any transaction note_fx() records nothing (the metrics registry
// already counts globally).
#pragma once

#include <cstdint>

#include "src/obs/store/store.h"

namespace dsadc::obs::store {

/// Raw fx events recorded per transaction before suppression kicks in.
inline constexpr std::uint32_t kFxEventBudget = 64;

#ifdef DSADC_OBS_COMPILED_OFF

struct TxnContext {
  std::uint64_t id = 0;
  std::uint32_t channel = kNoChannel;
  std::uint32_t stage = kNoStage;
};
inline const TxnContext* current_txn() { return nullptr; }
inline void note_fx(std::uint32_t, std::int64_t) {}

class TxnScope {
 public:
  explicit TxnScope(std::uint32_t, std::uint32_t = kNoChannel,
                    std::uint32_t = kNoStage) {}
  std::uint64_t id() const { return 0; }
  bool active() const { return false; }
  void set_parent(std::uint64_t) {}
  void set_value(std::int64_t) {}
};

#else

/// Per-thread active-transaction state; exposed so emit() can inherit
/// the ambient ids cheaply.
struct TxnContext {
  std::uint64_t id = 0;
  std::uint32_t channel = kNoChannel;
  std::uint32_t stage = kNoStage;
  std::uint32_t fx_budget = 0;
  std::uint64_t fx_suppressed = 0;
  TxnContext* parent = nullptr;
};

/// Innermost active transaction on this thread, or nullptr.
const TxnContext* current_txn();

/// Record one fixed-point saturate/wrap/round hit against the current
/// transaction (budgeted; see file comment). `name_id` is the interned
/// fx.<kind>.<site> name, `value` the pre-clamp raw value or dropped
/// LSBs. No-op when the store is closed or no transaction is active.
void note_fx(std::uint32_t name_id, std::int64_t value);

class TxnScope {
 public:
  /// Begins a transaction named by interned id `name_id`. The scope is
  /// inert (id() == 0) while the store is closed, so constructing one
  /// unconditionally costs a relaxed load and a branch.
  explicit TxnScope(std::uint32_t name_id, std::uint32_t channel = kNoChannel,
                    std::uint32_t stage = kNoStage);
  ~TxnScope();
  TxnScope(const TxnScope&) = delete;
  TxnScope& operator=(const TxnScope&) = delete;

  std::uint64_t id() const { return ctx_.id; }
  bool active() const { return active_; }
  /// Override the parent link (defaults to the enclosing scope's id).
  void set_parent(std::uint64_t parent) { parent_id_ = parent; }
  /// Payload stored in the kTxn row's value column.
  void set_value(std::int64_t v) { value_ = v; }

 private:
  TxnContext ctx_;
  std::uint64_t parent_id_ = 0;
  std::uint32_t name_ = 0;
  std::int64_t start_us_ = 0;
  std::int64_t value_ = 0;
  bool active_ = false;
};

#endif  // DSADC_OBS_COMPILED_OFF

}  // namespace dsadc::obs::store
