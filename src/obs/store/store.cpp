#include "src/obs/store/store.h"

#ifndef DSADC_OBS_COMPILED_OFF

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/obs/store/tracker.h"
#include "src/obs/store/writer.h"
#include "src/obs/trace.h"

namespace dsadc::obs::store {
namespace {

/// Staged events per thread before hand-off to the drainer.
constexpr std::size_t kThreadFlushEvents = kBlockEvents / 4;

/// One thread's staging buffer. The owning thread appends under `mu`
/// (uncontended in steady state); close() takes the same mutex to steal
/// the tail of threads that are still alive at finalize time.
struct ThreadBuf {
  std::mutex mu;
  std::vector<Event> events;
  std::uint32_t tid = 0;
};

struct State {
  std::mutex mu;  ///< guards everything below
  std::condition_variable cv;
  std::deque<std::vector<Event>> pending;  ///< filled buffers for drainer
  std::vector<std::shared_ptr<ThreadBuf>> threads;
  std::unique_ptr<StoreWriter> writer;
  std::thread drainer;
  bool open = false;
  bool drain_stop = false;
  std::uint32_t next_tid = 1;
  std::uint64_t dropped = 0;  ///< events that arrived after close
};

/// Leaked so late thread exits (after static destruction) stay safe.
State& state() {
  static State* s = new State();
  return *s;
}

struct Interner {
  std::mutex mu;
  std::unordered_map<std::string, std::uint32_t> ids;
  std::vector<std::string> names;
  Interner() : names(1, std::string()) { ids.emplace(std::string(), 0u); }
};

Interner& interner() {
  static Interner* s = new Interner();
  return *s;
}

std::vector<std::string> strings_snapshot() {
  Interner& in = interner();
  std::lock_guard<std::mutex> lock(in.mu);
  return in.names;
}

/// -1 undecided (consult DSADC_STORE_OUT on first use), 0 off, 1 on.
std::atomic<int> g_enabled{-1};
std::atomic<std::uint64_t> g_txn_ids{0};

void hand_off(std::vector<Event>&& events) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.open) {
    s.dropped += events.size();
    return;
  }
  s.pending.push_back(std::move(events));
  s.cv.notify_one();
}

/// Registers on first use; the handle's destructor flushes whatever the
/// thread staged before it exited.
struct ThreadBufHandle {
  std::shared_ptr<ThreadBuf> buf;
  ~ThreadBufHandle() {
    if (!buf) return;
    std::vector<Event> tail;
    {
      std::lock_guard<std::mutex> lock(buf->mu);
      tail.swap(buf->events);
    }
    if (!tail.empty()) hand_off(std::move(tail));
  }
};

ThreadBuf& thread_buf() {
  thread_local ThreadBufHandle handle;
  if (!handle.buf) {
    handle.buf = std::make_shared<ThreadBuf>();
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    handle.buf->tid = s.next_tid++;
    s.threads.push_back(handle.buf);
  }
  return *handle.buf;
}

void drain_loop() {
  State& s = state();
  for (;;) {
    std::vector<Event> batch;
    StoreWriter* writer = nullptr;
    {
      std::unique_lock<std::mutex> lock(s.mu);
      s.cv.wait(lock, [&s] { return s.drain_stop || !s.pending.empty(); });
      if (s.pending.empty()) return;  // drain_stop and fully drained
      batch = std::move(s.pending.front());
      s.pending.pop_front();
      writer = s.writer.get();
    }
    // The writer outlives the drainer (close() joins before finalize),
    // so touching it outside the lock is safe.
    writer->append(batch);
    writer->flush_strings(strings_snapshot());
  }
}

bool init_enabled() {
  const char* dir = std::getenv("DSADC_STORE_OUT");
  if (dir != nullptr && dir[0] != '\0') {
    open(dir);  // sets g_enabled on success
  }
  int expected = -1;
  g_enabled.compare_exchange_strong(expected, 0, std::memory_order_relaxed);
  return g_enabled.load(std::memory_order_relaxed) != 0;
}

}  // namespace

bool enabled() {
  const int s = g_enabled.load(std::memory_order_relaxed);
  if (s >= 0) return s != 0;
  return init_enabled();
}

bool open(const std::string& dir) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.open) return false;
  auto writer = std::make_unique<StoreWriter>(dir);
  if (!writer->ok()) return false;
  s.writer = std::move(writer);
  s.pending.clear();
  s.dropped = 0;
  s.drain_stop = false;
  s.drainer = std::thread(drain_loop);
  s.open = true;
  g_enabled.store(1, std::memory_order_relaxed);
  static const bool atexit_registered = [] {
    std::atexit([] { close(); });
    return true;
  }();
  (void)atexit_registered;
  return true;
}

void close() {
  State& s = state();
  std::thread drainer;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (!s.open) return;
    g_enabled.store(0, std::memory_order_relaxed);
    s.open = false;
    // Steal the staged tail of every registered thread. Emitters that
    // already passed the enabled() check land in s.dropped via
    // hand_off(); nothing races the buffers themselves.
    for (const auto& tb : s.threads) {
      std::lock_guard<std::mutex> tlock(tb->mu);
      if (!tb->events.empty()) {
        s.pending.push_back(std::move(tb->events));
        tb->events.clear();
      }
    }
    s.drain_stop = true;
    s.cv.notify_one();
    drainer = std::move(s.drainer);
  }
  if (drainer.joinable()) drainer.join();
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.writer) {
      s.writer->finalize(strings_snapshot());
      s.writer.reset();
    }
  }
}

void emit(const Event& e) {
  if (!enabled()) return;
  Event ev = e;
  if (ev.ts_us == 0) ev.ts_us = now_us();
  if (const TxnContext* ctx = current_txn()) {
    if (ev.txn == 0) ev.txn = ctx->id;
    if (ev.channel == kNoChannel) ev.channel = ctx->channel;
    if (ev.stage == kNoStage) ev.stage = ctx->stage;
  }
  ThreadBuf& buf = thread_buf();
  std::vector<Event> filled;
  {
    std::lock_guard<std::mutex> lock(buf.mu);
    ev.tid = buf.tid;
    buf.events.push_back(ev);
    if (buf.events.size() >= kThreadFlushEvents) {
      filled.swap(buf.events);
      buf.events.reserve(kThreadFlushEvents);
    }
  }
  if (!filled.empty()) hand_off(std::move(filled));
}

void emit_batch(const Event* events, std::size_t n) {
  if (n == 0 || !enabled()) return;
  const TxnContext* ctx = current_txn();
  ThreadBuf& buf = thread_buf();
  std::vector<Event> filled;
  {
    std::lock_guard<std::mutex> lock(buf.mu);
    for (std::size_t i = 0; i < n; ++i) {
      Event ev = events[i];
      if (ev.ts_us == 0) ev.ts_us = now_us();
      if (ctx != nullptr) {
        if (ev.txn == 0) ev.txn = ctx->id;
        if (ev.channel == kNoChannel) ev.channel = ctx->channel;
        if (ev.stage == kNoStage) ev.stage = ctx->stage;
      }
      ev.tid = buf.tid;
      buf.events.push_back(ev);
    }
    if (buf.events.size() >= kThreadFlushEvents) {
      filled.swap(buf.events);
      buf.events.reserve(kThreadFlushEvents);
    }
  }
  if (!filled.empty()) hand_off(std::move(filled));
}

std::uint32_t intern(std::string_view name) {
  Interner& in = interner();
  std::lock_guard<std::mutex> lock(in.mu);
  // Transparent lookup would avoid this copy; interning is off the hot
  // path (call sites cache ids in statics), so keep the map simple.
  std::string key(name);
  const auto it = in.ids.find(key);
  if (it != in.ids.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(in.names.size());
  in.names.push_back(key);
  in.ids.emplace(std::move(key), id);
  return id;
}

std::int64_t now_us() { return trace_now_us(); }

std::uint64_t next_txn_id() {
  return g_txn_ids.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace dsadc::obs::store

#endif  // DSADC_OBS_COMPILED_OFF
