// Process-wide columnar trace store: the service-scale replacement for
// the Chrome-JSON span buffer (docs/OBSERVABILITY.md).
//
// The write path is built for many concurrent emitters: each thread
// appends events to its own staging buffer (one uncontended mutex
// acquisition, no allocation in steady state) and a background drainer
// thread batches filled buffers into per-category column files
// (writer.h). There is no global lock anywhere on the hot path; the
// global mutex is touched only when a staging buffer of kBlockEvents/4
// events is handed off.
//
// The store is off by default. It turns on when DSADC_STORE_OUT=<dir> is
// set in the environment (finalized automatically at process exit) or
// programmatically via open()/close(). When off, emit() costs one
// relaxed atomic load and a branch; with DSADC_OBS_COMPILED_OFF every
// entry point is a constant no-op.
//
// Correlation into transactions (parent/child links, ambient channel /
// stage context) lives in tracker.h; reading a store back is reader.h.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/obs/obs.h"
#include "src/obs/store/format.h"

namespace dsadc::obs::store {

#ifdef DSADC_OBS_COMPILED_OFF

constexpr bool enabled() { return false; }
inline bool open(const std::string&) { return false; }
inline void close() {}
inline void emit(const Event&) {}
inline void emit_batch(const Event*, std::size_t) {}
inline std::uint32_t intern(std::string_view) { return 0; }
inline std::int64_t now_us() { return 0; }
inline std::uint64_t next_txn_id() { return 0; }

#else

/// True while a store is open for writing. One relaxed load; the first
/// call consults DSADC_STORE_OUT and auto-opens.
bool enabled();

/// Open a store rooted at directory `dir` (created if missing). Returns
/// false if a store is already open or the directory cannot be created.
/// The first open registers an atexit finalizer, so an env-opened store
/// is always footer-complete on clean exit.
bool open(const std::string& dir);

/// Flush every staged event, write the string table and footers, and
/// join the drainer. Idempotent; safe to call with no store open. After
/// close() a new open() starts a fresh store.
void close();

/// Append one event. Fields the caller leaves at their defaults are
/// filled from context: ts_us == 0 stamps now_us(), txn/channel/stage
/// inherit the calling thread's active transaction (tracker.h), tid is
/// always assigned. No-op while the store is closed.
void emit(const Event& e);

/// emit() for `n` events with one staging-buffer lock acquisition --
/// producers that generate several events per unit of work (e.g. the
/// chain's per-block stage boundaries) amortize the per-event overhead.
/// Context inheritance and tid assignment match emit().
void emit_batch(const Event* events, std::size_t n);

/// Find-or-assign the id of `name` in the process-wide string table.
/// Ids are stable for the process lifetime and valid across open/close
/// cycles; id 0 is the empty name. Works whether or not a store is open,
/// so call sites may intern eagerly in function-local statics.
std::uint32_t intern(std::string_view name);

/// Microseconds since the trace epoch (shared with obs::trace_now_us, so
/// store timestamps and Chrome spans line up).
std::int64_t now_us();

/// Fresh nonzero transaction id (used by tracker.h).
std::uint64_t next_txn_id();

#endif  // DSADC_OBS_COMPILED_OFF

}  // namespace dsadc::obs::store
