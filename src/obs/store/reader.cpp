#include "src/obs/store/reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>

namespace dsadc::obs::store {
namespace {

constexpr std::size_t kHeaderBytes = 16;
constexpr std::size_t kTrailerBytes = 12;  // [u64 footer_offset][u32 end magic]

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}
std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}
std::int64_t get_i64(const std::uint8_t* p) {
  std::int64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

}  // namespace

StoreReader::StoreReader(const std::string& dir) {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    error_ = "not a store directory: " + dir;
    return;
  }
  load_strings(dir);
  for (std::size_t i = 0; i < kCategoryCount; ++i) {
    if (map_category(dir, static_cast<Category>(i))) ok_ = true;
  }
  if (!ok_) error_ = "no readable category files under " + dir;
}

StoreReader::~StoreReader() {
  for (Mapped& m : cats_) {
    if (m.data != nullptr) {
      ::munmap(const_cast<std::uint8_t*>(m.data), m.size);
    }
  }
}

bool StoreReader::map_category(const std::string& dir, Category c) {
  Mapped& m = cats_[static_cast<std::size_t>(c)];
  const std::string path = dir + "/" + category_file_name(c);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return false;
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size < kHeaderBytes) {
    ::close(fd);
    return false;
  }
  void* p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (p == MAP_FAILED) return false;
  const auto* data = static_cast<const std::uint8_t*>(p);
  if (get_u32(data) != kFileMagic || get_u32(data + 4) != kFormatVersion ||
      get_u32(data + 8) != static_cast<std::uint32_t>(c)) {
    ::munmap(p, size);
    return false;
  }
  m.data = data;
  m.size = size;
  m.present = true;
  index_from_footer(m);
  if (m.blocks.empty() && m.recovered) index_by_scan(m);
  return true;
}

void StoreReader::index_from_footer(Mapped& m) {
  // Trailer-first discovery: the last 12 bytes point back at the footer.
  m.recovered = true;  // until proven otherwise
  if (m.size < kHeaderBytes + kTrailerBytes) return;
  const std::uint8_t* tail = m.data + m.size - kTrailerBytes;
  if (get_u32(tail + 8) != kFooterEndMagic) return;
  const std::uint64_t foff = get_u64(tail);
  if (foff < kHeaderBytes || foff + 8 > m.size) return;
  const std::uint8_t* p = m.data + foff;
  if (get_u32(p) != kFooterMagic) return;
  const std::uint32_t nblocks = get_u32(p + 4);
  const std::size_t need = 8 + static_cast<std::size_t>(nblocks) * 32 + 24;
  if (foff + need + kTrailerBytes > m.size) return;
  p += 8;
  std::vector<BlockIndexEntry> blocks;
  blocks.reserve(nblocks);
  for (std::uint32_t i = 0; i < nblocks; ++i, p += 32) {
    BlockIndexEntry b;
    b.offset = get_u64(p);
    b.count = get_u64(p + 8);
    b.min_ts = get_i64(p + 16);
    b.max_ts = get_i64(p + 24);
    const std::size_t bytes = 8 + b.count * kEventDiskBytes;
    if (b.offset < kHeaderBytes || b.offset + bytes > foff) return;
    blocks.push_back(b);
  }
  m.total = get_u64(p);
  m.min_ts = get_i64(p + 8);
  m.max_ts = get_i64(p + 16);
  if (m.total == 0) m.max_ts = -1;
  m.blocks = std::move(blocks);
  m.recovered = false;
}

void StoreReader::index_by_scan(Mapped& m) {
  // No usable footer: walk block headers from the front and keep every
  // block that is fully present. min/max come from the ts column.
  std::size_t off = kHeaderBytes;
  while (off + 8 <= m.size) {
    if (get_u32(m.data + off) != kBlockMagic) break;
    const std::uint32_t count = get_u32(m.data + off + 4);
    if (count == 0 || count > kBlockEvents) break;
    const std::size_t bytes = 8 + static_cast<std::size_t>(count) * kEventDiskBytes;
    if (off + bytes > m.size) break;  // trailing partial block
    BlockIndexEntry b;
    b.offset = off;
    b.count = count;
    const std::uint8_t* ts = m.data + off + 8;
    b.min_ts = get_i64(ts);
    b.max_ts = b.min_ts;
    for (std::uint32_t i = 1; i < count; ++i) {
      const std::int64_t t = get_i64(ts + static_cast<std::size_t>(i) * 8);
      if (t < b.min_ts) b.min_ts = t;
      if (t > b.max_ts) b.max_ts = t;
    }
    if (m.total == 0) {
      m.min_ts = b.min_ts;
      m.max_ts = b.max_ts;
    } else {
      if (b.min_ts < m.min_ts) m.min_ts = b.min_ts;
      if (b.max_ts > m.max_ts) m.max_ts = b.max_ts;
    }
    m.total += count;
    m.blocks.push_back(b);
    off += bytes;
  }
}

void StoreReader::load_strings(const std::string& dir) {
  const std::string path = dir + "/" + std::string(kStringsFileName);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return;
  std::fseek(f, 0, SEEK_END);
  const long fsize = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (fsize < 16) {
    std::fclose(f);
    return;
  }
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(fsize));
  const std::size_t got = std::fread(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (got != buf.size() || get_u32(buf.data()) != kStringsMagic ||
      get_u32(buf.data() + 4) != kFormatVersion) {
    return;
  }
  const std::uint32_t count = get_u32(buf.data() + 8);
  std::size_t off = 16;
  strings_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (off + 4 > buf.size()) break;  // tolerate a truncated tail
    const std::uint32_t len = get_u32(buf.data() + off);
    off += 4;
    if (off + len > buf.size()) break;
    strings_.emplace_back(reinterpret_cast<const char*>(buf.data() + off), len);
    off += len;
  }
}

std::string StoreReader::name(std::uint32_t id) const {
  if (id < strings_.size()) return strings_[id];
  return "#" + std::to_string(id);
}

bool StoreReader::has_category(Category c) const {
  return cats_[static_cast<std::size_t>(c)].present;
}

std::uint64_t StoreReader::total_events(Category c) const {
  return cats_[static_cast<std::size_t>(c)].total;
}

bool StoreReader::recovered(Category c) const {
  const Mapped& m = cats_[static_cast<std::size_t>(c)];
  return m.present && m.recovered;
}

std::pair<std::int64_t, std::int64_t> StoreReader::time_range(
    Category c) const {
  const Mapped& m = cats_[static_cast<std::size_t>(c)];
  if (m.total == 0) return {0, -1};
  return {m.min_ts, m.max_ts};
}

void StoreReader::decode_block(const Mapped& m, const BlockIndexEntry& b,
                               std::int64_t ts_min, std::int64_t ts_max,
                               const std::function<void(const Event&)>& fn,
                               Category c) const {
  const std::size_t n = b.count;
  const std::uint8_t* base = m.data + b.offset + 8;
  const std::uint8_t* col_ts = base;
  const std::uint8_t* col_dur = col_ts + n * 8;
  const std::uint8_t* col_txn = col_dur + n * 8;
  const std::uint8_t* col_value = col_txn + n * 8;
  const std::uint8_t* col_aux = col_value + n * 8;
  const std::uint8_t* col_name = col_aux + n * 8;
  const std::uint8_t* col_channel = col_name + n * 4;
  const std::uint8_t* col_stage = col_channel + n * 4;
  const std::uint8_t* col_tid = col_stage + n * 4;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t ts = get_i64(col_ts + i * 8);
    if (ts < ts_min || ts > ts_max) continue;
    Event e;
    e.ts_us = ts;
    e.dur_us = get_i64(col_dur + i * 8);
    e.txn = get_u64(col_txn + i * 8);
    e.value = get_i64(col_value + i * 8);
    e.aux = get_u64(col_aux + i * 8);
    e.name = get_u32(col_name + i * 4);
    e.channel = get_u32(col_channel + i * 4);
    e.stage = get_u32(col_stage + i * 4);
    e.tid = get_u32(col_tid + i * 4);
    e.category = c;
    fn(e);
  }
}

void StoreReader::visit(Category c, std::int64_t ts_min, std::int64_t ts_max,
                        const std::function<void(const Event&)>& fn) const {
  const Mapped& m = cats_[static_cast<std::size_t>(c)];
  if (!m.present) return;
  for (const BlockIndexEntry& b : m.blocks) {
    if (b.max_ts < ts_min || b.min_ts > ts_max) continue;  // prune
    decode_block(m, b, ts_min, ts_max, fn, c);
  }
}

void StoreReader::visit(Category c,
                        const std::function<void(const Event&)>& fn) const {
  visit(c, std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::max(), fn);
}

}  // namespace dsadc::obs::store
