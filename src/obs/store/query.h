// Query engine over a mapped trace store: predicates, aggregations, and
// Chrome trace-event export. tools/dsadc_query is a thin CLI over this.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/obs/store/reader.h"

namespace dsadc::obs::store {

/// Conjunctive event predicate. Unset members match everything.
struct Query {
  std::vector<Category> categories;  ///< empty = every present category
  std::int64_t ts_min = std::numeric_limits<std::int64_t>::min();
  std::int64_t ts_max = std::numeric_limits<std::int64_t>::max();
  bool has_channel = false;
  std::uint32_t channel = kNoChannel;
  bool has_stage = false;
  std::uint32_t stage = kNoStage;
  bool has_txn = false;
  std::uint64_t txn = 0;  ///< matches owning id OR a kTxn row's own id
  std::string name_substr;  ///< substring over resolved names
  std::int64_t min_dur_us = std::numeric_limits<std::int64_t>::min();
};

/// Scan matching events in category-then-file order. Stops after `limit`
/// matches when limit > 0. Returns the number of events matched (all of
/// them, even past the limit cutoff is NOT counted -- the return value
/// equals out->size() when out is non-null).
std::uint64_t run_query(const StoreReader& reader, const Query& q,
                        std::vector<Event>* out, std::size_t limit = 0);

enum class AggField : std::uint8_t { kDur, kValue };
enum class GroupKey : std::uint8_t {
  kNone,
  kName,
  kChannel,
  kStage,
  kCategory,
  kTid,
};

/// One aggregation bucket (percentiles over the selected field).
struct AggRow {
  std::string key;
  std::uint64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Group matching events by `group` and fold `field` per bucket. Rows
/// come back sorted by descending count.
std::vector<AggRow> aggregate(const StoreReader& reader, const Query& q,
                              AggField field, GroupKey group);

/// Write matching events as Chrome trace-event JSON (complete "X" events
/// when dur_us > 0, instants otherwise) loadable in chrome://tracing /
/// Perfetto. Returns false on I/O failure.
bool export_chrome(const StoreReader& reader, const Query& q,
                   const std::string& path);

}  // namespace dsadc::obs::store
