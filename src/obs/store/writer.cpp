#include "src/obs/store/writer.h"

#include <cstring>
#include <filesystem>
#include <limits>

namespace dsadc::obs::store {
namespace {

void put_bytes(std::vector<std::uint8_t>& out, const void* p, std::size_t n) {
  const auto* b = static_cast<const std::uint8_t*>(p);
  out.insert(out.end(), b, b + n);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_bytes(out, &v, sizeof v);
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_bytes(out, &v, sizeof v);
}
void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_bytes(out, &v, sizeof v);
}

}  // namespace

StoreWriter::StoreWriter(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  ok_ = !ec && std::filesystem::is_directory(dir_, ec);
}

StoreWriter::~StoreWriter() {
  for (auto& cat : cats_) {
    if (cat.f != nullptr) std::fclose(cat.f);
    cat.f = nullptr;
  }
}

bool StoreWriter::open_file(CatState& cat, Category c) {
  if (cat.f != nullptr) return true;
  const std::string path = dir_ + "/" + category_file_name(c);
  cat.f = std::fopen(path.c_str(), "wb");
  if (cat.f == nullptr) return false;
  scratch_.clear();
  put_u32(scratch_, kFileMagic);
  put_u32(scratch_, kFormatVersion);
  put_u32(scratch_, static_cast<std::uint32_t>(c));
  put_u32(scratch_, 0);
  std::fwrite(scratch_.data(), 1, scratch_.size(), cat.f);
  cat.min_ts = std::numeric_limits<std::int64_t>::max();
  cat.max_ts = std::numeric_limits<std::int64_t>::min();
  return true;
}

void StoreWriter::flush_block(CatState& cat, Category c) {
  if (cat.staged.empty() || !open_file(cat, c)) return;
  const std::size_t n = cat.staged.size();

  BlockIndexEntry entry;
  entry.offset = static_cast<std::uint64_t>(std::ftell(cat.f));
  entry.count = n;
  entry.min_ts = cat.staged[0].ts_us;
  entry.max_ts = cat.staged[0].ts_us;

  scratch_.clear();
  scratch_.reserve(8 + n * kEventDiskBytes);
  put_u32(scratch_, kBlockMagic);
  put_u32(scratch_, static_cast<std::uint32_t>(n));
  for (const Event& e : cat.staged) {
    put_i64(scratch_, e.ts_us);
    if (e.ts_us < entry.min_ts) entry.min_ts = e.ts_us;
    if (e.ts_us > entry.max_ts) entry.max_ts = e.ts_us;
  }
  for (const Event& e : cat.staged) put_i64(scratch_, e.dur_us);
  for (const Event& e : cat.staged) put_u64(scratch_, e.txn);
  for (const Event& e : cat.staged) put_i64(scratch_, e.value);
  for (const Event& e : cat.staged) put_u64(scratch_, e.aux);
  for (const Event& e : cat.staged) put_u32(scratch_, e.name);
  for (const Event& e : cat.staged) put_u32(scratch_, e.channel);
  for (const Event& e : cat.staged) put_u32(scratch_, e.stage);
  for (const Event& e : cat.staged) put_u32(scratch_, e.tid);
  std::fwrite(scratch_.data(), 1, scratch_.size(), cat.f);
  std::fflush(cat.f);  // completed blocks are crash-recoverable

  cat.blocks.push_back(entry);
  cat.total += n;
  events_written_ += n;
  if (entry.min_ts < cat.min_ts) cat.min_ts = entry.min_ts;
  if (entry.max_ts > cat.max_ts) cat.max_ts = entry.max_ts;
  cat.staged.clear();
}

void StoreWriter::append(const std::vector<Event>& batch) {
  if (!ok_ || finalized_) return;
  for (const Event& e : batch) {
    const auto ci = static_cast<std::size_t>(e.category);
    if (ci >= kCategoryCount) continue;
    CatState& cat = cats_[ci];
    cat.staged.push_back(e);
    if (cat.staged.size() >= kBlockEvents) flush_block(cat, e.category);
  }
}

void StoreWriter::flush_strings(const std::vector<std::string>& strings) {
  if (!ok_ || strings.size() == strings_written_) return;
  const std::string path = dir_ + "/" + kStringsFileName;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return;
  scratch_.clear();
  put_u32(scratch_, kStringsMagic);
  put_u32(scratch_, kFormatVersion);
  put_u32(scratch_, static_cast<std::uint32_t>(strings.size()));
  put_u32(scratch_, 0);
  for (const std::string& s : strings) {
    put_u32(scratch_, static_cast<std::uint32_t>(s.size()));
    put_bytes(scratch_, s.data(), s.size());
  }
  std::fwrite(scratch_.data(), 1, scratch_.size(), f);
  std::fclose(f);
  strings_written_ = strings.size();
}

void StoreWriter::write_footer(CatState& cat) {
  const auto footer_off = static_cast<std::uint64_t>(std::ftell(cat.f));
  scratch_.clear();
  put_u32(scratch_, kFooterMagic);
  put_u32(scratch_, static_cast<std::uint32_t>(cat.blocks.size()));
  for (const BlockIndexEntry& b : cat.blocks) {
    put_u64(scratch_, b.offset);
    put_u64(scratch_, b.count);
    put_i64(scratch_, b.min_ts);
    put_i64(scratch_, b.max_ts);
  }
  put_u64(scratch_, cat.total);
  put_i64(scratch_, cat.total != 0 ? cat.min_ts : 0);
  put_i64(scratch_, cat.total != 0 ? cat.max_ts : 0);
  put_u64(scratch_, footer_off);
  put_u32(scratch_, kFooterEndMagic);
  std::fwrite(scratch_.data(), 1, scratch_.size(), cat.f);
}

void StoreWriter::finalize(const std::vector<std::string>& strings) {
  if (!ok_ || finalized_) return;
  finalized_ = true;
  for (std::size_t i = 0; i < kCategoryCount; ++i) {
    CatState& cat = cats_[i];
    flush_block(cat, static_cast<Category>(i));
    if (cat.f == nullptr) continue;
    write_footer(cat);
    std::fclose(cat.f);
    cat.f = nullptr;
  }
  // Always (re)write the table, even if no category file exists, so a
  // store directory is self-describing.
  strings_written_ = std::numeric_limits<std::size_t>::max();
  flush_strings(strings);
}

}  // namespace dsadc::obs::store
