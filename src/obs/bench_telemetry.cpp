#include "src/obs/bench_telemetry.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dsadc::obs {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += static_cast<unsigned char>(c) < 0x20 ? ' ' : c;
  }
  return out;
}

std::string json_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  if (std::strstr(buf, "inf") != nullptr || std::strstr(buf, "nan") != nullptr) {
    return "null";
  }
  return buf;
}

}  // namespace

BenchReport::BenchReport(std::string name)
    : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

BenchReport::~BenchReport() {
  if (!written_) write(false);
}

void BenchReport::set(const std::string& key, double value) {
  fields_[key] = json_number(value);
}

void BenchReport::set(const std::string& key, const std::string& value) {
  fields_[key] = "\"" + json_escape(value) + "\"";
}

void BenchReport::set(const std::string& key, const char* value) {
  set(key, std::string(value));
}

void BenchReport::set(const std::string& key, bool value) {
  fields_[key] = value ? "true" : "false";
}

void BenchReport::set_throughput(double samples_per_second) {
  set("throughput_samples_per_s", samples_per_second);
}

std::string BenchReport::output_dir() {
  const char* dir = std::getenv("DSADC_BENCH_OUT");
  if (dir != nullptr && dir[0] != '\0') return dir;
  return ".";
}

std::string BenchReport::output_path() const {
  return output_dir() + "/BENCH_" + name_ + ".json";
}

void BenchReport::write(bool ok) {
  written_ = true;
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_)
          .count();
  std::string out = "{\n  \"bench\": \"" + json_escape(name_) + "\",\n";
  out += "  \"ok\": " + std::string(ok ? "true" : "false") + ",\n";
  out += "  \"wall_ms\": " + json_number(wall_ms) + ",\n";
  out += "  \"metrics\": {";
  bool first = true;
  for (const auto& [key, value] : fields_) {
    if (!first) out += ",";
    first = false;
    out += "\n    \"" + json_escape(key) + "\": " + value;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";

  const std::string path = output_path();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BenchReport: cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
}

int BenchReport::finish(bool ok) {
  if (!written_) write(ok);
  return ok ? 0 : 1;
}

}  // namespace dsadc::obs
