// Process-wide observability switches shared by the metrics registry,
// the trace recorder and the logger.
//
// Two off switches exist with different costs:
//
//  * runtime:  DSADC_OBS_DISABLE=1 (or obs::set_enabled(false)) makes every
//    instrumentation site a single predictable branch on a cached flag;
//  * compile time: building with -DDSADC_OBS_COMPILED_OFF removes the
//    instrumentation bodies entirely (enabled() is a constant false and the
//    logging/counting macros expand to nothing).
//
// Hot paths (per-sample fixed-point requantization, the chain inner loops)
// must only ever pay the enabled() branch when observability is off.
#pragma once

#include <atomic>

namespace dsadc::obs {

#ifdef DSADC_OBS_COMPILED_OFF

constexpr bool kCompiledOn = false;
constexpr bool enabled() { return false; }
inline void set_enabled(bool) {}

#else

constexpr bool kCompiledOn = true;

namespace detail {
/// -1 = undecided (consult the environment on first use), 0 = off, 1 = on.
extern std::atomic<int> g_enabled;
bool init_enabled();
}  // namespace detail

/// True unless DSADC_OBS_DISABLE=1 in the environment or set_enabled(false)
/// was called. The result is cached; the common case is one relaxed load.
inline bool enabled() {
  const int s = detail::g_enabled.load(std::memory_order_relaxed);
  if (s >= 0) return s != 0;
  return detail::init_enabled();
}

/// Programmatic override (tests, benches measuring instrumentation cost).
inline void set_enabled(bool on) {
  detail::g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

#endif  // DSADC_OBS_COMPILED_OFF

}  // namespace dsadc::obs
