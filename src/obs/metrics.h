// Process-wide metrics registry: counters, gauges and fixed-bucket
// histograms.
//
// Metric names follow `component.event.site` in lower_snake_case, e.g.
// `fx.saturate.hbf_out` or `chain.rms.sinc4_1` (docs/OBSERVABILITY.md has
// the full convention). Instruments have stable addresses for the lifetime
// of the process, so hot call-sites look them up once (typically through a
// function-local static) and then touch only a relaxed atomic.
//
// All mutation paths are data-race-free: creation is serialized by the
// registry mutex, updates use atomics. Snapshots are approximate under
// concurrent writers (each value is individually coherent).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/obs.h"

namespace dsadc::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { bits_.store(encode(v), std::memory_order_relaxed); }
  double value() const { return decode(bits_.load(std::memory_order_relaxed)); }
  void reset() { set(0.0); }

 private:
  // Stored as the bit pattern so a plain 64-bit atomic suffices everywhere.
  static std::uint64_t encode(double v);
  static double decode(std::uint64_t bits);
  std::atomic<std::uint64_t> bits_{0x0};

 public:
  Gauge() { set(0.0); }
};

/// Cumulative histogram over fixed upper bounds; values above the last
/// bound land in an implicit +inf bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// i in [0, bounds().size()]; the last index is the overflow bucket.
  std::uint64_t bucket_count(std::size_t i) const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  // double bit pattern, CAS-added
};

class Registry {
 public:
  static Registry& instance();

  /// Find-or-create. The returned reference stays valid for the process
  /// lifetime. Re-requesting a histogram ignores the bounds argument.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// Sum of all counters whose name starts with `prefix` (e.g.
  /// "fx.saturate." totals saturation events across call sites).
  std::uint64_t counter_total(const std::string& prefix) const;

  /// Zero every instrument (tests isolate themselves with this).
  void reset_all();

  /// JSON dump: {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  std::string to_json(int indent = 0) const;

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace dsadc::obs

/// Count `n` events against a registry counter; the lookup happens once per
/// call-site, the steady state is one branch + one relaxed increment.
#ifdef DSADC_OBS_COMPILED_OFF
#define DSADC_OBS_COUNT_N(name, n) \
  do {                             \
  } while (0)
#else
#define DSADC_OBS_COUNT_N(name, n)                             \
  do {                                                         \
    if (::dsadc::obs::enabled()) {                             \
      static ::dsadc::obs::Counter& dsadc_obs_counter_ =       \
          ::dsadc::obs::Registry::instance().counter(name);    \
      dsadc_obs_counter_.add(n);                               \
    }                                                          \
  } while (0)
#endif
#define DSADC_OBS_COUNT(name) DSADC_OBS_COUNT_N(name, 1)
