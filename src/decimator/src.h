// Fractional sample-rate converter (Section III: "A sample rate converter
// is often used after the decimation filter for allowing flexibility in
// the output sample rate for a direct interface to the digital receiver
// blocks", e.g. 40 MS/s -> 30.72 MS/s for an LTE baseband).
//
// Farrow-structure cubic Lagrange interpolator: the fractional delay is a
// runtime input evaluated with Horner's rule over four fixed polynomial
// branches, so the hardware is four small FIRs plus three multipliers -
// the standard companion block to a decimation chain.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dsadc::decim {

class FarrowResampler {
 public:
  /// `ratio` = input rate / output rate (> 0; < 1 interpolates, > 1
  /// decimates slightly - for large ratios decimate first, as the chain
  /// does).
  explicit FarrowResampler(double ratio);

  /// Resample a block (doubles; the SRC sits after the fixed-point chain
  /// and feeds the digital receiver).
  std::vector<double> process(std::span<const double> in);

  void reset();

  double ratio() const { return ratio_; }

  /// Cubic Lagrange interpolation of four consecutive samples at
  /// fractional position mu in [0, 1) between x[1] and x[2] (exposed for
  /// tests; process() evaluates it in Farrow/Horner form).
  static double interpolate(double xm1, double x0, double x1, double x2,
                            double mu);

 private:
  double ratio_;
  double phase_ = 0.0;        ///< fractional read position
  std::vector<double> hist_;  ///< last 4 input samples (x[n-3..n])
  std::uint64_t consumed_ = 0;
};

/// Convenience: resample `in` from `rate_in` to `rate_out`.
std::vector<double> resample(std::span<const double> in, double rate_in,
                             double rate_out);

}  // namespace dsadc::decim
