// Interpolation duals of the decimation stages (transmit path).
//
// The SDR platforms the paper targets pair every receive decimator with a
// transmit interpolator built from the same pieces (Hogenauer's original
// paper and the paper's reference [8] both treat decimation and
// interpolation together). These are the exact transposes: a Sinc^K
// zero-stuffing interpolator (combs at the slow rate, integrators at the
// fast rate) and a polyphase halfband interpolator reusing the designed
// halfband taps.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/decimator/fir.h"
#include "src/decimator/chain.h"
#include "src/filterdesign/cic.h"
#include "src/fixedpoint/fixed.h"

namespace dsadc::decim {

/// Hogenauer Sinc^K interpolate-by-M: K differentiators at the input
/// rate, zero-stuffing, K integrators at the output rate (wraparound
/// arithmetic, like the decimator). DC gain is M^(K-1).
class CicInterpolator {
 public:
  explicit CicInterpolator(design::CicSpec spec);

  /// Push one input sample; appends `M` output samples to `out`.
  void push(std::int64_t in, std::vector<std::int64_t>& out);

  std::vector<std::int64_t> process(std::span<const std::int64_t> in);
  void reset();

  const design::CicSpec& spec() const { return spec_; }
  std::int64_t dc_gain() const;

 private:
  design::CicSpec spec_;
  fx::Format fmt_;
  std::vector<std::int64_t> comb_;   ///< differentiator states (input rate)
  std::vector<std::int64_t> integ_;  ///< integrator states (output rate)
};

/// Polyphase halfband interpolate-by-2: the even output phase is the
/// even-tap subfilter, the odd phase is the 0.5-scaled delayed input -
/// the transpose of PolyphaseHalfbandDecimator, reusing the same taps.
class HalfbandInterpolator {
 public:
  /// `taps` must have half-band structure (length 4J-1). The interpolator
  /// applies gain 2 so that a tone keeps its amplitude after zero-stuffing.
  HalfbandInterpolator(FixedTaps taps, fx::Format in_fmt, fx::Format out_fmt);

  /// Push one input sample; appends 2 output samples to `out`.
  void push(std::int64_t in, std::vector<std::int64_t>& out);

  std::vector<std::int64_t> process(std::span<const std::int64_t> in);
  void reset();

 private:
  FixedTaps even_;     ///< nonzero (even-index) taps of the halfband
  std::int64_t center_ = 0;
  int frac_bits_;
  fx::Format in_fmt_, out_fmt_;
  std::vector<std::int64_t> hist_;
  std::size_t pos_ = 0;
};

/// The transmit-path dual of DecimationChain: halfband interpolate-by-2
/// followed by the mirrored Sinc stages, 40 MS/s baseband in, fs-rate
/// samples out (what a current-steering DAC would consume).
class InterpolationChain {
 public:
  /// Reuses the receive chain's designed halfband taps and Sinc orders.
  explicit InterpolationChain(const ChainConfig& cfg);

  /// `in`: samples in the chain's output_format (the ADC/baseband word).
  /// Returns samples at the modulator rate in `dac_format()`.
  std::vector<std::int64_t> process(std::span<const std::int64_t> in);

  void reset();

  std::size_t total_interpolation() const { return factor_; }
  const fx::Format& dac_format() const { return dac_fmt_; }

 private:
  fx::Format in_fmt_, mid_fmt_, dac_fmt_;
  HalfbandInterpolator hbf_;
  std::vector<CicInterpolator> cics_;
  std::vector<int> norm_shifts_;  ///< per-CIC gain normalization
  std::size_t factor_;
};

}  // namespace dsadc::decim
