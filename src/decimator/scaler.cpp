#include "src/decimator/scaler.h"

#include <cmath>
#include <stdexcept>

#include "src/decimator/simd.h"
#include "src/decimator/soa.h"

namespace dsadc::decim {

ScalingStage::ScalingStage(double scale, fx::Format in_fmt, fx::Format out_fmt,
                           int frac_bits, std::size_t max_digits)
    : csd_(fx::csd_encode_limited(scale, frac_bits, max_digits)),
      frac_bits_(frac_bits),
      in_fmt_(in_fmt),
      out_fmt_(out_fmt) {
  if (scale <= 0.0) throw std::invalid_argument("ScalingStage: scale <= 0");
}

std::int64_t ScalingStage::push(std::int64_t in) const {
  // Horner-style shift-add evaluation of the CSD constant: process digits
  // from most significant to least, accumulating shifted partial sums.
  // acc carries frac = in.frac + frac_bits_ to keep all digit weights
  // integral.
  std::int64_t acc = 0;
  for (const auto& d : csd_.digits) {
    const int shift = d.position + frac_bits_;  // >= 0 by construction
    const std::int64_t term = (shift >= 0) ? (in << shift) : (in >> -shift);
    acc += d.sign > 0 ? term : -term;
  }
  static const fx::EventCounters& ec = fx::event_counters("scaler_out");
  return fx::requantize(acc, in_fmt_.frac + frac_bits_, out_fmt_,
                        fx::Rounding::kRoundNearest, fx::Overflow::kSaturate,
                        &ec);
}

std::vector<std::int64_t> ScalingStage::process(
    std::span<const std::int64_t> in) const {
  std::vector<std::int64_t> out;
  out.reserve(in.size());
  for (std::int64_t x : in) out.push_back(push(x));
  return out;
}

void ScalingStage::process_inplace(std::vector<std::int64_t>& data) const {
  // Same Horner digit walk as push(), with the requantize inlined and the
  // round/saturate events tallied per block instead of per sample.
  static const fx::EventCounters& ec = fx::event_counters("scaler_out");
  const soa::Requant rq(in_fmt_.frac + frac_bits_, out_fmt_,
                        fx::Rounding::kRoundNearest, ec);
  soa::RequantTally tally;
  simd::kernels().scaler_map(data.data(), data.size(), csd_.digits.data(),
                             csd_.digits.size(), frac_bits_, rq, tally);
  tally.flush(rq);
}

double scale_for_msa(double msa, double headroom) {
  if (!(msa > 0.0 && msa <= 1.0)) {
    throw std::invalid_argument("scale_for_msa: msa must be in (0, 1]");
  }
  return headroom / msa;
}

}  // namespace dsadc::decim
