#include "src/decimator/chain.h"

#include <bit>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "src/dsp/freqz.h"
#include "src/filterdesign/equalizer.h"
#include "src/obs/metrics.h"
#include "src/obs/store/store.h"

namespace dsadc::decim {
namespace {

int cic_cascade_gain_log2(const std::vector<design::CicSpec>& stages) {
  double g = 0.0;
  for (const auto& s : stages) {
    g += s.order * std::log2(static_cast<double>(s.decimation));
  }
  const int gi = static_cast<int>(std::lround(g));
  if (std::abs(g - gi) > 1e-9) {
    throw std::invalid_argument(
        "DecimationChain: CIC gain must be a power of two for shift "
        "normalization");
  }
  return gi;
}

/// One block in N gets stage-boundary events when the trace store is on
/// (DSADC_STORE_STAGE_SAMPLE, default 8, minimum 1 = every block).
std::size_t stage_sample_period() {
  static const std::size_t period = [] {
    if (const char* v = std::getenv("DSADC_STORE_STAGE_SAMPLE")) {
      const long n = std::strtol(v, nullptr, 10);
      if (n >= 1) return static_cast<std::size_t>(n);
    }
    return std::size_t{8};
  }();
  return period;
}

}  // namespace

SignalStats signal_stats(std::span<const std::int64_t> samples,
                         int width_bits) {
  SignalStats st;
  if (samples.empty()) {
    st.peak_headroom_bits = width_bits - 1;
    return st;
  }
  st.min_raw = samples[0];
  st.max_raw = samples[0];
  double sumsq = 0.0;
  for (std::int64_t v : samples) {
    if (v < st.min_raw) st.min_raw = v;
    if (v > st.max_raw) st.max_raw = v;
    const double d = static_cast<double>(v);
    sumsq += d * d;
  }
  st.rms_raw = std::sqrt(sumsq / static_cast<double>(samples.size()));
  const std::uint64_t peak =
      static_cast<std::uint64_t>(std::max(st.max_raw, -st.min_raw));
  st.peak_headroom_bits =
      width_bits - 1 - static_cast<int>(std::bit_width(peak));
  return st;
}

void DecimationChain::record_stage(const char* name, double rate_hz,
                                   int width_bits,
                                   const std::vector<std::int64_t>& samples,
                                   std::vector<StageProbe>* probes,
                                   std::size_t idx,
                                   std::int64_t* stage_start_us) {
  const bool obs_on = obs::enabled();
  // The caller passes a non-null time cursor only for blocks selected by
  // the store's stage sampler (see process()).
  const bool store_on = stage_start_us != nullptr;
  const bool want_stats = probes != nullptr || obs_on;
  if (!want_stats && !store_on) return;
  SignalStats st;
  if (want_stats) {
    st = signal_stats(samples, width_bits);
  } else {
    // Store-only: the event carries just the headroom, which needs the
    // integer peak -- a vectorizable min/max pass, no RMS accumulation.
    std::int64_t mn = 0;
    std::int64_t mx = 0;
    for (std::int64_t v : samples) {
      if (v < mn) mn = v;
      if (v > mx) mx = v;
    }
    const auto peak = static_cast<std::uint64_t>(std::max(mx, -mn));
    st.peak_headroom_bits =
        width_bits - 1 - static_cast<int>(std::bit_width(peak));
  }
  if (store_on) {
    if (idx >= stage_ids_.size()) stage_ids_.resize(idx + 1, 0);
    if (stage_ids_[idx] == 0) {
      stage_ids_[idx] = obs::store::intern(std::string("stage.") + name);
    }
    const std::int64_t now = obs::store::now_us();
    obs::store::Event e;
    e.category = obs::store::Category::kStage;
    e.name = stage_ids_[idx];
    e.ts_us = *stage_start_us;
    e.dur_us = now - *stage_start_us;
    e.stage = static_cast<std::uint32_t>(idx);
    e.value = st.peak_headroom_bits;
    e.aux = samples.size();
    stage_batch_.push_back(e);  // one emit_batch() at the end of the block
    *stage_start_us = now;
  }
  if (obs_on) {
    auto& reg = obs::Registry::instance();
    const std::string stage = name;
    reg.gauge("chain.min_raw." + stage).set(static_cast<double>(st.min_raw));
    reg.gauge("chain.max_raw." + stage).set(static_cast<double>(st.max_raw));
    reg.gauge("chain.rms_raw." + stage).set(st.rms_raw);
    reg.gauge("chain.peak_headroom_bits." + stage)
        .set(st.peak_headroom_bits);
    reg.counter("chain.samples." + stage).add(samples.size());
  }
  if (probes != nullptr) {
    if (idx >= probes->size()) probes->resize(idx + 1);
    StageProbe& p = (*probes)[idx];
    p.name = name;
    p.rate_hz = rate_hz;
    p.width_bits = width_bits;
    p.samples.assign(samples.begin(), samples.end());
    p.stats = st;
  }
}

DecimationChain::DecimationChain(ChainConfig config)
    : config_(std::move(config)),
      cic_(config_.cic_stages),
      hbf_(config_.hbf, config_.hbf_in_format, config_.hbf_out_format,
           config_.hbf_coeff_frac_bits),
      scaler_(config_.scale, config_.hbf_out_format, config_.scaler_out_format,
              /*frac_bits=*/14, /*max_digits=*/8),
      equalizer_(FixedTaps::from_real(config_.equalizer_taps,
                                      config_.equalizer_frac_bits),
                 /*decimation=*/1, config_.scaler_out_format,
                 config_.output_format),
      cic_gain_log2_(cic_cascade_gain_log2(config_.cic_stages)) {
  const auto& stages = cic_.stages();
  sinc_names_.reserve(stages.size());
  for (std::size_t i = 0; i < stages.size(); ++i) {
    sinc_names_.push_back("sinc" + std::to_string(stages[i].spec().order) +
                          "_" + std::to_string(i + 1));
  }
}

void DecimationChain::reset() {
  cic_.reset();
  hbf_.reset();
  equalizer_.reset();
}

std::size_t DecimationChain::total_decimation() const {
  return cic_.total_decimation() * 2;
}

double DecimationChain::output_rate_hz() const {
  return config_.input_rate_hz / static_cast<double>(total_decimation());
}

std::size_t DecimationChain::group_delay_input_samples() const {
  std::size_t d = 0;
  std::size_t rate = 1;
  for (const auto& s : config_.cic_stages) {
    // Sinc^K delay: K (M - 1) / 2 at its input rate.
    d += rate * static_cast<std::size_t>(s.order) *
         static_cast<std::size_t>(s.decimation - 1) / 2;
    rate *= static_cast<std::size_t>(s.decimation);
  }
  d += rate * hbf_.group_delay();
  rate *= 2;
  d += rate * (config_.equalizer_taps.size() - 1) / 2;
  return d;
}

std::vector<std::int64_t> DecimationChain::process(
    std::span<const std::int32_t> codes, std::vector<StageProbe>* probes) {
  // Stage rates for the probes.
  const double fs = config_.input_rate_hz;
  std::size_t probe_idx = 0;
  // Record stage events for one block in DSADC_STORE_STAGE_SAMPLE: per
  // block they cost a min/max pass plus a clock read per boundary, which
  // sampling keeps off the steady-state throughput path (<3% gate in CI)
  // while every chain instance still traces its first block.
  std::int64_t t_stage = 0;
  std::int64_t* stage_cursor = nullptr;
  if (obs::store::enabled() &&
      stage_seq_++ % stage_sample_period() == 0) {
    t_stage = obs::store::now_us();
    stage_cursor = &t_stage;
    stage_batch_.clear();
  }

  // --- CIC cascade (per-stage for probing). All inter-stage signals live
  // in the member scratch vectors, so the steady state allocates only the
  // returned output vector.
  buf_.assign(codes.begin(), codes.end());
  record_stage("input", fs, config_.input_format.width, buf_, probes,
               probe_idx++, stage_cursor);
  double rate = fs;
  auto& stages = cic_.stages();
  for (std::size_t i = 0; i < stages.size(); ++i) {
    stages[i].process_inplace(buf_);
    rate /= stages[i].spec().decimation;
    record_stage(sinc_names_[i].c_str(), rate,
                 stages[i].register_format().width, buf_, probes,
                 probe_idx++, stage_cursor);
  }

  // --- Normalize the CIC gain (pure shift) into the HBF input format.
  // The CIC output in "code units" carries gain 2^cic_gain_log2_; treat it
  // as a fractional scale and round into hbf_in_format.
  static const fx::EventCounters& ec_renorm = fx::event_counters("chain_hbf_in");
  for (auto& v : buf_) {
    v = fx::requantize(v, /*src_frac=*/cic_gain_log2_, config_.hbf_in_format,
                       fx::Rounding::kRoundNearest, fx::Overflow::kSaturate,
                       &ec_renorm);
  }

  // --- Halfband decimate-by-2.
  hbf_.process_into(buf_, hbuf_);
  rate /= 2.0;
  record_stage("halfband", rate, config_.hbf_out_format.width, hbuf_, probes,
               probe_idx++, stage_cursor);

  // --- Scaling (CSD Horner).
  scaler_.process_inplace(hbuf_);
  record_stage("scaler", rate, config_.scaler_out_format.width, hbuf_, probes,
               probe_idx++, stage_cursor);

  // --- Equalizer at the output rate.
  std::vector<std::int64_t> eout;
  equalizer_.process_into(hbuf_, eout);
  record_stage("equalizer", rate, config_.output_format.width, eout, probes,
               probe_idx++, stage_cursor);
  if (stage_cursor != nullptr && !stage_batch_.empty()) {
    obs::store::emit_batch(stage_batch_.data(), stage_batch_.size());
  }
  return eout;
}

std::vector<double> DecimationChain::process_to_real(
    std::span<const std::int32_t> codes) {
  const std::vector<std::int64_t> raw = process(codes);
  std::vector<double> out(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    out[i] = fx::to_double(raw[i], config_.output_format);
  }
  return out;
}

ChainConfig paper_chain_config() {
  ChainConfig cfg;
  cfg.cic_stages = design::paper_sinc_cascade();
  cfg.hbf = design::design_saramaki_hbf(3, 6, 0.2125, 24, 0);

  // Scaler constant: the chain carries "code units" (mid-tread 4-bit codes,
  // |c| <= 7, signal amplitude MSA * 7). Peaks exceed the nominal MSA
  // amplitude by the residual shaped noise left after the halfband, so the
  // gain maps (MSA * 7 + 0.5) code units to just under full scale:
  //   S_total = headroom / (MSA * 7 + 0.5)
  const double msa = 0.81;
  cfg.scale = 0.98 / (msa * 7.0 + 0.5);

  // Equalizer: compensate the Sinc-cascade + HBF droop over the full
  // output band, referred to the 40 MHz output rate (f in cycles/sample).
  const auto cic_stages = cfg.cic_stages;
  const auto hbf_taps = cfg.hbf.taps;
  const auto droop = [cic_stages, hbf_taps](double f) {
    // f at 40 MHz; CIC stage i sees f / 2^(4-i)... compute explicitly:
    // input rates: 640, 320, 160 MHz; HBF at 80 MHz.
    double mag = 1.0;
    double rate_ratio = 16.0;  // 640/40
    for (const auto& s : cic_stages) {
      mag *= design::cic_magnitude(s, f / rate_ratio);
      rate_ratio /= s.decimation;
    }
    mag *= std::abs(dsp::fir_response_at(hbf_taps, f / rate_ratio));
    return mag;
  };
  const design::EqualizerResult eq =
      design::design_droop_equalizer(65, droop, 0.4999);
  cfg.equalizer_taps = eq.taps;
  return cfg;
}

}  // namespace dsadc::decim
