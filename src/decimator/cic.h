// Bit-true Hogenauer CIC (Sinc^K) decimator (Fig. 6 of the paper).
//
// K accumulators run at the input rate with *wraparound* two's-complement
// arithmetic in Bmax-bit registers (modular arithmetic makes the structure
// exact despite intermediate overflow), a pipeline register decouples the
// fast accumulator cascade from the slow side, and K differentiators run
// at the decimated rate. Retiming and pipelining flags do not change the
// arithmetic (they cut glitch power); they are carried here so the RTL
// generator and power model can honour them.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/filterdesign/cic.h"
#include "src/fixedpoint/fixed.h"

namespace dsadc::decim {

/// Hardware configuration knobs from Section IV.
struct CicHardwareOptions {
  bool retimed = true;     ///< register in accumulator forward path
  bool pipelined = true;   ///< pipeline register before differentiators
};

class CicDecimator {
 public:
  /// `spec.input_bits` sets the input format; all internal registers use
  /// the Hogenauer width from the spec.
  explicit CicDecimator(design::CicSpec spec,
                        CicHardwareOptions options = {});

  /// Push one input sample (raw integer in the stage's input format).
  /// Returns true and fills `out` every `decimation`-th sample.
  bool push(std::int64_t in, std::int64_t& out);

  /// Process a block, returning the decimated samples. Runs the batched
  /// section-at-a-time kernel (one sequential pass per integrator/comb
  /// section); bit-identical to an equivalent sequence of push() calls
  /// and freely mixable with them (state is shared).
  std::vector<std::int64_t> process(std::span<const std::int64_t> in);

  /// Same kernel operating on a caller-owned buffer: `data` holds the
  /// input block on entry and the decimated output on return. No
  /// allocation happens when `data`'s capacity is reused across blocks.
  void process_inplace(std::vector<std::int64_t>& data);

  void reset();

  const design::CicSpec& spec() const { return spec_; }
  const CicHardwareOptions& options() const { return options_; }
  /// Register format used by every accumulator/differentiator.
  const fx::Format& register_format() const { return fmt_; }
  /// DC gain of the stage (M^K); the output carries this gain.
  std::int64_t dc_gain() const;

 private:
  friend class CicDecimatorBank;  // lane-state export (see export_lane)

  design::CicSpec spec_;
  CicHardwareOptions options_;
  fx::Format fmt_;
  std::vector<std::int64_t> integ_;  ///< accumulator states
  std::vector<std::int64_t> comb_;   ///< differentiator delay states
  int phase_ = 0;
};

/// N-channel lockstep CIC bank over channel-interleaved frames (element
/// index = frame * channels + channel). Each channel runs the exact
/// arithmetic of a dedicated CicDecimator -- same wrapped additions in the
/// same order -- so per-channel output streams are bit-identical to the
/// scalar stage; the channel-minor layout makes every inner loop a set of
/// independent int64 lanes the compiler can vectorize.
class CicDecimatorBank {
 public:
  CicDecimatorBank(design::CicSpec spec, std::size_t channels,
                   CicHardwareOptions options = {});

  /// `data.size()` must be a multiple of `channels`; holds frames of
  /// channel-interleaved input on entry, decimated frames on return.
  void process_inplace(std::vector<std::int64_t>& data);

  void reset();

  /// Copy lane `lane`'s streaming state into a scalar stage built from the
  /// same spec, so `dst` continues the lane's sample stream bit-exactly
  /// (accumulators, differentiator delays, decimation phase). Valid at any
  /// block boundary -- the bank keeps one shared phase for all lanes.
  void export_lane(std::size_t lane, CicDecimator& dst) const;

  const design::CicSpec& spec() const { return spec_; }
  const fx::Format& register_format() const { return fmt_; }
  std::size_t channels() const { return channels_; }

 private:
  design::CicSpec spec_;
  CicHardwareOptions options_;
  fx::Format fmt_;
  std::size_t channels_;
  std::vector<std::int64_t> integ_;  ///< order x channels accumulator rows
  std::vector<std::int64_t> comb_;   ///< order x channels delay rows
  int phase_ = 0;
};

/// A cascade of CIC stages (the paper's Sinc4 -> Sinc4 -> Sinc6 chain).
class CicCascade {
 public:
  explicit CicCascade(std::vector<design::CicSpec> specs,
                      CicHardwareOptions options = {});

  /// Process a block at the cascade input rate; returns samples at the
  /// final decimated rate (overall gain = prod M_i^K_i).
  std::vector<std::int64_t> process(std::span<const std::int64_t> in);

  void reset();

  std::size_t total_decimation() const;
  std::int64_t total_dc_gain() const;
  const std::vector<CicDecimator>& stages() const { return stages_; }
  std::vector<CicDecimator>& stages() { return stages_; }

 private:
  std::vector<CicDecimator> stages_;
};

}  // namespace dsadc::decim
