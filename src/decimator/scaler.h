// Scaling stage (Section VI of the paper).
//
// The modulator output swings only up to the MSA fraction of full scale,
// so after the noise has been filtered the signal is multiplied by
// S ~ 1/MSA (slightly less, to avoid overflow) to restore full dynamic
// range. The constant is CSD-encoded and evaluated with nested Horner
// shift-adds -- no multiplier.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/fixedpoint/csd.h"
#include "src/fixedpoint/fixed.h"

namespace dsadc::decim {

class ScalingStage {
 public:
  /// `scale` is the real gain (e.g. 1.0825 for MSA = 0.81 with margin),
  /// CSD-encoded with `max_digits` nonzero digits at `frac_bits` precision.
  ScalingStage(double scale, fx::Format in_fmt, fx::Format out_fmt,
               int frac_bits = 12, std::size_t max_digits = 6);

  std::int64_t push(std::int64_t in) const;
  std::vector<std::int64_t> process(std::span<const std::int64_t> in) const;

  /// Element-wise block kernel over a caller-owned buffer (no allocation,
  /// inline requantize with bulk event counting). The stage is stateless
  /// and channel-oblivious, so the same call serves single-channel blocks
  /// and channel-interleaved bank frames alike; bit-identical to push().
  void process_inplace(std::vector<std::int64_t>& data) const;

  const fx::Csd& csd() const { return csd_; }
  /// The gain actually applied after CSD quantization.
  double effective_scale() const { return csd_.to_double(); }
  /// Adders in the Horner shift-add network.
  std::size_t adder_count() const { return csd_.adder_cost(); }

  const fx::Format& input_format() const { return in_fmt_; }
  const fx::Format& output_format() const { return out_fmt_; }

 private:
  fx::Csd csd_;
  int frac_bits_;
  fx::Format in_fmt_, out_fmt_;
};

/// Pick a scale factor for a measured MSA: the largest CSD-representable
/// value not exceeding `headroom`/MSA (headroom < 1 guards overflow).
double scale_for_msa(double msa, double headroom = 0.98);

}  // namespace dsadc::decim
