// Bit-true fixed-point Saramaki half-band decimator (Fig. 7 of the paper).
//
// The structure is implemented in its polyphase form, which is what the
// figure actually draws: because the F2 subfilter has taps only at odd
// offsets, F2(z) = G2(z^2) for a length-2*n2 symmetric subfilter G2, so
// after the decimate-by-2 split every G2 block - the box with 11 unit
// delays and taps f2(1..6) in the figure - runs at the *output* rate on
// the even-phase stream, and the 0.5 path is a plain delay on the
// odd-phase stream (the z^-11, z^-11, z^-6 chain: 28 output samples).
// Outer taps f1 apply to the odd cascade outputs in the power basis
// (branch i carries (2 F2hat)^(2i-1)).
//
// Every G2 output is requantized to an internal guard format, exactly as
// the synthesized datapath rounds between adder stages. A direct-form
// polyphase implementation of the *composite* 111 taps is available in
// fir.h for cross-checking and ablation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/decimator/fir.h"
#include "src/filterdesign/saramaki.h"
#include "src/fixedpoint/fixed.h"

namespace dsadc::decim {

class SaramakiHbfDecimator {
 public:
  /// `design` supplies f1/f2 (the CSD-quantized values are used),
  /// `coeff_frac_bits` the coefficient scale (the paper's 24 bits),
  /// `guard_frac_bits` the extra fractional bits carried between blocks.
  SaramakiHbfDecimator(const design::SaramakiHbf& design, fx::Format in_fmt,
                       fx::Format out_fmt, int coeff_frac_bits = 24,
                       int guard_frac_bits = 6);

  /// Push one sample at the input rate; true on every second sample with
  /// the decimated output.
  bool push(std::int64_t in, std::int64_t& out);

  /// Process a block. Runs the batched polyphase kernel (phase split, one
  /// vector pass per G2 block / branch delay, then the f1 combination);
  /// bit-identical to the equivalent push() sequence and freely mixable
  /// with it (state is shared).
  std::vector<std::int64_t> process(std::span<const std::int64_t> in);

  void reset();

  const fx::Format& input_format() const { return in_fmt_; }
  const fx::Format& output_format() const { return out_fmt_; }
  const fx::Format& internal_format() const { return internal_fmt_; }
  /// Composite group delay D in input samples.
  std::size_t group_delay() const { return big_d_; }
  /// Multiplications (CSD networks) evaluated per output sample.
  std::size_t macs_per_output() const;

 private:
  /// One G2 subfilter instance (even-phase, length 2*n2, symmetric).
  struct G2Block {
    std::vector<std::int64_t> hist;  // circular delay line, size 2*n2
    std::size_t pos = 0;

    /// Push an even-phase sample, return the product-format accumulator.
    /// `coeffs[j]` weights offsets with |2k - (2*n2 - 1)| = 2j - 1; each
    /// product is requantized to the owner's product format before the sum
    /// (narrow adder tree, as in the power-optimized datapath).
    std::int64_t step(std::int64_t in, const std::vector<std::int64_t>& coeffs,
                      const SaramakiHbfDecimator& owner);
  };

  std::int64_t requantize_product(std::int64_t prod) const;
  std::int64_t requantize_internal(std::int64_t acc) const;
  /// Vector pass of `step` + requantize_internal over a whole even-phase
  /// stream, updating `b`'s streaming state; rewrites `stream` in place.
  void g2_block_pass(G2Block& b, std::vector<std::int64_t>& stream);

  std::vector<std::int64_t> f2_coeffs_;  ///< integer subfilter taps
  std::vector<std::int64_t> f1_coeffs_;  ///< integer outer taps (power basis)
  std::int64_t half_coeff_ = 0;          ///< 0.5 in coefficient scale
  int coeff_frac_;
  std::size_t n1_, n2_, d2_, big_d_;
  fx::Format in_fmt_, out_fmt_, internal_fmt_;
  fx::Format prod_fmt_;  ///< post-multiplier format (narrow adder tree)

  std::vector<G2Block> blocks_;              ///< 2 n1 - 1 cascade stages
  std::vector<std::int64_t> odd_delay_;      ///< 0.5 path, (D+1)/2 samples
  std::size_t opos_ = 0;
  /// Branch delay lines for odd cascade outputs w1, w3, ... (all but the
  /// last): (D - (2i-1) d2)/2 output samples each.
  std::vector<std::vector<std::int64_t>> branch_delay_;
  std::vector<std::size_t> bpos_;
  int phase_ = 0;
};

}  // namespace dsadc::decim
