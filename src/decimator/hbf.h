// Bit-true fixed-point Saramaki half-band decimator (Fig. 7 of the paper).
//
// The structure is implemented in its polyphase form, which is what the
// figure actually draws: because the F2 subfilter has taps only at odd
// offsets, F2(z) = G2(z^2) for a length-2*n2 symmetric subfilter G2, so
// after the decimate-by-2 split every G2 block - the box with 11 unit
// delays and taps f2(1..6) in the figure - runs at the *output* rate on
// the even-phase stream, and the 0.5 path is a plain delay on the
// odd-phase stream (the z^-11, z^-11, z^-6 chain: 28 output samples).
// Outer taps f1 apply to the odd cascade outputs in the power basis
// (branch i carries (2 F2hat)^(2i-1)).
//
// Every G2 output is requantized to an internal guard format, exactly as
// the synthesized datapath rounds between adder stages. A direct-form
// polyphase implementation of the *composite* 111 taps is available in
// fir.h for cross-checking and ablation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/decimator/fir.h"
#include "src/filterdesign/saramaki.h"
#include "src/fixedpoint/fixed.h"

namespace dsadc::decim {

namespace hbf_detail {

/// Everything derived from (design, formats, coeff/guard precision) that
/// the scalar decimator and the multi-channel bank share.
struct HbfParams {
  std::vector<std::int64_t> f2_coeffs;  ///< integer subfilter taps
  std::vector<std::int64_t> f1_coeffs;  ///< integer outer taps (power basis)
  std::int64_t half_coeff = 0;          ///< 0.5 in coefficient scale
  int coeff_frac = 24;
  std::size_t n1 = 0, n2 = 0, d2 = 0, big_d = 0;
  fx::Format in_fmt, out_fmt, internal_fmt;
  fx::Format prod_fmt;  ///< post-multiplier format (narrow adder tree)
};

HbfParams make_hbf_params(const design::SaramakiHbf& design, fx::Format in_fmt,
                          fx::Format out_fmt, int coeff_frac_bits,
                          int guard_frac_bits);

}  // namespace hbf_detail

class SaramakiHbfDecimator {
 public:
  /// `design` supplies f1/f2 (the CSD-quantized values are used),
  /// `coeff_frac_bits` the coefficient scale (the paper's 24 bits),
  /// `guard_frac_bits` the extra fractional bits carried between blocks.
  SaramakiHbfDecimator(const design::SaramakiHbf& design, fx::Format in_fmt,
                       fx::Format out_fmt, int coeff_frac_bits = 24,
                       int guard_frac_bits = 6);

  /// Push one sample at the input rate; true on every second sample with
  /// the decimated output.
  bool push(std::int64_t in, std::int64_t& out);

  /// Process a block. Runs the batched polyphase kernel (phase split, one
  /// vector pass per G2 block / branch delay, then the f1 combination);
  /// bit-identical to the equivalent push() sequence and freely mixable
  /// with it (state is shared).
  std::vector<std::int64_t> process(std::span<const std::int64_t> in);

  /// Same kernel writing into a caller-owned vector. All intermediate
  /// streams live in member scratch buffers, so the steady state
  /// allocates nothing once capacities have grown to the block size.
  void process_into(std::span<const std::int64_t> in,
                    std::vector<std::int64_t>& out);

  void reset();

  const fx::Format& input_format() const { return p_.in_fmt; }
  const fx::Format& output_format() const { return p_.out_fmt; }
  const fx::Format& internal_format() const { return p_.internal_fmt; }
  /// Composite group delay D in input samples.
  std::size_t group_delay() const { return p_.big_d; }
  /// Multiplications (CSD networks) evaluated per output sample.
  std::size_t macs_per_output() const;

 private:
  friend class SaramakiHbfBank;  // lane-state export (see export_lane)

  /// One G2 subfilter instance (even-phase, length 2*n2, symmetric).
  struct G2Block {
    std::vector<std::int64_t> hist;  // circular delay line, size 2*n2
    std::size_t pos = 0;

    /// Push an even-phase sample, return the product-format accumulator.
    /// `coeffs[j]` weights offsets with |2k - (2*n2 - 1)| = 2j - 1; each
    /// product is requantized to the owner's product format before the sum
    /// (narrow adder tree, as in the power-optimized datapath).
    std::int64_t step(std::int64_t in, const std::vector<std::int64_t>& coeffs,
                      const SaramakiHbfDecimator& owner);
  };

  std::int64_t requantize_product(std::int64_t prod) const;
  std::int64_t requantize_internal(std::int64_t acc) const;
  /// Vector pass of `step` + requantize_internal over a whole even-phase
  /// stream, updating `b`'s streaming state; rewrites `stream` in place.
  void g2_block_pass(G2Block& b, std::vector<std::int64_t>& stream);

  hbf_detail::HbfParams p_;

  std::vector<G2Block> blocks_;              ///< 2 n1 - 1 cascade stages
  std::vector<std::int64_t> odd_delay_;      ///< 0.5 path, (D+1)/2 samples
  std::size_t opos_ = 0;
  /// Branch delay lines for odd cascade outputs w1, w3, ... (all but the
  /// last): (D - (2i-1) d2)/2 output samples each.
  std::vector<std::vector<std::int64_t>> branch_delay_;
  std::vector<std::size_t> bpos_;
  int phase_ = 0;

  // Block-kernel scratch (reused across process calls; see process_into).
  std::vector<std::int64_t> even_scratch_;
  std::vector<std::int64_t> half_scratch_;
  std::vector<std::int64_t> g2_ext_;
  std::vector<std::vector<std::int64_t>> branch_scratch_;
};

/// N-channel lockstep Saramaki HBF bank over channel-interleaved frames
/// (element index = frame * channels + channel). Every channel undergoes
/// the exact per-sample operation sequence of a dedicated
/// SaramakiHbfDecimator -- promote, per-product requantize, G2 cascade,
/// branch alignment, f1 combination -- so each lane is bit-identical to
/// the scalar stage, outputs and fx event-counter totals alike.
class SaramakiHbfBank {
 public:
  SaramakiHbfBank(const design::SaramakiHbf& design, std::size_t channels,
                  fx::Format in_fmt, fx::Format out_fmt,
                  int coeff_frac_bits = 24, int guard_frac_bits = 6);

  /// `data.size()` must be a multiple of `channels`; input-rate frames on
  /// entry, decimated output frames on return.
  void process_inplace(std::vector<std::int64_t>& data);

  void reset();

  /// Copy lane `lane`'s streaming state into a scalar decimator built from
  /// the same design/formats: G2 cascade histories + cursors, the 0.5-path
  /// delay, branch delays, and the decimate-by-2 phase. `dst` then
  /// continues the lane's stream bit-exactly from the next sample on.
  void export_lane(std::size_t lane, SaramakiHbfDecimator& dst) const;

  std::size_t channels() const { return channels_; }
  std::size_t group_delay() const { return p_.big_d; }

 private:
  void g2_bank_pass(std::size_t block, std::vector<std::int64_t>& stream);

  hbf_detail::HbfParams p_;
  std::size_t channels_;

  /// G2 cascade state: per block, 2*n2 rows of C channels + row cursor.
  std::vector<std::vector<std::int64_t>> block_hist_;
  std::vector<std::size_t> block_pos_;
  std::vector<std::int64_t> odd_delay_;  ///< (D+1)/2 rows of C
  std::size_t opos_ = 0;
  std::vector<std::vector<std::int64_t>> branch_delay_;  ///< rows of C
  std::vector<std::size_t> bpos_;
  int phase_ = 0;

  // Scratch rows (reused across blocks).
  std::vector<std::int64_t> even_scratch_;
  std::vector<std::int64_t> half_scratch_;
  std::vector<std::int64_t> g2_ext_;
  std::vector<std::vector<std::int64_t>> branch_scratch_;
  std::vector<const std::int64_t*> branch_rows_;  ///< hbf_out kernel arg
};

}  // namespace dsadc::decim
