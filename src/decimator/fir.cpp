#include "src/decimator/fir.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/decimator/simd.h"
#include "src/decimator/soa.h"

namespace dsadc::decim {

FixedTaps FixedTaps::from_real(std::span<const double> real_taps,
                               int frac_bits) {
  if (frac_bits < 0 || frac_bits > 60) {
    throw std::invalid_argument("FixedTaps: frac_bits out of range");
  }
  FixedTaps out;
  out.frac_bits = frac_bits;
  out.taps.reserve(real_taps.size());
  const double scale = std::ldexp(1.0, frac_bits);
  for (double t : real_taps) {
    out.taps.push_back(static_cast<std::int64_t>(std::nearbyint(t * scale)));
  }
  return out;
}

std::vector<double> FixedTaps::to_real() const {
  std::vector<double> out;
  out.reserve(taps.size());
  const double scale = std::ldexp(1.0, -frac_bits);
  for (std::int64_t t : taps) out.push_back(static_cast<double>(t) * scale);
  return out;
}

FirDecimator::FirDecimator(FixedTaps taps, int decimation, fx::Format in_fmt,
                           fx::Format out_fmt, fx::Rounding rounding,
                           fx::Overflow overflow)
    : taps_(std::move(taps)),
      decimation_(decimation),
      in_fmt_(in_fmt),
      out_fmt_(out_fmt),
      rounding_(rounding),
      overflow_(overflow),
      delay_(taps_.size(), 0) {
  if (decimation_ < 1) throw std::invalid_argument("FirDecimator: decimation >= 1");
  if (taps_.taps.empty()) throw std::invalid_argument("FirDecimator: empty taps");
}

void FirDecimator::reset() {
  std::fill(delay_.begin(), delay_.end(), 0);
  pos_ = 0;
  phase_ = 0;
  filled_ = 0;
}

bool FirDecimator::push(std::int64_t in, std::int64_t& out) {
  delay_[pos_] = in;
  const std::size_t newest = pos_;
  pos_ = (pos_ + 1) % delay_.size();
  if (filled_ < delay_.size()) ++filled_;

  const bool emit = (phase_ == 0);
  phase_ = (phase_ + 1) % decimation_;
  if (!emit) return false;

  // y[n] = sum_k taps[k] * x[n-k]; full-precision accumulation.
  std::int64_t acc = 0;
  for (std::size_t k = 0; k < taps_.size(); ++k) {
    const std::size_t idx = (newest + delay_.size() - k) % delay_.size();
    acc += taps_.taps[k] * delay_[idx];
  }
  static const fx::EventCounters& ec = fx::event_counters("fir_out");
  out = fx::requantize(acc, in_fmt_.frac + taps_.frac_bits, out_fmt_,
                       rounding_, overflow_, &ec);
  return true;
}

std::vector<std::int64_t> FirDecimator::process(
    std::span<const std::int64_t> in) {
  std::vector<std::int64_t> out;
  process_into(in, out);
  return out;
}

void FirDecimator::process_into(std::span<const std::int64_t> in,
                                std::vector<std::int64_t>& out) {
  // Block kernel: materialize the delay line plus the new block as one
  // contiguous buffer so each output MAC is a linear dot product (no
  // per-tap circular modulo), computed only at the decimation phase's
  // emit positions. Accumulation order matches push() tap-for-tap; the
  // full-precision int64 accumulator makes the sums bit-identical.
  const std::size_t tap_count = taps_.size();
  // The prefix is the last tap_count-1 samples in chronological order;
  // delay_[pos_] itself (pushed tap_count samples ago) is already out of
  // every window.
  ext_.resize(tap_count - 1 + in.size());
  for (std::size_t j = 0; j + 1 < tap_count; ++j) {
    ext_[j] = delay_[(pos_ + 1 + j) % tap_count];
  }
  for (std::size_t i = 0; i < in.size(); ++i) ext_[tap_count - 1 + i] = in[i];

  static const fx::EventCounters& ec = fx::event_counters("fir_out");
  const int acc_frac = in_fmt_.frac + taps_.frac_bits;
  out.clear();
  out.reserve(in.size() / static_cast<std::size_t>(decimation_) + 1);
  const auto d = static_cast<std::size_t>(decimation_);
  const std::size_t first =
      (d - static_cast<std::size_t>(phase_)) % d;  // first emit index
  for (std::size_t i = first; i < in.size(); i += d) {
    const std::int64_t* window = ext_.data() + (tap_count - 1 + i);
    std::int64_t acc = 0;
    for (std::size_t k = 0; k < tap_count; ++k) {
      acc += taps_.taps[k] * window[-static_cast<std::ptrdiff_t>(k)];
    }
    out.push_back(
        fx::requantize(acc, acc_frac, out_fmt_, rounding_, overflow_, &ec));
  }

  // Commit the streaming state exactly as the equivalent pushes would.
  for (std::size_t i = 0; i < in.size(); ++i) {
    delay_[pos_] = in[i];
    pos_ = (pos_ + 1) % tap_count;
  }
  filled_ = std::min(tap_count, filled_ + in.size());
  phase_ = static_cast<int>(
      (static_cast<std::size_t>(phase_) + in.size()) % d);
}

FirDecimatorBank::FirDecimatorBank(FixedTaps taps, int decimation,
                                   std::size_t channels, fx::Format in_fmt,
                                   fx::Format out_fmt, fx::Rounding rounding)
    : taps_(std::move(taps)),
      decimation_(decimation),
      channels_(channels),
      in_fmt_(in_fmt),
      out_fmt_(out_fmt),
      rounding_(rounding),
      delay_(taps_.size() * channels, 0),
      acc_(channels, 0) {
  if (decimation_ < 1) {
    throw std::invalid_argument("FirDecimatorBank: decimation >= 1");
  }
  if (taps_.taps.empty()) {
    throw std::invalid_argument("FirDecimatorBank: empty taps");
  }
  if (channels_ == 0) {
    throw std::invalid_argument("FirDecimatorBank: channels >= 1");
  }
}

void FirDecimatorBank::reset() {
  std::fill(delay_.begin(), delay_.end(), 0);
  pos_ = 0;
  phase_ = 0;
}

void FirDecimatorBank::export_lane(std::size_t lane, FirDecimator& dst) const {
  if (lane >= channels_) {
    throw std::invalid_argument("FirDecimatorBank: export lane out of range");
  }
  if (dst.taps_.taps != taps_.taps || dst.taps_.frac_bits != taps_.frac_bits ||
      dst.decimation_ != decimation_) {
    throw std::invalid_argument("FirDecimatorBank: export taps mismatch");
  }
  // Bank row r holds what the scalar stage stores at delay_[r]; the write
  // cursor and decimation phase are shared across lanes.
  const std::size_t tap_count = taps_.size();
  for (std::size_t r = 0; r < tap_count; ++r) {
    dst.delay_[r] = delay_[r * channels_ + lane];
  }
  dst.pos_ = pos_;
  dst.phase_ = phase_;
  // filled_ only tracks warmup for introspection; the arithmetic never
  // reads it, so "fully warm" keeps the scalar invariant filled_ <= taps.
  dst.filled_ = tap_count;
}

void FirDecimatorBank::process_inplace(std::vector<std::int64_t>& data) {
  // The scalar block kernel widened to channel rows: the window becomes
  // (tap_count - 1 + frames) rows, each emit position a row of C
  // independent MACs accumulated tap for tap in scalar order, and each
  // output row one inline saturating requantize per lane with event
  // tallies flushed in bulk (identical totals to the per-sample scalar
  // counting).
  const std::size_t C = channels_;
  if (data.size() % C != 0) {
    throw std::invalid_argument(
        "FirDecimatorBank: data size not a multiple of channels");
  }
  const std::size_t frames = data.size() / C;
  const std::size_t tap_count = taps_.size();

  ext_.resize((tap_count - 1 + frames) * C);
  for (std::size_t j = 0; j + 1 < tap_count; ++j) {
    const std::size_t row = (pos_ + 1 + j) % tap_count;
    std::copy_n(delay_.data() + row * C, C, ext_.data() + j * C);
  }
  std::copy_n(data.data(), frames * C, ext_.data() + (tap_count - 1) * C);

  static const fx::EventCounters& ec = fx::event_counters("fir_out");
  const soa::Requant rq(in_fmt_.frac + taps_.frac_bits, out_fmt_, rounding_,
                        ec);
  soa::RequantTally tally;

  const auto d = static_cast<std::size_t>(decimation_);
  const std::size_t first = (d - static_cast<std::size_t>(phase_)) % d;
  const std::size_t n_out = simd::kernels().fir_emit(
      data.data(), ext_.data(), frames, C, taps_.taps.data(), tap_count,
      first, d, acc_.data(), rq, tally);
  tally.flush(rq);
  data.resize(n_out * C);

  // Streaming state: only the last tap_count input rows survive in the
  // delay line; write exactly those (same final state as row-wise pushes).
  const std::size_t start = frames > tap_count ? frames - tap_count : 0;
  for (std::size_t i = start; i < frames; ++i) {
    const std::size_t row = (pos_ + i) % tap_count;
    std::copy_n(ext_.data() + (tap_count - 1 + i) * C, C,
                delay_.data() + row * C);
  }
  pos_ = (pos_ + frames) % tap_count;
  phase_ = static_cast<int>((static_cast<std::size_t>(phase_) + frames) % d);
}

PolyphaseHalfbandDecimator::PolyphaseHalfbandDecimator(FixedTaps taps,
                                                       fx::Format in_fmt,
                                                       fx::Format out_fmt)
    : frac_bits_(taps.frac_bits), in_fmt_(in_fmt), out_fmt_(out_fmt) {
  if (taps.size() % 4 != 3) {
    throw std::invalid_argument(
        "PolyphaseHalfbandDecimator: taps must have length 4J-1");
  }
  const std::size_t mid = taps.size() / 2;
  // Validate half-band structure on the integer taps.
  for (std::size_t i = 0; i < taps.size(); ++i) {
    if (i == mid) continue;
    const std::size_t off = i > mid ? i - mid : mid - i;
    if (off % 2 == 0 && taps.taps[i] != 0) {
      throw std::invalid_argument(
          "PolyphaseHalfbandDecimator: non-zero even-offset tap");
    }
  }
  even_.frac_bits = taps.frac_bits;
  for (std::size_t i = 0; i < taps.size(); i += 2) even_.taps.push_back(taps.taps[i]);
  center_ = taps.taps[mid];
  even_hist_.assign(even_.size(), 0);
  // Center offset in the odd branch: (mid - 1) / 2 delays.
  odd_hist_.assign(taps.size() / 4 + 1, 0);
}

void PolyphaseHalfbandDecimator::reset() {
  std::fill(even_hist_.begin(), even_hist_.end(), 0);
  std::fill(odd_hist_.begin(), odd_hist_.end(), 0);
  epos_ = opos_ = 0;
  phase_ = 0;
}

std::size_t PolyphaseHalfbandDecimator::macs_per_output() const {
  std::size_t nonzero = 0;
  for (std::int64_t t : even_.taps) {
    if (t != 0) ++nonzero;
  }
  return nonzero + 1;  // + center-tap multiply (a shift in hardware)
}

bool PolyphaseHalfbandDecimator::push(std::int64_t in, std::int64_t& out) {
  if (phase_ == 0) {
    // Even-indexed input sample: store, then emit y.
    even_hist_[epos_] = in;
    const std::size_t newest = epos_;
    epos_ = (epos_ + 1) % even_hist_.size();
    phase_ = 1;

    std::int64_t acc = 0;
    for (std::size_t j = 0; j < even_.size(); ++j) {
      const std::size_t idx =
          (newest + even_hist_.size() - j) % even_hist_.size();
      acc += even_.taps[j] * even_hist_[idx];
    }
    // Odd branch: center tap applied to x_odd[n - J]; odd_hist_ holds the
    // last J+1 odd-phase samples with opos_ pointing at the oldest.
    acc += center_ * odd_hist_[opos_];
    static const fx::EventCounters& ec = fx::event_counters("polyphase_hbf_out");
    out = fx::requantize(acc, in_fmt_.frac + frac_bits_, out_fmt_,
                         fx::Rounding::kRoundNearest, fx::Overflow::kSaturate,
                         &ec);
    return true;
  }
  // Odd-indexed sample: enqueue into the delay line.
  odd_hist_[opos_] = in;
  opos_ = (opos_ + 1) % odd_hist_.size();
  phase_ = 0;
  return false;
}

std::vector<std::int64_t> PolyphaseHalfbandDecimator::process(
    std::span<const std::int64_t> in) {
  std::vector<std::int64_t> out;
  out.reserve(in.size() / 2 + 1);
  std::int64_t y = 0;
  for (std::int64_t x : in) {
    if (push(x, y)) out.push_back(y);
  }
  return out;
}

}  // namespace dsadc::decim
