// AVX-512 instantiation of the bank kernels. Compiled with
// -mavx512f -mavx512dq -mavx512vl (vpmullq gives native 64-bit lane
// multiplies, vpsraq native 64-bit arithmetic shifts); dispatch gates it
// on CPUID.
#define DSADC_SIMD_NS avx512
#include "src/decimator/bank_kernels_impl.h"
