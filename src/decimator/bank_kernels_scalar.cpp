// Baseline-target instantiation of the bank kernels (always compiled).
#define DSADC_SIMD_NS scalar
#include "src/decimator/bank_kernels_impl.h"
