// Bit-true fixed-point FIR filtering / decimation.
//
// Generic symmetric-FIR machinery shared by the halfband (direct/polyphase
// form), the equalizer, and any reconfigured chain. Coefficients are held
// as integers with a common fractional scale; the MAC accumulates in full
// int64 precision and the output is requantized to the requested format.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/fixedpoint/fixed.h"

namespace dsadc::decim {

/// Quantized coefficient set: integer taps with 2^-frac_bits weighting.
struct FixedTaps {
  std::vector<std::int64_t> taps;
  int frac_bits = 0;

  static FixedTaps from_real(std::span<const double> real_taps, int frac_bits);
  std::vector<double> to_real() const;
  std::size_t size() const { return taps.size(); }
};

/// FIR filter with optional decimation, full-precision accumulator.
class FirDecimator {
 public:
  /// `out_fmt` is the output sample format; the accumulator's fractional
  /// part (input frac + coeff frac) is rounded into it.
  FirDecimator(FixedTaps taps, int decimation, fx::Format in_fmt,
               fx::Format out_fmt,
               fx::Rounding rounding = fx::Rounding::kRoundNearest,
               fx::Overflow overflow = fx::Overflow::kSaturate);

  /// Push one input sample; true when an output is produced.
  bool push(std::int64_t in, std::int64_t& out);

  /// Process a block. Runs the batched kernel (contiguous window, linear
  /// dot products at the emit positions only); bit-identical to the
  /// equivalent push() sequence and freely mixable with it.
  std::vector<std::int64_t> process(std::span<const std::int64_t> in);

  /// Same kernel writing into a caller-owned vector; with reused capacity
  /// (and the member window scratch) the steady state allocates nothing.
  void process_into(std::span<const std::int64_t> in,
                    std::vector<std::int64_t>& out);

  void reset();

  const FixedTaps& taps() const { return taps_; }
  int decimation() const { return decimation_; }
  const fx::Format& input_format() const { return in_fmt_; }
  const fx::Format& output_format() const { return out_fmt_; }

 private:
  friend class FirDecimatorBank;  // lane-state export (see export_lane)

  FixedTaps taps_;
  int decimation_;
  fx::Format in_fmt_, out_fmt_;
  fx::Rounding rounding_;
  fx::Overflow overflow_;
  std::vector<std::int64_t> delay_;  ///< circular history
  std::vector<std::int64_t> ext_;    ///< block-kernel window scratch
  std::size_t pos_ = 0;
  int phase_ = 0;
  std::size_t filled_ = 0;
};

/// N-channel lockstep FIR/decimator bank over channel-interleaved frames
/// (element index = frame * channels + channel). Per-channel accumulation
/// order matches FirDecimator tap for tap, so each lane is bit-identical
/// to the scalar stage (outputs and fx event counters alike).
class FirDecimatorBank {
 public:
  /// Saturating output path only (what every chain stage uses).
  FirDecimatorBank(FixedTaps taps, int decimation, std::size_t channels,
                   fx::Format in_fmt, fx::Format out_fmt,
                   fx::Rounding rounding = fx::Rounding::kRoundNearest);

  /// `data.size()` must be a multiple of `channels`; input frames on
  /// entry, emitted (decimated) frames on return.
  void process_inplace(std::vector<std::int64_t>& data);

  void reset();

  /// Copy lane `lane`'s streaming state (delay line, write cursor,
  /// decimation phase) into a scalar stage built from the same taps and
  /// formats, so `dst` continues the lane's stream bit-exactly.
  void export_lane(std::size_t lane, FirDecimator& dst) const;

  std::size_t channels() const { return channels_; }
  const FixedTaps& taps() const { return taps_; }

 private:
  FixedTaps taps_;
  int decimation_;
  std::size_t channels_;
  fx::Format in_fmt_, out_fmt_;
  fx::Rounding rounding_;
  std::vector<std::int64_t> delay_;  ///< tap_count x channels rows, circular
  std::vector<std::int64_t> ext_;    ///< window scratch rows
  std::vector<std::int64_t> acc_;    ///< per-channel accumulator row
  std::size_t pos_ = 0;              ///< row index of the next write
  int phase_ = 0;
};

/// Polyphase decimate-by-2 FIR specialized for half-band taps: the odd
/// branch is a pure delay (center tap), so only the even branch multiplies.
/// Produces results bit-identical to FirDecimator over the same taps while
/// modeling the hardware the paper builds (half the MACs).
class PolyphaseHalfbandDecimator {
 public:
  /// `taps` must have half-band structure (length 4J-1).
  PolyphaseHalfbandDecimator(FixedTaps taps, fx::Format in_fmt,
                             fx::Format out_fmt);

  bool push(std::int64_t in, std::int64_t& out);
  std::vector<std::int64_t> process(std::span<const std::int64_t> in);
  void reset();

  /// Multiplications per output sample (the hardware saving vs direct).
  std::size_t macs_per_output() const;

 private:
  FixedTaps even_;                       ///< even-branch taps (nonzero half)
  std::int64_t center_ = 0;              ///< center tap value
  int frac_bits_ = 0;
  fx::Format in_fmt_, out_fmt_;
  std::vector<std::int64_t> even_hist_;  ///< even-phase history
  std::vector<std::int64_t> odd_hist_;   ///< odd-phase history (delay line)
  std::size_t epos_ = 0, opos_ = 0;
  int phase_ = 0;
};

}  // namespace dsadc::decim
