#include "src/decimator/src.h"

#include <cmath>
#include <stdexcept>

namespace dsadc::decim {

FarrowResampler::FarrowResampler(double ratio) : ratio_(ratio) {
  if (!(ratio > 0.0) || ratio > 4.0) {
    throw std::invalid_argument(
        "FarrowResampler: ratio must be in (0, 4]; decimate first for "
        "larger ratios");
  }
  hist_.assign(4, 0.0);
}

void FarrowResampler::reset() {
  hist_.assign(4, 0.0);
  phase_ = 0.0;
  consumed_ = 0;
}

double FarrowResampler::interpolate(double xm1, double x0, double x1,
                                    double x2, double mu) {
  // True cubic Lagrange through (-1, 0, 1, 2), evaluated at mu in [0, 1)
  // in Horner (Farrow) form; exact for any cubic polynomial.
  const double c0 = x0;
  const double c1 = -xm1 / 3.0 - x0 / 2.0 + x1 - x2 / 6.0;
  const double c2 = xm1 / 2.0 - x0 + x1 / 2.0;
  const double c3 = -xm1 / 6.0 + (x0 - x1) / 2.0 + x2 / 6.0;
  return ((c3 * mu + c2) * mu + c1) * mu + c0;
}

std::vector<double> FarrowResampler::process(std::span<const double> in) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(
                  static_cast<double>(in.size()) / ratio_) +
              4);
  for (double sample : in) {
    // Shift the 4-sample window: hist_ = x[n-3], x[n-2], x[n-1], x[n].
    hist_[0] = hist_[1];
    hist_[1] = hist_[2];
    hist_[2] = hist_[3];
    hist_[3] = sample;
    ++consumed_;
    if (consumed_ < 4) continue;
    // Emit every output whose interpolation instant falls in the interval
    // [n-2, n-1) of input time (centered in the window): instant =
    // (consumed_-3) + phase in units of input samples.
    while (phase_ < 1.0) {
      const double mu = phase_;  // in [0, 1): between hist_[1] and hist_[2]
      out.push_back(interpolate(hist_[0], hist_[1], hist_[2], hist_[3], mu));
      phase_ += ratio_;
    }
    phase_ -= 1.0;
  }
  return out;
}

std::vector<double> resample(std::span<const double> in, double rate_in,
                             double rate_out) {
  FarrowResampler src(rate_in / rate_out);
  return src.process(in);
}

}  // namespace dsadc::decim
