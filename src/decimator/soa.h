// Structure-of-arrays kernel support for the multi-channel bank stages.
//
// The bank classes in cic/fir/hbf/scaler run N independent channels in
// lockstep over channel-interleaved frames (element index = frame * C +
// channel), so the per-channel recurrences become independent lanes and
// the inner loops auto-vectorize. Bit-exactness against the scalar
// stages requires reproducing fx::requantize digit for digit; Requant
// precomputes the shift/round/clamp parameters once per call site and
// applies them inline, tallying round/saturate events locally so the
// per-event counter branches leave the inner loops. flush() adds the
// tallies to the same fx.<event>.<site> counters the scalar paths use,
// making counter totals identical for identical data.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "src/fixedpoint/fixed.h"
#include "src/obs/obs.h"

namespace dsadc::decim::soa {

/// Precomputed fx::requantize parameters for a fixed (src_frac, fmt,
/// rounding) call site with Overflow::kSaturate semantics.
struct Requant {
  int shift = 0;                ///< src_frac - fmt.frac
  std::int64_t round_add = 0;   ///< 2^(shift-1) for round-nearest, else 0
  std::uint64_t drop_mask = 0;  ///< low `shift` bits (round-event detect)
  std::int64_t lo = 0, hi = 0;  ///< saturation bounds
  const fx::EventCounters* site = nullptr;

  Requant() = default;
  Requant(int src_frac, const fx::Format& fmt, fx::Rounding rounding,
          const fx::EventCounters& counters)
      : shift(src_frac - fmt.frac),
        lo(fmt.raw_min()),
        hi(fmt.raw_max()),
        site(&counters) {
    // The scalar path special-cases |shift| >= 63; no stage format in this
    // codebase gets near it, so the banks simply refuse.
    if (shift >= 63 || shift <= -63) {
      throw std::invalid_argument("soa::Requant: shift out of range");
    }
    if (shift > 0) {
      drop_mask = (std::uint64_t{1} << shift) - 1;
      if (rounding == fx::Rounding::kRoundNearest) {
        round_add = std::int64_t{1} << (shift - 1);
      }
    }
  }
};

/// Per-pass event tallies, bulk-flushed to the site counters.
struct RequantTally {
  std::uint64_t rounds = 0;
  std::uint64_t saturates = 0;

  void flush(const Requant& rq) {
    if (obs::enabled() && rq.site != nullptr) {
      if (rounds != 0) rq.site->round->add(rounds);
      if (saturates != 0) rq.site->saturate->add(saturates);
    }
    rounds = 0;
    saturates = 0;
  }
};

/// Inline fx::requantize (saturating): identical result and identical
/// round/saturate event decisions as the scalar function.
inline std::int64_t requantize(std::int64_t v, const Requant& rq,
                               RequantTally& tally) {
  if (rq.shift > 0) {
    tally.rounds +=
        static_cast<std::uint64_t>((static_cast<std::uint64_t>(v) &
                                    rq.drop_mask) != 0);
    v = (v + rq.round_add) >> rq.shift;
  } else if (rq.shift < 0) {
    v = static_cast<std::int64_t>(static_cast<std::uint64_t>(v)
                                  << -rq.shift);
  }
  const std::int64_t c = v < rq.lo ? rq.lo : (v > rq.hi ? rq.hi : v);
  tally.saturates += static_cast<std::uint64_t>(c != v);
  return c;
}

/// Two's-complement wrap to `width` bits via mask + sign extension; equal
/// to fx::wrap_to for every input but expressed with unsigned ops so the
/// vectorizer can use plain add/and/xor/sub lanes.
struct Wrap {
  std::uint64_t mask = 0;
  std::uint64_t sign = 0;

  Wrap() = default;
  explicit Wrap(int width)
      : mask((std::uint64_t{1} << width) - 1),
        sign(std::uint64_t{1} << (width - 1)) {}

  std::int64_t operator()(std::int64_t v) const {
    const std::uint64_t u = static_cast<std::uint64_t>(v) & mask;
    return static_cast<std::int64_t>((u ^ sign) - sign);
  }
};

}  // namespace dsadc::decim::soa
