// The assembled decimation filter chain (Fig. 5 of the paper):
//
//   4-bit codes @ fs -> Sinc4(/2) -> Sinc4(/2) -> Sinc6(/2)
//                    -> Saramaki HBF(/2) -> Scaling -> FIR equalizer
//                    -> 14-bit samples @ fs/16
//
// All stages are bit-true fixed point. The chain also exposes per-stage
// intermediate outputs ("probes") so the benches and the power estimator
// can observe switching activity at every node, like the paper's
// PrimeTime-PX stimulus-driven estimation.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/decimator/cic.h"
#include "src/decimator/fir.h"
#include "src/decimator/hbf.h"
#include "src/decimator/scaler.h"
#include "src/filterdesign/saramaki.h"
#include "src/obs/store/format.h"

namespace dsadc::runtime {
class ChainBank;  // multichannel SoA form; may export lane state into a chain
}

namespace dsadc::decim {

/// Everything needed to instantiate the chain; produced by the design flow
/// in src/core (or hand-built for custom configurations).
struct ChainConfig {
  std::vector<design::CicSpec> cic_stages;   ///< e.g. Sinc4, Sinc4, Sinc6
  design::SaramakiHbf hbf;                   ///< designed halfband
  double scale = 1.0825 * 2.0 / 15.0;        ///< scaler constant (see below)
  std::vector<double> equalizer_taps;        ///< symmetric FIR at out rate
  int equalizer_frac_bits = 14;              ///< equalizer coeff precision
  int hbf_coeff_frac_bits = 24;              ///< the paper's 24-bit coeffs

  fx::Format input_format{4, 0};     ///< modulator codes
  /// The Sinc6 output is 18 bits; relabeling its 2^14 DC gain as
  /// fractional weight is lossless, so the HBF sees full precision.
  fx::Format hbf_in_format{18, 14};
  fx::Format hbf_out_format{18, 14};
  /// Intermediate format between scaler and equalizer: two extra LSBs so
  /// the output is rounded to 14 bits exactly once, at the equalizer.
  fx::Format scaler_out_format{18, 15};
  fx::Format output_format{14, 13};  ///< 14-bit ADC output, +-1 range

  double input_rate_hz = 640e6;
};

/// Signal statistics over one block at a stage boundary, in raw LSB units
/// of that stage's register format.
struct SignalStats {
  std::int64_t min_raw = 0;
  std::int64_t max_raw = 0;
  double rms_raw = 0.0;        ///< sqrt(mean(raw^2))
  /// Unused MSBs at the observed peak: (width - 1) - bits(peak). The
  /// margin Hogenauer's Bmax rule leaves; 0 means the register was fully
  /// exercised, negative values cannot occur for in-range samples.
  int peak_headroom_bits = 0;
};

/// Compute SignalStats for raw samples carried in a `width_bits` register.
SignalStats signal_stats(std::span<const std::int64_t> samples,
                         int width_bits);

/// Per-stage probe record for one processed block.
struct StageProbe {
  std::string name;
  double rate_hz = 0.0;          ///< clock rate of this stage's output
  int width_bits = 0;            ///< register width at this stage
  std::vector<std::int64_t> samples;
  SignalStats stats;             ///< boundary statistics for this block
};

class DecimationChain {
 public:
  explicit DecimationChain(ChainConfig config);

  /// Process a block of modulator codes; returns 14-bit output samples
  /// (raw integers in output_format). When `probes` is non-null, the
  /// intermediate signal at every stage boundary is recorded.
  std::vector<std::int64_t> process(std::span<const std::int32_t> codes,
                                    std::vector<StageProbe>* probes = nullptr);

  /// Output samples as real values in [-1, 1).
  std::vector<double> process_to_real(std::span<const std::int32_t> codes);

  void reset();

  const ChainConfig& config() const { return config_; }
  std::size_t total_decimation() const;
  double output_rate_hz() const;
  /// Total pipeline latency in input samples (sum of group delays).
  std::size_t group_delay_input_samples() const;

 private:
  /// ChainBank::export_lane deposits a bank lane's streaming state into the
  /// scalar stages so a chain can continue the lane's stream bit-exactly.
  friend class runtime::ChainBank;

  /// Record one stage boundary: probe capture (when requested) plus, while
  /// observability is on, chain.<metric>.<stage> gauges/counters in the
  /// metrics registry, and, while the trace store is open, one kStage
  /// event spanning [*stage_start_us, now] (the cursor is then advanced to
  /// now, so consecutive boundaries partition the block's wall time).
  /// Probe slot `idx` is overwritten in place when the caller reuses a
  /// probes vector across blocks, so steady-state probing reuses the
  /// sample buffers instead of reallocating them.
  void record_stage(const char* name, double rate_hz, int width_bits,
                    const std::vector<std::int64_t>& samples,
                    std::vector<StageProbe>* probes, std::size_t idx,
                    std::int64_t* stage_start_us);

  ChainConfig config_;
  CicCascade cic_;
  SaramakiHbfDecimator hbf_;
  ScalingStage scaler_;
  FirDecimator equalizer_;
  int cic_gain_log2_;  ///< log2 of the CIC cascade DC gain (a pure shift)
  /// Inter-stage scratch, reused across process() calls: once capacities
  /// have grown to the block size the steady state allocates nothing but
  /// the returned output vector.
  std::vector<std::int64_t> buf_;
  std::vector<std::int64_t> hbuf_;
  /// Per-stage sinc names ("sinc4_1", ...), built once at construction so
  /// process() never allocates stage-name strings.
  std::vector<std::string> sinc_names_;
  /// Interned trace-store name id per probe slot (stage names are fixed
  /// for a chain instance, so the first block pays the intern and the
  /// steady state is id lookups only).
  std::vector<std::uint32_t> stage_ids_;
  /// Stage events for the current block, emitted as one batch at the end
  /// of process() (one staging-lock acquisition instead of one per stage).
  std::vector<obs::store::Event> stage_batch_;
  /// Blocks processed; stage events are recorded for one block in
  /// DSADC_STORE_STAGE_SAMPLE (default 8) to bound steady-state overhead.
  std::uint64_t stage_seq_ = 0;
};

/// The paper's chain, fully designed with default parameters: Sinc4/Sinc4/
/// Sinc6, Saramaki HBF (n1=3, n2=6, fp=0.2125, 24-bit CSD), scaling for
/// MSA=0.81, and a 65-tap inverse-droop equalizer.
ChainConfig paper_chain_config();

}  // namespace dsadc::decim
