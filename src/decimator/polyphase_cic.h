// Non-recursive (polyphase FIR) realization of the Sinc^K decimator.
//
// Section IV notes that comb decimators "can be implemented in a number of
// ways by employing polyphase structures [6], [7]". For M = 2 the Sinc^K
// transfer function is (1 + z^-1)^K / 2^K: a (K+1)-tap binomial FIR whose
// polyphase decomposition runs entirely at the *output* rate with plain
// (non-wrapping) arithmetic - the classic alternative to the Hogenauer
// structure. This module provides the bit-true implementation and the
// hardware-cost comparison the ablation bench reports.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/filterdesign/cic.h"
#include "src/fixedpoint/fixed.h"

namespace dsadc::decim {

/// Binomial coefficients of (1 + z^-1)^K.
std::vector<std::int64_t> binomial_taps(int order);

/// Bit-true polyphase Sinc^K decimate-by-2 stage. Produces the same
/// output stream as CicDecimator (same gain 2^K, same output phase).
class PolyphaseCicDecimator {
 public:
  explicit PolyphaseCicDecimator(design::CicSpec spec);

  bool push(std::int64_t in, std::int64_t& out);
  std::vector<std::int64_t> process(std::span<const std::int64_t> in);
  void reset();

  const design::CicSpec& spec() const { return spec_; }
  /// Adders in the polyphase network (all at the output rate).
  std::size_t adder_count() const;
  /// Registers in the two polyphase delay lines.
  std::size_t register_count() const;

 private:
  design::CicSpec spec_;
  std::vector<std::int64_t> taps_;        ///< binomial, length K+1
  std::vector<std::int64_t> even_hist_;   ///< even-phase delay line
  std::vector<std::int64_t> odd_hist_;    ///< odd-phase delay line
  std::size_t epos_ = 0, opos_ = 0;
  int phase_ = 0;
};

}  // namespace dsadc::decim
