// Runtime-dispatched SIMD tiers for the SoA bank kernels.
//
// The bank stages' hot loops (cic/fir/hbf/scaler channel rows, the
// runtime's renorm pass) are plain int64 lane loops that auto-vectorize
// well -- but only as wide as the translation unit's target allows.
// Instead of the old compile-time DSADC_ENABLE_AVX2 opt-in, the loop
// bodies live once in bank_kernels_impl.h and are compiled three times
// with different target flags (scalar baseline, -mavx2, -mavx512*); this
// header's dispatcher picks the widest tier the running CPU supports via
// CPUID, once, at first use.
//
// Bit-exactness across tiers is structural: every kernel is the same
// source and does exact integer arithmetic with one independent
// accumulator chain per channel lane (taps iterate in the outer loop, so
// vectorizing the channel loop never reorders a chain), and the tally
// reductions are plain integer sums. tests/test_simd_dispatch.cpp pins
// each supported tier and asserts identical outputs and counter totals.
//
// Environment:
//   DSADC_SIMD   scalar | avx2 | avx512 -- cap the selected tier (the
//                escape hatch replacing DSADC_ENABLE_AVX2=OFF). Unknown
//                values and tiers the CPU lacks fall back to the widest
//                supported tier at or below the request.
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/decimator/soa.h"
#include "src/fixedpoint/csd.h"

namespace dsadc::decim::simd {

enum class Tier : int {
  kScalar = 0,  ///< baseline target flags (always available)
  kAvx2 = 1,    ///< -mavx2 (256-bit lanes; 64-bit mul emulated)
  kAvx512 = 2,  ///< -mavx512f/dq/vl (512-bit lanes, native vpmullq/vpsraq)
};

/// One table of bank-kernel entry points per tier. All kernels operate on
/// channel-interleaved frames (element index = frame * C + channel) and
/// are bit-identical across tiers by construction.
struct BankKernels {
  /// One fused CIC stage: the full integrator cascade at the input rate,
  /// decimation, and the comb cascade at the output rate in a single pass
  /// over `data` (one read of every input row, one write per kept row,
  /// instead of 2*order full-buffer passes). `integ`/`comb` hold order*C
  /// state rows; `skip` is the first kept frame index. Per frame the
  /// sections run in cascade order -- exactly the scalar push() sequence,
  /// so the fusion is bit-identical to section-wise passes. Returns the
  /// output frame count.
  std::size_t (*cic_stage)(std::int64_t* data, std::size_t frames,
                           std::size_t C, std::int64_t* integ,
                           std::int64_t* comb, std::size_t order,
                           std::size_t skip, std::size_t decim,
                           soa::Wrap wrap);
  /// FIR emit loop over the extended window buffer; writes requantized
  /// output rows to the front of `data` and returns the row count. `acc`
  /// is a caller-owned C-wide scratch row.
  std::size_t (*fir_emit)(std::int64_t* data, const std::int64_t* ext,
                          std::size_t frames, std::size_t C,
                          const std::int64_t* taps, std::size_t tap_count,
                          std::size_t first, std::size_t decim,
                          std::int64_t* acc, const soa::Requant& rq,
                          soa::RequantTally& tally);
  /// Saramaki G2 block pass over `frames` rows of the extended buffer
  /// (`ext` holds 2*n2 history rows then the stream rows); writes the
  /// internal-format result rows into `stream`.
  void (*hbf_g2)(std::int64_t* stream, const std::int64_t* ext,
                 std::size_t frames, std::size_t C, const std::int64_t* f2,
                 std::size_t n2, const soa::Requant& rq_prod,
                 const soa::Requant& rq_int, soa::RequantTally& t_prod,
                 soa::RequantTally& t_int);
  /// Halfband output combination: 0.5-path product + n1 branch products,
  /// each product requantized, then the output requantize per row.
  void (*hbf_out)(std::int64_t* data, const std::int64_t* half_path,
                  const std::int64_t* const* branches, std::size_t n1,
                  std::int64_t half_coeff, const std::int64_t* f1,
                  std::size_t out_frames, std::size_t C,
                  const soa::Requant& rq_prod, const soa::Requant& rq_out,
                  soa::RequantTally& t_prod, soa::RequantTally& t_out);
  /// CSD Horner scaling over `count` independent samples.
  void (*scaler_map)(std::int64_t* data, std::size_t count,
                     const fx::CsdDigit* digits, std::size_t n_digits,
                     int frac_bits, const soa::Requant& rq,
                     soa::RequantTally& tally);
  /// Element-wise requantize (the runtime renorm / hbf input promote).
  void (*requant_rows)(std::int64_t* data, std::size_t count,
                       const soa::Requant& rq, soa::RequantTally& tally);
};

/// The active tier's kernel table (detects on first use; lock-free after).
const BankKernels& kernels();

/// Tier currently in effect.
Tier active_tier();
/// Widest tier this binary + CPU can run.
Tier best_tier();
/// Compiled in AND supported by the running CPU.
bool tier_supported(Tier tier);
/// Force a tier (tests/benches); returns false and leaves the active tier
/// unchanged if the tier is unsupported.
bool set_active_tier(Tier tier);
/// "scalar" / "avx2" / "avx512".
const char* tier_name(Tier tier);

}  // namespace dsadc::decim::simd
