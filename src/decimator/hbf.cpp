#include "src/decimator/hbf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/decimator/simd.h"
#include "src/decimator/soa.h"

namespace dsadc::decim {

namespace hbf_detail {

HbfParams make_hbf_params(const design::SaramakiHbf& design, fx::Format in_fmt,
                          fx::Format out_fmt, int coeff_frac_bits,
                          int guard_frac_bits) {
  HbfParams p;
  p.coeff_frac = coeff_frac_bits;
  p.n1 = design.n1;
  p.n2 = design.n2;
  p.d2 = 2 * design.n2 - 1;
  p.big_d = (2 * design.n1 - 1) * p.d2;
  p.in_fmt = in_fmt;
  p.out_fmt = out_fmt;
  p.internal_fmt = fx::Format{in_fmt.width + 4 + guard_frac_bits,
                              in_fmt.frac + guard_frac_bits};
  p.prod_fmt = fx::Format{in_fmt.width + 7 + guard_frac_bits,
                          in_fmt.frac + guard_frac_bits + 2};
  if (design.f1.empty() || design.f2.empty()) {
    throw std::invalid_argument("SaramakiHbfDecimator: empty design");
  }
  if (p.internal_fmt.width > 62) {
    throw std::invalid_argument("SaramakiHbfDecimator: internal width > 62");
  }
  const double scale = std::ldexp(1.0, p.coeff_frac);
  // Use the CSD-quantized coefficient values from the design: the datapath
  // must be bit-consistent with the shift-add network the RTL builds.
  for (const auto& c : design.f2_csd) {
    p.f2_coeffs.push_back(
        static_cast<std::int64_t>(std::nearbyint(c.to_double() * scale)));
  }
  for (const auto& c : design.f1_csd) {
    p.f1_coeffs.push_back(
        static_cast<std::int64_t>(std::nearbyint(c.to_double() * scale)));
  }
  p.half_coeff = static_cast<std::int64_t>(std::nearbyint(0.5 * scale));
  return p;
}

}  // namespace hbf_detail

SaramakiHbfDecimator::SaramakiHbfDecimator(const design::SaramakiHbf& design,
                                           fx::Format in_fmt,
                                           fx::Format out_fmt,
                                           int coeff_frac_bits,
                                           int guard_frac_bits)
    : p_(hbf_detail::make_hbf_params(design, in_fmt, out_fmt, coeff_frac_bits,
                                     guard_frac_bits)) {
  blocks_.resize(2 * p_.n1 - 1);
  for (auto& b : blocks_) b.hist.assign(2 * p_.n2, 0);
  odd_delay_.assign((p_.big_d + 1) / 2, 0);
  branch_delay_.resize(p_.n1 - 1);
  bpos_.assign(p_.n1 - 1, 0);
  for (std::size_t i = 1; i < p_.n1; ++i) {
    // A circular line of length L realizes a delay of exactly L samples
    // with the read-before-write access in push().
    branch_delay_[i - 1].assign((p_.big_d - (2 * i - 1) * p_.d2) / 2, 0);
  }
  branch_scratch_.resize(p_.n1);
}

void SaramakiHbfDecimator::reset() {
  for (auto& b : blocks_) {
    std::fill(b.hist.begin(), b.hist.end(), 0);
    b.pos = 0;
  }
  std::fill(odd_delay_.begin(), odd_delay_.end(), 0);
  for (auto& d : branch_delay_) std::fill(d.begin(), d.end(), 0);
  std::fill(bpos_.begin(), bpos_.end(), 0);
  opos_ = 0;
  phase_ = 0;
}

std::size_t SaramakiHbfDecimator::macs_per_output() const {
  return (2 * p_.n1 - 1) * p_.n2 + p_.n1;  // G2 taps + outer taps
}

std::int64_t SaramakiHbfDecimator::G2Block::step(
    std::int64_t in, const std::vector<std::int64_t>& coeffs,
    const SaramakiHbfDecimator& owner) {
  hist[pos] = in;
  const std::size_t n = hist.size();  // 2*n2
  const std::size_t newest = pos;
  pos = (pos + 1) % n;
  // Symmetric even-length FIR: tap k pairs with tap (2*n2 - 1 - k); the
  // coefficient index is j - 1 with 2j - 1 = |2k - (2*n2 - 1)|.
  std::int64_t acc = 0;
  const std::size_t n2 = coeffs.size();
  for (std::size_t j = 1; j <= n2; ++j) {
    const std::size_t k_near = n2 - j;      // |2k - (2n2-1)| = 2j-1
    const std::size_t k_far = n2 + j - 1;
    const std::int64_t a = hist[(newest + n - k_near) % n];
    const std::int64_t b = hist[(newest + n - k_far) % n];
    acc += owner.requantize_product(coeffs[j - 1] * (a + b));
  }
  return acc;
}

std::int64_t SaramakiHbfDecimator::requantize_product(std::int64_t prod) const {
  // The power-optimized datapath drops product LSBs below a small guard
  // immediately after each CSD multiplier (frac: internal + coeff ->
  // product format), keeping the adder tree narrow.
  static const fx::EventCounters& ec = fx::event_counters("hbf_product");
  return fx::requantize(prod, p_.internal_fmt.frac + p_.coeff_frac, p_.prod_fmt,
                        fx::Rounding::kTruncate, fx::Overflow::kSaturate, &ec);
}

std::int64_t SaramakiHbfDecimator::requantize_internal(std::int64_t acc) const {
  // acc carries the product-format frac; bring back to internal.
  static const fx::EventCounters& ec = fx::event_counters("hbf_internal");
  return fx::requantize(acc, p_.prod_fmt.frac, p_.internal_fmt,
                        fx::Rounding::kRoundNearest, fx::Overflow::kSaturate,
                        &ec);
}

bool SaramakiHbfDecimator::push(std::int64_t in, std::int64_t& out) {
  // Promote the input into the internal guard format.
  static const fx::EventCounters& ec_in = fx::event_counters("hbf_in");
  const std::int64_t x =
      fx::requantize(in, p_.in_fmt.frac, p_.internal_fmt,
                     fx::Rounding::kTruncate, fx::Overflow::kSaturate, &ec_in);
  if (phase_ == 1) {
    // Odd-phase sample: enqueue into the 0.5-path delay line.
    odd_delay_[opos_] = x;
    opos_ = (opos_ + 1) % odd_delay_.size();
    phase_ = 0;
    return false;
  }
  phase_ = 1;

  // Even-phase sample: drive the G2 cascade (all at the output rate).
  std::vector<std::int64_t> odd_outputs(p_.n1, 0);
  std::int64_t cur = x;
  for (std::size_t k = 0; k < blocks_.size(); ++k) {
    cur = requantize_internal(blocks_[k].step(cur, p_.f2_coeffs, *this));
    if (k % 2 == 0) odd_outputs[k / 2] = cur;  // w_{k+1}, k+1 odd
  }
  // Branch alignment.
  std::vector<std::int64_t> aligned(p_.n1, 0);
  for (std::size_t i = 1; i < p_.n1; ++i) {
    auto& line = branch_delay_[i - 1];
    auto& p = bpos_[i - 1];
    const std::int64_t delayed = line[p];
    line[p] = odd_outputs[i - 1];
    p = (p + 1) % line.size();
    aligned[i - 1] = delayed;
  }
  aligned[p_.n1 - 1] = odd_outputs[p_.n1 - 1];

  // Output: 0.5 * x_odd[m - (D+1)/2] + sum_i f1_i w_i.
  const std::int64_t xd = odd_delay_[opos_];  // oldest = (D+1)/2 pushes ago
  std::int64_t acc = requantize_product(p_.half_coeff * xd);
  for (std::size_t i = 0; i < p_.n1; ++i) {
    acc += requantize_product(p_.f1_coeffs[i] * aligned[i]);
  }
  static const fx::EventCounters& ec_out = fx::event_counters("hbf_out");
  out = fx::requantize(acc, p_.prod_fmt.frac, p_.out_fmt,
                       fx::Rounding::kRoundNearest, fx::Overflow::kSaturate,
                       &ec_out);
  return true;
}

void SaramakiHbfDecimator::g2_block_pass(G2Block& b,
                                         std::vector<std::int64_t>& stream) {
  // Vector form of G2Block::step over a whole even-phase stream: the
  // circular history plus the incoming block become one contiguous
  // buffer, so every output is a linear symmetric MAC. Tap order and the
  // per-product requantization match step() exactly, so the pass is
  // bit-identical to sample-at-a-time stepping.
  const std::size_t n = b.hist.size();  // 2*n2
  g2_ext_.resize(n + stream.size());
  for (std::size_t j = 0; j < n; ++j) g2_ext_[j] = b.hist[(b.pos + j) % n];
  std::copy(stream.begin(), stream.end(), g2_ext_.begin() + n);

  const std::size_t n2 = p_.f2_coeffs.size();
  for (std::size_t m = 0; m < stream.size(); ++m) {
    const std::int64_t* newest = g2_ext_.data() + n + m;
    std::int64_t acc = 0;
    for (std::size_t j = 1; j <= n2; ++j) {
      const std::int64_t near = newest[-static_cast<std::ptrdiff_t>(n2 - j)];
      const std::int64_t far =
          newest[-static_cast<std::ptrdiff_t>(n2 + j - 1)];
      acc += requantize_product(p_.f2_coeffs[j - 1] * (near + far));
    }
    stream[m] = requantize_internal(acc);
  }

  // Streaming state write-back: the history holds the block's last 2*n2
  // input samples, with pos advanced as step() would have left it.
  const std::size_t advanced = (b.pos + stream.size()) % n;
  for (std::size_t j = 0; j < n; ++j) {
    b.hist[(advanced + j) % n] = g2_ext_[stream.size() + j];
  }
  b.pos = advanced;
}

std::vector<std::int64_t> SaramakiHbfDecimator::process(
    std::span<const std::int64_t> in) {
  std::vector<std::int64_t> out;
  process_into(in, out);
  return out;
}

void SaramakiHbfDecimator::process_into(std::span<const std::int64_t> in,
                                        std::vector<std::int64_t>& out) {
  // Batched polyphase kernel. push() interleaves the two phases sample by
  // sample; here the block is split once and every branch runs as a
  // vector pass at the output rate:
  //   A. promote + phase split, harvesting the 0.5-path (odd) stream
  //      through its delay line in push order;
  //   B. the G2 cascade, one g2_block_pass per block;
  //   C. branch-alignment delay lines, one pass per branch;
  //   D. the f1 output combination.
  // Every sample sees the identical operations in the identical order as
  // push(), so outputs, state, and fx event-counter totals all match.

  // --- A: promote into the guard format and split phases.
  static const fx::EventCounters& ec_in = fx::event_counters("hbf_in");
  std::vector<std::int64_t>& even = even_scratch_;
  std::vector<std::int64_t>& half_path = half_scratch_;
  even.clear();
  half_path.clear();
  even.reserve(in.size() / 2 + 1);
  half_path.reserve(in.size() / 2 + 1);
  for (const std::int64_t s : in) {
    const std::int64_t x =
        fx::requantize(s, p_.in_fmt.frac, p_.internal_fmt,
                       fx::Rounding::kTruncate, fx::Overflow::kSaturate,
                       &ec_in);
    if (phase_ == 1) {
      odd_delay_[opos_] = x;
      opos_ = (opos_ + 1) % odd_delay_.size();
      phase_ = 0;
    } else {
      // The read of the delay line happens before the paired odd sample's
      // write, exactly as in the push() interleave.
      half_path.push_back(odd_delay_[opos_]);
      even.push_back(x);
      phase_ = 1;
    }
  }

  // --- B: G2 cascade; odd cascade outputs w1, w3, ... feed the branches.
  std::vector<std::int64_t>& cur = even;
  for (std::size_t k = 0; k < blocks_.size(); ++k) {
    g2_block_pass(blocks_[k], cur);
    if (k % 2 == 0) {
      branch_scratch_[k / 2].assign(cur.begin(), cur.end());
    }
  }

  // --- C: align each branch (all but the last) through its delay line.
  for (std::size_t i = 1; i < p_.n1; ++i) {
    auto& line = branch_delay_[i - 1];
    auto& p = bpos_[i - 1];
    for (auto& w : branch_scratch_[i - 1]) {
      const std::int64_t delayed = line[p];
      line[p] = w;
      p = (p + 1) % line.size();
      w = delayed;
    }
  }

  // --- D: 0.5 path + f1 taps in the power basis.
  static const fx::EventCounters& ec_out = fx::event_counters("hbf_out");
  out.resize(half_path.size());
  for (std::size_t m = 0; m < out.size(); ++m) {
    std::int64_t acc = requantize_product(p_.half_coeff * half_path[m]);
    for (std::size_t i = 0; i < p_.n1; ++i) {
      acc += requantize_product(p_.f1_coeffs[i] * branch_scratch_[i][m]);
    }
    out[m] = fx::requantize(acc, p_.prod_fmt.frac, p_.out_fmt,
                            fx::Rounding::kRoundNearest,
                            fx::Overflow::kSaturate, &ec_out);
  }
}

SaramakiHbfBank::SaramakiHbfBank(const design::SaramakiHbf& design,
                                 std::size_t channels, fx::Format in_fmt,
                                 fx::Format out_fmt, int coeff_frac_bits,
                                 int guard_frac_bits)
    : p_(hbf_detail::make_hbf_params(design, in_fmt, out_fmt, coeff_frac_bits,
                                     guard_frac_bits)),
      channels_(channels) {
  if (channels_ == 0) {
    throw std::invalid_argument("SaramakiHbfBank: channels >= 1");
  }
  block_hist_.resize(2 * p_.n1 - 1);
  block_pos_.assign(block_hist_.size(), 0);
  for (auto& h : block_hist_) h.assign(2 * p_.n2 * channels_, 0);
  odd_delay_.assign(((p_.big_d + 1) / 2) * channels_, 0);
  branch_delay_.resize(p_.n1 - 1);
  bpos_.assign(p_.n1 - 1, 0);
  for (std::size_t i = 1; i < p_.n1; ++i) {
    branch_delay_[i - 1].assign(((p_.big_d - (2 * i - 1) * p_.d2) / 2) *
                                    channels_,
                                0);
  }
  branch_scratch_.resize(p_.n1);
}

void SaramakiHbfBank::reset() {
  for (auto& h : block_hist_) std::fill(h.begin(), h.end(), 0);
  std::fill(block_pos_.begin(), block_pos_.end(), 0);
  std::fill(odd_delay_.begin(), odd_delay_.end(), 0);
  for (auto& d : branch_delay_) std::fill(d.begin(), d.end(), 0);
  std::fill(bpos_.begin(), bpos_.end(), 0);
  opos_ = 0;
  phase_ = 0;
}

void SaramakiHbfBank::export_lane(std::size_t lane,
                                  SaramakiHbfDecimator& dst) const {
  if (lane >= channels_) {
    throw std::invalid_argument("SaramakiHbfBank: export lane out of range");
  }
  if (dst.p_.n1 != p_.n1 || dst.p_.n2 != p_.n2 || dst.p_.big_d != p_.big_d ||
      dst.p_.coeff_frac != p_.coeff_frac ||
      dst.p_.f2_coeffs != p_.f2_coeffs || dst.p_.f1_coeffs != p_.f1_coeffs) {
    throw std::invalid_argument("SaramakiHbfBank: export design mismatch");
  }
  // Bank row r of every delay structure holds what the scalar stage stores
  // at element r; all cursors (block_pos_, opos_, bpos_, phase_) are shared
  // across lanes, so the export is a strided copy plus the cursor values.
  const std::size_t C = channels_;
  for (std::size_t k = 0; k < block_hist_.size(); ++k) {
    auto& blk = dst.blocks_[k];
    const std::size_t rows = blk.hist.size();
    for (std::size_t r = 0; r < rows; ++r) {
      blk.hist[r] = block_hist_[k][r * C + lane];
    }
    blk.pos = block_pos_[k];
  }
  const std::size_t odd_rows = odd_delay_.size() / C;
  for (std::size_t r = 0; r < odd_rows; ++r) {
    dst.odd_delay_[r] = odd_delay_[r * C + lane];
  }
  dst.opos_ = opos_;
  for (std::size_t i = 0; i < branch_delay_.size(); ++i) {
    const std::size_t rows = branch_delay_[i].size() / C;
    for (std::size_t r = 0; r < rows; ++r) {
      dst.branch_delay_[i][r] = branch_delay_[i][r * C + lane];
    }
    dst.bpos_[i] = bpos_[i];
  }
  dst.phase_ = phase_;
}

void SaramakiHbfBank::g2_bank_pass(std::size_t block,
                                   std::vector<std::int64_t>& stream) {
  // g2_block_pass with every sample widened to a row of C channels. The
  // per-product requantize runs inline per lane in the scalar tap order,
  // with events tallied in bulk.
  const std::size_t C = channels_;
  const std::size_t n = 2 * p_.n2;  // history rows
  std::vector<std::int64_t>& hist = block_hist_[block];
  std::size_t& pos = block_pos_[block];
  const std::size_t frames = stream.size() / C;

  g2_ext_.resize((n + frames) * C);
  for (std::size_t j = 0; j < n; ++j) {
    std::copy_n(hist.data() + ((pos + j) % n) * C, C, g2_ext_.data() + j * C);
  }
  std::copy_n(stream.data(), frames * C, g2_ext_.data() + n * C);

  static const fx::EventCounters& ec_prod = fx::event_counters("hbf_product");
  static const fx::EventCounters& ec_int = fx::event_counters("hbf_internal");
  const soa::Requant rq_prod(p_.internal_fmt.frac + p_.coeff_frac, p_.prod_fmt,
                             fx::Rounding::kTruncate, ec_prod);
  const soa::Requant rq_int(p_.prod_fmt.frac, p_.internal_fmt,
                            fx::Rounding::kRoundNearest, ec_int);
  soa::RequantTally t_prod, t_int;

  simd::kernels().hbf_g2(stream.data(), g2_ext_.data(), frames, C,
                         p_.f2_coeffs.data(), p_.f2_coeffs.size(), rq_prod,
                         rq_int, t_prod, t_int);
  t_prod.flush(rq_prod);
  t_int.flush(rq_int);

  // Streaming state write-back, row-wise.
  const std::size_t advanced = (pos + frames) % n;
  for (std::size_t j = 0; j < n; ++j) {
    std::copy_n(g2_ext_.data() + (frames + j) * C, C,
                hist.data() + ((advanced + j) % n) * C);
  }
  pos = advanced;
}

void SaramakiHbfBank::process_inplace(std::vector<std::int64_t>& data) {
  const std::size_t C = channels_;
  if (data.size() % C != 0) {
    throw std::invalid_argument(
        "SaramakiHbfBank: data size not a multiple of channels");
  }
  const std::size_t frames = data.size() / C;

  // --- A: promote into the guard format, then split phase rows through
  // the 0.5-path delay line in push order.
  static const fx::EventCounters& ec_in = fx::event_counters("hbf_in");
  const soa::Requant rq_in(p_.in_fmt.frac, p_.internal_fmt,
                           fx::Rounding::kTruncate, ec_in);
  soa::RequantTally t_in;
  simd::kernels().requant_rows(data.data(), data.size(), rq_in, t_in);
  t_in.flush(rq_in);

  even_scratch_.clear();
  half_scratch_.clear();
  even_scratch_.reserve((frames / 2 + 1) * C);
  half_scratch_.reserve((frames / 2 + 1) * C);
  const std::size_t odd_rows = odd_delay_.size() / C;
  for (std::size_t f = 0; f < frames; ++f) {
    const std::int64_t* const row = data.data() + f * C;
    if (phase_ == 1) {
      std::copy_n(row, C, odd_delay_.data() + opos_ * C);
      opos_ = (opos_ + 1) % odd_rows;
      phase_ = 0;
    } else {
      // Delay-line read precedes the paired odd row's write, as in push().
      half_scratch_.insert(half_scratch_.end(),
                           odd_delay_.data() + opos_ * C,
                           odd_delay_.data() + (opos_ + 1) * C);
      even_scratch_.insert(even_scratch_.end(), row, row + C);
      phase_ = 1;
    }
  }

  // --- B: G2 cascade over even rows.
  std::vector<std::int64_t>& cur = even_scratch_;
  for (std::size_t k = 0; k < block_hist_.size(); ++k) {
    g2_bank_pass(k, cur);
    if (k % 2 == 0) {
      branch_scratch_[k / 2].assign(cur.begin(), cur.end());
    }
  }

  // --- C: branch-alignment delay lines, row-wise swaps.
  const std::size_t out_frames = half_scratch_.size() / C;
  for (std::size_t i = 1; i < p_.n1; ++i) {
    auto& line = branch_delay_[i - 1];
    auto& p = bpos_[i - 1];
    const std::size_t rows = line.size() / C;
    auto& w = branch_scratch_[i - 1];
    for (std::size_t m = 0; m < out_frames; ++m) {
      std::swap_ranges(w.data() + m * C, w.data() + (m + 1) * C,
                       line.data() + p * C);
      p = (p + 1) % rows;
    }
  }

  // --- D: 0.5 path + f1 taps; output rows overwrite `data`.
  static const fx::EventCounters& ec_out = fx::event_counters("hbf_out");
  const soa::Requant rq_prod(p_.internal_fmt.frac + p_.coeff_frac, p_.prod_fmt,
                             fx::Rounding::kTruncate,
                             fx::event_counters("hbf_product"));
  const soa::Requant rq_out(p_.prod_fmt.frac, p_.out_fmt,
                            fx::Rounding::kRoundNearest, ec_out);
  soa::RequantTally t_prod, t_out;
  data.resize(out_frames * C);
  branch_rows_.clear();
  for (const auto& b : branch_scratch_) branch_rows_.push_back(b.data());
  simd::kernels().hbf_out(data.data(), half_scratch_.data(),
                          branch_rows_.data(), p_.n1, p_.half_coeff,
                          p_.f1_coeffs.data(), out_frames, C, rq_prod, rq_out,
                          t_prod, t_out);
  t_prod.flush(rq_prod);
  t_out.flush(rq_out);
}

}  // namespace dsadc::decim
