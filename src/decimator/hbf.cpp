#include "src/decimator/hbf.h"

#include <cmath>
#include <stdexcept>

namespace dsadc::decim {

SaramakiHbfDecimator::SaramakiHbfDecimator(const design::SaramakiHbf& design,
                                           fx::Format in_fmt,
                                           fx::Format out_fmt,
                                           int coeff_frac_bits,
                                           int guard_frac_bits)
    : coeff_frac_(coeff_frac_bits),
      n1_(design.n1),
      n2_(design.n2),
      d2_(2 * design.n2 - 1),
      big_d_((2 * design.n1 - 1) * d2_),
      in_fmt_(in_fmt),
      out_fmt_(out_fmt),
      internal_fmt_{in_fmt.width + 4 + guard_frac_bits,
                    in_fmt.frac + guard_frac_bits},
      prod_fmt_{in_fmt.width + 7 + guard_frac_bits,
                in_fmt.frac + guard_frac_bits + 2} {
  if (design.f1.empty() || design.f2.empty()) {
    throw std::invalid_argument("SaramakiHbfDecimator: empty design");
  }
  if (internal_fmt_.width > 62) {
    throw std::invalid_argument("SaramakiHbfDecimator: internal width > 62");
  }
  const double scale = std::ldexp(1.0, coeff_frac_);
  // Use the CSD-quantized coefficient values from the design: the datapath
  // must be bit-consistent with the shift-add network the RTL builds.
  for (const auto& c : design.f2_csd) {
    f2_coeffs_.push_back(
        static_cast<std::int64_t>(std::nearbyint(c.to_double() * scale)));
  }
  for (const auto& c : design.f1_csd) {
    f1_coeffs_.push_back(
        static_cast<std::int64_t>(std::nearbyint(c.to_double() * scale)));
  }
  half_coeff_ = static_cast<std::int64_t>(std::nearbyint(0.5 * scale));

  blocks_.resize(2 * n1_ - 1);
  for (auto& b : blocks_) b.hist.assign(2 * n2_, 0);
  odd_delay_.assign((big_d_ + 1) / 2, 0);
  branch_delay_.resize(n1_ - 1);
  bpos_.assign(n1_ - 1, 0);
  for (std::size_t i = 1; i < n1_; ++i) {
    // A circular line of length L realizes a delay of exactly L samples
    // with the read-before-write access in push().
    branch_delay_[i - 1].assign((big_d_ - (2 * i - 1) * d2_) / 2, 0);
  }
}

void SaramakiHbfDecimator::reset() {
  for (auto& b : blocks_) {
    std::fill(b.hist.begin(), b.hist.end(), 0);
    b.pos = 0;
  }
  std::fill(odd_delay_.begin(), odd_delay_.end(), 0);
  for (auto& d : branch_delay_) std::fill(d.begin(), d.end(), 0);
  std::fill(bpos_.begin(), bpos_.end(), 0);
  opos_ = 0;
  phase_ = 0;
}

std::size_t SaramakiHbfDecimator::macs_per_output() const {
  return (2 * n1_ - 1) * n2_ + n1_;  // G2 taps + outer taps
}

std::int64_t SaramakiHbfDecimator::G2Block::step(
    std::int64_t in, const std::vector<std::int64_t>& coeffs,
    const SaramakiHbfDecimator& owner) {
  hist[pos] = in;
  const std::size_t n = hist.size();  // 2*n2
  const std::size_t newest = pos;
  pos = (pos + 1) % n;
  // Symmetric even-length FIR: tap k pairs with tap (2*n2 - 1 - k); the
  // coefficient index is j - 1 with 2j - 1 = |2k - (2*n2 - 1)|.
  std::int64_t acc = 0;
  const std::size_t n2 = coeffs.size();
  for (std::size_t j = 1; j <= n2; ++j) {
    const std::size_t k_near = n2 - j;      // |2k - (2n2-1)| = 2j-1
    const std::size_t k_far = n2 + j - 1;
    const std::int64_t a = hist[(newest + n - k_near) % n];
    const std::int64_t b = hist[(newest + n - k_far) % n];
    acc += owner.requantize_product(coeffs[j - 1] * (a + b));
  }
  return acc;
}

std::int64_t SaramakiHbfDecimator::requantize_product(std::int64_t prod) const {
  // The power-optimized datapath drops product LSBs below a small guard
  // immediately after each CSD multiplier (frac: internal + coeff ->
  // product format), keeping the adder tree narrow.
  static const fx::EventCounters& ec = fx::event_counters("hbf_product");
  return fx::requantize(prod, internal_fmt_.frac + coeff_frac_, prod_fmt_,
                        fx::Rounding::kTruncate, fx::Overflow::kSaturate, &ec);
}

std::int64_t SaramakiHbfDecimator::requantize_internal(std::int64_t acc) const {
  // acc carries the product-format frac; bring back to internal.
  static const fx::EventCounters& ec = fx::event_counters("hbf_internal");
  return fx::requantize(acc, prod_fmt_.frac, internal_fmt_,
                        fx::Rounding::kRoundNearest, fx::Overflow::kSaturate,
                        &ec);
}

bool SaramakiHbfDecimator::push(std::int64_t in, std::int64_t& out) {
  // Promote the input into the internal guard format.
  static const fx::EventCounters& ec_in = fx::event_counters("hbf_in");
  const std::int64_t x =
      fx::requantize(in, in_fmt_.frac, internal_fmt_, fx::Rounding::kTruncate,
                     fx::Overflow::kSaturate, &ec_in);
  if (phase_ == 1) {
    // Odd-phase sample: enqueue into the 0.5-path delay line.
    odd_delay_[opos_] = x;
    opos_ = (opos_ + 1) % odd_delay_.size();
    phase_ = 0;
    return false;
  }
  phase_ = 1;

  // Even-phase sample: drive the G2 cascade (all at the output rate).
  std::vector<std::int64_t> odd_outputs(n1_, 0);
  std::int64_t cur = x;
  for (std::size_t k = 0; k < blocks_.size(); ++k) {
    cur = requantize_internal(blocks_[k].step(cur, f2_coeffs_, *this));
    if (k % 2 == 0) odd_outputs[k / 2] = cur;  // w_{k+1}, k+1 odd
  }
  // Branch alignment.
  std::vector<std::int64_t> aligned(n1_, 0);
  for (std::size_t i = 1; i < n1_; ++i) {
    auto& line = branch_delay_[i - 1];
    auto& p = bpos_[i - 1];
    const std::int64_t delayed = line[p];
    line[p] = odd_outputs[i - 1];
    p = (p + 1) % line.size();
    aligned[i - 1] = delayed;
  }
  aligned[n1_ - 1] = odd_outputs[n1_ - 1];

  // Output: 0.5 * x_odd[m - (D+1)/2] + sum_i f1_i w_i.
  const std::int64_t xd = odd_delay_[opos_];  // oldest = (D+1)/2 pushes ago
  std::int64_t acc = requantize_product(half_coeff_ * xd);
  for (std::size_t i = 0; i < n1_; ++i) {
    acc += requantize_product(f1_coeffs_[i] * aligned[i]);
  }
  static const fx::EventCounters& ec_out = fx::event_counters("hbf_out");
  out = fx::requantize(acc, prod_fmt_.frac, out_fmt_,
                       fx::Rounding::kRoundNearest, fx::Overflow::kSaturate,
                       &ec_out);
  return true;
}

void SaramakiHbfDecimator::g2_block_pass(G2Block& b,
                                         std::vector<std::int64_t>& stream) {
  // Vector form of G2Block::step over a whole even-phase stream: the
  // circular history plus the incoming block become one contiguous
  // buffer, so every output is a linear symmetric MAC. Tap order and the
  // per-product requantization match step() exactly, so the pass is
  // bit-identical to sample-at-a-time stepping.
  const std::size_t n = b.hist.size();  // 2*n2
  std::vector<std::int64_t> ext(n + stream.size());
  for (std::size_t j = 0; j < n; ++j) ext[j] = b.hist[(b.pos + j) % n];
  std::copy(stream.begin(), stream.end(), ext.begin() + n);

  const std::size_t n2 = f2_coeffs_.size();
  for (std::size_t m = 0; m < stream.size(); ++m) {
    const std::int64_t* newest = ext.data() + n + m;
    std::int64_t acc = 0;
    for (std::size_t j = 1; j <= n2; ++j) {
      const std::int64_t near = newest[-static_cast<std::ptrdiff_t>(n2 - j)];
      const std::int64_t far =
          newest[-static_cast<std::ptrdiff_t>(n2 + j - 1)];
      acc += requantize_product(f2_coeffs_[j - 1] * (near + far));
    }
    stream[m] = requantize_internal(acc);
  }

  // Streaming state write-back: the history holds the block's last 2*n2
  // input samples, with pos advanced as step() would have left it.
  const std::size_t advanced = (b.pos + stream.size()) % n;
  for (std::size_t j = 0; j < n; ++j) {
    b.hist[(advanced + j) % n] = ext[stream.size() + j];
  }
  b.pos = advanced;
}

std::vector<std::int64_t> SaramakiHbfDecimator::process(
    std::span<const std::int64_t> in) {
  // Batched polyphase kernel. push() interleaves the two phases sample by
  // sample; here the block is split once and every branch runs as a
  // vector pass at the output rate:
  //   A. promote + phase split, harvesting the 0.5-path (odd) stream
  //      through its delay line in push order;
  //   B. the G2 cascade, one g2_block_pass per block;
  //   C. branch-alignment delay lines, one pass per branch;
  //   D. the f1 output combination.
  // Every sample sees the identical operations in the identical order as
  // push(), so outputs, state, and fx event-counter totals all match.

  // --- A: promote into the guard format and split phases.
  static const fx::EventCounters& ec_in = fx::event_counters("hbf_in");
  std::vector<std::int64_t> even;
  std::vector<std::int64_t> half_path;  ///< 0.5-path sample per even sample
  even.reserve(in.size() / 2 + 1);
  half_path.reserve(in.size() / 2 + 1);
  for (const std::int64_t s : in) {
    const std::int64_t x =
        fx::requantize(s, in_fmt_.frac, internal_fmt_, fx::Rounding::kTruncate,
                       fx::Overflow::kSaturate, &ec_in);
    if (phase_ == 1) {
      odd_delay_[opos_] = x;
      opos_ = (opos_ + 1) % odd_delay_.size();
      phase_ = 0;
    } else {
      // The read of the delay line happens before the paired odd sample's
      // write, exactly as in the push() interleave.
      half_path.push_back(odd_delay_[opos_]);
      even.push_back(x);
      phase_ = 1;
    }
  }

  // --- B: G2 cascade; odd cascade outputs w1, w3, ... feed the branches.
  std::vector<std::vector<std::int64_t>> branch(n1_);
  std::vector<std::int64_t> cur = std::move(even);
  for (std::size_t k = 0; k < blocks_.size(); ++k) {
    g2_block_pass(blocks_[k], cur);
    if (k % 2 == 0) branch[k / 2] = cur;
  }

  // --- C: align each branch (all but the last) through its delay line.
  for (std::size_t i = 1; i < n1_; ++i) {
    auto& line = branch_delay_[i - 1];
    auto& p = bpos_[i - 1];
    for (auto& w : branch[i - 1]) {
      const std::int64_t delayed = line[p];
      line[p] = w;
      p = (p + 1) % line.size();
      w = delayed;
    }
  }

  // --- D: 0.5 path + f1 taps in the power basis.
  static const fx::EventCounters& ec_out = fx::event_counters("hbf_out");
  std::vector<std::int64_t> out(half_path.size());
  for (std::size_t m = 0; m < out.size(); ++m) {
    std::int64_t acc = requantize_product(half_coeff_ * half_path[m]);
    for (std::size_t i = 0; i < n1_; ++i) {
      acc += requantize_product(f1_coeffs_[i] * branch[i][m]);
    }
    out[m] = fx::requantize(acc, prod_fmt_.frac, out_fmt_,
                            fx::Rounding::kRoundNearest,
                            fx::Overflow::kSaturate, &ec_out);
  }
  return out;
}

}  // namespace dsadc::decim
