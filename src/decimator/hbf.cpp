#include "src/decimator/hbf.h"

#include <cmath>
#include <stdexcept>

namespace dsadc::decim {

SaramakiHbfDecimator::SaramakiHbfDecimator(const design::SaramakiHbf& design,
                                           fx::Format in_fmt,
                                           fx::Format out_fmt,
                                           int coeff_frac_bits,
                                           int guard_frac_bits)
    : coeff_frac_(coeff_frac_bits),
      n1_(design.n1),
      n2_(design.n2),
      d2_(2 * design.n2 - 1),
      big_d_((2 * design.n1 - 1) * d2_),
      in_fmt_(in_fmt),
      out_fmt_(out_fmt),
      internal_fmt_{in_fmt.width + 4 + guard_frac_bits,
                    in_fmt.frac + guard_frac_bits},
      prod_fmt_{in_fmt.width + 7 + guard_frac_bits,
                in_fmt.frac + guard_frac_bits + 2} {
  if (design.f1.empty() || design.f2.empty()) {
    throw std::invalid_argument("SaramakiHbfDecimator: empty design");
  }
  if (internal_fmt_.width > 62) {
    throw std::invalid_argument("SaramakiHbfDecimator: internal width > 62");
  }
  const double scale = std::ldexp(1.0, coeff_frac_);
  // Use the CSD-quantized coefficient values from the design: the datapath
  // must be bit-consistent with the shift-add network the RTL builds.
  for (const auto& c : design.f2_csd) {
    f2_coeffs_.push_back(
        static_cast<std::int64_t>(std::nearbyint(c.to_double() * scale)));
  }
  for (const auto& c : design.f1_csd) {
    f1_coeffs_.push_back(
        static_cast<std::int64_t>(std::nearbyint(c.to_double() * scale)));
  }
  half_coeff_ = static_cast<std::int64_t>(std::nearbyint(0.5 * scale));

  blocks_.resize(2 * n1_ - 1);
  for (auto& b : blocks_) b.hist.assign(2 * n2_, 0);
  odd_delay_.assign((big_d_ + 1) / 2, 0);
  branch_delay_.resize(n1_ - 1);
  bpos_.assign(n1_ - 1, 0);
  for (std::size_t i = 1; i < n1_; ++i) {
    // A circular line of length L realizes a delay of exactly L samples
    // with the read-before-write access in push().
    branch_delay_[i - 1].assign((big_d_ - (2 * i - 1) * d2_) / 2, 0);
  }
}

void SaramakiHbfDecimator::reset() {
  for (auto& b : blocks_) {
    std::fill(b.hist.begin(), b.hist.end(), 0);
    b.pos = 0;
  }
  std::fill(odd_delay_.begin(), odd_delay_.end(), 0);
  for (auto& d : branch_delay_) std::fill(d.begin(), d.end(), 0);
  std::fill(bpos_.begin(), bpos_.end(), 0);
  opos_ = 0;
  phase_ = 0;
}

std::size_t SaramakiHbfDecimator::macs_per_output() const {
  return (2 * n1_ - 1) * n2_ + n1_;  // G2 taps + outer taps
}

std::int64_t SaramakiHbfDecimator::G2Block::step(
    std::int64_t in, const std::vector<std::int64_t>& coeffs,
    const SaramakiHbfDecimator& owner) {
  hist[pos] = in;
  const std::size_t n = hist.size();  // 2*n2
  const std::size_t newest = pos;
  pos = (pos + 1) % n;
  // Symmetric even-length FIR: tap k pairs with tap (2*n2 - 1 - k); the
  // coefficient index is j - 1 with 2j - 1 = |2k - (2*n2 - 1)|.
  std::int64_t acc = 0;
  const std::size_t n2 = coeffs.size();
  for (std::size_t j = 1; j <= n2; ++j) {
    const std::size_t k_near = n2 - j;      // |2k - (2n2-1)| = 2j-1
    const std::size_t k_far = n2 + j - 1;
    const std::int64_t a = hist[(newest + n - k_near) % n];
    const std::int64_t b = hist[(newest + n - k_far) % n];
    acc += owner.requantize_product(coeffs[j - 1] * (a + b));
  }
  return acc;
}

std::int64_t SaramakiHbfDecimator::requantize_product(std::int64_t prod) const {
  // The power-optimized datapath drops product LSBs below a small guard
  // immediately after each CSD multiplier (frac: internal + coeff ->
  // product format), keeping the adder tree narrow.
  static const fx::EventCounters& ec = fx::event_counters("hbf_product");
  return fx::requantize(prod, internal_fmt_.frac + coeff_frac_, prod_fmt_,
                        fx::Rounding::kTruncate, fx::Overflow::kSaturate, &ec);
}

std::int64_t SaramakiHbfDecimator::requantize_internal(std::int64_t acc) const {
  // acc carries the product-format frac; bring back to internal.
  static const fx::EventCounters& ec = fx::event_counters("hbf_internal");
  return fx::requantize(acc, prod_fmt_.frac, internal_fmt_,
                        fx::Rounding::kRoundNearest, fx::Overflow::kSaturate,
                        &ec);
}

bool SaramakiHbfDecimator::push(std::int64_t in, std::int64_t& out) {
  // Promote the input into the internal guard format.
  static const fx::EventCounters& ec_in = fx::event_counters("hbf_in");
  const std::int64_t x =
      fx::requantize(in, in_fmt_.frac, internal_fmt_, fx::Rounding::kTruncate,
                     fx::Overflow::kSaturate, &ec_in);
  if (phase_ == 1) {
    // Odd-phase sample: enqueue into the 0.5-path delay line.
    odd_delay_[opos_] = x;
    opos_ = (opos_ + 1) % odd_delay_.size();
    phase_ = 0;
    return false;
  }
  phase_ = 1;

  // Even-phase sample: drive the G2 cascade (all at the output rate).
  std::vector<std::int64_t> odd_outputs(n1_, 0);
  std::int64_t cur = x;
  for (std::size_t k = 0; k < blocks_.size(); ++k) {
    cur = requantize_internal(blocks_[k].step(cur, f2_coeffs_, *this));
    if (k % 2 == 0) odd_outputs[k / 2] = cur;  // w_{k+1}, k+1 odd
  }
  // Branch alignment.
  std::vector<std::int64_t> aligned(n1_, 0);
  for (std::size_t i = 1; i < n1_; ++i) {
    auto& line = branch_delay_[i - 1];
    auto& p = bpos_[i - 1];
    const std::int64_t delayed = line[p];
    line[p] = odd_outputs[i - 1];
    p = (p + 1) % line.size();
    aligned[i - 1] = delayed;
  }
  aligned[n1_ - 1] = odd_outputs[n1_ - 1];

  // Output: 0.5 * x_odd[m - (D+1)/2] + sum_i f1_i w_i.
  const std::int64_t xd = odd_delay_[opos_];  // oldest = (D+1)/2 pushes ago
  std::int64_t acc = requantize_product(half_coeff_ * xd);
  for (std::size_t i = 0; i < n1_; ++i) {
    acc += requantize_product(f1_coeffs_[i] * aligned[i]);
  }
  static const fx::EventCounters& ec_out = fx::event_counters("hbf_out");
  out = fx::requantize(acc, prod_fmt_.frac, out_fmt_,
                       fx::Rounding::kRoundNearest, fx::Overflow::kSaturate,
                       &ec_out);
  return true;
}

std::vector<std::int64_t> SaramakiHbfDecimator::process(
    std::span<const std::int64_t> in) {
  std::vector<std::int64_t> out;
  out.reserve(in.size() / 2 + 1);
  std::int64_t y = 0;
  for (std::int64_t x : in) {
    if (push(x, y)) out.push_back(y);
  }
  return out;
}

}  // namespace dsadc::decim
