#include "src/decimator/interpolate.h"

#include <cmath>
#include <stdexcept>

namespace dsadc::decim {

CicInterpolator::CicInterpolator(design::CicSpec spec)
    : spec_(spec),
      fmt_{spec.register_width(), 0},
      comb_(static_cast<std::size_t>(spec.order), 0),
      integ_(static_cast<std::size_t>(spec.order), 0) {
  if (spec.order < 1 || spec.decimation < 2) {
    throw std::invalid_argument("CicInterpolator: order >= 1, factor >= 2");
  }
  if (fmt_.width > 62) {
    throw std::invalid_argument("CicInterpolator: register width > 62");
  }
}

void CicInterpolator::reset() {
  std::fill(comb_.begin(), comb_.end(), 0);
  std::fill(integ_.begin(), integ_.end(), 0);
}

std::int64_t CicInterpolator::dc_gain() const {
  std::int64_t g = 1;
  for (int k = 0; k + 1 < spec_.order; ++k) g *= spec_.decimation;
  return g;
}

void CicInterpolator::push(std::int64_t in, std::vector<std::int64_t>& out) {
  // Comb (differentiator) cascade at the input rate.
  std::int64_t v = fx::wrap_to(in, fmt_);
  for (auto& state : comb_) {
    const std::int64_t prev = state;
    state = v;
    v = fx::wrap_to(v - prev, fmt_);
  }
  // Zero-stuff and run the integrator cascade at the output rate.
  for (int slot = 0; slot < spec_.decimation; ++slot) {
    std::int64_t acc = (slot == 0) ? v : 0;
    for (auto& state : integ_) {
      state = fx::wrap_to(state + acc, fmt_);
      acc = state;
    }
    out.push_back(acc);
  }
}

std::vector<std::int64_t> CicInterpolator::process(
    std::span<const std::int64_t> in) {
  std::vector<std::int64_t> out;
  out.reserve(in.size() * static_cast<std::size_t>(spec_.decimation));
  for (std::int64_t x : in) push(x, out);
  return out;
}

HalfbandInterpolator::HalfbandInterpolator(FixedTaps taps, fx::Format in_fmt,
                                           fx::Format out_fmt)
    : frac_bits_(taps.frac_bits), in_fmt_(in_fmt), out_fmt_(out_fmt) {
  if (taps.size() % 4 != 3) {
    throw std::invalid_argument(
        "HalfbandInterpolator: taps must have length 4J-1");
  }
  const std::size_t mid = taps.size() / 2;
  for (std::size_t i = 0; i < taps.size(); ++i) {
    if (i == mid) continue;
    const std::size_t off = i > mid ? i - mid : mid - i;
    if (off % 2 == 0 && taps.taps[i] != 0) {
      throw std::invalid_argument(
          "HalfbandInterpolator: non-zero even-offset tap");
    }
  }
  even_.frac_bits = taps.frac_bits;
  for (std::size_t i = 0; i < taps.size(); i += 2) {
    even_.taps.push_back(taps.taps[i]);
  }
  center_ = taps.taps[mid];
  hist_.assign(even_.size(), 0);
}

void HalfbandInterpolator::reset() {
  std::fill(hist_.begin(), hist_.end(), 0);
  pos_ = 0;
}

void HalfbandInterpolator::push(std::int64_t in,
                                std::vector<std::int64_t>& out) {
  hist_[pos_] = in;
  const std::size_t n = hist_.size();  // 2J
  const std::size_t newest = pos_;
  pos_ = (pos_ + 1) % n;

  // Even output phase: the subfilter branch, with the interpolator's
  // gain of 2 folded into the requantization shift.
  std::int64_t acc = 0;
  for (std::size_t j = 0; j < n; ++j) {
    acc += even_.taps[j] * hist_[(newest + n - j) % n];
  }
  out.push_back(fx::requantize(acc, in_fmt_.frac + frac_bits_ - 1, out_fmt_,
                               fx::Rounding::kRoundNearest,
                               fx::Overflow::kSaturate));
  // Odd output phase: 2 * 0.5 * x[m - (J-1)] = the delayed input.
  const std::size_t delay = n / 2 - 1;  // J - 1
  const std::int64_t xd = hist_[(newest + n - delay) % n];
  out.push_back(fx::requantize(xd, in_fmt_.frac, out_fmt_,
                               fx::Rounding::kRoundNearest,
                               fx::Overflow::kSaturate));
  // (center_ retained for documentation; its value 0.5 * 2 is the unity
  // pass-through realized above.)
  (void)center_;
}

std::vector<std::int64_t> HalfbandInterpolator::process(
    std::span<const std::int64_t> in) {
  std::vector<std::int64_t> out;
  out.reserve(in.size() * 2);
  for (std::int64_t x : in) push(x, out);
  return out;
}

InterpolationChain::InterpolationChain(const ChainConfig& cfg)
    : in_fmt_(cfg.output_format),
      // Interpolator datapath: baseband word + a few guard bits.
      mid_fmt_{cfg.output_format.width + 2, cfg.output_format.frac},
      dac_fmt_{cfg.output_format.width + 2, cfg.output_format.frac},
      hbf_(FixedTaps::from_real(cfg.hbf.taps, cfg.hbf_coeff_frac_bits),
           mid_fmt_, mid_fmt_),
      factor_(2) {
  // Mirror the Sinc stages in reverse order; each CIC interpolator's
  // DC gain M^(K-1) is normalized back out by an arithmetic shift
  // (requantize) so the DAC word keeps the baseband scale.
  for (auto it = cfg.cic_stages.rbegin(); it != cfg.cic_stages.rend(); ++it) {
    design::CicSpec spec = *it;
    // Width must hold the interpolator's internal gain on top of the
    // datapath word.
    spec.input_bits = mid_fmt_.width;
    cics_.emplace_back(spec);
    int shift = 0;
    for (int k = 0; k + 1 < spec.order; ++k) {
      shift += static_cast<int>(std::log2(spec.decimation));
    }
    norm_shifts_.push_back(shift);
    factor_ *= static_cast<std::size_t>(spec.decimation);
  }
}

void InterpolationChain::reset() {
  hbf_.reset();
  for (auto& c : cics_) c.reset();
}

std::vector<std::int64_t> InterpolationChain::process(
    std::span<const std::int64_t> in) {
  // Promote into the guarded datapath.
  std::vector<std::int64_t> cur;
  cur.reserve(in.size());
  for (std::int64_t v : in) {
    cur.push_back(fx::requantize(v, in_fmt_.frac, mid_fmt_,
                                 fx::Rounding::kTruncate,
                                 fx::Overflow::kSaturate));
  }
  cur = hbf_.process(cur);
  for (std::size_t s = 0; s < cics_.size(); ++s) {
    cur = cics_[s].process(cur);
    if (norm_shifts_[s] > 0) {
      for (auto& v : cur) {
        // Divide the stage's 2^(K-1) DC gain back out (round-nearest).
        v = fx::requantize(v, mid_fmt_.frac + norm_shifts_[s], mid_fmt_,
                           fx::Rounding::kRoundNearest,
                           fx::Overflow::kSaturate);
      }
    }
  }
  return cur;
}

}  // namespace dsadc::decim
