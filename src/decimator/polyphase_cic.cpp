#include "src/decimator/polyphase_cic.h"

#include <stdexcept>

namespace dsadc::decim {

std::vector<std::int64_t> binomial_taps(int order) {
  std::vector<std::int64_t> h{1};
  for (int k = 0; k < order; ++k) {
    std::vector<std::int64_t> next(h.size() + 1, 0);
    for (std::size_t j = 0; j < h.size(); ++j) {
      next[j] += h[j];
      next[j + 1] += h[j];
    }
    h = std::move(next);
  }
  return h;
}

PolyphaseCicDecimator::PolyphaseCicDecimator(design::CicSpec spec)
    : spec_(spec), taps_(binomial_taps(spec.order)) {
  if (spec.decimation != 2) {
    throw std::invalid_argument(
        "PolyphaseCicDecimator: the non-recursive form is provided for "
        "M = 2 stages (the paper's chain)");
  }
  const std::size_t half = taps_.size() / 2 + 1;
  even_hist_.assign(half, 0);
  odd_hist_.assign(half, 0);
}

void PolyphaseCicDecimator::reset() {
  std::fill(even_hist_.begin(), even_hist_.end(), 0);
  std::fill(odd_hist_.begin(), odd_hist_.end(), 0);
  epos_ = opos_ = 0;
  phase_ = 0;
}

std::size_t PolyphaseCicDecimator::adder_count() const {
  // K+1 taps: binomial coefficients need shift-adds; counting word-level
  // adders in the two branch sums (taps - 1 additions) plus the CSD cost
  // of the non-power-of-two coefficients.
  std::size_t adders = taps_.size() - 1;
  for (std::int64_t t : taps_) {
    // Cost of multiplying by the binomial constant.
    std::int64_t v = t;
    int ones = 0;
    while (v != 0) {
      ones += static_cast<int>(v & 1);
      v >>= 1;
    }
    if (ones > 1) adders += static_cast<std::size_t>(ones - 1);
  }
  return adders;
}

std::size_t PolyphaseCicDecimator::register_count() const {
  return even_hist_.size() + odd_hist_.size();
}

bool PolyphaseCicDecimator::push(std::int64_t in, std::int64_t& out) {
  if (phase_ == 0) {
    // Even-indexed input sample.
    even_hist_[epos_] = in;
    epos_ = (epos_ + 1) % even_hist_.size();
    phase_ = 1;
    return false;
  }
  // Odd-indexed sample: store and emit y[m] = sum_k h[k] x[2m+1-k].
  odd_hist_[opos_] = in;
  const std::size_t onewest = opos_;
  opos_ = (opos_ + 1) % odd_hist_.size();
  const std::size_t enewest =
      (epos_ + even_hist_.size() - 1) % even_hist_.size();
  phase_ = 0;

  std::int64_t acc = 0;
  for (std::size_t k = 0; k < taps_.size(); ++k) {
    const std::size_t j = k / 2;
    if (k % 2 == 0) {
      // Even tap index applies to the odd-phase stream: x[2(m-j)+1].
      const std::size_t idx = (onewest + odd_hist_.size() - j) % odd_hist_.size();
      acc += taps_[k] * odd_hist_[idx];
    } else {
      // Odd tap index applies to the even-phase stream: x[2(m-j)].
      const std::size_t idx =
          (enewest + even_hist_.size() - j) % even_hist_.size();
      acc += taps_[k] * even_hist_[idx];
    }
  }
  out = acc;
  return true;
}

std::vector<std::int64_t> PolyphaseCicDecimator::process(
    std::span<const std::int64_t> in) {
  std::vector<std::int64_t> out;
  out.reserve(in.size() / 2 + 1);
  std::int64_t y = 0;
  for (std::int64_t x : in) {
    if (push(x, y)) out.push_back(y);
  }
  return out;
}

}  // namespace dsadc::decim
