// AVX2-target instantiation of the bank kernels. Compiled with -mavx2
// (see src/decimator/CMakeLists.txt) only on x86-64 with a capable
// compiler; dispatch guarantees it never runs on a CPU without AVX2.
#define DSADC_SIMD_NS avx2
#include "src/decimator/bank_kernels_impl.h"
