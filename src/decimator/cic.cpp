#include "src/decimator/cic.h"

#include <algorithm>
#include <stdexcept>

#include "src/decimator/simd.h"
#include "src/decimator/soa.h"

namespace dsadc::decim {

CicDecimator::CicDecimator(design::CicSpec spec, CicHardwareOptions options)
    : spec_(spec),
      options_(options),
      fmt_{spec.register_width(), 0},
      integ_(static_cast<std::size_t>(spec.order), 0),
      comb_(static_cast<std::size_t>(spec.order), 0) {
  if (spec.order < 1 || spec.decimation < 2) {
    throw std::invalid_argument("CicDecimator: order >= 1, decimation >= 2");
  }
  if (fmt_.width > 62) {
    throw std::invalid_argument("CicDecimator: register width exceeds 62 bits");
  }
}

void CicDecimator::reset() {
  std::fill(integ_.begin(), integ_.end(), 0);
  std::fill(comb_.begin(), comb_.end(), 0);
  phase_ = 0;
}

std::int64_t CicDecimator::dc_gain() const {
  std::int64_t g = 1;
  for (int k = 0; k < spec_.order; ++k) g *= spec_.decimation;
  return g;
}

bool CicDecimator::push(std::int64_t in, std::int64_t& out) {
  // Integrator cascade at the input rate: y_k = wrap(y_k + y_{k-1}).
  // Wraparound (not saturation) is essential: the comb section cancels the
  // modular overflow exactly as long as registers hold Bmax bits.
  std::int64_t acc = fx::wrap_to(in, fmt_);
  for (auto& state : integ_) {
    state = fx::wrap_to(state + acc, fmt_);
    acc = state;
  }
  phase_ = (phase_ + 1) % spec_.decimation;
  if (phase_ != 0) return false;

  // Decimated side: differentiator (comb) cascade, differencing the
  // pipeline-registered accumulator output.
  std::int64_t v = acc;
  for (auto& state : comb_) {
    const std::int64_t prev = state;
    state = v;
    v = fx::wrap_to(v - prev, fmt_);
  }
  out = v;
  return true;
}

std::vector<std::int64_t> CicDecimator::process(
    std::span<const std::int64_t> in) {
  std::vector<std::int64_t> buf(in.begin(), in.end());
  process_inplace(buf);
  return buf;
}

void CicDecimator::process_inplace(std::vector<std::int64_t>& buf) {
  // Block kernel: one sequential pass per integrator section, decimate,
  // then one pass per comb section. Each sample undergoes exactly the
  // same wrapped additions in the same order as the push() path (a
  // section's output depends only on its own state and its input stream),
  // so the result is bit-identical while every pass runs branch-free over
  // contiguous memory at that section's rate.
  const int shift = 64 - fmt_.width;
  const auto wrap = [shift](std::int64_t v) {
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(v) << shift) >>
           shift;
  };

  for (auto& v : buf) v = wrap(v);
  for (auto& state : integ_) {
    std::int64_t acc = state;
    for (auto& v : buf) {
      acc = wrap(acc + v);
      v = acc;
    }
    state = acc;
  }

  // Keep every decimation-th sample, honouring the phase carried over
  // from any preceding push() calls.
  const auto m = static_cast<std::size_t>(spec_.decimation);
  const std::size_t skip =
      (m - 1) - static_cast<std::size_t>(phase_) % m;  // first kept index
  phase_ = static_cast<int>(
      (static_cast<std::size_t>(phase_) + buf.size()) % m);
  std::size_t n_out = 0;
  for (std::size_t i = skip; i < buf.size(); i += m) buf[n_out++] = buf[i];
  buf.resize(n_out);

  for (auto& state : comb_) {
    std::int64_t prev = state;
    for (auto& v : buf) {
      const std::int64_t cur = v;
      v = wrap(cur - prev);
      prev = cur;
    }
    state = prev;
  }
}

CicDecimatorBank::CicDecimatorBank(design::CicSpec spec, std::size_t channels,
                                   CicHardwareOptions options)
    : spec_(spec),
      options_(options),
      fmt_{spec.register_width(), 0},
      channels_(channels),
      integ_(static_cast<std::size_t>(spec.order) * channels, 0),
      comb_(static_cast<std::size_t>(spec.order) * channels, 0) {
  if (spec.order < 1 || spec.decimation < 2) {
    throw std::invalid_argument(
        "CicDecimatorBank: order >= 1, decimation >= 2");
  }
  if (fmt_.width > 62) {
    throw std::invalid_argument(
        "CicDecimatorBank: register width exceeds 62 bits");
  }
  if (channels_ == 0) {
    throw std::invalid_argument("CicDecimatorBank: channels >= 1");
  }
}

void CicDecimatorBank::reset() {
  std::fill(integ_.begin(), integ_.end(), 0);
  std::fill(comb_.begin(), comb_.end(), 0);
  phase_ = 0;
}

void CicDecimatorBank::process_inplace(std::vector<std::int64_t>& data) {
  // The scalar block kernel with every element widened to a row of C
  // channels: per-channel arithmetic and ordering are untouched, so each
  // lane is bit-identical to a dedicated CicDecimator, while the inner
  // channel loops are independent int64 lanes (wrap is add/and/xor/sub,
  // no shifts, so SSE2/AVX2 can take them wholesale).
  const soa::Wrap wrap(fmt_.width);
  const std::size_t C = channels_;
  if (data.size() % C != 0) {
    throw std::invalid_argument(
        "CicDecimatorBank: data size not a multiple of channels");
  }
  const std::size_t frames = data.size() / C;

  // One fused pass through the dispatched SIMD tier: integrator cascade,
  // decimation (honouring the phase carried over from push() calls), and
  // comb cascade, touching each input row once. The scalar kernel's
  // separate input-wrap pass is folded into the first integrator section
  // -- identical by modular arithmetic (wrap(st + wrap(v)) == wrap(st +
  // v)).
  const auto m = static_cast<std::size_t>(spec_.decimation);
  const std::size_t skip = (m - 1) - static_cast<std::size_t>(phase_) % m;
  phase_ = static_cast<int>((static_cast<std::size_t>(phase_) + frames) % m);
  const std::size_t n_out = simd::kernels().cic_stage(
      data.data(), frames, C, integ_.data(), comb_.data(),
      static_cast<std::size_t>(spec_.order), skip, m, wrap);
  data.resize(n_out * C);
}

void CicDecimatorBank::export_lane(std::size_t lane, CicDecimator& dst) const {
  if (lane >= channels_) {
    throw std::invalid_argument("CicDecimatorBank: export lane out of range");
  }
  if (dst.spec_.order != spec_.order ||
      dst.spec_.decimation != spec_.decimation ||
      dst.fmt_.width != fmt_.width) {
    throw std::invalid_argument("CicDecimatorBank: export spec mismatch");
  }
  const auto order = static_cast<std::size_t>(spec_.order);
  for (std::size_t k = 0; k < order; ++k) {
    dst.integ_[k] = integ_[k * channels_ + lane];
    dst.comb_[k] = comb_[k * channels_ + lane];
  }
  dst.phase_ = phase_;
}

CicCascade::CicCascade(std::vector<design::CicSpec> specs,
                       CicHardwareOptions options) {
  if (specs.empty()) throw std::invalid_argument("CicCascade: no stages");
  stages_.reserve(specs.size());
  for (const auto& s : specs) stages_.emplace_back(s, options);
}

void CicCascade::reset() {
  for (auto& s : stages_) s.reset();
}

std::size_t CicCascade::total_decimation() const {
  std::size_t m = 1;
  for (const auto& s : stages_) m *= static_cast<std::size_t>(s.spec().decimation);
  return m;
}

std::int64_t CicCascade::total_dc_gain() const {
  std::int64_t g = 1;
  for (const auto& s : stages_) g *= s.dc_gain();
  return g;
}

std::vector<std::int64_t> CicCascade::process(
    std::span<const std::int64_t> in) {
  std::vector<std::int64_t> cur(in.begin(), in.end());
  for (auto& s : stages_) {
    cur = s.process(cur);
  }
  return cur;
}

}  // namespace dsadc::decim
