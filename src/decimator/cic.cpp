#include "src/decimator/cic.h"

#include <stdexcept>

namespace dsadc::decim {

CicDecimator::CicDecimator(design::CicSpec spec, CicHardwareOptions options)
    : spec_(spec),
      options_(options),
      fmt_{spec.register_width(), 0},
      integ_(static_cast<std::size_t>(spec.order), 0),
      comb_(static_cast<std::size_t>(spec.order), 0) {
  if (spec.order < 1 || spec.decimation < 2) {
    throw std::invalid_argument("CicDecimator: order >= 1, decimation >= 2");
  }
  if (fmt_.width > 62) {
    throw std::invalid_argument("CicDecimator: register width exceeds 62 bits");
  }
}

void CicDecimator::reset() {
  std::fill(integ_.begin(), integ_.end(), 0);
  std::fill(comb_.begin(), comb_.end(), 0);
  phase_ = 0;
}

std::int64_t CicDecimator::dc_gain() const {
  std::int64_t g = 1;
  for (int k = 0; k < spec_.order; ++k) g *= spec_.decimation;
  return g;
}

bool CicDecimator::push(std::int64_t in, std::int64_t& out) {
  // Integrator cascade at the input rate: y_k = wrap(y_k + y_{k-1}).
  // Wraparound (not saturation) is essential: the comb section cancels the
  // modular overflow exactly as long as registers hold Bmax bits.
  std::int64_t acc = fx::wrap_to(in, fmt_);
  for (auto& state : integ_) {
    state = fx::wrap_to(state + acc, fmt_);
    acc = state;
  }
  phase_ = (phase_ + 1) % spec_.decimation;
  if (phase_ != 0) return false;

  // Decimated side: differentiator (comb) cascade, differencing the
  // pipeline-registered accumulator output.
  std::int64_t v = acc;
  for (auto& state : comb_) {
    const std::int64_t prev = state;
    state = v;
    v = fx::wrap_to(v - prev, fmt_);
  }
  out = v;
  return true;
}

std::vector<std::int64_t> CicDecimator::process(
    std::span<const std::int64_t> in) {
  std::vector<std::int64_t> out;
  out.reserve(in.size() / static_cast<std::size_t>(spec_.decimation) + 1);
  std::int64_t y = 0;
  for (std::int64_t x : in) {
    if (push(x, y)) out.push_back(y);
  }
  return out;
}

CicCascade::CicCascade(std::vector<design::CicSpec> specs,
                       CicHardwareOptions options) {
  if (specs.empty()) throw std::invalid_argument("CicCascade: no stages");
  stages_.reserve(specs.size());
  for (const auto& s : specs) stages_.emplace_back(s, options);
}

void CicCascade::reset() {
  for (auto& s : stages_) s.reset();
}

std::size_t CicCascade::total_decimation() const {
  std::size_t m = 1;
  for (const auto& s : stages_) m *= static_cast<std::size_t>(s.spec().decimation);
  return m;
}

std::int64_t CicCascade::total_dc_gain() const {
  std::int64_t g = 1;
  for (const auto& s : stages_) g *= s.dc_gain();
  return g;
}

std::vector<std::int64_t> CicCascade::process(
    std::span<const std::int64_t> in) {
  std::vector<std::int64_t> cur(in.begin(), in.end());
  for (auto& s : stages_) {
    cur = s.process(cur);
  }
  return cur;
}

}  // namespace dsadc::decim
