// CPUID tier detection + dispatch for the bank kernels (simd.h).
#include "src/decimator/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace dsadc::decim::simd {

namespace scalar {
extern const BankKernels kTable;
}
#if DSADC_SIMD_HAVE_AVX2
namespace avx2 {
extern const BankKernels kTable;
}
#endif
#if DSADC_SIMD_HAVE_AVX512
namespace avx512 {
extern const BankKernels kTable;
}
#endif

namespace {

const BankKernels* table_for(Tier tier) {
  switch (tier) {
#if DSADC_SIMD_HAVE_AVX512
    case Tier::kAvx512:
      return &avx512::kTable;
#endif
#if DSADC_SIMD_HAVE_AVX2
    case Tier::kAvx2:
      return &avx2::kTable;
#endif
    default:
      return &scalar::kTable;
  }
}

bool cpu_supports(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return true;
    case Tier::kAvx2:
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case Tier::kAvx512:
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512dq") &&
             __builtin_cpu_supports("avx512vl");
#else
      return false;
#endif
  }
  return false;
}

bool compiled_in(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return true;
    case Tier::kAvx2:
#if DSADC_SIMD_HAVE_AVX2
      return true;
#else
      return false;
#endif
    case Tier::kAvx512:
#if DSADC_SIMD_HAVE_AVX512
      return true;
#else
      return false;
#endif
  }
  return false;
}

Tier parse_tier(const char* s, Tier fallback) {
  if (std::strcmp(s, "scalar") == 0 || std::strcmp(s, "off") == 0) {
    return Tier::kScalar;
  }
  if (std::strcmp(s, "avx2") == 0) return Tier::kAvx2;
  if (std::strcmp(s, "avx512") == 0) return Tier::kAvx512;
  return fallback;
}

Tier initial_tier() {
  Tier pick = best_tier();
  if (const char* env = std::getenv("DSADC_SIMD")) {
    const Tier want = parse_tier(env, pick);
    // The env var caps the tier; asking for more than the machine has
    // degrades to the widest supported tier below the request.
    while (static_cast<int>(want) < static_cast<int>(pick)) {
      pick = static_cast<Tier>(static_cast<int>(pick) - 1);
    }
    if (tier_supported(want)) pick = want;
  }
  return pick;
}

// -1 = not yet detected; otherwise the Tier value.
std::atomic<int> g_tier{-1};

Tier ensure_tier() {
  int t = g_tier.load(std::memory_order_acquire);
  if (t < 0) {
    // Benign race: every thread computes the same initial tier.
    t = static_cast<int>(initial_tier());
    g_tier.store(t, std::memory_order_release);
  }
  return static_cast<Tier>(t);
}

}  // namespace

const BankKernels& kernels() { return *table_for(ensure_tier()); }

Tier active_tier() { return ensure_tier(); }

Tier best_tier() {
  for (Tier t : {Tier::kAvx512, Tier::kAvx2}) {
    if (compiled_in(t) && cpu_supports(t)) return t;
  }
  return Tier::kScalar;
}

bool tier_supported(Tier tier) {
  return compiled_in(tier) && cpu_supports(tier);
}

bool set_active_tier(Tier tier) {
  if (!tier_supported(tier)) return false;
  g_tier.store(static_cast<int>(tier), std::memory_order_release);
  return true;
}

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kAvx512:
      return "avx512";
    case Tier::kAvx2:
      return "avx2";
    default:
      return "scalar";
  }
}

}  // namespace dsadc::decim::simd
