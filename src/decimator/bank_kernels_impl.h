// Bank-kernel loop bodies, compiled once per SIMD tier.
//
// Included (no include guard on purpose) by bank_kernels_{scalar,avx2,
// avx512}.cpp with DSADC_SIMD_NS set to the tier's namespace; each TU gets
// its own target flags from CMake and exports one BankKernels table. The
// bodies are the exact loops the bank stages ran before dispatch existed:
// integer-exact lane arithmetic, taps in the outer loop, one independent
// accumulator chain per channel, so every tier computes identical bits.
#include <cstddef>
#include <cstdint>

#include "src/decimator/simd.h"
#include "src/decimator/soa.h"

namespace dsadc::decim::simd {
namespace DSADC_SIMD_NS {
namespace {

/// soa::Requant + its tallies copied into function-locals: accumulating
/// rounds/saturates through a RequantTally& (and reading bounds through a
/// Requant&) defeats the vectorizer's aliasing analysis, which must assume
/// the row stores below may overwrite them. Same arithmetic, same event
/// decisions; commit() adds the counts back in bulk.
struct Rq {
  std::int64_t round_add;
  std::int64_t lo, hi;
  std::uint64_t drop_mask;
  int shift;
  std::uint64_t rounds = 0;
  std::uint64_t saturates = 0;

  explicit Rq(const soa::Requant& rq)
      : round_add(rq.round_add),
        lo(rq.lo),
        hi(rq.hi),
        drop_mask(rq.drop_mask),
        shift(rq.shift) {}

  std::int64_t operator()(std::int64_t v) {
    if (shift > 0) {
      rounds += static_cast<std::uint64_t>(
          (static_cast<std::uint64_t>(v) & drop_mask) != 0);
      v = (v + round_add) >> shift;
    } else if (shift < 0) {
      v = static_cast<std::int64_t>(static_cast<std::uint64_t>(v) << -shift);
    }
    const std::int64_t c = v < lo ? lo : (v > hi ? hi : v);
    saturates += static_cast<std::uint64_t>(c != v);
    return c;
  }

  void commit(soa::RequantTally& tally) const {
    tally.rounds += rounds;
    tally.saturates += saturates;
  }
};

std::size_t cic_stage(std::int64_t* __restrict data, std::size_t frames,
                      std::size_t C, std::int64_t* __restrict integ,
                      std::int64_t* __restrict comb, std::size_t order,
                      std::size_t skip, std::size_t decim, soa::Wrap wrap) {
  std::size_t n_out = 0;
  std::size_t next_keep = skip;
  for (std::size_t f = 0; f < frames; ++f) {
    const std::int64_t* const row = data + f * C;
    // Integrator cascade: section 0 folds the input wrap into its own
    // (wrap(st + wrap(v)) == wrap(st + v)); section s adds section s-1's
    // state row -- the per-sample cascade order of the scalar push().
    for (std::size_t c = 0; c < C; ++c) integ[c] = wrap(integ[c] + row[c]);
    for (std::size_t s = 1; s < order; ++s) {
      std::int64_t* const cur = integ + s * C;
      const std::int64_t* const prev = integ + (s - 1) * C;
      for (std::size_t c = 0; c < C; ++c) cur[c] = wrap(cur[c] + prev[c]);
    }
    if (f != next_keep) continue;
    next_keep += decim;
    // Kept frame: run the comb cascade in the output row itself. n_out
    // never exceeds f, so the write stays at or behind the read cursor.
    std::int64_t* const orow = data + n_out * C;
    const std::int64_t* const top = integ + (order - 1) * C;
    for (std::size_t c = 0; c < C; ++c) orow[c] = top[c];
    for (std::size_t s = 0; s < order; ++s) {
      std::int64_t* const st = comb + s * C;
      for (std::size_t c = 0; c < C; ++c) {
        const std::int64_t cur = orow[c];
        orow[c] = wrap(cur - st[c]);
        st[c] = cur;
      }
    }
    ++n_out;
  }
  return n_out;
}

std::size_t fir_emit(std::int64_t* __restrict data,
                     const std::int64_t* __restrict ext, std::size_t frames,
                     std::size_t C, const std::int64_t* __restrict taps,
                     std::size_t tap_count, std::size_t first,
                     std::size_t decim, std::int64_t* __restrict acc,
                     const soa::Requant& rq, soa::RequantTally& tally) {
  Rq lrq(rq);
  std::size_t n_out = 0;
  for (std::size_t i = first; i < frames; i += decim, ++n_out) {
    const std::int64_t* const window = ext + (tap_count - 1 + i) * C;
    for (std::size_t c = 0; c < C; ++c) acc[c] = 0;
    for (std::size_t k = 0; k < tap_count; ++k) {
      const std::int64_t t = taps[k];
      const std::int64_t* const wrow =
          window - static_cast<std::ptrdiff_t>(k * C);
      for (std::size_t c = 0; c < C; ++c) acc[c] += t * wrow[c];
    }
    std::int64_t* const orow = data + n_out * C;
    for (std::size_t c = 0; c < C; ++c) orow[c] = lrq(acc[c]);
  }
  lrq.commit(tally);
  return n_out;
}

void hbf_g2(std::int64_t* __restrict stream,
            const std::int64_t* __restrict ext, std::size_t frames,
            std::size_t C, const std::int64_t* __restrict f2, std::size_t n2,
            const soa::Requant& rq_prod, const soa::Requant& rq_int,
            soa::RequantTally& t_prod, soa::RequantTally& t_int) {
  Rq lrq_prod(rq_prod);
  Rq lrq_int(rq_int);
  const std::size_t n = 2 * n2;  // history rows ahead of the stream
  for (std::size_t m = 0; m < frames; ++m) {
    const std::int64_t* const newest = ext + (n + m) * C;
    std::int64_t* const orow = stream + m * C;
    // First product initializes the accumulator row in place, the rest
    // add -- same j = 1..n2 order as the scalar kernel.
    for (std::size_t j = 1; j <= n2; ++j) {
      const std::int64_t coeff = f2[j - 1];
      const std::int64_t* const near_row = newest - (n2 - j) * C;
      const std::int64_t* const far_row = newest - (n2 + j - 1) * C;
      if (j == 1) {
        for (std::size_t c = 0; c < C; ++c) {
          orow[c] = lrq_prod(coeff * (near_row[c] + far_row[c]));
        }
      } else {
        for (std::size_t c = 0; c < C; ++c) {
          orow[c] += lrq_prod(coeff * (near_row[c] + far_row[c]));
        }
      }
    }
    for (std::size_t c = 0; c < C; ++c) orow[c] = lrq_int(orow[c]);
  }
  lrq_prod.commit(t_prod);
  lrq_int.commit(t_int);
}

void hbf_out(std::int64_t* __restrict data,
             const std::int64_t* __restrict half_path,
             const std::int64_t* const* __restrict branches, std::size_t n1,
             std::int64_t half_coeff, const std::int64_t* __restrict f1,
             std::size_t out_frames, std::size_t C,
             const soa::Requant& rq_prod, const soa::Requant& rq_out,
             soa::RequantTally& t_prod, soa::RequantTally& t_out) {
  Rq lrq_prod(rq_prod);
  Rq lrq_out(rq_out);
  for (std::size_t m = 0; m < out_frames; ++m) {
    std::int64_t* const orow = data + m * C;
    const std::int64_t* const hrow = half_path + m * C;
    for (std::size_t c = 0; c < C; ++c) {
      orow[c] = lrq_prod(half_coeff * hrow[c]);
    }
    for (std::size_t i = 0; i < n1; ++i) {
      const std::int64_t coeff = f1[i];
      const std::int64_t* const brow = branches[i] + m * C;
      for (std::size_t c = 0; c < C; ++c) {
        orow[c] += lrq_prod(coeff * brow[c]);
      }
    }
    for (std::size_t c = 0; c < C; ++c) orow[c] = lrq_out(orow[c]);
  }
  lrq_prod.commit(t_prod);
  lrq_out.commit(t_out);
}

void scaler_map(std::int64_t* __restrict data, std::size_t count,
                const fx::CsdDigit* __restrict digits, std::size_t n_digits,
                int frac_bits, const soa::Requant& rq,
                soa::RequantTally& tally) {
  Rq lrq(rq);
  for (std::size_t i = 0; i < count; ++i) {
    const std::int64_t x = data[i];
    std::int64_t acc = 0;
    for (std::size_t d = 0; d < n_digits; ++d) {
      const int shift = digits[d].position + frac_bits;  // >= 0 by design
      const std::int64_t term = (shift >= 0) ? (x << shift) : (x >> -shift);
      acc += digits[d].sign > 0 ? term : -term;
    }
    data[i] = lrq(acc);
  }
  lrq.commit(tally);
}

void requant_rows(std::int64_t* __restrict data, std::size_t count,
                  const soa::Requant& rq, soa::RequantTally& tally) {
  Rq lrq(rq);
  for (std::size_t i = 0; i < count; ++i) data[i] = lrq(data[i]);
  lrq.commit(tally);
}

}  // namespace

// extern + initializer: namespace-scope const would otherwise get internal
// linkage and be invisible to the dispatcher in simd.cpp.
extern const BankKernels kTable;
const BankKernels kTable = {
    cic_stage, fir_emit, hbf_g2, hbf_out, scaler_map, requant_rows,
};

}  // namespace DSADC_SIMD_NS
}  // namespace dsadc::decim::simd
