// 45 nm standard-cell technology model.
//
// Substitute for the paper's Synopsys/Cadence backend: instead of a real
// liberty file we carry per-cell switching energy, leakage and area
// constants of representative 45 nm cells at 1.1 V (order-of-magnitude
// values consistent with published 45 nm characterizations, e.g. the
// NanGate 45 nm open cell library). Absolute numbers will not match the
// authors' proprietary library; per-stage *ratios* (Table II / Fig. 13)
// are driven by clock rate x width x activity and are preserved.
#pragma once

namespace dsadc::synth {

struct CellLibrary {
  double vdd = 1.1;  ///< volts

  // Full adder (per bit of an adder/subtractor).
  double fa_energy_j = 4.0e-15;   ///< J per output toggle
  double fa_leakage_w = 25.0e-9;  ///< W
  double fa_area_um2 = 4.5;

  // D flip-flop (per register bit).
  double ff_clk_energy_j = 1.6e-15;   ///< J per clock edge (internal load)
  double ff_data_energy_j = 4.0e-15;  ///< J per data toggle
  double ff_leakage_w = 40.0e-9;      ///< W
  double ff_area_um2 = 6.5;

  // 2:1 mux (per bit of a kMux node): roughly a transmission-gate pair,
  // about half a full adder in energy and area.
  double mux_energy_j = 1.4e-15;   ///< J per output toggle
  double mux_leakage_w = 10.0e-9;  ///< W
  double mux_area_um2 = 2.0;

  // Clock distribution: energy charged per clock-domain cycle (spine +
  // local buffers), independent of register count. This is what makes the
  // 640 MHz first Sinc stage the dominant power consumer in Table II.
  double clock_spine_energy_j = 1.9e-12;

  // Wiring / mux / glue overhead, applied as a multiplier.
  double overhead_factor = 1.25;

  /// Glitch multiplier for combinational adder chains that are NOT
  /// retimed/pipelined: spurious transitions grow with logic depth
  /// (Section IV motivates retiming precisely to cut this).
  double glitch_factor_unretimed = 2.2;
};

/// The default 45 nm @ 1.1 V model used throughout the reproduction.
CellLibrary default_45nm();

}  // namespace dsadc::synth
