#include "src/synth/celllib.h"

namespace dsadc::synth {

CellLibrary default_45nm() { return CellLibrary{}; }

}  // namespace dsadc::synth
