#include "src/synth/estimate.h"

#include <cmath>
#include <set>
#include <stdexcept>

#include "src/analyze/opt/opt.h"

namespace dsadc::synth {

CellCounts map_cells(const rtl::Module& module) {
  CellCounts c;
  for (const auto& n : module.nodes()) {
    switch (n.kind) {
      case rtl::OpKind::kAdd:
      case rtl::OpKind::kSub:
      case rtl::OpKind::kNeg:
        c.adder_bits += static_cast<std::size_t>(n.width);
        c.adders += 1;
        break;
      case rtl::OpKind::kRequant:
        // Rounding adder + saturation comparator ~ one adder of the
        // output width.
        c.adder_bits += static_cast<std::size_t>(n.width);
        c.adders += 1;
        break;
      case rtl::OpKind::kMux:
        c.mux_bits += static_cast<std::size_t>(n.width);
        c.muxes += 1;
        break;
      case rtl::OpKind::kReg:
      case rtl::OpKind::kDecimate:
        c.register_bits += static_cast<std::size_t>(n.width);
        c.registers += 1;
        break;
      default:
        break;  // shifts and constants are wiring
    }
  }
  return c;
}

Estimate estimate(const rtl::Module& module, const rtl::Activity& activity,
                  double base_clock_hz, const CellLibrary& lib,
                  const rtl::BuildOptions& options) {
  if (activity.bit_toggles.size() != module.size()) {
    throw std::invalid_argument("estimate: activity/module size mismatch");
  }
  Estimate e = estimate_area(module, lib);
  const double sim_seconds =
      static_cast<double>(activity.base_ticks) / base_clock_hz;
  if (sim_seconds <= 0.0) throw std::invalid_argument("estimate: empty run");

  const double glitch =
      options.retimed ? 1.0 : lib.glitch_factor_unretimed;
  double energy = 0.0;
  for (std::size_t i = 0; i < module.size(); ++i) {
    const auto& n = module.nodes()[i];
    const double toggles = static_cast<double>(activity.bit_toggles[i]);
    const double updates = static_cast<double>(activity.updates[i]);
    switch (n.kind) {
      case rtl::OpKind::kAdd:
      case rtl::OpKind::kSub:
      case rtl::OpKind::kNeg:
        energy += toggles * lib.fa_energy_j * glitch;
        break;
      case rtl::OpKind::kRequant:
        energy += toggles * lib.fa_energy_j;
        break;
      case rtl::OpKind::kMux:
        energy += toggles * lib.mux_energy_j;
        break;
      case rtl::OpKind::kReg:
      case rtl::OpKind::kDecimate:
        energy += updates * static_cast<double>(n.width) * lib.ff_clk_energy_j;
        energy += toggles * lib.ff_data_energy_j;
        break;
      default:
        break;
    }
  }
  // Clock spine: one charge per cycle of each distinct clock domain used
  // by sequential cells in this module.
  std::set<int> domains;
  for (const auto& n : module.nodes()) {
    if (n.kind == rtl::OpKind::kReg || n.kind == rtl::OpKind::kDecimate) {
      domains.insert(n.clock_div);
    }
  }
  for (int div : domains) {
    energy += lib.clock_spine_energy_j *
              (static_cast<double>(activity.base_ticks) / div);
  }
  e.dynamic_power_w = energy * lib.overhead_factor / sim_seconds;
  return e;
}

Estimate estimate_area(const rtl::Module& module, const CellLibrary& lib) {
  Estimate e;
  e.name = module.name();
  e.cells = map_cells(module);
  e.leakage_power_w =
      (static_cast<double>(e.cells.adder_bits) * lib.fa_leakage_w +
       static_cast<double>(e.cells.register_bits) * lib.ff_leakage_w +
       static_cast<double>(e.cells.mux_bits) * lib.mux_leakage_w) *
      lib.overhead_factor;
  e.area_mm2 = (static_cast<double>(e.cells.adder_bits) * lib.fa_area_um2 +
                static_cast<double>(e.cells.register_bits) * lib.ff_area_um2 +
                static_cast<double>(e.cells.mux_bits) * lib.mux_area_um2) *
               lib.overhead_factor / 1e6;
  return e;
}

Estimate estimate_area_proven(const rtl::Module& module,
                              const CellLibrary& lib) {
  const analyze::opt::OptResult opt = analyze::opt::optimize(module);
  Estimate e = estimate_area(opt.module, lib);
  e.name = module.name();
  return e;
}

PowerProfile profile_chain(const decim::ChainConfig& config,
                           const std::vector<std::int32_t>& codes,
                           double base_clock_hz, const CellLibrary& lib,
                           const rtl::BuildOptions& options) {
  // Behavioral run to recover each stage's input stream.
  decim::DecimationChain chain(config);
  std::vector<decim::StageProbe> probes;
  (void)chain.process(codes, &probes);
  // probes: input, sinc.._1, sinc.._2, sinc.._3, halfband, scaler, equalizer.
  if (probes.size() != config.cic_stages.size() + 4) {
    throw std::runtime_error("profile_chain: unexpected probe layout");
  }

  const rtl::BuiltChain built = rtl::build_chain(config, options);
  if (built.stages.size() != probes.size() - 1) {
    throw std::runtime_error("profile_chain: stage/probe mismatch");
  }

  // CIC DC gain (for the relabel in front of the halfband).
  int gain_log2 = 0;
  for (const auto& s : config.cic_stages) {
    gain_log2 += s.order * static_cast<int>(std::log2(s.decimation));
  }

  PowerProfile profile;
  for (std::size_t i = 0; i < built.stages.size(); ++i) {
    const rtl::BuiltStage& stage = built.stages[i];
    // The stage's input stream is the previous probe's samples.
    std::vector<std::int64_t> stream = probes[i].samples;
    if (built.stage_names[i] == "halfband") {
      // Apply the CIC-gain relabel exactly as the chain does.
      for (auto& v : stream) {
        v = fx::requantize(v, gain_log2, config.hbf_in_format,
                           fx::Rounding::kRoundNearest,
                           fx::Overflow::kSaturate);
      }
    }
    rtl::Simulator sim(stage.module);
    const rtl::SimResult run =
        sim.run({{stage.in, std::span<const std::int64_t>(stream)}});
    Estimate e =
        estimate(stage.module, run.activity, base_clock_hz, lib, options);
    e.name = built.stage_names[i];
    profile.total_dynamic_w += e.dynamic_power_w;
    profile.total_leakage_w += e.leakage_power_w;
    profile.total_area_mm2 += e.area_mm2;
    profile.stages.push_back(std::move(e));
  }
  return profile;
}

}  // namespace dsadc::synth
