// Activity-driven power and area estimation (PrimeTime-PX substitute).
//
// Dynamic power comes from the RTL simulator's per-node bit-toggle counts
// under the paper's stimulus (a 5 MHz tone at the MSA); leakage and area
// come from the mapped cell counts. Per-stage reports regenerate Table II,
// Fig. 12 (area) and Fig. 13 (power distribution).
#pragma once

#include <string>
#include <vector>

#include "src/rtl/builders.h"
#include "src/rtl/sim.h"
#include "src/synth/celllib.h"

namespace dsadc::synth {

/// Mapped-cell inventory of a module.
struct CellCounts {
  std::size_t adder_bits = 0;     ///< full-adder cells
  std::size_t register_bits = 0;  ///< flip-flop cells
  std::size_t mux_bits = 0;       ///< 2:1 mux cells
  std::size_t adders = 0;         ///< adder instances (word level)
  std::size_t registers = 0;      ///< register instances (word level)
  std::size_t muxes = 0;          ///< mux instances (word level)
};

CellCounts map_cells(const rtl::Module& module);

/// Power/area result for one module under one stimulus.
struct Estimate {
  std::string name;
  double dynamic_power_w = 0.0;
  double leakage_power_w = 0.0;
  double area_mm2 = 0.0;
  CellCounts cells;
};

/// Estimate power for a module given a simulation run at base clock
/// frequency `base_clock_hz`. `options` supplies the retiming flag (glitch
/// multiplier on combinational adders when not retimed).
Estimate estimate(const rtl::Module& module, const rtl::Activity& activity,
                  double base_clock_hz, const CellLibrary& lib,
                  const rtl::BuildOptions& options);

/// Area-only estimate (no simulation needed).
Estimate estimate_area(const rtl::Module& module, const CellLibrary& lib);

/// Area/leakage from *proven* widths: runs the proof-carrying netlist
/// optimizer (src/analyze/opt) over the module and prices the optimized
/// netlist -- dead logic dropped, constants folded, every width shrunk to
/// its interval-proven requirement. Reported under the original module's
/// name so stage tables line up with estimate_area.
Estimate estimate_area_proven(const rtl::Module& module,
                              const CellLibrary& lib);

/// Per-stage power profile of the whole chain: runs the per-stage modules
/// with the stage's own input stream taken from a full-chain behavioral
/// run (the same composition the paper uses for Table II).
struct PowerProfile {
  std::vector<Estimate> stages;
  double total_dynamic_w = 0.0;
  double total_leakage_w = 0.0;
  double total_area_mm2 = 0.0;
};

PowerProfile profile_chain(const decim::ChainConfig& config,
                           const std::vector<std::int32_t>& codes,
                           double base_clock_hz, const CellLibrary& lib,
                           const rtl::BuildOptions& options);

}  // namespace dsadc::synth
