// Saramaki tapped-cascade half-band filter design (Fig. 7 of the paper;
// equivalent of the Delta-Sigma Toolbox's `designHBF`).
//
// The composite filter is
//
//   H(z) = 0.5 z^-D + sum_{i=1..n1} f1_i * [F2(z)]^(2i-1) * z^-(D-(2i-1)d2)
//
// where F2 is a small symmetric subfilter with only odd-offset taps
// (zero-phase response F2hat(w) = sum_j f2_j cos((2j-1) w), |F2hat| <= 0.5)
// and D = (2 n1 - 1) d2 with d2 = 2 n2 - 1 the subfilter delay. Because
// cos((2m-1)w) = T_{2m-1}(cos w), substituting cos(w) -> 2 F2hat(w) turns a
// low-order half-band *prototype* into a sharp composite: the f1 taps are
// twice the prototype's odd taps, and F2 supplies the frequency warping.
// The paper's instance uses n1 = 3, n2 = 6: five F2 blocks in cascade,
// three outer taps, 110th order, >= 90 dB stopband, adders only.
//
// All coefficients are CSD-encoded with a bounded digit count; the search
// explores (n1, n2, digit-count) combinations and returns the cheapest
// design meeting the attenuation target.
#pragma once

#include <cstddef>
#include <vector>

#include "src/fixedpoint/csd.h"

namespace dsadc::design {

struct SaramakiHbf {
  /// Outer structure taps in the POWER basis: the hardware computes
  /// H = 0.5 + sum_i f1_i * (2 F2hat)^(2i-1) (the cascade taps of Fig. 7).
  /// The minimax design happens in the Chebyshev basis and is converted.
  std::vector<double> f1;
  std::vector<double> f2;  ///< subfilter taps, size n2
  std::vector<dsadc::fx::Csd> f1_csd;
  std::vector<dsadc::fx::Csd> f2_csd;
  std::vector<double> taps;  ///< composite impulse response (quantized)
  std::size_t n1 = 0;
  std::size_t n2 = 0;
  double passband_edge = 0.0;
  double stopband_atten_db = 0.0;  ///< achieved, from quantized taps
  double passband_ripple_db = 0.0;
  /// Total adder count: CSD shift-add adders + structural adders of the
  /// tapped-cascade network (the figure the paper quotes as "124 adders").
  std::size_t adder_count = 0;

  std::size_t order() const { return taps.empty() ? 0 : taps.size() - 1; }
};

/// Zero-phase response of a subfilter: sum_j f2[j] cos((2j-1) w), with
/// w = 2 pi f.
double f2_zero_phase(const std::vector<double>& f2, double f);

/// Composite zero-phase response 0.5 + sum_i f1[i] * (2 F2hat(w))^(2i-1)
/// (f1 in the power basis, as stored in SaramakiHbf).
double saramaki_zero_phase(const std::vector<double>& f1,
                           const std::vector<double>& f2, double f);

/// Convert outer taps from the Chebyshev basis (sum c_i T_{2i-1}) to the
/// power basis (sum p_k y^(2k-1)); both span the same odd polynomials.
std::vector<double> chebyshev_to_power_basis(const std::vector<double>& c);

/// Expand the tapped cascade into a composite impulse response.
std::vector<double> saramaki_impulse_response(const std::vector<double>& f1,
                                              const std::vector<double>& f2);

/// Design a Saramaki HBF with fixed structure (n1, n2) and coefficient
/// quantization to `frac_bits` fractional bits / at most `max_digits` CSD
/// digits per coefficient (0 = unquantized).
SaramakiHbf design_saramaki_hbf(std::size_t n1, std::size_t n2, double fp,
                                int frac_bits = 24,
                                std::size_t max_digits = 0);

/// Search over candidate (n1, n2) pairs and CSD digit budgets for the
/// cheapest design achieving `atten_db` at passband edge `fp`
/// (deterministic counterpart of designHBF's random search).
SaramakiHbf design_saramaki_hbf_auto(double fp, double atten_db,
                                     int frac_bits = 24);

/// Structural adder count for the tapped cascade (excluding CSD adders):
/// each F2 instance uses n2 symmetric pre-adders + (n2-1) product-tree
/// adders; the outer stage sums n1 branch products plus the 0.5 path.
std::size_t saramaki_structural_adders(std::size_t n1, std::size_t n2);

}  // namespace dsadc::design
