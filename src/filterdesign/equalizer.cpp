#include "src/filterdesign/equalizer.h"

#include <cmath>
#include <stdexcept>

#include "src/dsp/freqz.h"
#include "src/dsp/spectrum.h"
#include "src/filterdesign/remez.h"

namespace dsadc::design {

EqualizerResult design_droop_equalizer(
    std::size_t num_taps, const std::function<double(double)>& droop,
    double fp) {
  if (!droop) throw std::invalid_argument("design_droop_equalizer: no droop fn");
  if (!(fp > 0.0 && fp <= 0.5)) {
    throw std::invalid_argument("design_droop_equalizer: fp out of range");
  }
  Band band;
  band.f0 = 0.0;
  band.f1 = std::min(fp, 0.4999);
  band.desired = [droop](double f) {
    const double d = droop(f);
    if (d <= 1e-6) {
      throw std::runtime_error("design_droop_equalizer: droop too deep");
    }
    return 1.0 / d;
  };
  // Weighting by droop(f) makes the *compensated* error equiripple:
  // |W (EQ - 1/droop)| = |droop * EQ - 1|.
  band.weight = [droop](double f) { return std::max(1e-6, droop(f)); };
  const Band bands[] = {band};
  const RemezResult r = remez(num_taps, bands);

  EqualizerResult out;
  out.taps = r.taps;
  out.passband_edge = band.f1;
  // Measure the realized compensated ripple.
  double lo = 1e300, hi = -1e300;
  const std::size_t n = 2048;
  for (std::size_t k = 0; k <= n; ++k) {
    const double f = band.f1 * static_cast<double>(k) / static_cast<double>(n);
    const double m =
        droop(f) * std::abs(dsp::fir_response_at(out.taps, f));
    const double db = dsp::amplitude_db(m);
    lo = std::min(lo, db);
    hi = std::max(hi, db);
  }
  out.residual_ripple_db = hi - lo;
  return out;
}

std::vector<double> compensated_response_db(
    const EqualizerResult& eq, const std::function<double(double)>& droop,
    std::size_t n) {
  std::vector<double> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double f =
        eq.passband_edge * static_cast<double>(k) / static_cast<double>(n - 1);
    out[k] = dsp::amplitude_db(droop(f) *
                               std::abs(dsp::fir_response_at(eq.taps, f)));
  }
  return out;
}

}  // namespace dsadc::design
