// Parks-McClellan (Remez exchange) linear-phase FIR design.
//
// Equivalent of MATLAB's `firpm`, which the paper uses for the droop
// equalizer (Section VI). Supports symmetric Type I (odd length) and
// Type II (even length) filters with arbitrary desired-response and weight
// functions per band, which is required for the inverse-sinc equalizer.
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace dsadc::design {

/// A frequency band for the approximation problem. Frequencies are in
/// cycles/sample, 0 <= f0 < f1 <= 0.5.
struct Band {
  double f0 = 0.0;
  double f1 = 0.5;
  /// Desired real response D(f) on the band.
  std::function<double(double)> desired;
  /// Error weight W(f) on the band (larger = tighter).
  std::function<double(double)> weight;
};

/// Convenience constructors for constant desired/weight bands.
Band const_band(double f0, double f1, double desired, double weight = 1.0);

/// Result of a Remez design.
struct RemezResult {
  std::vector<double> taps;   ///< symmetric impulse response
  double delta = 0.0;         ///< final equiripple error (weighted)
  int iterations = 0;
  bool converged = false;
};

/// Design a length-`num_taps` symmetric linear-phase FIR minimizing the
/// weighted Chebyshev error over the given bands. Even `num_taps` gives a
/// Type II filter (forced zero at f = 0.5).
///
/// `grid_density` controls the dense-grid resolution (points per basis
/// function). Throws std::invalid_argument on malformed bands and
/// std::runtime_error if the exchange fails to make progress.
RemezResult remez(std::size_t num_taps, std::span<const Band> bands,
                  int grid_density = 16, int max_iterations = 60);

/// Classic lowpass helper: passband [0, fpass] at gain 1, stopband
/// [fstop, 0.5] at gain 0, with the given relative weights.
RemezResult remez_lowpass(std::size_t num_taps, double fpass, double fstop,
                          double wpass = 1.0, double wstop = 1.0);

/// Estimate of the required lowpass order (Herrmann/Kaiser formula),
/// returned as a tap count.
std::size_t remez_order_estimate(double ripple_db, double atten_db,
                                 double transition_width);

}  // namespace dsadc::design
