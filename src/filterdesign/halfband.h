// Equiripple half-band FIR prototype design.
//
// Half-band filters have all even-offset taps equal to zero except the
// center tap of 0.5, so a decimate-by-2 stage needs half the arithmetic of
// a general FIR (Section V). This module designs exact half-band filters
// with the single-band Remez trick (Vaidyanathan-Nguyen): design a Type II
// filter G of length 2J over the single band [0, 2*fp], then interleave:
// H(z) = (z^-(2J-1) + G(z^2)) / 2, length 4J-1.
#pragma once

#include <cstddef>
#include <vector>

namespace dsadc::design {

struct HalfbandResult {
  std::vector<double> taps;   ///< length 4J-1, odd taps zero except center
  double passband_edge = 0.0; ///< fp used, cycles/sample
  double ripple = 0.0;        ///< |H - 1| passband ripple == stopband ripple
  double stopband_atten_db = 0.0;
  std::size_t j = 0;          ///< the J parameter (length = 4J-1)
};

/// Design a length-(4J-1) half-band lowpass with passband [0, fp] and
/// stopband [0.5-fp, 0.5]. Requires 0 < fp < 0.25.
HalfbandResult design_halfband(std::size_t j, double fp);

/// Smallest J meeting `atten_db` stopband attenuation at passband edge
/// `fp`; searches j in [2, max_j]. Throws if unreachable.
HalfbandResult design_halfband_for_attenuation(double fp, double atten_db,
                                               std::size_t max_j = 64);

/// True iff `taps` has the half-band structure (odd-offset zeros, center
/// 0.5) within `tol`.
bool is_halfband(const std::vector<double>& taps, double tol = 1e-12);

}  // namespace dsadc::design
