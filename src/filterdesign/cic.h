// Sinc^K (CIC / Hogenauer) decimation filter design equations.
//
// Section IV of the paper: three Sinc stages (Sinc4, Sinc4, Sinc6) perform
// the initial decimate-by-8, chosen so every stage keeps >= 85 dB of
// alias-band rejection against the 5th-order shaped quantization noise.
// This module provides the design-time analysis (transfer function, alias
// rejection, droop, register sizing per Hogenauer); the bit-true hardware
// model lives in src/decimator/cic.h.
#pragma once

#include <cstddef>
#include <vector>

namespace dsadc::design {

/// Static description of one Sinc^K decimate-by-M stage.
struct CicSpec {
  int order = 4;        ///< K, number of integrator/comb pairs
  int decimation = 2;   ///< M
  int input_bits = 4;   ///< Bin at this stage's input

  /// Hogenauer register width: the paper's Eq. (2) gives the MSB index
  /// Bmax = K*log2(M) + Bin - 1; the physical register needs Bmax + 1 bits.
  int register_width() const;
  /// DC gain of the unnormalized filter: M^K.
  double dc_gain() const;
};

/// |H(f)| of an unnormalized-to-unity Sinc^K filter, f in cycles/sample at
/// the stage input rate: |sin(pi f M) / (M sin(pi f))|^K.
double cic_magnitude(const CicSpec& spec, double f);

/// Impulse response of the (1/M^K-normalized) Sinc^K filter at the input
/// rate: the K-fold convolution of a length-M boxcar.
std::vector<double> cic_impulse_response(const CicSpec& spec);

/// Passband droop in dB at frequency `f` (cycles/sample at input rate);
/// positive value = attenuation relative to DC.
double cic_droop_db(const CicSpec& spec, double f);

/// Worst-case alias-band rejection in dB: the minimum attenuation over all
/// fold bands m/M +- fb (m = 1..M-1), where `fb` is the protected band
/// in cycles/sample at the stage input rate.
double cic_alias_rejection_db(const CicSpec& spec, double fb);

/// Smallest K whose Sinc^K decimate-by-M stage achieves `atten_db` of
/// alias rejection for protected band `fb`. Returns 0 if not achievable
/// within max_order.
int cic_min_order(int decimation, double fb, double atten_db,
                  int max_order = 12);

/// The paper's Sinc cascade: Sinc4(/2), Sinc4(/2), Sinc6(/2), with input
/// word lengths 4, 8, 12 bits.
std::vector<CicSpec> paper_sinc_cascade();

/// Composite impulse response of a CIC cascade referred to the input rate
/// of the first stage (later stages' taps upsampled by the accumulated
/// decimation).
std::vector<double> cic_cascade_response(const std::vector<CicSpec>& stages);

}  // namespace dsadc::design
