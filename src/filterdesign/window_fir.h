// Kaiser windowed-sinc FIR design.
//
// Robust at arbitrary lengths (the Remez exchange gets expensive and
// delicate beyond a few hundred taps), this is the designer for the
// single-stage baseline decimator that Section III argues against: one
// brute-force lowpass at the full input rate instead of the multistage
// Sinc/halfband chain.
#pragma once

#include <cstddef>
#include <vector>

namespace dsadc::design {

/// Windowed-sinc lowpass: cutoff fc (cycles/sample, the -6 dB point),
/// `num_taps` taps, Kaiser window with `beta`.
std::vector<double> kaiser_lowpass(std::size_t num_taps, double fc,
                                   double beta);

/// Design for a spec: passband edge, stopband edge, stopband attenuation.
/// Picks the Kaiser beta and length from the standard formulas; returns
/// the taps (unity DC gain).
std::vector<double> kaiser_lowpass_for_spec(double fpass, double fstop,
                                            double atten_db);

/// The single-stage baseline decimator for a Table-I-style spec: one FIR
/// at the modulator rate covering the whole decimation in a single step.
struct SingleStageBaseline {
  std::vector<double> taps;
  std::size_t decimation = 0;
  double mac_rate_per_sample = 0.0;  ///< multiplies per input sample
  std::size_t adders = 0;            ///< CSD adder estimate at 14 bits
};

SingleStageBaseline design_single_stage_baseline(double input_rate_hz,
                                                 double output_rate_hz,
                                                 double passband_edge_hz,
                                                 double stopband_edge_hz,
                                                 double atten_db);

}  // namespace dsadc::design
