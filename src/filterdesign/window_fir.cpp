#include "src/filterdesign/window_fir.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "src/dsp/window.h"
#include "src/fixedpoint/csd.h"

namespace dsadc::design {

std::vector<double> kaiser_lowpass(std::size_t num_taps, double fc,
                                   double beta) {
  if (num_taps < 3) throw std::invalid_argument("kaiser_lowpass: too short");
  if (!(fc > 0.0 && fc < 0.5)) {
    throw std::invalid_argument("kaiser_lowpass: fc out of range");
  }
  const std::vector<double> w =
      dsp::make_window(dsp::WindowKind::kKaiser, num_taps, beta);
  std::vector<double> h(num_taps);
  const double mid = static_cast<double>(num_taps - 1) / 2.0;
  double sum = 0.0;
  for (std::size_t n = 0; n < num_taps; ++n) {
    const double t = static_cast<double>(n) - mid;
    const double x = 2.0 * std::numbers::pi * fc * t;
    const double sinc = (std::abs(t) < 1e-12)
                            ? 2.0 * fc
                            : std::sin(x) / (std::numbers::pi * t);
    h[n] = sinc * w[n];
    sum += h[n];
  }
  for (auto& v : h) v /= sum;  // unity DC gain
  return h;
}

std::vector<double> kaiser_lowpass_for_spec(double fpass, double fstop,
                                            double atten_db) {
  if (!(0.0 < fpass && fpass < fstop && fstop <= 0.5)) {
    throw std::invalid_argument("kaiser_lowpass_for_spec: bad band edges");
  }
  const double width = fstop - fpass;
  const double beta = dsp::kaiser_beta_for_attenuation(atten_db);
  std::size_t n = dsp::kaiser_order_for(atten_db, width) + 1;
  if (n % 2 == 0) ++n;  // Type I
  return kaiser_lowpass(n, 0.5 * (fpass + fstop), beta);
}

SingleStageBaseline design_single_stage_baseline(double input_rate_hz,
                                                 double output_rate_hz,
                                                 double passband_edge_hz,
                                                 double stopband_edge_hz,
                                                 double atten_db) {
  SingleStageBaseline out;
  out.decimation =
      static_cast<std::size_t>(std::llround(input_rate_hz / output_rate_hz));
  out.taps = kaiser_lowpass_for_spec(passband_edge_hz / input_rate_hz,
                                     stopband_edge_hz / input_rate_hz,
                                     atten_db);
  // Polyphase implementation: every tap fires once per *output* sample, so
  // the multiply rate per input sample is taps / M (symmetry halves it).
  out.mac_rate_per_sample =
      static_cast<double>(out.taps.size()) /
      (2.0 * static_cast<double>(out.decimation));
  const auto csd = dsadc::fx::csd_encode_taps(out.taps, 14);
  out.adders = dsadc::fx::total_adder_cost(csd) + out.taps.size() / 2;
  return out;
}

}  // namespace dsadc::design
