// Passband droop equalizer design (Section VI of the paper).
//
// The Sinc cascade droops several dB across the 20 MHz band; a symmetric
// FIR at the 40 MHz output rate flattens the composite response. The
// desired response handed to the Remez exchange is the reciprocal of the
// cascade droop referred to the output rate, exactly how the paper uses
// MATLAB's firpm with an inverse-sinc desired function.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace dsadc::design {

struct EqualizerResult {
  std::vector<double> taps;       ///< symmetric, length = order + 1
  double passband_edge = 0.0;     ///< cycles/sample at the equalizer rate
  double residual_ripple_db = 0.0;  ///< |droop * EQ| ripple over the band
};

/// Design a droop equalizer of `num_taps` taps. `droop` maps frequency in
/// cycles/sample *at the equalizer's rate* to the cascade's magnitude
/// response (<= 1 in the droop region); the equalizer approximates
/// 1/droop over [0, fp]. The weight is proportional to droop(f) so that
/// the *compensated* response |droop * EQ| is equiripple.
EqualizerResult design_droop_equalizer(
    std::size_t num_taps, const std::function<double(double)>& droop,
    double fp);

/// Compensated magnitude |droop(f)| * |EQ(f)| sampled on `n` points over
/// [0, fp]; used by the Fig. 10 bench.
std::vector<double> compensated_response_db(
    const EqualizerResult& eq, const std::function<double(double)>& droop,
    std::size_t n);

}  // namespace dsadc::design
