#include "src/filterdesign/saramaki.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "src/dsp/chebyshev.h"
#include "src/dsp/linalg.h"
#include "src/dsp/freqz.h"
#include "src/filterdesign/halfband.h"
#include "src/obs/trace.h"

namespace dsadc::design {
namespace {

constexpr double kPi = std::numbers::pi;

/// FIR taps of the F2 subfilter: length 4 n2 - 1, taps f2[j]/2 at offsets
/// +-(2j-1) from the center, zero elsewhere (odd-offset structure).
std::vector<double> f2_taps(const std::vector<double>& f2) {
  const std::size_t n2 = f2.size();
  const std::size_t len = 4 * n2 - 1;
  const std::size_t mid = 2 * n2 - 1;
  std::vector<double> h(len, 0.0);
  for (std::size_t j = 1; j <= n2; ++j) {
    h[mid - (2 * j - 1)] = f2[j - 1] / 2.0;
    h[mid + (2 * j - 1)] = f2[j - 1] / 2.0;
  }
  return h;
}

/// Quantize a coefficient vector to CSD with the given precision/digits.
std::vector<dsadc::fx::Csd> quantize_csd(const std::vector<double>& v,
                                         int frac_bits,
                                         std::size_t max_digits) {
  std::vector<dsadc::fx::Csd> out;
  out.reserve(v.size());
  for (double c : v) {
    out.push_back(max_digits == 0
                      ? dsadc::fx::csd_encode(c, frac_bits)
                      : dsadc::fx::csd_encode_limited(c, frac_bits, max_digits));
  }
  return out;
}

std::vector<double> csd_values(const std::vector<dsadc::fx::Csd>& v) {
  std::vector<double> out;
  out.reserve(v.size());
  for (const auto& c : v) out.push_back(c.to_double());
  return out;
}

/// Minimax design of the outer taps: approximate -0.5 on the stopband
/// image X = { 2 F2hat(w) : w in stopband } with sum_i f1_i T_{2i-1}(x)
/// (the composite's half-band symmetry makes the passband follow
/// automatically). Small dedicated Remez exchange in the x domain.
std::vector<double> optimize_f1(const std::vector<double>& f2,
                                std::size_t n1, double fp) {
  // Stopband x image: continuous, so an interval [x_lo, x_hi].
  double x_lo = 1.0, x_hi = -1.0;
  const std::size_t nimg = 4096;
  for (std::size_t k = 0; k <= nimg; ++k) {
    const double f =
        (0.5 - fp) + fp * static_cast<double>(k) / static_cast<double>(nimg);
    const double x = 2.0 * f2_zero_phase(f2, f);
    x_lo = std::min(x_lo, x);
    x_hi = std::max(x_hi, x);
  }
  // Dense grid on [x_lo, x_hi].
  const std::size_t ng = 2048;
  std::vector<double> xs(ng);
  for (std::size_t k = 0; k < ng; ++k) {
    xs[k] = x_lo + (x_hi - x_lo) * static_cast<double>(k) /
                       static_cast<double>(ng - 1);
  }
  // Initial extrema: uniform.
  std::vector<std::size_t> ext(n1 + 1);
  for (std::size_t i = 0; i <= n1; ++i) ext[i] = i * (ng - 1) / n1;

  std::vector<double> f1(n1, 0.0);
  for (int iter = 0; iter < 40; ++iter) {
    // Solve for (f1, delta): sum_i f1_i T_{2i-1}(x_j) + (-1)^j d = -0.5.
    dsp::Matrix m(n1 + 1, n1 + 1);
    std::vector<double> rhs(n1 + 1, -0.5);
    for (std::size_t j = 0; j <= n1; ++j) {
      for (std::size_t i = 1; i <= n1; ++i) {
        m.at(j, i - 1) = dsp::chebyshev_t(2 * i - 1, xs[ext[j]]);
      }
      m.at(j, n1) = (j % 2 == 0) ? 1.0 : -1.0;
    }
    const std::vector<double> sol = dsp::solve_linear(std::move(m), std::move(rhs));
    for (std::size_t i = 0; i < n1; ++i) f1[i] = sol[i];

    // Error over the grid; exchange extrema.
    std::vector<double> err(ng);
    for (std::size_t k = 0; k < ng; ++k) {
      err[k] = dsp::chebyshev_odd_series(
                   std::span<const double>(f1).subspan(0), xs[k]) -
               (-0.5);
    }
    std::vector<std::size_t> cand;
    for (std::size_t k = 0; k < ng; ++k) {
      const bool edge = (k == 0) || (k + 1 == ng);
      const bool lok = (k == 0) || std::abs(err[k]) >= std::abs(err[k - 1]);
      const bool rok = (k + 1 == ng) || std::abs(err[k]) >= std::abs(err[k + 1]);
      if (edge || (lok && rok)) cand.push_back(k);
    }
    std::vector<std::size_t> alt;
    for (std::size_t idx : cand) {
      if (!alt.empty() && (err[alt.back()] > 0) == (err[idx] > 0)) {
        if (std::abs(err[idx]) > std::abs(err[alt.back()])) alt.back() = idx;
      } else {
        alt.push_back(idx);
      }
    }
    while (alt.size() > n1 + 1) {
      if (std::abs(err[alt.front()]) < std::abs(err[alt.back()])) {
        alt.erase(alt.begin());
      } else {
        alt.pop_back();
      }
    }
    if (alt.size() < n1 + 1) break;
    if (std::equal(alt.begin(), alt.end(), ext.begin(), ext.end())) break;
    ext = std::move(alt);
  }
  return f1;
}

}  // namespace

double f2_zero_phase(const std::vector<double>& f2, double f) {
  const double w = 2.0 * kPi * f;
  double acc = 0.0;
  for (std::size_t j = 1; j <= f2.size(); ++j) {
    acc += f2[j - 1] * std::cos(static_cast<double>(2 * j - 1) * w);
  }
  return acc;
}

double saramaki_zero_phase(const std::vector<double>& f1,
                           const std::vector<double>& f2, double f) {
  const double x = 2.0 * f2_zero_phase(f2, f);
  double acc = 0.5;
  double xp = x;  // x^(2i-1)
  for (std::size_t i = 1; i <= f1.size(); ++i) {
    acc += f1[i - 1] * xp;
    xp *= x * x;
  }
  return acc;
}

std::vector<double> chebyshev_to_power_basis(const std::vector<double>& c) {
  const std::size_t n1 = c.size();
  std::vector<double> p(n1, 0.0);
  for (std::size_t i = 1; i <= n1; ++i) {
    const std::vector<double> tc = dsp::chebyshev_t_coeffs(2 * i - 1);
    for (std::size_t k = 1; k <= i; ++k) {
      p[k - 1] += c[i - 1] * tc[2 * k - 1];
    }
  }
  return p;
}

std::vector<double> saramaki_impulse_response(const std::vector<double>& f1,
                                              const std::vector<double>& f2) {
  const std::size_t n1 = f1.size();
  const std::size_t n2 = f2.size();
  const std::size_t d2 = 2 * n2 - 1;              // F2 group delay
  const std::size_t big_d = (2 * n1 - 1) * d2;    // composite group delay
  const std::vector<double> hf2 = f2_taps(f2);

  std::vector<double> h(2 * big_d + 1, 0.0);
  h[big_d] += 0.5;  // center 0.5 z^-D path

  // Branch i taps: f1_i * (2 F2)^(2i-1), aligned to the composite delay D
  // (f1 is in the power basis - exactly what the cascade hardware taps).
  std::vector<double> two_h(hf2.size());
  for (std::size_t t = 0; t < hf2.size(); ++t) two_h[t] = 2.0 * hf2[t];
  std::vector<double> pk{1.0};
  for (std::size_t k = 1; k <= 2 * n1 - 1; ++k) {
    pk = dsp::convolve(pk, two_h);
    if (k % 2 == 0) continue;
    const std::size_t i = (k + 1) / 2;  // branch index
    const std::size_t shift = big_d - k * d2;
    for (std::size_t t = 0; t < pk.size(); ++t) {
      h[shift + t] += f1[i - 1] * pk[t];
    }
  }
  return h;
}

std::size_t saramaki_structural_adders(std::size_t n1, std::size_t n2) {
  // Per F2 instance: n2 symmetric pre-adders (pairs of equal taps) plus
  // (n2 - 1) adders to sum the products. (2 n1 - 1) instances in cascade.
  const std::size_t per_f2 = n2 + (n2 - 1);
  // Outer network: n1 branch outputs plus the 0.5 delay path -> n1 adders.
  return (2 * n1 - 1) * per_f2 + n1;
}

SaramakiHbf design_saramaki_hbf(std::size_t n1, std::size_t n2, double fp,
                                int frac_bits, std::size_t max_digits) {
  DSADC_TRACE_SPAN("design_saramaki_hbf", "design");
  if (n1 < 1 || n1 > 6 || n2 < 2 || n2 > 16) {
    throw std::invalid_argument("design_saramaki_hbf: unsupported (n1, n2)");
  }
  if (!(fp > 0.0 && fp < 0.25)) {
    throw std::invalid_argument("design_saramaki_hbf: fp must be in (0, 0.25)");
  }
  SaramakiHbf out;
  out.n1 = n1;
  out.n2 = n2;
  out.passband_edge = fp;

  // --- F2: a half-band of length 4 n2 - 1 minus its center tap, so that
  // F2hat ~ +0.5 on [0, fp] and -0.5 on the mirror band.
  const HalfbandResult sub = design_halfband(n2, fp);
  out.f2.assign(n2, 0.0);
  const std::size_t mid = 2 * n2 - 1;
  for (std::size_t j = 1; j <= n2; ++j) {
    out.f2[j - 1] = 2.0 * sub.taps[mid + (2 * j - 1)];  // zero-phase coeff
  }
  // Quantize F2 first; the F1 design below absorbs its quantization error.
  out.f2_csd = quantize_csd(out.f2, frac_bits, max_digits);
  const std::vector<double> f2q = csd_values(out.f2_csd);

  // --- Outer taps: minimax fit of the composite stopband against the
  // quantized subfilter's frequency warping (the half-band symmetry of the
  // structure makes the passband mirror the stopband exactly). The fit is
  // done in the Chebyshev basis and converted to the power-basis taps the
  // cascade hardware actually applies.
  out.f1 = chebyshev_to_power_basis(optimize_f1(f2q, n1, fp));
  out.f1_csd = quantize_csd(out.f1, frac_bits, max_digits);
  const std::vector<double> f1q = csd_values(out.f1_csd);

  // --- Compose, measure.
  out.taps = saramaki_impulse_response(f1q, f2q);
  out.stopband_atten_db = dsp::min_attenuation_db(out.taps, 0.5 - fp, 0.5);
  out.passband_ripple_db = dsp::passband_ripple_db(out.taps, 0.0, fp);
  out.adder_count = saramaki_structural_adders(n1, n2) +
                    dsadc::fx::total_adder_cost(out.f1_csd) +
                    dsadc::fx::total_adder_cost(out.f2_csd);
  return out;
}

SaramakiHbf design_saramaki_hbf_auto(double fp, double atten_db,
                                     int frac_bits) {
  // Candidate structures, ordered roughly by hardware cost; digit budgets
  // from lean to exact.
  const std::pair<std::size_t, std::size_t> structures[] = {
      {2, 4}, {2, 5}, {3, 5}, {3, 6}, {3, 7}, {4, 7}, {4, 8}, {4, 10}, {5, 12}};
  const std::size_t digit_budgets[] = {3, 4, 5, 0};

  const SaramakiHbf* best = nullptr;
  SaramakiHbf best_val;
  for (const auto& [n1, n2] : structures) {
    for (std::size_t digits : digit_budgets) {
      SaramakiHbf cand = design_saramaki_hbf(n1, n2, fp, frac_bits, digits);
      if (cand.stopband_atten_db < atten_db) continue;
      if (best == nullptr || cand.adder_count < best_val.adder_count) {
        best_val = std::move(cand);
        best = &best_val;
      }
    }
  }
  if (best == nullptr) {
    throw std::runtime_error(
        "design_saramaki_hbf_auto: attenuation target unreachable with "
        "candidate structures");
  }
  return best_val;
}

}  // namespace dsadc::design
