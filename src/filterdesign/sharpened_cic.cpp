#include "src/filterdesign/sharpened_cic.h"

#include <cmath>
#include <stdexcept>

namespace dsadc::design {
namespace {

std::vector<std::int64_t> int_convolve(const std::vector<std::int64_t>& a,
                                       const std::vector<std::int64_t>& b) {
  std::vector<std::int64_t> out(a.size() + b.size() - 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) out[i + j] += a[i] * b[j];
  }
  return out;
}

}  // namespace

std::vector<std::int64_t> sharpened_cic_taps(int order, int decimation) {
  if (order < 1 || decimation < 2) {
    throw std::invalid_argument("sharpened_cic_taps: order >= 1, M >= 2");
  }
  if ((order * (decimation - 1)) % 2 != 0) {
    // H^2 and H^3 have half-sample-offset centers unless the prototype
    // length is odd; the paper's stages (even K at M = 2) all qualify.
    throw std::invalid_argument(
        "sharpened_cic_taps: K*(M-1) must be even for integer alignment");
  }
  // h = boxcar^K (integer).
  std::vector<std::int64_t> h{1};
  const std::vector<std::int64_t> box(static_cast<std::size_t>(decimation), 1);
  for (int k = 0; k < order; ++k) h = int_convolve(h, box);
  const auto h2 = int_convolve(h, h);
  const auto h3 = int_convolve(h2, h);
  // 3 M^K H^2 - 2 H^3, with H^2 delayed to align group delays (H^2 has
  // delay (len2-1)/2; H^3 (len3-1)/2; difference = (len_h - 1)/2).
  const std::size_t shift = (h3.size() - h2.size()) / 2;
  std::vector<std::int64_t> out(h3.size(), 0);
  std::int64_t gain_k = 1;
  for (int k = 0; k < order; ++k) gain_k *= decimation;
  for (std::size_t i = 0; i < h3.size(); ++i) out[i] = -2 * h3[i];
  for (std::size_t i = 0; i < h2.size(); ++i) out[i + shift] += 3 * gain_k * h2[i];
  return out;
}

double sharpened_cic_magnitude(const CicSpec& spec, double f) {
  const double h = cic_magnitude(spec, f);  // normalized |H|
  // S(H) on normalized H; |.| because the sharpened response can undershoot.
  return std::abs(3.0 * h * h - 2.0 * h * h * h);
}

double sharpened_cic_droop_db(const CicSpec& spec, double f) {
  return -20.0 * std::log10(std::max(sharpened_cic_magnitude(spec, f), 1e-300));
}

double sharpened_cic_alias_rejection_db(const CicSpec& spec, double fb) {
  if (fb <= 0.0 || fb >= 0.5 / spec.decimation) {
    throw std::invalid_argument("sharpened_cic_alias_rejection_db: fb range");
  }
  double worst = 1e300;
  for (int m = 1; m < spec.decimation; ++m) {
    const double center = static_cast<double>(m) / spec.decimation;
    for (double f : {center - fb, center + fb}) {
      if (f <= 0.0 || f >= 1.0) continue;
      const double att =
          -20.0 * std::log10(sharpened_cic_magnitude(spec, f) /
                             sharpened_cic_magnitude(spec, fb));
      worst = std::min(worst, att);
    }
  }
  return worst;
}

double sharpened_cic_dc_gain(const CicSpec& spec) {
  return std::pow(static_cast<double>(spec.decimation), 3 * spec.order);
}

}  // namespace dsadc::design
