#include "src/filterdesign/remez.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numbers>
#include <stdexcept>

#include "src/dsp/linalg.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace dsadc::design {
namespace {

constexpr double kPi = std::numbers::pi;

/// Dense approximation grid point.
struct GridPoint {
  double f;     ///< cycles/sample
  double x;     ///< cos(2 pi f), the Chebyshev variable
  double d;     ///< (transformed) desired value
  double w;     ///< (transformed) weight
};

/// Barycentric interpolation state over the current extremal set.
class Barycentric {
 public:
  /// `x`, `c` are the abscissae and function values at the interpolation
  /// nodes (the first r of the r+1 extrema).
  Barycentric(std::vector<double> x, std::vector<double> c)
      : x_(std::move(x)), c_(std::move(c)), wts_(x_.size()) {
    const std::size_t r = x_.size();
    for (std::size_t i = 0; i < r; ++i) {
      double prod = 1.0;
      for (std::size_t j = 0; j < r; ++j) {
        if (j != i) prod *= (x_[i] - x_[j]);
      }
      wts_[i] = 1.0 / prod;
    }
  }

  double eval(double x) const {
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < x_.size(); ++i) {
      const double dx = x - x_[i];
      if (std::abs(dx) < 1e-14) return c_[i];
      const double t = wts_[i] / dx;
      num += t * c_[i];
      den += t;
    }
    return num / den;
  }

 private:
  std::vector<double> x_, c_, wts_;
};

/// Compute the equiripple level delta for the extremal set.
double compute_delta(const std::vector<GridPoint>& grid,
                     const std::vector<std::size_t>& ext) {
  const std::size_t m = ext.size();  // r + 1
  // gamma_i = 1 / prod_{j != i} (x_i - x_j), scaled to avoid overflow by
  // the standard pairwise normalization.
  std::vector<double> gamma(m, 1.0);
  for (std::size_t i = 0; i < m; ++i) {
    double prod = 1.0;
    for (std::size_t j = 0; j < m; ++j) {
      if (j == i) continue;
      double diff = grid[ext[i]].x - grid[ext[j]].x;
      // Normalize factors toward 1 to keep the product in range.
      prod *= diff * 2.0;
    }
    gamma[i] = 1.0 / prod;
  }
  double num = 0.0, den = 0.0;
  double sign = 1.0;
  for (std::size_t i = 0; i < m; ++i) {
    num += gamma[i] * grid[ext[i]].d;
    den += sign * gamma[i] / grid[ext[i]].w;
    sign = -sign;
  }
  if (den == 0.0) throw std::runtime_error("remez: degenerate extremal set");
  return num / den;
}

}  // namespace

Band const_band(double f0, double f1, double desired, double weight) {
  Band b;
  b.f0 = f0;
  b.f1 = f1;
  b.desired = [desired](double) { return desired; };
  b.weight = [weight](double) { return weight; };
  return b;
}

RemezResult remez(std::size_t num_taps, std::span<const Band> bands,
                  int grid_density, int max_iterations) {
  DSADC_TRACE_SPAN("remez", "design");
  if (num_taps < 3) throw std::invalid_argument("remez: need at least 3 taps");
  if (bands.empty()) throw std::invalid_argument("remez: need at least one band");
  for (const auto& b : bands) {
    if (!(0.0 <= b.f0 && b.f0 < b.f1 && b.f1 <= 0.5)) {
      throw std::invalid_argument("remez: malformed band edges");
    }
    if (!b.desired || !b.weight) {
      throw std::invalid_argument("remez: band lacks desired/weight function");
    }
  }
  const bool type2 = (num_taps % 2) == 0;
  // Number of cosine basis functions.
  const std::size_t r = type2 ? num_taps / 2 : (num_taps - 1) / 2 + 1;

  // --- Dense grid.
  double total_width = 0.0;
  for (const auto& b : bands) total_width += (b.f1 - b.f0);
  const double df =
      total_width / (static_cast<double>(grid_density) * static_cast<double>(r));
  std::vector<GridPoint> grid;
  grid.reserve(static_cast<std::size_t>(total_width / df) + 8 * bands.size());
  for (const auto& b : bands) {
    const auto npts = std::max<std::size_t>(
        8, static_cast<std::size_t>(std::ceil((b.f1 - b.f0) / df)));
    for (std::size_t i = 0; i <= npts; ++i) {
      double f = b.f0 + (b.f1 - b.f0) * static_cast<double>(i) /
                            static_cast<double>(npts);
      // Type II has a structural zero at f = 0.5; keep the grid away.
      if (type2 && f > 0.5 - 1e-4) f = 0.5 - 1e-4;
      GridPoint g;
      g.f = f;
      g.x = std::cos(2.0 * kPi * f);
      g.d = b.desired(f);
      g.w = b.weight(f);
      if (g.w <= 0.0) throw std::invalid_argument("remez: weight must be positive");
      if (type2) {
        // H(w) = cos(w/2) P(w): approximate P with transformed D and W.
        const double c = std::cos(kPi * f);
        g.d /= c;
        g.w *= c;
      }
      grid.push_back(g);
    }
  }
  // Deduplicate identical abscissae (can happen at shared band edges).
  std::sort(grid.begin(), grid.end(),
            [](const GridPoint& a, const GridPoint& b) { return a.f < b.f; });
  grid.erase(std::unique(grid.begin(), grid.end(),
                         [](const GridPoint& a, const GridPoint& b) {
                           return std::abs(a.f - b.f) < 1e-12;
                         }),
             grid.end());
  if (grid.size() < r + 2) throw std::invalid_argument("remez: grid too coarse");

  // Mark band edges: they are extrema of the restricted problem and the
  // optimal error almost always peaks there, so they are always candidates.
  std::vector<bool> is_edge(grid.size(), false);
  is_edge.front() = true;
  is_edge.back() = true;
  for (const auto& b : bands) {
    for (double fe : {b.f0, b.f1}) {
      // Find the grid point nearest to the band edge.
      std::size_t best = 0;
      double bestd = 1e9;
      for (std::size_t i = 0; i < grid.size(); ++i) {
        const double d = std::abs(grid[i].f - fe);
        if (d < bestd) {
          bestd = d;
          best = i;
        }
      }
      is_edge[best] = true;
    }
  }

  // --- Initial extrema: uniformly indexed.
  std::vector<std::size_t> ext(r + 1);
  for (std::size_t i = 0; i <= r; ++i) {
    ext[i] = i * (grid.size() - 1) / r;
  }

  RemezResult result;
  double delta = 0.0;
  std::vector<double> error(grid.size());
  for (int iter = 0; iter < max_iterations; ++iter) {
    result.iterations = iter + 1;
    delta = compute_delta(grid, ext);

    // Interpolate A(x) through the first r extrema with the alternating
    // deviation removed.
    std::vector<double> xs(r), cs(r);
    double sign = 1.0;
    for (std::size_t i = 0; i < r; ++i) {
      xs[i] = grid[ext[i]].x;
      cs[i] = grid[ext[i]].d - sign * delta / grid[ext[i]].w;
      sign = -sign;
    }
    const Barycentric interp(xs, cs);

    // Weighted error on the dense grid.
    for (std::size_t i = 0; i < grid.size(); ++i) {
      error[i] = grid[i].w * (interp.eval(grid[i].x) - grid[i].d);
    }

    // Find local extrema candidates of the error. Domain endpoints are
    // always extrema of the restricted problem, so include them
    // unconditionally; interior points qualify when |E| peaks locally.
    std::vector<std::size_t> cand;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const bool left_ok = (i == 0) || std::abs(error[i]) >= std::abs(error[i - 1]);
      const bool right_ok =
          (i + 1 == grid.size()) || std::abs(error[i]) >= std::abs(error[i + 1]);
      if ((is_edge[i] || (left_ok && right_ok)) && std::abs(error[i]) > 1e-15) {
        cand.push_back(i);
      }
    }
    if (cand.size() < r + 1) {
      // Degenerate (error below numerical resolution everywhere, e.g. a
      // heavily over-parameterized band): accept the current interpolant.
      result.converged = true;
      break;
    }
    // Enforce sign alternation: among consecutive same-sign candidates keep
    // the largest error magnitude.
    std::vector<std::size_t> alt;
    for (std::size_t idx : cand) {
      if (!alt.empty() && (error[alt.back()] > 0) == (error[idx] > 0)) {
        if (std::abs(error[idx]) > std::abs(error[alt.back()])) alt.back() = idx;
      } else {
        alt.push_back(idx);
      }
    }
    // Trim to exactly r+1, dropping the weaker end point each time.
    while (alt.size() > r + 1) {
      if (std::abs(error[alt.front()]) < std::abs(error[alt.back()])) {
        alt.erase(alt.begin());
      } else {
        alt.pop_back();
      }
    }
    if (alt.size() < r + 1) {
      result.converged = true;  // cannot improve further on this grid
      break;
    }

    // Convergence: largest error close to |delta|.
    double emax = 0.0;
    for (std::size_t idx : alt) emax = std::max(emax, std::abs(error[idx]));
    const bool same = std::equal(alt.begin(), alt.end(), ext.begin(), ext.end());
    DSADC_OBS_COUNT("remez.iterations");
    DSADC_LOG_DEBUG("remez", "iter %d delta=%.6e emax=%.6e same=%d ext=%zu",
                    iter, delta, emax, static_cast<int>(same), alt.size());
    ext = std::move(alt);
    if (same || (emax - std::abs(delta)) < 1e-6 * std::abs(delta) + 1e-15) {
      result.converged = true;
      // One final delta with the final extrema.
      delta = compute_delta(grid, ext);
      break;
    }
  }
  result.delta = std::abs(delta);

  // --- Recover cosine coefficients a_k of A(w) = sum a_k cos(k w) by the
  // discrete cosine projection: A is a degree-(r-1) polynomial in cos(w),
  // so the M-point quadrature below (M >= 2r) is exact; this is the same
  // extraction McClellan's firpm performs via an inverse DFT.
  std::vector<double> xs(r), cs(r);
  double sign = 1.0;
  for (std::size_t i = 0; i < r; ++i) {
    xs[i] = grid[ext[i]].x;
    cs[i] = grid[ext[i]].d - sign * delta / grid[ext[i]].w;
    sign = -sign;
  }
  const Barycentric interp(xs, cs);
  const std::size_t big_m = 8 * r;
  // Samples of A over a full period: A(w_j), w_j = 2 pi j / M, using the
  // even symmetry A(2 pi - w) = A(w).
  std::vector<double> samples(big_m);
  for (std::size_t j = 0; j <= big_m / 2; ++j) {
    const double wj = 2.0 * kPi * static_cast<double>(j) / static_cast<double>(big_m);
    samples[j] = interp.eval(std::cos(wj));
    if (j != 0 && j != big_m / 2) samples[big_m - j] = samples[j];
  }
  std::vector<double> a(r, 0.0);
  for (std::size_t k = 0; k < r; ++k) {
    double acc = 0.0;
    for (std::size_t j = 0; j < big_m; ++j) {
      const double wj = 2.0 * kPi * static_cast<double>(j) / static_cast<double>(big_m);
      acc += samples[j] * std::cos(static_cast<double>(k) * wj);
    }
    a[k] = (k == 0 ? 1.0 : 2.0) * acc / static_cast<double>(big_m);
  }

  // --- Cosine coefficients -> impulse response.
  result.taps.assign(num_taps, 0.0);
  if (!type2) {
    const std::size_t mid = (num_taps - 1) / 2;
    result.taps[mid] = a[0];
    for (std::size_t k = 1; k < r; ++k) {
      result.taps[mid - k] = a[k] / 2.0;
      result.taps[mid + k] = a[k] / 2.0;
    }
  } else {
    // H(w) = cos(w/2) sum b_k cos(k w) = sum bt_m cos((m - 1/2) w),
    // bt_1 = b_0 + b_1/2, bt_m = (b_{m-1} + b_m)/2, bt_r = b_{r-1}/2.
    std::vector<double> bt(r + 1, 0.0);
    bt[1] = a[0] + (r > 1 ? a[1] / 2.0 : 0.0);
    for (std::size_t mI = 2; mI + 1 <= r; ++mI) {
      bt[mI] = (a[mI - 1] + a[mI]) / 2.0;
    }
    if (r >= 2) bt[r] = a[r - 1] / 2.0;
    // h[r - m] = h[r + m - 1] = bt_m / 2.
    for (std::size_t mI = 1; mI <= r; ++mI) {
      result.taps[r - mI] = bt[mI] / 2.0;
      result.taps[r + mI - 1] = bt[mI] / 2.0;
    }
  }
  return result;
}

RemezResult remez_lowpass(std::size_t num_taps, double fpass, double fstop,
                          double wpass, double wstop) {
  const Band bands[] = {const_band(0.0, fpass, 1.0, wpass),
                        const_band(fstop, 0.5, 0.0, wstop)};
  return remez(num_taps, bands);
}

std::size_t remez_order_estimate(double ripple_db, double atten_db,
                                 double transition_width) {
  // Kaiser's estimate: N ~ (-20 log10 sqrt(d1 d2) - 13) / (14.6 df).
  const double d1 = (std::pow(10.0, ripple_db / 20.0) - 1.0) /
                    (std::pow(10.0, ripple_db / 20.0) + 1.0);
  const double d2 = std::pow(10.0, -atten_db / 20.0);
  const double n =
      (-20.0 * std::log10(std::sqrt(d1 * d2)) - 13.0) / (14.6 * transition_width);
  return static_cast<std::size_t>(std::ceil(std::max(n, 3.0))) + 1;
}

}  // namespace dsadc::design
