// Sharpened comb (CIC) filters - the alternative comb schemes of the
// paper's reference [7] (Laddomada) and the classic Kwentus-Willson
// sharpening.
//
// Filter sharpening applies the polynomial S(H) = 3H^2 - 2H^3 to a
// prototype comb H = Sinc^K: the composite keeps H's zeros (alias
// notches triple in multiplicity through the H^2/H^3 terms) while the
// polynomial flattens the passband around H ~ 1, trading adders for
// droop. Because S(H) expands into integer-coefficient convolutions of
// the boxcar kernel, the sharpened stage drops straight onto the bit-true
// FirDecimator machinery.
#pragma once

#include <cstdint>
#include <vector>

#include "src/filterdesign/cic.h"

namespace dsadc::design {

/// Integer taps of the sharpened comb 3H^2 - 2H^3 for H = Sinc^K with
/// decimation M (H unnormalized; the composite carries gain M^(3K)).
std::vector<std::int64_t> sharpened_cic_taps(int order, int decimation);

/// Magnitude of the (normalized) sharpened comb at f cycles/sample.
double sharpened_cic_magnitude(const CicSpec& spec, double f);

/// Passband droop in dB at f (positive = attenuation relative to DC).
double sharpened_cic_droop_db(const CicSpec& spec, double f);

/// Worst-case alias-band rejection (dB) for protected band fb, as in
/// cic_alias_rejection_db.
double sharpened_cic_alias_rejection_db(const CicSpec& spec, double fb);

/// DC gain of the unnormalized sharpened comb: M^(3K).
double sharpened_cic_dc_gain(const CicSpec& spec);

}  // namespace dsadc::design
