#include "src/filterdesign/halfband.h"

#include <cmath>
#include <stdexcept>

#include "src/dsp/freqz.h"
#include "src/filterdesign/remez.h"

namespace dsadc::design {

HalfbandResult design_halfband(std::size_t j, double fp) {
  if (j < 2) throw std::invalid_argument("design_halfband: j must be >= 2");
  if (!(fp > 0.0 && fp < 0.25)) {
    throw std::invalid_argument("design_halfband: fp must be in (0, 0.25)");
  }
  // Single-band Type II sub-design: G approximates 1 on [0, 2 fp].
  const Band band[] = {const_band(0.0, 2.0 * fp, 1.0, 1.0)};
  const RemezResult g = remez(2 * j, band);

  HalfbandResult out;
  out.j = j;
  out.passband_edge = fp;
  out.taps.assign(4 * j - 1, 0.0);
  for (std::size_t i = 0; i < g.taps.size(); ++i) {
    out.taps[2 * i] = g.taps[i] / 2.0;
  }
  out.taps[2 * j - 1] = 0.5;  // center tap
  // The G ripple is 2x the half-band ripple by construction; measure the
  // realized response directly for robustness.
  out.ripple = 0.0;
  const std::size_t n = 2048;
  for (std::size_t k = 0; k <= n; ++k) {
    const double f = fp * static_cast<double>(k) / static_cast<double>(n);
    const double m = std::abs(dsp::fir_response_at(out.taps, f));
    out.ripple = std::max(out.ripple, std::abs(m - 1.0));
  }
  out.stopband_atten_db = dsp::min_attenuation_db(out.taps, 0.5 - fp, 0.5);
  return out;
}

HalfbandResult design_halfband_for_attenuation(double fp, double atten_db,
                                               std::size_t max_j) {
  for (std::size_t j = 2; j <= max_j; ++j) {
    HalfbandResult r = design_halfband(j, fp);
    if (r.stopband_atten_db >= atten_db) return r;
  }
  throw std::runtime_error(
      "design_halfband_for_attenuation: spec unreachable within max_j");
}

bool is_halfband(const std::vector<double>& taps, double tol) {
  if (taps.size() % 2 == 0) return false;
  const std::size_t mid = taps.size() / 2;
  if (std::abs(taps[mid] - 0.5) > tol) return false;
  for (std::size_t i = 0; i < taps.size(); ++i) {
    if (i == mid) continue;
    const bool odd_offset = ((i > mid ? i - mid : mid - i) % 2) == 1;
    if (!odd_offset && std::abs(taps[i]) > tol) return false;
  }
  return true;
}

}  // namespace dsadc::design
