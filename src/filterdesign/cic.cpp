#include "src/filterdesign/cic.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "src/dsp/freqz.h"
#include "src/dsp/spectrum.h"

namespace dsadc::design {
namespace {
constexpr double kPi = std::numbers::pi;
}

int CicSpec::register_width() const {
  const double growth = static_cast<double>(order) *
                        std::log2(static_cast<double>(decimation));
  // Eq. (2) of the paper gives the MSB index; width = MSB + 1.
  return static_cast<int>(std::ceil(growth)) + input_bits;
}

double CicSpec::dc_gain() const {
  return std::pow(static_cast<double>(decimation), order);
}

double cic_magnitude(const CicSpec& spec, double f) {
  if (f == 0.0) return 1.0;
  const double m = static_cast<double>(spec.decimation);
  const double num = std::sin(kPi * f * m);
  const double den = m * std::sin(kPi * f);
  if (std::abs(den) < 1e-300) return 1.0;
  return std::pow(std::abs(num / den), spec.order);
}

std::vector<double> cic_impulse_response(const CicSpec& spec) {
  std::vector<double> h{1.0};
  const std::vector<double> box(static_cast<std::size_t>(spec.decimation),
                                1.0 / static_cast<double>(spec.decimation));
  for (int k = 0; k < spec.order; ++k) h = dsp::convolve(h, box);
  return h;
}

double cic_droop_db(const CicSpec& spec, double f) {
  return -dsp::amplitude_db(cic_magnitude(spec, f));
}

double cic_alias_rejection_db(const CicSpec& spec, double fb) {
  if (fb <= 0.0 || fb >= 0.5 / spec.decimation) {
    throw std::invalid_argument("cic_alias_rejection_db: fb out of range");
  }
  double worst = 1e300;
  for (int m = 1; m < spec.decimation; ++m) {
    const double center = static_cast<double>(m) / spec.decimation;
    for (double f : {center - fb, center + fb}) {
      if (f <= 0.0 || f >= 1.0) continue;
      // Attenuation relative to the passband-edge gain.
      const double att = -20.0 * std::log10(cic_magnitude(spec, f) /
                                            cic_magnitude(spec, fb));
      worst = std::min(worst, att);
    }
  }
  return worst;
}

int cic_min_order(int decimation, double fb, double atten_db, int max_order) {
  for (int k = 1; k <= max_order; ++k) {
    CicSpec spec{k, decimation, 1};
    if (cic_alias_rejection_db(spec, fb) >= atten_db) return k;
  }
  return 0;
}

std::vector<CicSpec> paper_sinc_cascade() {
  return {CicSpec{4, 2, 4}, CicSpec{4, 2, 8}, CicSpec{6, 2, 12}};
}

std::vector<double> cic_cascade_response(const std::vector<CicSpec>& stages) {
  std::vector<double> h{1.0};
  std::size_t rate = 1;
  for (const auto& s : stages) {
    const std::vector<double> hs = cic_impulse_response(s);
    const std::vector<double> up = dsp::upsample_taps(hs, rate);
    h = dsp::convolve(h, up);
    rate *= static_cast<std::size_t>(s.decimation);
  }
  return h;
}

}  // namespace dsadc::design
