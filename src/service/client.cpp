#include "src/service/client.h"

#include <sys/socket.h>
#include <unistd.h>

#include <stdexcept>

#include "src/service/net.h"

namespace dsadc::service {

std::unique_ptr<Client> Client::connect_unix(const std::string& path) {
  std::string err;
  const int fd = net::connect_unix(path, &err);
  if (fd < 0) throw std::runtime_error("client: " + err);
  return std::unique_ptr<Client>(new Client(fd));
}

std::unique_ptr<Client> Client::connect_tcp(const std::string& host,
                                            std::uint16_t port) {
  std::string err;
  const int fd = net::connect_tcp(host, port, &err);
  if (fd < 0) throw std::runtime_error("client: " + err);
  return std::unique_ptr<Client>(new Client(fd));
}

Client::Client(int fd) : fd_(fd) {
  receiver_ = std::thread([this] { receiver_loop(); });
}

Client::~Client() { shutdown_now(); }

void Client::shutdown_now() {
  if (closing_.exchange(true)) {
    if (receiver_.joinable()) receiver_.join();
    return;
  }
  ::shutdown(fd_, SHUT_RDWR);
  if (receiver_.joinable()) receiver_.join();
  ::close(fd_);
}

bool Client::send_frame(const Frame& f) {
  const auto bytes = encode_frame(f);
  return send_raw(bytes.data(), bytes.size());
}

bool Client::send_raw(const void* data, std::size_t n) {
  std::lock_guard<std::mutex> lock(send_mu_);
  if (closing_.load()) return false;
  return net::send_all(fd_, static_cast<const std::uint8_t*>(data), n);
}

bool Client::open(std::uint32_t channel, std::uint32_t preset,
                  bool lockstep) {
  Frame f;
  f.type = FrameType::kOpen;
  f.flags = lockstep ? kFlagLockstep : 0;
  f.channel = channel;
  f.payload = encode_u32(preset);
  {
    std::lock_guard<std::mutex> lock(send_mu_);
    send_seq_[channel] = 0;
  }
  return send_frame(f);
}

bool Client::open_config(std::uint32_t channel,
                         const decim::ChainConfig& cfg, bool lockstep) {
  Frame f;
  f.type = FrameType::kOpen;
  f.flags = lockstep ? kFlagLockstep : 0;
  f.channel = channel;
  f.payload = encode_chain_config(cfg);
  {
    std::lock_guard<std::mutex> lock(send_mu_);
    send_seq_[channel] = 0;
  }
  return send_frame(f);
}

bool Client::reconfigure(std::uint32_t channel, std::uint32_t preset) {
  Frame f;
  f.type = FrameType::kConfig;
  f.channel = channel;
  f.payload = encode_u32(preset);
  return send_frame(f);
}

bool Client::reconfigure_config(std::uint32_t channel,
                                const decim::ChainConfig& cfg) {
  Frame f;
  f.type = FrameType::kConfig;
  f.channel = channel;
  f.payload = encode_chain_config(cfg);
  return send_frame(f);
}

bool Client::send_data(std::uint32_t channel,
                       std::span<const std::int32_t> codes) {
  std::uint32_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(send_mu_);
    seq = send_seq_[channel]++;
  }
  return send_data_seq(channel, seq, codes);
}

bool Client::send_data_seq(std::uint32_t channel, std::uint32_t seq,
                           std::span<const std::int32_t> codes) {
  Frame f;
  f.type = FrameType::kData;
  f.channel = channel;
  f.seq = seq;
  f.payload = encode_codes(codes);
  return send_frame(f);
}

bool Client::drain(std::uint32_t channel) {
  Frame f;
  f.type = FrameType::kDrain;
  f.channel = channel;
  return send_frame(f);
}

bool Client::close_channel(std::uint32_t channel) {
  Frame f;
  f.type = FrameType::kClose;
  f.channel = channel;
  return send_frame(f);
}

void Client::receiver_loop() {
  std::vector<std::uint8_t> buf(64 * 1024);
  FrameParser parser;
  for (;;) {
    while (paused_.load(std::memory_order_acquire) &&
           !closing_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const long n = net::recv_some(fd_, buf.data(), buf.size());
    if (n <= 0) break;
    parser.feed(buf.data(), static_cast<std::size_t>(n));
    Frame f;
    FrameParser::Result res;
    bool bad = false;
    while ((res = parser.next(&f)) == FrameParser::Result::kFrame) {
      if (frame_hook_) {
        frame_hook_(f.type, f.channel, f.seq, f.payload.size());
      }
      std::lock_guard<std::mutex> lock(mu_);
      auto& st = channels_[f.channel];
      switch (f.type) {
        case FrameType::kDataOut: {
          std::vector<std::int64_t> samples;
          if (decode_samples(f.payload, &samples)) {
            st.samples.insert(st.samples.end(), samples.begin(),
                              samples.end());
          }
          break;
        }
        case FrameType::kAck:
          ++st.acks;
          break;
        case FrameType::kDrained:
          ++st.drains;
          break;
        case FrameType::kShed:
          ++st.sheds;
          ++total_sheds_;
          break;
        case FrameType::kError: {
          std::uint32_t code = 0;
          (void)decode_u32(f.payload, &code);
          errors_.emplace_back(f.channel, static_cast<ErrorCode>(code));
          break;
        }
        default:
          break;  // client->server type echoed back: ignore
      }
      cv_.notify_all();
    }
    if (res == FrameParser::Result::kBad) bad = true;
    if (bad) break;
  }
  std::lock_guard<std::mutex> lock(mu_);
  disconnected_ = true;
  cv_.notify_all();
}

std::vector<std::int64_t> Client::samples(std::uint32_t channel) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = channels_.find(channel);
  return it == channels_.end() ? std::vector<std::int64_t>{}
                               : it->second.samples;
}

std::size_t Client::sample_count(std::uint32_t channel) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = channels_.find(channel);
  return it == channels_.end() ? 0 : it->second.samples.size();
}

std::size_t Client::ack_count(std::uint32_t channel) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = channels_.find(channel);
  return it == channels_.end() ? 0 : it->second.acks;
}

std::size_t Client::shed_count(std::uint32_t channel) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = channels_.find(channel);
  return it == channels_.end() ? 0 : it->second.sheds;
}

std::size_t Client::drained_count(std::uint32_t channel) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = channels_.find(channel);
  return it == channels_.end() ? 0 : it->second.drains;
}

std::vector<std::pair<std::uint32_t, ErrorCode>> Client::errors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return errors_;
}

bool Client::wait_sample_count(std::uint32_t channel, std::size_t n,
                               Millis t) {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, t, [&] {
    const auto it = channels_.find(channel);
    return (it != channels_.end() && it->second.samples.size() >= n) ||
           disconnected_;
  }) && channels_[channel].samples.size() >= n;
}

bool Client::wait_ack_count(std::uint32_t channel, std::size_t n, Millis t) {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, t, [&] {
    const auto it = channels_.find(channel);
    return (it != channels_.end() && it->second.acks >= n) || disconnected_;
  }) && channels_[channel].acks >= n;
}

bool Client::wait_drained(std::uint32_t channel, std::size_t n, Millis t) {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, t, [&] {
    const auto it = channels_.find(channel);
    return (it != channels_.end() && it->second.drains >= n) ||
           disconnected_;
  }) && channels_[channel].drains >= n;
}

bool Client::wait_error(ErrorCode code, Millis t) {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, t, [&] {
    for (const auto& [ch, c] : errors_) {
      if (c == code) return true;
    }
    return disconnected_;
  }) && [&] {
    for (const auto& [ch, c] : errors_) {
      if (c == code) return true;
    }
    return false;
  }();
}

bool Client::wait_shed_count(std::uint32_t channel, std::size_t n,
                             Millis t) {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, t, [&] {
    const auto it = channels_.find(channel);
    return (it != channels_.end() && it->second.sheds >= n) ||
           disconnected_;
  }) && channels_[channel].sheds >= n;
}

bool Client::wait_total_sheds(std::size_t n, Millis t) {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, t,
                      [&] { return total_sheds_ >= n || disconnected_; }) &&
         total_sheds_ >= n;
}

void Client::set_paused(bool paused) {
  paused_.store(paused, std::memory_order_release);
}

bool Client::disconnected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return disconnected_;
}

}  // namespace dsadc::service
