// Thin POSIX socket helpers shared by the service server, the client
// library and the load generator. Unix-domain stream sockets are the
// primary transport (filesystem path, unlinked on listen); TCP binds to
// 127.0.0.1 only -- the service speaks a trusted-LAN protocol and has no
// authentication layer.
#pragma once

#include <sys/uio.h>

#include <cstddef>
#include <cstdint>
#include <string>

namespace dsadc::service::net {

/// Create + bind + listen on a unix-domain socket at `path` (any stale
/// socket file is unlinked first). Returns the fd, or -1 with *err set.
int listen_unix(const std::string& path, std::string* err);

/// Listen on 127.0.0.1:`port` (0 = ephemeral); *bound receives the
/// actual port. Returns the fd, or -1 with *err set.
int listen_tcp(std::uint16_t port, std::uint16_t* bound, std::string* err);

int connect_unix(const std::string& path, std::string* err);
int connect_tcp(const std::string& host, std::uint16_t port,
                std::string* err);

/// Send the whole buffer (MSG_NOSIGNAL; EINTR retried). False on error.
bool send_all(int fd, const std::uint8_t* data, std::size_t n);

/// One recv() call (EINTR retried): >0 bytes, 0 on orderly shutdown,
/// -1 on error.
long recv_some(int fd, std::uint8_t* buf, std::size_t n);

/// Gather-write the whole iovec array (blocking fd; EINTR retried and
/// partial writes resumed -- `iov` is adjusted in place). False on error.
/// The scatter half of the zero-copy frame path: header and payload go
/// to the socket as two iovecs instead of being glued into one buffer.
bool writev_all(int fd, struct iovec* iov, int iovcnt);

/// O_NONBLOCK on. False on fcntl failure.
bool set_nonblocking(int fd);

/// A unique abstract-free unix socket path under /tmp for tests/tools.
std::string unique_socket_path(const std::string& tag);

}  // namespace dsadc::service::net
