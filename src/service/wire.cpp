#include "src/service/wire.h"

#include <array>
#include <cstring>
#include <mutex>

namespace dsadc::service {
namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xffu));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xffu));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xffu));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xffu));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xffu));
  }
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

bool known_frame_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::kOpen) &&
         t <= static_cast<std::uint8_t>(FrameType::kError);
}

}  // namespace

const char* frame_type_name(FrameType t) {
  switch (t) {
    case FrameType::kOpen: return "OPEN";
    case FrameType::kConfig: return "CONFIG";
    case FrameType::kData: return "DATA";
    case FrameType::kDrain: return "DRAIN";
    case FrameType::kClose: return "CLOSE";
    case FrameType::kAck: return "ACK";
    case FrameType::kDataOut: return "DATA_OUT";
    case FrameType::kDrained: return "DRAINED";
    case FrameType::kShed: return "SHED";
    case FrameType::kError: return "ERROR";
  }
  return "?";
}

const char* error_code_name(ErrorCode c) {
  switch (c) {
    case ErrorCode::kNone: return "none";
    case ErrorCode::kBadSeq: return "bad_seq";
    case ErrorCode::kNotOpen: return "not_open";
    case ErrorCode::kAlreadyOpen: return "already_open";
    case ErrorCode::kBadPreset: return "bad_preset";
    case ErrorCode::kBadPayload: return "bad_payload";
    case ErrorCode::kInternal: return "internal";
  }
  return "?";
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  const auto& t = crc_table();
  std::uint32_t c = 0xffffffffu;
  for (std::size_t i = 0; i < n; ++i) {
    c = t[(c ^ data[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

void append_frame(std::vector<std::uint8_t>& out, const Frame& f) {
  const std::size_t start = out.size();
  out.reserve(start + kHeaderBytes + f.payload.size());
  put_u32(out, kMagic);
  out.push_back(static_cast<std::uint8_t>(f.type));
  out.push_back(f.flags);
  out.push_back(0);
  out.push_back(0);
  put_u32(out, f.channel);
  put_u32(out, f.seq);
  put_u32(out, static_cast<std::uint32_t>(f.payload.size()));
  put_u32(out, 0);  // CRC placeholder
  out.insert(out.end(), f.payload.begin(), f.payload.end());
  // CRC over header-with-zeroed-CRC + payload, patched in place.
  const std::uint32_t crc =
      crc32(out.data() + start, kHeaderBytes + f.payload.size());
  out[start + 20] = static_cast<std::uint8_t>(crc & 0xffu);
  out[start + 21] = static_cast<std::uint8_t>((crc >> 8) & 0xffu);
  out[start + 22] = static_cast<std::uint8_t>((crc >> 16) & 0xffu);
  out[start + 23] = static_cast<std::uint8_t>((crc >> 24) & 0xffu);
}

std::vector<std::uint8_t> encode_frame(const Frame& f) {
  std::vector<std::uint8_t> out;
  append_frame(out, f);
  return out;
}

std::vector<std::uint8_t> encode_u32(std::uint32_t v) {
  std::vector<std::uint8_t> p;
  put_u32(p, v);
  return p;
}

bool decode_u32(std::span<const std::uint8_t> payload, std::uint32_t* v) {
  if (payload.size() != 4) return false;
  *v = get_u32(payload.data());
  return true;
}

std::vector<std::uint8_t> encode_codes(std::span<const std::int32_t> codes) {
  std::vector<std::uint8_t> p;
  p.reserve(codes.size() * 4);
  for (const std::int32_t c : codes) {
    put_u32(p, static_cast<std::uint32_t>(c));
  }
  return p;
}

bool decode_codes(std::span<const std::uint8_t> payload,
                  std::vector<std::int32_t>* codes) {
  if (payload.size() % 4 != 0) return false;
  codes->resize(payload.size() / 4);
  for (std::size_t i = 0; i < codes->size(); ++i) {
    (*codes)[i] = static_cast<std::int32_t>(get_u32(payload.data() + 4 * i));
  }
  return true;
}

std::vector<std::uint8_t> encode_samples(
    std::span<const std::int64_t> samples) {
  std::vector<std::uint8_t> p;
  p.reserve(samples.size() * 8);
  for (const std::int64_t s : samples) {
    put_u64(p, static_cast<std::uint64_t>(s));
  }
  return p;
}

bool decode_samples(std::span<const std::uint8_t> payload,
                    std::vector<std::int64_t>* samples) {
  if (payload.size() % 8 != 0) return false;
  samples->resize(payload.size() / 8);
  for (std::size_t i = 0; i < samples->size(); ++i) {
    (*samples)[i] =
        static_cast<std::int64_t>(get_u64(payload.data() + 8 * i));
  }
  return true;
}

std::shared_ptr<const decim::ChainConfig> preset_config(std::uint32_t id) {
  static std::mutex mu;
  static std::array<std::shared_ptr<const decim::ChainConfig>, kNumPresets>
      cache;
  if (id >= kNumPresets) return nullptr;
  std::lock_guard<std::mutex> lock(mu);
  if (!cache[id]) {
    decim::ChainConfig cfg = decim::paper_chain_config();
    if (id == 1) {
      // Half-scale variant: same filters, a different CSD scaler constant,
      // so reconfiguration is observable in the served samples.
      cfg.scale *= 0.5;
    }
    cache[id] = std::make_shared<const decim::ChainConfig>(std::move(cfg));
  }
  return cache[id];
}

void FrameParser::feed(const std::uint8_t* data, std::size_t n) {
  // Compact before growing once the consumed prefix dominates.
  if (off_ > 0 && off_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(off_));
    off_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

FrameParser::Result FrameParser::next(Frame* out) {
  if (buffered() < kHeaderBytes) return Result::kNeedMore;
  const std::uint8_t* h = buf_.data() + off_;
  if (get_u32(h) != kMagic) {
    error_ = "bad magic";
    return Result::kBad;
  }
  if (!known_frame_type(h[4])) {
    error_ = "unknown frame type";
    return Result::kBad;
  }
  const std::uint32_t len = get_u32(h + 16);
  if (len > kMaxPayloadBytes) {
    error_ = "payload length " + std::to_string(len) + " exceeds limit";
    return Result::kBad;
  }
  if (buffered() < kHeaderBytes + len) return Result::kNeedMore;

  // Validate the CRC against the header with a zeroed CRC field.
  std::array<std::uint8_t, kHeaderBytes> header{};
  std::memcpy(header.data(), h, kHeaderBytes);
  const std::uint32_t wire_crc = get_u32(header.data() + 20);
  std::memset(header.data() + 20, 0, 4);
  const auto& t = crc_table();
  std::uint32_t c = 0xffffffffu;
  for (std::size_t i = 0; i < kHeaderBytes; ++i) {
    c = t[(c ^ header[i]) & 0xffu] ^ (c >> 8);
  }
  for (std::size_t i = 0; i < len; ++i) {
    c = t[(c ^ h[kHeaderBytes + i]) & 0xffu] ^ (c >> 8);
  }
  if ((c ^ 0xffffffffu) != wire_crc) {
    error_ = "CRC mismatch";
    return Result::kBad;
  }

  out->type = static_cast<FrameType>(h[4]);
  out->flags = h[5];
  out->channel = get_u32(h + 8);
  out->seq = get_u32(h + 12);
  out->payload.assign(h + kHeaderBytes, h + kHeaderBytes + len);
  off_ += kHeaderBytes + len;
  return Result::kFrame;
}

}  // namespace dsadc::service
