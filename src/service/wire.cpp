#include "src/service/wire.h"

#include <array>
#include <bit>
#include <cstring>
#include <mutex>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define DSADC_WIRE_HAVE_PCLMUL 1
#endif

namespace dsadc::service {
namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xffu));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xffu));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xffu));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xffu));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xffu));
  }
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

// Slicing-by-8 CRC-32: table[0] is the classic byte-at-a-time table;
// table[j][b] is the CRC of byte b followed by j zero bytes, which lets
// the hot loop fold 8 input bytes per iteration with two 32-bit loads and
// eight independent table lookups. Same polynomial (0xedb88320), same
// result as the bytewise loop -- only the throughput changes (~6-8x),
// which matters because every DATA payload is CRC'd twice per direction.
const std::array<std::array<std::uint32_t, 256>, 8>& crc_tables() {
  static const auto tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
      }
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (std::size_t j = 1; j < 8; ++j) {
        c = t[0][c & 0xffu] ^ (c >> 8);
        t[j][i] = c;
      }
    }
    return t;
  }();
  return tables;
}

std::uint32_t crc32_slice8(std::uint32_t c, const std::uint8_t* p,
                           std::size_t n) {
  const auto& t = crc_tables();
  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 8) {
      std::uint32_t lo;
      std::uint32_t hi;
      std::memcpy(&lo, p, 4);
      std::memcpy(&hi, p + 4, 4);
      lo ^= c;
      c = t[7][lo & 0xffu] ^ t[6][(lo >> 8) & 0xffu] ^
          t[5][(lo >> 16) & 0xffu] ^ t[4][lo >> 24] ^ t[3][hi & 0xffu] ^
          t[2][(hi >> 8) & 0xffu] ^ t[1][(hi >> 16) & 0xffu] ^ t[0][hi >> 24];
      p += 8;
      n -= 8;
    }
  }
  while (n-- > 0) {
    c = t[0][(c ^ *p++) & 0xffu] ^ (c >> 8);
  }
  return c;
}

#ifdef DSADC_WIRE_HAVE_PCLMUL

/// PCLMULQDQ folding (the classic carry-less-multiply reduction for the
/// reflected 0xedb88320 polynomial): four 128-bit accumulators eat 64
/// bytes per iteration, then fold down to one, which is handed back to
/// the table path as 16 literal bytes -- the accumulator of a reflected
/// CRC *is* an equivalent prefix of the message, so no Barrett reduction
/// is needed and the tail shares the scalar code. ~12x the slicing-by-8
/// rate. Requires n >= 64.
__attribute__((target("pclmul,sse4.1"))) std::uint32_t crc32_pclmul(
    std::uint32_t crc, const std::uint8_t* p, std::size_t n) {
  // k1/k2 fold across 512 bits, k3/k4 across 128 (x^{576}, x^{512},
  // x^{192}, x^{128} mod P, reflected and pre-shifted).
  const __m128i k1k2 =
      _mm_set_epi64x(0x00000001c6e41596, 0x0000000154442bd4);
  const __m128i k3k4 =
      _mm_set_epi64x(0x00000000ccaa009e, 0x00000001751997d0);
  const auto* q = reinterpret_cast<const __m128i*>(p);
  __m128i x0 = _mm_loadu_si128(q + 0);
  __m128i x1 = _mm_loadu_si128(q + 1);
  __m128i x2 = _mm_loadu_si128(q + 2);
  __m128i x3 = _mm_loadu_si128(q + 3);
  x0 = _mm_xor_si128(x0, _mm_cvtsi32_si128(static_cast<int>(crc)));
  p += 64;
  n -= 64;
  while (n >= 64) {
    q = reinterpret_cast<const __m128i*>(p);
    __m128i t;
    t = _mm_clmulepi64_si128(x0, k1k2, 0x00);
    x0 = _mm_clmulepi64_si128(x0, k1k2, 0x11);
    x0 = _mm_xor_si128(_mm_xor_si128(x0, t), _mm_loadu_si128(q + 0));
    t = _mm_clmulepi64_si128(x1, k1k2, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k1k2, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, t), _mm_loadu_si128(q + 1));
    t = _mm_clmulepi64_si128(x2, k1k2, 0x00);
    x2 = _mm_clmulepi64_si128(x2, k1k2, 0x11);
    x2 = _mm_xor_si128(_mm_xor_si128(x2, t), _mm_loadu_si128(q + 2));
    t = _mm_clmulepi64_si128(x3, k1k2, 0x00);
    x3 = _mm_clmulepi64_si128(x3, k1k2, 0x11);
    x3 = _mm_xor_si128(_mm_xor_si128(x3, t), _mm_loadu_si128(q + 3));
    p += 64;
    n -= 64;
  }
  __m128i t;
  t = _mm_clmulepi64_si128(x0, k3k4, 0x00);
  x0 = _mm_clmulepi64_si128(x0, k3k4, 0x11);
  x1 = _mm_xor_si128(x1, _mm_xor_si128(x0, t));
  t = _mm_clmulepi64_si128(x1, k3k4, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
  x2 = _mm_xor_si128(x2, _mm_xor_si128(x1, t));
  t = _mm_clmulepi64_si128(x2, k3k4, 0x00);
  x2 = _mm_clmulepi64_si128(x2, k3k4, 0x11);
  x3 = _mm_xor_si128(x3, _mm_xor_si128(x2, t));
  while (n >= 16) {
    t = _mm_clmulepi64_si128(x3, k3k4, 0x00);
    x3 = _mm_clmulepi64_si128(x3, k3k4, 0x11);
    x3 = _mm_xor_si128(
        _mm_xor_si128(x3, t),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
    p += 16;
    n -= 16;
  }
  alignas(16) std::uint8_t state[16];
  _mm_store_si128(reinterpret_cast<__m128i*>(state), x3);
  return crc32_slice8(crc32_slice8(0, state, 16), p, n);
}

bool pclmul_supported() {
  static const bool ok = __builtin_cpu_supports("pclmul") &&
                         __builtin_cpu_supports("sse4.1");
  return ok;
}

#endif  // DSADC_WIRE_HAVE_PCLMUL

/// Folds `n` bytes into the running (pre-inverted) CRC state `c`.
std::uint32_t crc32_update(std::uint32_t c, const std::uint8_t* p,
                           std::size_t n) {
#ifdef DSADC_WIRE_HAVE_PCLMUL
  if (n >= 64 && pclmul_supported()) return crc32_pclmul(c, p, n);
#endif
  return crc32_slice8(c, p, n);
}

bool known_frame_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::kOpen) &&
         t <= static_cast<std::uint8_t>(FrameType::kError);
}

}  // namespace

const char* frame_type_name(FrameType t) {
  switch (t) {
    case FrameType::kOpen: return "OPEN";
    case FrameType::kConfig: return "CONFIG";
    case FrameType::kData: return "DATA";
    case FrameType::kDrain: return "DRAIN";
    case FrameType::kClose: return "CLOSE";
    case FrameType::kAck: return "ACK";
    case FrameType::kDataOut: return "DATA_OUT";
    case FrameType::kDrained: return "DRAINED";
    case FrameType::kShed: return "SHED";
    case FrameType::kError: return "ERROR";
  }
  return "?";
}

const char* error_code_name(ErrorCode c) {
  switch (c) {
    case ErrorCode::kNone: return "none";
    case ErrorCode::kBadSeq: return "bad_seq";
    case ErrorCode::kNotOpen: return "not_open";
    case ErrorCode::kAlreadyOpen: return "already_open";
    case ErrorCode::kBadPreset: return "bad_preset";
    case ErrorCode::kBadPayload: return "bad_payload";
    case ErrorCode::kInternal: return "internal";
  }
  return "?";
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  return crc32_update(0xffffffffu, data, n) ^ 0xffffffffu;
}

ScanResult scan_frame(const std::uint8_t* data, std::size_t n,
                      FrameView* out, std::size_t* consumed,
                      std::string* error) {
  if (n < kHeaderBytes) return ScanResult::kNeedMore;
  if (get_u32(data) != kMagic) {
    if (error) *error = "bad magic";
    return ScanResult::kBad;
  }
  if (!known_frame_type(data[4])) {
    if (error) *error = "unknown frame type";
    return ScanResult::kBad;
  }
  const std::uint32_t len = get_u32(data + 16);
  if (len > kMaxPayloadBytes) {
    if (error) {
      *error = "payload length " + std::to_string(len) + " exceeds limit";
    }
    return ScanResult::kBad;
  }
  if (n < kHeaderBytes + len) return ScanResult::kNeedMore;

  // CRC runs over the header with a zeroed CRC field, then the payload;
  // feeding four zero bytes in place of the wire CRC avoids copying the
  // header just to blank it.
  const std::uint32_t wire_crc = get_u32(data + 20);
  static constexpr std::array<std::uint8_t, 4> kZeroCrcField{};
  std::uint32_t c = crc32_update(0xffffffffu, data, 20);
  c = crc32_update(c, kZeroCrcField.data(), 4);
  c = crc32_update(c, data + kHeaderBytes, len);
  if ((c ^ 0xffffffffu) != wire_crc) {
    if (error) *error = "CRC mismatch";
    return ScanResult::kBad;
  }

  out->type = static_cast<FrameType>(data[4]);
  out->flags = data[5];
  out->channel = get_u32(data + 8);
  out->seq = get_u32(data + 12);
  out->payload = std::span<const std::uint8_t>(data + kHeaderBytes, len);
  *consumed = kHeaderBytes + len;
  return ScanResult::kFrame;
}

void seal_frame(OutFrame& f, FrameType type, std::uint8_t flags,
                std::uint32_t channel, std::uint32_t seq) {
  std::uint8_t* h = f.header.data();
  const auto put = [](std::uint8_t* p, std::uint32_t v) {
    p[0] = static_cast<std::uint8_t>(v & 0xffu);
    p[1] = static_cast<std::uint8_t>((v >> 8) & 0xffu);
    p[2] = static_cast<std::uint8_t>((v >> 16) & 0xffu);
    p[3] = static_cast<std::uint8_t>((v >> 24) & 0xffu);
  };
  put(h, kMagic);
  h[4] = static_cast<std::uint8_t>(type);
  h[5] = flags;
  h[6] = 0;
  h[7] = 0;
  put(h + 8, channel);
  put(h + 12, seq);
  put(h + 16, static_cast<std::uint32_t>(f.payload.size()));
  put(h + 20, 0);
  std::uint32_t c = crc32_update(0xffffffffu, h, kHeaderBytes);
  c = crc32_update(c, f.payload.data(), f.payload.size());
  put(h + 20, c ^ 0xffffffffu);
}

void append_frame(std::vector<std::uint8_t>& out, const Frame& f) {
  const std::size_t start = out.size();
  out.reserve(start + kHeaderBytes + f.payload.size());
  put_u32(out, kMagic);
  out.push_back(static_cast<std::uint8_t>(f.type));
  out.push_back(f.flags);
  out.push_back(0);
  out.push_back(0);
  put_u32(out, f.channel);
  put_u32(out, f.seq);
  put_u32(out, static_cast<std::uint32_t>(f.payload.size()));
  put_u32(out, 0);  // CRC placeholder
  out.insert(out.end(), f.payload.begin(), f.payload.end());
  // CRC over header-with-zeroed-CRC + payload, patched in place.
  const std::uint32_t crc =
      crc32(out.data() + start, kHeaderBytes + f.payload.size());
  out[start + 20] = static_cast<std::uint8_t>(crc & 0xffu);
  out[start + 21] = static_cast<std::uint8_t>((crc >> 8) & 0xffu);
  out[start + 22] = static_cast<std::uint8_t>((crc >> 16) & 0xffu);
  out[start + 23] = static_cast<std::uint8_t>((crc >> 24) & 0xffu);
}

std::vector<std::uint8_t> encode_frame(const Frame& f) {
  std::vector<std::uint8_t> out;
  append_frame(out, f);
  return out;
}

std::vector<std::uint8_t> encode_u32(std::uint32_t v) {
  std::vector<std::uint8_t> p;
  put_u32(p, v);
  return p;
}

bool decode_u32(std::span<const std::uint8_t> payload, std::uint32_t* v) {
  if (payload.size() != 4) return false;
  *v = get_u32(payload.data());
  return true;
}

// The wire carries codes/samples little-endian, which matches the host
// layout on every supported target -- so the bulk codecs collapse to one
// memcpy there, with the bytewise form kept as the big-endian fallback.

std::vector<std::uint8_t> encode_codes(std::span<const std::int32_t> codes) {
  std::vector<std::uint8_t> p;
  if constexpr (std::endian::native == std::endian::little) {
    p.resize(codes.size() * 4);
    std::memcpy(p.data(), codes.data(), p.size());
  } else {
    p.reserve(codes.size() * 4);
    for (const std::int32_t c : codes) {
      put_u32(p, static_cast<std::uint32_t>(c));
    }
  }
  return p;
}

bool decode_codes(std::span<const std::uint8_t> payload,
                  std::vector<std::int32_t>* codes) {
  if (payload.size() % 4 != 0) return false;
  codes->resize(payload.size() / 4);
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(codes->data(), payload.data(), payload.size());
  } else {
    for (std::size_t i = 0; i < codes->size(); ++i) {
      (*codes)[i] =
          static_cast<std::int32_t>(get_u32(payload.data() + 4 * i));
    }
  }
  return true;
}

std::vector<std::uint8_t> encode_samples(
    std::span<const std::int64_t> samples) {
  std::vector<std::uint8_t> p;
  if constexpr (std::endian::native == std::endian::little) {
    p.resize(samples.size() * 8);
    std::memcpy(p.data(), samples.data(), p.size());
  } else {
    p.reserve(samples.size() * 8);
    for (const std::int64_t s : samples) {
      put_u64(p, static_cast<std::uint64_t>(s));
    }
  }
  return p;
}

bool decode_samples(std::span<const std::uint8_t> payload,
                    std::vector<std::int64_t>* samples) {
  if (payload.size() % 8 != 0) return false;
  samples->resize(payload.size() / 8);
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(samples->data(), payload.data(), payload.size());
  } else {
    for (std::size_t i = 0; i < samples->size(); ++i) {
      (*samples)[i] =
          static_cast<std::int64_t>(get_u64(payload.data() + 8 * i));
    }
  }
  return true;
}

std::shared_ptr<const decim::ChainConfig> preset_config(std::uint32_t id) {
  static std::mutex mu;
  static std::array<std::shared_ptr<const decim::ChainConfig>, kNumPresets>
      cache;
  if (id >= kNumPresets) return nullptr;
  std::lock_guard<std::mutex> lock(mu);
  if (!cache[id]) {
    decim::ChainConfig cfg = decim::paper_chain_config();
    if (id == 1) {
      // Half-scale variant: same filters, a different CSD scaler constant,
      // so reconfiguration is observable in the served samples.
      cfg.scale *= 0.5;
    }
    cache[id] = std::make_shared<const decim::ChainConfig>(std::move(cfg));
  }
  return cache[id];
}

namespace {

// Blob magic + version for serialized ChainConfigs. A preset payload is
// exactly 4 bytes; the blob is always longer and leads with this marker,
// so the two OPEN payload forms cannot be confused.
constexpr std::uint32_t kConfigMagic = 0x31474643u;  // "CFG1"
constexpr std::uint16_t kConfigVersion = 1;

// Element-count sanity caps: far above any real design, far below
// anything that could make decode allocate absurd amounts.
constexpr std::size_t kMaxCicStages = 16;
constexpr std::size_t kMaxCoeffs = 1u << 16;
constexpr std::size_t kMaxCsdDigits = 256;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xffu));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xffu));
}

void put_i32(std::vector<std::uint8_t>& out, int v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_f64_vec(std::vector<std::uint8_t>& out,
                 const std::vector<double>& v) {
  put_u32(out, static_cast<std::uint32_t>(v.size()));
  for (const double d : v) put_f64(out, d);
}

void put_csd_vec(std::vector<std::uint8_t>& out,
                 const std::vector<fx::Csd>& v) {
  put_u32(out, static_cast<std::uint32_t>(v.size()));
  for (const auto& csd : v) {
    put_u16(out, static_cast<std::uint16_t>(csd.digits.size()));
    for (const auto& d : csd.digits) {
      out.push_back(static_cast<std::uint8_t>(static_cast<std::int8_t>(d.sign)));
      put_u16(out, static_cast<std::uint16_t>(
                       static_cast<std::int16_t>(d.position)));
    }
  }
}

void put_format(std::vector<std::uint8_t>& out, const fx::Format& f) {
  put_u16(out, static_cast<std::uint16_t>(static_cast<std::int16_t>(f.width)));
  put_u16(out, static_cast<std::uint16_t>(static_cast<std::int16_t>(f.frac)));
}

/// Bounds-checked little-endian reader; every get_* fails sticky.
struct Reader {
  const std::uint8_t* p;
  std::size_t n;
  std::size_t off = 0;
  bool ok = true;

  bool need(std::size_t k) {
    if (!ok || n - off < k) {
      ok = false;
      return false;
    }
    return true;
  }
  std::uint8_t u8() {
    if (!need(1)) return 0;
    return p[off++];
  }
  std::uint16_t u16() {
    if (!need(2)) return 0;
    const std::uint16_t v = static_cast<std::uint16_t>(
        p[off] | (static_cast<std::uint16_t>(p[off + 1]) << 8));
    off += 2;
    return v;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    const std::uint32_t v = get_u32(p + off);
    off += 4;
    return v;
  }
  int i32() { return static_cast<std::int32_t>(u32()); }
  double f64() {
    if (!need(8)) return 0.0;
    const std::uint64_t bits = get_u64(p + off);
    off += 8;
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  bool f64_vec(std::vector<double>* out) {
    const std::uint32_t count = u32();
    if (!ok || count > kMaxCoeffs || !need(std::size_t{count} * 8)) {
      ok = false;
      return false;
    }
    out->resize(count);
    for (auto& d : *out) d = f64();
    return ok;
  }
  bool csd_vec(std::vector<fx::Csd>* out) {
    const std::uint32_t count = u32();
    if (!ok || count > kMaxCoeffs) {
      ok = false;
      return false;
    }
    out->resize(count);
    for (auto& csd : *out) {
      const std::uint16_t digits = u16();
      if (!ok || digits > kMaxCsdDigits || !need(std::size_t{digits} * 3)) {
        ok = false;
        return false;
      }
      csd.digits.resize(digits);
      for (auto& d : csd.digits) {
        d.sign = static_cast<std::int8_t>(u8());
        d.position = static_cast<std::int16_t>(u16());
      }
    }
    return ok;
  }
  fx::Format format() {
    fx::Format f;
    f.width = static_cast<std::int16_t>(u16());
    f.frac = static_cast<std::int16_t>(u16());
    return f;
  }
};

}  // namespace

std::vector<std::uint8_t> encode_chain_config(const decim::ChainConfig& cfg) {
  std::vector<std::uint8_t> out;
  put_u32(out, kConfigMagic);
  put_u16(out, kConfigVersion);
  put_u16(out, static_cast<std::uint16_t>(cfg.cic_stages.size()));
  for (const auto& s : cfg.cic_stages) {
    put_i32(out, s.order);
    put_i32(out, s.decimation);
    put_i32(out, s.input_bits);
  }
  put_f64_vec(out, cfg.hbf.f1);
  put_f64_vec(out, cfg.hbf.f2);
  put_csd_vec(out, cfg.hbf.f1_csd);
  put_csd_vec(out, cfg.hbf.f2_csd);
  put_f64_vec(out, cfg.hbf.taps);
  put_u32(out, static_cast<std::uint32_t>(cfg.hbf.n1));
  put_u32(out, static_cast<std::uint32_t>(cfg.hbf.n2));
  put_f64(out, cfg.hbf.passband_edge);
  put_f64(out, cfg.hbf.stopband_atten_db);
  put_f64(out, cfg.hbf.passband_ripple_db);
  put_u32(out, static_cast<std::uint32_t>(cfg.hbf.adder_count));
  put_f64(out, cfg.scale);
  put_f64_vec(out, cfg.equalizer_taps);
  put_i32(out, cfg.equalizer_frac_bits);
  put_i32(out, cfg.hbf_coeff_frac_bits);
  put_format(out, cfg.input_format);
  put_format(out, cfg.hbf_in_format);
  put_format(out, cfg.hbf_out_format);
  put_format(out, cfg.scaler_out_format);
  put_format(out, cfg.output_format);
  put_f64(out, cfg.input_rate_hz);
  return out;
}

bool decode_chain_config(std::span<const std::uint8_t> payload,
                         decim::ChainConfig* cfg) {
  Reader r{payload.data(), payload.size()};
  if (r.u32() != kConfigMagic || r.u16() != kConfigVersion) return false;
  decim::ChainConfig c;
  const std::uint16_t n_cic = r.u16();
  if (!r.ok || n_cic == 0 || n_cic > kMaxCicStages) return false;
  c.cic_stages.resize(n_cic);
  for (auto& s : c.cic_stages) {
    s.order = r.i32();
    s.decimation = r.i32();
    s.input_bits = r.i32();
  }
  if (!r.f64_vec(&c.hbf.f1) || !r.f64_vec(&c.hbf.f2)) return false;
  if (!r.csd_vec(&c.hbf.f1_csd) || !r.csd_vec(&c.hbf.f2_csd)) return false;
  if (!r.f64_vec(&c.hbf.taps)) return false;
  c.hbf.n1 = r.u32();
  c.hbf.n2 = r.u32();
  c.hbf.passband_edge = r.f64();
  c.hbf.stopband_atten_db = r.f64();
  c.hbf.passband_ripple_db = r.f64();
  c.hbf.adder_count = r.u32();
  c.scale = r.f64();
  if (!r.f64_vec(&c.equalizer_taps)) return false;
  c.equalizer_frac_bits = r.i32();
  c.hbf_coeff_frac_bits = r.i32();
  c.input_format = r.format();
  c.hbf_in_format = r.format();
  c.hbf_out_format = r.format();
  c.scaler_out_format = r.format();
  c.output_format = r.format();
  c.input_rate_hz = r.f64();
  if (!r.ok || r.off != payload.size()) return false;
  *cfg = std::move(c);
  return true;
}

void FrameParser::feed(const std::uint8_t* data, std::size_t n) {
  // Compact before growing once the consumed prefix dominates.
  if (off_ > 0 && off_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(off_));
    off_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

FrameParser::Result FrameParser::next(Frame* out) {
  // The copying compatibility shim over the zero-copy core: clients keep
  // the owning Frame interface; the server's event loop scans its receive
  // buffer with scan_frame directly and never materializes payloads.
  FrameView view;
  std::size_t consumed = 0;
  switch (scan_frame(buf_.data() + off_, buffered(), &view, &consumed,
                     &error_)) {
    case ScanResult::kNeedMore:
      return Result::kNeedMore;
    case ScanResult::kBad:
      return Result::kBad;
    case ScanResult::kFrame:
      break;
  }
  out->type = view.type;
  out->flags = view.flags;
  out->channel = view.channel;
  out->seq = view.seq;
  out->payload.assign(view.payload.begin(), view.payload.end());
  off_ += consumed;
  return Result::kFrame;
}

}  // namespace dsadc::service
