// Client library for the decimation service: used by the tests, the
// dsadc_client load generator and the soak harness.
//
// A Client owns one socket connection plus a receiver thread that
// parses server frames into per-channel state: decimated samples
// (DATA_OUT, concatenated in arrival order -- which the server
// guarantees is stream order per channel), acks, drain markers, shed
// notices and errors. Senders run on the caller's thread under a mutex;
// DATA sequence numbers are assigned automatically per channel (or
// explicitly via send_data_seq / send_raw for fault injection).
//
// set_paused(true) makes the receiver stop reading the socket without
// closing it -- the slow-consumer lever the backpressure tests pull.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "src/service/wire.h"

namespace dsadc::service {

class Client {
 public:
  /// Factory ctors; throw std::runtime_error when the connect fails.
  static std::unique_ptr<Client> connect_unix(const std::string& path);
  static std::unique_ptr<Client> connect_tcp(const std::string& host,
                                             std::uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // --- senders (caller thread; false once the connection is down) ------
  /// `lockstep` sets the OPEN frame's LOCKSTEP flag: the server may batch
  /// this channel's DATA frames with co-configured lockstep tenants
  /// (bit-exact either way; purely a throughput hint).
  bool open(std::uint32_t channel, std::uint32_t preset = 0,
            bool lockstep = false);
  /// OPEN with a fully serialized ChainConfig instead of a preset id.
  bool open_config(std::uint32_t channel, const decim::ChainConfig& cfg,
                   bool lockstep = false);
  bool reconfigure(std::uint32_t channel, std::uint32_t preset);
  bool reconfigure_config(std::uint32_t channel,
                          const decim::ChainConfig& cfg);
  bool send_data(std::uint32_t channel, std::span<const std::int32_t> codes);
  bool send_data_seq(std::uint32_t channel, std::uint32_t seq,
                     std::span<const std::int32_t> codes);
  bool drain(std::uint32_t channel);
  bool close_channel(std::uint32_t channel);
  /// Raw bytes straight onto the socket (fault injection).
  bool send_raw(const void* data, std::size_t n);

  // --- received state ---------------------------------------------------
  std::vector<std::int64_t> samples(std::uint32_t channel) const;
  std::size_t sample_count(std::uint32_t channel) const;
  std::size_t ack_count(std::uint32_t channel) const;
  std::size_t shed_count(std::uint32_t channel) const;
  std::size_t drained_count(std::uint32_t channel) const;
  /// (channel, code) pairs in arrival order.
  std::vector<std::pair<std::uint32_t, ErrorCode>> errors() const;

  using Millis = std::chrono::milliseconds;
  bool wait_sample_count(std::uint32_t channel, std::size_t n, Millis t);
  bool wait_ack_count(std::uint32_t channel, std::size_t n, Millis t);
  bool wait_drained(std::uint32_t channel, std::size_t n, Millis t);
  bool wait_error(ErrorCode code, Millis t);
  bool wait_shed_count(std::uint32_t channel, std::size_t n, Millis t);
  /// Wait until total sheds (all channels) reaches n.
  bool wait_total_sheds(std::size_t n, Millis t);

  /// Observe every received frame on the receiver thread, before the
  /// frame updates the per-channel state. The benches use this to stamp
  /// wire-to-wire frame latency; keep the hook cheap. Set before any
  /// frame can arrive (right after connect) -- the hook is not locked
  /// against the receiver.
  using FrameHook =
      std::function<void(FrameType type, std::uint32_t channel,
                         std::uint32_t seq, std::size_t payload_bytes)>;
  void set_frame_hook(FrameHook hook) { frame_hook_ = std::move(hook); }

  /// Pause/resume the receiver's socket reads (slow-consumer emulation).
  void set_paused(bool paused);
  /// Receiver saw EOF/error or a malformed frame.
  bool disconnected() const;
  /// Abrupt teardown: close the socket immediately (mid-stream
  /// disconnect emulation), then join the receiver.
  void shutdown_now();

 private:
  explicit Client(int fd);
  void receiver_loop();
  bool send_frame(const Frame& f);

  int fd_;
  std::thread receiver_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  struct ChannelState {
    std::vector<std::int64_t> samples;
    std::size_t acks = 0;
    std::size_t sheds = 0;
    std::size_t drains = 0;
  };
  std::map<std::uint32_t, ChannelState> channels_;
  std::vector<std::pair<std::uint32_t, ErrorCode>> errors_;
  std::size_t total_sheds_ = 0;
  bool disconnected_ = false;

  FrameHook frame_hook_;

  std::mutex send_mu_;
  std::map<std::uint32_t, std::uint32_t> send_seq_;
  std::atomic<bool> paused_{false};
  std::atomic<bool> closing_{false};
};

}  // namespace dsadc::service
