#include "src/service/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

namespace dsadc::service::net {
namespace {

std::string errno_string(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

int listen_unix(const std::string& path, std::string* err) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    if (err) *err = "unix socket path too long: " + path;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (err) *err = errno_string("socket(AF_UNIX)");
    return -1;
  }
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (err) *err = errno_string("bind(" + path + ")");
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 64) < 0) {
    if (err) *err = errno_string("listen");
    ::close(fd);
    return -1;
  }
  return fd;
}

int listen_tcp(std::uint16_t port, std::uint16_t* bound, std::string* err) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (err) *err = errno_string("socket(AF_INET)");
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (err) *err = errno_string("bind(127.0.0.1)");
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 64) < 0) {
    if (err) *err = errno_string("listen");
    ::close(fd);
    return -1;
  }
  if (bound != nullptr) {
    sockaddr_in got{};
    socklen_t len = sizeof(got);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&got), &len) == 0) {
      *bound = ntohs(got.sin_port);
    }
  }
  return fd;
}

int connect_unix(const std::string& path, std::string* err) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    if (err) *err = "unix socket path too long: " + path;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (err) *err = errno_string("socket(AF_UNIX)");
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    if (err) *err = errno_string("connect(" + path + ")");
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_tcp(const std::string& host, std::uint16_t port,
                std::string* err) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (err) *err = errno_string("socket(AF_INET)");
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (err) *err = "bad IPv4 address: " + host;
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    if (err) *err = errno_string("connect(" + host + ")");
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const auto sent = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(sent);
  }
  return true;
}

bool writev_all(int fd, struct iovec* iov, int iovcnt) {
  int first = 0;
  while (first < iovcnt) {
    msghdr msg{};
    msg.msg_iov = iov + first;
    msg.msg_iovlen = static_cast<std::size_t>(iovcnt - first);
    const auto sent = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    std::size_t left = static_cast<std::size_t>(sent);
    while (first < iovcnt && left >= iov[first].iov_len) {
      left -= iov[first].iov_len;
      ++first;
    }
    if (first < iovcnt && left > 0) {
      iov[first].iov_base = static_cast<std::uint8_t*>(iov[first].iov_base) +
                            left;
      iov[first].iov_len -= left;
    }
  }
  return true;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

long recv_some(int fd, std::uint8_t* buf, std::size_t n) {
  for (;;) {
    const auto got = ::recv(fd, buf, n, 0);
    if (got < 0 && errno == EINTR) continue;
    return static_cast<long>(got);
  }
}

std::string unique_socket_path(const std::string& tag) {
  static std::atomic<unsigned> counter{0};
  return "/tmp/dsadc_" + tag + "_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

}  // namespace dsadc::service::net
