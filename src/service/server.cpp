#include "src/service/server.h"

#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/eventfd.h>
#endif

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/store/store.h"
#include "src/service/net.h"

namespace dsadc::service {
namespace {

using runtime::SessionJob;
using runtime::SessionOp;
using runtime::SessionResult;
using runtime::SessionStatus;

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long n = std::strtol(v, nullptr, 10);
    if (n >= 1) return static_cast<std::size_t>(n);
  }
  return fallback;
}

/// Channel-scoped tenant counter: service.<what> and service.<what>.ch<id>.
void count_tenant(const char* what, std::uint32_t channel,
                  std::uint64_t n = 1) {
  if (!obs::enabled()) return;
  auto& reg = obs::Registry::instance();
  const std::string base = std::string("service.") + what;
  reg.counter(base).add(n);
  reg.counter(base + ".ch" + std::to_string(channel)).add(n);
}

void count_service(const char* what, std::uint64_t n = 1) {
  if (!obs::enabled()) return;
  obs::Registry::instance().counter(std::string("service.") + what).add(n);
}

/// Trace-store record of one DATA-frame admission decision (value = codes
/// in the frame, aux = client sequence number).
void store_admission(bool accepted, std::uint32_t channel,
                     std::uint64_t frames, std::uint32_t seq) {
  if (!obs::store::enabled()) return;
  static const std::uint32_t accepted_id = obs::store::intern("frame.accepted");
  static const std::uint32_t shed_id = obs::store::intern("frame.shed");
  obs::store::Event e;
  e.category = obs::store::Category::kService;
  e.name = accepted ? accepted_id : shed_id;
  e.channel = channel;
  e.value = static_cast<std::int64_t>(frames);
  e.aux = seq;
  obs::store::emit(e);
}

ErrorCode status_error(SessionStatus s) {
  switch (s) {
    case SessionStatus::kOk: return ErrorCode::kNone;
    case SessionStatus::kNotOpen: return ErrorCode::kNotOpen;
    case SessionStatus::kAlreadyOpen: return ErrorCode::kAlreadyOpen;
    case SessionStatus::kError: return ErrorCode::kInternal;
  }
  return ErrorCode::kInternal;
}

OutFrame make_frame(FrameType type, std::uint32_t channel, std::uint32_t seq,
                    std::vector<std::uint8_t> payload = {}) {
  OutFrame f;
  f.payload = std::move(payload);
  seal_frame(f, type, 0, channel, seq);
  return f;
}

constexpr std::size_t kRecvBufInitial = 16 * 1024;
constexpr std::size_t kRecvBufMax = kHeaderBytes + kMaxPayloadBytes;

}  // namespace

ServerOptions options_from_env() {
  ServerOptions o;
  if (const char* p = std::getenv("DSADC_SERVICE_POLICY")) {
    if (std::strcmp(p, "shed") == 0) {
      o.policy = runtime::SessionRuntime::Overload::kShed;
    } else {
      o.policy = runtime::SessionRuntime::Overload::kBlock;
    }
  }
  o.shards = env_size("DSADC_SERVICE_SHARDS", o.shards);
  o.workers = env_size("DSADC_SERVICE_THREADS", 0);
  o.queue_capacity = env_size("DSADC_SERVICE_QUEUE_CAP", o.queue_capacity);
  o.out_queue_capacity =
      env_size("DSADC_SERVICE_OUT_CAP", o.out_queue_capacity);
  if (const char* io = std::getenv("DSADC_SERVICE_IO")) {
    if (std::strcmp(io, "threads") == 0) {
      o.io = IoBackend::kThreads;
    } else if (std::strcmp(io, "epoll") == 0) {
      o.io = IoBackend::kEpoll;
    }
  }
  o.event_threads = env_size("DSADC_SERVICE_EVENT_THREADS", o.event_threads);
  if (const char* v = std::getenv("DSADC_SERVICE_BATCH_LINGER_US")) {
    o.batch_linger_us = std::strtol(v, nullptr, 10);
  }
  return o;
}

struct Server::Connection {
  Connection(int fd_, std::uint64_t id_, std::size_t out_cap, bool epoll_)
      : fd(fd_), id(id_), epoll(epoll_), out(epoll_ ? 2 : out_cap) {}

  int fd;
  std::uint64_t id;
  const bool epoll;
  /// Sealed server->client frames awaiting the writer (threads backend).
  /// Producers: the worker-pool callbacks plus the reader.
  runtime::MpmcRing<OutFrame> out;
  std::atomic<bool> dead{false};        ///< socket send failed; discard
  std::atomic<std::size_t> jobs{0};     ///< submitted, callback not done
  std::atomic<bool> reader_done{false};
  std::thread reader;  ///< threads backend
  std::thread writer;  ///< threads backend

  /// Receive buffer the zero-copy scan runs over; owned by the reader
  /// thread (threads backend) or the pinned event thread (epoll backend).
  /// FrameView payloads borrow [0, in_len) until the post-scan compaction.
  std::vector<std::uint8_t> in_buf;
  std::size_t in_len = 0;

  // Reader/event-thread-only session bookkeeping.
  std::unordered_map<std::uint32_t, std::uint32_t> next_seq;
  std::unordered_set<std::uint32_t> opened;

  // --- epoll backend state ---
  EventThread* owner = nullptr;  ///< pinned event thread (id % N)
  /// Output queue; shared with worker callbacks (unlike the ring above,
  /// unbounded under kBlock -- input pausing bounds it end to end).
  std::mutex out_mu;
  std::deque<OutFrame> outq;
  /// Collapses duplicate entries in the owner's flush queue.
  std::atomic<bool> flush_queued{false};

  // Event-thread-only I/O state.
  bool writable = false;   ///< last EPOLLOUT edge not yet consumed by EAGAIN
  bool stalled = false;    ///< input paused: output queue over the cap
  bool input_done = false; ///< EOF/protocol error seen; stop reading
  bool finalized = false;  ///< deregistered from epoll
  OutFrame wip;            ///< frame partially written to the socket
  std::size_t wip_off = 0;
  bool wip_active = false;

  std::uint64_t key(std::uint32_t channel) const {
    return (id << 32) | channel;
  }

  /// Close the output ring once the reader finished and every inflight
  /// job's callback ran; the writer exits after draining it.
  void maybe_close_out() {
    if (reader_done.load(std::memory_order_acquire) &&
        jobs.load(std::memory_order_acquire) == 0) {
      out.close();
    }
  }
};

#ifdef __linux__
/// One edge-triggered epoll loop plus its wake channel. Connections are
/// pinned to an event thread by id, so all of a connection's parse and
/// I/O state is single-threaded; only the flush queue and the output
/// deques are crossed by worker callbacks.
struct Server::EventThread {
  int ep = -1;
  int wake_fd = -1;
  std::thread th;
  std::atomic<bool> stop{false};

  std::mutex mu;
  std::vector<std::shared_ptr<Connection>> fresh;  ///< awaiting epoll ADD
  std::vector<std::shared_ptr<Connection>> flush;  ///< new output queued

  /// Registered connections (event-thread only); keeps them alive while
  /// epoll holds raw pointers.
  std::unordered_map<Connection*, std::shared_ptr<Connection>> owned;

  void wake() {
    const std::uint64_t one = 1;
    (void)!::write(wake_fd, &one, sizeof(one));
  }
};
#else
struct Server::EventThread {};
#endif

Server::Server(ServerOptions opts) : opts_(std::move(opts)) {
#ifndef __linux__
  opts_.io = IoBackend::kThreads;  // epoll is Linux-only
#endif
  if (opts_.event_threads == 0) opts_.event_threads = 1;
  runtime::SessionRuntime::Options ro;
  ro.shards = opts_.shards;
  ro.workers = opts_.workers;
  ro.queue_capacity = opts_.queue_capacity;
  ro.policy = opts_.policy;
  ro.batch_linger_us = opts_.batch_linger_us;
  runtime_ = std::make_unique<runtime::SessionRuntime>(ro);
}

Server::~Server() { stop(); }

std::size_t Server::connection_count() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return conns_.size();
}

void Server::start() {
  if (started_.exchange(true)) return;
  std::string err;
  if (!opts_.unix_path.empty()) {
    const int fd = net::listen_unix(opts_.unix_path, &err);
    if (fd < 0) throw std::runtime_error("service: " + err);
    listen_fds_.push_back(fd);
  }
  if (opts_.tcp) {
    const int fd = net::listen_tcp(opts_.tcp_port, &bound_port_, &err);
    if (fd < 0) throw std::runtime_error("service: " + err);
    listen_fds_.push_back(fd);
  }
  if (listen_fds_.empty()) {
    throw std::runtime_error(
        "service: no listener configured (set unix_path and/or tcp)");
  }
#ifdef __linux__
  if (opts_.io == IoBackend::kEpoll) {
    for (std::size_t i = 0; i < opts_.event_threads; ++i) {
      auto et = std::make_unique<EventThread>();
      et->ep = ::epoll_create1(0);
      et->wake_fd = ::eventfd(0, EFD_NONBLOCK);
      if (et->ep < 0 || et->wake_fd < 0) {
        throw std::runtime_error("service: epoll/eventfd setup failed");
      }
      epoll_event ev{};
      ev.events = EPOLLIN;  // level-triggered wake channel
      ev.data.ptr = nullptr;
      ::epoll_ctl(et->ep, EPOLL_CTL_ADD, et->wake_fd, &ev);
      et->th = std::thread([this, p = et.get()] { event_loop(*p); });
      events_.push_back(std::move(et));
    }
  }
#endif
  accept_threads_.reserve(listen_fds_.size());
  for (const int fd : listen_fds_) {
    accept_threads_.emplace_back([this, fd] { accept_loop(fd); });
  }
}

void Server::accept_loop(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) return;
      if (errno == EINTR) continue;
      return;  // listener closed or broken
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    count_service("connections");
    spawn_connection(fd);
  }
}

void Server::spawn_connection(int fd) {
  const bool epoll_mode = !events_.empty();
  auto conn = std::make_shared<Connection>(
      fd, next_conn_id_.fetch_add(1), opts_.out_queue_capacity, epoll_mode);
  if (epoll_mode) {
#ifdef __linux__
    net::set_nonblocking(fd);
    auto& et = *events_[conn->id % events_.size()];
    conn->owner = &et;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(conn);
    }
    {
      std::lock_guard<std::mutex> lock(et.mu);
      et.fresh.push_back(std::move(conn));
    }
    et.wake();
#endif
    return;
  }
  conn->reader = std::thread([this, conn] { reader_loop(conn); });
  conn->writer = std::thread([this, conn] { writer_loop(conn); });
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_.push_back(std::move(conn));
}

void Server::conn_send(const std::shared_ptr<Connection>& conn,
                       OutFrame&& f) {
  if (conn->dead.load(std::memory_order_relaxed)) return;
  if (!conn->epoll) {
    if (opts_.policy == runtime::SessionRuntime::Overload::kShed) {
      if (!conn->out.try_push(f)) count_service("shed_out");
    } else {
      // Blocking: backpressure onto the producing worker. Returns false
      // only when the ring was closed during teardown; the frame is moot.
      (void)conn->out.push(std::move(f));
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    if (opts_.policy == runtime::SessionRuntime::Overload::kShed &&
        conn->outq.size() >= opts_.out_queue_capacity) {
      count_service("shed_out");
      return;
    }
    conn->outq.push_back(std::move(f));
  }
  schedule_flush(conn);
}

void Server::schedule_flush(const std::shared_ptr<Connection>& conn) {
#ifdef __linux__
  auto* et = conn->owner;
  if (et == nullptr) return;
  if (conn->flush_queued.exchange(true, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lock(et->mu);
    et->flush.push_back(conn);
  }
  et->wake();
#else
  (void)conn;
#endif
}

void Server::finish_job(const std::shared_ptr<Connection>& conn) {
  conn->jobs.fetch_sub(1, std::memory_order_acq_rel);
  if (conn->epoll) {
    // Revisit the connection so the event thread can finalize it once the
    // last callback has run (output drained + reader done).
    schedule_flush(conn);
  } else {
    conn->maybe_close_out();
  }
}

std::shared_ptr<const decim::ChainConfig> Server::resolve_config(
    std::span<const std::uint8_t> payload, ErrorCode* err) {
  if (payload.size() == 4) {
    std::uint32_t preset = 0;
    (void)decode_u32(payload, &preset);
    auto cfg = preset_config(preset);
    if (!cfg) *err = ErrorCode::kBadPreset;
    return cfg;
  }
  // Full serialized ChainConfig. Interned by payload bytes: tenants that
  // send the identical blob share one config object, which is what lets
  // their lockstep sessions batch (grouping keys on the pointer).
  std::string key(payload.begin(), payload.end());
  {
    std::lock_guard<std::mutex> lock(cfg_mu_);
    const auto it = cfg_cache_.find(key);
    if (it != cfg_cache_.end()) return it->second;
  }
  decim::ChainConfig cfg;
  if (!decode_chain_config(payload, &cfg)) {
    *err = ErrorCode::kBadPayload;
    return nullptr;
  }
  auto shared = std::make_shared<const decim::ChainConfig>(std::move(cfg));
  std::lock_guard<std::mutex> lock(cfg_mu_);
  return cfg_cache_.emplace(std::move(key), std::move(shared)).first->second;
}

void Server::handle_frame(const std::shared_ptr<Connection>& conn,
                          const FrameView& f) {
  const std::uint32_t ch = f.channel;
  const std::uint32_t seq = f.seq;

  const auto reject = [&](ErrorCode code) {
    count_service("rejected");
    conn_send(conn,
              make_frame(FrameType::kError, ch, seq,
                         encode_u32(static_cast<std::uint32_t>(code))));
  };

  switch (f.type) {
    case FrameType::kOpen:
    case FrameType::kConfig: {
      ErrorCode err = ErrorCode::kBadPayload;
      auto cfg = resolve_config(f.payload, &err);
      if (!cfg) {
        reject(err);
        return;
      }
      if (f.type == FrameType::kOpen) {
        conn->next_seq[ch] = 0;
        conn->opened.insert(ch);
      }
      SessionJob job;
      job.session = conn->key(ch);
      job.op = f.type == FrameType::kOpen ? SessionOp::kOpen
                                          : SessionOp::kReconfigure;
      job.config = std::move(cfg);
      job.lockstep =
          f.type == FrameType::kOpen && (f.flags & kFlagLockstep) != 0;
      const FrameType acked = f.type;
      job.done = [this, conn, ch, seq, acked](SessionResult r) {
        if (r.status == SessionStatus::kOk) {
          conn_send(conn,
                    make_frame(FrameType::kAck, ch, seq,
                               encode_u32(static_cast<std::uint32_t>(acked))));
        } else {
          conn_send(conn, make_frame(FrameType::kError, ch, seq,
                                     encode_u32(static_cast<std::uint32_t>(
                                         status_error(r.status)))));
        }
        finish_job(conn);
      };
      conn->jobs.fetch_add(1, std::memory_order_acq_rel);
      if (!runtime_->submit(std::move(job))) finish_job(conn);
      return;
    }

    case FrameType::kData: {
      const auto it = conn->next_seq.find(ch);
      if (it != conn->next_seq.end()) {
        if (seq != it->second) {
          reject(ErrorCode::kBadSeq);
          return;  // dropped; the expected sequence number is unchanged
        }
        ++it->second;
      }
      SessionJob job;
      job.session = conn->key(ch);
      job.op = SessionOp::kData;
      if (!decode_codes(f.payload, &job.codes)) {
        reject(ErrorCode::kBadPayload);
        return;
      }
      const std::size_t frames = job.codes.size();
      const auto t0 = std::chrono::steady_clock::now();
      job.done = [this, conn, ch, seq, frames, t0](SessionResult r) {
        if (r.status == SessionStatus::kOk) {
          if (!r.samples.empty()) {
            conn_send(conn, make_frame(FrameType::kDataOut, ch, seq,
                                       encode_samples(r.samples)));
          }
          if (obs::enabled()) {
            const std::chrono::duration<double> dt =
                std::chrono::steady_clock::now() - t0;
            if (dt.count() > 0.0) {
              obs::Registry::instance()
                  .gauge("service.throughput_sps.ch" + std::to_string(ch))
                  .set(static_cast<double>(frames) / dt.count());
            }
          }
        } else {
          conn_send(conn, make_frame(FrameType::kError, ch, seq,
                                     encode_u32(static_cast<std::uint32_t>(
                                         status_error(r.status)))));
        }
        finish_job(conn);
      };
      conn->jobs.fetch_add(1, std::memory_order_acq_rel);
      if (runtime_->submit(std::move(job))) {
        count_tenant("accepted", ch);
        store_admission(true, ch, frames, seq);
      } else {
        finish_job(conn);
        count_tenant("shed", ch);
        store_admission(false, ch, frames, seq);
        conn_send(conn, make_frame(FrameType::kShed, ch, seq));
      }
      return;
    }

    case FrameType::kDrain:
    case FrameType::kClose: {
      if (f.type == FrameType::kClose) conn->next_seq.erase(ch);
      SessionJob job;
      job.session = conn->key(ch);
      job.op =
          f.type == FrameType::kDrain ? SessionOp::kDrain : SessionOp::kClose;
      const bool drain = f.type == FrameType::kDrain;
      job.done = [this, conn, ch, seq, drain](SessionResult r) {
        if (r.status == SessionStatus::kOk) {
          if (drain) {
            if (!r.samples.empty()) {
              conn_send(conn, make_frame(FrameType::kDataOut, ch, seq,
                                         encode_samples(r.samples)));
            }
            conn_send(conn, make_frame(FrameType::kDrained, ch, seq));
          } else {
            conn_send(conn,
                      make_frame(FrameType::kAck, ch, seq,
                                 encode_u32(static_cast<std::uint32_t>(
                                     FrameType::kClose))));
          }
        } else {
          conn_send(conn, make_frame(FrameType::kError, ch, seq,
                                     encode_u32(static_cast<std::uint32_t>(
                                         status_error(r.status)))));
        }
        finish_job(conn);
      };
      conn->jobs.fetch_add(1, std::memory_order_acq_rel);
      if (!runtime_->submit(std::move(job))) finish_job(conn);
      return;
    }

    default:
      // Server->client frame types arriving at the server.
      reject(ErrorCode::kBadPayload);
      return;
  }
}

bool Server::process_input(const std::shared_ptr<Connection>& conn) {
  auto& buf = conn->in_buf;
  std::size_t off = 0;
  bool ok = true;
  while (off < conn->in_len) {
    FrameView view;
    std::size_t consumed = 0;
    std::string err;
    const ScanResult res =
        scan_frame(buf.data() + off, conn->in_len - off, &view, &consumed,
                   &err);
    if (res == ScanResult::kFrame) {
      handle_frame(conn, view);  // view borrows buf; consumed before moving
      off += consumed;
      continue;
    }
    if (res == ScanResult::kNeedMore) break;
    // kBad: the byte stream is unsynchronized -- report, then drop this
    // connection. Other tenants are unaffected.
    count_service("bad_frames");
    DSADC_LOG_WARN("service", "dropping connection %llu: %s",
                   static_cast<unsigned long long>(conn->id), err.c_str());
    conn_send(conn, make_frame(FrameType::kError, 0, 0,
                               encode_u32(static_cast<std::uint32_t>(
                                   ErrorCode::kBadPayload))));
    ok = false;
    break;
  }
  // Compact: FrameView spans die here.
  if (off > 0) {
    std::memmove(buf.data(), buf.data() + off, conn->in_len - off);
    conn->in_len -= off;
  }
  // A frame larger than the buffer can never complete without growth.
  if (ok && conn->in_len == buf.size() && buf.size() < kRecvBufMax) {
    buf.resize(std::min(buf.size() * 2, kRecvBufMax));
  }
  return ok;
}

void Server::teardown(const std::shared_ptr<Connection>& conn) {
  // Close every session this connection opened so a vanished client never
  // leaks chain state; results are discarded (the ring is about to close).
  for (const std::uint32_t ch : conn->opened) {
    SessionJob job;
    job.session = conn->key(ch);
    job.op = SessionOp::kClose;
    (void)runtime_->submit(std::move(job));
  }
  conn->opened.clear();
  conn->reader_done.store(true, std::memory_order_release);
  if (!conn->epoll) conn->maybe_close_out();
}

void Server::reader_loop(const std::shared_ptr<Connection>& conn) {
  conn->in_buf.resize(kRecvBufInitial);
  bool protocol_error = false;
  for (;;) {
    const long n = net::recv_some(conn->fd, conn->in_buf.data() + conn->in_len,
                                  conn->in_buf.size() - conn->in_len);
    if (n <= 0) break;
    conn->in_len += static_cast<std::size_t>(n);
    if (!process_input(conn)) {
      protocol_error = true;
      break;
    }
  }
  if (protocol_error) ::shutdown(conn->fd, SHUT_RD);
  teardown(conn);
}

void Server::writer_loop(const std::shared_ptr<Connection>& conn) {
  OutFrame f;
  while (conn->out.pop(f)) {
    if (conn->dead.load(std::memory_order_relaxed)) continue;  // discard
    iovec iov[2];
    iov[0] = {f.header.data(), kHeaderBytes};
    int cnt = 1;
    if (!f.payload.empty()) {
      iov[cnt++] = {f.payload.data(), f.payload.size()};
    }
    if (!net::writev_all(conn->fd, iov, cnt)) {
      conn->dead.store(true, std::memory_order_relaxed);
    }
  }
  // Ring closed: every response is flushed. Signal EOF so the client
  // observes the teardown without waiting for server stop.
  ::shutdown(conn->fd, SHUT_WR);
}

#ifdef __linux__

void Server::on_readable(EventThread& et,
                         const std::shared_ptr<Connection>& conn) {
  (void)et;
  if (conn->input_done) return;
  if (conn->in_buf.empty()) conn->in_buf.resize(kRecvBufInitial);
  for (;;) {
    // Paused input is the kBlock backpressure: leave bytes in the socket
    // buffer so TCP/unix flow control reaches the client. flush_out
    // resumes us once the output queue drains. Stop overrides the pause
    // so shutdown can always reach the EOF.
    if (conn->stalled && !stopping_.load(std::memory_order_acquire)) return;
    const auto n =
        ::recv(conn->fd, conn->in_buf.data() + conn->in_len,
               conn->in_buf.size() - conn->in_len, 0);
    if (n > 0) {
      conn->in_len += static_cast<std::size_t>(n);
      if (!process_input(conn)) {
        conn->input_done = true;
        ::shutdown(conn->fd, SHUT_RD);
        teardown(conn);
        return;
      }
      if (opts_.policy == runtime::SessionRuntime::Overload::kBlock) {
        std::lock_guard<std::mutex> lock(conn->out_mu);
        if (conn->outq.size() >= opts_.out_queue_capacity) {
          conn->stalled = true;
        }
      }
      continue;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
    }
    // EOF or hard error: no more input ever.
    conn->input_done = true;
    teardown(conn);
    return;
  }
}

void Server::flush_out(EventThread& et,
                       const std::shared_ptr<Connection>& conn) {
  if (conn->finalized) return;
  if (conn->dead.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    conn->outq.clear();
    conn->wip_active = false;
  }
  while (conn->writable && !conn->dead.load(std::memory_order_relaxed)) {
    if (!conn->wip_active) {
      std::lock_guard<std::mutex> lock(conn->out_mu);
      if (conn->outq.empty()) break;
      conn->wip = std::move(conn->outq.front());
      conn->outq.pop_front();
      conn->wip_active = true;
      conn->wip_off = 0;
    }
    const std::size_t total = kHeaderBytes + conn->wip.payload.size();
    iovec iov[2];
    int cnt = 0;
    std::size_t off = conn->wip_off;
    if (off < kHeaderBytes) {
      iov[cnt++] = {conn->wip.header.data() + off, kHeaderBytes - off};
      off = 0;
    } else {
      off -= kHeaderBytes;
    }
    if (off < conn->wip.payload.size()) {
      iov[cnt++] = {conn->wip.payload.data() + off,
                    conn->wip.payload.size() - off};
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(cnt);
    const auto sent = ::sendmsg(conn->fd, &msg, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        conn->writable = false;  // wait for the next EPOLLOUT edge
        break;
      }
      if (errno == EINTR) continue;
      conn->dead.store(true, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(conn->out_mu);
      conn->outq.clear();
      conn->wip_active = false;
      break;
    }
    conn->wip_off += static_cast<std::size_t>(sent);
    if (conn->wip_off == total) conn->wip_active = false;
  }
  // Resume paused input once the queue is half-drained (hysteresis so a
  // border-line queue does not flap the stall bit every frame).
  if (conn->stalled) {
    bool low;
    {
      std::lock_guard<std::mutex> lock(conn->out_mu);
      low = conn->outq.size() <= opts_.out_queue_capacity / 2;
    }
    if (low) {
      conn->stalled = false;
      on_readable(et, conn);
    }
  }
  // Finalize: reader saw EOF, every job's callback ran, output is flushed
  // (or the socket died). Mirror the threads backend's teardown order.
  if (conn->reader_done.load(std::memory_order_acquire) &&
      conn->jobs.load(std::memory_order_acquire) == 0) {
    bool drained;
    {
      std::lock_guard<std::mutex> lock(conn->out_mu);
      drained = conn->outq.empty() && !conn->wip_active;
    }
    if (drained || conn->dead.load(std::memory_order_relaxed)) {
      conn->finalized = true;
      ::shutdown(conn->fd, SHUT_WR);
      ::epoll_ctl(et.ep, EPOLL_CTL_DEL, conn->fd, nullptr);
      et.owned.erase(conn.get());
    }
  }
}

void Server::event_loop(EventThread& et) {
  std::vector<epoll_event> evs(64);
  while (!et.stop.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(et.ep, evs.data(),
                               static_cast<int>(evs.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const auto& ev = evs[i];
      if (ev.data.ptr == nullptr) {
        // Wake channel: drain it, register fresh connections, run flushes.
        std::uint64_t junk;
        while (::read(et.wake_fd, &junk, sizeof(junk)) > 0) {
        }
        std::vector<std::shared_ptr<Connection>> fresh, flush;
        {
          std::lock_guard<std::mutex> lock(et.mu);
          fresh.swap(et.fresh);
          flush.swap(et.flush);
        }
        for (auto& c : fresh) {
          epoll_event reg{};
          reg.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
          reg.data.ptr = c.get();
          ::epoll_ctl(et.ep, EPOLL_CTL_ADD, c->fd, &reg);
          et.owned.emplace(c.get(), c);
          // Edge-triggered: consume anything that raced the registration.
          on_readable(et, c);
          flush_out(et, c);
        }
        for (auto& c : flush) {
          // Clear BEFORE flushing: a producer that pushes after this sees
          // flush_queued==false and re-queues, so no frame is stranded.
          c->flush_queued.store(false, std::memory_order_release);
          const auto it = et.owned.find(c.get());
          if (it != et.owned.end()) flush_out(et, it->second);
        }
        continue;
      }
      auto* cp = static_cast<Connection*>(ev.data.ptr);
      const auto it = et.owned.find(cp);
      if (it == et.owned.end()) continue;  // finalized earlier this batch
      auto conn = it->second;  // keep alive across a possible finalize
      if (ev.events & EPOLLOUT) conn->writable = true;
      if (ev.events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) {
        on_readable(et, conn);
      }
      flush_out(et, conn);
    }
  }
}

#else  // !__linux__

void Server::event_loop(EventThread&) {}
void Server::on_readable(EventThread&, const std::shared_ptr<Connection>&) {}
void Server::flush_out(EventThread&, const std::shared_ptr<Connection>&) {}

#endif

void Server::stop() {
  if (stopped_.exchange(true)) return;
  stopping_.store(true, std::memory_order_release);

  // Listeners down first: no new connections.
  for (const int fd : listen_fds_) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  for (auto& t : accept_threads_) t.join();
  listen_fds_.clear();
  accept_threads_.clear();

  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns = conns_;
  }
  // Wake readers (recv returns 0) and fail writers' sends so a slow or
  // vanished consumer cannot wedge the drain.
  for (const auto& c : conns) ::shutdown(c->fd, SHUT_RDWR);
#ifdef __linux__
  if (!events_.empty()) {
    // The shutdowns above raise EPOLLIN/EPOLLRDHUP edges; the event
    // threads run the EOF path (teardown) for every connection, including
    // ones still waiting in a fresh list. Wait for that quiesce -- after
    // it no thread submits jobs anymore.
    for (const auto& et : events_) et->wake();
    for (const auto& c : conns) {
      while (!c->reader_done.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  }
#endif
  for (const auto& c : conns) {
    if (c->reader.joinable()) c->reader.join();
  }
  // Input is quiesced; drain every admitted job so callbacks finish and
  // the output paths close.
  runtime_->stop();
#ifdef __linux__
  for (const auto& et : events_) {
    et->stop.store(true, std::memory_order_release);
    et->wake();
  }
  for (const auto& et : events_) {
    if (et->th.joinable()) et->th.join();
    if (et->ep >= 0) ::close(et->ep);
    if (et->wake_fd >= 0) ::close(et->wake_fd);
  }
  events_.clear();
#endif
  for (const auto& c : conns) {
    if (c->writer.joinable()) c->writer.join();
    ::close(c->fd);
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.clear();
  }
  if (!opts_.unix_path.empty()) ::unlink(opts_.unix_path.c_str());
}

}  // namespace dsadc::service
