#include "src/service/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/store/store.h"
#include "src/service/net.h"

namespace dsadc::service {
namespace {

using runtime::SessionJob;
using runtime::SessionOp;
using runtime::SessionResult;
using runtime::SessionStatus;

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long n = std::strtol(v, nullptr, 10);
    if (n >= 1) return static_cast<std::size_t>(n);
  }
  return fallback;
}

/// Channel-scoped tenant counter: service.<what> and service.<what>.ch<id>.
void count_tenant(const char* what, std::uint32_t channel,
                  std::uint64_t n = 1) {
  if (!obs::enabled()) return;
  auto& reg = obs::Registry::instance();
  const std::string base = std::string("service.") + what;
  reg.counter(base).add(n);
  reg.counter(base + ".ch" + std::to_string(channel)).add(n);
}

void count_service(const char* what, std::uint64_t n = 1) {
  if (!obs::enabled()) return;
  obs::Registry::instance().counter(std::string("service.") + what).add(n);
}

/// Trace-store record of one DATA-frame admission decision (value = codes
/// in the frame, aux = client sequence number).
void store_admission(bool accepted, std::uint32_t channel,
                     std::uint64_t frames, std::uint32_t seq) {
  if (!obs::store::enabled()) return;
  static const std::uint32_t accepted_id = obs::store::intern("frame.accepted");
  static const std::uint32_t shed_id = obs::store::intern("frame.shed");
  obs::store::Event e;
  e.category = obs::store::Category::kService;
  e.name = accepted ? accepted_id : shed_id;
  e.channel = channel;
  e.value = static_cast<std::int64_t>(frames);
  e.aux = seq;
  obs::store::emit(e);
}

ErrorCode status_error(SessionStatus s) {
  switch (s) {
    case SessionStatus::kOk: return ErrorCode::kNone;
    case SessionStatus::kNotOpen: return ErrorCode::kNotOpen;
    case SessionStatus::kAlreadyOpen: return ErrorCode::kAlreadyOpen;
    case SessionStatus::kError: return ErrorCode::kInternal;
  }
  return ErrorCode::kInternal;
}

}  // namespace

ServerOptions options_from_env() {
  ServerOptions o;
  if (const char* p = std::getenv("DSADC_SERVICE_POLICY")) {
    if (std::strcmp(p, "shed") == 0) {
      o.policy = runtime::SessionRuntime::Overload::kShed;
    } else {
      o.policy = runtime::SessionRuntime::Overload::kBlock;
    }
  }
  o.shards = env_size("DSADC_SERVICE_SHARDS", o.shards);
  o.workers = env_size("DSADC_SERVICE_THREADS", 0);
  o.queue_capacity = env_size("DSADC_SERVICE_QUEUE_CAP", o.queue_capacity);
  o.out_queue_capacity =
      env_size("DSADC_SERVICE_OUT_CAP", o.out_queue_capacity);
  return o;
}

struct Server::Connection {
  Connection(int fd_, std::uint64_t id_, std::size_t out_cap)
      : fd(fd_), id(id_), out(out_cap) {}

  int fd;
  std::uint64_t id;
  /// Encoded server->client frames awaiting the writer. Producers: the
  /// worker-pool callbacks plus the reader (errors, shed notices).
  runtime::MpmcRing<std::vector<std::uint8_t>> out;
  std::atomic<bool> dead{false};        ///< socket send failed; discard
  std::atomic<std::size_t> jobs{0};     ///< submitted, callback not done
  std::atomic<bool> reader_done{false};
  std::thread reader;
  std::thread writer;

  // Reader-thread-only session bookkeeping.
  std::unordered_map<std::uint32_t, std::uint32_t> next_seq;
  std::unordered_set<std::uint32_t> opened;

  std::uint64_t key(std::uint32_t channel) const {
    return (id << 32) | channel;
  }

  /// Close the output ring once the reader finished and every inflight
  /// job's callback ran; the writer exits after draining it.
  void maybe_close_out() {
    if (reader_done.load(std::memory_order_acquire) &&
        jobs.load(std::memory_order_acquire) == 0) {
      out.close();
    }
  }
};

Server::Server(ServerOptions opts) : opts_(std::move(opts)) {
  runtime::SessionRuntime::Options ro;
  ro.shards = opts_.shards;
  ro.workers = opts_.workers;
  ro.queue_capacity = opts_.queue_capacity;
  ro.policy = opts_.policy;
  runtime_ = std::make_unique<runtime::SessionRuntime>(ro);
}

Server::~Server() { stop(); }

std::size_t Server::connection_count() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return conns_.size();
}

void Server::start() {
  if (started_.exchange(true)) return;
  std::string err;
  if (!opts_.unix_path.empty()) {
    const int fd = net::listen_unix(opts_.unix_path, &err);
    if (fd < 0) throw std::runtime_error("service: " + err);
    listen_fds_.push_back(fd);
  }
  if (opts_.tcp) {
    const int fd = net::listen_tcp(opts_.tcp_port, &bound_port_, &err);
    if (fd < 0) throw std::runtime_error("service: " + err);
    listen_fds_.push_back(fd);
  }
  if (listen_fds_.empty()) {
    throw std::runtime_error(
        "service: no listener configured (set unix_path and/or tcp)");
  }
  accept_threads_.reserve(listen_fds_.size());
  for (const int fd : listen_fds_) {
    accept_threads_.emplace_back([this, fd] { accept_loop(fd); });
  }
}

void Server::accept_loop(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) return;
      if (errno == EINTR) continue;
      return;  // listener closed or broken
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    count_service("connections");
    spawn_connection(fd);
  }
}

void Server::spawn_connection(int fd) {
  auto conn = std::make_shared<Connection>(
      fd, next_conn_id_.fetch_add(1), opts_.out_queue_capacity);
  conn->reader = std::thread([this, conn] { reader_loop(conn); });
  conn->writer = std::thread([this, conn] { writer_loop(conn); });
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_.push_back(std::move(conn));
}

void Server::conn_send(const std::shared_ptr<Connection>& conn,
                       const Frame& f) {
  if (conn->dead.load(std::memory_order_relaxed)) return;
  std::vector<std::uint8_t> bytes = encode_frame(f);
  if (opts_.policy == runtime::SessionRuntime::Overload::kShed) {
    if (!conn->out.try_push(bytes)) count_service("shed_out");
  } else {
    // Blocking: backpressure onto the producing worker. Returns false
    // only when the ring was closed during teardown; the frame is moot.
    (void)conn->out.push(std::move(bytes));
  }
}

void Server::finish_job(const std::shared_ptr<Connection>& conn) {
  conn->jobs.fetch_sub(1, std::memory_order_acq_rel);
  conn->maybe_close_out();
}

void Server::handle_frame(const std::shared_ptr<Connection>& conn,
                          Frame&& f) {
  const std::uint32_t ch = f.channel;
  const std::uint32_t seq = f.seq;

  const auto reject = [&](ErrorCode code) {
    count_service("rejected");
    Frame e;
    e.type = FrameType::kError;
    e.channel = ch;
    e.seq = seq;
    e.payload = encode_u32(static_cast<std::uint32_t>(code));
    conn_send(conn, e);
  };

  switch (f.type) {
    case FrameType::kOpen:
    case FrameType::kConfig: {
      std::uint32_t preset = 0;
      if (!decode_u32(f.payload, &preset)) {
        reject(ErrorCode::kBadPayload);
        return;
      }
      auto cfg = preset_config(preset);
      if (!cfg) {
        reject(ErrorCode::kBadPreset);
        return;
      }
      if (f.type == FrameType::kOpen) {
        conn->next_seq[ch] = 0;
        conn->opened.insert(ch);
      }
      SessionJob job;
      job.session = conn->key(ch);
      job.op = f.type == FrameType::kOpen ? SessionOp::kOpen
                                          : SessionOp::kReconfigure;
      job.config = std::move(cfg);
      const FrameType acked = f.type;
      job.done = [this, conn, ch, seq, acked](SessionResult r) {
        Frame resp;
        resp.channel = ch;
        resp.seq = seq;
        if (r.status == SessionStatus::kOk) {
          resp.type = FrameType::kAck;
          resp.payload = encode_u32(static_cast<std::uint32_t>(acked));
        } else {
          resp.type = FrameType::kError;
          resp.payload = encode_u32(
              static_cast<std::uint32_t>(status_error(r.status)));
        }
        conn_send(conn, resp);
        finish_job(conn);
      };
      conn->jobs.fetch_add(1, std::memory_order_acq_rel);
      if (!runtime_->submit(std::move(job))) finish_job(conn);
      return;
    }

    case FrameType::kData: {
      const auto it = conn->next_seq.find(ch);
      if (it != conn->next_seq.end()) {
        if (seq != it->second) {
          reject(ErrorCode::kBadSeq);
          return;  // dropped; the expected sequence number is unchanged
        }
        ++it->second;
      }
      SessionJob job;
      job.session = conn->key(ch);
      job.op = SessionOp::kData;
      if (!decode_codes(f.payload, &job.codes)) {
        reject(ErrorCode::kBadPayload);
        return;
      }
      const std::size_t frames = job.codes.size();
      const auto t0 = std::chrono::steady_clock::now();
      job.done = [this, conn, ch, seq, frames, t0](SessionResult r) {
        if (r.status == SessionStatus::kOk) {
          if (!r.samples.empty()) {
            Frame out;
            out.type = FrameType::kDataOut;
            out.channel = ch;
            out.seq = seq;
            out.payload = encode_samples(r.samples);
            conn_send(conn, out);
          }
          if (obs::enabled()) {
            const std::chrono::duration<double> dt =
                std::chrono::steady_clock::now() - t0;
            if (dt.count() > 0.0) {
              obs::Registry::instance()
                  .gauge("service.throughput_sps.ch" + std::to_string(ch))
                  .set(static_cast<double>(frames) / dt.count());
            }
          }
        } else {
          Frame e;
          e.type = FrameType::kError;
          e.channel = ch;
          e.seq = seq;
          e.payload = encode_u32(
              static_cast<std::uint32_t>(status_error(r.status)));
          conn_send(conn, e);
        }
        finish_job(conn);
      };
      conn->jobs.fetch_add(1, std::memory_order_acq_rel);
      if (runtime_->submit(std::move(job))) {
        count_tenant("accepted", ch);
        store_admission(true, ch, frames, seq);
      } else {
        finish_job(conn);
        count_tenant("shed", ch);
        store_admission(false, ch, frames, seq);
        Frame shed;
        shed.type = FrameType::kShed;
        shed.channel = ch;
        shed.seq = seq;
        conn_send(conn, shed);
      }
      return;
    }

    case FrameType::kDrain:
    case FrameType::kClose: {
      if (f.type == FrameType::kClose) conn->next_seq.erase(ch);
      SessionJob job;
      job.session = conn->key(ch);
      job.op =
          f.type == FrameType::kDrain ? SessionOp::kDrain : SessionOp::kClose;
      const bool drain = f.type == FrameType::kDrain;
      job.done = [this, conn, ch, seq, drain](SessionResult r) {
        if (r.status == SessionStatus::kOk) {
          if (drain) {
            if (!r.samples.empty()) {
              Frame out;
              out.type = FrameType::kDataOut;
              out.channel = ch;
              out.seq = seq;
              out.payload = encode_samples(r.samples);
              conn_send(conn, out);
            }
            Frame done;
            done.type = FrameType::kDrained;
            done.channel = ch;
            done.seq = seq;
            conn_send(conn, done);
          } else {
            Frame resp;
            resp.type = FrameType::kAck;
            resp.channel = ch;
            resp.seq = seq;
            resp.payload = encode_u32(
                static_cast<std::uint32_t>(FrameType::kClose));
            conn_send(conn, resp);
          }
        } else {
          Frame e;
          e.type = FrameType::kError;
          e.channel = ch;
          e.seq = seq;
          e.payload = encode_u32(
              static_cast<std::uint32_t>(status_error(r.status)));
          conn_send(conn, e);
        }
        finish_job(conn);
      };
      conn->jobs.fetch_add(1, std::memory_order_acq_rel);
      if (!runtime_->submit(std::move(job))) finish_job(conn);
      return;
    }

    default:
      // Server->client frame types arriving at the server.
      reject(ErrorCode::kBadPayload);
      return;
  }
}

void Server::teardown(const std::shared_ptr<Connection>& conn) {
  // Close every session this connection opened so a vanished client never
  // leaks chain state; results are discarded (the ring is about to close).
  for (const std::uint32_t ch : conn->opened) {
    SessionJob job;
    job.session = conn->key(ch);
    job.op = SessionOp::kClose;
    (void)runtime_->submit(std::move(job));
  }
  conn->opened.clear();
  conn->reader_done.store(true, std::memory_order_release);
  conn->maybe_close_out();
}

void Server::reader_loop(const std::shared_ptr<Connection>& conn) {
  std::vector<std::uint8_t> buf(64 * 1024);
  FrameParser parser;
  bool protocol_error = false;
  for (;;) {
    const long n = net::recv_some(conn->fd, buf.data(), buf.size());
    if (n <= 0) break;
    parser.feed(buf.data(), static_cast<std::size_t>(n));
    Frame f;
    FrameParser::Result res;
    while ((res = parser.next(&f)) == FrameParser::Result::kFrame) {
      handle_frame(conn, std::move(f));
    }
    if (res == FrameParser::Result::kBad) {
      // The byte stream is unsynchronized: report, then drop this
      // connection. Other tenants are unaffected.
      count_service("bad_frames");
      DSADC_LOG_WARN("service", "dropping connection %llu: %s",
                     static_cast<unsigned long long>(conn->id),
                     parser.error().c_str());
      Frame e;
      e.type = FrameType::kError;
      e.payload =
          encode_u32(static_cast<std::uint32_t>(ErrorCode::kBadPayload));
      conn_send(conn, e);
      protocol_error = true;
      break;
    }
  }
  if (protocol_error) ::shutdown(conn->fd, SHUT_RD);
  teardown(conn);
}

void Server::writer_loop(const std::shared_ptr<Connection>& conn) {
  std::vector<std::uint8_t> msg;
  while (conn->out.pop(msg)) {
    if (conn->dead.load(std::memory_order_relaxed)) continue;  // discard
    if (!net::send_all(conn->fd, msg.data(), msg.size())) {
      conn->dead.store(true, std::memory_order_relaxed);
    }
  }
  // Ring closed: every response is flushed. Signal EOF so the client
  // observes the teardown without waiting for server stop.
  ::shutdown(conn->fd, SHUT_WR);
}

void Server::stop() {
  if (stopped_.exchange(true)) return;
  stopping_.store(true, std::memory_order_release);

  // Listeners down first: no new connections.
  for (const int fd : listen_fds_) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  for (auto& t : accept_threads_) t.join();
  listen_fds_.clear();
  accept_threads_.clear();

  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns = conns_;
  }
  // Wake readers (recv returns 0) and fail writers' sends so a slow or
  // vanished consumer cannot wedge the drain.
  for (const auto& c : conns) ::shutdown(c->fd, SHUT_RDWR);
  for (const auto& c : conns) c->reader.join();
  // Readers are quiesced; drain every admitted job so callbacks finish
  // and the output rings close, then the writers exit.
  runtime_->stop();
  for (const auto& c : conns) {
    c->writer.join();
    ::close(c->fd);
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.clear();
  }
  if (!opts_.unix_path.empty()) ::unlink(opts_.unix_path.c_str());
}

}  // namespace dsadc::service
