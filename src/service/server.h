// Decimation-as-a-service: the socket front-end over runtime::SessionRuntime.
//
// A Server listens on a unix-domain socket and/or 127.0.0.1 TCP. Each
// accepted connection gets a reader thread (parse + validate frames,
// admit jobs) and a writer thread (drain the connection's bounded output
// ring to the socket). Channel ids are scoped per connection -- session
// key = (connection id << 32) | channel -- so tenants cannot touch each
// other's streams; with the default power-of-two shard count the shard a
// channel lands on is simply channel mod shards.
//
// Data path:
//
//   reader --validate/seq-check--> SessionRuntime shard ring
//          --worker pool--> DecimationChain::process --> encode DATA_OUT
//          --> connection output MpmcRing --> writer --> socket
//
// Backpressure and overload (ServerOptions::policy):
//  * kBlock: full shard ring blocks the reader (TCP/unix flow control
//    pushes back to the client); full output ring blocks the worker,
//    which stalls that connection's shard only -- zero sample loss.
//  * kShed: full shard ring drops the DATA frame, counts service.shed
//    and notifies the client with a SHED frame carrying the dropped
//    sequence number; full output ring drops the outbound frame and
//    counts service.shed_out. Workers never block on a slow consumer.
//
// Lifecycle frames (OPEN/CONFIG/DRAIN/CLOSE) are never shed. A
// malformed byte stream (bad magic/CRC/length) terminates only that
// connection; its sessions are closed and other tenants are unaffected.
//
// Per-tenant metrics (src/obs): service.accepted[.ch<id>],
// service.shed[.ch<id>], service.shed_out, service.rejected,
// service.bad_frames, service.connections counters, the
// service.inflight gauge (admitted jobs not yet executed) and
// service.throughput_sps.ch<id> gauges.
//
// I/O backends (ServerOptions::io, DSADC_SERVICE_IO):
//  * kThreads: the blocking path above -- two threads per connection.
//  * kEpoll (default on Linux): a small pool of event threads, each
//    running an edge-triggered epoll loop over its share of the
//    connections (pinned by connection id). Frames are scanned in place
//    in the connection's receive buffer (wire.h scan_frame -- the payload
//    is never copied into an intermediate Frame) and responses leave via
//    writev as header+payload iovec pairs. Worker callbacks enqueue
//    OutFrames and wake the owning event thread through an eventfd.
//    Backpressure under kBlock pauses a connection's *input* when its
//    output queue passes the cap (TCP flow control then pushes back),
//    so an event thread never blocks on a slow client.
//
// Environment knobs (all optional; see options_from_env):
//   DSADC_SERVICE_POLICY        block | shed
//   DSADC_SERVICE_SHARDS        shard count (default 16)
//   DSADC_SERVICE_THREADS       worker count (default DSADC_RUNTIME_THREADS
//                               or hardware concurrency)
//   DSADC_SERVICE_QUEUE_CAP     jobs per shard ring (default 64)
//   DSADC_SERVICE_OUT_CAP       frames per connection output ring (256)
//   DSADC_SERVICE_IO            epoll | threads (default epoll on Linux)
//   DSADC_SERVICE_EVENT_THREADS epoll event threads (default 2)
//   DSADC_SERVICE_BATCH_LINGER_US  lockstep group linger (default 20000)
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/runtime/session.h"
#include "src/service/wire.h"

namespace dsadc::service {

enum class IoBackend : std::uint8_t {
  kThreads,  ///< blocking reader/writer thread pair per connection
  kEpoll,    ///< edge-triggered event-thread pool (Linux; default there)
};

struct ServerOptions {
  std::string unix_path;       ///< empty -> no unix listener
  bool tcp = false;            ///< also listen on 127.0.0.1
  std::uint16_t tcp_port = 0;  ///< 0 -> ephemeral (see Server::tcp_port)
  runtime::SessionRuntime::Overload policy =
      runtime::SessionRuntime::Overload::kBlock;
  std::size_t shards = 16;
  std::size_t workers = 0;  ///< 0 -> configured_threads()
  std::size_t queue_capacity = 64;
  std::size_t out_queue_capacity = 256;
#ifdef __linux__
  IoBackend io = IoBackend::kEpoll;
#else
  IoBackend io = IoBackend::kThreads;
#endif
  std::size_t event_threads = 2;  ///< epoll backend only
  /// Lockstep batch-group linger (runtime::SessionRuntime::Options).
  std::int64_t batch_linger_us = 20000;
};

/// Defaults overlaid with the DSADC_SERVICE_* environment knobs.
ServerOptions options_from_env();

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + spawn the accept/worker machinery. Throws
  /// std::runtime_error when no listener can be established.
  void start();

  /// Drain every admitted job, flush/close connections, join all
  /// threads. Idempotent; the destructor calls it.
  void stop();

  const std::string& unix_path() const { return opts_.unix_path; }
  /// Bound TCP port (after start(), when opts.tcp).
  std::uint16_t tcp_port() const { return bound_port_; }

  std::size_t inflight() const { return runtime_->inflight(); }
  std::size_t connection_count() const;
  const ServerOptions& options() const { return opts_; }

 private:
  struct Connection;
  struct EventThread;

  void accept_loop(int listen_fd);
  void spawn_connection(int fd);
  void reader_loop(const std::shared_ptr<Connection>& conn);
  void writer_loop(const std::shared_ptr<Connection>& conn);
  /// Dispatch one validated frame. `f.payload` borrows the connection's
  /// receive buffer; anything that outlives the call (job codes, config
  /// blobs) is decoded out of the span here.
  void handle_frame(const std::shared_ptr<Connection>& conn,
                    const FrameView& f);
  /// Scan + dispatch every complete frame in the connection's receive
  /// buffer, then compact. False on a malformed stream (kBad).
  bool process_input(const std::shared_ptr<Connection>& conn);
  /// Close the connection's sessions (reader-thread teardown path).
  void teardown(const std::shared_ptr<Connection>& conn);
  /// Enqueue one sealed server->client frame per the overload policy.
  void conn_send(const std::shared_ptr<Connection>& conn, OutFrame&& f);
  void finish_job(const std::shared_ptr<Connection>& conn);
  /// Resolve an OPEN/CONFIG payload: 4-byte preset id or serialized
  /// ChainConfig. Identical blobs intern to one shared config object so
  /// lockstep tenants of the same config can batch (grouping is by
  /// pointer). nullptr -> *err says why.
  std::shared_ptr<const decim::ChainConfig> resolve_config(
      std::span<const std::uint8_t> payload, ErrorCode* err);

  // --- epoll backend ---
  void event_loop(EventThread& et);
  void on_readable(EventThread& et, const std::shared_ptr<Connection>& conn);
  void flush_out(EventThread& et, const std::shared_ptr<Connection>& conn);
  /// Hand the connection to its event thread's flush queue (collapses
  /// duplicates via Connection::flush_queued) and wake it.
  void schedule_flush(const std::shared_ptr<Connection>& conn);

  ServerOptions opts_;
  std::unique_ptr<runtime::SessionRuntime> runtime_;
  std::vector<int> listen_fds_;
  std::vector<std::thread> accept_threads_;
  std::vector<std::unique_ptr<EventThread>> events_;
  std::uint16_t bound_port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> started_{false};
  std::atomic<std::uint32_t> next_conn_id_{1};

  mutable std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;

  /// OPEN/CONFIG blob interning: payload bytes -> decoded config, shared
  /// across sessions and connections.
  std::mutex cfg_mu_;
  std::unordered_map<std::string, std::shared_ptr<const decim::ChainConfig>>
      cfg_cache_;
};

}  // namespace dsadc::service
