// Framed binary wire protocol for the decimation service.
//
// Every message is one frame: a fixed 24-byte little-endian header plus a
// variable payload, protected end to end by a CRC-32 (IEEE 802.3
// polynomial) over the header (with the CRC field zeroed) and the
// payload:
//
//   offset  size  field
//        0     4  magic 0x44534443 ("DSDC")
//        4     1  type (FrameType)
//        5     1  flags (reserved, 0)
//        6     2  reserved (0)
//        8     4  channel id
//       12     4  sequence number
//       16     4  payload length in bytes
//       20     4  CRC-32
//
// Client -> server: OPEN / CONFIG (payload: u32 preset id), DATA
// (payload: int32 modulator codes, little-endian; `seq` must increment by
// one per DATA frame per channel starting at 0 after OPEN), DRAIN, CLOSE.
//
// Server -> client: ACK (payload: u32 acknowledged FrameType), DATA_OUT
// (payload: int64 decimated samples in the chain's output format; `seq`
// is a per-channel output frame counter), DRAINED (end of a drain's
// flush tail), SHED (the DATA frame with this `seq` was dropped by the
// overload policy), ERROR (payload: u32 ErrorCode).
//
// A frame that fails validation (bad magic, oversized payload, bad CRC,
// unknown type) means the byte stream itself cannot be trusted, so the
// parser reports kBad and the server drops the connection; per-session
// errors (unknown channel, bad sequence number, unknown preset) are
// well-formed ERROR frames on an intact connection.
//
// docs/SERVICE.md holds the full protocol specification.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/decimator/chain.h"

namespace dsadc::service {

inline constexpr std::uint32_t kMagic = 0x44534443u;  // "DSDC" (LE "CDSD")
inline constexpr std::size_t kHeaderBytes = 24;
/// Upper bound on payload size: 256K codes per DATA frame.
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 20;

enum class FrameType : std::uint8_t {
  // client -> server
  kOpen = 1,
  kConfig = 2,
  kData = 3,
  kDrain = 4,
  kClose = 5,
  // server -> client
  kAck = 6,
  kDataOut = 7,
  kDrained = 8,
  kShed = 9,
  kError = 10,
};

enum class ErrorCode : std::uint32_t {
  kNone = 0,
  kBadSeq = 1,       ///< DATA sequence number out of order (frame dropped)
  kNotOpen = 2,      ///< operation on a channel that is not open
  kAlreadyOpen = 3,  ///< OPEN on a channel that is already open
  kBadPreset = 4,    ///< unknown configuration preset id
  kBadPayload = 5,   ///< payload malformed for the frame type
  kInternal = 6,     ///< server-side execution failure
};

const char* frame_type_name(FrameType t);
const char* error_code_name(ErrorCode c);

struct Frame {
  FrameType type = FrameType::kData;
  std::uint8_t flags = 0;
  std::uint32_t channel = 0;
  std::uint32_t seq = 0;
  std::vector<std::uint8_t> payload;
};

/// CRC-32 (IEEE 802.3, reflected, init/final 0xffffffff) of `n` bytes.
std::uint32_t crc32(const std::uint8_t* data, std::size_t n);

/// Serialize a frame (header CRC included) onto `out`.
void append_frame(std::vector<std::uint8_t>& out, const Frame& f);
std::vector<std::uint8_t> encode_frame(const Frame& f);

// --- payload codecs ------------------------------------------------------

std::vector<std::uint8_t> encode_u32(std::uint32_t v);
bool decode_u32(std::span<const std::uint8_t> payload, std::uint32_t* v);

std::vector<std::uint8_t> encode_codes(std::span<const std::int32_t> codes);
bool decode_codes(std::span<const std::uint8_t> payload,
                  std::vector<std::int32_t>* codes);

std::vector<std::uint8_t> encode_samples(
    std::span<const std::int64_t> samples);
bool decode_samples(std::span<const std::uint8_t> payload,
                    std::vector<std::int64_t>* samples);

// --- configuration presets ----------------------------------------------

/// OPEN/CONFIG payloads name a chain preset instead of serializing a full
/// ChainConfig: 0 is the paper chain, 1 a half-scale variant (different
/// CSD scaler, observably distinct output). Unknown ids -> nullptr.
/// Presets are designed once and shared (the design flow is expensive).
std::shared_ptr<const decim::ChainConfig> preset_config(std::uint32_t id);
inline constexpr std::uint32_t kNumPresets = 2;

// --- incremental parser --------------------------------------------------

/// Feed raw received bytes, pull whole validated frames. After kBad the
/// stream is unsynchronized and the connection must be dropped.
class FrameParser {
 public:
  enum class Result { kFrame, kNeedMore, kBad };

  void feed(const std::uint8_t* data, std::size_t n);
  Result next(Frame* out);
  const std::string& error() const { return error_; }
  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered() const { return buf_.size() - off_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t off_ = 0;
  std::string error_;
};

}  // namespace dsadc::service
