// Framed binary wire protocol for the decimation service.
//
// Every message is one frame: a fixed 24-byte little-endian header plus a
// variable payload, protected end to end by a CRC-32 (IEEE 802.3
// polynomial) over the header (with the CRC field zeroed) and the
// payload:
//
//   offset  size  field
//        0     4  magic 0x44534443 ("DSDC")
//        4     1  type (FrameType)
//        5     1  flags (bit 0: LOCKSTEP on OPEN; other bits reserved, 0)
//        6     2  reserved (0)
//        8     4  channel id
//       12     4  sequence number
//       16     4  payload length in bytes
//       20     4  CRC-32
//
// Client -> server: OPEN / CONFIG (payload: u32 preset id, or a full
// serialized ChainConfig -- see encode_chain_config), DATA
// (payload: int32 modulator codes, little-endian; `seq` must increment by
// one per DATA frame per channel starting at 0 after OPEN), DRAIN, CLOSE.
//
// Server -> client: ACK (payload: u32 acknowledged FrameType), DATA_OUT
// (payload: int64 decimated samples in the chain's output format; `seq`
// is a per-channel output frame counter), DRAINED (end of a drain's
// flush tail), SHED (the DATA frame with this `seq` was dropped by the
// overload policy), ERROR (payload: u32 ErrorCode).
//
// A frame that fails validation (bad magic, oversized payload, bad CRC,
// unknown type) means the byte stream itself cannot be trusted, so the
// parser reports kBad and the server drops the connection; per-session
// errors (unknown channel, bad sequence number, unknown preset) are
// well-formed ERROR frames on an intact connection.
//
// docs/SERVICE.md holds the full protocol specification.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/decimator/chain.h"

namespace dsadc::service {

inline constexpr std::uint32_t kMagic = 0x44534443u;  // "DSDC" (LE "CDSD")
inline constexpr std::size_t kHeaderBytes = 24;
/// Upper bound on payload size: 256K codes per DATA frame.
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 20;

/// OPEN flag: the session volunteers for lockstep batch serving -- the
/// server may coalesce its DATA frames with other lockstep tenants of the
/// same configuration into an SoA group (bit-exact either way; purely a
/// performance hint). Ignored on other frame types.
inline constexpr std::uint8_t kFlagLockstep = 0x01;

enum class FrameType : std::uint8_t {
  // client -> server
  kOpen = 1,
  kConfig = 2,
  kData = 3,
  kDrain = 4,
  kClose = 5,
  // server -> client
  kAck = 6,
  kDataOut = 7,
  kDrained = 8,
  kShed = 9,
  kError = 10,
};

enum class ErrorCode : std::uint32_t {
  kNone = 0,
  kBadSeq = 1,       ///< DATA sequence number out of order (frame dropped)
  kNotOpen = 2,      ///< operation on a channel that is not open
  kAlreadyOpen = 3,  ///< OPEN on a channel that is already open
  kBadPreset = 4,    ///< unknown configuration preset id
  kBadPayload = 5,   ///< payload malformed for the frame type
  kInternal = 6,     ///< server-side execution failure
};

const char* frame_type_name(FrameType t);
const char* error_code_name(ErrorCode c);

struct Frame {
  FrameType type = FrameType::kData;
  std::uint8_t flags = 0;
  std::uint32_t channel = 0;
  std::uint32_t seq = 0;
  std::vector<std::uint8_t> payload;
};

/// A parsed frame whose payload BORROWS the caller's receive buffer
/// (zero-copy). The span is valid only until the underlying buffer is
/// compacted, grown, or refilled -- i.e. within the current scan pass.
/// Anything that must outlive the pass (e.g. a session job's code block)
/// must be decoded out of the span before the next buffer mutation.
struct FrameView {
  FrameType type = FrameType::kData;
  std::uint8_t flags = 0;
  std::uint32_t channel = 0;
  std::uint32_t seq = 0;
  std::span<const std::uint8_t> payload;
};

enum class ScanResult { kFrame, kNeedMore, kBad };

/// Validate one frame at the start of `data` (magic, type, length, CRC).
/// On kFrame: fills `*out` with spans into `data` and sets `*consumed` to
/// the frame's total wire size. On kBad: `*error` (when non-null) says
/// why. Never copies the payload -- this is the borrowing core both the
/// server's event loop and FrameParser are built on.
ScanResult scan_frame(const std::uint8_t* data, std::size_t n,
                      FrameView* out, std::size_t* consumed,
                      std::string* error);

/// CRC-32 (IEEE 802.3, reflected, init/final 0xffffffff) of `n` bytes.
std::uint32_t crc32(const std::uint8_t* data, std::size_t n);

/// Serialize a frame (header CRC included) onto `out`.
void append_frame(std::vector<std::uint8_t>& out, const Frame& f);
std::vector<std::uint8_t> encode_frame(const Frame& f);

/// An outbound frame held as header + detached payload, so the writer can
/// hand both to writev() without gluing them into one buffer (the second
/// per-frame memcpy the blocking path used to pay). Payload vectors are
/// recycled through the connection's buffer pool.
struct OutFrame {
  std::array<std::uint8_t, kHeaderBytes> header{};
  std::vector<std::uint8_t> payload;
};

/// Fill `f.header` for `f.payload` (CRC over header + payload).
void seal_frame(OutFrame& f, FrameType type, std::uint8_t flags,
                std::uint32_t channel, std::uint32_t seq);

// --- payload codecs ------------------------------------------------------

std::vector<std::uint8_t> encode_u32(std::uint32_t v);
bool decode_u32(std::span<const std::uint8_t> payload, std::uint32_t* v);

std::vector<std::uint8_t> encode_codes(std::span<const std::int32_t> codes);
bool decode_codes(std::span<const std::uint8_t> payload,
                  std::vector<std::int32_t>* codes);

std::vector<std::uint8_t> encode_samples(
    std::span<const std::int64_t> samples);
bool decode_samples(std::span<const std::uint8_t> payload,
                    std::vector<std::int64_t>* samples);

// --- configuration presets ----------------------------------------------

/// OPEN/CONFIG payloads name a chain preset instead of serializing a full
/// ChainConfig: 0 is the paper chain, 1 a half-scale variant (different
/// CSD scaler, observably distinct output). Unknown ids -> nullptr.
/// Presets are designed once and shared (the design flow is expensive).
std::shared_ptr<const decim::ChainConfig> preset_config(std::uint32_t id);
inline constexpr std::uint32_t kNumPresets = 2;

// --- full ChainConfig serialization --------------------------------------

/// Serialize a complete ChainConfig (every field, including the designed
/// HBF's CSD digit lists) for OPEN/CONFIG payloads. Doubles travel as
/// bit-cast u64 so a round trip is exact; the blob starts with its own
/// magic + version so a 4-byte preset id can never be confused with it.
std::vector<std::uint8_t> encode_chain_config(const decim::ChainConfig& cfg);

/// Strict inverse of encode_chain_config: bounds-checked, rejects unknown
/// versions, trailing bytes, or absurd element counts. Returns false
/// without touching `*cfg` on malformed input.
bool decode_chain_config(std::span<const std::uint8_t> payload,
                         decim::ChainConfig* cfg);

// --- incremental parser --------------------------------------------------

/// Feed raw received bytes, pull whole validated frames. After kBad the
/// stream is unsynchronized and the connection must be dropped.
class FrameParser {
 public:
  enum class Result { kFrame, kNeedMore, kBad };

  void feed(const std::uint8_t* data, std::size_t n);
  Result next(Frame* out);
  const std::string& error() const { return error_; }
  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered() const { return buf_.size() - off_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t off_ = 0;
  std::string error_;
};

}  // namespace dsadc::service
