#include "src/analyze/interval.h"

#include <algorithm>
#include <limits>

namespace dsadc::analyze {
namespace {

using Wide = __int128;

constexpr std::int64_t kI64Min = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kI64Max = std::numeric_limits<std::int64_t>::max();

std::int64_t clamp64(Wide v) {
  if (v > static_cast<Wide>(kI64Max)) return kI64Max;
  if (v < static_cast<Wide>(kI64Min)) return kI64Min;
  return static_cast<std::int64_t>(v);
}

/// Wrap a single exact value into `width` bits.
std::int64_t wrap_one(Wide v, int width) {
  const Wide modulus = Wide{1} << width;
  Wide r = v % modulus;
  if (r < 0) r += modulus;  // canonical residue in [0, 2^width)
  const Wide half = Wide{1} << (width - 1);
  if (r >= half) r -= modulus;  // sign-extend
  return static_cast<std::int64_t>(r);
}

Interval wrap_wide(Wide lo, Wide hi, int width, bool* wrapped) {
  const Wide min_w = -(Wide{1} << (width - 1));
  const Wide max_w = (Wide{1} << (width - 1)) - 1;
  if (lo >= min_w && hi <= max_w) {
    return Interval{static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)};
  }
  if (wrapped != nullptr) *wrapped = true;
  if (hi - lo + 1 >= (Wide{1} << width)) return Interval::full(width);
  const std::int64_t wl = wrap_one(lo, width);
  const std::int64_t wh = wrap_one(hi, width);
  if (wl <= wh) return Interval{wl, wh};
  return Interval::full(width);  // straddles the sign boundary
}

}  // namespace

Interval Interval::full(int width) {
  return Interval{-(std::int64_t{1} << (width - 1)),
                  (std::int64_t{1} << (width - 1)) - 1};
}

Interval Interval::hull(const Interval& o) const {
  return Interval{std::min(lo, o.lo), std::max(hi, o.hi)};
}

std::uint64_t Interval::span() const {
  const Wide s = static_cast<Wide>(hi) - static_cast<Wide>(lo) + 1;
  if (s > static_cast<Wide>(std::numeric_limits<std::int64_t>::max())) {
    return static_cast<std::uint64_t>(kI64Max);
  }
  return static_cast<std::uint64_t>(s);
}

int bits_needed(std::int64_t lo, std::int64_t hi) {
  for (int w = 1; w <= 62; ++w) {
    const Interval f = Interval::full(w);
    if (lo >= f.lo && hi <= f.hi) return w;
  }
  return 63;
}

Interval iv_wrap(const Interval& v, int width, bool* wrapped) {
  return wrap_wide(static_cast<Wide>(v.lo), static_cast<Wide>(v.hi), width,
                   wrapped);
}

Interval iv_add(const Interval& a, const Interval& b, int width,
                bool* wrapped) {
  const Wide lo = static_cast<Wide>(a.lo) + static_cast<Wide>(b.lo);
  const Wide hi = static_cast<Wide>(a.hi) + static_cast<Wide>(b.hi);
  return wrap_wide(lo, hi, width, wrapped);
}

Interval iv_sub(const Interval& a, const Interval& b, int width,
                bool* wrapped) {
  const Wide lo = static_cast<Wide>(a.lo) - static_cast<Wide>(b.hi);
  const Wide hi = static_cast<Wide>(a.hi) - static_cast<Wide>(b.lo);
  return wrap_wide(lo, hi, width, wrapped);
}

Interval iv_neg(const Interval& a, int width, bool* wrapped) {
  const Wide lo = -static_cast<Wide>(a.hi);
  const Wide hi = -static_cast<Wide>(a.lo);
  return wrap_wide(lo, hi, width, wrapped);
}

Interval iv_shl(const Interval& a, int amount) {
  const Wide lo = static_cast<Wide>(a.lo) << amount;
  const Wide hi = static_cast<Wide>(a.hi) << amount;
  return Interval{clamp64(lo), clamp64(hi)};
}

Interval iv_shr(const Interval& a, int amount) {
  // __int128 >> is an arithmetic shift in GCC/Clang, i.e. floor division
  // by 2^amount, which is monotone, so endpoint evaluation is exact.
  const Wide lo = static_cast<Wide>(a.lo) >> amount;
  const Wide hi = static_cast<Wide>(a.hi) >> amount;
  return Interval{clamp64(lo), clamp64(hi)};
}

Interval iv_requant(const Interval& a, int src_frac, const fx::Format& fmt,
                    fx::Rounding rounding, fx::Overflow overflow,
                    bool* saturated, bool* wrapped) {
  Wide lo = static_cast<Wide>(a.lo);
  Wide hi = static_cast<Wide>(a.hi);
  const int shift = src_frac - fmt.frac;
  if (shift > 0) {
    if (shift >= 63) {
      lo = hi = 0;  // requantize collapses everything to 0
    } else if (rounding == fx::Rounding::kRoundNearest) {
      const Wide half = Wide{1} << (shift - 1);
      lo = (lo + half) >> shift;
      hi = (hi + half) >> shift;
    } else {
      lo >>= shift;
      hi >>= shift;
    }
  } else if (shift < 0 && -shift < 63) {
    lo <<= -shift;
    hi <<= -shift;
  }
  if (overflow == fx::Overflow::kWrap) {
    return wrap_wide(lo, hi, fmt.width, wrapped);
  }
  const Wide min_w = static_cast<Wide>(fmt.raw_min());
  const Wide max_w = static_cast<Wide>(fmt.raw_max());
  if ((lo < min_w || hi > max_w) && saturated != nullptr) *saturated = true;
  lo = std::clamp(lo, min_w, max_w);  // clamp is monotone: endpoint
  hi = std::clamp(hi, min_w, max_w);  // evaluation stays exact
  return Interval{static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)};
}

IntervalResult analyze_intervals(
    const rtl::Module& m, const std::map<rtl::NodeId, Interval>& input_ranges) {
  using rtl::kInvalidNode;
  using rtl::NodeId;
  using rtl::OpKind;

  constexpr int kMaxSweeps = 100;
  constexpr int kWidenAfter = 16;

  const auto& nodes = m.nodes();
  const std::size_t n = nodes.size();

  IntervalResult res;
  res.value.assign(n, Interval{});  // every node powers up at 0
  res.may_wrap.assign(n, false);
  res.may_saturate.assign(n, false);

  const auto operand = [&](NodeId id) -> const Interval& {
    static const Interval zero{};
    return id == kInvalidNode ? zero : res.value[static_cast<std::size_t>(id)];
  };

  // One monotone sweep; returns true when any interval grew. Flags are
  // only recorded when `record_flags` (the final confirmation sweep).
  const auto sweep = [&](bool record_flags) {
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      const rtl::Node& node = nodes[i];
      bool wrapped = false;
      bool saturated = false;
      Interval next = res.value[i];
      switch (node.kind) {
        case OpKind::kInput: {
          const auto it = input_ranges.find(static_cast<NodeId>(i));
          const Interval given =
              it != input_ranges.end() ? it->second : Interval::full(node.width);
          // The simulator wraps bound input samples into the port width.
          next = iv_wrap(given, node.width, &wrapped);
          break;
        }
        case OpKind::kConst:
          next = Interval::point(node.value);
          break;
        case OpKind::kAdd:
          next = iv_add(operand(node.a), operand(node.b), node.width, &wrapped);
          break;
        case OpKind::kSub:
          next = iv_sub(operand(node.a), operand(node.b), node.width, &wrapped);
          break;
        case OpKind::kNeg:
          next = iv_neg(operand(node.a), node.width, &wrapped);
          break;
        case OpKind::kShl:
          next = iv_shl(operand(node.a), node.amount);
          break;
        case OpKind::kShr:
          next = iv_shr(operand(node.a), node.amount);
          break;
        case OpKind::kReg:
        case OpKind::kDecimate:
          // State nodes hold their power-up 0 until the first capture, so
          // their value set is {0} union the operand's set.
          next = Interval{}.hull(operand(node.a));
          break;
        case OpKind::kRequant:
          next = iv_requant(operand(node.a), node.src_frac, node.fmt,
                            node.rounding, node.overflow, &saturated, &wrapped);
          break;
        case OpKind::kOutput:
          next = operand(node.a);
          break;
      }
      next = res.value[i].hull(next);  // monotone ascent
      if (!(next == res.value[i])) {
        res.value[i] = next;
        changed = true;
      }
      if (record_flags) {
        if (wrapped) res.may_wrap[i] = true;
        if (saturated) res.may_saturate[i] = true;
      }
    }
    return changed;
  };

  for (int iter = 0; iter < kMaxSweeps; ++iter) {
    res.iterations = iter + 1;
    const bool changed = sweep(/*record_flags=*/false);
    if (!changed) {
      res.converged = true;
      break;
    }
    if (iter + 1 >= kWidenAfter) {
      // Widen every state node that is still growing straight to its full
      // width range; the loop body then stabilizes in O(depth) sweeps.
      for (std::size_t i = 0; i < n; ++i) {
        if (nodes[i].kind == OpKind::kReg || nodes[i].kind == OpKind::kDecimate) {
          res.value[i] = res.value[i].hull(Interval::full(nodes[i].width));
        }
      }
    }
  }
  // Confirmation sweep: intervals are stable (or widened); record flags.
  sweep(/*record_flags=*/true);
  return res;
}

}  // namespace dsadc::analyze
