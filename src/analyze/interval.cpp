#include "src/analyze/interval.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/analyze/dataflow/domains.h"
#include "src/analyze/dataflow/engine.h"
#include "src/analyze/dataflow/index.h"

namespace dsadc::analyze {
namespace {

using Wide = __int128;

constexpr std::int64_t kI64Min = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kI64Max = std::numeric_limits<std::int64_t>::max();

std::int64_t clamp64(Wide v) {
  if (v > static_cast<Wide>(kI64Max)) return kI64Max;
  if (v < static_cast<Wide>(kI64Min)) return kI64Min;
  return static_cast<std::int64_t>(v);
}

/// Wrap a single exact value into `width` bits.
std::int64_t wrap_one(Wide v, int width) {
  const Wide modulus = Wide{1} << width;
  Wide r = v % modulus;
  if (r < 0) r += modulus;  // canonical residue in [0, 2^width)
  const Wide half = Wide{1} << (width - 1);
  if (r >= half) r -= modulus;  // sign-extend
  return static_cast<std::int64_t>(r);
}

Interval wrap_wide(Wide lo, Wide hi, int width, bool* wrapped) {
  const Wide min_w = -(Wide{1} << (width - 1));
  const Wide max_w = (Wide{1} << (width - 1)) - 1;
  if (lo >= min_w && hi <= max_w) {
    return Interval{static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)};
  }
  if (wrapped != nullptr) *wrapped = true;
  if (hi - lo + 1 >= (Wide{1} << width)) return Interval::full(width);
  const std::int64_t wl = wrap_one(lo, width);
  const std::int64_t wh = wrap_one(hi, width);
  if (wl <= wh) return Interval{wl, wh};
  return Interval::full(width);  // straddles the sign boundary
}

}  // namespace

Interval Interval::full(int width) {
  return Interval{-(std::int64_t{1} << (width - 1)),
                  (std::int64_t{1} << (width - 1)) - 1};
}

Interval Interval::hull(const Interval& o) const {
  return Interval{std::min(lo, o.lo), std::max(hi, o.hi)};
}

std::uint64_t Interval::span() const {
  const Wide s = static_cast<Wide>(hi) - static_cast<Wide>(lo) + 1;
  if (s > static_cast<Wide>(std::numeric_limits<std::int64_t>::max())) {
    return static_cast<std::uint64_t>(kI64Max);
  }
  return static_cast<std::uint64_t>(s);
}

int bits_needed(std::int64_t lo, std::int64_t hi) {
  for (int w = 1; w <= 62; ++w) {
    const Interval f = Interval::full(w);
    if (lo >= f.lo && hi <= f.hi) return w;
  }
  return 63;
}

Interval iv_wrap(const Interval& v, int width, bool* wrapped) {
  return wrap_wide(static_cast<Wide>(v.lo), static_cast<Wide>(v.hi), width,
                   wrapped);
}

Interval iv_add(const Interval& a, const Interval& b, int width,
                bool* wrapped) {
  const Wide lo = static_cast<Wide>(a.lo) + static_cast<Wide>(b.lo);
  const Wide hi = static_cast<Wide>(a.hi) + static_cast<Wide>(b.hi);
  return wrap_wide(lo, hi, width, wrapped);
}

Interval iv_sub(const Interval& a, const Interval& b, int width,
                bool* wrapped) {
  const Wide lo = static_cast<Wide>(a.lo) - static_cast<Wide>(b.hi);
  const Wide hi = static_cast<Wide>(a.hi) - static_cast<Wide>(b.lo);
  return wrap_wide(lo, hi, width, wrapped);
}

Interval iv_neg(const Interval& a, int width, bool* wrapped) {
  const Wide lo = -static_cast<Wide>(a.hi);
  const Wide hi = -static_cast<Wide>(a.lo);
  return wrap_wide(lo, hi, width, wrapped);
}

Interval iv_shl(const Interval& a, int amount) {
  const Wide lo = static_cast<Wide>(a.lo) << amount;
  const Wide hi = static_cast<Wide>(a.hi) << amount;
  return Interval{clamp64(lo), clamp64(hi)};
}

Interval iv_shr(const Interval& a, int amount) {
  // __int128 >> is an arithmetic shift in GCC/Clang, i.e. floor division
  // by 2^amount, which is monotone, so endpoint evaluation is exact.
  const Wide lo = static_cast<Wide>(a.lo) >> amount;
  const Wide hi = static_cast<Wide>(a.hi) >> amount;
  return Interval{clamp64(lo), clamp64(hi)};
}

Interval iv_requant(const Interval& a, int src_frac, const fx::Format& fmt,
                    fx::Rounding rounding, fx::Overflow overflow,
                    bool* saturated, bool* wrapped) {
  Wide lo = static_cast<Wide>(a.lo);
  Wide hi = static_cast<Wide>(a.hi);
  const int shift = src_frac - fmt.frac;
  if (shift > 0) {
    if (shift >= 63) {
      lo = hi = 0;  // requantize collapses everything to 0
    } else if (rounding == fx::Rounding::kRoundNearest) {
      const Wide half = Wide{1} << (shift - 1);
      lo = (lo + half) >> shift;
      hi = (hi + half) >> shift;
    } else {
      lo >>= shift;
      hi >>= shift;
    }
  } else if (shift < 0 && -shift < 63) {
    lo <<= -shift;
    hi <<= -shift;
  }
  if (overflow == fx::Overflow::kWrap) {
    return wrap_wide(lo, hi, fmt.width, wrapped);
  }
  const Wide min_w = static_cast<Wide>(fmt.raw_min());
  const Wide max_w = static_cast<Wide>(fmt.raw_max());
  if ((lo < min_w || hi > max_w) && saturated != nullptr) *saturated = true;
  lo = std::clamp(lo, min_w, max_w);  // clamp is monotone: endpoint
  hi = std::clamp(hi, min_w, max_w);  // evaluation stays exact
  return Interval{static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)};
}

IntervalResult analyze_intervals(
    const rtl::Module& m, const std::map<rtl::NodeId, Interval>& input_ranges) {
  const NetlistIndex idx(m);
  return analyze_intervals(m, input_ranges, idx);
}

IntervalResult analyze_intervals(const rtl::Module& m,
                                 const std::map<rtl::NodeId, Interval>& input_ranges,
                                 const NetlistIndex& idx) {
  IntervalDomain dom;
  dom.input_ranges = &input_ranges;
  SolveOptions opt;
  opt.max_sweeps = 100;
  SolveResult<IntervalDomain> solved = solve(m, idx, dom, opt);

  const std::size_t n = m.size();
  IntervalResult res;
  res.value = std::move(solved.value);
  res.converged = solved.converged;
  res.iterations = solved.sweeps;
  res.may_wrap.assign(n, false);
  res.may_saturate.assign(n, false);
  // Confirmation sweep at the fixpoint: re-run every transfer once purely
  // to record the may-wrap / may-saturate flags.
  for (std::size_t i = 0; i < n; ++i) {
    bool wrapped = false;
    bool saturated = false;
    interval_transfer(m, static_cast<rtl::NodeId>(i), res.value, input_ranges,
                      &wrapped, &saturated);
    if (wrapped) res.may_wrap[i] = true;
    if (saturated) res.may_saturate[i] = true;
  }
  return res;
}

}  // namespace dsadc::analyze
