// Static netlist analyzer ("lint") for rtl::Module.
//
// Combines structural rules (clock-domain crossings, dead logic, dangling
// registers, combinational ordering, width consistency) with the value
// analyses of interval.h and range.h into a flat list of findings, each
// tagged with a stable rule id and a severity. The driver CLI is
// tools/lint_rtl.cpp; docs/ANALYSIS.md documents every rule.
//
// Severity model:
//   kError   -- the module provably misbehaves for some legal input, or its
//               structure violates an IR invariant every backend assumes.
//   kWarning -- the analyzer cannot prove safety (conservative bound
//               exceeded, unbounded value observed) or the construct is
//               suspicious (dead logic).
//   kInfo    -- advisory: wasted register MSBs, suppressed-by-default noise.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/analyze/interval.h"
#include "src/analyze/range.h"
#include "src/rtl/ir.h"

namespace dsadc::analyze {

enum class Severity : std::uint8_t { kError, kWarning, kInfo };

const char* severity_name(Severity s);  // "error" / "warning" / "info"

/// Stable rule identity. `id` is the long form used in reports and
/// suppressions; `code` is the short form for grep/terminals.
struct Rule {
  const char* id;
  const char* code;
  Severity severity;
};

// Rule table (stable; never renumber, only append):
//   range.input-exceeds-port   RNG01 error   given input range wider than port
//   range.overflow.proven      RNG02 error   tight bound exceeds effective width
//   range.overflow.possible    RNG03 warning conservative bound exceeds width
//   range.wrap-underwidth      RNG04 error*  wrap-reliant node narrower than
//                                            its downstream requirement
//                                            (*warning when evidence is
//                                            conservative)
//   range.unbounded-observed   RNG05 warning unbounded value reaches an
//                                            output/requant/shift-right
//   range.unused-msb           RNG06 info    register MSBs proven unreachable
//   range.analysis-skipped     RNG07 warning clock-period blowup, no analysis
//   cdc.cross-domain-edge      CDC01 error   domain change not through decimate
//   cdc.decimate-ratio         CDC02 error   decimate divider != src * factor
//   struct.unconnected-reg     STR01 error   dangling reg_placeholder
//   struct.missing-operand     STR02 error   operand required but invalid
//   struct.bad-operand         STR03 error   operand id out of range
//   struct.comb-order          STR04 error   combinational node reads a later
//                                            node (stale-value hazard)
//   struct.comb-cycle          STR05 error   combinational cycle
//   struct.dead-node           STR06 warning node unreachable from any output
//   struct.unused-input        STR07 warning input port drives nothing
//   struct.no-output           STR08 error   module has no output ports
//   width.requant-mismatch     WID01 error   requant width != format width
//   width.requant-shift        WID02 error   requant shift the simulator
//                                            rejects (|shift| >= 63)
//   width.shl-truncated        WID03 warning shl result wider than declared
//                                            width (value silently truncated
//                                            in hardware)
//   opt.unreachable-mux-arm    OPT01 warning mux select proven constant; one
//                                            arm can never be observed
//   opt.constant-output        OPT02 warning module output proven to commit
//                                            the same value on every tick
//   opt.width-never-exercised  OPT03 info    declared bits proven to carry no
//                                            information (interval MSBs /
//                                            known-zero LSBs)

struct Finding {
  std::string rule;      ///< long id, e.g. "range.overflow.proven"
  std::string code;      ///< short id, e.g. "RNG02"
  Severity severity = Severity::kWarning;
  rtl::NodeId node = rtl::kInvalidNode;  ///< kInvalidNode: module-level
  std::string message;
  /// Structured payload (widths, bounds, peer node ids) for JSON reports.
  std::map<std::string, std::int64_t> data;
  bool suppressed = false;
};

struct LintOptions {
  /// Report/suppression module name override (empty: Module::name()).
  /// Needed when several instances share one module name, e.g. the two
  /// Sinc4 stages of the paper chain.
  std::string module_name;
  /// Assumed range per input port (default: full range of the port width).
  std::map<rtl::NodeId, Interval> input_ranges;
  /// Emit range.unused-msb only when at least this many MSBs are wasted.
  int unused_msb_threshold = 2;
  /// Emit opt.width-never-exercised only when at least this many bits of a
  /// node are proven dead (interval MSBs or known-zero LSBs).
  int never_exercised_threshold = 4;
  /// Suppression patterns: "rule", "rule@module", or a "prefix.*" glob on
  /// the rule id (optionally with "@module"). Suppressed findings stay in
  /// the report, flagged, but do not count toward severity totals.
  std::vector<std::string> suppress;
};

struct ModuleReport {
  std::string module;
  std::size_t nodes = 0;
  std::vector<Finding> findings;
  std::size_t errors = 0;       ///< unsuppressed error findings
  std::size_t warnings = 0;     ///< unsuppressed warning findings
  std::size_t infos = 0;        ///< unsuppressed info findings
  std::size_t suppressed = 0;
  RangeResult range;            ///< per-node bounds (for tools/tests)
  IntervalResult interval;      ///< per-node intervals (for tools/tests)
};

/// Run every rule against the module.
ModuleReport lint_module(const rtl::Module& m, const LintOptions& options = {});

/// True when `pattern` ("rule", "prefix.*", optional "@module") matches.
bool suppression_matches(const std::string& pattern, const std::string& rule,
                         const std::string& module);

}  // namespace dsadc::analyze
