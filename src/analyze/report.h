// Report emission for lint results: compiler-style text and a stable JSON
// document (consumed by the CI baseline gate in tools/lint_rtl.cpp).
#pragma once

#include <string>
#include <vector>

#include "src/analyze/lint.h"
#include "src/verify/json.h"

namespace dsadc::analyze {

/// One line per finding, compiler style:
///   error[RNG02] sinc6_3: n17 add 'int2' (18b): proven overflow: ...
/// `show_suppressed` appends suppressed findings with a trailing marker.
std::string text_report(const std::vector<ModuleReport>& reports,
                        bool show_suppressed = false);

/// Machine-readable document:
///   { "version": 1,
///     "modules": [ { "module", "nodes", "errors", "warnings", "infos",
///                    "suppressed", "findings": [ { "rule", "code",
///                    "severity", "node", "message", "suppressed",
///                    "data": { ... } } ] } ],
///     "summary": { "modules", "errors", "warnings", "infos",
///                  "suppressed" } }
verify::Json json_report(const std::vector<ModuleReport>& reports);

/// True when any module has an unsuppressed error-severity finding.
bool has_errors(const std::vector<ModuleReport>& reports);

}  // namespace dsadc::analyze
