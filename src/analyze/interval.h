// Signed value-interval domain over the RTL IR.
//
// The static analyzer (lint.h) characterizes every netlist node by the set
// of raw two's-complement values it can carry. This header provides the
// interval abstraction of that set plus transfer functions that mirror
// rtl::Simulator semantics *exactly* (wrap on kAdd/kSub/kNeg, unwrapped
// shifts, fx::requantize rounding/overflow behavior), and a fixpoint
// propagation pass over a whole module that handles register back-edges
// (the CIC accumulator loop) with widening.
//
// The interval pass is sound but deliberately coarse around wraparound: an
// interval that leaves the representable range of a node's width collapses
// to the full range of that width. Proving that such wraps are *benign*
// (Hogenauer's modular-arithmetic argument) is the job of the linear
// transfer analysis in range.h; the two passes are combined by lint.h.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/fixedpoint/fixed.h"
#include "src/rtl/ir.h"

namespace dsadc::analyze {

/// Inclusive interval [lo, hi] of raw signed values. A default-constructed
/// interval is the single point 0 (every simulator node powers up at 0).
struct Interval {
  std::int64_t lo = 0;
  std::int64_t hi = 0;

  /// Full representable range of a two's-complement width.
  static Interval full(int width);
  static Interval point(std::int64_t v) { return Interval{v, v}; }

  bool contains(std::int64_t v) const { return lo <= v && v <= hi; }
  Interval hull(const Interval& o) const;
  /// Number of values spanned; saturates at INT64_MAX.
  std::uint64_t span() const;

  bool operator==(const Interval&) const = default;
};

/// Smallest two's-complement width (>= 1) whose range contains [lo, hi];
/// returns 63 when no width up to 62 can hold it (the IR caps widths at 62).
int bits_needed(std::int64_t lo, std::int64_t hi);

// ---------------------------------------------------------------------------
// Per-op transfer functions. Each mirrors one OpKind's evaluation in
// rtl::Simulator. `wrapped` (when non-null) is set to true when modular
// reduction may have changed at least one value; it is left untouched
// otherwise so callers can accumulate across calls.

/// Wrap an exact interval into `width` bits (two's complement). When the
/// interval straddles the range or spans more than 2^width values the
/// result collapses to the full range.
Interval iv_wrap(const Interval& v, int width, bool* wrapped = nullptr);

Interval iv_add(const Interval& a, const Interval& b, int width,
                bool* wrapped = nullptr);
Interval iv_sub(const Interval& a, const Interval& b, int width,
                bool* wrapped = nullptr);
Interval iv_neg(const Interval& a, int width, bool* wrapped = nullptr);
/// Shift left; the simulator does not wrap kShl results, so neither do we
/// (the declared node width is checked separately by the lint).
Interval iv_shl(const Interval& a, int amount);
/// Arithmetic shift right (floor division by 2^amount, exact on intervals
/// because it is monotone).
Interval iv_shr(const Interval& a, int amount);
/// Mirror of fx::requantize: rounding on dropped LSBs, then wrap/saturate
/// into fmt. `saturated` is set when the clamp may fire.
Interval iv_requant(const Interval& a, int src_frac, const fx::Format& fmt,
                    fx::Rounding rounding, fx::Overflow overflow,
                    bool* saturated = nullptr, bool* wrapped = nullptr);

// ---------------------------------------------------------------------------
// Whole-module fixpoint propagation.

class NetlistIndex;  // dataflow/index.h

struct IntervalResult {
  std::vector<Interval> value;     ///< per node, over all time
  std::vector<bool> may_wrap;      ///< modular reduction may change a value
  std::vector<bool> may_saturate;  ///< requant clamp may fire
  bool converged = false;
  int iterations = 0;
};

/// Propagate value intervals through the module until fixpoint. Register
/// and decimate nodes contribute their power-up value 0; back-edges
/// (connect_reg loops) iterate, with widening to the full width range after
/// `kWidenAfter` sweeps so divergent accumulators terminate. Input nodes
/// take their range from `input_ranges` (defaulting to the full range of
/// the port width); ranges are wrapped into the port width first, exactly
/// like the simulator wraps bound input streams.
///
/// This is the IntervalDomain of the dataflow engine (dataflow/domains.h)
/// plus a flag-recording confirmation sweep; pass a prebuilt NetlistIndex
/// to share structure discovery across passes.
IntervalResult analyze_intervals(
    const rtl::Module& m,
    const std::map<rtl::NodeId, Interval>& input_ranges = {});
IntervalResult analyze_intervals(
    const rtl::Module& m, const std::map<rtl::NodeId, Interval>& input_ranges,
    const NetlistIndex& idx);

}  // namespace dsadc::analyze
