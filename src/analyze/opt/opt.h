// Proof-carrying netlist optimizer.
//
// optimize() runs a fixed pass pipeline over a module, driven entirely by
// dataflow-engine facts (dataflow/domains.h):
//
//   1. constant folding      - const domain: node commits v on every
//      active tick  ->  replace with kConst v (activity-preserving: both
//      toggle hamming(0,v) once and never again).
//   2. simplification        - structural + const facts: add(x, neg(y)) ->
//      sub(x, y); mux with proven-constant select, mux with equal arms,
//      shift-by-0, add/sub of proven 0, identity requantize -> forward the
//      surviving operand.
//   3. dead-node elimination - reachability from outputs over the
//      *effective* (post-rewrite) operand edges; unreachable non-port
//      nodes are dropped.
//   4. width shrinking       - interval domain: every reachable committed
//      value of the node fits bits_needed(interval) < declared width ->
//      narrow the node (modular arithmetic: wrap to the narrower width is
//      the identity on values that fit, so downstream values are
//      unchanged and toggle counts can only fall).
//
// Every rewrite emits a RewriteProof (proof.h); the bundle is
// independently re-checkable against the original module with
// check_proofs(), and check_optimized_equivalence (equiv.h) validates the
// rebuilt module dynamically against the original on both simulator
// engines, activity counters included.
#pragma once

#include <cstddef>
#include <map>
#include <memory_resource>
#include <string>
#include <utility>
#include <vector>

#include "src/analyze/interval.h"
#include "src/analyze/opt/proof.h"
#include "src/rtl/ir.h"

namespace dsadc::analyze::opt {

struct OptOptions {
  bool fold_constants = true;
  bool simplify = true;
  bool eliminate_dead = true;
  bool shrink_widths = true;
  /// Assumed input ranges (defaults to full port width), forwarded to the
  /// const and interval domains. Proofs are valid under this assumption.
  std::map<rtl::NodeId, Interval> input_ranges;
  /// Arena for the rebuilt module's node array (nullptr = default heap).
  std::pmr::memory_resource* arena = nullptr;
};

struct OptStats {
  std::size_t nodes_before = 0;
  std::size_t nodes_after = 0;
  std::size_t folded = 0;          ///< kConstFold rewrites
  std::size_t redirected = 0;      ///< kMuxConstSel + kIdentityFwd + kNegAddToSub
  std::size_t dead_removed = 0;    ///< kDeadNode rewrites
  std::size_t widths_shrunk = 0;   ///< kWidthShrink rewrites
  std::size_t bits_saved = 0;      ///< total width reduction over all shrinks
};

struct OptResult {
  rtl::Module module;  ///< the optimized netlist
  /// Original node id -> optimized node id; kInvalidNode for removed
  /// nodes (dead or spliced out by a redirect). Ports are always mapped.
  std::vector<rtl::NodeId> node_map;
  std::vector<RewriteProof> proofs;
  OptStats stats;

  /// The module is constructed in place on its final arena (pmr move
  /// assignment with unequal resources would copy out of the arena).
  explicit OptResult(std::string name = "(empty)",
                     std::pmr::memory_resource* arena = nullptr)
      : module(std::move(name), arena) {}
};

/// Optimize `m`. The returned module preserves the input/output interface
/// (port names, widths and order), every committed value of every mapped
/// node, and the activity contract: updates equal per mapped node, toggles
/// equal for width-preserved nodes and <= for shrunk ones.
OptResult optimize(const rtl::Module& m, const OptOptions& options = {});

}  // namespace dsadc::analyze::opt
