// Machine-checkable proof records for netlist optimization passes.
//
// Every rewrite the optimizer (opt.h) performs is *proof-carrying*: it
// emits a RewriteProof naming the rewritten node, the claim, and the
// abstract-domain facts justifying it. check_proofs() is an independent
// verifier: it re-derives the domain facts on the ORIGINAL module with the
// dataflow engine and validates every record's side conditions plus the
// global closure of the bundle (kept nodes only reference kept nodes,
// ports survive, removed nodes are unreferenced). The optimizer's own
// bookkeeping is never trusted -- an unsound pass is caught here even when
// its output happens to simulate correctly on the tried stimulus, and the
// differential harness (equiv.h) backstops the checker from the other
// side. Proof bundles serialize to JSON for lint_rtl --proof-dump.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/analyze/interval.h"
#include "src/rtl/ir.h"

namespace dsadc::analyze::opt {

enum class RewriteKind : std::uint8_t {
  kDeadNode,     ///< node removed: no output depends on it post-rewrites
  kConstFold,    ///< node replaced by kConst `value` (const domain fact)
  kNegAddToSub,  ///< add(x, neg(y)) rewritten to sub(x, y)
  kMuxConstSel,  ///< mux with proven-constant select forwards one arm
  kIdentityFwd,  ///< node forwards its operand unchanged (shift-0, add-0…)
  kWidthShrink,  ///< node width reduced to the proven interval width
};

const char* rewrite_kind_name(RewriteKind k);

/// One rewrite with its justification. Field meaning by kind:
///   kDeadNode:    node (liveness fact: unreachable from outputs after
///                 the bundle's redirects/folds are applied)
///   kConstFold:   node, value (const-domain fact: commits `value` on
///                 every active tick)
///   kNegAddToSub: node = the kAdd, target = the kNeg operand
///   kMuxConstSel: node = the kMux, target = surviving arm, value = the
///                 proven select constant
///   kIdentityFwd: node, target = operand it forwards
///   kWidthShrink: node, old_width, new_width, interval = proven value
///                 interval justifying new_width
struct RewriteProof {
  RewriteKind kind = RewriteKind::kDeadNode;
  rtl::NodeId node = rtl::kInvalidNode;
  rtl::NodeId target = rtl::kInvalidNode;
  std::int64_t value = 0;
  int old_width = 0;
  int new_width = 0;
  Interval interval{};
  /// Domain that supplied the fact ("const", "interval", "liveness",
  /// "structural").
  std::string domain;
};

struct ProofCheck {
  bool ok = true;
  std::vector<std::string> errors;
};

/// Independently verify a proof bundle against the original module: domain
/// facts are re-derived from scratch, per-record side conditions checked,
/// and the bundle validated for closure. `input_ranges` must match the
/// assumption the optimizer ran under.
ProofCheck check_proofs(const rtl::Module& original,
                        const std::vector<RewriteProof>& proofs,
                        const std::map<rtl::NodeId, Interval>& input_ranges = {});

/// JSON array of proof records (lint_rtl --proof-dump format).
std::string proofs_to_json(const std::vector<RewriteProof>& proofs);

}  // namespace dsadc::analyze::opt
