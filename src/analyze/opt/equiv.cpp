#include "src/analyze/opt/equiv.h"

#include <cstddef>
#include <sstream>
#include <utility>

#include "src/rtl/compiled_sim.h"
#include "src/rtl/sim.h"

namespace dsadc::analyze::opt {
namespace {

using rtl::kInvalidNode;
using rtl::NodeId;

constexpr std::size_t kMaxErrors = 16;

struct Reporter {
  EquivResult* res;
  void fail(const std::string& msg) {
    res->ok = false;
    if (res->errors.size() < kMaxErrors) res->errors.push_back(msg);
  }
};

bool same_stream(const std::vector<std::int64_t>& a,
                 const std::vector<std::int64_t>& b, std::size_t* where) {
  if (a.size() != b.size()) {
    *where = std::min(a.size(), b.size());
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) {
      *where = i;
      return false;
    }
  }
  return true;
}

/// Compare two same-module runs (engine cross-check): everything equal.
void check_engines_agree(const rtl::SimResult& interp,
                         const rtl::SimResult& compiled, const char* which,
                         Reporter& rep) {
  if (interp.activity.base_ticks != compiled.activity.base_ticks) {
    rep.fail(std::string(which) + ": engines disagree on base ticks");
  }
  for (const auto& [id, stream] : interp.outputs) {
    const auto it = compiled.outputs.find(id);
    std::size_t where = 0;
    if (it == compiled.outputs.end()) {
      rep.fail(std::string(which) + ": compiled run lost output node " +
               std::to_string(id));
    } else if (!same_stream(stream, it->second, &where)) {
      std::ostringstream os;
      os << which << ": engines disagree on output node " << id
         << " at sample " << where;
      rep.fail(os.str());
    }
  }
  const std::size_t n = interp.activity.updates.size();
  for (std::size_t i = 0; i < n && i < compiled.activity.updates.size(); ++i) {
    if (interp.activity.updates[i] != compiled.activity.updates[i] ||
        interp.activity.bit_toggles[i] != compiled.activity.bit_toggles[i]) {
      rep.fail(std::string(which) + ": engines disagree on activity of node " +
               std::to_string(i));
    }
  }
}

}  // namespace

EquivResult check_optimized_equivalence(
    const rtl::Module& original, const OptResult& opt,
    const std::map<rtl::NodeId, std::span<const std::int64_t>>& inputs) {
  EquivResult res;
  Reporter rep{&res};

  // Remap the stimulus onto the optimized module's input ids.
  std::map<NodeId, std::span<const std::int64_t>> opt_inputs;
  for (const auto& [id, stream] : inputs) {
    const NodeId mapped = opt.node_map[static_cast<std::size_t>(id)];
    if (mapped == kInvalidNode) {
      rep.fail("input node " + std::to_string(id) +
               " was removed by the optimizer");
      return res;
    }
    opt_inputs.emplace(mapped, stream);
  }

  const rtl::CompiledRunOptions activity_on{.activity = true};
  rtl::Simulator orig_interp(original);
  rtl::Simulator opt_interp(opt.module);
  const rtl::CompiledSimulator orig_compiled(original);
  const rtl::CompiledSimulator opt_compiled(opt.module);

  const rtl::SimResult a = orig_interp.run(inputs);
  const rtl::SimResult b = orig_compiled.run(inputs, activity_on);
  const rtl::SimResult c = opt_interp.run(opt_inputs);
  const rtl::SimResult d = opt_compiled.run(opt_inputs, activity_on);

  check_engines_agree(a, b, "original", rep);
  check_engines_agree(c, d, "optimized", rep);

  // Original vs optimized, against the interpreted reference runs (the
  // engine cross-checks above extend agreement to the compiled runs).
  if (a.activity.base_ticks != c.activity.base_ticks) {
    rep.fail("optimized run covers a different number of base ticks");
  }
  if (a.outputs.size() != c.outputs.size()) {
    rep.fail("optimized module has a different output count");
  }
  for (const auto& [id, stream] : a.outputs) {
    const NodeId mapped = opt.node_map[static_cast<std::size_t>(id)];
    const auto it = mapped == kInvalidNode ? c.outputs.end()
                                           : c.outputs.find(mapped);
    if (it == c.outputs.end()) {
      rep.fail("output node " + std::to_string(id) +
               " has no optimized counterpart");
      continue;
    }
    std::size_t where = 0;
    if (!same_stream(stream, it->second, &where)) {
      std::ostringstream os;
      os << "output node " << id << " diverges at sample " << where;
      rep.fail(os.str());
    }
  }

  // Activity contract over mapped nodes.
  for (std::size_t i = 0; i < opt.node_map.size(); ++i) {
    const NodeId mapped = opt.node_map[i];
    if (mapped == kInvalidNode) continue;
    const auto j = static_cast<std::size_t>(mapped);
    if (a.activity.updates[i] != c.activity.updates[j]) {
      rep.fail("node " + std::to_string(i) +
               ": update count changed under optimization");
      continue;
    }
    const int w_orig = original.node(static_cast<NodeId>(i)).width;
    const int w_opt = opt.module.node(mapped).width;
    if (w_orig == w_opt) {
      if (a.activity.bit_toggles[i] != c.activity.bit_toggles[j]) {
        rep.fail("node " + std::to_string(i) +
                 ": toggle count changed at preserved width");
      }
    } else if (a.activity.bit_toggles[i] < c.activity.bit_toggles[j]) {
      rep.fail("node " + std::to_string(i) +
               ": toggle count grew under width shrink");
    }
  }
  return res;
}

}  // namespace dsadc::analyze::opt
